(** Prometheus text exposition (format 0.0.4) over the {!Telemetry}
    registry — what the serving tier returns for [GET /metrics] and the
    binary [Metrics] request.

    Rendering rules: metric names are sanitised ([[^a-zA-Z0-9_:]] maps to
    ['_']); counters gain the conventional [_total] suffix; telemetry's
    per-bucket log2 histogram counts are re-emitted as the cumulative
    [le]-labelled buckets Prometheus requires, terminated by [+Inf] equal
    to [_count]; probes (and any [extra_gauges]) render as gauges.

    The module also {e parses} the exposition so tests assert on decoded
    samples — counter monotonicity across scrapes, bucket cumulativity —
    instead of substring matching. *)

val sanitize : string -> string

val render : ?extra_gauges:(string * float) list -> unit -> string
(** Snapshot the telemetry registry as an exposition document. The
    snapshot is per-metric consistent (each histogram is read under its
    own mutex), not globally atomic — fine for monitoring. *)

(** {1 Parsing} *)

type sample = {
  metric : string;  (** full sample name, e.g. ["srv_request_us_bucket"] *)
  labels : (string * string) list;
  value : float;
}

val parse : string -> (sample list * (string * string) list, string) result
(** [Ok (samples, types)] where [types] is the [(name, type)] list from
    [# TYPE] directives, in document order. *)

val validate : string -> (sample list * (string * string) list, string) result
(** {!parse} plus structural checks: every sample is covered by a
    [# TYPE] declaration, histogram buckets are cumulative, and the
    [+Inf] bucket equals [_count]. *)

val find : sample list -> string -> float option
(** Value of the unlabelled sample [metric], if present. *)
