(* Blocking client for the JGS1 protocol — used by the CLI's [serve
   --probe], the load bench, and the test batteries. One outstanding
   request per connection (the server answers in order). *)

type call_error =
  | Closed  (** server closed the connection before a full response *)
  | Protocol_error of Protocol.error
  | Io_error of string

let call_error_message = function
  | Closed -> "connection closed by server"
  | Protocol_error e -> Protocol.error_message e
  | Io_error msg -> "i/o error: " ^ msg

type t = {
  fd : Unix.file_descr;
  dec : Protocol.Decoder.t;
  chunk : Bytes.t;
}

let connect ?(host = "127.0.0.1") ?limits ~port () =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  match
    Unix.connect fd (ADDR_INET (Unix.inet_addr_of_string host, port))
  with
  | () ->
      (try Unix.setsockopt fd TCP_NODELAY true with Unix.Unix_error _ -> ());
      { fd; dec = Protocol.Decoder.create ?limits (); chunk = Bytes.create 65536 }
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send_raw t s =
  let b = Bytes.unsafe_of_string s in
  let len = String.length s in
  let rec go off =
    if off < len then
      match Unix.write t.fd b off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (EINTR, _, _) -> go off
  in
  try
    go 0;
    Ok ()
  with Unix.Unix_error (e, _, _) -> Error (Io_error (Unix.error_message e))

let rec recv_response t =
  match Protocol.Decoder.next t.dec with
  | Error e -> Error (Protocol_error e)
  | Ok (Some frame) -> (
      match Protocol.decode_response frame with
      | Ok r -> Ok r
      | Error e -> Error (Protocol_error e))
  | Ok None -> (
      match Unix.read t.fd t.chunk 0 (Bytes.length t.chunk) with
      | 0 -> Error Closed
      | n ->
          Protocol.Decoder.feed t.dec
            (Bytes.sub_string t.chunk 0 n) 0 n;
          recv_response t
      | exception Unix.Unix_error (EINTR, _, _) -> recv_response t
      | exception Unix.Unix_error (e, _, _) ->
          Error (Io_error (Unix.error_message e)))

let call t request =
  match send_raw t (Protocol.encode_request request) with
  | Error _ as e -> e
  | Ok () -> recv_response t

let ping t =
  match call t Protocol.Ping with
  | Ok Protocol.Pong -> Ok ()
  | Ok (Protocol.Err (s, m)) -> Error (Io_error (Protocol.status_name s ^ ": " ^ m))
  | Ok _ -> Error (Io_error "unexpected response to ping")
  | Error _ as e -> e

let metrics t =
  match call t Protocol.Metrics with
  | Ok (Protocol.Text s) -> Ok s
  | Ok (Protocol.Err (s, m)) -> Error (Io_error (Protocol.status_name s ^ ": " ^ m))
  | Ok _ -> Error (Io_error "unexpected response to metrics")
  | Error _ as e -> e
