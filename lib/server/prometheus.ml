(* Prometheus text exposition (version 0.0.4) over the Telemetry
   registry, plus a small parser so tests can assert on what a scrape
   actually says rather than on substring matches. *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

(* %.17g is enough digits to round-trip a float; Prometheus accepts
   scientific notation. *)
let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let render_counters buf =
  List.iter
    (fun (name, v) ->
      let n = sanitize name ^ "_total" in
      Printf.bprintf buf "# TYPE %s counter\n%s %d\n" n n v)
    (Telemetry.Counter.all ())

let render_histograms buf =
  List.iter
    (fun h ->
      let n = sanitize (Telemetry.Histogram.name h) in
      Printf.bprintf buf "# TYPE %s histogram\n" n;
      (* Telemetry buckets are per-bucket counts; Prometheus buckets are
         cumulative and must end with +Inf == _count. *)
      let cum = ref 0 in
      List.iter
        (fun (le, c) ->
          cum := !cum + c;
          Printf.bprintf buf "%s_bucket{le=\"%s\"} %d\n" n (float_str le) !cum)
        (Telemetry.Histogram.buckets h);
      Printf.bprintf buf "%s_bucket{le=\"+Inf\"} %d\n" n
        (Telemetry.Histogram.count h);
      Printf.bprintf buf "%s_sum %s\n" n (float_str (Telemetry.Histogram.sum h));
      Printf.bprintf buf "%s_count %d\n" n (Telemetry.Histogram.count h))
    (List.sort
       (fun a b ->
         compare (Telemetry.Histogram.name a) (Telemetry.Histogram.name b))
       (Telemetry.Histogram.all ()))

let render_gauges buf extra =
  let probes = Telemetry.probes () @ extra in
  List.iter
    (fun (name, v) ->
      let n = sanitize name in
      Printf.bprintf buf "# TYPE %s gauge\n%s %s\n" n n (float_str v))
    (List.sort compare probes)

let render ?(extra_gauges = []) () =
  let buf = Buffer.create 1024 in
  render_counters buf;
  render_histograms buf;
  render_gauges buf extra_gauges;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser *)

type sample = {
  metric : string;
  labels : (string * string) list;
  value : float;
}

let parse_labels s =
  (* s is the text between '{' and '}': k="v"(,k="v")* — values have no
     escapes in anything we emit. *)
  let parts = if s = "" then [] else String.split_on_char ',' s in
  List.map
    (fun part ->
      match String.index_opt part '=' with
      | None -> failwith ("label without '=': " ^ part)
      | Some i ->
          let k = String.sub part 0 i in
          let v = String.sub part (i + 1) (String.length part - i - 1) in
          let v =
            if String.length v >= 2 && v.[0] = '"' && v.[String.length v - 1] = '"'
            then String.sub v 1 (String.length v - 2)
            else failwith ("unquoted label value: " ^ part)
          in
          (k, v))
    parts

let parse_value s =
  match String.trim s with
  | "+Inf" -> Float.infinity
  | "-Inf" -> Float.neg_infinity
  | v -> float_of_string v

let parse_line line =
  (* name{labels} value | name value *)
  match String.index_opt line '{' with
  | Some i ->
      let metric = String.sub line 0 i in
      let close =
        match String.index_opt line '}' with
        | Some c when c > i -> c
        | _ -> failwith ("unterminated label set: " ^ line)
      in
      let labels = parse_labels (String.sub line (i + 1) (close - i - 1)) in
      let rest = String.sub line (close + 1) (String.length line - close - 1) in
      { metric; labels; value = parse_value rest }
  | None -> (
      match String.index_opt line ' ' with
      | None -> failwith ("sample without value: " ^ line)
      | Some i ->
          let metric = String.sub line 0 i in
          let rest = String.sub line (i + 1) (String.length line - i - 1) in
          { metric; labels = []; value = parse_value rest })

let parse text =
  try
    let samples = ref [] in
    let types = ref [] in
    String.split_on_char '\n' text
    |> List.iter (fun line ->
           let line = String.trim line in
           if line = "" then ()
           else if String.length line > 0 && line.[0] = '#' then begin
             (* Only validate the directives we emit: "# TYPE name t" *)
             match String.split_on_char ' ' line with
             | [ "#"; "TYPE"; name; ty ] ->
                 if ty <> "counter" && ty <> "gauge" && ty <> "histogram" then
                   failwith ("unknown metric type: " ^ ty);
                 types := (name, ty) :: !types
             | "#" :: _ -> ()
             | _ -> failwith ("bad comment line: " ^ line)
           end
           else samples := parse_line line :: !samples);
    Ok (List.rev !samples, List.rev !types)
  with
  | Failure msg -> Error msg
  | _ -> Error "unparseable exposition"

let find samples metric =
  List.find_opt (fun s -> s.metric = metric && s.labels = []) samples
  |> Option.map (fun s -> s.value)

let validate text =
  match parse text with
  | Error _ as e -> e
  | Ok (samples, types) ->
      let err = ref None in
      let fail msg = if !err = None then err := Some msg in
      (* Every sample belongs to a declared family; histogram buckets are
         cumulative and +Inf-terminated with _bucket == _count. *)
      List.iter
        (fun (name, ty) ->
          if ty = "histogram" then begin
            let buckets =
              List.filter
                (fun s -> s.metric = name ^ "_bucket")
                samples
            in
            let count = find samples (name ^ "_count") in
            (match count with
            | None -> fail (name ^ ": histogram without _count")
            | Some c -> (
                match List.rev buckets with
                | [] -> fail (name ^ ": histogram without buckets")
                | last :: _ ->
                    if List.assoc_opt "le" last.labels <> Some "+Inf" then
                      fail (name ^ ": last bucket is not +Inf")
                    else if last.value <> c then
                      fail (name ^ ": +Inf bucket differs from _count")));
            let prev = ref Float.neg_infinity in
            List.iter
              (fun s ->
                if s.value < !prev then
                  fail (name ^ ": buckets are not cumulative");
                prev := s.value)
              buckets
          end)
        types;
      List.iter
        (fun s ->
          let base =
            List.fold_left
              (fun acc suffix ->
                match acc with
                | Some _ -> acc
                | None ->
                    let sl = String.length suffix and ml = String.length s.metric in
                    if
                      ml > sl
                      && String.sub s.metric (ml - sl) sl = suffix
                      && List.mem_assoc
                           (String.sub s.metric 0 (ml - sl))
                           types
                    then Some (String.sub s.metric 0 (ml - sl))
                    else None)
              None
              [ "_bucket"; "_sum"; "_count" ]
          in
          let name = match base with Some b -> b | None -> s.metric in
          if not (List.mem_assoc name types) then
            fail (s.metric ^ ": sample without a # TYPE declaration"))
        samples;
      (match !err with Some msg -> Error msg | None -> Ok (samples, types))
