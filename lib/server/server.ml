(* The serving tier: accept loop, per-connection protocol threads,
   worker domains behind a bounded admission queue, graceful drain.

   Thread/domain model on OCaml 5:

   - one systhread runs the accept loop (select with a 50 ms tick so it
     observes drain promptly, then non-blocking accept);
   - one systhread per connection decodes frames incrementally and
     writes responses — these block on socket I/O, which releases the
     runtime lock, so any number of them coexist with the workers;
   - [workers] spawned {e domains} execute reconstructions pulled from
     the bounded queue — the only CPU-parallel tier, sized to cores.

   Admission control: [Recon] frames pass through the bounded queue;
   when it is full the connection thread answers a typed [Shed] frame
   immediately (never blocks the client on a saturated server), and
   when the server is draining it answers [Draining]. Cheap requests
   (ping, metrics, stats) are served inline on the connection thread and
   bypass the queue, so observability survives overload.

   Graceful drain is a three-state machine (Running -> Draining ->
   Stopped), transitions under the queue mutex: drain() stops admission
   and shuts the read side of every live connection (in-flight requests
   still get their responses — the write side stays open); the last
   worker to finish flips Draining -> Stopped; the accept thread
   observes Stopped and closes the listener. *)

let c_accepted = Telemetry.Counter.make "srv.accepted"
let c_requests = Telemetry.Counter.make "srv.requests"
let c_responses = Telemetry.Counter.make "srv.responses"
let c_shed = Telemetry.Counter.make "srv.shed"
let c_draining = Telemetry.Counter.make "srv.draining_rejected"
let c_timeouts = Telemetry.Counter.make "srv.timeouts"
let c_protocol_errors = Telemetry.Counter.make "srv.protocol_errors"
let c_disconnects = Telemetry.Counter.make "srv.disconnects"
let c_http = Telemetry.Counter.make "srv.http_requests"
let h_request_us = Telemetry.Histogram.make "srv.request_us"

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port; see {!port} *)
  backlog : int;
  queue_capacity : int;
  workers : int;
  read_timeout_s : float;
  max_connections : int;
  limits : Protocol.limits;
  tenants : Tenants.config;
  record_spans : bool;
}

let default_config =
  { host = "127.0.0.1";
    port = 0;
    backlog = 64;
    queue_capacity = 32;
    workers = 2;
    read_timeout_s = 5.0;
    max_connections = 128;
    limits = Protocol.default_limits;
    tenants = Tenants.default_config;
    record_spans = false }

type handler =
  Protocol.recon_request ->
  (Protocol.recon_response, Protocol.status * string) result

(* Response rendezvous between a connection thread and a worker. *)
type cell = {
  cm : Mutex.t;
  cc : Condition.t;
  mutable result :
    (Protocol.recon_response, Protocol.status * string) result option;
}

type work = { req : Protocol.recon_request; cell : cell }

let running = 0
let draining = 1
let stopped = 2

type counters = {
  accepted : int Atomic.t;
  active_connections : int Atomic.t;
  http_requests : int Atomic.t;
  requests : int Atomic.t;
  responses : int Atomic.t;
  shed : int Atomic.t;
  draining_rejected : int Atomic.t;
  timeouts : int Atomic.t;
  protocol_errors : int Atomic.t;
  disconnects : int Atomic.t;
}

type t = {
  cfg : config;
  tenants : Tenants.t;
  handler : handler;
  (* queue + drain state, all under [qm] *)
  qm : Mutex.t;
  q_cond : Condition.t;
  done_cond : Condition.t;
  queue : work Queue.t;
  mutable executing : int;
  state : int Atomic.t;
  (* sockets / threads *)
  mutable listener : Unix.file_descr option;
  mutable bound_port : int;
  mutable accept_thread : Thread.t option;
  mutable worker_domains : unit Domain.t list;
  conns_m : Mutex.t;
  conns : (int, Unix.file_descr) Hashtbl.t;
  mutable conn_seq : int;
  mutable conn_threads : Thread.t list;
  (* plain-int mirrors of the telemetry counters, live even when
     telemetry is disabled *)
  n : counters;
}

type stats = {
  s_accepted : int;
  s_active_connections : int;
  s_http_requests : int;
  s_requests : int;
  s_responses : int;
  s_shed : int;
  s_draining_rejected : int;
  s_timeouts : int;
  s_protocol_errors : int;
  s_disconnects : int;
  s_queue_depth : int;
  s_executing : int;
  s_tenants : int;
}

let create ?(config = default_config) ?handler () =
  if config.workers < 1 then invalid_arg "Server.create: workers < 1";
  if config.queue_capacity < 1 then
    invalid_arg "Server.create: queue_capacity < 1";
  let tenants = Tenants.create ~config:config.tenants () in
  let handler =
    match handler with Some h -> h | None -> Tenants.handle tenants
  in
  { cfg = config;
    tenants;
    handler;
    qm = Mutex.create ();
    q_cond = Condition.create ();
    done_cond = Condition.create ();
    queue = Queue.create ();
    executing = 0;
    state = Atomic.make running;
    listener = None;
    bound_port = 0;
    accept_thread = None;
    worker_domains = [];
    conns_m = Mutex.create ();
    conns = Hashtbl.create 64;
    conn_seq = 0;
    conn_threads = [];
    n =
      { accepted = Atomic.make 0;
        active_connections = Atomic.make 0;
        http_requests = Atomic.make 0;
        requests = Atomic.make 0;
        responses = Atomic.make 0;
        shed = Atomic.make 0;
        draining_rejected = Atomic.make 0;
        timeouts = Atomic.make 0;
        protocol_errors = Atomic.make 0;
        disconnects = Atomic.make 0 } }

let port t = t.bound_port
let tenants t = t.tenants

let stats t =
  Mutex.lock t.qm;
  let depth = Queue.length t.queue and executing = t.executing in
  Mutex.unlock t.qm;
  { s_accepted = Atomic.get t.n.accepted;
    s_active_connections = Atomic.get t.n.active_connections;
    s_http_requests = Atomic.get t.n.http_requests;
    s_requests = Atomic.get t.n.requests;
    s_responses = Atomic.get t.n.responses;
    s_shed = Atomic.get t.n.shed;
    s_draining_rejected = Atomic.get t.n.draining_rejected;
    s_timeouts = Atomic.get t.n.timeouts;
    s_protocol_errors = Atomic.get t.n.protocol_errors;
    s_disconnects = Atomic.get t.n.disconnects;
    s_queue_depth = depth;
    s_executing = executing;
    s_tenants = Tenants.count t.tenants }

let stats_json t =
  let s = stats t in
  let ws = Pipeline.Workspace.stats (Tenants.workspace t.tenants) in
  Printf.sprintf
    "{\"accepted\":%d,\"active_connections\":%d,\"http_requests\":%d,\
     \"requests\":%d,\"responses\":%d,\"shed\":%d,\"draining_rejected\":%d,\
     \"timeouts\":%d,\"protocol_errors\":%d,\"disconnects\":%d,\
     \"queue_depth\":%d,\"executing\":%d,\"tenants\":%d,\
     \"arena_in_use\":%d,\"arena_retained\":%d}"
    s.s_accepted s.s_active_connections s.s_http_requests s.s_requests
    s.s_responses s.s_shed s.s_draining_rejected s.s_timeouts
    s.s_protocol_errors s.s_disconnects s.s_queue_depth s.s_executing
    s.s_tenants ws.Pipeline.Workspace.in_use ws.Pipeline.Workspace.retained

let metrics_text t =
  let s = stats t in
  Prometheus.render
    ~extra_gauges:
      [ ("srv.queue_depth", float_of_int s.s_queue_depth);
        ("srv.executing", float_of_int s.s_executing);
        ("srv.active_connections", float_of_int s.s_active_connections);
        ("srv.tenants", float_of_int s.s_tenants);
        (* tuner.trial / tuner.hit counters render from the registry;
           the cached-key population only exists as a snapshot. *)
        ("tuner.cached_keys", float_of_int (Nufft.Tuner.size ())) ]
    ()

(* ------------------------------------------------------------------ *)
(* Queue / drain machinery (invariants under [t.qm]) *)

let maybe_finish_drain_locked t =
  if
    Atomic.get t.state = draining
    && Queue.is_empty t.queue && t.executing = 0
  then begin
    Atomic.set t.state stopped;
    Condition.broadcast t.q_cond;
    Condition.broadcast t.done_cond
  end

type admission =
  | Admitted of cell
  | Rejected of Protocol.status * string

let admit t req =
  Mutex.lock t.qm;
  let r =
    if Atomic.get t.state <> running then
      Rejected (Protocol.Draining, "server is draining")
    else if Queue.length t.queue >= t.cfg.queue_capacity then
      Rejected
        ( Protocol.Shed,
          Printf.sprintf "admission queue full (%d)" t.cfg.queue_capacity )
    else begin
      let cell =
        { cm = Mutex.create (); cc = Condition.create (); result = None }
      in
      Queue.push { req; cell } t.queue;
      Condition.signal t.q_cond;
      Admitted cell
    end
  in
  Mutex.unlock t.qm;
  r

let await_cell cell =
  Mutex.lock cell.cm;
  let rec go () =
    match cell.result with
    | Some r -> r
    | None ->
        Condition.wait cell.cc cell.cm;
        go ()
  in
  let r = go () in
  Mutex.unlock cell.cm;
  r

let deliver cell r =
  Mutex.lock cell.cm;
  cell.result <- Some r;
  Condition.signal cell.cc;
  Mutex.unlock cell.cm

let worker_loop t () =
  let rec next_work () =
    (* under qm *)
    if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
    else if Atomic.get t.state <> running then None
    else begin
      Condition.wait t.q_cond t.qm;
      next_work ()
    end
  in
  let rec loop () =
    Mutex.lock t.qm;
    match next_work () with
    | None ->
        maybe_finish_drain_locked t;
        Mutex.unlock t.qm
    | Some { req; cell } ->
        t.executing <- t.executing + 1;
        Mutex.unlock t.qm;
        let t0 = Telemetry.Clock.now_ns () in
        let result =
          try t.handler req
          with exn ->
            (Protocol.Internal_error, Printexc.to_string exn) |> Result.error
        in
        let dt_us =
          float_of_int (Telemetry.Clock.now_ns () - t0) /. 1_000.0
        in
        Telemetry.Histogram.observe h_request_us dt_us;
        deliver cell result;
        Mutex.lock t.qm;
        t.executing <- t.executing - 1;
        maybe_finish_drain_locked t;
        Mutex.unlock t.qm;
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Socket plumbing *)

let write_all fd s =
  let len = String.length s in
  let b = Bytes.unsafe_of_string s in
  let rec go off =
    if off < len then begin
      let n = Unix.write fd b off (len - off) in
      go (off + n)
    end
  in
  go 0

let register_conn t fd =
  Mutex.lock t.conns_m;
  t.conn_seq <- t.conn_seq + 1;
  let id = t.conn_seq in
  Hashtbl.replace t.conns id fd;
  Mutex.unlock t.conns_m;
  id

let unregister_conn t id =
  Mutex.lock t.conns_m;
  Hashtbl.remove t.conns id;
  Mutex.unlock t.conns_m

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* HTTP interop: just enough of HTTP/1.1 for curl /metrics. *)

let http_response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
     Connection: close\r\n\r\n%s"
    status content_type (String.length body) body

let handle_http t fd first_chunk =
  Atomic.incr t.n.http_requests;
  Telemetry.Counter.incr c_http;
  (* Read until the end of the header block, bounded at 8 KiB. *)
  let buf = Buffer.create 512 in
  Buffer.add_string buf first_chunk;
  let chunk = Bytes.create 1024 in
  let rec fill () =
    let s = Buffer.contents buf in
    if Buffer.length buf > 8192 then ()
    else if
      String.length s >= 4
      && (let found = ref false in
          for i = 0 to String.length s - 4 do
            if String.sub s i 4 = "\r\n\r\n" then found := true
          done;
          !found)
    then ()
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> ()
      | n ->
          Buffer.add_subbytes buf chunk 0 n;
          fill ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | ETIMEDOUT), _, _)
        ->
          ()
  in
  fill ();
  let request = Buffer.contents buf in
  let path =
    match String.split_on_char ' ' request with
    | _meth :: path :: _ -> path
    | _ -> "/"
  in
  let response =
    match path with
    | "/metrics" -> http_response ~status:"200 OK"
        ~content_type:"text/plain; version=0.0.4" (metrics_text t)
    | "/healthz" ->
        let body =
          if Atomic.get t.state = running then "ok\n" else "draining\n"
        in
        http_response ~status:"200 OK" ~content_type:"text/plain" body
    | "/stats" ->
        http_response ~status:"200 OK" ~content_type:"application/json"
          (stats_json t)
    | _ ->
        http_response ~status:"404 Not Found" ~content_type:"text/plain"
          "not found\n"
  in
  try write_all fd response with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Connection protocol loop *)

let respond t fd response =
  write_all fd (Protocol.encode_response response);
  Atomic.incr t.n.responses;
  Telemetry.Counter.incr c_responses

let handle_request t fd (req : Protocol.request) =
  Atomic.incr t.n.requests;
  Telemetry.Counter.incr c_requests;
  match req with
  | Protocol.Ping -> respond t fd Protocol.Pong
  | Protocol.Metrics -> respond t fd (Protocol.Text (metrics_text t))
  | Protocol.Stats -> respond t fd (Protocol.Text (stats_json t))
  | Protocol.Recon r -> (
      match admit t r with
      | Rejected (status, msg) ->
          (match status with
          | Protocol.Shed ->
              Atomic.incr t.n.shed;
              Telemetry.Counter.incr c_shed
          | _ ->
              Atomic.incr t.n.draining_rejected;
              Telemetry.Counter.incr c_draining);
          respond t fd (Protocol.Err (status, msg))
      | Admitted cell -> (
          match await_cell cell with
          | Ok resp -> respond t fd (Protocol.Recon_ok resp)
          | Error (status, msg) -> respond t fd (Protocol.Err (status, msg))))

(* One connection: sniff HTTP on the first chunk, else run the framed
   protocol until EOF, timeout, or a framing error. *)
let conn_loop t fd =
  let dec = Protocol.Decoder.create ~limits:t.cfg.limits () in
  let chunk = Bytes.create 4096 in
  let rec drain_frames () =
    match Protocol.Decoder.next dec with
    | Ok None -> `Continue
    | Ok (Some frame) -> (
        match Protocol.decode_request ~limits:t.cfg.limits frame with
        | Ok req ->
            handle_request t fd req;
            drain_frames ()
        | Error e ->
            (* Payload-level error: typed response, then close — the
               stream itself framed correctly but the content is bad. *)
            Atomic.incr t.n.protocol_errors;
            Telemetry.Counter.incr c_protocol_errors;
            respond t fd
              (Protocol.Err (Protocol.status_of_error e, Protocol.error_message e));
            `Close)
    | Error e ->
        (* Framing error: the decoder is poisoned and the byte stream
           untrustworthy. Answer once, then close. *)
        Atomic.incr t.n.protocol_errors;
        Telemetry.Counter.incr c_protocol_errors;
        respond t fd
          (Protocol.Err (Protocol.status_of_error e, Protocol.error_message e));
        `Close
  in
  let rec read_loop ~first =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 ->
        if Protocol.Decoder.pending_bytes dec > 0 then begin
          (* mid-frame disconnect *)
          Atomic.incr t.n.disconnects;
          Telemetry.Counter.incr c_disconnects
        end
    | nread -> (
        let s = Bytes.sub_string chunk 0 nread in
        if first && Protocol.looks_like_http s then handle_http t fd s
        else begin
          Protocol.Decoder.feed_string dec s;
          match drain_frames () with
          | `Continue -> read_loop ~first:false
          | `Close -> ()
        end)
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | ETIMEDOUT), _, _) ->
        if Protocol.Decoder.pending_bytes dec > 0 then begin
          (* Slow loris: a partial frame sat in the buffer past the read
             timeout. Tell the client, then hang up. *)
          Atomic.incr t.n.timeouts;
          Telemetry.Counter.incr c_timeouts;
          try respond t fd (Protocol.Err (Protocol.Timeout, "read timed out"))
          with Unix.Unix_error _ -> ()
        end
        (* else: idle keep-alive connection timed out — close silently *)
    | exception Unix.Unix_error (EINTR, _, _) -> read_loop ~first
    | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) ->
        Atomic.incr t.n.disconnects;
        Telemetry.Counter.incr c_disconnects
  in
  (* Any other socket error mid-conversation (a write timing out against
     a stalled client, a reset during respond) counts as a disconnect;
     nothing propagates past the connection thread. *)
  (try read_loop ~first:true
   with Unix.Unix_error _ ->
     Atomic.incr t.n.disconnects;
     Telemetry.Counter.incr c_disconnects)

let conn_thread t fd =
  let id = register_conn t fd in
  Fun.protect
    ~finally:(fun () ->
      unregister_conn t id;
      close_quietly fd;
      Atomic.decr t.n.active_connections)
    (fun () -> conn_loop t fd)

(* ------------------------------------------------------------------ *)
(* Accept loop *)

let accept_loop t listener =
  let rec loop () =
    if Atomic.get t.state = stopped then close_quietly listener
    else begin
      (match Unix.select [ listener ] [] [] 0.05 with
      | [ _ ], _, _ -> (
          match Unix.accept listener with
          | fd, _addr ->
              Atomic.incr t.n.accepted;
              Telemetry.Counter.incr c_accepted;
              (try
                 Unix.setsockopt_float fd SO_RCVTIMEO t.cfg.read_timeout_s;
                 Unix.setsockopt_float fd SO_SNDTIMEO t.cfg.read_timeout_s;
                 Unix.setsockopt fd TCP_NODELAY true
               with Unix.Unix_error _ -> ());
              if Atomic.get t.state <> running then begin
                Atomic.incr t.n.draining_rejected;
                Telemetry.Counter.incr c_draining;
                (try
                   write_all fd
                     (Protocol.encode_response
                        (Protocol.Err (Protocol.Draining, "server is draining")))
                 with Unix.Unix_error _ -> ());
                close_quietly fd
              end
              else if
                Atomic.get t.n.active_connections >= t.cfg.max_connections
              then begin
                Atomic.incr t.n.shed;
                Telemetry.Counter.incr c_shed;
                (try
                   write_all fd
                     (Protocol.encode_response
                        (Protocol.Err
                           (Protocol.Shed, "connection limit reached")))
                 with Unix.Unix_error _ -> ());
                close_quietly fd
              end
              else begin
                Atomic.incr t.n.active_connections;
                let th = Thread.create (fun () -> conn_thread t fd) () in
                Mutex.lock t.conns_m;
                t.conn_threads <- th :: t.conn_threads;
                Mutex.unlock t.conns_m
              end
          | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _)
            ->
              ()
          | exception Unix.Unix_error ((EBADF | EINVAL), _, _) ->
              (* listener closed under us during stop *)
              Atomic.set t.state stopped)
      | _ -> ()
      | exception Unix.Unix_error (EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

let start t =
  if t.listener <> None then invalid_arg "Server.start: already started";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  Telemetry.set_span_recording t.cfg.record_spans;
  let addr = Unix.inet_addr_of_string t.cfg.host in
  let listener = Unix.socket PF_INET SOCK_STREAM 0 in
  (try
     Unix.setsockopt listener SO_REUSEADDR true;
     Unix.bind listener (ADDR_INET (addr, t.cfg.port));
     Unix.listen listener t.cfg.backlog
   with e ->
     close_quietly listener;
     raise e);
  t.bound_port <-
    (match Unix.getsockname listener with
    | ADDR_INET (_, p) -> p
    | _ -> t.cfg.port);
  t.listener <- Some listener;
  t.worker_domains <-
    List.init t.cfg.workers (fun _ -> Domain.spawn (worker_loop t));
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t listener) ())

let drain t =
  Mutex.lock t.qm;
  if Atomic.get t.state = running then Atomic.set t.state draining;
  Condition.broadcast t.q_cond;
  maybe_finish_drain_locked t;
  Mutex.unlock t.qm;
  (* Unblock reads on every live connection so idle keep-alive threads
     exit now instead of at their read timeout. Threads waiting on an
     in-flight response are not reading — their response still goes out
     on the intact write side. *)
  Mutex.lock t.conns_m;
  Hashtbl.iter
    (fun _ fd -> try Unix.shutdown fd SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    t.conns;
  Mutex.unlock t.conns_m

let drained t = Atomic.get t.state = stopped

let await_drained ?(timeout_s = 30.0) t =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec wait () =
    if drained t then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Mutex.lock t.qm;
      if not (drained t) then Condition.wait t.done_cond t.qm;
      Mutex.unlock t.qm;
      wait ()
    end
  in
  (* A waker tick so the condition wait cannot miss the deadline. *)
  if drained t then true
  else begin
    let stop_tick = Atomic.make false in
    let ticker =
      Thread.create
        (fun () ->
          while (not (Atomic.get stop_tick)) && not (drained t) do
            Thread.delay 0.02;
            Mutex.lock t.qm;
            Condition.broadcast t.done_cond;
            Mutex.unlock t.qm
          done)
        ()
    in
    let ok = wait () in
    Atomic.set stop_tick true;
    Thread.join ticker;
    ok
  end

let stop ?(timeout_s = 30.0) t =
  drain t;
  let ok = await_drained ~timeout_s t in
  if not ok then begin
    (* Hard deadline passed: force the state over so threads can exit. *)
    Mutex.lock t.qm;
    Atomic.set t.state stopped;
    Condition.broadcast t.q_cond;
    Condition.broadcast t.done_cond;
    Mutex.unlock t.qm
  end;
  List.iter Domain.join t.worker_domains;
  t.worker_domains <- [];
  (match t.accept_thread with
  | Some th ->
      Thread.join th;
      t.accept_thread <- None
  | None -> ());
  (* The accept thread closed the listener on its way out. *)
  t.listener <- None;
  Mutex.lock t.conns_m;
  let threads = t.conn_threads in
  t.conn_threads <- [];
  Mutex.unlock t.conns_m;
  List.iter Thread.join threads;
  ok
