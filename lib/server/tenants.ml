(* Per-tenant reconstruction services with quota'd plan caches.

   Each tenant gets its own [Recon_service] over its own bounded
   [Plan_cache], so one tenant's trajectory churn cannot evict another's
   hot plans; all tenants share one [Workspace] (arenas are
   request-scoped, so sharing them is pure amortisation with no
   cross-tenant state). The tenant population itself is bounded —
   admitting a new tenant past [max_tenants] is a typed [Quota] error,
   not an unbounded hashtable. *)

module Svc = Pipeline.Recon_service

let cg_iteration_cap = 10_000

type config = {
  max_tenants : int;
  cache_entries : int;
  cache_bytes : int option;
  default_backend : string;
  sigma : float;
}

let default_config =
  { max_tenants = 64;
    cache_entries = 8;
    cache_bytes = None;
    default_backend = "serial";
    sigma = 2.0 }

type t = {
  cfg : config;
  workspace : Pipeline.Workspace.t;
  services : (string, Svc.t) Hashtbl.t;
  mutex : Mutex.t;
}

let create ?(config = default_config) () =
  { cfg = config;
    workspace = Pipeline.Workspace.create ();
    services = Hashtbl.create 16;
    mutex = Mutex.create () }

let workspace t = t.workspace

let count t =
  Mutex.lock t.mutex;
  let n = Hashtbl.length t.services in
  Mutex.unlock t.mutex;
  n

let service t tenant =
  Mutex.lock t.mutex;
  let r =
    match Hashtbl.find_opt t.services tenant with
    | Some svc -> Ok svc
    | None ->
        if Hashtbl.length t.services >= t.cfg.max_tenants then
          Error
            ( Protocol.Quota,
              Printf.sprintf "tenant limit %d reached" t.cfg.max_tenants )
        else begin
          let cache =
            Pipeline.Plan_cache.create ~max_entries:t.cfg.cache_entries
              ?max_bytes:t.cfg.cache_bytes ()
          in
          (* Pool-less on purpose: server worker domains provide the
             request-level parallelism; a nested pool submission from a
             worker domain would deadlock. *)
          let svc =
            Svc.create ~cache ~workspace:t.workspace ~sigma:t.cfg.sigma ()
          in
          Hashtbl.add t.services tenant svc;
          Ok svc
        end
  in
  Mutex.unlock t.mutex;
  r

let cache_stats t =
  Mutex.lock t.mutex;
  let out =
    Hashtbl.fold
      (fun tenant svc acc -> (tenant, Pipeline.Plan_cache.stats (Svc.cache svc)) :: acc)
      t.services []
  in
  Mutex.unlock t.mutex;
  List.sort compare out

(* ------------------------------------------------------------------ *)
(* Wire request -> service request *)

let to_service_request t (r : Protocol.recon_request) =
  let m = Array.length r.values / 2 in
  if r.n < 2 || r.n > 4096 then
    Error (Protocol.Bad_request, Printf.sprintf "n %d not in 2..4096" r.n)
  else if m = 0 then Error (Protocol.Bad_request, "empty sample set")
  else if Array.length r.values <> 2 * m then
    Error (Protocol.Bad_request, "values length must be even")
  else if Array.length r.omega <> r.dims then
    Error
      ( Protocol.Bad_request,
        Printf.sprintf "%d omega axes for dims %d" (Array.length r.omega)
          r.dims )
  else if Array.exists (fun ax -> Array.length ax <> m) r.omega then
    Error (Protocol.Bad_request, "omega axis length differs from sample count")
  else if
    Array.exists (fun ax -> Array.exists (fun v -> not (Float.is_finite v)) ax)
      r.omega
  then Error (Protocol.Bad_request, "non-finite omega coordinate")
  else if r.transform = Nufft.Transform.Type2 then
    (* A JGS1 recon frame carries one value per sample; a forward (type-2)
       evaluation consumes an n^dims image payload the frame format does
       not model. In-process callers use [Recon_service] directly. *)
    Error
      ( Protocol.Bad_request,
        "type-2 (forward) requests are not served over the wire" )
  else
    match r.method_ with
    | Protocol.Cg iters when iters < 1 || iters > cg_iteration_cap ->
        Error
          ( Protocol.Bad_request,
            Printf.sprintf "cg iterations %d not in 1..%d" iters
              cg_iteration_cap )
    | _ ->
        let g =
          int_of_float (Float.round (t.cfg.sigma *. float_of_int r.n))
        in
        let values = Numerics.Cvec.create m in
        for j = 0 to m - 1 do
          Numerics.Cvec.set_parts values j r.values.(2 * j)
            r.values.((2 * j) + 1)
        done;
        (match Nufft.Sample.of_omega ~g ~omega:r.omega ~values with
        | coords ->
            Ok
              {
                Svc.backend =
                  (if r.backend = "" then t.cfg.default_backend else r.backend);
                transform = r.transform;
                n = r.n;
                coords;
                values;
                density = r.density;
                method_ =
                  (match r.method_ with
                  | Protocol.Adjoint -> Svc.Adjoint
                  | Protocol.Cg k -> Svc.Cg k);
                tol = r.tol;
                family = r.family;
              }
        | exception Invalid_argument msg -> Error (Protocol.Bad_request, msg))

let status_of_service_error = function
  | Svc.Invalid_request _ | Svc.Recon_error _ -> Protocol.Bad_request
  | Svc.Internal _ -> Protocol.Internal_error

let handle t (r : Protocol.recon_request) =
  match service t r.tenant with
  | Error _ as e -> e
  | Ok svc -> (
      match to_service_request t r with
      | Error _ as e -> e
      | Ok req -> (
          match Svc.submit svc req with
          | Error e -> Error (status_of_service_error e, Svc.error_message e)
          | Ok resp ->
              let ilen = Numerics.Cvec.length resp.Svc.image in
              let image = Array.make (2 * ilen) 0.0 in
              for j = 0 to ilen - 1 do
                image.(2 * j) <- Numerics.Cvec.get_re resp.Svc.image j;
                image.((2 * j) + 1) <- Numerics.Cvec.get_im resp.Svc.image j
              done;
              Ok
                {
                  Protocol.iterations = resp.Svc.iterations;
                  elapsed_s = resp.Svc.elapsed_s;
                  image_n = r.n;
                  image_dims = r.dims;
                  image;
                }))
