(* Length-prefixed binary wire protocol for the serving tier. See
   protocol.mli for the frame layout and the decoding discipline. All
   multi-byte integers are big-endian; floats travel as their IEEE-754
   bit patterns (bit-exact round-trip, NaN payloads included — the
   qcheck battery relies on it). *)

let magic = "JGS1"
let header_len = 10

type limits = { max_payload : int; max_samples : int; max_string : int }

let default_limits =
  { max_payload = 64 * 1024 * 1024; max_samples = 1 lsl 22; max_string = 256 }

(* ------------------------------------------------------------------ *)
(* Frame kinds and response statuses *)

let k_ping = 0x01
let k_recon = 0x02
let k_metrics = 0x03
let k_stats = 0x04
let k_pong = 0x80
let k_recon_ok = 0x81
let k_text = 0x82

type status =
  | Bad_request
  | Too_large
  | Shed
  | Draining
  | Timeout
  | Quota
  | Internal_error

let status_code = function
  | Bad_request -> 0x90
  | Too_large -> 0x91
  | Shed -> 0x92
  | Draining -> 0x93
  | Timeout -> 0x94
  | Quota -> 0x95
  | Internal_error -> 0x96

let status_of_code = function
  | 0x90 -> Some Bad_request
  | 0x91 -> Some Too_large
  | 0x92 -> Some Shed
  | 0x93 -> Some Draining
  | 0x94 -> Some Timeout
  | 0x95 -> Some Quota
  | 0x96 -> Some Internal_error
  | _ -> None

let status_name = function
  | Bad_request -> "bad-request"
  | Too_large -> "too-large"
  | Shed -> "shed"
  | Draining -> "draining"
  | Timeout -> "timeout"
  | Quota -> "quota"
  | Internal_error -> "internal"

let request_kind_valid k = k >= k_ping && k <= k_stats

let kind_valid k =
  request_kind_valid k
  || k = k_pong || k = k_recon_ok || k = k_text
  || status_of_code k <> None

(* ------------------------------------------------------------------ *)
(* Typed messages *)

type method_ = Adjoint | Cg of int

type recon_request = {
  tenant : string;
  backend : string;
  n : int;
  dims : int;
  method_ : method_;
  tol : float option;
  family : Numerics.Window.family option;
  transform : Nufft.Transform.t;
  omega : float array array;
  values : float array;
  density : float array option;
}

type request = Ping | Recon of recon_request | Metrics | Stats

type recon_response = {
  iterations : int;
  elapsed_s : float;
  image_n : int;
  image_dims : int;
  image : float array;
}

type response =
  | Pong
  | Recon_ok of recon_response
  | Text of string
  | Err of status * string

type error =
  | Bad_magic
  | Bad_kind of int
  | Oversized of { declared : int; limit : int }
  | Malformed of string

let error_message = function
  | Bad_magic -> "bad magic: not a JGS1 frame"
  | Bad_kind k -> Printf.sprintf "unknown frame kind 0x%02x" k
  | Oversized { declared; limit } ->
      Printf.sprintf "declared payload %d exceeds limit %d" declared limit
  | Malformed msg -> "malformed payload: " ^ msg

let status_of_error = function
  | Oversized _ -> Too_large
  | Bad_magic | Bad_kind _ | Malformed _ -> Bad_request

type frame = { kind : int; payload : string }

(* ------------------------------------------------------------------ *)
(* Little codec primitives over Buffer / string *)

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let put_u16 b v =
  put_u8 b (v lsr 8);
  put_u8 b v

let put_u32 b v =
  put_u8 b (v lsr 24);
  put_u8 b (v lsr 16);
  put_u8 b (v lsr 8);
  put_u8 b v

let put_f64 b v = Buffer.add_int64_be b (Int64.bits_of_float v)

let put_string b s =
  put_u16 b (String.length s);
  Buffer.add_string b s

let put_floats b a = Array.iter (put_f64 b) a

(* A reader is a (string, cursor) pair; every get checks bounds and
   raises [Short] which the decoder turns into a typed [Malformed]. *)
exception Short of string

type reader = { src : string; mutable pos : int }

let need r n what =
  if r.pos + n > String.length r.src then raise (Short what)

let get_u8 r what =
  need r 1 what;
  let v = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  v

let get_u16 r what =
  let hi = get_u8 r what in
  let lo = get_u8 r what in
  (hi lsl 8) lor lo

let get_u32 r what =
  let hi = get_u16 r what in
  let lo = get_u16 r what in
  (hi lsl 16) lor lo

let get_f64 r what =
  need r 8 what;
  let v = Int64.float_of_bits (String.get_int64_be r.src r.pos) in
  r.pos <- r.pos + 8;
  v

let get_string r limits what =
  let len = get_u16 r what in
  if len > limits.max_string then
    raise (Short (Printf.sprintf "%s longer than %d" what limits.max_string));
  need r len what;
  let s = String.sub r.src r.pos len in
  r.pos <- r.pos + len;
  s

let get_floats r n what =
  need r (8 * n) what;
  Array.init n (fun _ -> get_f64 r what)

(* ------------------------------------------------------------------ *)
(* Frame envelope *)

let encode_frame ~kind payload =
  let b = Buffer.create (header_len + String.length payload) in
  Buffer.add_string b magic;
  put_u8 b kind;
  put_u8 b 0 (* flags, reserved *);
  put_u32 b (String.length payload);
  Buffer.add_string b payload;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Request payloads *)

let family_code = function
  | None -> 0
  | Some Numerics.Window.KB -> 1
  | Some Numerics.Window.ES -> 2

let family_of_code = function
  | 0 -> Ok None
  | 1 -> Ok (Some Numerics.Window.KB)
  | 2 -> Ok (Some Numerics.Window.ES)
  | c -> Error (Printf.sprintf "unknown kernel family code %d" c)

let encode_recon_payload (r : recon_request) =
  let b = Buffer.create 1024 in
  put_string b r.tenant;
  put_string b r.backend;
  (match r.method_ with
  | Adjoint ->
      put_u8 b 0;
      put_u32 b 0
  | Cg iters ->
      put_u8 b 1;
      put_u32 b iters);
  put_u32 b r.n;
  put_u8 b r.dims;
  (match r.tol with
  | None ->
      put_u8 b 0;
      put_f64 b 0.0
  | Some tol ->
      put_u8 b 1;
      put_f64 b tol);
  put_u8 b (family_code r.family);
  put_u8 b (Nufft.Transform.code r.transform);
  let m = Array.length r.values / 2 in
  put_u32 b m;
  Array.iter (put_floats b) r.omega;
  put_floats b r.values;
  (match r.density with
  | None -> put_u8 b 0
  | Some d ->
      put_u8 b 1;
      put_floats b d);
  Buffer.contents b

let decode_recon_payload limits payload =
  let r = { src = payload; pos = 0 } in
  try
    let tenant = get_string r limits "tenant" in
    let backend = get_string r limits "backend" in
    let mcode = get_u8 r "method" in
    let iters = get_u32 r "cg iterations" in
    let method_ =
      match mcode with
      | 0 -> Adjoint
      | 1 -> Cg iters
      | c -> raise (Short (Printf.sprintf "unknown method code %d" c))
    in
    let n = get_u32 r "n" in
    let dims = get_u8 r "dims" in
    if dims < 1 || dims > 3 then
      raise (Short (Printf.sprintf "dims %d not in 1..3" dims));
    let has_tol = get_u8 r "tol flag" in
    let tolv = get_f64 r "tol" in
    let tol = if has_tol <> 0 then Some tolv else None in
    let family =
      match family_of_code (get_u8 r "family") with
      | Ok f -> f
      | Error msg -> raise (Short msg)
    in
    let transform =
      let c = get_u8 r "transform" in
      match Nufft.Transform.of_code c with
      | Some t -> t
      | None -> raise (Short (Printf.sprintf "unknown transform code %d" c))
    in
    let m = get_u32 r "m" in
    if m > limits.max_samples then
      raise
        (Short (Printf.sprintf "m %d exceeds limit %d" m limits.max_samples));
    let omega = Array.init dims (fun d ->
        get_floats r m (Printf.sprintf "omega axis %d" d))
    in
    let values = get_floats r (2 * m) "values" in
    let density =
      if get_u8 r "density flag" <> 0 then Some (get_floats r m "density")
      else None
    in
    if r.pos <> String.length payload then
      Error
        (Malformed
           (Printf.sprintf "%d trailing bytes after recon request"
              (String.length payload - r.pos)))
    else
      Ok
        { tenant; backend; n; dims; method_; tol; family; transform; omega;
          values; density }
  with Short what -> Error (Malformed ("truncated or invalid " ^ what))

let encode_request ?(limits = default_limits) req =
  ignore limits;
  match req with
  | Ping -> encode_frame ~kind:k_ping ""
  | Metrics -> encode_frame ~kind:k_metrics ""
  | Stats -> encode_frame ~kind:k_stats ""
  | Recon r -> encode_frame ~kind:k_recon (encode_recon_payload r)

let decode_request ?(limits = default_limits) (f : frame) =
  if f.kind = k_ping then
    if f.payload = "" then Ok Ping else Error (Malformed "ping carries payload")
  else if f.kind = k_metrics then
    if f.payload = "" then Ok Metrics
    else Error (Malformed "metrics carries payload")
  else if f.kind = k_stats then
    if f.payload = "" then Ok Stats
    else Error (Malformed "stats carries payload")
  else if f.kind = k_recon then
    Result.map (fun r -> Recon r) (decode_recon_payload limits f.payload)
  else Error (Bad_kind f.kind)

(* ------------------------------------------------------------------ *)
(* Response payloads *)

let encode_response = function
  | Pong -> encode_frame ~kind:k_pong ""
  | Text s -> encode_frame ~kind:k_text s
  | Err (status, msg) -> encode_frame ~kind:(status_code status) msg
  | Recon_ok r ->
      let b = Buffer.create (64 + (8 * Array.length r.image)) in
      put_u32 b r.iterations;
      put_f64 b r.elapsed_s;
      put_u32 b r.image_n;
      put_u8 b r.image_dims;
      put_floats b r.image;
      encode_frame ~kind:k_recon_ok (Buffer.contents b)

let decode_response (f : frame) =
  if f.kind = k_pong then
    if f.payload = "" then Ok Pong else Error (Malformed "pong carries payload")
  else if f.kind = k_text then Ok (Text f.payload)
  else
    match status_of_code f.kind with
    | Some status -> Ok (Err (status, f.payload))
    | None ->
        if f.kind <> k_recon_ok then Error (Bad_kind f.kind)
        else
          let r = { src = f.payload; pos = 0 } in
          (try
             let iterations = get_u32 r "iterations" in
             let elapsed_s = get_f64 r "elapsed" in
             let image_n = get_u32 r "image n" in
             let image_dims = get_u8 r "image dims" in
             let rem = String.length f.payload - r.pos in
             if rem mod 8 <> 0 then raise (Short "image bytes");
             let image = get_floats r (rem / 8) "image" in
             Ok (Recon_ok { iterations; elapsed_s; image_n; image_dims; image })
           with Short what -> Error (Malformed ("truncated " ^ what)))

(* ------------------------------------------------------------------ *)
(* Incremental frame decoder *)

module Decoder = struct
  type state = Ready | Failed of error

  type t = {
    limits : limits;
    mutable buf : Bytes.t;
    mutable len : int;  (* live bytes in [buf] starting at 0 *)
    mutable state : state;
  }

  let create ?(limits = default_limits) () =
    { limits; buf = Bytes.create 256; len = 0; state = Ready }

  let pending_bytes t = t.len

  let feed t s off n =
    if off < 0 || n < 0 || off + n > String.length s then
      invalid_arg "Protocol.Decoder.feed: bad substring";
    (match t.state with
    | Failed _ -> () (* poisoned: the connection is about to close *)
    | Ready ->
        if t.len + n > Bytes.length t.buf then begin
          let cap = max (t.len + n) (2 * Bytes.length t.buf) in
          let grown = Bytes.create cap in
          Bytes.blit t.buf 0 grown 0 t.len;
          t.buf <- grown
        end;
        Bytes.blit_string s off t.buf t.len n;
        t.len <- t.len + n)

  let feed_string t s = feed t s 0 (String.length s)

  let consume t n =
    Bytes.blit t.buf n t.buf 0 (t.len - n);
    t.len <- t.len - n

  (* One frame if a full one is buffered; [Ok None] when more bytes are
     needed. Header validation is eager: a bad magic or an oversized
     declared length fails as soon as the header is complete, without
     waiting for (or buffering) the declared payload. A failed decoder
     stays failed — the transport is untrustworthy after a framing
     error, so the server closes the connection. *)
  let next t =
    match t.state with
    | Failed e -> Error e
    | Ready ->
        if t.len < header_len then Ok None
        else begin
          let ok_magic =
            Bytes.get t.buf 0 = magic.[0]
            && Bytes.get t.buf 1 = magic.[1]
            && Bytes.get t.buf 2 = magic.[2]
            && Bytes.get t.buf 3 = magic.[3]
          in
          if not ok_magic then begin
            t.state <- Failed Bad_magic;
            Error Bad_magic
          end
          else
            let kind = Char.code (Bytes.get t.buf 4) in
            let declared =
              let b i = Char.code (Bytes.get t.buf i) in
              (b 6 lsl 24) lor (b 7 lsl 16) lor (b 8 lsl 8) lor b 9
            in
            if not (kind_valid kind) then begin
              let e = Bad_kind kind in
              t.state <- Failed e;
              Error e
            end
            else if declared > t.limits.max_payload then begin
              let e =
                Oversized { declared; limit = t.limits.max_payload }
              in
              t.state <- Failed e;
              Error e
            end
            else if t.len < header_len + declared then Ok None
            else begin
              let payload =
                Bytes.sub_string t.buf header_len declared
              in
              consume t (header_len + declared);
              Ok (Some { kind; payload })
            end
        end
end

(* ------------------------------------------------------------------ *)
(* HTTP sniffing *)

let looks_like_http prefix =
  let starts p =
    String.length prefix >= String.length p
    && String.sub prefix 0 (String.length p) = p
  in
  starts "GET " || starts "HEAD" || starts "POST" || starts "PUT "

(* ------------------------------------------------------------------ *)
(* Structural equality helpers (bit-exact on floats), for tests *)

let float_bits_equal a b = Int64.bits_of_float a = Int64.bits_of_float b

let floats_equal a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri (fun i x -> if not (float_bits_equal x b.(i)) then ok := false) a;
      !ok)

let opt_floats_equal a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> floats_equal a b
  | _ -> false

let recon_request_equal (a : recon_request) (b : recon_request) =
  a.tenant = b.tenant && a.backend = b.backend && a.n = b.n && a.dims = b.dims
  && a.method_ = b.method_
  && (match (a.tol, b.tol) with
     | None, None -> true
     | Some x, Some y -> float_bits_equal x y
     | _ -> false)
  && a.family = b.family
  && a.transform = b.transform
  && Array.length a.omega = Array.length b.omega
  && Array.for_all2 floats_equal a.omega b.omega
  && floats_equal a.values b.values
  && opt_floats_equal a.density b.density

let request_equal a b =
  match (a, b) with
  | Ping, Ping | Metrics, Metrics | Stats, Stats -> true
  | Recon x, Recon y -> recon_request_equal x y
  | _ -> false
