(** The serving tier: a length-prefixed binary protocol server over
    OCaml 5 domains, with admission control and graceful drain.

    Execution model: one systhread accepts connections, one systhread
    per connection runs the {!Protocol.Decoder} and writes responses
    (blocking I/O releases the runtime lock), and [workers] spawned
    {e domains} execute reconstructions pulled from a bounded queue —
    request-level CPU parallelism without nested-pool deadlocks (tenant
    services are pool-less by construction, see {!Tenants}).

    Admission control: [Recon] requests pass the bounded queue; a full
    queue answers a typed {!Protocol.Shed} immediately (load shedding —
    a saturated server never blocks its clients), a draining server
    answers {!Protocol.Draining}. Ping, metrics and stats are served
    inline on the connection thread, bypassing the queue, so
    observability survives overload.

    Defence: per-socket read/write timeouts (a partial frame older than
    the timeout is answered {!Protocol.Timeout} and the connection
    closed — slow-loris); framing errors poison the decoder, get one
    typed error response, and close; payload errors answer typed
    statuses on a still-live connection. No exception escapes a
    connection thread or worker (asserted by the fault-injection
    tests).

    HTTP interop: a first chunk that looks like an HTTP request line is
    served a minimal HTTP/1.1 response — [GET /metrics] returns the
    Prometheus exposition, [/healthz] and [/stats] likewise — so [curl]
    works against the same port.

    Graceful drain: {!drain} stops admission (new connections and new
    requests get {!Protocol.Draining}) while every in-flight request
    completes and is answered; the last finishing worker flips the
    server to stopped, the accept thread closes the listener. *)

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port; read it back with {!port} *)
  backlog : int;
  queue_capacity : int;  (** admission queue bound; beyond it, [Shed] *)
  workers : int;  (** reconstruction worker domains *)
  read_timeout_s : float;
  max_connections : int;
  limits : Protocol.limits;
  tenants : Tenants.config;
  record_spans : bool;
      (** keep span recording on (default off: a long-running server's
          span sinks grow without bound; counters and histograms stay
          live either way) *)
}

val default_config : config
(** Loopback, ephemeral port, queue of 32, 2 workers, 5 s timeouts,
    128 connections. *)

type handler =
  Protocol.recon_request ->
  (Protocol.recon_response, Protocol.status * string) result
(** The work an admitted request performs on a worker domain. The
    default is {!Tenants.handle}; tests inject latching handlers to make
    drain and shedding deterministic. *)

type t

val create : ?config:config -> ?handler:handler -> unit -> t
val start : t -> unit
(** Bind, listen, spawn workers and the accept thread. Raises
    [Invalid_argument] if already started; [Unix.Unix_error] if the
    bind fails. *)

val port : t -> int
(** The bound port (meaningful after {!start}). *)

val tenants : t -> Tenants.t

val drain : t -> unit
(** Begin graceful drain: stop admitting, unblock idle connection reads,
    let in-flight requests finish and answer. Idempotent. *)

val drained : t -> bool

val await_drained : ?timeout_s:float -> t -> bool
(** Block until the drain completes (queue empty, nothing executing);
    [false] on timeout. *)

val stop : ?timeout_s:float -> t -> bool
(** {!drain}, await, then join every worker domain and thread and close
    the listener. Returns whether the drain completed within
    [timeout_s] (the join happens regardless). *)

(** {1 Introspection} *)

type stats = {
  s_accepted : int;
  s_active_connections : int;
  s_http_requests : int;
  s_requests : int;
  s_responses : int;
  s_shed : int;
  s_draining_rejected : int;
  s_timeouts : int;
  s_protocol_errors : int;
  s_disconnects : int;
  s_queue_depth : int;
  s_executing : int;
  s_tenants : int;
}

val stats : t -> stats
(** Live counters (plain atomics — meaningful even with telemetry
    disabled). *)

val stats_json : t -> string
val metrics_text : t -> string
(** The Prometheus exposition a [/metrics] scrape returns. *)
