(** Blocking JGS1 protocol client — one outstanding request per
    connection. Used by the CLI, the load bench and the tests; not a
    production SDK. *)

type call_error =
  | Closed  (** connection closed before a complete response arrived *)
  | Protocol_error of Protocol.error
  | Io_error of string

val call_error_message : call_error -> string

type t

val connect :
  ?host:string -> ?limits:Protocol.limits -> port:int -> unit -> t
(** Raises [Unix.Unix_error] when the server is unreachable. *)

val close : t -> unit

val call : t -> Protocol.request -> (Protocol.response, call_error) result
(** Send one request and block for its response. Server-side typed
    errors arrive as [Ok (Err _)] — they are successful protocol
    exchanges; [Error _] means the exchange itself failed. *)

val send_raw : t -> string -> (unit, call_error) result
(** Write raw bytes (fault-injection tests: torn frames, garbage). *)

val recv_response : t -> (Protocol.response, call_error) result

val ping : t -> (unit, call_error) result
val metrics : t -> (string, call_error) result
