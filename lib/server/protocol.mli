(** Length-prefixed binary wire protocol for the serving tier.

    Every message is one {e frame}:

    {v
      +------+------+-------+-------------+-----------------+
      | "JGS1" (4)  | kind  | flags (1,0) | length u32 BE   |  payload ...
      +------+------+-------+-------------+-----------------+
    v}

    10 header bytes, then [length] payload bytes. Kinds [0x01-0x04] are
    requests (ping / recon / metrics / stats), [0x80-0x82] successful
    responses (pong / recon result / text), [0x90-0x96] typed error
    statuses (the binary analogue of HTTP 4xx/5xx). Integers are
    big-endian; floats are IEEE-754 bit patterns via [Int64], so
    encode/decode round-trips are bit-exact (NaNs included — the qcheck
    battery depends on this).

    Decoding is defensive by construction: the incremental {!Decoder}
    validates the header as soon as its 10 bytes arrive (bad magic,
    unknown kind, and oversized declared lengths are rejected {e before}
    any payload is buffered), payload decoders bounds-check every read
    and return typed {!error}s, and a decoder that has failed stays
    failed — after a framing error the byte stream cannot be trusted, so
    the server answers with the mapped status and closes the
    connection. *)

val magic : string
(** ["JGS1"]. *)

val header_len : int
(** 10. *)

type limits = {
  max_payload : int;  (** frame payload byte cap *)
  max_samples : int;  (** recon sample-count cap *)
  max_string : int;  (** tenant/backend name length cap *)
}

val default_limits : limits
(** 64 MiB payloads, [2^22] samples, 256-byte names. *)

(** {1 Typed messages} *)

type status =
  | Bad_request  (** malformed frame or semantically invalid request *)
  | Too_large  (** declared payload exceeds {!limits} *)
  | Shed  (** admission queue full — retry later (HTTP 429 analogue) *)
  | Draining  (** server is draining; no new work (HTTP 503 analogue) *)
  | Timeout  (** read timed out mid-request (slow-loris defence) *)
  | Quota  (** per-tenant quota exceeded *)
  | Internal_error

val status_code : status -> int
val status_of_code : int -> status option
val status_name : status -> string

type method_ = Adjoint | Cg of int  (** direct adjoint, or CG iterations *)

type recon_request = {
  tenant : string;
  backend : string;  (** pipeline backend name, [""] = default *)
  n : int;  (** image grid size per side *)
  dims : int;  (** 1..3 *)
  method_ : method_;
  tol : float option;  (** plan accuracy target *)
  family : Numerics.Window.family option;  (** kernel family override *)
  transform : Nufft.Transform.t;
      (** transform type, one wire byte ({!Nufft.Transform.code}) after
          the family byte. Type-1 reconstructs; type-3 treats [omega] as
          arbitrary source frequencies and reconstructs on the lattice.
          Type-2 decodes but is rejected at the serving layer: JGS1 recon
          frames carry one value per sample, not the [n^dims] image a
          forward evaluation consumes. *)
  omega : float array array;  (** [dims] axes of [m] radians, [-pi, pi) *)
  values : float array;  (** [2m] interleaved re/im sample values *)
  density : float array option;  (** [m] compensation weights *)
}

type request = Ping | Recon of recon_request | Metrics | Stats

type recon_response = {
  iterations : int;
  elapsed_s : float;
  image_n : int;
  image_dims : int;
  image : float array;  (** [2 * image_n^image_dims] interleaved re/im *)
}

type response =
  | Pong
  | Recon_ok of recon_response
  | Text of string  (** metrics / stats payloads *)
  | Err of status * string

(** {1 Errors} *)

type error =
  | Bad_magic
  | Bad_kind of int
  | Oversized of { declared : int; limit : int }
  | Malformed of string

val error_message : error -> string

val status_of_error : error -> status
(** The wire status a server answers with: {!Oversized} maps to
    {!Too_large}, everything else to {!Bad_request}. *)

(** {1 Frames and codecs} *)

type frame = { kind : int; payload : string }

val encode_frame : kind:int -> string -> string

val encode_request : ?limits:limits -> request -> string
val decode_request : ?limits:limits -> frame -> (request, error) result

val encode_response : response -> string
val decode_response : frame -> (response, error) result

(** {1 Incremental decoder}

    Feed arbitrary byte fragments as they arrive from a socket; pull
    complete frames out. Tolerant of any fragmentation (torn reads at
    every byte boundary — property-tested), intolerant of garbage: the
    first framing error poisons the decoder permanently. *)
module Decoder : sig
  type t

  val create : ?limits:limits -> unit -> t

  val feed : t -> string -> int -> int -> unit
  (** [feed t s off n] appends [s[off .. off+n)] to the buffer. No-op on
      a poisoned decoder. Raises [Invalid_argument] on a bad substring. *)

  val feed_string : t -> string -> unit

  val next : t -> (frame option, error) result
  (** [Ok (Some f)] — a complete frame (consumed from the buffer);
      [Ok None] — need more bytes; [Error e] — framing error, decoder
      is now poisoned and every later call returns the same error. *)

  val pending_bytes : t -> int
  (** Bytes buffered but not yet consumed as frames. 0 after the last
      complete frame of a well-formed stream — the keep-alive
      state-isolation property tests assert this. *)
end

(** {1 HTTP interop} *)

val looks_like_http : string -> bool
(** [true] if a connection's first bytes look like an HTTP/1.1 request
    line ([GET ] / [HEAD] / [POST] / [PUT ]) rather than a JGS1 frame —
    the server sniffs this to serve [/metrics] and [/healthz] to plain
    [curl]. *)

(** {1 Structural equality (bit-exact floats) — for tests} *)

val recon_request_equal : recon_request -> recon_request -> bool
val request_equal : request -> request -> bool
