(** Per-tenant service sharding for the serving tier.

    Each tenant name maps to its own {!Pipeline.Recon_service} backed by
    a {e bounded} {!Pipeline.Plan_cache} (entry/byte quotas from
    {!config}), so tenants amortise plans among their own requests but
    cannot evict each other's. All tenants share one
    {!Pipeline.Workspace} — arenas are request-scoped, so sharing is
    amortisation without cross-tenant state. The tenant table itself is
    quota'd: past [max_tenants], admission fails with the typed
    {!Protocol.Quota} status. *)

type config = {
  max_tenants : int;
  cache_entries : int;  (** per-tenant plan-cache entry quota *)
  cache_bytes : int option;  (** per-tenant plan-cache byte quota *)
  default_backend : string;  (** used when the wire request says [""] *)
  sigma : float;  (** NuFFT oversampling; fixes [g = round (sigma * n)] *)
}

val default_config : config
(** 64 tenants, 8 cache entries each, backend ["serial"], [sigma = 2]. *)

type t

val create : ?config:config -> unit -> t
val workspace : t -> Pipeline.Workspace.t
val count : t -> int

val service : t -> string -> (Pipeline.Recon_service.t, Protocol.status * string) result
(** Find-or-create the named tenant's service. *)

val cache_stats : t -> (string * Pipeline.Plan_cache.stats) list
(** Per-tenant plan-cache statistics, sorted by tenant name. *)

val handle :
  t ->
  Protocol.recon_request ->
  (Protocol.recon_response, Protocol.status * string) result
(** Execute one wire reconstruction request on its tenant's service:
    validates wire-level invariants (dims/axis lengths, finite
    coordinates, CG iteration cap), converts omega radians to grid-unit
    coordinates at [g = round (sigma * n)], submits synchronously, and
    maps service errors to wire statuses. Never raises. *)
