(** Minimal binary PGM (P5) image writer — enough to eyeball
    reconstructions (the visual half of the paper's Fig 9). *)

val write :
  path:string -> n:int -> ?lo:float -> ?hi:float -> float array -> unit
(** [write ~path ~n values] writes a [n x n] 8-bit grayscale image,
    linearly mapping [[lo, hi]] (defaults: the data's min/max) to 0..255.
    Raises [Invalid_argument] if [values] is not [n*n] long. *)

val write_magnitude : path:string -> n:int -> Numerics.Cvec.t -> unit
(** Convenience: write the magnitude of a complex image. *)
