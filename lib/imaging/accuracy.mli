(** Measured accuracy of the tolerance-driven NuFFT vs the exact NuDFT.

    The [?tol] plan path ({!Nufft.Plan.make}) promises geometry whose
    relative-L2 error against {!Nufft.Nudft} stays within
    {!contract_slack} (10x) of the request. This module {e measures} that
    promise: one {!row} per (kernel family, tolerance, dimensionality,
    trajectory) cell, on problems small enough for the O(M n^dims)
    reference. [test_accuracy.ml] asserts the full sweep in
    [dune runtest]; the CLI [accuracy --contract] subcommand runs it as a
    CI smoke gate; the operators bench reports {!backend_rel_l2_err} per
    backend. *)

type traj = Radial | Spiral | Random

val traj_name : traj -> string
val traj_of_string : string -> traj option

val all_trajs : traj list
(** [[Radial; Spiral; Random]] — in 3D, radial/spiral are lifted to
    stack-of-stars / stack-of-spirals (uniform kz plateaus). *)

val default_tols : float list
(** [1e-2 .. 1e-6], the acceptance-criteria sweep. *)

(** One measured cell: the derived geometry and the observed adjoint +
    forward relative-L2 errors. *)
type row = {
  family : Numerics.Window.family;
  tol : float;  (** requested *)
  dims : int;
  traj : traj;
  width : int;  (** derived window width *)
  l : int;  (** derived table oversampling *)
  adjoint_err : float;
  forward_err : float;
}

val contract_slack : float
(** 10.0 — measured error must stay within [slack * tol]. *)

val worst : row -> float
(** max of adjoint and forward error. *)

val row_ok : ?slack:float -> row -> bool
val failures : ?slack:float -> row list -> row list

val measure :
  ?seed:int ->
  ?n:int ->
  ?m:int ->
  family:Numerics.Window.family ->
  tol:float ->
  dims:int ->
  traj:traj ->
  unit ->
  row
(** Build a [?tol] plan, apply adjoint + forward on a seeded random
    problem ([n = 18, m = 384] in 2D; [n = 10, m = 320] in 3D by
    default), and compare against the exact NuDFT. *)

val sweep :
  ?seed:int ->
  ?families:Numerics.Window.family list ->
  ?tols:float list ->
  ?dims:int list ->
  ?trajs:traj list ->
  unit ->
  row list
(** The full grid of {!measure} calls (defaults: both families, all five
    tolerances, 2D+3D, all trajectories — 60 cells). *)

val measure_type3 :
  ?seed:int ->
  ?m_in:int ->
  ?m_out:int ->
  family:Numerics.Window.family ->
  tol:float ->
  dims:int ->
  unit ->
  row
(** One type-3 cell: random real source points and target frequencies
    (150 -> 120 points in 2D, 90 -> 70 in 3D by default), transformed via
    the scale/shift decomposition ({!Nufft.Plan.make_type3}) and compared
    against the direct {!Nufft.Nudft.type3} oracle. The single measured
    error fills both [adjoint_err] and [forward_err] (so {!row_ok} and
    {!failures} apply unchanged); [traj] is [Random], [width] is the
    decomposition's window width and [l] its fine-grid size [nf]. *)

val sweep_type3 :
  ?seed:int ->
  ?families:Numerics.Window.family list ->
  ?tols:float list ->
  ?dims:int list ->
  unit ->
  row list
(** The type-3 grid of {!measure_type3} calls (defaults: both families,
    all five tolerances, 2D+3D — 20 cells), separate from {!sweep} so
    existing consumers of the 60-cell lattice sweep are unchanged. *)

val pp_row : Format.formatter -> row -> unit

val backend_rel_l2_err : ?seed:int -> ?tol:float -> string -> float
(** Adjoint relative-L2 error of the named registry backend on a small
    canonical 2D problem (n = 16, m = 256 random samples), optionally
    through a tolerance-driven context. Raises like {!Nufft.Operator.create}
    for unknown names. *)
