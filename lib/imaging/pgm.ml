let write ~path ~n ?lo ?hi values =
  if Array.length values <> n * n then
    invalid_arg "Pgm.write: values must be n*n long";
  let lo =
    match lo with Some v -> v | None -> Array.fold_left Float.min Float.infinity values
  in
  let hi =
    match hi with Some v -> v | None -> Array.fold_left Float.max Float.neg_infinity values
  in
  let range = if hi -. lo <= 0.0 then 1.0 else hi -. lo in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "P5\n%d %d\n255\n" n n;
      Array.iter
        (fun v ->
          let scaled = (v -. lo) /. range *. 255.0 in
          let byte = int_of_float (Float.round scaled) in
          output_char oc (Char.chr (max 0 (min 255 byte))))
        values)

let write_magnitude ~path ~n img =
  write ~path ~n (Metrics.magnitude_image img)
