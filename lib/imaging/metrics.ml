module Cvec = Numerics.Cvec
module C = Numerics.Complexd

let nrmsd ~reference v = Cvec.nrmsd ~reference v

let nrmsd_percent ~reference v = 100.0 *. nrmsd ~reference v

let nrmsd_scaled ~reference v =
  if Cvec.length reference <> Cvec.length v then
    invalid_arg "Metrics.nrmsd_scaled: length mismatch";
  let xx = Cvec.norm2 v in
  if xx = 0.0 then nrmsd ~reference v
  else begin
    let xr = Cvec.dot v reference in
    let alpha = C.scale (1.0 /. xx) xr in
    let scaled = Cvec.map (fun c -> C.mul alpha c) v in
    nrmsd ~reference scaled
  end

let max_abs_error ~reference v = Cvec.max_abs_diff reference v

let psnr ~reference v =
  if Cvec.length reference <> Cvec.length v then
    invalid_arg "Metrics.psnr: length mismatch";
  let n = Cvec.length reference in
  let peak = ref 0.0 and mse = ref 0.0 in
  for k = 0 to n - 1 do
    let r = Cvec.get reference k and x = Cvec.get v k in
    let mag = C.norm r in
    if mag > !peak then peak := mag;
    mse := !mse +. C.norm2 (C.sub r x)
  done;
  let mse = !mse /. float_of_int n in
  if mse = 0.0 then Float.infinity
  else 10.0 *. Float.log10 (!peak *. !peak /. mse)

let magnitude_image v = Array.init (Cvec.length v) (fun k -> C.norm (Cvec.get v k))
