(** End-to-end MRI reconstruction driver: simulate a non-Cartesian
    acquisition of an image with the forward NuFFT, then reconstruct with
    density-compensated adjoint NuFFT (direct gridding reconstruction —
    the pipeline of the paper's Fig 1 and Fig 9).

    The driver is written against {!Nufft.Operator}, so it is backend-
    and dimension-agnostic: hand it a [serial] CPU operator, the
    [jigsaw-2d] fixed-point engine or a 3D operator over an [n^3] volume
    and the same three functions apply. The plan-based functions are the
    historical 2D API and delegate to the operator path.

    Reconstruction entry points return typed {!error}s rather than raising:
    malformed inputs (mismatched density weights, empty sample sets) and
    backend validation failures surface as [Error] values a serving layer
    can report cleanly, never as escaped exceptions. *)

type error =
  | Density_length_mismatch of { expected : int; got : int }
      (** [density] array length differs from the sample count. *)
  | Empty_sample_set  (** zero samples: nothing to reconstruct. *)
  | Backend_failure of string
      (** a backend rejected the request (grid mismatch, unsupported
          dimensionality, ...) — the carried string is its message. *)

val error_message : error -> string
(** Human-readable one-line rendering of an {!error}. *)

val coords_of_traj : g:int -> Trajectory.Traj.t -> Nufft.Sample.t
(** Trajectory frequencies mapped to grid units on a [g]-point grid, as a
    value-less sample set — the coordinate binding for an operator
    context. *)

val acquire_op : Nufft.Operator.op -> Numerics.Cvec.t -> Nufft.Sample.t
(** [acquire_op op image] evaluates the image's spectrum at the operator's
    bound coordinates (forward NuFFT) and returns the simulated k-space
    sample set. *)

val reconstruct_op :
  ?density:float array ->
  Nufft.Operator.op ->
  Nufft.Sample.t ->
  (Numerics.Cvec.t, error) result
(** Adjoint NuFFT of (optionally density-compensated) samples through any
    backend, scaled by [1/m] for unit gain on uniform full sampling. *)

val roundtrip_op :
  ?density:float array ->
  Nufft.Operator.op ->
  Numerics.Cvec.t ->
  (Numerics.Cvec.t * float, error) result
(** [roundtrip_op op image] = (reconstruction, NRMSD vs the input): one
    forward and one adjoint application of the same operator. Works for
    any registered backend and dimensionality — this is the 3D
    reconstruction path as much as the 2D one. *)

val acquire :
  Nufft.Plan.plan -> Trajectory.Traj.t -> Numerics.Cvec.t -> Nufft.Sample.t2
(** [acquire plan traj image] evaluates the image's spectrum at the
    trajectory's frequencies (forward NuFFT) and returns the simulated
    k-space sample set. *)

val reconstruct :
  ?density:float array ->
  Nufft.Plan.plan ->
  Nufft.Sample.t2 ->
  (Numerics.Cvec.t, error) result
(** Adjoint NuFFT of (optionally density-compensated) samples, scaled by
    [1 / (m * sigma^2)] so a fully, uniformly sampled acquisition
    reconstructs at unit gain. *)

val roundtrip :
  ?density:float array ->
  Nufft.Plan.plan ->
  Trajectory.Traj.t ->
  Numerics.Cvec.t ->
  (Numerics.Cvec.t * float, error) result
(** [roundtrip plan traj image] = (reconstruction, NRMSD vs the input).
    Density defaults to uniform weights. *)
