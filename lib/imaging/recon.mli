(** End-to-end MRI reconstruction driver: simulate a non-Cartesian
    acquisition of an image with the forward NuFFT, then reconstruct with
    density-compensated adjoint NuFFT (direct gridding reconstruction —
    the pipeline of the paper's Fig 1 and Fig 9). *)

val acquire :
  Nufft.Plan.plan -> Trajectory.Traj.t -> Numerics.Cvec.t -> Nufft.Sample.t2
(** [acquire plan traj image] evaluates the image's spectrum at the
    trajectory's frequencies (forward NuFFT) and returns the simulated
    k-space sample set. *)

val reconstruct :
  ?density:float array ->
  Nufft.Plan.plan ->
  Nufft.Sample.t2 ->
  Numerics.Cvec.t
(** Adjoint NuFFT of (optionally density-compensated) samples, scaled by
    [1 / (m * sigma^2)] so a fully, uniformly sampled acquisition
    reconstructs at unit gain. *)

val roundtrip :
  ?density:float array ->
  Nufft.Plan.plan ->
  Trajectory.Traj.t ->
  Numerics.Cvec.t ->
  Numerics.Cvec.t * float
(** [roundtrip plan traj image] = (reconstruction, NRMSD vs the input).
    Density defaults to uniform weights. *)
