(** Density compensation for non-Cartesian reconstruction.

    The adjoint NuFFT weights each sample by the local sampling density
    unless compensated. Analytic ramps exist only for special trajectories
    ({!Trajectory.Radial.density_weights}); the Pipe-Menon fixed point
    works for any pattern: iterate [w <- w / (C w)] where [C] is the
    gridding-then-interpolation operator, until the gridded density is
    flat. (Pipe & Menon 1999; ref [12] of the paper discusses the kernel
    design for this style of sampling-density correction.)

    The [_s] functions are dimension-generic over a {!Nufft.Sample.t}
    coordinate set (2D or 3D; the values are ignored); the coordinate-
    array functions are the historical 2D API. *)

val pipe_menon_s :
  ?iterations:int ->
  table:Numerics.Weight_table.t ->
  Nufft.Sample.t ->
  float array
(** [pipe_menon_s ~table coords] — density-compensation weights for the
    given sample locations (default 15 iterations), normalised to sum to
    the sample count. *)

val flatness_s :
  table:Numerics.Weight_table.t -> Nufft.Sample.t -> float array -> float
(** Coefficient of variation (std/mean) of [C w] at the sample locations —
    0 means perfectly compensated. *)

val pipe_menon :
  ?iterations:int ->
  table:Numerics.Weight_table.t ->
  g:int ->
  gx:float array ->
  gy:float array ->
  unit ->
  float array
(** 2D wrapper over {!pipe_menon_s}. *)

val flatness :
  table:Numerics.Weight_table.t ->
  g:int ->
  gx:float array ->
  gy:float array ->
  float array ->
  float
(** 2D wrapper over {!flatness_s}; used by tests and diagnostics. *)
