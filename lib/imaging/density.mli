(** Density compensation for non-Cartesian reconstruction.

    The adjoint NuFFT weights each sample by the local sampling density
    unless compensated. Analytic ramps exist only for special trajectories
    ({!Trajectory.Radial.density_weights}); the Pipe-Menon fixed point
    works for any pattern: iterate [w <- w / (C w)] where [C] is the
    gridding-then-interpolation operator, until the gridded density is
    flat. (Pipe & Menon 1999; ref [12] of the paper discusses the kernel
    design for this style of sampling-density correction.) *)

val pipe_menon :
  ?iterations:int ->
  table:Numerics.Weight_table.t ->
  g:int ->
  gx:float array ->
  gy:float array ->
  unit ->
  float array
(** [pipe_menon ~table ~g ~gx ~gy ()] — density-compensation weights for
    the given sample locations (default 15 iterations), normalised to sum
    to the sample count. *)

val flatness :
  table:Numerics.Weight_table.t ->
  g:int ->
  gx:float array ->
  gy:float array ->
  float array ->
  float
(** Coefficient of variation (std/mean) of [C w] at the sample locations —
    0 means perfectly compensated; used by tests and diagnostics. *)
