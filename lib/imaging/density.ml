module Cvec = Numerics.Cvec
module C = Numerics.Complexd

(* C w: spread the (real) weights, then interpolate back at the sample
   locations; the result estimates the local gridded density. *)
let apply_c ~table ~g ~gx ~gy w =
  let m = Array.length gx in
  let values = Cvec.init m (fun j -> C.of_float w.(j)) in
  let grid = Nufft.Gridding_serial.grid_2d ~table ~g ~gx ~gy values in
  let back = Nufft.Gridding_serial.interp_2d ~table ~g ~gx ~gy grid in
  Array.init m (fun j -> (Cvec.get back j).C.re)

let pipe_menon ?(iterations = 15) ~table ~g ~gx ~gy () =
  let m = Array.length gx in
  if Array.length gy <> m then
    invalid_arg "Density.pipe_menon: coords length mismatch";
  if iterations < 1 then invalid_arg "Density.pipe_menon: iterations < 1";
  let w = Array.make m 1.0 in
  for _ = 1 to iterations do
    let cw = apply_c ~table ~g ~gx ~gy w in
    for j = 0 to m - 1 do
      if cw.(j) > 1e-12 then w.(j) <- w.(j) /. cw.(j)
    done
  done;
  let sum = Array.fold_left ( +. ) 0.0 w in
  if sum > 0.0 then
    Array.map (fun x -> x *. float_of_int m /. sum) w
  else w

let flatness ~table ~g ~gx ~gy w =
  let cw = apply_c ~table ~g ~gx ~gy w in
  let m = Array.length cw in
  if m = 0 then 0.0
  else begin
    let mean = Array.fold_left ( +. ) 0.0 cw /. float_of_int m in
    if Float.abs mean < 1e-300 then infinity
    else begin
      let var =
        Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 cw
        /. float_of_int m
      in
      sqrt var /. Float.abs mean
    end
  end
