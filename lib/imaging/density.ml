module Cvec = Numerics.Cvec
module C = Numerics.Complexd
module Sample = Nufft.Sample

(* C w: spread the (real) weights, then interpolate back at the sample
   locations; the result estimates the local gridded density.
   Dimension-generic over the coordinate set (the values are ignored). *)
let apply_c_s ~table (coords : Sample.t) w =
  let m = Sample.length coords in
  let g = coords.Sample.g in
  let values = Cvec.init m (fun j -> C.of_float w.(j)) in
  let back =
    match Sample.dims coords with
    | 2 ->
        let gx = Sample.gx coords and gy = Sample.gy coords in
        let grid = Nufft.Gridding_serial.grid_2d ~table ~g ~gx ~gy values in
        Nufft.Gridding_serial.interp_2d ~table ~g ~gx ~gy grid
    | 3 ->
        let gx = Sample.gx coords
        and gy = Sample.gy coords
        and gz = Sample.gz coords in
        let grid = Nufft.Gridding3d.grid_3d ~table ~g ~gx ~gy ~gz values in
        Nufft.Gridding3d.interp_3d ~table ~g ~gx ~gy ~gz grid
    | d ->
        invalid_arg
          (Printf.sprintf "Density: unsupported dimensionality %d" d)
  in
  Array.init m (fun j -> (Cvec.get back j).C.re)

let pipe_menon_s ?(iterations = 15) ~table coords =
  let m = Sample.length coords in
  if iterations < 1 then invalid_arg "Density.pipe_menon: iterations < 1";
  let w = Array.make m 1.0 in
  for _ = 1 to iterations do
    let cw = apply_c_s ~table coords w in
    for j = 0 to m - 1 do
      if cw.(j) > 1e-12 then w.(j) <- w.(j) /. cw.(j)
    done
  done;
  let sum = Array.fold_left ( +. ) 0.0 w in
  if sum > 0.0 then Array.map (fun x -> x *. float_of_int m /. sum) w else w

let flatness_s ~table coords w =
  let cw = apply_c_s ~table coords w in
  let m = Array.length cw in
  if m = 0 then 0.0
  else begin
    let mean = Array.fold_left ( +. ) 0.0 cw /. float_of_int m in
    if Float.abs mean < 1e-300 then infinity
    else begin
      let var =
        Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 cw
        /. float_of_int m
      in
      sqrt var /. Float.abs mean
    end
  end

(* Historical 2D coordinate-array API. *)

let coords_2d ~g ~gx ~gy =
  let m = Array.length gx in
  Sample.make_2d ~g ~gx ~gy ~values:(Cvec.create m)

let pipe_menon ?iterations ~table ~g ~gx ~gy () =
  if Array.length gy <> Array.length gx then
    invalid_arg "Density.pipe_menon: coords length mismatch";
  pipe_menon_s ?iterations ~table (coords_2d ~g ~gx ~gy)

let flatness ~table ~g ~gx ~gy w = flatness_s ~table (coords_2d ~g ~gx ~gy) w
