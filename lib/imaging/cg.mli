(** Conjugate-gradient solver for Hermitian positive semi-definite systems.

    Solves [T x = b] for complex vectors given only the operator
    application — the inner loop of iterative ("model-based") MRI
    reconstruction, whose rise is exactly why the paper cares about NuFFT
    throughput: "millions of NuFFTs are taken iteratively to reconstruct a
    single volume" (§I). Use with {!Toeplitz.apply} for a gridding-free
    normal operator, or with an explicit forward/adjoint NuFFT pair. *)

type result = {
  solution : Numerics.Cvec.t;
  iterations : int;
  residual_norms : float list;  (** ||r_k|| per iteration, first to last *)
  converged : bool;
}

type buffers = {
  bx : Numerics.Cvec.t;
  br : Numerics.Cvec.t;
  bp : Numerics.Cvec.t;
}
(** The solver's three state vectors (iterate, residual, direction), all
    of the system length — donate a set with {!solve}'s [?buffers] so
    repeated solves reuse one pooled allocation. *)

val make_buffers : int -> buffers
(** Fresh buffer set for an [n]-long system. *)

val solve :
  ?max_iterations:int ->
  ?tolerance:float ->
  ?buffers:buffers ->
  apply:(Numerics.Cvec.t -> Numerics.Cvec.t) ->
  Numerics.Cvec.t ->
  result
(** [solve ~apply b] runs CG from a zero initial guess until
    [||r|| <= tolerance * ||b||] (default 1e-6) or [max_iterations]
    (default 50). [apply] must be Hermitian PSD; the solver does not
    check.

    With [buffers] (lengths must match [b]), the state vectors live in the
    caller's arena instead of fresh allocations; the returned [solution]
    is then a copy, so the arena can be immediately reused. Results are
    bitwise identical either way. *)

val normal_equations_rhs :
  plan:Nufft.Plan.plan ->
  ?weights:float array ->
  Nufft.Sample.t2 ->
  Numerics.Cvec.t
(** [A^H W y]: the right-hand side of the normal equations for a sample
    set [y] — one (density-weighted) adjoint NuFFT. Dimension-generic
    (dispatches on the sample set's dimensionality). *)

val normal_equations_rhs_op :
  ?weights:float array ->
  Nufft.Operator.op ->
  Nufft.Sample.t ->
  Numerics.Cvec.t
(** Same right-hand side through any registered backend. *)

val normal_map :
  ?weights:float array ->
  Nufft.Operator.op ->
  Numerics.Cvec.t ->
  Numerics.Cvec.t
(** [A^H W A x] — the normal-equations operator built from one forward
    and one adjoint application of [op]; pass
    [~apply:(Cg.normal_map op)] to {!solve} for iterative reconstruction
    through any backend and dimensionality (the gridding-based
    alternative to {!Toeplitz.apply}). *)
