module W = Numerics.Window
module Cvec = Numerics.Cvec
module C = Numerics.Complexd
module Plan = Nufft.Plan
module Sample = Nufft.Sample
module Nudft = Nufft.Nudft
module Op = Nufft.Operator

type traj = Radial | Spiral | Random

let traj_name = function
  | Radial -> "radial"
  | Spiral -> "spiral"
  | Random -> "random"

let traj_of_string s =
  match String.lowercase_ascii s with
  | "radial" -> Some Radial
  | "spiral" -> Some Spiral
  | "random" -> Some Random
  | _ -> None

let all_trajs = [ Radial; Spiral; Random ]
let default_tols = [ 1e-2; 1e-3; 1e-4; 1e-5; 1e-6 ]

type row = {
  family : W.family;
  tol : float;
  dims : int;
  traj : traj;
  width : int;
  l : int;
  adjoint_err : float;
  forward_err : float;
}

let contract_slack = 10.0
let worst r = Float.max r.adjoint_err r.forward_err

let row_ok ?(slack = contract_slack) r = worst r <= slack *. r.tol

let failures ?slack rows = List.filter (fun r -> not (row_ok ?slack r)) rows

(* Problem sizes: the NuDFT reference is O(M n^dims), so the sweep runs on
   the largest problems where exactness is still cheap. The measured error
   is dominated by the kernel/LUT approximation, not by n, well before
   these sizes. *)
let default_n = function 2 -> 18 | _ -> 10
let default_m = function 2 -> 384 | _ -> 320

(* 3D lifts of the 2D trajectories: stack-of-stars / stack-of-spirals
   (uniform kz plateaus, the standard 3D extension of both acquisitions),
   i.i.d. uniform for Random. *)
let z_levels = 5

let omega_of ~seed ~dims ~m traj =
  let two_d =
    match traj with
    | Radial ->
        (* spokes * readout = m; keep readout ~1.5x spokes. *)
        let spokes = max 1 (int_of_float (sqrt (float_of_int m /. 1.5))) in
        let readout = max 1 (m / spokes) in
        Trajectory.Radial.make ~spokes ~readout ()
    | Spiral -> Trajectory.Spiral.make ~samples_per_interleave:m ()
    | Random -> Trajectory.Random_traj.make ~seed ~samples:m ()
  in
  let ox = two_d.Trajectory.Traj.omega_x
  and oy = two_d.Trajectory.Traj.omega_y in
  let m = Array.length ox in
  if dims = 2 then (ox, oy, [||])
  else
    let oz =
      match traj with
      | Random ->
          let rng = Random.State.make [| seed; 0x5a |] in
          Array.init m (fun _ -> Random.State.float rng (2.0 *. Float.pi) -. Float.pi)
      | Radial | Spiral ->
          Array.init m (fun j ->
              let k = j mod z_levels in
              -.Float.pi
              +. (2.0 *. Float.pi *. (float_of_int k +. 0.5)
                  /. float_of_int z_levels))
    in
    (ox, oy, oz)

let random_cvec rng len =
  Cvec.init len (fun _ ->
      C.make
        (Random.State.float rng 2.0 -. 1.0)
        (Random.State.float rng 2.0 -. 1.0))

let measure ?(seed = 7) ?n ?m ~family ~tol ~dims ~traj () =
  if dims <> 2 && dims <> 3 then
    invalid_arg "Accuracy.measure: dims must be 2 or 3";
  let n = match n with Some n -> n | None -> default_n dims in
  let m = match m with Some m -> m | None -> default_m dims in
  let plan = Plan.make ~tol ~family ~n () in
  let g = plan.Plan.g in
  let ox, oy, oz = omega_of ~seed ~dims ~m traj in
  let m = Array.length ox in
  let rng = Random.State.make [| seed; dims; Hashtbl.hash (traj_name traj) |] in
  let values = random_cvec rng m in
  let samples =
    if dims = 2 then Sample.of_omega_2d ~g ~omega_x:ox ~omega_y:oy ~values
    else Sample.of_omega_3d ~g ~omega_x:ox ~omega_y:oy ~omega_z:oz ~values
  in
  let adjoint_err =
    let fast = Plan.adjoint plan samples in
    let exact =
      if dims = 2 then Nudft.adjoint_2d ~n ~omega_x:ox ~omega_y:oy ~values
      else Nudft.adjoint_3d ~n ~omega_x:ox ~omega_y:oy ~omega_z:oz ~values
    in
    Cvec.nrmsd ~reference:exact fast
  in
  let forward_err =
    let len = if dims = 2 then n * n else n * n * n in
    let image = random_cvec rng len in
    let fast = Plan.forward plan ~coords:samples image in
    let exact =
      if dims = 2 then Nudft.forward_2d ~n ~omega_x:ox ~omega_y:oy ~image
      else Nudft.forward_3d ~n ~omega_x:ox ~omega_y:oy ~omega_z:oz ~image
    in
    Cvec.nrmsd ~reference:exact fast
  in
  { family;
    tol;
    dims;
    traj;
    width = plan.Plan.w;
    l = plan.Plan.l;
    adjoint_err;
    forward_err }

let sweep ?(seed = 7) ?(families = [ W.ES; W.KB ]) ?(tols = default_tols)
    ?(dims = [ 2; 3 ]) ?(trajs = all_trajs) () =
  List.concat_map
    (fun family ->
      List.concat_map
        (fun tol ->
          List.concat_map
            (fun d ->
              List.map
                (fun traj -> measure ~seed ~family ~tol ~dims:d ~traj ())
                trajs)
            dims)
        tols)
    families

(* Type-3 cells: random real source points and target frequencies in
   boxes wide enough that the scale/shift decomposition's fine grid is
   exercised (nf well above the window width), small enough that the
   O(M_in * M_out) NuDFT reference stays cheap. The single measured
   error lands in both row columns so [row_ok] / [failures] apply
   unchanged; [width]/[l] report the decomposition's window width and
   fine-grid size. *)
let t3_m_in = function 2 -> 150 | _ -> 90
let t3_m_out = function 2 -> 120 | _ -> 70
let t3_xscale = function 2 -> 3.0 | _ -> 2.0
let t3_sscale = function 2 -> 12.0 | _ -> 8.0

let measure_type3 ?(seed = 7) ?m_in ?m_out ~family ~tol ~dims () =
  if dims <> 2 && dims <> 3 then
    invalid_arg "Accuracy.measure_type3: dims must be 2 or 3";
  let m_in = match m_in with Some m -> m | None -> t3_m_in dims in
  let m_out = match m_out with Some m -> m | None -> t3_m_out dims in
  let rng = Random.State.make [| seed; dims; 0x73 |] in
  let axes scale m =
    Array.init dims (fun _ ->
        Array.init m (fun _ -> (Random.State.float rng 2.0 -. 1.0) *. scale))
  in
  let sources = axes (t3_xscale dims) m_in in
  let targets = axes (t3_sscale dims) m_out in
  let values = random_cvec rng m_in in
  let t3 = Plan.make_type3 ~tol ~family ~sources ~targets () in
  let fast = Plan.type3_exec t3 values in
  let exact = Nudft.type3 ~sources ~targets ~values in
  let err = Cvec.nrmsd ~reference:exact fast in
  { family;
    tol;
    dims;
    traj = Random;
    width = Plan.type3_width t3;
    l = Plan.type3_fine_grid t3;
    adjoint_err = err;
    forward_err = err }

let sweep_type3 ?(seed = 7) ?(families = [ W.ES; W.KB ])
    ?(tols = default_tols) ?(dims = [ 2; 3 ]) () =
  List.concat_map
    (fun family ->
      List.concat_map
        (fun tol ->
          List.map (fun d -> measure_type3 ~seed ~family ~tol ~dims:d ()) dims)
        tols)
    families

let pp_row ppf r =
  Format.fprintf ppf "%-13s tol %.0e %dD %-6s w=%-2d l=%-6d adj %.2e fwd %.2e%s"
    (W.family_name r.family) r.tol r.dims (traj_name r.traj) r.width r.l
    r.adjoint_err r.forward_err
    (if row_ok r then "" else "  CONTRACT BREACH")

(* Per-backend error on a small canonical problem (the bench datasets are
   far beyond NuDFT reach): n = 16, m = 256 uniform-random 2D samples.
   Hardware-model backends (fixed-point / f32 tables) legitimately sit
   orders of magnitude above the double-precision CPU engines — this is a
   reported column, not a contract. *)
let backend_rel_l2_err ?(seed = 11) ?tol name =
  let n = 16 and m = 256 in
  let t = Trajectory.Random_traj.make ~seed ~samples:m () in
  let ox = t.Trajectory.Traj.omega_x and oy = t.Trajectory.Traj.omega_y in
  let rng = Random.State.make [| seed; 0x6b |] in
  let values = random_cvec rng m in
  let coords = Sample.of_omega_2d ~g:(2 * n) ~omega_x:ox ~omega_y:oy ~values in
  let op = Op.create name (Op.context ?tol ~n ~coords ()) in
  let fast = Op.apply_adjoint op coords in
  let exact = Nudft.adjoint_2d ~n ~omega_x:ox ~omega_y:oy ~values in
  Cvec.nrmsd ~reference:exact fast
