module Cvec = Numerics.Cvec
module C = Numerics.Complexd
module Sample = Nufft.Sample
module Op = Nufft.Operator

type t = {
  n : int;
  dims : int;
  q_hat : Cvec.t;  (* FFT of the wrapped Toeplitz kernel on the 2n grid *)
  pool : Runtime.Pool.t option;  (* reused by every apply *)
}

(* Wrap centred displacements d (array index d + n) onto the circulant
   grid: k2[(d mod 2n, ...)] = q(d, ...), then take its spectrum. *)
let wrap_spectrum ?pool ~dims ~n q =
  let n2 = 2 * n in
  let wrap = Nufft.Coord.wrap ~g:n2 in
  match dims with
  | 2 ->
      let k2 = Cvec.create (n2 * n2) in
      for iy = 0 to n2 - 1 do
        for ix = 0 to n2 - 1 do
          let wx = wrap (ix - n) and wy = wrap (iy - n) in
          Cvec.set k2 ((wy * n2) + wx) (Cvec.get q ((iy * n2) + ix))
        done
      done;
      Fft.Fftnd.transform_2d ?pool Fft.Dft.Forward ~nx:n2 ~ny:n2 k2;
      k2
  | 3 ->
      let k2 = Cvec.create (n2 * n2 * n2) in
      for iz = 0 to n2 - 1 do
        for iy = 0 to n2 - 1 do
          for ix = 0 to n2 - 1 do
            let wx = wrap (ix - n)
            and wy = wrap (iy - n)
            and wz = wrap (iz - n) in
            Cvec.set k2
              ((((wz * n2) + wy) * n2) + wx)
              (Cvec.get q ((((iz * n2) + iy) * n2) + ix))
          done
        done
      done;
      Fft.Fftnd.transform_3d ?pool Fft.Dft.Forward ~nx:n2 ~ny:n2 ~nz:n2 k2;
      k2
  | d -> invalid_arg (Printf.sprintf "Toeplitz: unsupported dimensionality %d" d)

let check_weights ~m = function
  | None -> Array.make m 1.0
  | Some w ->
      if Array.length w <> m then
        invalid_arg "Toeplitz.make: weights length mismatch";
      w

(* q(d) = sum_j w_j e^{i omega_j . d}, d in [-n, n)^dims: one adjoint
   NuFFT of the weights on the doubled grid, through any backend.
   [create] lets a serving layer interpose its own operator construction
   (e.g. a plan cache) for the setup adjoint. *)
let make_op ?weights ?(backend = "serial") ?pool ?(create = Op.create) ~n
    ~coords () =
  let dims = Sample.dims coords in
  let m = Sample.length coords in
  let w = check_weights ~m weights in
  let n2 = 2 * n in
  let g2 = 2 * n2 in
  (* Same trajectory, re-expressed on the doubled grid (sigma = 2). *)
  let coords2 = Sample.rescale ~g:g2 coords in
  let values = Cvec.init m (fun j -> C.of_float w.(j)) in
  let op = create backend (Op.context ?pool ~n:n2 ~coords:coords2 ()) in
  let q = Op.apply_adjoint op (Sample.with_values coords2 values) in
  { n; dims; q_hat = wrap_spectrum ?pool ~dims ~n q; pool }

let make ?weights ?pool ~n ~omega_x ~omega_y () =
  let m = Array.length omega_x in
  if Array.length omega_y <> m then
    invalid_arg "Toeplitz.make: omega length mismatch";
  let coords =
    Sample.of_omega_2d ~g:(4 * n) ~omega_x ~omega_y ~values:(Cvec.create m)
  in
  make_op ?weights ?pool ~n ~coords ()

let n t = t.n
let dims t = t.dims
let kernel_spectrum t = t.q_hat

let apply t x =
  let n = t.n in
  let n2 = 2 * n in
  let wrap = Nufft.Coord.wrap ~g:n2 in
  match t.dims with
  | 2 ->
      if Cvec.length x <> n * n then
        invalid_arg "Toeplitz.apply: size mismatch";
      (* Zero-pad: image position p in [-n/2, n/2) lives at circulant index
         p mod 2n. *)
      let pad = Cvec.create (n2 * n2) in
      for iy = 0 to n - 1 do
        for ix = 0 to n - 1 do
          let px = wrap (ix - (n / 2)) and py = wrap (iy - (n / 2)) in
          Cvec.set pad ((py * n2) + px) (Cvec.get x ((iy * n) + ix))
        done
      done;
      Fft.Fftnd.transform_2d ?pool:t.pool Fft.Dft.Forward ~nx:n2 ~ny:n2 pad;
      for k = 0 to (n2 * n2) - 1 do
        Cvec.set pad k (C.mul (Cvec.get pad k) (Cvec.get t.q_hat k))
      done;
      Fft.Fftnd.transform_2d ?pool:t.pool Fft.Dft.Inverse ~nx:n2 ~ny:n2 pad;
      Cvec.scale_inplace (1.0 /. float_of_int (n2 * n2)) pad;
      Cvec.init (n * n) (fun idx ->
          let ix = idx mod n and iy = idx / n in
          let px = wrap (ix - (n / 2)) and py = wrap (iy - (n / 2)) in
          Cvec.get pad ((py * n2) + px))
  | 3 ->
      if Cvec.length x <> n * n * n then
        invalid_arg "Toeplitz.apply: size mismatch";
      let pad = Cvec.create (n2 * n2 * n2) in
      for iz = 0 to n - 1 do
        for iy = 0 to n - 1 do
          for ix = 0 to n - 1 do
            let px = wrap (ix - (n / 2))
            and py = wrap (iy - (n / 2))
            and pz = wrap (iz - (n / 2)) in
            Cvec.set pad
              ((((pz * n2) + py) * n2) + px)
              (Cvec.get x ((((iz * n) + iy) * n) + ix))
          done
        done
      done;
      Fft.Fftnd.transform_3d ?pool:t.pool Fft.Dft.Forward ~nx:n2 ~ny:n2 ~nz:n2
        pad;
      for k = 0 to (n2 * n2 * n2) - 1 do
        Cvec.set pad k (C.mul (Cvec.get pad k) (Cvec.get t.q_hat k))
      done;
      Fft.Fftnd.transform_3d ?pool:t.pool Fft.Dft.Inverse ~nx:n2 ~ny:n2 ~nz:n2
        pad;
      Cvec.scale_inplace (1.0 /. float_of_int (n2 * n2 * n2)) pad;
      Cvec.init (n * n * n) (fun idx ->
          let ix = idx mod n in
          let iy = idx / n mod n in
          let iz = idx / (n * n) in
          let px = wrap (ix - (n / 2))
          and py = wrap (iy - (n / 2))
          and pz = wrap (iz - (n / 2)) in
          Cvec.get pad ((((pz * n2) + py) * n2) + px))
  | _ -> assert false
