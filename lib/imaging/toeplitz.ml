module Cvec = Numerics.Cvec
module C = Numerics.Complexd

type t = {
  n : int;
  q_hat : Cvec.t;  (* FFT of the wrapped Toeplitz kernel on the 2n grid *)
  pool : Runtime.Pool.t option;  (* reused by every apply *)
}

let make ?weights ?pool ~n ~omega_x ~omega_y () =
  let m = Array.length omega_x in
  if Array.length omega_y <> m then
    invalid_arg "Toeplitz.make: omega length mismatch";
  let w =
    match weights with
    | None -> Array.make m 1.0
    | Some w ->
        if Array.length w <> m then
          invalid_arg "Toeplitz.make: weights length mismatch";
        w
  in
  let n2 = 2 * n in
  (* q(d) = sum_j w_j e^{i omega_j . d}, d in [-n, n)^2: one adjoint NuFFT
     of the weights on the doubled grid. *)
  let plan2 = Nufft.Plan.make ?pool ~n:n2 () in
  let values = Cvec.init m (fun j -> C.of_float w.(j)) in
  let samples =
    Nufft.Sample.of_omega_2d ~g:plan2.Nufft.Plan.g ~omega_x ~omega_y ~values
  in
  let q = Nufft.Plan.adjoint_2d plan2 samples in
  (* Wrap centred displacements d (array index d + n) onto the circulant
     grid: k2[(d mod 2n, e mod 2n)] = q(d, e). *)
  let k2 = Cvec.create (n2 * n2) in
  for iy = 0 to n2 - 1 do
    for ix = 0 to n2 - 1 do
      let dx = ix - n and dy = iy - n in
      let wx = Nufft.Coord.wrap ~g:n2 dx and wy = Nufft.Coord.wrap ~g:n2 dy in
      Cvec.set k2 ((wy * n2) + wx) (Cvec.get q ((iy * n2) + ix))
    done
  done;
  Fft.Fftnd.transform_2d ?pool Fft.Dft.Forward ~nx:n2 ~ny:n2 k2;
  { n; q_hat = k2; pool }

let n t = t.n
let kernel_spectrum t = t.q_hat

let apply t x =
  let n = t.n in
  if Cvec.length x <> n * n then invalid_arg "Toeplitz.apply: size mismatch";
  let n2 = 2 * n in
  (* Zero-pad: image position p in [-n/2, n/2) lives at circulant index
     p mod 2n. *)
  let pad = Cvec.create (n2 * n2) in
  for iy = 0 to n - 1 do
    for ix = 0 to n - 1 do
      let px = Nufft.Coord.wrap ~g:n2 (ix - (n / 2)) in
      let py = Nufft.Coord.wrap ~g:n2 (iy - (n / 2)) in
      Cvec.set pad ((py * n2) + px) (Cvec.get x ((iy * n) + ix))
    done
  done;
  Fft.Fftnd.transform_2d ?pool:t.pool Fft.Dft.Forward ~nx:n2 ~ny:n2 pad;
  for k = 0 to (n2 * n2) - 1 do
    Cvec.set pad k (C.mul (Cvec.get pad k) (Cvec.get t.q_hat k))
  done;
  Fft.Fftnd.transform_2d ?pool:t.pool Fft.Dft.Inverse ~nx:n2 ~ny:n2 pad;
  Cvec.scale_inplace (1.0 /. float_of_int (n2 * n2)) pad;
  Cvec.init (n * n) (fun idx ->
      let ix = idx mod n and iy = idx / n in
      let px = Nufft.Coord.wrap ~g:n2 (ix - (n / 2)) in
      let py = Nufft.Coord.wrap ~g:n2 (iy - (n / 2)) in
      Cvec.get pad ((py * n2) + px))
