(** Toeplitz embedding of the NuFFT normal operator.

    Iterative MRI reconstruction repeatedly applies the Gram (normal)
    operator [T = A^H W A] of the forward NuFFT [A] with sample weights
    [W]. Because the samples are fixed, [T] is block-Toeplitz and can be
    applied with two [2N]-point FFTs and a precomputed spectrum — no
    gridding at all after setup. This is the "Toeplitz-based strategy" of
    the Impatient framework the paper compares against (Gai et al. 2013);
    building it here both reproduces that baseline's structure and gives
    the iterative solver a fast inner loop.

    Construction: the generating kernel [q(d) = sum_j w_j e^{i omega_j . d}]
    for displacements [d in [-N, N)^dims] is computed with one adjoint
    NuFFT on a [2N] grid; [T x] is then the central [N^dims] crop of the
    circular convolution of the zero-padded image with [q]. The setup
    adjoint runs through {!Nufft.Operator}, so it works in 2D or 3D and
    through any registered backend. *)

type t

val make_op :
  ?weights:float array ->
  ?backend:string ->
  ?pool:Runtime.Pool.t ->
  ?create:(string -> Nufft.Operator.ctx -> Nufft.Operator.op) ->
  n:int ->
  coords:Nufft.Sample.t ->
  unit ->
  t
(** Precompute the operator for an [n^dims] image from a bound coordinate
    set (2D or 3D, on any grid size — the trajectory is rescaled onto the
    internal doubled grid). [backend] names the registered operator used
    for the setup adjoint (default ["serial"]); [create] overrides how
    that operator is built (default {!Nufft.Operator.create}) so a
    serving layer can route the setup through its plan cache. *)

val make :
  ?weights:float array ->
  ?pool:Runtime.Pool.t ->
  n:int ->
  omega_x:float array ->
  omega_y:float array ->
  unit ->
  t
(** Precompute the operator for an [n x n] image sampled at the given
    k-space frequencies with optional density weights (default 1). Uses a
    dedicated internal [2n] NuFFT plan. With [pool], setup and every
    subsequent {!apply} batch their FFT lines over that domain pool — the
    CG inner loop is two [2n x 2n] FFTs per iteration, so this is where a
    reusable pool pays off most. *)

val apply : t -> Numerics.Cvec.t -> Numerics.Cvec.t
(** [apply t x] is [A^H W A x] for an [n^dims] image [x] — two [2n]-grid
    FFTs (on the pool given at construction, if any). *)

val n : t -> int
val dims : t -> int

val kernel_spectrum : t -> Numerics.Cvec.t
(** The precomputed [(2n)^dims] spectrum (mostly for tests: for [W >= 0]
    the operator is PSD, so the spectrum of the underlying circulant is
    ~real). *)
