(** Image quality metrics.

    NRMSD is the paper's Fig 9 metric; PSNR and maximum error are included
    for completeness. All metrics operate on complex vectors and compare
    component-wise. *)

val nrmsd : reference:Numerics.Cvec.t -> Numerics.Cvec.t -> float
(** Normalised root-mean-square difference (fraction, not percent):
    [sqrt (sum |x-r|^2 / sum |r|^2)]. *)

val nrmsd_percent : reference:Numerics.Cvec.t -> Numerics.Cvec.t -> float
(** [100 * nrmsd] — the unit the paper reports (e.g. 0.047%, 0.012%). *)

val nrmsd_scaled : reference:Numerics.Cvec.t -> Numerics.Cvec.t -> float
(** NRMSD after the candidate is rescaled by the least-squares-optimal
    complex factor [alpha = <x, r> / <x, x>] — removes the arbitrary global
    gain of a density-compensated gridding reconstruction so the metric
    reflects structure, not scaling. *)

val max_abs_error : reference:Numerics.Cvec.t -> Numerics.Cvec.t -> float

val psnr : reference:Numerics.Cvec.t -> Numerics.Cvec.t -> float
(** Peak signal-to-noise ratio in dB, with the peak taken as the largest
    magnitude in the reference. Infinite for identical images. *)

val magnitude_image : Numerics.Cvec.t -> float array
(** Per-pixel magnitudes — what gets displayed/written as PGM. *)
