module Cvec = Numerics.Cvec

(* (delta, a, b, x0, y0, theta_deg); geometry from the standard table. *)
let base =
  [| (0.0, 0.69, 0.92, 0.0, 0.0, 0.0);
     (0.0, 0.6624, 0.874, 0.0, -0.0184, 0.0);
     (0.0, 0.11, 0.31, 0.22, 0.0, -18.0);
     (0.0, 0.16, 0.41, -0.22, 0.0, 18.0);
     (0.0, 0.21, 0.25, 0.0, 0.35, 0.0);
     (0.0, 0.046, 0.046, 0.0, 0.1, 0.0);
     (0.0, 0.046, 0.046, 0.0, -0.1, 0.0);
     (0.0, 0.046, 0.023, -0.08, -0.605, 0.0);
     (0.0, 0.023, 0.023, 0.0, -0.606, 0.0);
     (0.0, 0.023, 0.046, 0.06, -0.605, 0.0) |]

let original_deltas =
  [| 2.0; -0.98; -0.02; -0.02; 0.01; 0.01; 0.01; 0.01; 0.01; 0.01 |]

let modified_deltas =
  [| 1.0; -0.8; -0.2; -0.2; 0.1; 0.1; 0.1; 0.1; 0.1; 0.1 |]

let with_deltas deltas =
  Array.mapi
    (fun i (_, a, b, x0, y0, th) -> (deltas.(i), a, b, x0, y0, th))
    base

let ellipses = with_deltas modified_deltas

let make ?(modified = true) ~n () =
  if n < 2 then invalid_arg "Phantom.make: n must be >= 2";
  let shapes =
    with_deltas (if modified then modified_deltas else original_deltas)
  in
  let img = Cvec.create (n * n) in
  for iy = 0 to n - 1 do
    for ix = 0 to n - 1 do
      (* Pixel centre on [-1, 1]^2; y axis points up in the phantom table. *)
      let x = (2.0 *. (float_of_int ix +. 0.5) /. float_of_int n) -. 1.0 in
      let y = 1.0 -. (2.0 *. (float_of_int iy +. 0.5) /. float_of_int n) in
      let v = ref 0.0 in
      Array.iter
        (fun (delta, a, b, x0, y0, th) ->
          let phi = th *. Float.pi /. 180.0 in
          let c = cos phi and s = sin phi in
          let dx = x -. x0 and dy = y -. y0 in
          let xr = (dx *. c) +. (dy *. s) and yr = (dy *. c) -. (dx *. s) in
          if ((xr /. a) ** 2.0) +. ((yr /. b) ** 2.0) <= 1.0 then
            v := !v +. delta)
        shapes;
      Cvec.set_parts img ((iy * n) + ix) !v 0.0
    done
  done;
  img

let intensity_bounds img =
  let lo = ref Float.infinity and hi = ref Float.neg_infinity in
  for k = 0 to Cvec.length img - 1 do
    let v = Cvec.get_re img k in
    if v < !lo then lo := v;
    if v > !hi then hi := v
  done;
  (!lo, !hi)
