module Cvec = Numerics.Cvec
module C = Numerics.Complexd

type result = {
  solution : Cvec.t;
  iterations : int;
  residual_norms : float list;
  converged : bool;
}

let c_iterations = Telemetry.Counter.make "cg.iterations"

type buffers = { bx : Cvec.t; br : Cvec.t; bp : Cvec.t }

let make_buffers n = { bx = Cvec.create n; br = Cvec.create n; bp = Cvec.create n }

let solve ?(max_iterations = 50) ?(tolerance = 1e-6) ?buffers ~apply b =
  let sp_solve = Telemetry.span_begin ~cat:"cg" "cg.solve" in
  let n = Cvec.length b in
  (* With caller-donated [buffers] the solver's own state vectors come
     from the pooled arena: zero/overwrite them instead of allocating, and
     hand back a fresh copy of the solution so the arena can be reused. *)
  let borrowed =
    match buffers with
    | Some bufs ->
        if
          Cvec.length bufs.bx <> n || Cvec.length bufs.br <> n
          || Cvec.length bufs.bp <> n
        then invalid_arg "Cg.solve: buffers length mismatch";
        true
    | None -> false
  in
  let x, r, p =
    match buffers with
    | Some { bx; br; bp } ->
        Cvec.fill_zero bx;
        Cvec.blit b br;
        Cvec.blit b bp;
        (bx, br, bp)
    | None -> (Cvec.create n, Cvec.copy b, Cvec.copy b)
  in
  let rr = ref (Cvec.norm2 r) in
  let target = tolerance *. sqrt (Cvec.norm2 b) in
  let history = ref [ sqrt !rr ] in
  let k = ref 0 in
  let converged = ref (sqrt !rr <= target) in
  while (not !converged) && !k < max_iterations do
    let sp_iter = Telemetry.span_begin ~cat:"cg" "cg.iter" in
    Telemetry.Counter.incr c_iterations;
    let ap = apply p in
    let p_ap = (Cvec.dot p ap).C.re in
    if p_ap <= 0.0 then
      (* Numerically singular direction: stop (PSD operator with null
         space, e.g. heavy undersampling). *)
      k := max_iterations
    else begin
      let alpha = !rr /. p_ap in
      Cvec.axpy_inplace alpha ~x:p x;
      Cvec.axpy_inplace (-.alpha) ~x:ap r;
      let rr' = Cvec.norm2 r in
      history := sqrt rr' :: !history;
      if sqrt rr' <= target then converged := true
      else begin
        let beta = rr' /. !rr in
        Cvec.xpay_inplace beta ~x:r p
      end;
      rr := rr';
      incr k
    end;
    Telemetry.span_end sp_iter
  done;
  Telemetry.span_end sp_solve;
  { solution = (if borrowed then Cvec.copy x else x);
    iterations = !k;
    residual_norms = List.rev !history;
    converged = !converged }

let normal_equations_rhs ~plan ?weights samples =
  let m = Nufft.Sample.length samples in
  let samples =
    match weights with
    | None -> samples
    | Some w ->
        if Array.length w <> m then
          invalid_arg "Cg.normal_equations_rhs: weights length mismatch";
        Nufft.Sample.with_values samples
          (Cvec.init m (fun j ->
               C.scale w.(j) (Cvec.get samples.Nufft.Sample.values j)))
  in
  Nufft.Plan.adjoint plan samples

(* Operator-interface counterparts: backend- and dimension-agnostic. *)

let weighted ?weights name samples =
  match weights with
  | None -> samples
  | Some w ->
      let m = Nufft.Sample.length samples in
      if Array.length w <> m then
        invalid_arg (name ^ ": weights length mismatch");
      Nufft.Sample.with_values samples
        (Cvec.init m (fun j ->
             C.scale w.(j) (Cvec.get samples.Nufft.Sample.values j)))

let normal_equations_rhs_op ?weights op samples =
  Nufft.Operator.apply_adjoint op
    (weighted ?weights "Cg.normal_equations_rhs_op" samples)

let normal_map ?weights op x =
  let s = Nufft.Operator.apply_forward op x in
  Nufft.Operator.apply_adjoint op (weighted ?weights "Cg.normal_map" s)
