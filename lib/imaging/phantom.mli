(** The Shepp-Logan head phantom.

    Substitutes for the 2D liver slices of Otazo et al. that the paper's
    quality evaluation (Fig 9) uses — the standard synthetic test image of
    the tomography/MRI literature, built from ten ellipses of prescribed
    intensity. Quality comparisons (NRMSD between numeric variants) depend
    on the reconstruction pipeline, not the anatomy, so any structured
    image with sharp edges exercises the same behaviour. *)

val ellipses : (float * float * float * float * float * float) array
(** The ten canonical ellipses as
    [(intensity_delta, a, b, x0, y0, theta_degrees)] with geometry on the
    unit square [[-1, 1]^2]. *)

val make : ?modified:bool -> n:int -> unit -> Numerics.Cvec.t
(** [make ~n ()] renders the phantom on an [n x n] grid (row-major, real
    values in the imaginary-zero complex vector). [modified] (default true)
    uses the higher-contrast intensities of Toft's "modified Shepp-Logan";
    [false] gives the 1974 original. *)

val intensity_bounds : Numerics.Cvec.t -> float * float
(** (min, max) of the real part — for display scaling. *)
