module Cvec = Numerics.Cvec
module C = Numerics.Complexd
module Sample = Nufft.Sample
module Plan = Nufft.Plan
module Op = Nufft.Operator

let coords_of_traj ~g traj =
  let m = Trajectory.Traj.length traj in
  Sample.of_omega_2d ~g ~omega_x:traj.Trajectory.Traj.omega_x
    ~omega_y:traj.Trajectory.Traj.omega_y ~values:(Cvec.create m)

let apply_density ?density samples =
  match density with
  | None -> samples
  | Some w ->
      let m = Sample.length samples in
      if Array.length w <> m then
        invalid_arg "Recon.reconstruct: density weights length mismatch";
      Sample.with_values samples
        (Cvec.init m (fun j ->
             C.scale w.(j) (Cvec.get samples.Sample.values j)))

(* Operator-based pipeline: backend- and dimension-agnostic. *)

let acquire_op op image = Op.apply_forward op image

let reconstruct_op ?density op samples =
  let m = Sample.length samples in
  let samples = apply_density ?density samples in
  let image = Op.apply_adjoint op samples in
  (* Unit-gain normalisation: the adjoint of an m-sample uniform
     acquisition scales the image by m (and the oversampled FFT pair by
     nothing since forward/adjoint are unnormalised transposes); dividing
     by m recovers the original scale for fully sampled data. *)
  Cvec.scale_inplace (1.0 /. float_of_int m) image;
  image

let roundtrip_op ?density op image =
  let samples = acquire_op op image in
  let recon = reconstruct_op ?density op samples in
  (recon, Metrics.nrmsd ~reference:image recon)

(* Plan-based wrappers (the historical 2D API) ride on the same path. *)

let acquire plan traj image =
  let coords = coords_of_traj ~g:plan.Plan.g traj in
  acquire_op (Op.of_plan plan ~coords) image

let reconstruct ?density plan samples =
  reconstruct_op ?density (Op.of_plan plan ~coords:samples) samples

let roundtrip ?density plan traj image =
  let coords = coords_of_traj ~g:plan.Plan.g traj in
  roundtrip_op ?density (Op.of_plan plan ~coords) image
