module Cvec = Numerics.Cvec
module C = Numerics.Complexd
module Sample = Nufft.Sample
module Plan = Nufft.Plan

let acquire plan traj image =
  let g = plan.Plan.g in
  let gx = Array.map (Sample.omega_to_grid ~g) traj.Trajectory.Traj.omega_x in
  let gy = Array.map (Sample.omega_to_grid ~g) traj.Trajectory.Traj.omega_y in
  let values = Plan.forward_2d plan ~gx ~gy image in
  Sample.make_2d ~g ~gx ~gy ~values

let reconstruct ?density plan samples =
  let m = Sample.length samples in
  let samples =
    match density with
    | None -> samples
    | Some w ->
        if Array.length w <> m then
          invalid_arg "Recon.reconstruct: density weights length mismatch";
        let values =
          Cvec.init m (fun j -> C.scale w.(j) (Cvec.get samples.Sample.values j))
        in
        Sample.with_values samples values
  in
  let image = Plan.adjoint_2d plan samples in
  (* Unit-gain normalisation: the adjoint of an m-sample uniform
     acquisition scales the image by m (and the oversampled FFT pair by
     nothing since forward/adjoint are unnormalised transposes); dividing
     by m recovers the original scale for fully sampled data. *)
  Cvec.scale_inplace (1.0 /. float_of_int m) image;
  image

let roundtrip ?density plan traj image =
  let samples = acquire plan traj image in
  let recon = reconstruct ?density plan samples in
  (recon, Metrics.nrmsd ~reference:image recon)
