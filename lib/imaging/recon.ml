module Cvec = Numerics.Cvec
module C = Numerics.Complexd
module Sample = Nufft.Sample
module Plan = Nufft.Plan
module Op = Nufft.Operator

type error =
  | Density_length_mismatch of { expected : int; got : int }
  | Empty_sample_set
  | Backend_failure of string

let error_message = function
  | Density_length_mismatch { expected; got } ->
      Printf.sprintf
        "density weights length %d does not match the %d-sample set" got
        expected
  | Empty_sample_set -> "sample set is empty"
  | Backend_failure msg -> "backend failure: " ^ msg

let coords_of_traj ~g traj =
  let m = Trajectory.Traj.length traj in
  Sample.of_omega_2d ~g ~omega_x:traj.Trajectory.Traj.omega_x
    ~omega_y:traj.Trajectory.Traj.omega_y ~values:(Cvec.create m)

let apply_density ?density samples =
  match density with
  | None -> Ok samples
  | Some w ->
      let m = Sample.length samples in
      if Array.length w <> m then
        Error (Density_length_mismatch { expected = m; got = Array.length w })
      else
        Ok
          (Sample.with_values samples
             (Cvec.init m (fun j ->
                  C.scale w.(j) (Cvec.get samples.Sample.values j))))

(* Backends validate their inputs with [Invalid_argument] (grid mismatch,
   unsupported dimensionality, ...); the reconstruction driver is the seam
   where those become typed errors, so no exception escapes to a serving
   layer. *)
let guard f =
  match f () with
  | v -> Ok v
  | exception Invalid_argument msg -> Error (Backend_failure msg)
  | exception Failure msg -> Error (Backend_failure msg)

let ( let* ) = Result.bind

(* Operator-based pipeline: backend- and dimension-agnostic. *)

let acquire_op op image = Op.apply_forward op image

let reconstruct_op ?density op samples =
  let m = Sample.length samples in
  if m = 0 then Error Empty_sample_set
  else
    let* samples = apply_density ?density samples in
    let* image = guard (fun () -> Op.apply_adjoint op samples) in
    (* Unit-gain normalisation: the adjoint of an m-sample uniform
       acquisition scales the image by m (and the oversampled FFT pair by
       nothing since forward/adjoint are unnormalised transposes); dividing
       by m recovers the original scale for fully sampled data. *)
    Cvec.scale_inplace (1.0 /. float_of_int m) image;
    Ok image

let roundtrip_op ?density op image =
  let* samples = guard (fun () -> acquire_op op image) in
  let* recon = reconstruct_op ?density op samples in
  Ok (recon, Metrics.nrmsd ~reference:image recon)

(* Plan-based wrappers (the historical 2D API) ride on the same path. *)

let acquire plan traj image =
  let coords = coords_of_traj ~g:plan.Plan.g traj in
  acquire_op (Op.of_plan plan ~coords) image

let reconstruct ?density plan samples =
  let* op = guard (fun () -> Op.of_plan plan ~coords:samples) in
  reconstruct_op ?density op samples

let roundtrip ?density plan traj image =
  let coords = coords_of_traj ~g:plan.Plan.g traj in
  let* op = guard (fun () -> Op.of_plan plan ~coords) in
  roundtrip_op ?density op image
