/* SIMD kernels for the hot flat loops: compiled-plan replay spread and
 * gather (indexed scatter/gather multiply-accumulate), radix-2 FFT
 * butterfly lines over interleaved complex data, and deapodization rows
 * (pointwise complex-by-real scale).
 *
 * Numerics contract: every vector body performs, per output element,
 * exactly the operation sequence of the scalar loop it replaces — the
 * interleaved (re, im) pair rides in the two lanes of a 128-bit register
 * (or one 128-bit half of a 256-bit register), the real weight/twiddle is
 * broadcast to both lanes, and no fused multiply-add is ever emitted
 * (intrinsics are not contracted; the scalar C fallback is compiled with
 * -ffp-contract=off). Per-lane IEEE mul/add/div round exactly like their
 * scalar counterparts, so SIMD and scalar results are bit-identical; the
 * OCaml test suite still only asserts the documented <= 4 ULP contract.
 *
 * Ordering constraints honoured here:
 *  - spread within one sample may process window points two at a time
 *    (the read-modify-writes stay in entry order, so even a repeated
 *    target cell accumulates in the scalar order);
 *  - shard replay streams entries strictly one at a time: adjacent
 *    entries of a shard can come from different samples yet target the
 *    same cell, and the region-ownership bit-identity guarantee needs
 *    serial accumulation order per cell;
 *  - gather accumulates each sample's window points in entry order into
 *    one (re, im) register pair;
 *  - a butterfly pass pairs j and j+1 of the same block, which touch
 *    disjoint elements, so two butterflies per iteration is exact.
 *
 * None of these functions allocate, raise, or call back into the
 * runtime, so the OCaml externals are [@@noalloc] and plain arrays can
 * be accessed in place (no GC can move them mid-call).
 */

#include <caml/mlvalues.h>
#include <caml/bigarray.h>

#if defined(__x86_64__) || defined(_M_X64)
#define JIGSAW_SIMD_X86 1
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#define JIGSAW_SIMD_NEON 1
#include <arm_neon.h>
#endif

/* Implementation selector mirrored from the OCaml side:
 * 1 = scalar C, 2 = AVX2, 3 = NEON. (0/"off" never reaches C: the OCaml
 * wrappers fall back to the OCaml loops.) */
#define IMPL_SCALAR 1
#define IMPL_AVX2 2
#define IMPL_NEON 3

static int jigsaw_simd_impl = IMPL_SCALAR;

CAMLprim value jigsaw_simd_probe(value unit)
{
  (void)unit;
#if defined(JIGSAW_SIMD_X86) && defined(__GNUC__)
  return Val_long(__builtin_cpu_supports("avx2") ? IMPL_AVX2 : IMPL_SCALAR);
#elif defined(JIGSAW_SIMD_NEON)
  return Val_long(IMPL_NEON);
#else
  return Val_long(IMPL_SCALAR);
#endif
}

CAMLprim value jigsaw_simd_set(value impl)
{
  jigsaw_simd_impl = (int)Long_val(impl);
  return Val_unit;
}

/* Float arrays are flat double payloads; int arrays are tagged words. */
#define FLOATS(v) ((const double *)(v))
#define IDX(v, i) Long_val(Field((v), (i)))

/* ------------------------------------------------------------------ */
/* Replay spread: out[idx[e]] += wgt[e] * values[e / points].          */

static void spread_scalar(const double *vals, value idx, const double *wgt,
                          double *out, long m, long p)
{
  for (long j = 0; j < m; j++) {
    double vr = vals[2 * j], vi = vals[2 * j + 1];
    long base = j * p;
    for (long i = 0; i < p; i++) {
      long k = IDX(idx, base + i);
      double w = wgt[base + i];
      out[2 * k] += w * vr;
      out[2 * k + 1] += w * vi;
    }
  }
}

#ifdef JIGSAW_SIMD_X86
__attribute__((target("avx2"))) static void
spread_avx2(const double *vals, value idx, const double *wgt, double *out,
            long m, long p)
{
  for (long j = 0; j < m; j++) {
    __m128d v = _mm_loadu_pd(vals + 2 * j); /* (vr, vi) */
    __m256d vv = _mm256_broadcast_pd((const __m128d *)(vals + 2 * j));
    long base = j * p;
    long i = 0;
    /* Four window points per iteration: one 256-bit weight load fanned
     * out to (w0,w0,w1,w1) / (w2,w2,w3,w3) by in-register permutes, two
     * 256-bit multiplies, then four 128-bit read-modify-writes in entry
     * order (within one sample all window cells are distinct, so each
     * cell still accumulates exactly once per pass, in scalar order). */
    for (; i + 4 <= p; i += 4) {
      long k0 = IDX(idx, base + i);
      long k1 = IDX(idx, base + i + 1);
      long k2 = IDX(idx, base + i + 2);
      long k3 = IDX(idx, base + i + 3);
      __m256d w = _mm256_loadu_pd(wgt + base + i); /* (w0,w1,w2,w3) */
      __m256d wl = _mm256_permute4x64_pd(w, 0x50); /* (w0,w0,w1,w1) */
      __m256d wh = _mm256_permute4x64_pd(w, 0xfa); /* (w2,w2,w3,w3) */
      __m256d t0 = _mm256_mul_pd(wl, vv);
      __m256d t1 = _mm256_mul_pd(wh, vv);
      if (k1 == k0 + 1 && k2 == k1 + 1 && k3 == k2 + 1) {
        /* Window x-rows are grid-contiguous except at the wrap seam, so
         * most quads land on four consecutive cells: two 256-bit
         * read-modify-writes perform the identical per-lane adds. */
        _mm256_storeu_pd(out + 2 * k0,
                         _mm256_add_pd(_mm256_loadu_pd(out + 2 * k0), t0));
        _mm256_storeu_pd(out + 2 * k2,
                         _mm256_add_pd(_mm256_loadu_pd(out + 2 * k2), t1));
      } else {
        /* A quad that straddles a window-row boundary still splits into
         * two within-row pairs; keep each contiguous pair as one 256-bit
         * read-modify-write and only degrade to 128-bit at a wrap seam. */
        if (k1 == k0 + 1)
          _mm256_storeu_pd(out + 2 * k0,
                           _mm256_add_pd(_mm256_loadu_pd(out + 2 * k0), t0));
        else {
          _mm_storeu_pd(out + 2 * k0,
                        _mm_add_pd(_mm_loadu_pd(out + 2 * k0),
                                   _mm256_castpd256_pd128(t0)));
          _mm_storeu_pd(out + 2 * k1,
                        _mm_add_pd(_mm_loadu_pd(out + 2 * k1),
                                   _mm256_extractf128_pd(t0, 1)));
        }
        if (k3 == k2 + 1)
          _mm256_storeu_pd(out + 2 * k2,
                           _mm256_add_pd(_mm256_loadu_pd(out + 2 * k2), t1));
        else {
          _mm_storeu_pd(out + 2 * k2,
                        _mm_add_pd(_mm_loadu_pd(out + 2 * k2),
                                   _mm256_castpd256_pd128(t1)));
          _mm_storeu_pd(out + 2 * k3,
                        _mm_add_pd(_mm_loadu_pd(out + 2 * k3),
                                   _mm256_extractf128_pd(t1, 1)));
        }
      }
    }
    for (; i < p; i++) {
      long k = IDX(idx, base + i);
      __m128d w = _mm_loaddup_pd(wgt + base + i);
      _mm_storeu_pd(out + 2 * k,
                    _mm_add_pd(_mm_loadu_pd(out + 2 * k), _mm_mul_pd(w, v)));
    }
  }
}
#endif

#ifdef JIGSAW_SIMD_NEON
static void spread_neon(const double *vals, value idx, const double *wgt,
                        double *out, long m, long p)
{
  for (long j = 0; j < m; j++) {
    float64x2_t v = vld1q_f64(vals + 2 * j);
    long base = j * p;
    for (long i = 0; i < p; i++) {
      long k = IDX(idx, base + i);
      float64x2_t w = vdupq_n_f64(wgt[base + i]);
      vst1q_f64(out + 2 * k,
                vaddq_f64(vld1q_f64(out + 2 * k), vmulq_f64(w, v)));
    }
  }
}
#endif

CAMLprim value jigsaw_simd_spread(value values, value idx, value wgt,
                                  value out)
{
  long m = (long)Caml_ba_array_val(values)->dim[0] / 2;
  if (m == 0) return Val_unit;
  long p = (long)Wosize_val(idx) / m;
  const double *vals = (const double *)Caml_ba_data_val(values);
  double *o = (double *)Caml_ba_data_val(out);
  switch (jigsaw_simd_impl) {
#ifdef JIGSAW_SIMD_X86
  case IMPL_AVX2: spread_avx2(vals, idx, FLOATS(wgt), o, m, p); break;
#endif
#ifdef JIGSAW_SIMD_NEON
  case IMPL_NEON: spread_neon(vals, idx, FLOATS(wgt), o, m, p); break;
#endif
  default: spread_scalar(vals, idx, FLOATS(wgt), o, m, p); break;
  }
  return Val_unit;
}

/* ------------------------------------------------------------------ */
/* Shard replay: the region-sharded entry stream (sample, index,
 * weight). Entries are processed strictly one at a time — adjacent
 * entries from different samples may target the same cell, and the
 * bit-identity contract requires serial accumulation order per cell. */

static void shard_scalar(const double *vals, value smp, value idx,
                         const double *wgt, double *out, long n)
{
  for (long e = 0; e < n; e++) {
    long j = IDX(smp, e);
    long k = IDX(idx, e);
    double w = wgt[e];
    out[2 * k] += w * vals[2 * j];
    out[2 * k + 1] += w * vals[2 * j + 1];
  }
}

#ifdef JIGSAW_SIMD_X86
__attribute__((target("avx2"))) static void
shard_avx2(const double *vals, value smp, value idx, const double *wgt,
           double *out, long n)
{
  for (long e = 0; e < n; e++) {
    long j = IDX(smp, e);
    long k = IDX(idx, e);
    __m128d w = _mm_loaddup_pd(wgt + e);
    __m128d v = _mm_loadu_pd(vals + 2 * j);
    _mm_storeu_pd(out + 2 * k,
                  _mm_add_pd(_mm_loadu_pd(out + 2 * k), _mm_mul_pd(w, v)));
  }
}
#endif

#ifdef JIGSAW_SIMD_NEON
static void shard_neon(const double *vals, value smp, value idx,
                       const double *wgt, double *out, long n)
{
  for (long e = 0; e < n; e++) {
    long j = IDX(smp, e);
    long k = IDX(idx, e);
    float64x2_t w = vdupq_n_f64(wgt[e]);
    float64x2_t v = vld1q_f64(vals + 2 * j);
    vst1q_f64(out + 2 * k, vaddq_f64(vld1q_f64(out + 2 * k), vmulq_f64(w, v)));
  }
}
#endif

CAMLprim value jigsaw_simd_spread_shard(value values, value smp, value idx,
                                        value wgt, value out)
{
  long n = (long)Wosize_val(idx);
  const double *vals = (const double *)Caml_ba_data_val(values);
  double *o = (double *)Caml_ba_data_val(out);
  switch (jigsaw_simd_impl) {
#ifdef JIGSAW_SIMD_X86
  case IMPL_AVX2: shard_avx2(vals, smp, idx, FLOATS(wgt), o, n); break;
#endif
#ifdef JIGSAW_SIMD_NEON
  case IMPL_NEON: shard_neon(vals, smp, idx, FLOATS(wgt), o, n); break;
#endif
  default: shard_scalar(vals, smp, idx, FLOATS(wgt), o, n); break;
  }
  return Val_unit;
}

/* ------------------------------------------------------------------ */
/* Replay gather over the sample range [lo, hi):
 * out[j] = sum_i wgt[j*p+i] * grid[idx[j*p+i]], accumulated in entry
 * order from (0, 0) exactly like the scalar loop. */

static void gather_scalar(const double *grid, value idx, const double *wgt,
                          double *out, long p, long lo, long hi)
{
  for (long j = lo; j < hi; j++) {
    long base = j * p;
    double ar = 0.0, ai = 0.0;
    for (long i = 0; i < p; i++) {
      long k = IDX(idx, base + i);
      double w = wgt[base + i];
      ar += w * grid[2 * k];
      ai += w * grid[2 * k + 1];
    }
    out[2 * j] = ar;
    out[2 * j + 1] = ai;
  }
}

#ifdef JIGSAW_SIMD_X86
__attribute__((target("avx2"))) static void
gather_avx2(const double *grid, value idx, const double *wgt, double *out,
            long p, long lo, long hi)
{
  for (long j = lo; j < hi; j++) {
    long base = j * p;
    __m128d acc = _mm_setzero_pd();
    for (long i = 0; i < p; i++) {
      long k = IDX(idx, base + i);
      __m128d w = _mm_loaddup_pd(wgt + base + i);
      acc = _mm_add_pd(acc, _mm_mul_pd(w, _mm_loadu_pd(grid + 2 * k)));
    }
    _mm_storeu_pd(out + 2 * j, acc);
  }
}
#endif

#ifdef JIGSAW_SIMD_NEON
static void gather_neon(const double *grid, value idx, const double *wgt,
                        double *out, long p, long lo, long hi)
{
  for (long j = lo; j < hi; j++) {
    long base = j * p;
    float64x2_t acc = vdupq_n_f64(0.0);
    for (long i = 0; i < p; i++) {
      long k = IDX(idx, base + i);
      float64x2_t w = vdupq_n_f64(wgt[base + i]);
      acc = vaddq_f64(acc, vmulq_f64(w, vld1q_f64(grid + 2 * k)));
    }
    vst1q_f64(out + 2 * j, acc);
  }
}
#endif

CAMLprim value jigsaw_simd_gather(value grid, value idx, value wgt, value out,
                                  value lo, value hi)
{
  long m = (long)Caml_ba_array_val(out)->dim[0] / 2;
  if (m == 0) return Val_unit;
  long p = (long)Wosize_val(idx) / m;
  const double *g = (const double *)Caml_ba_data_val(grid);
  double *o = (double *)Caml_ba_data_val(out);
  long l = Long_val(lo), h = Long_val(hi);
  switch (jigsaw_simd_impl) {
#ifdef JIGSAW_SIMD_X86
  case IMPL_AVX2: gather_avx2(g, idx, FLOATS(wgt), o, p, l, h); break;
#endif
#ifdef JIGSAW_SIMD_NEON
  case IMPL_NEON: gather_neon(g, idx, FLOATS(wgt), o, p, l, h); break;
#endif
  default: gather_scalar(g, idx, FLOATS(wgt), o, p, l, h); break;
  }
  return Val_unit;
}

CAMLprim value jigsaw_simd_gather_bc(value *argv, int argn)
{
  (void)argn;
  return jigsaw_simd_gather(argv[0], argv[1], argv[2], argv[3], argv[4],
                            argv[5]);
}

/* ------------------------------------------------------------------ */
/* Radix-2 DIT butterfly lines over interleaved complex data: the exact
 * loop structure of Fft1d.radix2_inplace (bit-reversal permutation, then
 * log2 n passes reading the precomputed interleaved twiddle table). */

static void fft_line_scalar(double *v, value rev, const double *tw, long n)
{
  for (long i = 0; i < n; i++) {
    long j = IDX(rev, i);
    if (j > i) {
      double tr = v[2 * i], ti = v[2 * i + 1];
      v[2 * i] = v[2 * j];
      v[2 * i + 1] = v[2 * j + 1];
      v[2 * j] = tr;
      v[2 * j + 1] = ti;
    }
  }
  for (long len = 2; len <= n; len <<= 1) {
    long half = len >> 1;
    long step = n / len;
    for (long i0 = 0; i0 < n; i0 += len) {
      for (long j = 0; j < half; j++) {
        long wi = 2 * (j * step);
        double wr = tw[wi], wim = tw[wi + 1];
        double *a = v + 2 * (i0 + j);
        double *b = a + 2 * half;
        double br = b[0], bi = b[1];
        double tr = wr * br - wim * bi;
        double ti = wr * bi + wim * br;
        double ar = a[0], ai = a[1];
        a[0] = ar + tr;
        a[1] = ai + ti;
        b[0] = ar - tr;
        b[1] = ai - ti;
      }
    }
  }
}

#ifdef JIGSAW_SIMD_X86
/* Complex multiply via addsub keeps per-lane operation order scalar:
 * t = addsub(w_re * (br, bi), w_im * (bi, br))
 *   = (wr*br - wim*bi, wr*bi + wim*br). */
__attribute__((target("avx2"))) static void
fft_line_avx2(double *v, value rev, const double *tw, long n)
{
  for (long i = 0; i < n; i++) {
    long j = IDX(rev, i);
    if (j > i) {
      __m128d a = _mm_loadu_pd(v + 2 * i), b = _mm_loadu_pd(v + 2 * j);
      _mm_storeu_pd(v + 2 * i, b);
      _mm_storeu_pd(v + 2 * j, a);
    }
  }
  for (long len = 2; len <= n; len <<= 1) {
    long half = len >> 1;
    long step = n / len;
    for (long i0 = 0; i0 < n; i0 += len) {
      long j = 0;
      /* Two butterflies per iteration: j and j+1 touch disjoint
       * elements of the same block, so pairing them is exact. */
      for (; j + 2 <= half; j += 2) {
        long w0 = 2 * (j * step), w1 = 2 * ((j + 1) * step);
        __m256d wre = _mm256_setr_pd(tw[w0], tw[w0], tw[w1], tw[w1]);
        __m256d wim =
            _mm256_setr_pd(tw[w0 + 1], tw[w0 + 1], tw[w1 + 1], tw[w1 + 1]);
        double *ap = v + 2 * (i0 + j);
        double *bp = ap + 2 * half;
        __m256d b = _mm256_loadu_pd(bp);
        __m256d bsw = _mm256_shuffle_pd(b, b, 0x5);
        __m256d t = _mm256_addsub_pd(_mm256_mul_pd(wre, b),
                                     _mm256_mul_pd(wim, bsw));
        __m256d a = _mm256_loadu_pd(ap);
        _mm256_storeu_pd(ap, _mm256_add_pd(a, t));
        _mm256_storeu_pd(bp, _mm256_sub_pd(a, t));
      }
      for (; j < half; j++) {
        long w0 = 2 * (j * step);
        __m128d wre = _mm_loaddup_pd(tw + w0);
        __m128d wim = _mm_loaddup_pd(tw + w0 + 1);
        double *ap = v + 2 * (i0 + j);
        double *bp = ap + 2 * half;
        __m128d b = _mm_loadu_pd(bp);
        __m128d bsw = _mm_shuffle_pd(b, b, 0x1);
        __m128d t =
            _mm_addsub_pd(_mm_mul_pd(wre, b), _mm_mul_pd(wim, bsw));
        __m128d a = _mm_loadu_pd(ap);
        _mm_storeu_pd(ap, _mm_add_pd(a, t));
        _mm_storeu_pd(bp, _mm_sub_pd(a, t));
      }
    }
  }
}
#endif

#ifdef JIGSAW_SIMD_NEON
static void fft_line_neon(double *v, value rev, const double *tw, long n)
{
  /* addsub is emulated by multiplying the odd product with (-1, 1):
   * x * -1.0 is exact, so lane 0 computes p0 + (-q0) = p0 - q0 with
   * scalar rounding. */
  const float64x2_t sgn = vcombine_f64(vdup_n_f64(-1.0), vdup_n_f64(1.0));
  for (long i = 0; i < n; i++) {
    long j = IDX(rev, i);
    if (j > i) {
      float64x2_t a = vld1q_f64(v + 2 * i), b = vld1q_f64(v + 2 * j);
      vst1q_f64(v + 2 * i, b);
      vst1q_f64(v + 2 * j, a);
    }
  }
  for (long len = 2; len <= n; len <<= 1) {
    long half = len >> 1;
    long step = n / len;
    for (long i0 = 0; i0 < n; i0 += len) {
      for (long j = 0; j < half; j++) {
        long wi = 2 * (j * step);
        float64x2_t wre = vdupq_n_f64(tw[wi]);
        float64x2_t wim = vdupq_n_f64(tw[wi + 1]);
        double *ap = v + 2 * (i0 + j);
        double *bp = ap + 2 * half;
        float64x2_t b = vld1q_f64(bp);
        float64x2_t bsw = vextq_f64(b, b, 1);
        float64x2_t t =
            vaddq_f64(vmulq_f64(wre, b), vmulq_f64(vmulq_f64(wim, bsw), sgn));
        float64x2_t a = vld1q_f64(ap);
        vst1q_f64(ap, vaddq_f64(a, t));
        vst1q_f64(bp, vsubq_f64(a, t));
      }
    }
  }
}
#endif

CAMLprim value jigsaw_simd_fft_batch(value v, value rev, value tw, value off,
                                     value count)
{
  long n = (long)Wosize_val(rev);
  long c = Long_val(count);
  double *data = (double *)Caml_ba_data_val(v) + 2 * Long_val(off);
  const double *twd = FLOATS(tw);
  for (long l = 0; l < c; l++) {
    double *line = data + 2 * l * n;
    switch (jigsaw_simd_impl) {
#ifdef JIGSAW_SIMD_X86
    case IMPL_AVX2: fft_line_avx2(line, rev, twd, n); break;
#endif
#ifdef JIGSAW_SIMD_NEON
    case IMPL_NEON: fft_line_neon(line, rev, twd, n); break;
#endif
    default: fft_line_scalar(line, rev, twd, n); break;
    }
  }
  return Val_unit;
}

/* ------------------------------------------------------------------ */
/* Deapodization row: dst[doff+i] = src[soff+i] / ((f[foff+i]*fy)*fz)
 * for i in [0, len). fz = 1.0 in 2D preserves the left-associated
 * rounding of the 3D (f*dy)*dz product bit for bit. */

static void deapod_scalar(double *dst, long doff, const double *src,
                          long soff, const double *f, long foff, long len,
                          double fy, double fz)
{
  for (long i = 0; i < len; i++) {
    double s = 1.0 / ((f[foff + i] * fy) * fz);
    dst[2 * (doff + i)] = s * src[2 * (soff + i)];
    dst[2 * (doff + i) + 1] = s * src[2 * (soff + i) + 1];
  }
}

#ifdef JIGSAW_SIMD_X86
__attribute__((target("avx2"))) static void
deapod_avx2(double *dst, long doff, const double *src, long soff,
            const double *f, long foff, long len, double fy, double fz)
{
  __m128d one = _mm_set1_pd(1.0);
  __m128d vfy = _mm_set1_pd(fy), vfz = _mm_set1_pd(fz);
  long i = 0;
  for (; i + 2 <= len; i += 2) {
    __m128d ff = _mm_loadu_pd(f + foff + i);
    __m128d s =
        _mm_div_pd(one, _mm_mul_pd(_mm_mul_pd(ff, vfy), vfz));
    /* (s0, s0, s1, s1) against two interleaved complex pixels. */
    __m256d ss = _mm256_permute4x64_pd(_mm256_castpd128_pd256(s), 0x50);
    __m256d x = _mm256_loadu_pd(src + 2 * (soff + i));
    _mm256_storeu_pd(dst + 2 * (doff + i), _mm256_mul_pd(ss, x));
  }
  for (; i < len; i++) {
    double s = 1.0 / ((f[foff + i] * fy) * fz);
    __m128d ss = _mm_set1_pd(s);
    __m128d x = _mm_loadu_pd(src + 2 * (soff + i));
    _mm_storeu_pd(dst + 2 * (doff + i), _mm_mul_pd(ss, x));
  }
}
#endif

#ifdef JIGSAW_SIMD_NEON
static void deapod_neon(double *dst, long doff, const double *src, long soff,
                        const double *f, long foff, long len, double fy,
                        double fz)
{
  for (long i = 0; i < len; i++) {
    float64x2_t s = vdupq_n_f64(1.0 / ((f[foff + i] * fy) * fz));
    vst1q_f64(dst + 2 * (doff + i),
              vmulq_f64(s, vld1q_f64(src + 2 * (soff + i))));
  }
}
#endif

CAMLprim value jigsaw_simd_deapod_row(value dst, intnat doff, value src,
                                      intnat soff, value f, intnat foff,
                                      intnat len, double fy, double fz)
{
  double *d = (double *)Caml_ba_data_val(dst);
  const double *s = (const double *)Caml_ba_data_val(src);
  switch (jigsaw_simd_impl) {
#ifdef JIGSAW_SIMD_X86
  case IMPL_AVX2:
    deapod_avx2(d, doff, s, soff, FLOATS(f), foff, len, fy, fz);
    break;
#endif
#ifdef JIGSAW_SIMD_NEON
  case IMPL_NEON:
    deapod_neon(d, doff, s, soff, FLOATS(f), foff, len, fy, fz);
    break;
#endif
  default:
    deapod_scalar(d, doff, s, soff, FLOATS(f), foff, len, fy, fz);
    break;
  }
  return Val_unit;
}

CAMLprim value jigsaw_simd_deapod_row_bc(value *argv, int argn)
{
  (void)argn;
  return jigsaw_simd_deapod_row(argv[0], Long_val(argv[1]), argv[2],
                                Long_val(argv[3]), argv[4], Long_val(argv[5]),
                                Long_val(argv[6]), Double_val(argv[7]),
                                Double_val(argv[8]));
}
