module Cvec = Numerics.Cvec

type impl = Off | Scalar | Avx2 | Neon

external probe : unit -> int = "jigsaw_simd_probe"
external set_impl_c : int -> unit = "jigsaw_simd_set" [@@noalloc]

let impl_name = function
  | Off -> "off"
  | Scalar -> "scalar"
  | Avx2 -> "avx2"
  | Neon -> "neon"

(* C-side selector codes; Off never reaches C (the callers' [enabled]
   guard keeps every kernel on the OCaml path), so the C selector is
   parked on scalar when dispatch is off. *)
let code = function Off | Scalar -> 1 | Avx2 -> 2 | Neon -> 3

let available = match probe () with 3 -> Neon | 2 -> Avx2 | _ -> Scalar

(* A vector implementation the host cannot run degrades to scalar C, not
   to an illegal instruction. *)
let clamp = function
  | Off -> Off
  | Scalar -> Scalar
  | (Avx2 | Neon) as i -> if i = available then i else Scalar

let parse s =
  match String.lowercase_ascii (String.trim s) with
  | "off" | "0" | "none" -> Some Off
  | "scalar" -> Some Scalar
  | "avx2" -> Some Avx2
  | "neon" -> Some Neon
  | "" | "auto" -> Some available
  | _ -> None

let initial =
  match Sys.getenv_opt "JIGSAW_SIMD" with
  | None -> available
  | Some s -> (
      match parse s with
      | Some i -> clamp i
      | None ->
          Printf.eprintf
            "jigsaw: ignoring unknown JIGSAW_SIMD=%S (expected \
             off|scalar|avx2|neon|auto); auto-detected %s\n\
             %!"
            s (impl_name available);
          available)

let state = Atomic.make initial
let () = set_impl_c (code initial)
let active () = Atomic.get state
let enabled () = Atomic.get state <> Off

let set_active i =
  let i = clamp i in
  Atomic.set state i;
  set_impl_c (code i);
  i

let with_impl i f =
  let prev = active () in
  ignore (set_active i);
  Fun.protect ~finally:(fun () -> ignore (set_active prev)) f

(* Kernel externals. All [@@noalloc]: the stubs never allocate, raise or
   enter the runtime, so plain int/float arrays are safe to walk in
   place. Callers are responsible for (a) checking [enabled ()] first and
   (b) bounds — these are the innermost hot loops. *)

external spread : Cvec.t -> int array -> float array -> Cvec.t -> unit
  = "jigsaw_simd_spread"
[@@noalloc]

external spread_shard :
  Cvec.t -> int array -> int array -> float array -> Cvec.t -> unit
  = "jigsaw_simd_spread_shard"
[@@noalloc]

external gather :
  Cvec.t -> int array -> float array -> Cvec.t -> int -> int -> unit
  = "jigsaw_simd_gather_bc" "jigsaw_simd_gather"
[@@noalloc]

external fft_batch : Cvec.t -> int array -> float array -> int -> int -> unit
  = "jigsaw_simd_fft_batch"
[@@noalloc]

external deapod_row :
  Cvec.t ->
  (int[@untagged]) ->
  Cvec.t ->
  (int[@untagged]) ->
  float array ->
  (int[@untagged]) ->
  (int[@untagged]) ->
  (float[@unboxed]) ->
  (float[@unboxed]) ->
  unit = "jigsaw_simd_deapod_row_bc" "jigsaw_simd_deapod_row"
[@@noalloc]
