(** Runtime-dispatched SIMD kernels for the hot flat loops.

    One C translation unit carries three implementations of each kernel —
    portable scalar C, AVX2 (x86-64, compiled with a per-function target
    attribute so no special compile flags are needed), and NEON
    (aarch64) — and the widest one the host supports is selected once at
    startup ([__builtin_cpu_supports("avx2")] on x86-64; NEON is baseline
    on aarch64). The [JIGSAW_SIMD] environment variable overrides the
    choice: [off] (OCaml loops only), [scalar], [avx2], [neon], or [auto]
    (the default). An implementation the host cannot run clamps to
    scalar C rather than faulting.

    Numerics: every kernel preserves the scalar operation order — the
    interleaved (re, im) pair rides in the two lanes of a 128-bit
    register, real weights/twiddles are broadcast, and no FMA contraction
    is permitted — so SIMD results are bit-identical to the scalar loops
    in practice; the documented (and tested) contract is agreement within
    4 ULP per element.

    Thread-safety: {!active}/{!enabled} are atomic reads and safe from
    any domain. {!set_active}/{!with_impl} switch a process-global and
    must not race with in-flight kernels on other domains — they are
    meant for tests and startup configuration. *)

type impl = Off | Scalar | Avx2 | Neon

val available : impl
(** Widest implementation the host CPU supports (never [Off]). *)

val active : unit -> impl
(** Currently dispatched implementation (startup: [JIGSAW_SIMD] override,
    else {!available}). *)

val enabled : unit -> bool
(** [active () <> Off] — callers must check this before invoking any
    kernel below and fall back to their OCaml loop when false. *)

val impl_name : impl -> string
(** ["off" | "scalar" | "avx2" | "neon"]. *)

val set_active : impl -> impl
(** Switch dispatch; returns the implementation actually installed after
    clamping to {!available} (requesting a vector ISA the host lacks
    installs [Scalar]). *)

val with_impl : impl -> (unit -> 'a) -> 'a
(** [with_impl i f] runs [f] with dispatch switched to [i] (clamped),
    restoring the previous implementation afterwards — the differential
    tests use it to compare implementations inside one process. *)

(** {1 Kernels}

    No bounds checks — callers validate. Only call when {!enabled}. *)

external spread : Numerics.Cvec.t -> int array -> float array -> Numerics.Cvec.t -> unit
  = "jigsaw_simd_spread"
[@@noalloc]
(** [spread values idx wgt out]: for each sample [j] of [values] and each
    of its [p = Array.length idx / m] window points [i],
    [out.(idx.(j*p+i)) <- out.(idx.(j*p+i)) + wgt.(j*p+i] * values.(j)]
    (complex += real * complex), in entry order. [out] is not zeroed. *)

external spread_shard :
  Numerics.Cvec.t -> int array -> int array -> float array -> Numerics.Cvec.t -> unit
  = "jigsaw_simd_spread_shard"
[@@noalloc]
(** [spread_shard values smp idx wgt out] — the region-sharded replay
    stream: entry [e] accumulates [wgt.(e) * values.(smp.(e))] onto
    [out.(idx.(e))], strictly one entry at a time (adjacent entries may
    target the same cell; serial order is the bit-identity contract). *)

external gather :
  Numerics.Cvec.t -> int array -> float array -> Numerics.Cvec.t -> int -> int -> unit
  = "jigsaw_simd_gather_bc" "jigsaw_simd_gather"
[@@noalloc]
(** [gather grid idx wgt out lo hi]: for each sample [j] in [[lo, hi)),
    [out.(j) <- sum_i wgt.(j*p+i) * grid.(idx.(j*p+i))] with
    [p = Array.length idx / Cvec.length out], accumulated in entry
    order from zero. *)

external fft_batch : Numerics.Cvec.t -> int array -> float array -> int -> int -> unit
  = "jigsaw_simd_fft_batch"
[@@noalloc]
(** [fft_batch v rev tw off count] — radix-2 DIT butterflies over [count]
    contiguous complex lines of length [n = Array.length rev] starting at
    complex offset [off] of [v], using {!Fft.Fft1d}'s bit-reversal table
    [rev] and interleaved twiddle table [tw] (whose sign encodes the
    direction). Identical loop structure to the OCaml butterflies. *)

external deapod_row :
  Numerics.Cvec.t ->
  (int[@untagged]) ->
  Numerics.Cvec.t ->
  (int[@untagged]) ->
  float array ->
  (int[@untagged]) ->
  (int[@untagged]) ->
  (float[@unboxed]) ->
  (float[@unboxed]) ->
  unit = "jigsaw_simd_deapod_row_bc" "jigsaw_simd_deapod_row"
[@@noalloc]
(** [deapod_row dst doff src soff f foff len fy fz]:
    [dst.(doff+i) <- src.(soff+i) / ((f.(foff+i) *. fy) *. fz)] for
    [i] in [[0, len)) — the pointwise complex-by-real deapodization
    scale. [fz = 1.0] in 2D preserves the 3D left-associated product
    rounding bit for bit. *)
