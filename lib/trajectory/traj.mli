(** 2D k-space trajectories.

    A trajectory is a set of angular sample frequencies
    [omega in [-pi, pi)^2] — the non-uniform sampling patterns (spiral,
    radial, ...) that MRI uses to reduce scan time (paper §I, §II). The
    arrays are parallel; sample [j] is [(omega_x.(j), omega_y.(j))]. *)

type t = { omega_x : float array; omega_y : float array }

val length : t -> int

val make : omega_x:float array -> omega_y:float array -> t
(** Validates equal lengths and wraps every frequency into [[-pi, pi)]. *)

val wrap_frequency : float -> float
(** Wrap any real angular frequency into [[-pi, pi)]. *)

val concat : t list -> t

val radius : t -> int -> float
(** Euclidean distance of sample [j] from the k-space centre. *)

val max_radius : t -> float

val bounds_ok : t -> bool
(** All frequencies in [[-pi, pi)] — true for any value built with
    {!make}. *)
