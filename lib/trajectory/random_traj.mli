(** Uniformly random k-space sampling — the "effectively random order"
    worst case for memory locality that the paper emphasises, and the
    natural model for compressed-sensing acquisitions. *)

val make : ?seed:int -> samples:int -> unit -> Traj.t
(** [samples] frequencies i.i.d. uniform on [[-pi, pi)^2]. *)

val shuffle : ?seed:int -> Traj.t -> Traj.t
(** Random permutation of an existing trajectory's sample order — destroys
    the sequential locality of spoke/spiral readouts without changing the
    sampled set. *)
