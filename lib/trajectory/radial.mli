(** Radial k-space trajectories ("projection acquisition").

    Each spoke is a diameter through the k-space centre; [readout] samples
    are spaced uniformly along it from [-r_max] to [+r_max) (exclusive of
    the positive end so no sample duplicates the wrap point). Spoke angles
    are either uniformly distributed over [0, pi) or follow the golden-angle
    increment used by real-time MRI (paper ref [8]). *)

type angle_scheme = Uniform | Golden_angle

val make :
  ?scheme:angle_scheme -> ?r_max:float -> spokes:int -> readout:int -> unit -> Traj.t
(** [make ~spokes ~readout ()] — [spokes * readout] samples;
    [r_max] defaults to [pi] (full Nyquist extent). Raises
    [Invalid_argument] for non-positive counts or [r_max] outside
    (0, pi]. *)

val density_weights : Traj.t -> float array
(** Ramp ("ram-lak") density compensation for radial data: weight
    proportional to the sample's k-space radius with the centre samples
    given the weight of half the innermost ring. Normalised so the weights
    sum to the sample count. *)

val fully_sampled_spokes : n:int -> int
(** The spoke count that satisfies the radial Nyquist criterion for an
    [n x n] image: [ceil (pi/2 * n)]. *)
