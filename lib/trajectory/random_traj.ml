let make ?(seed = 0) ~samples () =
  if samples < 1 then invalid_arg "Random_traj.make: samples must be >= 1";
  let rng = Random.State.make [| seed |] in
  let freq () = Random.State.float rng (2.0 *. Float.pi) -. Float.pi in
  Traj.make
    ~omega_x:(Array.init samples (fun _ -> freq ()))
    ~omega_y:(Array.init samples (fun _ -> freq ()))

let shuffle ?(seed = 0) t =
  let m = Traj.length t in
  let perm = Array.init m (fun i -> i) in
  let rng = Random.State.make [| seed |] in
  for i = m - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- tmp
  done;
  { Traj.omega_x = Array.map (fun i -> t.Traj.omega_x.(i)) perm;
    Traj.omega_y = Array.map (fun i -> t.Traj.omega_y.(i)) perm }
