type angle_scheme = Uniform | Golden_angle

let golden_angle = Float.pi *. (3.0 -. sqrt 5.0) /. 2.0 *. 2.0
(* 2*pi*(1 - 1/phi) ~ 111.246 degrees, the golden-angle increment. *)

let make ?(scheme = Uniform) ?(r_max = Float.pi) ~spokes ~readout () =
  if spokes < 1 then invalid_arg "Radial.make: spokes must be >= 1";
  if readout < 2 then invalid_arg "Radial.make: readout must be >= 2";
  if r_max <= 0.0 || r_max > Float.pi then
    invalid_arg "Radial.make: r_max must be in (0, pi]";
  let m = spokes * readout in
  let omega_x = Array.make m 0.0 and omega_y = Array.make m 0.0 in
  for s = 0 to spokes - 1 do
    let theta =
      match scheme with
      | Uniform -> Float.pi *. float_of_int s /. float_of_int spokes
      | Golden_angle -> Float.rem (float_of_int s *. golden_angle) Float.pi
    in
    let ct = cos theta and st = sin theta in
    for i = 0 to readout - 1 do
      (* r from -r_max inclusive to +r_max exclusive. *)
      let r =
        r_max *. ((2.0 *. float_of_int i /. float_of_int readout) -. 1.0)
      in
      let j = (s * readout) + i in
      omega_x.(j) <- r *. ct;
      omega_y.(j) <- r *. st
    done
  done;
  Traj.make ~omega_x ~omega_y

let density_weights t =
  let m = Traj.length t in
  if m = 0 then [||]
  else begin
    (* Smallest non-zero radius defines the centre weight. *)
    let min_nz = ref Float.infinity in
    for j = 0 to m - 1 do
      let r = Traj.radius t j in
      if r > 1e-12 && r < !min_nz then min_nz := r
    done;
    let base = if Float.is_finite !min_nz then !min_nz /. 2.0 else 1.0 in
    let w = Array.init m (fun j -> Float.max base (Traj.radius t j)) in
    let sum = Array.fold_left ( +. ) 0.0 w in
    Array.map (fun x -> x *. float_of_int m /. sum) w
  end

let fully_sampled_spokes ~n =
  int_of_float (Float.ceil (Float.pi /. 2.0 *. float_of_int n))
