let make ~n =
  if n < 1 then invalid_arg "Cartesian.make: n must be >= 1";
  let m = n * n in
  let omega_x = Array.make m 0.0 and omega_y = Array.make m 0.0 in
  for ky = 0 to n - 1 do
    for kx = 0 to n - 1 do
      let j = (ky * n) + kx in
      omega_x.(j) <- 2.0 *. Float.pi *. float_of_int (kx - (n / 2)) /. float_of_int n;
      omega_y.(j) <- 2.0 *. Float.pi *. float_of_int (ky - (n / 2)) /. float_of_int n
    done
  done;
  Traj.make ~omega_x ~omega_y
