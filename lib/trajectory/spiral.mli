(** Archimedean spiral trajectories.

    A single interleave traces [r(tau) = r_max * tau],
    [theta(tau) = 2 pi turns tau] for [tau in [0, 1)]; multiple interleaves
    are rotations of the first by [2 pi / interleaves]. Spirals are the
    canonical fast-imaging trajectory the paper's introduction motivates. *)

val make :
  ?r_max:float ->
  ?turns:float ->
  ?interleaves:int ->
  samples_per_interleave:int ->
  unit ->
  Traj.t
(** Defaults: [r_max = pi], [turns = 16], [interleaves = 1]. Raises
    [Invalid_argument] on non-positive parameters. *)

val density_weights : Traj.t -> float array
(** Radius-proportional compensation (the analytic Archimedean density is
    ~ 1/r away from the centre), normalised to sum to the sample count. *)
