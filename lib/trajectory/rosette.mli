(** Rosette trajectories: [r(t) = r_max |sin(w1 t)|] rotating at [w2] —
    petal-shaped curves that repeatedly re-cross the k-space centre, giving
    a strongly non-monotonic sample order (a stress case for binning). *)

val make :
  ?r_max:float -> ?w1:float -> ?w2:float -> samples:int -> unit -> Traj.t
(** Defaults: [r_max = pi], [w1 = 5], [w2 = 7] (coprime petal counts). *)
