(** The five evaluation datasets ("Image 1" .. "Image 5") used by the
    paper's Figures 6-8.

    The paper evaluates five 2D images of differing dimension and sample
    count. The grid dimensions recovered from the paper are
    [N in {64, 64, 256, 320, 512}]; the exact per-image sample counts are
    illegible in our source text, so each dataset generates its samples from
    a realistic MRI trajectory (radial or spiral) of comparable scale —
    documented per dataset. The [sigma = 2] oversampled grid sizes are
    {128, 128, 512, 640, 1024}; note 640 exercises the non-power-of-two
    (Bluestein) FFT path. *)

type t = {
  name : string;  (** "Image 1" .. "Image 5" *)
  n : int;  (** base grid dimension per side *)
  m : int;  (** number of non-uniform samples *)
  description : string;  (** trajectory recipe *)
  trajectory : unit -> Traj.t;  (** generates exactly [m] samples *)
}

val all : t list
(** The five datasets, smallest first. *)

val by_name : string -> t
(** Raises [Not_found] for an unknown name. *)

val small_variant : t -> t
(** A reduced-M copy (same [n], ~1/16 of the samples) for quick tests and
    CI-friendly benchmark smoke runs. *)
