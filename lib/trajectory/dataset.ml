type t = {
  name : string;
  n : int;
  m : int;
  description : string;
  trajectory : unit -> Traj.t;
}

let radial_set ~name ~n ~spokes ~readout ~description =
  { name;
    n;
    m = spokes * readout;
    description;
    trajectory = (fun () -> Radial.make ~spokes ~readout ()) }

let spiral_set ~name ~n ~interleaves ~samples ~description =
  { name;
    n;
    m = interleaves * samples;
    description;
    trajectory =
      (fun () ->
        Spiral.make ~interleaves ~samples_per_interleave:samples
          ~turns:(float_of_int n /. 8.0) ()) }

let all =
  [ radial_set ~name:"Image 1" ~n:64 ~spokes:24 ~readout:128
      ~description:"64x64, undersampled real-time radial (24 spokes x 128)";
    spiral_set ~name:"Image 2" ~n:64 ~interleaves:32 ~samples:1024
      ~description:"64x64, dense multi-shot spiral (32 x 1024)";
    radial_set ~name:"Image 3" ~n:256 ~spokes:402 ~readout:512
      ~description:"256x256, fully sampled radial (402 spokes x 512)";
    spiral_set ~name:"Image 4" ~n:320 ~interleaves:48 ~samples:10417
      ~description:"320x320, multi-shot spiral (48 x 10417)";
    radial_set ~name:"Image 5" ~n:512 ~spokes:804 ~readout:1024
      ~description:"512x512, fully sampled radial (804 spokes x 1024)" ]

let by_name name = List.find (fun d -> d.name = name) all

let small_variant d =
  let factor = 16 in
  let m = max 64 (d.m / factor) in
  { d with
    name = d.name ^ " (small)";
    m;
    description = d.description ^ Printf.sprintf " [reduced to %d samples]" m;
    trajectory =
      (fun () ->
        let full = d.trajectory () in
        let stride = max 1 (Traj.length full / m) in
        let idx = Array.init m (fun i -> i * stride mod Traj.length full) in
        { Traj.omega_x = Array.map (fun i -> full.Traj.omega_x.(i)) idx;
          Traj.omega_y = Array.map (fun i -> full.Traj.omega_y.(i)) idx }) }
