let make ?(r_max = Float.pi) ?(turns = 16.0) ?(interleaves = 1)
    ~samples_per_interleave () =
  if samples_per_interleave < 1 then
    invalid_arg "Spiral.make: samples_per_interleave must be >= 1";
  if interleaves < 1 then invalid_arg "Spiral.make: interleaves must be >= 1";
  if r_max <= 0.0 || r_max > Float.pi then
    invalid_arg "Spiral.make: r_max must be in (0, pi]";
  if turns <= 0.0 then invalid_arg "Spiral.make: turns must be > 0";
  let m = samples_per_interleave * interleaves in
  let omega_x = Array.make m 0.0 and omega_y = Array.make m 0.0 in
  for i = 0 to interleaves - 1 do
    let rot = 2.0 *. Float.pi *. float_of_int i /. float_of_int interleaves in
    for s = 0 to samples_per_interleave - 1 do
      let tau = float_of_int s /. float_of_int samples_per_interleave in
      let r = r_max *. tau in
      let theta = (2.0 *. Float.pi *. turns *. tau) +. rot in
      let j = (i * samples_per_interleave) + s in
      omega_x.(j) <- r *. cos theta;
      omega_y.(j) <- r *. sin theta
    done
  done;
  Traj.make ~omega_x ~omega_y

let density_weights t =
  let m = Traj.length t in
  if m = 0 then [||]
  else begin
    let min_nz = ref Float.infinity in
    for j = 0 to m - 1 do
      let r = Traj.radius t j in
      if r > 1e-12 && r < !min_nz then min_nz := r
    done;
    let base = if Float.is_finite !min_nz then !min_nz /. 2.0 else 1.0 in
    let w = Array.init m (fun j -> Float.max base (Traj.radius t j)) in
    let sum = Array.fold_left ( +. ) 0.0 w in
    Array.map (fun x -> x *. float_of_int m /. sum) w
  end
