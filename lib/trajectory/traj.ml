type t = { omega_x : float array; omega_y : float array }

let length t = Array.length t.omega_x

let wrap_frequency w =
  let two_pi = 2.0 *. Float.pi in
  let w = Float.rem (w +. Float.pi) two_pi in
  let w = if w < 0.0 then w +. two_pi else w in
  w -. Float.pi

let make ~omega_x ~omega_y =
  if Array.length omega_x <> Array.length omega_y then
    invalid_arg "Traj.make: length mismatch";
  { omega_x = Array.map wrap_frequency omega_x;
    omega_y = Array.map wrap_frequency omega_y }

let concat ts =
  { omega_x = Array.concat (List.map (fun t -> t.omega_x) ts);
    omega_y = Array.concat (List.map (fun t -> t.omega_y) ts) }

let radius t j = Float.hypot t.omega_x.(j) t.omega_y.(j)

let max_radius t =
  let m = ref 0.0 in
  for j = 0 to length t - 1 do
    let r = radius t j in
    if r > !m then m := r
  done;
  !m

let bounds_ok t =
  let ok w = w >= -.Float.pi && w < Float.pi in
  Array.for_all ok t.omega_x && Array.for_all ok t.omega_y
