let make ?(r_max = Float.pi) ?(w1 = 5.0) ?(w2 = 7.0) ~samples () =
  if samples < 1 then invalid_arg "Rosette.make: samples must be >= 1";
  if r_max <= 0.0 || r_max > Float.pi then
    invalid_arg "Rosette.make: r_max must be in (0, pi]";
  let omega_x = Array.make samples 0.0 and omega_y = Array.make samples 0.0 in
  for j = 0 to samples - 1 do
    let t = 2.0 *. Float.pi *. float_of_int j /. float_of_int samples in
    let r = r_max *. Float.abs (sin (w1 *. t)) in
    omega_x.(j) <- r *. cos (w2 *. t);
    omega_y.(j) <- r *. sin (w2 *. t)
  done;
  Traj.make ~omega_x ~omega_y
