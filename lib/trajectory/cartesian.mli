(** Fully sampled Cartesian "trajectory": every integer k-space location of
    an [n x n] acquisition. On Cartesian data the adjoint NuFFT must agree
    with a plain inverse DFT — the strongest end-to-end consistency check
    available, used by the test suite. *)

val make : n:int -> Traj.t
(** [n^2] frequencies [2 pi k / n] for centred [k in [-n/2, n/2)^2], in
    row-major order. *)
