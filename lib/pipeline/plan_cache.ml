module Op = Nufft.Operator
module Sample = Nufft.Sample
module Plan = Nufft.Plan
module Sample_plan = Nufft.Sample_plan

(* Cache taxonomy: process-wide monotonic counters, mirrored by the
   per-instance stats record below (counters survive across instances;
   the record is per-cache). *)
let c_hit = Telemetry.Counter.make "cache.hit"
let c_miss = Telemetry.Counter.make "cache.miss"
let c_eviction = Telemetry.Counter.make "cache.eviction"

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  bytes : int;
}

(* Geometry part of the key; the trajectory part is [fp] plus a structural
   coordinate comparison on fingerprint match (collisions on distinct
   coordinates must never alias). The resolved kernel and the requested
   tolerance are part of the geometry: tenants asking for tol = 1e-3 and
   tol = 1e-6 (or ES vs Kaiser-Bessel at equal width) must never share a
   plan. *)
type key = {
  backend : string;
  n : int;
  sigma : float;
  w : int;
  l : int;
  g : int;
  tol : float option;
  kernel : Numerics.Window.t;
  transform : Nufft.Transform.t;
  targets : float array array option;
      (* type-3 target frequencies; compared structurally (finite floats,
         validated at context construction) *)
  fp : int;
}

type state = Building | Ready of Op.op

type entry = {
  key : key;
  canonical : Sample.t;
      (* the coordinate arrays of the first request for this key; every
         warm lookup replays transforms through these exact arrays so the
         plan-level compiled-decomposition cache hits physically *)
  mutable state : state;
  mutable bytes : int;
  mutable last_use : int;
}

type t = {
  mutex : Mutex.t;
  cond : Condition.t;
  max_entries : int;
  max_bytes : int;
  fingerprint : Sample.t -> int;
  mutable entries : entry list;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable total_bytes : int;
}

(* djb2-xor over the raw bits of every coordinate (plus the grid size):
   deterministic, order-sensitive, cheap. Equal trajectories held in
   distinct arrays fingerprint identically — that is the point. *)
let default_fingerprint (s : Sample.t) =
  let h = ref 5381L in
  let mix v = h := Int64.logxor (Int64.mul !h 33L) v in
  mix (Int64.of_int s.Sample.g);
  Array.iter
    (fun axis ->
      mix (Int64.of_int (Array.length axis));
      Array.iter (fun x -> mix (Int64.bits_of_float x)) axis)
    s.Sample.coords;
  Int64.to_int !h land max_int

let create ?(max_entries = 32) ?(max_bytes = 256 * 1024 * 1024)
    ?(fingerprint = default_fingerprint) () =
  if max_entries < 1 then invalid_arg "Plan_cache.create: max_entries < 1";
  if max_bytes < 1 then invalid_arg "Plan_cache.create: max_bytes < 1";
  { mutex = Mutex.create ();
    cond = Condition.create ();
    max_entries;
    max_bytes;
    fingerprint;
    entries = [];
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    total_bytes = 0 }

let stats t =
  Mutex.lock t.mutex;
  let s =
    { hits = t.hits;
      misses = t.misses;
      evictions = t.evictions;
      entries = List.length t.entries;
      bytes = t.total_bytes }
  in
  Mutex.unlock t.mutex;
  s

let next_tick t =
  t.tick <- t.tick + 1;
  t.tick

let key_of t ~backend (ctx : Op.ctx) =
  { backend;
    n = ctx.Op.n;
    sigma = ctx.Op.sigma;
    w = ctx.Op.w;
    l = ctx.Op.l;
    g = Op.ctx_grid ctx;
    tol = ctx.Op.tol;
    kernel = ctx.Op.kernel;
    transform = ctx.Op.transform;
    targets = ctx.Op.targets;
    fp = t.fingerprint ctx.Op.coords }

(* Structural coordinate equality guards against fingerprint collisions:
   two distinct trajectories that happen to share a fingerprint get
   separate entries. Coordinates are finite floats in [0, g), so [=] is
   sound; physical identity short-circuits the common warm case. *)
let coords_equal (a : Sample.t) (b : Sample.t) =
  a.Sample.coords == b.Sample.coords || a.Sample.coords = b.Sample.coords

let find t key (coords : Sample.t) =
  List.find_opt
    (fun e -> e.key = key && coords_equal e.canonical coords)
    t.entries

(* Fingerprint-free lookup on the physical identity of the coordinate
   arrays — the steady-state serving case, where every request carries the
   canonical arrays. Keeps warm lookups from re-hashing the whole
   trajectory (boxed-int64 churn) on each request. *)
let geometry_matches ~backend (ctx : Op.ctx) e =
  e.key.backend = backend && e.key.n = ctx.Op.n
  && e.key.sigma = ctx.Op.sigma && e.key.w = ctx.Op.w && e.key.l = ctx.Op.l
  && e.key.g = Op.ctx_grid ctx
  && e.key.tol = ctx.Op.tol
  && e.key.kernel = ctx.Op.kernel
  && e.key.transform = ctx.Op.transform
  && (e.key.targets == ctx.Op.targets || e.key.targets = ctx.Op.targets)

let find_physical t ~backend (ctx : Op.ctx) =
  List.find_opt
    (fun e ->
      geometry_matches ~backend ctx e
      && e.canonical.Sample.coords == ctx.Op.coords.Sample.coords)
    t.entries

(* Warm lookups may carry coordinate arrays that are equal to but
   physically distinct from the canonical ones; rebinding the sample set
   onto the canonical arrays keeps the plan's compiled-decomposition cache
   (keyed on physical identity) hitting, and keeps concurrent requests
   from racing to recompile it. *)
let with_canonical (canonical : Sample.t) ((module O : Op.NUFFT_OP) : Op.op) :
    Op.op =
  (module struct
    include O

    let adjoint (s : Sample.t) =
      if
        s.Sample.coords != canonical.Sample.coords
        && s.Sample.g = canonical.Sample.g
        && s.Sample.coords = canonical.Sample.coords
      then O.adjoint (Sample.with_values canonical s.Sample.values)
      else O.adjoint s
  end)

let coord_bytes (s : Sample.t) =
  Array.fold_left (fun acc a -> acc + (8 * Array.length a)) 0 s.Sample.coords

(* Build outside the cache mutex (concurrent misses on different keys
   build in parallel); the Building marker makes same-key waiters block
   instead of building again. Pre-compiling the plan's sample-plan here is
   what makes the single-build guarantee observable: it charges
   [sample_plan.cache_miss] exactly once per cache entry, and every
   subsequent application through the canonical coordinates replays it. *)
let build ~backend (ctx : Op.ctx) =
  let op = Op.create backend ctx in
  let plan_bytes =
    match Op.plan_of op with
    | Some plan when ctx.Op.transform <> Nufft.Transform.Type3 ->
        let splan = Plan.compiled plan ctx.Op.coords in
        8 * Sample_plan.memory_words splan
    | _ ->
        (* Type-3 operators compile their own internal spread + inner
           type-2 plans eagerly in [of_plan]; the bound coordinates are
           sources, not grid-coupled samples, so there is nothing to
           pre-compile here. *)
        0
  in
  (with_canonical ctx.Op.coords op, plan_bytes + coord_bytes ctx.Op.coords + 4096)

(* Caller holds the mutex. Evict least-recently-used Ready entries until
   both budgets hold; in-flight Building entries are never evicted. *)
let evict_over_budget t =
  let removable e = match e.state with Ready _ -> true | Building -> false in
  let over () =
    List.length t.entries > t.max_entries || t.total_bytes > t.max_bytes
  in
  while over () && List.exists removable t.entries do
    let victim =
      List.fold_left
        (fun acc e ->
          if not (removable e) then acc
          else
            match acc with
            | Some b when b.last_use <= e.last_use -> acc
            | _ -> Some e)
        None t.entries
    in
    match victim with
    | Some v ->
        t.entries <- List.filter (fun e -> e != v) t.entries;
        t.total_bytes <- t.total_bytes - v.bytes;
        t.evictions <- t.evictions + 1;
        Telemetry.Counter.incr c_eviction
    | None -> ()
  done

let rec operator t ~backend ~(ctx : Op.ctx) =
  Mutex.lock t.mutex;
  let fast =
    match find_physical t ~backend ctx with
    | Some ({ state = Ready op; _ } as e) ->
        e.last_use <- next_tick t;
        t.hits <- t.hits + 1;
        Telemetry.Counter.incr c_hit;
        Some (op, e.canonical)
    | _ -> None
  in
  Mutex.unlock t.mutex;
  match fast with
  | Some r -> r
  | None -> operator_slow t ~backend ~ctx

(* Full-key path: fingerprint the trajectory, wait out in-flight builds,
   build on a true miss. *)
and operator_slow t ~backend ~(ctx : Op.ctx) =
  let key = key_of t ~backend ctx in
  Mutex.lock t.mutex;
  let rec obtain () =
    match find t key ctx.Op.coords with
    | Some e -> (
        match e.state with
        | Ready op ->
            e.last_use <- next_tick t;
            t.hits <- t.hits + 1;
            Telemetry.Counter.incr c_hit;
            Mutex.unlock t.mutex;
            (op, e.canonical)
        | Building ->
            (* A same-key build is in flight; wait for its broadcast.
               Counted as a hit on completion: this lookup performed no
               build. *)
            Condition.wait t.cond t.mutex;
            obtain ())
    | None ->
        let e =
          { key;
            canonical = ctx.Op.coords;
            state = Building;
            bytes = 0;
            last_use = next_tick t }
        in
        t.entries <- t.entries @ [ e ];
        t.misses <- t.misses + 1;
        Telemetry.Counter.incr c_miss;
        Mutex.unlock t.mutex;
        (match build ~backend ctx with
        | op, bytes ->
            Mutex.lock t.mutex;
            e.state <- Ready op;
            e.bytes <- bytes;
            t.total_bytes <- t.total_bytes + bytes;
            evict_over_budget t;
            Condition.broadcast t.cond;
            Mutex.unlock t.mutex;
            (op, e.canonical)
        | exception exn ->
            Mutex.lock t.mutex;
            t.entries <- List.filter (fun x -> x != e) t.entries;
            Condition.broadcast t.cond;
            Mutex.unlock t.mutex;
            raise exn)
  in
  obtain ()

let create_fn t backend ctx = fst (operator t ~backend ~ctx)
