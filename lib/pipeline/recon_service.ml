module Op = Nufft.Operator
module Sample = Nufft.Sample
module Plan = Nufft.Plan
module Sample_plan = Nufft.Sample_plan
module Cvec = Numerics.Cvec
module Pool = Runtime.Pool

let now () = Unix.gettimeofday ()

let c_requests = Telemetry.Counter.make "svc.requests"
let c_errors = Telemetry.Counter.make "svc.errors"
let c_batches = Telemetry.Counter.make "svc.batches"

type method_ = Adjoint | Cg of int

type request = {
  backend : string;
  transform : Nufft.Transform.t;
  n : int;
  coords : Sample.t;
  values : Cvec.t;
  density : float array option;
  method_ : method_;
  tol : float option;
  family : Numerics.Window.family option;
}

type response = { image : Cvec.t; iterations : int; elapsed_s : float }

type error =
  | Invalid_request of string
  | Recon_error of Imaging.Recon.error
  | Internal of string

let error_message = function
  | Invalid_request msg -> "invalid request: " ^ msg
  | Recon_error e -> Imaging.Recon.error_message e
  | Internal msg -> "internal error: " ^ msg

type t = {
  pool : Pool.t option;
  cache : Plan_cache.t;
  ws : Workspace.t;
  w : int;
  sigma : float;
  l : int;
}

let create ?pool ?cache ?workspace ?(w = 6) ?(sigma = 2.0) ?(l = 512) () =
  { pool;
    cache = (match cache with Some c -> c | None -> Plan_cache.create ());
    ws = (match workspace with Some w -> w | None -> Workspace.create ());
    w;
    sigma;
    l }

let cache t = t.cache
let workspace t = t.ws

let method_name = function
  | Adjoint -> "adjoint"
  | Cg k -> Printf.sprintf "cg-%d" k

let rec pow b e = if e = 0 then 1 else b * pow b (e - 1)

(* ------------------------------------------------------------------ *)
(* Validation: every malformed request becomes a typed error before any
   work is scheduled. Shape rules are per-transform: type-1 and type-3
   carry one value per sample; type-2 carries the n^dims image whose
   spectrum is evaluated at the trajectory. *)

let validate req =
  let m = Sample.length req.coords in
  if req.n < 2 then Error (Invalid_request "n must be >= 2")
  else if m = 0 then Error (Recon_error Imaging.Recon.Empty_sample_set)
  else
    match req.transform with
    | Nufft.Transform.Type2 ->
        let ilen = pow req.n (Sample.dims req.coords) in
        if Cvec.length req.values <> ilen then
          Error
            (Invalid_request
               (Printf.sprintf
                  "type-2 values length %d does not match the %d-voxel image"
                  (Cvec.length req.values) ilen))
        else if req.density <> None then
          Error
            (Invalid_request
               "density weights do not apply to a type-2 (forward) request")
        else (
          match req.method_ with
          | Adjoint -> Ok ()
          | Cg _ ->
              Error (Invalid_request "cg applies to type-1 requests only"))
    | (Nufft.Transform.Type1 | Nufft.Transform.Type3) as tr ->
        if Cvec.length req.values <> m then
          Error
            (Invalid_request
               (Printf.sprintf
                  "values length %d does not match the %d-sample set"
                  (Cvec.length req.values) m))
        else (
          match req.density with
          | Some d when Array.length d <> m ->
              Error
                (Recon_error
                   (Imaging.Recon.Density_length_mismatch
                      { expected = m; got = Array.length d }))
          | _ -> (
              match (req.method_, tr) with
              | Cg _, Nufft.Transform.Type3 ->
                  Error (Invalid_request "cg applies to type-1 requests only")
              | Cg iters, _ when iters < 1 ->
                  Error (Invalid_request "cg iterations must be >= 1")
              | _ -> Ok ()))

(* Cached operators are always built pool-less: their applications run
   inside the service pool's [parallel_for] during batch execution, and a
   nested submission to the same pool deadlocks. The pool parallelises
   across requests instead. *)
let op_of ?tol ?family ?(transform = Nufft.Transform.Type1) t ~backend ~n
    ~coords =
  match
    (* A per-request tolerance overrides the service geometry entirely —
       kernel, width and table oversampling are all derived from it, so a
       tenant at 1e-6 never rides a 1e-3 tenant's plan (distinct cache
       keys by construction). *)
    match tol with
    | Some tol ->
        Op.context ~tol ?family ~sigma:t.sigma ~transform ~n ~coords ()
    | None ->
        Op.context ?family ~w:t.w ~sigma:t.sigma ~l:t.l ~transform ~n ~coords
          ()
  with
  | ctx -> (
      match Plan_cache.operator t.cache ~backend ~ctx with
      | pair -> Ok pair
      | exception Invalid_argument msg -> Error (Invalid_request msg))
  | exception Invalid_argument msg -> Error (Invalid_request msg)

let operator ?tol ?family ?transform t ~backend ~n ~coords =
  op_of ?tol ?family ?transform t ~backend ~n ~coords

(* ["auto"] defers the backend choice to the tuner: measured trials over
   the request's own trajectory on a cache miss, the cached winner after.
   Resolved pool-less, matching how cached operators are built. With
   [JIGSAW_TUNE=off] the tuner returns the default untouched, so the
   request behaves exactly like an explicit ["serial"] request. *)
let resolve_backend req =
  if req.backend = "auto" then
    Nufft.Tuner.resolve ?tol:req.tol ?family:req.family ~default:"serial"
      ~n:req.n ~coords:req.coords ()
  else req.backend

(* ------------------------------------------------------------------ *)
(* Fast direct path: for operators that expose their CPU plan, the whole
   adjoint pipeline runs through the pooled arena — replay-spread into the
   arena grid, in-place FFT with the arena line scratch, de-apodize into
   the arena image — with arithmetic identical (operation order and all)
   to [Recon.reconstruct_op], so results are bitwise the same while
   steady-state allocation stays O(1) minor words. *)

module A1 = Bigarray.Array1

(* Same arithmetic as [Recon.apply_density]'s [C.scale]: w*re, w*im. *)
let weight_into (w : float array) (values : Cvec.t) (out : Cvec.t) =
  let m = Cvec.length values in
  for j = 0 to m - 1 do
    let s = Array.unsafe_get w j in
    let re = A1.unsafe_get values (2 * j)
    and im = A1.unsafe_get values ((2 * j) + 1) in
    A1.unsafe_set out (2 * j) (s *. re);
    A1.unsafe_set out ((2 * j) + 1) (s *. im)
  done

let fast_adjoint ?fft_pool t ~(plan : Plan.plan) ~canonical req =
  let dims = Sample.dims req.coords in
  let m = Cvec.length req.values in
  let g = plan.Plan.g and n = plan.Plan.n in
  let glen = pow g dims and ilen = pow n dims in
  Workspace.with_arena t.ws ~grid:glen ~line:g ~image:ilen ~samples:m
  @@ fun a ->
  let vals =
    match req.density with
    | None -> req.values
    | Some w ->
        weight_into w req.values a.Workspace.vals;
        a.Workspace.vals
  in
  (* Physical-identity hit on the decomposition compiled at cache-build
     time: zero plan builds on the warm path. [fft_pool] (present only on
     direct, caller-thread submissions) also drives region-sharded replay:
     the partition is cached in the compiled plan, so the warm path pays
     only the per-shard dispatch. Batch execution passes no pool and
     replays serially — bitwise the same image either way. *)
  let splan = Plan.compiled plan canonical in
  Sample_plan.spread_parallel_into ?pool:fft_pool ~simd:plan.Plan.simd splan
    vals a.Workspace.grid;
  (match dims with
  | 2 ->
      Fft.Fftnd.transform_2d ?pool:fft_pool ~scratch:a.Workspace.line
        Fft.Dft.Inverse ~nx:g ~ny:g a.Workspace.grid;
      Plan.crop_deapodize_2d_into plan a.Workspace.grid a.Workspace.image
  | _ ->
      Fft.Fftnd.transform_3d ?pool:fft_pool ~scratch:a.Workspace.line
        Fft.Dft.Inverse ~nx:g ~ny:g ~nz:g a.Workspace.grid;
      Plan.crop_deapodize_3d_into plan a.Workspace.grid a.Workspace.image);
  Cvec.scale_inplace (1.0 /. float_of_int m) a.Workspace.image;
  (* The response must outlive the arena: hand back a fresh copy (one
     bigarray allocation — O(1) minor words). *)
  Cvec.copy a.Workspace.image

let run_cg t op req iters =
  let ilen = Op.image_length op in
  Workspace.with_arena t.ws ~grid:0 ~line:0 ~image:ilen ~samples:0
  @@ fun a ->
  let samples = Sample.with_values req.coords req.values in
  let rhs = Imaging.Cg.normal_equations_rhs_op ?weights:req.density op samples in
  let res =
    Imaging.Cg.solve ~max_iterations:iters ~buffers:a.Workspace.cg
      ~apply:(Imaging.Cg.normal_map ?weights:req.density op)
      rhs
  in
  (res.Imaging.Cg.solution, res.Imaging.Cg.iterations)

let execute ?fft_pool t req (op, canonical) =
  match req.transform with
  | Nufft.Transform.Type2 ->
      (* Forward projection: evaluate the request's image spectrum at the
         bound trajectory. The response carries the M k-space values
         (unscaled — type-2 is the pure evaluation, not a recon). *)
      let s = Op.apply_forward op req.values in
      Ok (s.Sample.values, 0)
  | Nufft.Transform.Type3 ->
      (* Type-3 reconstruction on the operator's bound target set (the
         centred lattice unless the context bound explicit targets):
         density-weight the strengths, apply, scale by 1/m — parity with
         the type-1 adjoint recon on the lattice. *)
      let m = Cvec.length req.values in
      let vals =
        match req.density with
        | None -> req.values
        | Some w ->
            let out = Cvec.create m in
            weight_into w req.values out;
            out
      in
      let image = Op.apply_type3 op vals in
      Cvec.scale_inplace (1.0 /. float_of_int m) image;
      Ok (image, 0)
  | Nufft.Transform.Type1 -> (
      match req.method_ with
      | Adjoint -> (
          match Op.plan_of op with
          | Some plan -> Ok (fast_adjoint ?fft_pool t ~plan ~canonical req, 0)
          | None -> (
              (* Hardware-model backends (fixed-point, f32 simulation) own
                 their numerics: run them through the generic driver rather
                 than substituting a CPU plan. *)
              let samples = Sample.with_values req.coords req.values in
              match
                Imaging.Recon.reconstruct_op ?density:req.density op samples
              with
              | Ok image -> Ok (image, 0)
              | Error e -> Error (Recon_error e)))
      | Cg iters -> Ok (run_cg t op req iters))

(* One request, start to finish; never raises — the batch scheduler runs
   this inside the domain pool, where an escaped exception would poison
   the whole submission. *)
let run_one ?fft_pool t req =
  let sp =
    if Telemetry.enabled () then
      Telemetry.span_begin ~cat:"svc"
        ~args:
          [ ("backend", req.backend);
            ("transform", Nufft.Transform.to_string req.transform);
            ("method", method_name req.method_) ]
        "svc.request"
    else Telemetry.null_span
  in
  Telemetry.Counter.incr c_requests;
  let t0 = now () in
  let result =
    match validate req with
    | Error e -> Error e
    | Ok () -> (
        match resolve_backend req with
        | exception Invalid_argument msg -> Error (Invalid_request msg)
        | backend -> (
        match
          op_of ?tol:req.tol ?family:req.family ~transform:req.transform t
            ~backend ~n:req.n ~coords:req.coords
        with
        | Error e -> Error e
        | Ok pair -> (
            match execute ?fft_pool t req pair with
            | r -> r
            | exception Invalid_argument msg -> Error (Invalid_request msg)
            | exception Failure msg -> Error (Internal msg)
            | exception exn -> Error (Internal (Printexc.to_string exn)))))
  in
  let elapsed_s = now () -. t0 in
  Telemetry.span_end sp;
  match result with
  | Ok (image, iterations) -> Ok { image; iterations; elapsed_s }
  | Error e ->
      Telemetry.Counter.incr c_errors;
      Error e

(* Direct submissions run on the caller's thread, outside any pool body,
   so the FFT passes of the fast path may use the service pool; batch
   execution must not (nested submission to the pool deadlocks). *)
let submit t req = run_one ?fft_pool:t.pool t req

let submit_batch t reqs =
  let sp =
    if Telemetry.enabled () then
      Telemetry.span_begin ~cat:"svc"
        ~args:[ ("requests", string_of_int (List.length reqs)) ]
        "svc.batch"
    else Telemetry.null_span
  in
  Telemetry.Counter.incr c_batches;
  let arr = Array.of_list reqs in
  let nreq = Array.length arr in
  let out = Array.make nreq (Error (Internal "request not executed")) in
  (match t.pool with
  | Some p when Pool.size p > 1 && nreq > 1 ->
      (* chunk:1 so each request is one unit of dynamic load balancing:
         independent requests overlap on different domains, heavy ones do
         not serialise light ones behind them. *)
      Pool.parallel_for ~chunk:1 p ~start:0 ~stop:nreq (fun i ->
          out.(i) <- run_one t arr.(i))
  | _ -> Array.iteri (fun i r -> out.(i) <- run_one t r) arr);
  Telemetry.span_end sp;
  Array.to_list out
