module Cvec = Numerics.Cvec
module A1 = Bigarray.Array1

let c_checkout = Telemetry.Counter.make "svc.arena_checkout"
let c_reuse = Telemetry.Counter.make "svc.arena_reuse"
let c_grow = Telemetry.Counter.make "svc.arena_grow"

(* A slot owns capacity-grown backing buffers; an arena is a set of
   exact-length views into one slot. Buffers only ever grow, so a
   steady-state serving loop stops allocating backing storage after
   warmup — each checkout then costs only the view wrappers and the arena
   record, O(1) minor words. *)
type slot = {
  mutable grid_b : Cvec.t;
  mutable line_b : Cvec.t;
  mutable image_b : Cvec.t;
  mutable x_b : Cvec.t;
  mutable r_b : Cvec.t;
  mutable p_b : Cvec.t;
  mutable vals_b : Cvec.t;
}

type arena = {
  grid : Cvec.t;
  line : Cvec.t;
  image : Cvec.t;
  cg : Imaging.Cg.buffers;
  vals : Cvec.t;
  slot : slot;
}

type stats = {
  checkouts : int;
  reuses : int;
  grows : int;
  retained : int;
  in_use : int;
}

type t = {
  mutex : Mutex.t;
  mutable free : slot list;
  mutable checkouts : int;
  mutable reuses : int;
  mutable grows : int;
  mutable in_use : int;
}

let create () =
  { mutex = Mutex.create ();
    free = [];
    checkouts = 0;
    reuses = 0;
    grows = 0;
    in_use = 0 }

let stats t =
  Mutex.lock t.mutex;
  let s =
    { checkouts = t.checkouts;
      reuses = t.reuses;
      grows = t.grows;
      retained = List.length t.free;
      in_use = t.in_use }
  in
  Mutex.unlock t.mutex;
  s

let empty_slot () =
  let z () = Cvec.create 0 in
  { grid_b = z ();
    line_b = z ();
    image_b = z ();
    x_b = z ();
    r_b = z ();
    p_b = z ();
    vals_b = z () }

(* Contents of a grown or reused buffer are arbitrary: every consumer of
   an arena view overwrites it fully (spread_into zeroes, the FFT scratch
   is gather-before-use, crop/pad and the CG setup overwrite every
   element), which is what makes reuse bitwise-identical to fresh
   buffers. *)
let ensure t get set slot len =
  if Cvec.length (get slot) < len then begin
    set slot (Cvec.create len);
    t.grows <- t.grows + 1;
    Telemetry.Counter.incr c_grow
  end

let view buf len =
  if Cvec.length buf = len then buf else A1.sub buf 0 (2 * len)

let checkout t ~grid ~line ~image ~samples =
  Mutex.lock t.mutex;
  t.checkouts <- t.checkouts + 1;
  t.in_use <- t.in_use + 1;
  let slot, reused =
    match t.free with
    | s :: rest ->
        t.free <- rest;
        t.reuses <- t.reuses + 1;
        (s, true)
    | [] -> (empty_slot (), false)
  in
  Mutex.unlock t.mutex;
  Telemetry.Counter.incr c_checkout;
  if reused then Telemetry.Counter.incr c_reuse;
  ensure t (fun s -> s.grid_b) (fun s v -> s.grid_b <- v) slot grid;
  ensure t (fun s -> s.line_b) (fun s v -> s.line_b <- v) slot line;
  ensure t (fun s -> s.image_b) (fun s v -> s.image_b <- v) slot image;
  ensure t (fun s -> s.x_b) (fun s v -> s.x_b <- v) slot image;
  ensure t (fun s -> s.r_b) (fun s v -> s.r_b <- v) slot image;
  ensure t (fun s -> s.p_b) (fun s v -> s.p_b <- v) slot image;
  ensure t (fun s -> s.vals_b) (fun s v -> s.vals_b <- v) slot samples;
  { grid = view slot.grid_b grid;
    line = view slot.line_b line;
    image = view slot.image_b image;
    cg =
      { Imaging.Cg.bx = view slot.x_b image;
        br = view slot.r_b image;
        bp = view slot.p_b image };
    vals = view slot.vals_b samples;
    slot }

let checkin t arena =
  Mutex.lock t.mutex;
  t.free <- arena.slot :: t.free;
  t.in_use <- t.in_use - 1;
  Mutex.unlock t.mutex

let with_arena t ~grid ~line ~image ~samples f =
  let a = checkout t ~grid ~line ~image ~samples in
  Fun.protect ~finally:(fun () -> checkin t a) (fun () -> f a)
