(** Concurrency-safe LRU cache of compiled NuFFT operators.

    The plan/execute split of PyNUFFT and cuFINUFFT, lifted to a serving
    layer: repeated reconstructions over the same trajectory should pay
    for plan construction and the slice-and-dice decomposition exactly
    once. The cache is keyed on the full operator identity —
    [(backend, n, sigma, w, l, g, transform, targets, coordinate
    fingerprint)] — with a
    structural coordinate comparison on fingerprint match, so distinct
    trajectories that collide in the fingerprint still get distinct
    entries.

    {2 Canonical coordinates}

    The plan layer keys its compiled decomposition on the {e physical
    identity} of the coordinate arrays. The cache therefore remembers the
    first request's arrays as the entry's {e canonical} coordinates,
    pre-compiles the decomposition at build time (one
    [sample_plan.cache_miss], ever), and wraps the returned operator so
    any warm request whose coordinate arrays are equal-but-distinct is
    transparently rebound onto the canonical arrays — every warm
    application replays the compiled plan; none recompiles, and concurrent
    warm requests cannot race on the plan's internal cache.

    {2 Concurrency}

    Lookups are mutex-protected; a miss inserts an in-flight marker and
    builds {e outside} the lock, so concurrent misses on different keys
    build in parallel while concurrent lookups of the same key block until
    the single build completes (asserted in the tests via the
    [sample_plan.cache_miss] counter). Eviction is LRU over completed
    entries, triggered when either the entry count or the byte budget
    (estimated decomposition + coordinate footprint) is exceeded;
    in-flight entries are never evicted.

    Telemetry: [cache.hit] / [cache.miss] / [cache.eviction] counters,
    mirrored by the per-instance {!stats}. *)

type t

type stats = {
  hits : int;  (** lookups served from a completed entry *)
  misses : int;  (** lookups that performed a build *)
  evictions : int;
  entries : int;  (** current resident entries (including in-flight) *)
  bytes : int;  (** estimated resident footprint *)
}

val create :
  ?max_entries:int ->
  ?max_bytes:int ->
  ?fingerprint:(Nufft.Sample.t -> int) ->
  unit ->
  t
(** New empty cache (defaults: 32 entries, 256 MiB). [fingerprint]
    overrides the trajectory hash — the tests use a constant function to
    force collisions and exercise the structural-comparison guard. *)

val default_fingerprint : Nufft.Sample.t -> int
(** djb2-xor over the raw bits of every coordinate and the grid size. *)

val operator :
  t -> backend:string -> ctx:Nufft.Operator.ctx -> Nufft.Operator.op * Nufft.Sample.t
(** [operator t ~backend ~ctx] returns the cached operator for this
    backend and context, building (and compiling the trajectory
    decomposition) on first use, together with the entry's canonical
    sample set — replay transforms through those exact coordinate arrays
    to hit the plan-level compiled cache physically. Raises
    [Invalid_argument] exactly where {!Nufft.Operator.create} does
    (unknown backend, unsupported dimensionality); a failed build leaves
    the cache unchanged.

    The cache deliberately ignores [ctx.pool] in the key: use one pool
    policy per cache (the reconstruction service always builds cached
    operators pool-less, because their applications run inside the
    service's own [parallel_for]). *)

val create_fn : t -> string -> Nufft.Operator.ctx -> Nufft.Operator.op
(** {!operator} curried to the shape of {!Nufft.Operator.create} — drop-in
    for hooks like [Toeplitz.make_op ~create] so setup adjoints route
    through the cache. *)

val stats : t -> stats
