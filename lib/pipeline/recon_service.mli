(** Batched reconstruction request/response service.

    The serving shape the ROADMAP's north star asks for: accept a batch
    of reconstruction requests, schedule them across the domain pool, and
    amortise everything amortisable — plans and trajectory decompositions
    through the {!Plan_cache} (requests sharing a trajectory build once
    and replay), per-request buffers through the {!Workspace} arenas
    (steady-state serving allocates O(1) minor words on the direct path).

    Error discipline: every failure mode of a request — malformed
    parameters, unknown backend, backend validation, reconstruction
    errors — is returned as a typed [Error]; no exception escapes
    {!submit} or {!submit_batch} (asserted by the tests, and required by
    the batch scheduler: an exception inside the pool would poison the
    whole submission).

    Concurrency model: batch requests are scheduled one-per-chunk over
    the service pool, so independent requests overlap on different
    domains. Cached operators are always built {e pool-less} — their
    transforms run inside the pool's own [parallel_for], where a nested
    submission would deadlock; parallelism comes from request-level
    overlap, not intra-transform threading.

    Telemetry: [svc.request] / [svc.batch] spans (tagged with backend and
    method), [svc.requests] / [svc.errors] / [svc.batches] counters, plus
    the cache and arena counters of the underlying components. *)

type method_ =
  | Adjoint  (** direct density-compensated gridding reconstruction *)
  | Cg of int
      (** iterative reconstruction: CG on the normal equations
          [A^H W A x = A^H W y], with the given iteration budget *)

type request = {
  backend : string;
      (** registered operator backend name, or ["auto"] to let the
          {!Nufft.Tuner} pick from measured trials over this trajectory
          (with [JIGSAW_TUNE=off], ["auto"] degrades to ["serial"]) *)
  transform : Nufft.Transform.t;
      (** which transform to apply. [Type1] is the reconstruction path
          (adjoint or CG); [Type2] evaluates the request's [values] — an
          [n^dims] image — at the trajectory and returns the M k-space
          values in [response.image] (unscaled, [iterations = 0], density
          must be [None], method must be [Adjoint]); [Type3] treats the
          trajectory as arbitrary source frequencies and reconstructs on
          the centred lattice via the scale/shift decomposition
          ({!Nufft.Plan.make_type3}), density-weighting and [1/m]-scaling
          like the type-1 adjoint ([Adjoint] only). *)
  n : int;  (** image size per dimension *)
  coords : Nufft.Sample.t;
      (** trajectory in grid units on the oversampled grid
          [g = round (sigma * n)] *)
  values : Numerics.Cvec.t;  (** k-space data, one value per sample *)
  density : float array option;  (** optional density-compensation weights *)
  method_ : method_;
  tol : float option;
      (** requested relative accuracy; overrides the service's [w]/[l]
          geometry with tolerance-derived kernel + width + table (see
          {!Nufft.Plan.make}). Requests at different tolerances never
          share a cached plan. *)
  family : Numerics.Window.family option;
      (** kernel family for [tol]-driven requests (default ES); without
          [tol], selects the default kernel family at the service width *)
}

type response = {
  image : Numerics.Cvec.t;
      (** centred row-major [n^dims] image (type-1/type-3); for type-2
          requests, the M evaluated k-space values *)
  iterations : int;  (** CG iterations performed; 0 for {!Adjoint} *)
  elapsed_s : float;
}

type error =
  | Invalid_request of string
      (** malformed parameters, unknown backend, geometry mismatch *)
  | Recon_error of Imaging.Recon.error
  | Internal of string  (** caught unexpected exception *)

val error_message : error -> string

type t

val create :
  ?pool:Runtime.Pool.t ->
  ?cache:Plan_cache.t ->
  ?workspace:Workspace.t ->
  ?w:int ->
  ?sigma:float ->
  ?l:int ->
  unit ->
  t
(** A service instance. [pool] enables request-level parallelism for
    {!submit_batch}; [cache] / [workspace] default to fresh instances
    (share them to share amortisation across services); [w] / [sigma] /
    [l] are the NuFFT geometry applied to every request (plan defaults). *)

val cache : t -> Plan_cache.t
val workspace : t -> Workspace.t

val operator :
  ?tol:float ->
  ?family:Numerics.Window.family ->
  ?transform:Nufft.Transform.t ->
  t ->
  backend:string ->
  n:int ->
  coords:Nufft.Sample.t ->
  (Nufft.Operator.op * Nufft.Sample.t, error) result
(** The cached operator (and canonical coordinates) this service would
    use for requests with this backend, size, trajectory and tolerance —
    built with the service's geometry (or the [tol]-derived one) and the
    same cache key as {!submit}, so a caller that needs the raw operator
    (forward acquisition, backend stats) shares the entry with subsequent
    requests. *)

val submit : t -> request -> (response, error) result
(** Execute one request synchronously. Warm-cache requests on a
    plan-backed backend run the arena fast path: replay-spread, pooled
    FFT scratch, in-place de-apodization — bitwise identical to
    [Imaging.Recon.reconstruct_op], zero plan builds. Direct submissions
    run on the caller's thread, so the fast path's FFT passes use the
    service pool (bit-identical to the serial passes); batch-scheduled
    requests keep every transform single-domain and overlap across
    requests instead. *)

val submit_batch : t -> request list -> (response, error) result list
(** Execute a batch, scheduled across the service pool (one request per
    chunk; serial without a pool). Results are in request order; each
    request fails independently. *)
