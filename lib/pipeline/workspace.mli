(** Pooled per-request buffer arenas for the reconstruction service.

    One direct reconstruction needs an oversampled [g^dims] grid, an FFT
    line-gather buffer, an [n^dims] image, a CG state-vector set and a
    density-weighted value vector. Allocating those per request is pure
    churn under serving load; this pool retains {e slots} of
    capacity-grown backing buffers and hands out exact-length views
    ({!Bigarray.Array1.sub}) into them. After warmup a steady-state
    request allocates only the view wrappers and the arena record —
    O(1) minor words per request, pinned by the workspace tests.

    Reuse safety: arena contents are {e not} cleared on checkout; every
    pipeline stage that consumes a view overwrites it completely
    ([Sample_plan.spread_into] zeroes the grid, the FFT scratch is
    gathered before use, crop/pad and the CG solver initialise their
    buffers), so results through a reused arena are bitwise identical to
    fresh buffers — also pinned by the tests, for every registered
    backend.

    Checkout/checkin are mutex-protected; concurrent requests each hold a
    private slot. Telemetry counters: [svc.arena_checkout],
    [svc.arena_reuse], [svc.arena_grow]. *)

type t

type slot
(** Backing storage owned by the pool (opaque). *)

type arena = {
  grid : Numerics.Cvec.t;  (** [g^dims] oversampled grid *)
  line : Numerics.Cvec.t;  (** FFT line-gather scratch, length [g] *)
  image : Numerics.Cvec.t;  (** [n^dims] result staging *)
  cg : Imaging.Cg.buffers;  (** CG state vectors, length [n^dims] *)
  vals : Numerics.Cvec.t;  (** density-weighted sample values, length m *)
  slot : slot;
}

type stats = {
  checkouts : int;
  reuses : int;  (** checkouts served by a retained slot *)
  grows : int;  (** backing-buffer reallocations (warmup only) *)
  retained : int;  (** free slots currently pooled *)
  in_use : int;
      (** arenas checked out and not yet returned — 0 in any quiescent
          state; the serving tier's fault-injection tests assert this to
          prove no request path leaks its arena *)
}

val create : unit -> t

val checkout :
  t -> grid:int -> line:int -> image:int -> samples:int -> arena
(** Borrow an arena with views of the given complex lengths; backing
    buffers grow to fit and are retained for reuse. *)

val checkin : t -> arena -> unit
(** Return the arena's slot to the pool. The arena's views must not be
    used afterwards. *)

val with_arena :
  t ->
  grid:int ->
  line:int ->
  image:int ->
  samples:int ->
  (arena -> 'a) ->
  'a
(** Checkout / run / checkin, exception-safe. *)

val stats : t -> stats
