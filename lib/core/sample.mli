(** Non-uniform sample sets, dimension-generic.

    Two coordinate domains are used in this library:

    - {e angular frequencies} omega in [[-pi, pi)] per dimension — the
      natural domain for MRI k-space trajectories and the NuDFT definition;
    - {e grid units} u in [[0, G)] per dimension, where [G = sigma * N] is
      the oversampled grid size — the domain the gridding engines and the
      JIGSAW hardware consume ([u = omega * G / 2pi] wrapped onto the torus,
      paper Fig 2).

    A sample set couples one grid-unit coordinate array per dimension
    (packed as [coords.(axis).(sample)]) with a complex value vector. The
    number of axes is the dimensionality: the same representation carries
    the 2D and 3D problems of the paper (and 1D test cases), so every
    consumer that dispatches on {!dims} — plans, operators, reconstruction
    — is dimension-agnostic. *)

type t = {
  coords : float array array;
      (** [coords.(d).(j)] — grid-unit coordinate of sample [j] along axis
          [d], each in [0, g); axis order x, y, z *)
  values : Numerics.Cvec.t;  (** one complex value per sample *)
  g : int;  (** the oversampled grid size the coordinates refer to *)
}

type t2 = t
(** Historical alias from the 2D-only days; [t] is dimension-generic. *)

val dims : t -> int
(** Number of coordinate axes (1, 2 or 3). *)

val length : t -> int
(** Number of samples. *)

val coord : t -> int -> float array
(** [coord s d] — the axis-[d] coordinate array. Raises on a missing
    axis. *)

val gx : t -> float array
val gy : t -> float array

val gz : t -> float array
(** Named axis accessors; [gy]/[gz] raise [Invalid_argument] when the
    sample set has fewer dimensions. *)

val omega_to_grid : g:int -> float -> float
(** Map one angular frequency in [[-pi, pi)] (any real is accepted and
    wrapped) to grid units in [[0, g)]. *)

val make : g:int -> coords:float array array -> values:Numerics.Cvec.t -> t
(** Build directly from grid-unit coordinate arrays, one per axis
    (validated to lie in [0, g)). *)

val of_omega :
  g:int -> omega:float array array -> values:Numerics.Cvec.t -> t
(** Build from k-space angular frequencies, one array per axis. Raises
    [Invalid_argument] on length mismatch. *)

val of_omega_2d :
  g:int ->
  omega_x:float array ->
  omega_y:float array ->
  values:Numerics.Cvec.t ->
  t
(** 2D convenience wrapper over {!of_omega}. *)

val of_omega_3d :
  g:int ->
  omega_x:float array ->
  omega_y:float array ->
  omega_z:float array ->
  values:Numerics.Cvec.t ->
  t

val make_2d :
  g:int -> gx:float array -> gy:float array -> values:Numerics.Cvec.t -> t
(** Build directly from grid-unit coordinates (validated to lie in
    [0, g)). *)

val make_3d :
  g:int ->
  gx:float array ->
  gy:float array ->
  gz:float array ->
  values:Numerics.Cvec.t ->
  t

val random : ?seed:int -> ?dims:int -> g:int -> int -> t
(** [random ~dims ~g m] is [m] samples with uniformly random coordinates
    in [0, g)^dims and values in the complex unit square — the
    "effectively random order" worst case the paper emphasises. *)

val random_2d : ?seed:int -> g:int -> int -> t
val random_3d : ?seed:int -> g:int -> int -> t

val with_values : t -> Numerics.Cvec.t -> t
(** Same coordinates, new value vector (length-checked). *)

val rescale : g:int -> t -> t
(** [rescale ~g s] — the same sampling pattern re-expressed on a [g]-point
    grid (coordinates scaled by [g / s.g]); used by the Toeplitz embedding
    to move a trajectory onto the doubled grid. *)

val validate : t -> unit
(** Check all coordinates lie in [0, g); raises [Invalid_argument]. *)
