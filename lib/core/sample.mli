(** Non-uniform sample sets.

    Two coordinate domains are used in this library:

    - {e angular frequencies} omega in [[-pi, pi)] per dimension — the
      natural domain for MRI k-space trajectories and the NuDFT definition;
    - {e grid units} u in [[0, G)] per dimension, where [G = sigma * N] is
      the oversampled grid size — the domain the gridding engines and the
      JIGSAW hardware consume ([u = omega * G / 2pi] wrapped onto the torus,
      paper Fig 2).

    A sample set couples coordinate arrays with a complex value vector. *)

type t2 = {
  gx : float array;  (** grid-unit x coordinates, each in [0, g) *)
  gy : float array;  (** grid-unit y coordinates, each in [0, g) *)
  values : Numerics.Cvec.t;  (** one complex value per sample *)
  g : int;  (** the oversampled grid size the coordinates refer to *)
}

val length : t2 -> int

val omega_to_grid : g:int -> float -> float
(** Map one angular frequency in [[-pi, pi)] (any real is accepted and
    wrapped) to grid units in [[0, g)]. *)

val of_omega_2d :
  g:int ->
  omega_x:float array ->
  omega_y:float array ->
  values:Numerics.Cvec.t ->
  t2
(** Build a sample set from k-space angular frequencies. Raises
    [Invalid_argument] on length mismatch. *)

val make_2d :
  g:int -> gx:float array -> gy:float array -> values:Numerics.Cvec.t -> t2
(** Build directly from grid-unit coordinates (validated to lie in
    [0, g)). *)

val random_2d : ?seed:int -> g:int -> int -> t2
(** [random_2d ~g m] is [m] samples with uniformly random coordinates in [0, g)^2 and values in
    the complex unit square — the "effectively random order" worst case the
    paper emphasises. *)

val with_values : t2 -> Numerics.Cvec.t -> t2

val validate : t2 -> unit
(** Check all coordinates lie in [0, g); raises [Invalid_argument]. *)
