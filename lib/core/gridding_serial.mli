(** Input-driven serial gridding — the MIRT-class baseline (paper §II-C).

    Processes the (possibly randomly ordered) samples one at a time,
    accumulating each sample's weighted contribution to every point of its
    interpolation window. This is the double-precision functional reference
    used to validate every other engine, and — run at simulated single
    precision — the source of the paper's 32-bit floating-point quality
    numbers (Fig 9). *)

type precision = [ `Double | `Single ]

val add_grid_stats :
  Gridding_stats.t option ->
  samples:int ->
  checks:int ->
  evals:int ->
  accums:int ->
  unit
(** Merge a batch of work counters into an optional stats record — shared
    by every engine so the per-sample hot loops never construct closures
    for counter bumps (counts are accumulated in locals and added once per
    call). *)

val grid_1d :
  ?stats:Gridding_stats.t ->
  ?precision:precision ->
  table:Numerics.Weight_table.t ->
  g:int ->
  coords:float array ->
  Numerics.Cvec.t ->
  Numerics.Cvec.t
(** [grid_1d ~table ~g ~coords values] spreads [values] onto a length-[g]
    grid. *)

val grid_2d :
  ?stats:Gridding_stats.t ->
  ?precision:precision ->
  table:Numerics.Weight_table.t ->
  g:int ->
  gx:float array ->
  gy:float array ->
  Numerics.Cvec.t ->
  Numerics.Cvec.t
(** [grid_2d ~table ~g ~gx ~gy values] spreads onto a [g] x [g] row-major
    grid. *)

val interp_2d :
  ?stats:Gridding_stats.t ->
  table:Numerics.Weight_table.t ->
  g:int ->
  gx:float array ->
  gy:float array ->
  Numerics.Cvec.t ->
  Numerics.Cvec.t
(** [interp_2d ~table ~g ~gx ~gy grid] gathers from a [g] x [g] grid. *)
