module Cvec = Numerics.Cvec
module C = Numerics.Complexd

let forward_1d ~n ~omega ~signal =
  if Cvec.length signal <> n then
    invalid_arg "Nudft.forward_1d: signal size mismatch";
  let m = Array.length omega in
  Cvec.init m (fun j ->
      let acc = ref C.zero in
      for i = 0 to n - 1 do
        let pos = float_of_int (i - (n / 2)) in
        acc :=
          C.add !acc
            (C.mul (Cvec.get signal i) (C.exp_i (-.(omega.(j) *. pos))))
      done;
      !acc)

let adjoint_1d ~n ~omega ~values =
  let m = Array.length omega in
  if Cvec.length values <> m then
    invalid_arg "Nudft.adjoint_1d: values size mismatch";
  Cvec.init n (fun i ->
      let pos = float_of_int (i - (n / 2)) in
      let acc = ref C.zero in
      for j = 0 to m - 1 do
        acc :=
          C.add !acc (C.mul (Cvec.get values j) (C.exp_i (omega.(j) *. pos)))
      done;
      !acc)

let forward_2d ~n ~omega_x ~omega_y ~image =
  if Cvec.length image <> n * n then
    invalid_arg "Nudft.forward_2d: image size mismatch";
  let m = Array.length omega_x in
  if Array.length omega_y <> m then
    invalid_arg "Nudft.forward_2d: omega length mismatch";
  Cvec.init m (fun j ->
      let acc = ref C.zero in
      for iy = 0 to n - 1 do
        let py = float_of_int (iy - (n / 2)) in
        for ix = 0 to n - 1 do
          let px = float_of_int (ix - (n / 2)) in
          let phase = -.((omega_x.(j) *. px) +. (omega_y.(j) *. py)) in
          acc :=
            C.add !acc
              (C.mul (Cvec.get image ((iy * n) + ix)) (C.exp_i phase))
        done
      done;
      !acc)

let adjoint_2d ~n ~omega_x ~omega_y ~values =
  let m = Array.length omega_x in
  if Array.length omega_y <> m || Cvec.length values <> m then
    invalid_arg "Nudft.adjoint_2d: size mismatch";
  Cvec.init (n * n) (fun idx ->
      let ix = idx mod n and iy = idx / n in
      let px = float_of_int (ix - (n / 2)) and py = float_of_int (iy - (n / 2)) in
      let acc = ref C.zero in
      for j = 0 to m - 1 do
        let phase = (omega_x.(j) *. px) +. (omega_y.(j) *. py) in
        acc := C.add !acc (C.mul (Cvec.get values j) (C.exp_i phase))
      done;
      !acc)

let forward_3d ~n ~omega_x ~omega_y ~omega_z ~image =
  if Cvec.length image <> n * n * n then
    invalid_arg "Nudft.forward_3d: image size mismatch";
  let m = Array.length omega_x in
  if Array.length omega_y <> m || Array.length omega_z <> m then
    invalid_arg "Nudft.forward_3d: omega length mismatch";
  Cvec.init m (fun j ->
      let acc = ref C.zero in
      for iz = 0 to n - 1 do
        let pz = float_of_int (iz - (n / 2)) in
        for iy = 0 to n - 1 do
          let py = float_of_int (iy - (n / 2)) in
          for ix = 0 to n - 1 do
            let px = float_of_int (ix - (n / 2)) in
            let phase =
              -.((omega_x.(j) *. px) +. (omega_y.(j) *. py)
                +. (omega_z.(j) *. pz))
            in
            acc :=
              C.add !acc
                (C.mul
                   (Cvec.get image ((((iz * n) + iy) * n) + ix))
                   (C.exp_i phase))
          done
        done
      done;
      !acc)

let type3 ~sources ~targets ~values =
  let dims = Array.length sources in
  if dims < 1 || dims > 3 then invalid_arg "Nudft.type3: dims must be 1..3";
  if Array.length targets <> dims then
    invalid_arg "Nudft.type3: source/target dims mismatch";
  let m_in = Array.length sources.(0) in
  let m_out = Array.length targets.(0) in
  Array.iter
    (fun a ->
      if Array.length a <> m_in then
        invalid_arg "Nudft.type3: ragged source axes")
    sources;
  Array.iter
    (fun a ->
      if Array.length a <> m_out then
        invalid_arg "Nudft.type3: ragged target axes")
    targets;
  if Cvec.length values <> m_in then
    invalid_arg "Nudft.type3: values size mismatch";
  Cvec.init m_out (fun k ->
      let acc = ref C.zero in
      for j = 0 to m_in - 1 do
        let phase = ref 0.0 in
        for d = 0 to dims - 1 do
          phase := !phase +. (targets.(d).(k) *. sources.(d).(j))
        done;
        acc := C.add !acc (C.mul (Cvec.get values j) (C.exp_i !phase))
      done;
      !acc)

let adjoint_3d ~n ~omega_x ~omega_y ~omega_z ~values =
  let m = Array.length omega_x in
  if Array.length omega_y <> m || Array.length omega_z <> m
     || Cvec.length values <> m
  then invalid_arg "Nudft.adjoint_3d: size mismatch";
  Cvec.init (n * n * n) (fun idx ->
      let ix = idx mod n in
      let iy = idx / n mod n in
      let iz = idx / (n * n) in
      let px = float_of_int (ix - (n / 2))
      and py = float_of_int (iy - (n / 2))
      and pz = float_of_int (iz - (n / 2)) in
      let acc = ref C.zero in
      for j = 0 to m - 1 do
        let phase =
          (omega_x.(j) *. px) +. (omega_y.(j) *. py) +. (omega_z.(j) *. pz)
        in
        acc := C.add !acc (C.mul (Cvec.get values j) (C.exp_i phase))
      done;
      !acc)
