type t = {
  mutable samples_processed : int;
  mutable boundary_checks : int;
  mutable window_evals : int;
  mutable grid_accumulates : int;
  mutable presort_ops : int;
}

let create () =
  { samples_processed = 0;
    boundary_checks = 0;
    window_evals = 0;
    grid_accumulates = 0;
    presort_ops = 0 }

let reset s =
  s.samples_processed <- 0;
  s.boundary_checks <- 0;
  s.window_evals <- 0;
  s.grid_accumulates <- 0;
  s.presort_ops <- 0

let add acc s =
  acc.samples_processed <- acc.samples_processed + s.samples_processed;
  acc.boundary_checks <- acc.boundary_checks + s.boundary_checks;
  acc.window_evals <- acc.window_evals + s.window_evals;
  acc.grid_accumulates <- acc.grid_accumulates + s.grid_accumulates;
  acc.presort_ops <- acc.presort_ops + s.presort_ops

let total_work s =
  s.samples_processed + s.boundary_checks + s.window_evals
  + s.grid_accumulates + s.presort_ops

let pp ppf s =
  Format.fprintf ppf
    "@[samples=%d checks=%d lookups=%d accums=%d presort=%d@]"
    s.samples_processed s.boundary_checks s.window_evals s.grid_accumulates
    s.presort_ops
