type t = {
  mutable samples_processed : int;
  mutable boundary_checks : int;
  mutable window_evals : int;
  mutable grid_accumulates : int;
  mutable presort_ops : int;
}

let create () =
  { samples_processed = 0;
    boundary_checks = 0;
    window_evals = 0;
    grid_accumulates = 0;
    presort_ops = 0 }

let reset s =
  s.samples_processed <- 0;
  s.boundary_checks <- 0;
  s.window_evals <- 0;
  s.grid_accumulates <- 0;
  s.presort_ops <- 0

let add acc s =
  acc.samples_processed <- acc.samples_processed + s.samples_processed;
  acc.boundary_checks <- acc.boundary_checks + s.boundary_checks;
  acc.window_evals <- acc.window_evals + s.window_evals;
  acc.grid_accumulates <- acc.grid_accumulates + s.grid_accumulates;
  acc.presort_ops <- acc.presort_ops + s.presort_ops

let total_work s =
  s.samples_processed + s.boundary_checks + s.window_evals
  + s.grid_accumulates + s.presort_ops

let pp ppf s =
  Format.fprintf ppf
    "@[samples=%d checks=%d lookups=%d accums=%d presort=%d@]"
    s.samples_processed s.boundary_checks s.window_evals s.grid_accumulates
    s.presort_ops

(* ------------------------------------------------------------------ *)
(* Telemetry unification. Every engine funnels its per-pass totals
   through [record] (via Gridding_serial.add_grid_stats), so mirroring
   the same deltas into the process-wide counters here gives one global
   view of gridding work without touching any per-sample loop; the
   mirror costs a handful of atomic adds per *pass* and only when
   telemetry is enabled. [grid_span] is the shared span hook the 2D and
   3D dispatchers open around an engine invocation. *)

let c_samples = Telemetry.Counter.make "grid.samples_processed"
let c_checks = Telemetry.Counter.make "grid.boundary_checks"
let c_evals = Telemetry.Counter.make "grid.window_evals"
let c_accums = Telemetry.Counter.make "grid.grid_accumulates"
let c_presort = Telemetry.Counter.make "grid.presort_ops"

let record stats ?(presort = 0) ~samples ~checks ~evals ~accums () =
  (match stats with
  | None -> ()
  | Some s ->
      s.samples_processed <- s.samples_processed + samples;
      s.boundary_checks <- s.boundary_checks + checks;
      s.window_evals <- s.window_evals + evals;
      s.grid_accumulates <- s.grid_accumulates + accums;
      s.presort_ops <- s.presort_ops + presort);
  if Telemetry.enabled () then begin
    Telemetry.Counter.add c_samples samples;
    Telemetry.Counter.add c_checks checks;
    Telemetry.Counter.add c_evals evals;
    Telemetry.Counter.add c_accums accums;
    Telemetry.Counter.add c_presort presort
  end

let grid_span name = Telemetry.span_begin ~cat:"grid" name
let end_span = Telemetry.span_end
