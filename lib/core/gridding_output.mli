(** Naive output-driven parallel gridding (paper §II-C).

    One logical thread per grid point; every thread performs a boundary
    check against every sample, so the engine performs [M * g^d] checks of
    which only [M * w^d] succeed. Threads own disjoint outputs, so no
    synchronisation is needed — but the check count makes this intractable
    for real problem sizes, which is precisely the paper's motivation for
    binning and Slice-and-Dice. Functionally exact; intended for small
    problems and for producing the check-count statistics of Fig 3/E8. *)

val grid_1d :
  ?stats:Gridding_stats.t ->
  table:Numerics.Weight_table.t ->
  g:int ->
  coords:float array ->
  Numerics.Cvec.t ->
  Numerics.Cvec.t

val grid_2d :
  ?stats:Gridding_stats.t ->
  table:Numerics.Weight_table.t ->
  g:int ->
  gx:float array ->
  gy:float array ->
  Numerics.Cvec.t ->
  Numerics.Cvec.t
