(** Slice-and-Dice gridding — the paper's contribution (§III, Fig 3b, Fig 4).

    The target grid is broken into virtual tiles of [t] points per side,
    stacked into "dice". A block of [t^d] workers — one per relative
    position ("column") — processes every sample with a two-part boundary
    check derived from the quotient/remainder decomposition of the sample's
    coordinates; no presort, no duplicate sample processing, and each worker
    writes a private, contiguous column of the dice, so workers never
    interact. The check count is [M * t^d], independent of the grid size:
    an [N^d / t^d] reduction versus naive output parallelism.

    Two functionally equivalent drivers are provided:

    - [grid_2d] is the faithful column-outer schedule (each column scans all
      samples), the schedule the GPU and ASIC implementations realise in
      parallel; its statistics reflect the true M*t^d check count.
    - [grid_2d_fast] is a sample-outer CPU schedule that exploits the
      decomposition to visit only the affected columns; it produces a
      bit-identical grid to {!Gridding_serial.grid_2d} (same accumulation
      order per grid point) and is what the software NuFFT pipeline uses.

    Results are produced in dice layout and converted; the layout mapping
    is exposed for the hardware model and the tests. *)

val dice_address : t:int -> g:int -> column:int -> tile:int -> int
(** Linear address in dice layout: column-major storage where each column's
    [g^2/t^2] points are contiguous ([column] in [0..t^2-1], [tile] in
    [0..(g/t)^2-1]). *)

val grid_index_of_dice : t:int -> g:int -> int -> int
(** Map a dice-layout address back to the row-major grid index. *)

val dice_to_row_major : t:int -> g:int -> Numerics.Cvec.t -> Numerics.Cvec.t

val grid_1d :
  ?stats:Gridding_stats.t ->
  table:Numerics.Weight_table.t ->
  g:int ->
  t:int ->
  coords:float array ->
  Numerics.Cvec.t ->
  Numerics.Cvec.t
(** Faithful column-outer 1D Slice-and-Dice. *)

val grid_2d :
  ?stats:Gridding_stats.t ->
  table:Numerics.Weight_table.t ->
  g:int ->
  t:int ->
  gx:float array ->
  gy:float array ->
  Numerics.Cvec.t ->
  Numerics.Cvec.t
(** Faithful column-outer 2D Slice-and-Dice ([m * t^2] boundary checks). *)

val grid_2d_fast :
  ?stats:Gridding_stats.t ->
  table:Numerics.Weight_table.t ->
  g:int ->
  t:int ->
  gx:float array ->
  gy:float array ->
  Numerics.Cvec.t ->
  Numerics.Cvec.t
(** Sample-outer schedule; bit-identical to the serial reference. *)

val with_pool :
  name:string ->
  ?pool:Runtime.Pool.t ->
  ?domains:int ->
  (Runtime.Pool.t -> 'a) ->
  'a
(** Execution-context resolution shared by the pool-parallel engines: an
    explicit [pool] is used as-is; [domains] (without a pool) runs on a
    throwaway pool of that size, shut down afterwards; neither falls back
    to {!Runtime.Pool.global}. Raises [Invalid_argument "<name>: domains
    < 1"] on a non-positive [domains]. *)

val grid_2d_parallel :
  ?stats:Gridding_stats.t ->
  ?pool:Runtime.Pool.t ->
  ?domains:int ->
  table:Numerics.Weight_table.t ->
  g:int ->
  t:int ->
  gx:float array ->
  gy:float array ->
  Numerics.Cvec.t ->
  Numerics.Cvec.t
(** True multicore execution of the column-outer schedule using OCaml 5
    domains: the [t^2] columns are distributed over a {!Runtime.Pool}
    (an explicit [pool], else a throwaway pool of [domains], else the
    process-wide pool), each domain scanning all samples and writing only
    the private stores of the columns it claims — the interaction-free
    property of the Slice-and-Dice model realised on a real parallel
    machine rather than a simulated one. Produces the same grid as
    {!grid_2d} (same per-column accumulation order), bit-identical for
    every pool size, and reports the same [M * t^2] statistics, merged
    from per-domain counters. *)
