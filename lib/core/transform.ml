type t = Type1 | Type2 | Type3

let all = [ Type1; Type2; Type3 ]

let to_string = function
  | Type1 -> "type1"
  | Type2 -> "type2"
  | Type3 -> "type3"

let short = function Type1 -> "t1" | Type2 -> "t2" | Type3 -> "t3"

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "type1" | "t1" | "1" | "adjoint" -> Some Type1
  | "type2" | "t2" | "2" | "forward" -> Some Type2
  | "type3" | "t3" | "3" -> Some Type3
  | _ -> None

let code = function Type1 -> 0 | Type2 -> 1 | Type3 -> 2

let of_code = function
  | 0 -> Some Type1
  | 1 -> Some Type2
  | 2 -> Some Type3
  | _ -> None

let pp fmt t = Format.pp_print_string fmt (to_string t)

let list_to_string ts = String.concat "/" (List.map short ts)
