type engine =
  | Serial
  | Output_parallel
  | Binned of int
  | Slice_and_dice of int
  | Slice_parallel of int

let engine_name = function
  | Serial -> "serial"
  | Output_parallel -> "output-parallel"
  | Binned b -> Printf.sprintf "binned(%d)" b
  | Slice_and_dice t -> Printf.sprintf "slice-and-dice(%d)" t
  | Slice_parallel t -> Printf.sprintf "slice-parallel(%d)" t

let pp_engine ppf e = Format.pp_print_string ppf (engine_name e)

let tile_for ~g ~w = Coord.fallback_tile ~g ~w

let default_engines ~g ~w =
  let tile = tile_for ~g ~w in
  [ Serial; Output_parallel; Binned tile; Slice_and_dice tile ]

let all_schemes ~g ~w = default_engines ~g ~w @ [ Slice_parallel (tile_for ~g ~w) ]

(* Static span names per engine so the disabled path allocates nothing
   (no string concatenation before the enabled check). *)
let span_name = function
  | Serial -> "grid.serial"
  | Output_parallel -> "grid.output-parallel"
  | Binned _ -> "grid.binned"
  | Slice_and_dice _ -> "grid.slice"
  | Slice_parallel _ -> "grid.slice-parallel"

let grid_1d ?stats ?pool:_ engine ~table ~g ~coords values =
  let sp = Gridding_stats.grid_span (span_name engine) in
  let out =
    match engine with
    | Serial -> Gridding_serial.grid_1d ?stats ~table ~g ~coords values
    | Output_parallel ->
        Gridding_output.grid_1d ?stats ~table ~g ~coords values
    | Binned bin ->
        Gridding_binned.grid_1d ?stats ~table ~g ~bin ~coords values
    | Slice_and_dice t | Slice_parallel t ->
        (* 1D columns are too small to be worth distributing. *)
        Gridding_slice.grid_1d ?stats ~table ~g ~t ~coords values
  in
  Gridding_stats.end_span sp;
  out

(* Measured profitability crossover for the pool-parallel slice engine.

   The column-scan schedule costs ~[t^2 * m] boundary checks split over
   [p] domains, against the serial engine's ~[w^2 * m] accumulations; a
   boundary check (two mods, a floor, a compare) measures ~3x the cost of
   one serial accumulate (LUT load + fused RMW) on the hot-path bench, so
   the parallel scan only beats serial when [p * w^2 >= 3 * t^2]. Below
   that — including every single-domain run — the engine is demoted to
   the serial schedule, which is bitwise identical (per-cell accumulation
   is in sample order on both paths; pinned by test_hotpath /
   test_parallel_replay). The last clause keeps each domain's share of
   the scan above the pool's ~16k-op dispatch amortisation floor so tiny
   trajectories never pay a pool wake-up. check_hotpath.exe asserts the
   dispatched engine is never slower than serial. *)
let slice_parallel_profitable ~pool_size ~t ~w ~m =
  pool_size > 1
  && pool_size * w * w >= 3 * t * t
  && t * t * m >= 16384 * pool_size

let grid_2d ?stats ?pool engine ~table ~g ~gx ~gy values =
  let sp = Gridding_stats.grid_span (span_name engine) in
  let out =
    match engine with
    | Serial -> Gridding_serial.grid_2d ?stats ~table ~g ~gx ~gy values
    | Output_parallel ->
        Gridding_output.grid_2d ?stats ~table ~g ~gx ~gy values
    | Binned bin ->
        Gridding_binned.grid_2d ?stats ~table ~g ~bin ~gx ~gy values
    | Slice_and_dice t ->
        Gridding_slice.grid_2d_fast ?stats ~table ~g ~t ~gx ~gy values
    | Slice_parallel t ->
        let pool_size =
          match pool with
          | Some p -> Runtime.Pool.size p
          | None -> Runtime.Pool.global_size ()
        in
        let w = Numerics.Weight_table.width table in
        if slice_parallel_profitable ~pool_size ~t ~w ~m:(Array.length gx)
        then
          Gridding_slice.grid_2d_parallel ?stats ?pool ~table ~g ~t ~gx ~gy
            values
        else Gridding_serial.grid_2d ?stats ~table ~g ~gx ~gy values
  in
  Gridding_stats.end_span sp;
  out

let interp_2d ?stats ~table ~g ~gx ~gy grid =
  let sp = Gridding_stats.grid_span "grid.interp-2d" in
  let out = Gridding_serial.interp_2d ?stats ~table ~g ~gx ~gy grid in
  Gridding_stats.end_span sp;
  out
