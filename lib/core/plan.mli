(** The Non-uniform Fast Fourier Transform (paper §II-B, Fig 1).

    A {!plan} fixes the problem geometry (base grid size [n], oversampling
    factor [sigma], window width [w], table oversampling [l]) and
    precomputes the interpolation weight table and apodization factors. The
    two NuFFT variants used in image reconstruction are then:

    - {e adjoint} (k-space -> image): (1) gridding, (2) FFT,
      (3) de-apodization;
    - {e forward} (image -> k-space): (1) pre-apodization, (2) FFT,
      (3) regridding (interpolation at the sample locations).

    Both approximate the corresponding NuDFT of {!Nudft} with error that
    decreases with [w], [sigma] and [l]; the pair is an exact adjoint pair
    by construction ([<forward x, y> = <x, adjoint y>] to rounding),
    which the property tests verify. Complexity is
    [O(M w^d + G^d log G^d)] versus the NuDFT's [O(M N^d)]. *)

type cached
(** One compiled decomposition: the coordinate arrays it was built for and
    the {!Sample_plan.t} replaying them. *)

type plan = private {
  n : int;  (** base (image) grid size per dimension *)
  sigma : float;  (** oversampling factor, 1 < sigma <= 2 typical *)
  g : int;  (** oversampled grid size, [round (sigma * n)] *)
  w : int;  (** interpolation window width *)
  l : int;  (** table oversampling factor *)
  tol : float option;
      (** requested relative tolerance when the plan was built via [?tol];
          [None] for explicit-knob plans *)
  kernel : Numerics.Window.t;
  table : Numerics.Weight_table.t;
  deapod : float array;  (** per-dimension apodization factors, length n *)
  engine : Gridding.engine;
  pool : Runtime.Pool.t option;
      (** domain pool used by every transform of this plan *)
  simd : bool;
      (** default SIMD flag for the compiled replay paths: when true (and
          {!Simd.enabled}), [_compiled] spread/gather replay through the
          C kernels; the FFT and deapodization stages dispatch on
          {!Simd.enabled} alone regardless of this flag *)
  mutable cache : cached option;
      (** most recently compiled sample plan, keyed on the physical
          identity of the bound coordinate arrays *)
}

val make :
  ?tol:float ->
  ?family:Numerics.Window.family ->
  ?kernel:Numerics.Window.t ->
  ?w:int ->
  ?sigma:float ->
  ?l:int ->
  ?engine:Gridding.engine ->
  ?table_precision:Numerics.Weight_table.precision ->
  ?pool:Runtime.Pool.t ->
  ?simd:bool ->
  n:int ->
  unit ->
  plan
(** Create a plan for an [n^d] image. Defaults: Kaiser-Bessel window with
    the Beatty beta, [w = Window.default_width ~sigma] (6 at the default
    [sigma = 2.0]), [l = 512], [engine = Serial].

    A plan serves the lattice-coupled transform types: {!adjoint} is
    type-1 ({!Transform.Type1}, nonuniform to uniform) and {!forward} is
    type-2 ({!Transform.Type2}, uniform to nonuniform). The
    nonuniform-to-nonuniform type-3 transform has its own preparation —
    {!make_type3} — because its geometry is derived from the source and
    target point clouds rather than from [n].

    [tol] switches the plan to tolerance-driven geometry: kernel + width
    come from {!Numerics.Window.for_tolerance} (family ES unless
    [~family:KB]) and the table oversampling from
    {!Numerics.Window.lut_for_tolerance}, so the measured relative-L2
    error of the transforms vs the exact NuDFT stays within 10x the
    request (asserted by the accuracy sweep in [dune runtest]). [tol] is
    mutually exclusive with explicit [kernel] or [w] — mixing them raises
    [Invalid_argument]; an explicit [l] still wins over the derived one.
    Without [tol], [family] merely selects which default kernel family is
    built at the explicit/default width.

    Raises [Invalid_argument] for inconsistent geometry ([n < 2], [w < 2],
    [w > g], [sigma <= 1], ...). A Slice-and-Dice engine's tile size is
    validated here against {!Coord.check_tiling} ([w <= t], [t | g]) so an
    invalid decomposition is rejected at plan time, not at first use.

    With [pool], every adjoint/forward application of the plan reuses that
    domain pool: the row/column FFT passes are batched over it, the 3D
    adjoint grids with {!Gridding3d.grid_3d_parallel}, and a
    [Gridding.Slice_parallel] engine distributes its dice columns over it.
    One pool amortises domain spawning across all iterations of a CG
    reconstruction. Results are bit-identical to the pool-less plan except
    for the 3D gridding schedule (sliced rather than sample-outer, equal to
    within accumulation order).

    [simd] (default false) makes the [_compiled] transforms replay their
    spread/gather streams through the {!Simd} C kernels by default (the
    per-call [?simd] argument overrides it); it is a no-op when SIMD
    dispatch is off ([JIGSAW_SIMD=off]). *)

val resolve_geometry :
  ?tol:float ->
  ?family:Numerics.Window.family ->
  ?kernel:Numerics.Window.t ->
  ?w:int ->
  ?l:int ->
  sigma:float ->
  unit ->
  float option * Numerics.Window.t * int * int
(** [(tol, kernel, w, l)] after applying {!make}'s derivation rules —
    exported so {!Operator.context} resolves the identical geometry the
    plan its factory builds will carry. Raises on the same invalid
    combinations as {!make}. *)

val adjoint_2d : ?stats:Gridding_stats.t -> plan -> Sample.t2 -> Numerics.Cvec.t
(** Adjoint NuFFT of a 2D sample set (whose [g] must match the plan's) onto
    an [n x n] centred image. *)

val forward_2d :
  ?stats:Gridding_stats.t ->
  plan ->
  gx:float array ->
  gy:float array ->
  Numerics.Cvec.t ->
  Numerics.Cvec.t
(** [forward_2d plan ~gx ~gy image] — forward NuFFT: evaluate the image's
    spectrum at the given grid-unit sample coordinates. *)

val adjoint_1d :
  ?stats:Gridding_stats.t ->
  plan ->
  coords:float array ->
  Numerics.Cvec.t ->
  Numerics.Cvec.t
(** [adjoint_1d plan ~coords values] — 1D adjoint (coords in grid units
    [0, g)); used heavily by the tests. *)

val adjoint_3d :
  ?stats:Gridding_stats.t ->
  plan ->
  gx:float array ->
  gy:float array ->
  gz:float array ->
  Numerics.Cvec.t ->
  Numerics.Cvec.t
(** [adjoint_3d plan ~gx ~gy ~gz values] — 3D adjoint NuFFT onto an [n^3]
    centred volume (coords in grid units [0, g)); gridding -> 3D FFT ->
    separable de-apodization. Memory scales as [g^3]: meant for the small
    volumes where a software reference is feasible (the hardware grids 3D
    as 2D slices for exactly this reason). *)

val forward_3d :
  ?stats:Gridding_stats.t ->
  plan ->
  gx:float array ->
  gy:float array ->
  gz:float array ->
  Numerics.Cvec.t ->
  Numerics.Cvec.t
(** [forward_3d plan ~gx ~gy ~gz volume] — evaluate the [n^3] volume's
    spectrum at the sample coordinates. *)

val adjoint :
  ?stats:Gridding_stats.t -> plan -> Sample.t -> Numerics.Cvec.t
(** Dimension-generic adjoint: dispatches on {!Sample.dims} to the 2D or
    3D pipeline (an [n^2] image or [n^3] volume, row-major, centred). The
    sample set's [g] must match the plan's. *)

val forward :
  ?stats:Gridding_stats.t ->
  plan ->
  coords:Sample.t ->
  Numerics.Cvec.t ->
  Numerics.Cvec.t
(** Dimension-generic forward NuFFT: evaluate the [n^dims] image's spectrum
    at the coordinates of [coords] (whose values are ignored). *)

(** Wall-clock decomposition of one adjoint application, for the
    gridding-dominance experiments (paper §I: gridding can be >99.6% of
    NuFFT time). *)
type timings = { gridding_s : float; fft_s : float; deapod_s : float }

val adjoint_2d_timed :
  ?stats:Gridding_stats.t -> plan -> Sample.t2 -> Numerics.Cvec.t * timings

val adjoint_3d_timed :
  ?stats:Gridding_stats.t -> plan -> Sample.t -> Numerics.Cvec.t * timings

val adjoint_timed :
  ?stats:Gridding_stats.t -> plan -> Sample.t -> Numerics.Cvec.t * timings
(** Timed variants of {!adjoint}; {!adjoint_timed} dispatches on
    {!Sample.dims}. *)

val gridding_fraction : timings -> float
(** Gridding share of total time, in [0, 1]. *)

(** {2 Pipeline stages}

    The shared tail (and head) of every backend's NuFFT: external engines
    (the JIGSAW fixed-point model, GPU kernels) produce an oversampled
    spread grid by their own means and then borrow the plan's FFT +
    de-apodization to become end-to-end operators. *)

val crop_deapodize_2d : plan -> Numerics.Cvec.t -> Numerics.Cvec.t
(** [crop_deapodize_2d plan big] — fold an inverse-FFT'd [g x g]
    oversampled grid down to the centred, de-apodized [n x n] image
    (adjoint steps 2.5–3). *)

val crop_deapodize_3d : plan -> Numerics.Cvec.t -> Numerics.Cvec.t
(** 3D counterpart: [g^3] grid to centred [n^3] volume. *)

val crop_deapodize_2d_into :
  plan -> Numerics.Cvec.t -> Numerics.Cvec.t -> unit
(** [crop_deapodize_2d_into plan big image] — {!crop_deapodize_2d} into a
    caller-provided [n x n] buffer, so a serving loop can reuse one pooled
    image vector across requests. Every element is overwritten; the result
    is bitwise the same as the allocating variant. *)

val crop_deapodize_3d_into :
  plan -> Numerics.Cvec.t -> Numerics.Cvec.t -> unit
(** 3D counterpart of {!crop_deapodize_2d_into} ([n^3] buffer). *)

val pad_apodize_2d : plan -> Numerics.Cvec.t -> Numerics.Cvec.t
(** [pad_apodize_2d plan image] — embed the centred [n x n] image into a
    [g x g] zero-padded grid with apodization pre-division (forward
    step 1). *)

val pad_apodize_3d : plan -> Numerics.Cvec.t -> Numerics.Cvec.t

(** {2 Compiled sample plans}

    Iterative reconstruction applies one (engine x trajectory) pair tens of
    times. {!compiled} performs the engine's slice-and-dice decomposition
    once — flat per-sample arrays of window indices and weights — and the
    [_compiled] transforms replay it, bit-identically to the serial and
    slice engines. The plan caches the most recent compilation keyed on the
    {e physical identity} of the coordinate arrays ([Sample.with_values]
    preserves them, so the CG forward/adjoint ping-pong always hits); a
    sample set with different coordinate arrays transparently recompiles.
    Stats: compilation charges the decomposition cost ([boundary_checks]
    per the plan's engine model, plus [window_evals]); replay charges only
    [samples_processed] / [grid_accumulates]. *)

val compiled : ?stats:Gridding_stats.t -> plan -> Sample.t -> Sample_plan.t
(** Compiled decomposition of the sample set's coordinates (built on first
    use, cached thereafter). The sample set's [g] must match the plan's. *)

val adjoint_compiled :
  ?stats:Gridding_stats.t ->
  ?pool:Runtime.Pool.t ->
  ?simd:bool ->
  plan ->
  Sample.t ->
  Numerics.Cvec.t
(** {!adjoint} through the compiled plan: replay-spread, FFT (on the
    plan's pool if any), de-apodize. The replay pool is [?pool] if given,
    else the plan's pool; with a pool the spread is region-sharded via
    {!Sample_plan.spread_parallel} — bit-identical to serial replay for
    every pool size. There is never an implicit global-pool fallback:
    no pool anywhere means serial replay, so callers already running
    inside a pool cannot deadlock on a nested submission.

    [simd] overrides the plan's default replay-SIMD flag for this call
    (see {!make}); it affects only the spread/gather replay — FFT and
    deapodization stages dispatch on {!Simd.enabled} globally. *)

val adjoint_compiled_timed :
  ?stats:Gridding_stats.t ->
  ?pool:Runtime.Pool.t ->
  ?simd:bool ->
  plan ->
  Sample.t ->
  Numerics.Cvec.t * timings
(** Timed variant; compilation time (first call only) is accounted to the
    gridding stage. *)

val forward_compiled :
  ?stats:Gridding_stats.t ->
  ?pool:Runtime.Pool.t ->
  ?simd:bool ->
  plan ->
  coords:Sample.t ->
  Numerics.Cvec.t ->
  Numerics.Cvec.t
(** {!forward} through the compiled plan: pad/apodize, FFT, replay-gather
    at the compiled sample locations ({!Sample_plan.gather_parallel} over
    the same resolved pool as {!adjoint_compiled}). *)

(** {2 Type-3 transforms (nonuniform to nonuniform)}

    [f_k = sum_j c_j e^{+i s_k . x_j}] for arbitrary real source points
    [x_j] and target frequencies [s_k] — neither constrained to a lattice
    or to [[-pi, pi)]. Computed by the standard scale/shift decomposition:
    centre both point clouds, rescale the sources into the primary box,
    spread them with the plan kernel onto a fine grid of [nf] points per
    dimension (the existing compiled type-1 machinery), evaluate the
    gridded series at the rescaled target frequencies with a type-2 pass
    of an inner [n = nf] plan, then undo the spreading convolution with
    the kernel's continuous Fourier transform and restore the centring
    phases. See the implementation comment for the derivation; accuracy
    tracks the requested tolerance through both stages and is asserted
    against {!Nudft.type3} by the accuracy-contract sweep. *)

type t3
(** A prepared type-3 transform: fixed source/target geometry, compiled
    spread decomposition, inner type-2 plan, and the pre/post phase and
    kernel-correction vectors. Apply with {!type3_exec}. *)

val make_type3 :
  ?tol:float ->
  ?family:Numerics.Window.family ->
  ?kernel:Numerics.Window.t ->
  ?w:int ->
  ?sigma:float ->
  ?l:int ->
  ?pool:Runtime.Pool.t ->
  ?simd:bool ->
  sources:float array array ->
  targets:float array array ->
  unit ->
  t3
(** [make_type3 ~sources ~targets ()] prepares the transform for the given
    point sets (one axis array per dimension; 2 or 3 dims; axes of one set
    must share a length). Geometry knobs ([tol]/[family]/[kernel]/[w]/
    [sigma]/[l]) resolve exactly as in {!make}; [pool] and [simd] flow to
    the spread replay, the inner FFT and the inner gather. Raises
    [Invalid_argument] on dimension/length mismatches, non-finite
    coordinates, or when the product of source and target extents forces
    a fine grid too large to allocate ([(2 nf)^dims > 2^26] cells) — in
    that regime rescale the problem instead. *)

val type3_exec :
  ?stats:Gridding_stats.t -> t3 -> Numerics.Cvec.t -> Numerics.Cvec.t
(** [type3_exec t c] applies the prepared transform to source strengths
    [c] (length = source count), returning the target-frequency values
    (length = target count). Repeated applications replay the compiled
    decompositions; no per-call compilation. *)

val type3_dims : t3 -> int
val type3_source_count : t3 -> int
val type3_target_count : t3 -> int

val type3_fine_grid : t3 -> int
(** The fine-grid size [nf] per dimension the decomposition chose. *)

val type3_width : t3 -> int
(** Resolved spreading-kernel width (shared by both stages). *)

val type3_tol : t3 -> float option
(** The tolerance the geometry was derived from, if any. *)
