let c_trial = Telemetry.Counter.make "tuner.trial"
let c_hit = Telemetry.Counter.make "tuner.hit"

type mode = Off | Auto | Forced of string

let mode () =
  match Sys.getenv_opt "JIGSAW_TUNE" with
  | None -> Auto
  | Some v -> (
      match String.lowercase_ascii (String.trim v) with
      | "" | "auto" -> Auto
      | "off" | "0" | "false" -> Off
      | engine -> Forced engine)

let mode_name () =
  match mode () with Off -> "off" | Auto -> "auto" | Forced e -> e

type key = {
  dims : int;
  n : int;
  tol_bucket : int;
  m_bucket : int;
  domains : int;
}

(* log2 bucket: 0 for m <= 1, 10 for m in [1024, 2048), ... — one trial
   per power-of-two band of trajectory size. *)
let rec bits v = if v <= 1 then 0 else 1 + bits (v / 2)

let key_of ~dims ~n ~tol ~m ~domains =
  let tol_bucket =
    match tol with
    | None -> 0
    | Some t when t > 0.0 -> int_of_float (Float.round (Float.log10 t))
    | Some _ -> 0
  in
  { dims; n; tol_bucket; m_bucket = bits m; domains }

type trial = { engine : string; samples_per_sec : float }
type choice = { backend : string; sps : float; trials : trial list }

let table : (key, choice) Hashtbl.t = Hashtbl.create 16
let lock = Mutex.create ()

let reset () =
  Mutex.lock lock;
  Hashtbl.reset table;
  Mutex.unlock lock

let cached () =
  Mutex.lock lock;
  let l = Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [] in
  Mutex.unlock lock;
  l

let size () = List.length (cached ())

let pool_domains = function
  | None -> 0
  | Some p -> if Runtime.Pool.size p > 1 then Runtime.Pool.size p else 0

let candidate_names ?pool () =
  let parallel = pool_domains pool > 1 in
  List.concat
    [ [ "serial"; "slice" ];
      (if parallel then [ "slice-parallel"; "replay-parallel" ] else []);
      (if Simd.enabled () then [ "replay-simd" ] else []) ]

let now () = Unix.gettimeofday ()

(* One spread per candidate per round, interleaved, best-of over the
   timed rounds (cuFINUFFT's trial structure): interleaving decorrelates
   the measurements from cache warmth and allocator state, best-of
   discards GC hiccups. The candidates measure the strategies the
   like-named registry backends execute — direct serial gridding, the
   column-outer parallel schedule, and serial / region-sharded / SIMD
   compiled replay — over the request's actual coordinates. *)
let run_trials ?pool ?tol ?family ~n ~(coords : Sample.t) () =
  let dims = Sample.dims coords in
  let g = coords.Sample.g in
  let m = Sample.length coords in
  let sigma = float_of_int g /. float_of_int n in
  let base = Plan.make ?tol ?family ~sigma ~n () in
  let table_ = base.Plan.table and w = base.Plan.w in
  let gx = Sample.gx coords and gy = Sample.gy coords in
  let gz = if dims = 3 then Sample.gz coords else [||] in
  let values = coords.Sample.values in
  let tile = Coord.fallback_tile ~g ~w in
  let splan =
    match dims with
    | 2 -> Sample_plan.compile_2d ~table:table_ ~g ~gx ~gy ()
    | _ -> Sample_plan.compile_3d ~table:table_ ~g ~gx ~gy ~gz ()
  in
  let direct engine () =
    ignore
      (match dims with
      | 2 -> Gridding.grid_2d ?pool engine ~table:table_ ~g ~gx ~gy values
      | _ -> (
          match (engine, pool) with
          | Gridding.Slice_parallel _, Some pool ->
              Gridding3d.grid_3d_parallel ~pool ~table:table_ ~g ~gx ~gy ~gz
                values
          | _ -> Gridding3d.grid_3d ~table:table_ ~g ~gx ~gy ~gz values))
  in
  let candidates =
    List.filter_map
      (fun name ->
        match name with
        | "serial" -> Some (name, direct Gridding.Serial)
        | "slice" -> Some (name, fun () -> ignore (Sample_plan.spread splan values))
        | "slice-parallel" ->
            Some (name, direct (Gridding.Slice_parallel tile))
        | "replay-parallel" ->
            Some
              (name, fun () -> ignore (Sample_plan.spread_parallel ?pool splan values))
        | "replay-simd" ->
            Some (name, fun () -> ignore (Sample_plan.spread ~simd:true splan values))
        | _ -> None)
      (candidate_names ?pool ())
  in
  (* Warmup round: first-touch page faults, partition building. *)
  List.iter (fun (_, run) -> run ()) candidates;
  let rounds = 2 in
  let best = Hashtbl.create 8 in
  for _ = 1 to rounds do
    List.iter
      (fun (name, run) ->
        let t0 = now () in
        run ();
        let dt = now () -. t0 in
        Telemetry.Counter.incr c_trial;
        match Hashtbl.find_opt best name with
        | Some prev when prev <= dt -> ()
        | _ -> Hashtbl.replace best name dt)
      candidates
  done;
  let trials =
    List.map
      (fun (name, _) ->
        let dt = Float.max (Hashtbl.find best name) 1e-9 in
        { engine = name; samples_per_sec = float_of_int m /. dt })
      candidates
  in
  let winner =
    List.fold_left
      (fun acc t ->
        match acc with
        | Some b when b.samples_per_sec >= t.samples_per_sec -> acc
        | _ -> Some t)
      None trials
  in
  match winner with
  | Some w -> { backend = w.engine; sps = w.samples_per_sec; trials }
  | None -> { backend = "serial"; sps = 0.0; trials = [] }

let choose ?pool ?tol ?family ~n ~coords () =
  let key =
    key_of ~dims:(Sample.dims coords) ~n ~tol ~m:(Sample.length coords)
      ~domains:(pool_domains pool)
  in
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      match Hashtbl.find_opt table key with
      | Some c ->
          Telemetry.Counter.incr c_hit;
          c
      | None ->
          let sp = Telemetry.span_begin ~cat:"tuner" "tuner.trials" in
          let c = run_trials ?pool ?tol ?family ~n ~coords () in
          Telemetry.span_end sp;
          Hashtbl.replace table key c;
          c)

let resolve ?pool ?tol ?family ~default ~n ~coords () =
  match mode () with
  | Off -> default
  | Forced engine -> engine
  | Auto -> (choose ?pool ?tol ?family ~n ~coords ()).backend
