(** Apodization (amplitude weighting) factors for the NuFFT (paper §II-B).

    Spreading samples with window [psi] multiplies the image domain by
    [psi_hat] (the window's continuous Fourier transform); the adjoint NuFFT
    therefore divides the cropped image by these factors
    ("de-apodization"), and the forward NuFFT pre-divides the image before
    its FFT ("pre-apodization"). Factors are separable across dimensions, so
    a single per-dimension vector suffices. *)

val factors :
  kernel:Numerics.Window.t -> width:int -> n:int -> g:int -> float array
(** [factors ~kernel ~width ~n ~g] is the length-[n] vector
    [psi_hat ((i - n/2) / g)] for [i in 0..n-1]: the image-domain gain at
    each centred position for an oversampled grid of [g] points. All values
    are checked to be bounded away from zero (the oversampling margin
    guarantees this for sane kernels); raises [Failure] otherwise. *)

val scale_row_into :
  dst:Numerics.Cvec.t ->
  dst_off:int ->
  src:Numerics.Cvec.t ->
  src_off:int ->
  f:float array ->
  f_off:int ->
  len:int ->
  fy:float ->
  fz:float ->
  unit
(** [scale_row_into ~dst ~dst_off ~src ~src_off ~f ~f_off ~len ~fy ~fz]
    sets [dst.(dst_off+i) <- src.(src_off+i) / ((f.(f_off+i) *. fy) *. fz)]
    for [i] in [[0, len)) — the row primitive every deapodization and
    pre-apodization stage is built from. 2D callers pass [fz = 1.0]
    (exact multiply, so the historical two-factor rounding is preserved
    bit for bit). Dispatches to the {!Simd} kernel when SIMD is active;
    results agree with the OCaml loop within 4 ULP (bitwise in practice).
    [dst] and [src] may alias when the ranges coincide. Raises
    [Invalid_argument] on out-of-range spans. *)

val deapodize_2d :
  factors:float array -> n:int -> Numerics.Cvec.t -> Numerics.Cvec.t
(** Divide an [n x n] image by the separable factor product
    [factors.(ix) * factors.(iy)] (out of place). *)

val apodize_2d :
  factors:float array -> n:int -> Numerics.Cvec.t -> Numerics.Cvec.t
(** The same division — pre-apodization of the forward NuFFT is also a
    division by [psi_hat] (the two operations coincide; the name reflects
    the pipeline stage). *)
