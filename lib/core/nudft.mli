(** Direct Non-uniform Discrete Fourier Transform — the exact reference the
    NuFFT approximates (paper §II-A, eqs. 1–2).

    Image arrays are [n x n], row-major, with index [i] along each dimension
    corresponding to the {e centred} spatial position [i - n/2]. Sample
    frequencies are angular, [omega in [-pi, pi)^2]:

    - forward:  [f_j = sum_n x_n e^{-i omega_j . n}]
    - adjoint:  [x_n = sum_j f_j e^{+i omega_j . n}]

    Complexity is O(M n^2) — usable only for the small problems on which we
    validate the fast path, exactly the role MIRT's exact transform plays in
    the paper's quality evaluation. *)

val forward_2d :
  n:int ->
  omega_x:float array ->
  omega_y:float array ->
  image:Numerics.Cvec.t ->
  Numerics.Cvec.t
(** [forward_2d ~n ~omega_x ~omega_y ~image] evaluates the forward NuDFT at
    each sample frequency; returns [m] values. *)

val adjoint_2d :
  n:int ->
  omega_x:float array ->
  omega_y:float array ->
  values:Numerics.Cvec.t ->
  Numerics.Cvec.t
(** Adjoint NuDFT onto an [n x n] centred image. *)

val forward_3d :
  n:int ->
  omega_x:float array ->
  omega_y:float array ->
  omega_z:float array ->
  image:Numerics.Cvec.t ->
  Numerics.Cvec.t
(** 3D forward NuDFT of an [n^3] centred volume (O(M n^3): tiny problems
    only). *)

val adjoint_3d :
  n:int ->
  omega_x:float array ->
  omega_y:float array ->
  omega_z:float array ->
  values:Numerics.Cvec.t ->
  Numerics.Cvec.t

val forward_1d :
  n:int -> omega:float array -> signal:Numerics.Cvec.t -> Numerics.Cvec.t

val adjoint_1d :
  n:int -> omega:float array -> values:Numerics.Cvec.t -> Numerics.Cvec.t

val type3 :
  sources:float array array ->
  targets:float array array ->
  values:Numerics.Cvec.t ->
  Numerics.Cvec.t
(** Direct type-3 (nonuniform-to-nonuniform) transform:
    [f_k = sum_j c_j e^{+i s_k . x_j}] for arbitrary real source points
    [x_j] ([sources], one axis array per dimension, 1–3 dims) and target
    frequencies [s_k] ([targets], same dims). With [targets] the centred
    integer lattice and [sources = omega], this reduces to the adjoint
    (type-1) transform. O(M_in * M_out) — the exact oracle the fast
    {!Plan.make_type3} path is validated against. *)
