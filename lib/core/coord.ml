let window_start ~w u =
  int_of_float (Float.floor (u +. (float_of_int w /. 2.0))) - w + 1

let wrap ~g k =
  let r = k mod g in
  if r < 0 then r + g else r

let iter_window ~w ~g u f =
  let start = window_start ~w u in
  for j = 0 to w - 1 do
    let k = start + j in
    f ~k:(wrap ~g k) ~dist:(float_of_int k -. u)
  done

type column_hit = {
  k_wrapped : int;
  tile : int;
  dist : float;
  wrapped_tile : bool;
}

let decompose ~t u =
  if u < 0.0 then invalid_arg "Coord.decompose: negative coordinate";
  let q = int_of_float (Float.floor (u /. float_of_int t)) in
  (q, u -. float_of_int (q * t))

let check_tiling ~t ~g ~w =
  if w < 1 then invalid_arg "Coord: window width must be >= 1";
  if t < 1 then invalid_arg "Coord: tile size must be >= 1";
  if w > t then invalid_arg "Coord: window width must not exceed tile size";
  if g mod t <> 0 then invalid_arg "Coord: tile size must divide grid size"

let tiling_ok ~t ~g ~w =
  match check_tiling ~t ~g ~w with
  | () -> true
  | exception Invalid_argument _ -> false

let fallback_tile ~g ~w =
  let t = max w 8 in
  if tiling_ok ~t ~g ~w then t else g

let column_check ~w ~t ~g ~column u =
  let start = window_start ~w u in
  (* Unique window point congruent to [column] mod t (there is at most one
     because w <= t): j = (column - start) mod t. *)
  let j =
    let m = (column - start) mod t in
    if m < 0 then m + t else m
  in
  if j >= w then None
  else begin
    let k = start + j in
    let n_tiles = g / t in
    let tile_unwrapped =
      if k >= 0 then k / t else ((k + 1) / t) - 1 (* floor division *)
    in
    let sample_tile = int_of_float (Float.floor (u /. float_of_int t)) in
    Some
      { k_wrapped = wrap ~g k;
        tile = wrap ~g:n_tiles tile_unwrapped;
        dist = float_of_int k -. u;
        wrapped_tile = tile_unwrapped <> sample_tile }
  end

(* Int-encoded column check. A miss is the sentinel [-1]; a hit packs the
   wrapped tile coordinate and the quantized LUT distance (table address
   [round (|dist| * l)]) into one immediate int:
   [(tile lsl packed_addr_bits) lor addr]. The select stage is thereby
   branch + integer arithmetic only — no option, no record, no float box. *)

let packed_addr_bits = 20
let packed_addr_mask = (1 lsl packed_addr_bits) - 1
let packed_miss = -1

let[@inline] packed_tile h = h lsr packed_addr_bits
let[@inline] packed_addr h = h land packed_addr_mask

let check_packing ~w ~l =
  if (w * l / 2) + 1 > packed_addr_mask then
    invalid_arg
      (Printf.sprintf
         "Coord: w*l/2+1 = %d exceeds the %d-bit packed address space"
         ((w * l / 2) + 1)
         packed_addr_bits)

let[@inline] column_check_packed ~w ~t ~g ~l ~column u =
  let start = window_start ~w u in
  let j =
    let m = (column - start) mod t in
    if m < 0 then m + t else m
  in
  if j >= w then packed_miss
  else begin
    let k = start + j in
    let n_tiles = g / t in
    let tile_unwrapped =
      if k >= 0 then k / t else ((k + 1) / t) - 1 (* floor division *)
    in
    let tile = wrap ~g:n_tiles tile_unwrapped in
    let dist = float_of_int k -. u in
    let addr =
      int_of_float (Float.round (Float.abs dist *. float_of_int l))
    in
    (tile lsl packed_addr_bits) lor addr
  end

let affected_columns ~w ~t u =
  let start = window_start ~w u in
  List.init w (fun j ->
      let m = (start + j) mod t in
      if m < 0 then m + t else m)
