module C = Numerics.Complexd
module Cvec = Numerics.Cvec
module Linalg = Numerics.Linalg

type scaling =
  | Uniform
  | Kaiser_bessel_scaling

(* S(theta) = sum_{x=-n/2}^{n/2-1} e^{i theta x}, closed form. *)
let dirichlet ~n theta =
  if Float.abs theta < 1e-12 then C.of_float (float_of_int n)
  else begin
    let nf = float_of_int n in
    let num = C.sub C.one (C.exp_i (theta *. nf)) in
    let den = C.sub C.one (C.exp_i theta) in
    C.mul (C.exp_i (-.theta *. nf /. 2.0)) (C.div num den)
  end

let window_points ~w u =
  let start = Coord.window_start ~w u in
  Array.init w (fun j -> start + j)

(* s(x) at centred position index xi (x = xi - n/2). *)
let scaling_values scaling ~n ~g ~w =
  match scaling with
  | Uniform -> None
  | Kaiser_bessel_scaling ->
      let sigma = float_of_int g /. float_of_int n in
      let kernel = Numerics.Window.default_kaiser_bessel ~width:w ~sigma in
      Some
        (Array.init n (fun xi ->
             Numerics.Window.ft kernel ~width:w
               (float_of_int (xi - (n / 2)) /. float_of_int g)))

(* sum_x p(x) e^{i theta x} over the centred support, where p is a
   positive pointwise weight. *)
let weighted_sum ~n ~p theta =
  match p with
  | None -> dirichlet ~n theta
  | Some p ->
      let acc = ref C.zero in
      for xi = 0 to n - 1 do
        let x = float_of_int (xi - (n / 2)) in
        acc := C.add !acc (C.scale p.(xi) (C.exp_i (theta *. x)))
      done;
      !acc

(* Weighted least squares: choose c to minimise
   sum_x | e^{i u theta(x)} - (1/s(x)) sum_j c_j e^{i k_j theta(x)} |^2,
   i.e. the actual post-deapodization reconstruction error. Normal
   equations: T_jl = sum 1/s^2 e^{i(k_l - k_j)x}, r_j = sum 1/s
   e^{i(u - k_j)x}. Uniform scaling reduces both to Dirichlet sums. *)
let coefficients_with ~s ~n ~g ~w u =
  if w < 1 then invalid_arg "Minmax.coefficients: w < 1";
  if n > g then invalid_arg "Minmax.coefficients: n must not exceed g";
  let ks = window_points ~w u in
  let omega k = 2.0 *. Float.pi *. k /. float_of_int g in
  let p2 = Option.map (Array.map (fun v -> 1.0 /. (v *. v))) s in
  let p1 = Option.map (Array.map (fun v -> 1.0 /. v)) s in
  let t =
    Array.init w (fun j ->
        Array.init w (fun l ->
            weighted_sum ~n ~p:p2 (omega (float_of_int (ks.(l) - ks.(j))))))
  in
  let r =
    Array.init w (fun j ->
        weighted_sum ~n ~p:p1 (omega (u -. float_of_int ks.(j))))
  in
  Linalg.solve_regularized t r

let coefficients ?(scaling = Uniform) ~n ~g ~w u =
  coefficients_with ~s:(scaling_values scaling ~n ~g ~w) ~n ~g ~w u

let grid_2d ?(scaling = Uniform) ~n ~g ~w ~gx ~gy values =
  let m = Array.length gx in
  if Array.length gy <> m || Cvec.length values <> m then
    invalid_arg "Minmax.grid_2d: coords/values length mismatch";
  let s = scaling_values scaling ~n ~g ~w in
  let out = Cvec.create (g * g) in
  for j = 0 to m - 1 do
    let v = Cvec.get values j in
    let cx = coefficients_with ~s ~n ~g ~w gx.(j) in
    let cy = coefficients_with ~s ~n ~g ~w gy.(j) in
    let kxs = window_points ~w gx.(j) and kys = window_points ~w gy.(j) in
    Array.iteri
      (fun iy ky ->
        let vy = C.mul cy.(iy) v in
        Array.iteri
          (fun ix kx ->
            Cvec.accumulate out
              ((Coord.wrap ~g ky * g) + Coord.wrap ~g kx)
              (C.mul cx.(ix) vy))
          kxs)
      kys
  done;
  out

let adjoint_2d ?(scaling = Uniform) ~n ~g ~w ~gx ~gy values =
  let grid = grid_2d ~scaling ~n ~g ~w ~gx ~gy values in
  Fft.Fftnd.transform_2d Fft.Dft.Inverse ~nx:g ~ny:g grid;
  let s = scaling_values scaling ~n ~g ~w in
  Cvec.init (n * n) (fun idx ->
      let ix = idx mod n and iy = idx / n in
      let cx = ix - (n / 2) and cy = iy - (n / 2) in
      let v = Cvec.get grid ((Coord.wrap ~g cy * g) + Coord.wrap ~g cx) in
      match s with
      | None -> v
      | Some s -> C.scale (1.0 /. (s.(ix) *. s.(iy))) v)

let worst_case_error ?(scaling = Uniform) ~n ~g ~w u =
  let s = scaling_values scaling ~n ~g ~w in
  let c = coefficients_with ~s ~n ~g ~w u in
  let ks = window_points ~w u in
  let worst = ref 0.0 in
  for xi = 0 to n - 1 do
    let x = float_of_int (xi - (n / 2)) in
    let sx = match s with None -> 1.0 | Some s -> s.(xi) in
    let ideal = C.exp_i (2.0 *. Float.pi *. u *. x /. float_of_int g) in
    let approx = ref C.zero in
    Array.iteri
      (fun j k ->
        approx :=
          C.add !approx
            (C.mul c.(j)
               (C.exp_i
                  (2.0 *. Float.pi *. float_of_int k *. x /. float_of_int g))))
      ks;
    (* Post-deapodization reconstruction error at x. *)
    let e = C.norm (C.sub ideal (C.scale (1.0 /. sx) !approx)) in
    if e > !worst then worst := e
  done;
  !worst
