(** First-class NUFFT transform types.

    The three classical transform kinds of a FINUFFT-style library
    (Barnett et al. 2019):

    - {b Type-1} (nonuniform to uniform): [x_n = sum_j c_j e^{+i omega_j . n}]
      over the centred integer lattice [n] — the MRI {e adjoint} (gridding)
      direction this codebase grew up around.
    - {b Type-2} (uniform to nonuniform): [f_j = sum_n x_n e^{-i omega_j . n}]
      — the {e forward} (degridding) direction.
    - {b Type-3} (nonuniform to nonuniform):
      [f_k = sum_j c_j e^{+i s_k . x_j}] for arbitrary real source points
      [x_j] and target frequencies [s_k], computed by the scale/shift
      decomposition in {!Plan.make_type3}.

    Backends declare which types they support ({!Operator.register});
    the registry filters on the requested type instead of failing at
    apply time. *)

type t = Type1 | Type2 | Type3

val all : t list
(** [[Type1; Type2; Type3]]. *)

val to_string : t -> string
(** ["type1" | "type2" | "type3"] — stable, used in cache keys and CLI. *)

val short : t -> string
(** ["t1" | "t2" | "t3"] — compact form for backend listings. *)

val of_string : string -> t option
(** Accepts ["type1"]/["t1"]/["1"]/["adjoint"] (and the type-2/3
    analogues), case-insensitively. *)

val code : t -> int
(** Wire byte for the JGS1 protocol: 0, 1, 2. *)

val of_code : int -> t option

val pp : Format.formatter -> t -> unit

val list_to_string : t list -> string
(** ["t1/t2/t3"]-style rendering of a supported-types list. *)
