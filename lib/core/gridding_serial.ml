module Cvec = Numerics.Cvec
module C = Numerics.Complexd
module F32 = Numerics.Float32
module Wt = Numerics.Weight_table

type precision = [ `Double | `Single ]

(* Hot loops below are written against raw re/im floats and deterministic
   work counters: the per-sample loop bodies allocate nothing (no
   [Complexd.t], no closures, no [option]); stats — whose totals per call
   are a closed-form function of [m] and [w] for the input-driven schedule —
   are added once after the loop.

   The helpers are deliberately local: dune's dev profile compiles with
   [-opaque] (no cross-module inlining), so per-element calls into Cvec /
   Coord / Weight_table would box a float each. Bigarray and float
   externals always compile inline, and same-module [@inline] functions are
   inlined in every profile. The arithmetic is identical to the canonical
   [Coord.window_start] / [Coord.wrap] / [Weight_table.lookup], which the
   differential tests pin down. *)

module A1 = Bigarray.Array1

let[@inline] get_re (v : Cvec.t) k = A1.unsafe_get v (2 * k)
let[@inline] get_im (v : Cvec.t) k = A1.unsafe_get v ((2 * k) + 1)

let[@inline] set_parts (v : Cvec.t) k re im =
  let j = 2 * k in
  A1.unsafe_set v j re;
  A1.unsafe_set v (j + 1) im

let[@inline] acc_parts (v : Cvec.t) k re im =
  let j = 2 * k in
  A1.unsafe_set v j (A1.unsafe_get v j +. re);
  A1.unsafe_set v (j + 1) (A1.unsafe_get v (j + 1) +. im)

let[@inline] window_start w u =
  int_of_float (Float.floor (u +. (float_of_int w /. 2.0))) - w + 1

let[@inline] wrap g k =
  let r = k mod g in
  if r < 0 then r + g else r

let[@inline] lut tbl tlen lf d =
  let a = int_of_float (Float.round (Float.abs d *. lf)) in
  if a >= tlen then 0.0 else Array.unsafe_get tbl a

let add_grid_stats stats ~samples ~checks ~evals ~accums =
  Gridding_stats.record stats ~samples ~checks ~evals ~accums ()

let grid_1d ?stats ?(precision = `Double) ~table ~g ~coords values =
  let w = Wt.width table in
  let m = Array.length coords in
  if Cvec.length values <> m then
    invalid_arg "Gridding_serial.grid_1d: coords/values length mismatch";
  let out = Cvec.create g in
  (match precision with
  | `Double ->
      let tbl = Wt.data table and lf = float_of_int (Wt.oversampling table) in
      let tlen = Array.length tbl in
      for j = 0 to m - 1 do
        let vr = get_re values j and vi = get_im values j in
        let u = Array.unsafe_get coords j in
        let start = window_start w u in
        for i = 0 to w - 1 do
          let ku = start + i in
          let k = wrap g ku in
          let weight = lut tbl tlen lf (float_of_int ku -. u) in
          acc_parts out k (weight *. vr) (weight *. vi)
        done
      done
  | `Single ->
      for j = 0 to m - 1 do
        let v = Cvec.get values j in
        Coord.iter_window ~w ~g coords.(j) (fun ~k ~dist ->
            let weight = Wt.lookup table dist in
            let c = F32.cmul (F32.cround v) (C.of_float (F32.round weight)) in
            Cvec.set out k (F32.cadd (Cvec.get out k) c))
      done);
  add_grid_stats stats ~samples:m ~checks:0 ~evals:(m * w) ~accums:(m * w);
  out

let grid_2d ?stats ?(precision = `Double) ~table ~g ~gx ~gy values =
  let w = Wt.width table in
  let m = Array.length gx in
  if Array.length gy <> m || Cvec.length values <> m then
    invalid_arg "Gridding_serial.grid_2d: coords/values length mismatch";
  let out = Cvec.create (g * g) in
  (match precision with
  | `Double ->
      let tbl = Wt.data table and lf = float_of_int (Wt.oversampling table) in
      let tlen = Array.length tbl in
      for j = 0 to m - 1 do
        let vr = get_re values j and vi = get_im values j in
        let uy = Array.unsafe_get gy j and ux = Array.unsafe_get gx j in
        let sy = window_start w uy and sx = window_start w ux in
        for iy = 0 to w - 1 do
          let kyu = sy + iy in
          let ky = wrap g kyu in
          let wy = lut tbl tlen lf (float_of_int kyu -. uy) in
          let row = ky * g in
          for ix = 0 to w - 1 do
            let kxu = sx + ix in
            let kx = wrap g kxu in
            let wx = lut tbl tlen lf (float_of_int kxu -. ux) in
            let weight = wx *. wy in
            acc_parts out (row + kx) (weight *. vr) (weight *. vi)
          done
        done
      done
  | `Single ->
      for j = 0 to m - 1 do
        let v = Cvec.get values j in
        Coord.iter_window ~w ~g gy.(j) (fun ~k:ky ~dist:dy ->
            let wy = Wt.lookup table dy in
            Coord.iter_window ~w ~g gx.(j) (fun ~k:kx ~dist:dx ->
                let wx = Wt.lookup table dx in
                let idx = (ky * g) + kx in
                let weight = F32.mul (F32.round wx) (F32.round wy) in
                let c = F32.cmul (F32.cround v) (C.of_float weight) in
                Cvec.set out idx (F32.cadd (Cvec.get out idx) c)))
      done);
  add_grid_stats stats ~samples:m ~checks:0
    ~evals:((m * w) + (m * w * w))
    ~accums:(m * w * w);
  out

let interp_2d ?stats ~table ~g ~gx ~gy grid =
  let w = Wt.width table in
  let m = Array.length gx in
  if Array.length gy <> m then
    invalid_arg "Gridding_serial.interp_2d: coords length mismatch";
  if Cvec.length grid <> g * g then
    invalid_arg "Gridding_serial.interp_2d: grid size mismatch";
  let tbl = Wt.data table and lf = float_of_int (Wt.oversampling table) in
  let tlen = Array.length tbl in
  let out = Cvec.create m in
  for j = 0 to m - 1 do
    let uy = Array.unsafe_get gy j and ux = Array.unsafe_get gx j in
    let sy = window_start w uy and sx = window_start w ux in
    let acc_re = ref 0.0 and acc_im = ref 0.0 in
    for iy = 0 to w - 1 do
      let kyu = sy + iy in
      let ky = wrap g kyu in
      let wy = lut tbl tlen lf (float_of_int kyu -. uy) in
      let row = ky * g in
      for ix = 0 to w - 1 do
        let kxu = sx + ix in
        let kx = wrap g kxu in
        let wx = lut tbl tlen lf (float_of_int kxu -. ux) in
        let weight = wx *. wy in
        let idx = row + kx in
        acc_re := !acc_re +. (weight *. get_re grid idx);
        acc_im := !acc_im +. (weight *. get_im grid idx)
      done
    done;
    set_parts out j !acc_re !acc_im
  done;
  add_grid_stats stats ~samples:m ~checks:0 ~evals:(2 * m * w * w) ~accums:0;
  out
