module Cvec = Numerics.Cvec
module C = Numerics.Complexd
module F32 = Numerics.Float32
module Wt = Numerics.Weight_table

type precision = [ `Double | `Single ]

let bump stats f = match stats with None -> () | Some s -> f s

let grid_1d ?stats ?(precision = `Double) ~table ~g ~coords values =
  let w = Wt.width table in
  let m = Array.length coords in
  if Cvec.length values <> m then
    invalid_arg "Gridding_serial.grid_1d: coords/values length mismatch";
  let out = Cvec.create g in
  for j = 0 to m - 1 do
    let v = Cvec.get values j in
    bump stats (fun s ->
        s.Gridding_stats.samples_processed <-
          s.Gridding_stats.samples_processed + 1);
    Coord.iter_window ~w ~g coords.(j) (fun ~k ~dist ->
        let weight = Wt.lookup table dist in
        bump stats (fun s ->
            s.Gridding_stats.window_evals <- s.Gridding_stats.window_evals + 1;
            s.Gridding_stats.grid_accumulates <-
              s.Gridding_stats.grid_accumulates + 1);
        match precision with
        | `Double -> Cvec.accumulate out k (C.scale weight v)
        | `Single ->
            let c = F32.cmul (F32.cround v) (C.of_float (F32.round weight)) in
            Cvec.set out k (F32.cadd (Cvec.get out k) c))
  done;
  out

let grid_2d ?stats ?(precision = `Double) ~table ~g ~gx ~gy values =
  let w = Wt.width table in
  let m = Array.length gx in
  if Array.length gy <> m || Cvec.length values <> m then
    invalid_arg "Gridding_serial.grid_2d: coords/values length mismatch";
  let out = Cvec.create (g * g) in
  for j = 0 to m - 1 do
    let v = Cvec.get values j in
    bump stats (fun s ->
        s.Gridding_stats.samples_processed <-
          s.Gridding_stats.samples_processed + 1);
    Coord.iter_window ~w ~g gy.(j) (fun ~k:ky ~dist:dy ->
        let wy = Wt.lookup table dy in
        bump stats (fun s ->
            s.Gridding_stats.window_evals <- s.Gridding_stats.window_evals + 1);
        Coord.iter_window ~w ~g gx.(j) (fun ~k:kx ~dist:dx ->
            let wx = Wt.lookup table dx in
            let idx = (ky * g) + kx in
            bump stats (fun s ->
                s.Gridding_stats.window_evals <-
                  s.Gridding_stats.window_evals + 1;
                s.Gridding_stats.grid_accumulates <-
                  s.Gridding_stats.grid_accumulates + 1);
            match precision with
            | `Double -> Cvec.accumulate out idx (C.scale (wx *. wy) v)
            | `Single ->
                let weight = F32.mul (F32.round wx) (F32.round wy) in
                let c = F32.cmul (F32.cround v) (C.of_float weight) in
                Cvec.set out idx (F32.cadd (Cvec.get out idx) c)))
  done;
  out

let interp_2d ?stats ~table ~g ~gx ~gy grid =
  let w = Wt.width table in
  let m = Array.length gx in
  if Array.length gy <> m then
    invalid_arg "Gridding_serial.interp_2d: coords length mismatch";
  if Cvec.length grid <> g * g then
    invalid_arg "Gridding_serial.interp_2d: grid size mismatch";
  let out = Cvec.create m in
  for j = 0 to m - 1 do
    bump stats (fun s ->
        s.Gridding_stats.samples_processed <-
          s.Gridding_stats.samples_processed + 1);
    let acc = ref C.zero in
    Coord.iter_window ~w ~g gy.(j) (fun ~k:ky ~dist:dy ->
        let wy = Wt.lookup table dy in
        Coord.iter_window ~w ~g gx.(j) (fun ~k:kx ~dist:dx ->
            let wx = Wt.lookup table dx in
            bump stats (fun s ->
                s.Gridding_stats.window_evals <-
                  s.Gridding_stats.window_evals + 2);
            acc :=
              C.add !acc (C.scale (wx *. wy) (Cvec.get grid ((ky * g) + kx)))));
    Cvec.set out j !acc
  done;
  out
