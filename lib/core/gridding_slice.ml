module Cvec = Numerics.Cvec
module C = Numerics.Complexd
module Wt = Numerics.Weight_table

let bump stats f = match stats with None -> () | Some s -> f s

let dice_address ~t ~g ~column ~tile =
  let tiles_total = g / t * (g / t) in
  (column * tiles_total) + tile

let grid_index_of_dice ~t ~g addr =
  let n_tiles = g / t in
  let tiles_total = n_tiles * n_tiles in
  let column = addr / tiles_total and tile = addr mod tiles_total in
  let rx = column mod t and ry = column / t in
  let tx = tile mod n_tiles and ty = tile / n_tiles in
  (((ty * t) + ry) * g) + (tx * t) + rx

let dice_to_row_major ~t ~g dice =
  let out = Cvec.create (g * g) in
  for addr = 0 to Cvec.length dice - 1 do
    Cvec.set out (grid_index_of_dice ~t ~g addr) (Cvec.get dice addr)
  done;
  out

let grid_1d ?stats ~table ~g ~t ~coords values =
  let w = Wt.width table in
  Coord.check_tiling ~t ~g ~w;
  let m = Array.length coords in
  if Cvec.length values <> m then
    invalid_arg "Gridding_slice.grid_1d: coords/values length mismatch";
  let n_tiles = g / t in
  let out = Cvec.create g in
  (* Column-outer: worker [p] owns grid points {q*t + p}; its column in the
     1D dice is contiguous in a private array. *)
  for p = 0 to t - 1 do
    let column = Cvec.create n_tiles in
    for j = 0 to m - 1 do
      bump stats (fun s ->
          s.Gridding_stats.boundary_checks <-
            s.Gridding_stats.boundary_checks + 1);
      match Coord.column_check ~w ~t ~g ~column:p coords.(j) with
      | None -> ()
      | Some hit ->
          bump stats (fun s ->
              s.Gridding_stats.window_evals <-
                s.Gridding_stats.window_evals + 1;
              s.Gridding_stats.grid_accumulates <-
                s.Gridding_stats.grid_accumulates + 1);
          Cvec.accumulate column hit.Coord.tile
            (C.scale (Wt.lookup table hit.Coord.dist) (Cvec.get values j))
    done;
    for q = 0 to n_tiles - 1 do
      Cvec.set out ((q * t) + p) (Cvec.get column q)
    done
  done;
  bump stats (fun s ->
      s.Gridding_stats.samples_processed <-
        s.Gridding_stats.samples_processed + m);
  out

let grid_2d ?stats ~table ~g ~t ~gx ~gy values =
  let w = Wt.width table in
  Coord.check_tiling ~t ~g ~w;
  let m = Array.length gx in
  if Array.length gy <> m || Cvec.length values <> m then
    invalid_arg "Gridding_slice.grid_2d: coords/values length mismatch";
  let n_tiles = g / t in
  let tiles_total = n_tiles * n_tiles in
  let dice = Cvec.create (t * t * tiles_total) in
  for ry = 0 to t - 1 do
    for rx = 0 to t - 1 do
      let column = (ry * t) + rx in
      for j = 0 to m - 1 do
        bump stats (fun s ->
            s.Gridding_stats.boundary_checks <-
              s.Gridding_stats.boundary_checks + 1);
        match Coord.column_check ~w ~t ~g ~column:rx gx.(j) with
        | None -> ()
        | Some hx -> (
            match Coord.column_check ~w ~t ~g ~column:ry gy.(j) with
            | None -> ()
            | Some hy ->
                let weight =
                  Wt.lookup table hx.Coord.dist *. Wt.lookup table hy.Coord.dist
                in
                let tile = (hy.Coord.tile * n_tiles) + hx.Coord.tile in
                bump stats (fun s ->
                    s.Gridding_stats.window_evals <-
                      s.Gridding_stats.window_evals + 2;
                    s.Gridding_stats.grid_accumulates <-
                      s.Gridding_stats.grid_accumulates + 1);
                Cvec.accumulate dice
                  (dice_address ~t ~g ~column ~tile)
                  (C.scale weight (Cvec.get values j)))
      done
    done
  done;
  bump stats (fun s ->
      s.Gridding_stats.samples_processed <-
        s.Gridding_stats.samples_processed + m);
  dice_to_row_major ~t ~g dice

let grid_2d_fast ?stats ~table ~g ~t ~gx ~gy values =
  let w = Wt.width table in
  Coord.check_tiling ~t ~g ~w;
  let m = Array.length gx in
  if Array.length gy <> m || Cvec.length values <> m then
    invalid_arg "Gridding_slice.grid_2d_fast: coords/values length mismatch";
  let n_tiles = g / t in
  let tiles_total = n_tiles * n_tiles in
  let dice = Cvec.create (t * t * tiles_total) in
  for j = 0 to m - 1 do
    let v = Cvec.get values j in
    bump stats (fun s ->
        s.Gridding_stats.samples_processed <-
          s.Gridding_stats.samples_processed + 1;
        (* The parallel model still performs a check per column. *)
        s.Gridding_stats.boundary_checks <-
          s.Gridding_stats.boundary_checks + (t * t));
    Coord.iter_window ~w ~g gy.(j) (fun ~k:ky ~dist:dy ->
        let wy = Wt.lookup table dy in
        let ry = ky mod t and qy = ky / t in
        Coord.iter_window ~w ~g gx.(j) (fun ~k:kx ~dist:dx ->
            let wx = Wt.lookup table dx in
            let rx = kx mod t and qx = kx / t in
            let column = (ry * t) + rx in
            let tile = (qy * n_tiles) + qx in
            bump stats (fun s ->
                s.Gridding_stats.window_evals <-
                  s.Gridding_stats.window_evals + 2;
                s.Gridding_stats.grid_accumulates <-
                  s.Gridding_stats.grid_accumulates + 1);
            Cvec.accumulate dice
              (dice_address ~t ~g ~column ~tile)
              (C.scale (wx *. wy) v)))
  done;
  dice_to_row_major ~t ~g dice

let grid_2d_parallel ?domains ~table ~g ~t ~gx ~gy values =
  let w = Wt.width table in
  Coord.check_tiling ~t ~g ~w;
  let m = Array.length gx in
  if Array.length gy <> m || Cvec.length values <> m then
    invalid_arg "Gridding_slice.grid_2d_parallel: coords/values length mismatch";
  let n_domains =
    match domains with
    | Some d when d >= 1 -> d
    | Some _ -> invalid_arg "Gridding_slice.grid_2d_parallel: domains < 1"
    | None -> Domain.recommended_domain_count ()
  in
  let n_tiles = g / t in
  let tiles_total = n_tiles * n_tiles in
  let columns_total = t * t in
  (* One private accumulation array per column; a domain owns the columns
     [d, d + n_domains, d + 2*n_domains, ...] and touches nothing else, so
     the computation is race-free by construction. *)
  let column_store = Array.init columns_total (fun _ -> Cvec.create tiles_total) in
  let work d =
    let column = ref d in
    while !column < columns_total do
      let c = !column in
      let rx = c mod t and ry = c / t in
      let store = column_store.(c) in
      for j = 0 to m - 1 do
        match Coord.column_check ~w ~t ~g ~column:rx gx.(j) with
        | None -> ()
        | Some hx -> (
            match Coord.column_check ~w ~t ~g ~column:ry gy.(j) with
            | None -> ()
            | Some hy ->
                let weight =
                  Wt.lookup table hx.Coord.dist *. Wt.lookup table hy.Coord.dist
                in
                let tile = (hy.Coord.tile * n_tiles) + hx.Coord.tile in
                Cvec.accumulate store tile
                  (C.scale weight (Cvec.get values j)))
      done;
      column := !column + n_domains
    done
  in
  if n_domains = 1 then work 0
  else begin
    let workers =
      Array.init (n_domains - 1) (fun i -> Domain.spawn (fun () -> work (i + 1)))
    in
    work 0;
    Array.iter Domain.join workers
  end;
  (* Assemble the dice into the row-major grid. *)
  let out = Cvec.create (g * g) in
  for c = 0 to columns_total - 1 do
    let rx = c mod t and ry = c / t in
    let store = column_store.(c) in
    for tile = 0 to tiles_total - 1 do
      let tx = tile mod n_tiles and ty = tile / n_tiles in
      Cvec.set out (((((ty * t) + ry) * g) + (tx * t)) + rx)
        (Cvec.get store tile)
    done
  done;
  out
