module Cvec = Numerics.Cvec
module C = Numerics.Complexd
module Wt = Numerics.Weight_table

let bump stats f = match stats with None -> () | Some s -> f s

let dice_address ~t ~g ~column ~tile =
  let tiles_total = g / t * (g / t) in
  (column * tiles_total) + tile

let grid_index_of_dice ~t ~g addr =
  let n_tiles = g / t in
  let tiles_total = n_tiles * n_tiles in
  let column = addr / tiles_total and tile = addr mod tiles_total in
  let rx = column mod t and ry = column / t in
  let tx = tile mod n_tiles and ty = tile / n_tiles in
  (((ty * t) + ry) * g) + (tx * t) + rx

let dice_to_row_major ~t ~g dice =
  let out = Cvec.create (g * g) in
  for addr = 0 to Cvec.length dice - 1 do
    Cvec.set out (grid_index_of_dice ~t ~g addr) (Cvec.get dice addr)
  done;
  out

let grid_1d ?stats ~table ~g ~t ~coords values =
  let w = Wt.width table in
  Coord.check_tiling ~t ~g ~w;
  let m = Array.length coords in
  if Cvec.length values <> m then
    invalid_arg "Gridding_slice.grid_1d: coords/values length mismatch";
  let n_tiles = g / t in
  let out = Cvec.create g in
  (* Column-outer: worker [p] owns grid points {q*t + p}; its column in the
     1D dice is contiguous in a private array. *)
  for p = 0 to t - 1 do
    let column = Cvec.create n_tiles in
    for j = 0 to m - 1 do
      bump stats (fun s ->
          s.Gridding_stats.boundary_checks <-
            s.Gridding_stats.boundary_checks + 1);
      match Coord.column_check ~w ~t ~g ~column:p coords.(j) with
      | None -> ()
      | Some hit ->
          bump stats (fun s ->
              s.Gridding_stats.window_evals <-
                s.Gridding_stats.window_evals + 1;
              s.Gridding_stats.grid_accumulates <-
                s.Gridding_stats.grid_accumulates + 1);
          Cvec.accumulate column hit.Coord.tile
            (C.scale (Wt.lookup table hit.Coord.dist) (Cvec.get values j))
    done;
    for q = 0 to n_tiles - 1 do
      Cvec.set out ((q * t) + p) (Cvec.get column q)
    done
  done;
  bump stats (fun s ->
      s.Gridding_stats.samples_processed <-
        s.Gridding_stats.samples_processed + m);
  out

let grid_2d ?stats ~table ~g ~t ~gx ~gy values =
  let w = Wt.width table in
  Coord.check_tiling ~t ~g ~w;
  let m = Array.length gx in
  if Array.length gy <> m || Cvec.length values <> m then
    invalid_arg "Gridding_slice.grid_2d: coords/values length mismatch";
  let n_tiles = g / t in
  let tiles_total = n_tiles * n_tiles in
  let dice = Cvec.create (t * t * tiles_total) in
  for ry = 0 to t - 1 do
    for rx = 0 to t - 1 do
      let column = (ry * t) + rx in
      for j = 0 to m - 1 do
        bump stats (fun s ->
            s.Gridding_stats.boundary_checks <-
              s.Gridding_stats.boundary_checks + 1);
        match Coord.column_check ~w ~t ~g ~column:rx gx.(j) with
        | None -> ()
        | Some hx -> (
            match Coord.column_check ~w ~t ~g ~column:ry gy.(j) with
            | None -> ()
            | Some hy ->
                let weight =
                  Wt.lookup table hx.Coord.dist *. Wt.lookup table hy.Coord.dist
                in
                let tile = (hy.Coord.tile * n_tiles) + hx.Coord.tile in
                bump stats (fun s ->
                    s.Gridding_stats.window_evals <-
                      s.Gridding_stats.window_evals + 2;
                    s.Gridding_stats.grid_accumulates <-
                      s.Gridding_stats.grid_accumulates + 1);
                Cvec.accumulate dice
                  (dice_address ~t ~g ~column ~tile)
                  (C.scale weight (Cvec.get values j)))
      done
    done
  done;
  bump stats (fun s ->
      s.Gridding_stats.samples_processed <-
        s.Gridding_stats.samples_processed + m);
  dice_to_row_major ~t ~g dice

let grid_2d_fast ?stats ~table ~g ~t ~gx ~gy values =
  let w = Wt.width table in
  Coord.check_tiling ~t ~g ~w;
  let m = Array.length gx in
  if Array.length gy <> m || Cvec.length values <> m then
    invalid_arg "Gridding_slice.grid_2d_fast: coords/values length mismatch";
  let n_tiles = g / t in
  let tiles_total = n_tiles * n_tiles in
  let dice = Cvec.create (t * t * tiles_total) in
  for j = 0 to m - 1 do
    let v = Cvec.get values j in
    bump stats (fun s ->
        s.Gridding_stats.samples_processed <-
          s.Gridding_stats.samples_processed + 1;
        (* The parallel model still performs a check per column. *)
        s.Gridding_stats.boundary_checks <-
          s.Gridding_stats.boundary_checks + (t * t));
    Coord.iter_window ~w ~g gy.(j) (fun ~k:ky ~dist:dy ->
        let wy = Wt.lookup table dy in
        let ry = ky mod t and qy = ky / t in
        Coord.iter_window ~w ~g gx.(j) (fun ~k:kx ~dist:dx ->
            let wx = Wt.lookup table dx in
            let rx = kx mod t and qx = kx / t in
            let column = (ry * t) + rx in
            let tile = (qy * n_tiles) + qx in
            bump stats (fun s ->
                s.Gridding_stats.window_evals <-
                  s.Gridding_stats.window_evals + 2;
                s.Gridding_stats.grid_accumulates <-
                  s.Gridding_stats.grid_accumulates + 1);
            Cvec.accumulate dice
              (dice_address ~t ~g ~column ~tile)
              (C.scale (wx *. wy) v)))
  done;
  dice_to_row_major ~t ~g dice

(* Resolve the execution context for a pool-parallel engine: an explicit
   pool wins; an explicit [domains] count gets a throwaway pool of that
   size (the pre-pool API, still used to probe scaling); otherwise the
   process-wide pool. *)
let with_pool ~name ?pool ?domains f =
  match (pool, domains) with
  | Some p, _ -> f p
  | None, Some d when d >= 1 ->
      let p = Runtime.Pool.create ~domains:d () in
      Fun.protect ~finally:(fun () -> Runtime.Pool.shutdown p) (fun () -> f p)
  | None, Some _ -> invalid_arg (name ^ ": domains < 1")
  | None, None -> f (Runtime.Pool.global ())

let grid_2d_parallel ?stats ?pool ?domains ~table ~g ~t ~gx ~gy values =
  let w = Wt.width table in
  Coord.check_tiling ~t ~g ~w;
  let m = Array.length gx in
  if Array.length gy <> m || Cvec.length values <> m then
    invalid_arg "Gridding_slice.grid_2d_parallel: coords/values length mismatch";
  let n_tiles = g / t in
  let tiles_total = n_tiles * n_tiles in
  let columns_total = t * t in
  (* One private accumulation array per column; whichever domain claims a
     column writes that column's store and nothing else, so the computation
     is race-free by construction, and the per-column accumulation order
     (sample order) is fixed regardless of how columns are distributed —
     results are bit-identical for every domain count. *)
  let column_store = Array.init columns_total (fun _ -> Cvec.create tiles_total) in
  let stats_mutex = Mutex.create () in
  let process_columns ~lo ~hi =
    (* Per-chunk private counters, merged once; the shared [stats] record
       is never touched inside the parallel region. *)
    let local =
      match stats with None -> None | Some _ -> Some (Gridding_stats.create ())
    in
    for c = lo to hi - 1 do
      let rx = c mod t and ry = c / t in
      let store = column_store.(c) in
      for j = 0 to m - 1 do
        bump local (fun s ->
            s.Gridding_stats.boundary_checks <-
              s.Gridding_stats.boundary_checks + 1);
        match Coord.column_check ~w ~t ~g ~column:rx gx.(j) with
        | None -> ()
        | Some hx -> (
            match Coord.column_check ~w ~t ~g ~column:ry gy.(j) with
            | None -> ()
            | Some hy ->
                let weight =
                  Wt.lookup table hx.Coord.dist *. Wt.lookup table hy.Coord.dist
                in
                let tile = (hy.Coord.tile * n_tiles) + hx.Coord.tile in
                bump local (fun s ->
                    s.Gridding_stats.window_evals <-
                      s.Gridding_stats.window_evals + 2;
                    s.Gridding_stats.grid_accumulates <-
                      s.Gridding_stats.grid_accumulates + 1);
                Cvec.accumulate store tile
                  (C.scale weight (Cvec.get values j)))
      done
    done;
    match (stats, local) with
    | Some acc, Some l ->
        Mutex.lock stats_mutex;
        Gridding_stats.add acc l;
        Mutex.unlock stats_mutex
    | _ -> ()
  in
  with_pool ~name:"Gridding_slice.grid_2d_parallel" ?pool ?domains (fun p ->
      Runtime.Pool.parallel_for_ranges ~chunk:1 p ~start:0 ~stop:columns_total
        process_columns);
  bump stats (fun s ->
      s.Gridding_stats.samples_processed <-
        s.Gridding_stats.samples_processed + m);
  (* Assemble the dice into the row-major grid. *)
  let out = Cvec.create (g * g) in
  for c = 0 to columns_total - 1 do
    let rx = c mod t and ry = c / t in
    let store = column_store.(c) in
    for tile = 0 to tiles_total - 1 do
      let tx = tile mod n_tiles and ty = tile / n_tiles in
      Cvec.set out (((((ty * t) + ry) * g) + (tx * t)) + rx)
        (Cvec.get store tile)
    done
  done;
  out
