module Cvec = Numerics.Cvec
module Wt = Numerics.Weight_table

let add_stats = Gridding_serial.add_grid_stats

(* Same-module hot-path primitives (see {!Gridding_serial} for why these are
   local: dune's dev profile compiles with [-opaque], so cross-module calls
   into Cvec / Coord / Weight_table box a float per element). The packed
   column check reproduces {!Coord.column_check_packed} bit for bit —
   [Coord.check_packing] still guards the address width, and the packed
   layout constants come from [Coord] so the encodings cannot drift. *)

module A1 = Bigarray.Array1

let[@inline] get_re (v : Cvec.t) k = A1.unsafe_get v (2 * k)
let[@inline] get_im (v : Cvec.t) k = A1.unsafe_get v ((2 * k) + 1)

let[@inline] set_parts (v : Cvec.t) k re im =
  let j = 2 * k in
  A1.unsafe_set v j re;
  A1.unsafe_set v (j + 1) im

let[@inline] acc_parts (v : Cvec.t) k re im =
  let j = 2 * k in
  A1.unsafe_set v j (A1.unsafe_get v j +. re);
  A1.unsafe_set v (j + 1) (A1.unsafe_get v (j + 1) +. im)

let[@inline] window_start w u =
  int_of_float (Float.floor (u +. (float_of_int w /. 2.0))) - w + 1

let[@inline] wrap g k =
  let r = k mod g in
  if r < 0 then r + g else r

let[@inline] lut tbl tlen lf d =
  let a = int_of_float (Float.round (Float.abs d *. lf)) in
  if a >= tlen then 0.0 else Array.unsafe_get tbl a

let addr_bits = Coord.packed_addr_bits

let[@inline] weight_at tbl tlen a =
  if a >= tlen then 0.0 else Array.unsafe_get tbl a

(* Miss = Coord.packed_miss (-1); hit = (tile lsl addr_bits) lor addr. *)
let[@inline] col_check w t g lf column u =
  let start = window_start w u in
  let j =
    let m = (column - start) mod t in
    if m < 0 then m + t else m
  in
  if j >= w then -1
  else begin
    let k = start + j in
    let n_tiles = g / t in
    let tile_unwrapped =
      if k >= 0 then k / t else ((k + 1) / t) - 1 (* floor division *)
    in
    let tile = wrap n_tiles tile_unwrapped in
    let dist = float_of_int k -. u in
    let addr = int_of_float (Float.round (Float.abs dist *. lf)) in
    (tile lsl addr_bits) lor addr
  end

let[@inline] hit_tile h = h lsr addr_bits
let[@inline] hit_addr h = h land ((1 lsl addr_bits) - 1)

let dice_address ~t ~g ~column ~tile =
  let tiles_total = g / t * (g / t) in
  (column * tiles_total) + tile

let grid_index_of_dice ~t ~g addr =
  let n_tiles = g / t in
  let tiles_total = n_tiles * n_tiles in
  let column = addr / tiles_total and tile = addr mod tiles_total in
  let rx = column mod t and ry = column / t in
  let tx = tile mod n_tiles and ty = tile / n_tiles in
  (((ty * t) + ry) * g) + (tx * t) + rx

let dice_to_row_major ~t ~g dice =
  let out = Cvec.create (g * g) in
  for addr = 0 to Cvec.length dice - 1 do
    set_parts out (grid_index_of_dice ~t ~g addr) (get_re dice addr)
      (get_im dice addr)
  done;
  out

(* All select stages below use the int-encoded column check: a miss is a
   negative sentinel and a hit carries the tile index and the quantized LUT
   distance in one immediate int, so the per-sample loop is branch +
   arithmetic only — no option, no record, no boxed float. *)

let grid_1d ?stats ~table ~g ~t ~coords values =
  let w = Wt.width table in
  Coord.check_tiling ~t ~g ~w;
  let l = Wt.oversampling table in
  Coord.check_packing ~w ~l;
  let m = Array.length coords in
  if Cvec.length values <> m then
    invalid_arg "Gridding_slice.grid_1d: coords/values length mismatch";
  let tbl = Wt.data table and lf = float_of_int l in
  let tlen = Array.length tbl in
  let n_tiles = g / t in
  let out = Cvec.create g in
  let hits = ref 0 in
  (* Column-outer: worker [p] owns grid points {q*t + p}; its column in the
     1D dice is contiguous in a private array. *)
  for p = 0 to t - 1 do
    let column = Cvec.create n_tiles in
    for j = 0 to m - 1 do
      let h = col_check w t g lf p (Array.unsafe_get coords j) in
      if h >= 0 then begin
        incr hits;
        let weight = weight_at tbl tlen (hit_addr h) in
        acc_parts column (hit_tile h)
          (weight *. get_re values j)
          (weight *. get_im values j)
      end
    done;
    for q = 0 to n_tiles - 1 do
      set_parts out ((q * t) + p) (get_re column q) (get_im column q)
    done
  done;
  add_stats stats ~samples:m ~checks:(t * m) ~evals:!hits ~accums:!hits;
  out

let grid_2d ?stats ~table ~g ~t ~gx ~gy values =
  let w = Wt.width table in
  Coord.check_tiling ~t ~g ~w;
  let l = Wt.oversampling table in
  Coord.check_packing ~w ~l;
  let m = Array.length gx in
  if Array.length gy <> m || Cvec.length values <> m then
    invalid_arg "Gridding_slice.grid_2d: coords/values length mismatch";
  let tbl = Wt.data table and lf = float_of_int l in
  let tlen = Array.length tbl in
  let n_tiles = g / t in
  let tiles_total = n_tiles * n_tiles in
  let dice = Cvec.create (t * t * tiles_total) in
  let hits = ref 0 in
  for ry = 0 to t - 1 do
    for rx = 0 to t - 1 do
      let column = (ry * t) + rx in
      let col_base = column * tiles_total in
      for j = 0 to m - 1 do
        let hx = col_check w t g lf rx (Array.unsafe_get gx j) in
        if hx >= 0 then begin
          let hy = col_check w t g lf ry (Array.unsafe_get gy j) in
          if hy >= 0 then begin
            incr hits;
            let weight =
              weight_at tbl tlen (hit_addr hx)
              *. weight_at tbl tlen (hit_addr hy)
            in
            let tile = (hit_tile hy * n_tiles) + hit_tile hx in
            acc_parts dice (col_base + tile)
              (weight *. get_re values j)
              (weight *. get_im values j)
          end
        end
      done
    done
  done;
  add_stats stats ~samples:m ~checks:(t * t * m) ~evals:(2 * !hits)
    ~accums:!hits;
  dice_to_row_major ~t ~g dice

let grid_2d_fast ?stats ~table ~g ~t ~gx ~gy values =
  let w = Wt.width table in
  Coord.check_tiling ~t ~g ~w;
  let m = Array.length gx in
  if Array.length gy <> m || Cvec.length values <> m then
    invalid_arg "Gridding_slice.grid_2d_fast: coords/values length mismatch";
  let tbl = Wt.data table and lf = float_of_int (Wt.oversampling table) in
  let tlen = Array.length tbl in
  let n_tiles = g / t in
  let tiles_total = n_tiles * n_tiles in
  let dice = Cvec.create (t * t * tiles_total) in
  for j = 0 to m - 1 do
    let vr = get_re values j and vi = get_im values j in
    let uy = Array.unsafe_get gy j and ux = Array.unsafe_get gx j in
    let sy = window_start w uy and sx = window_start w ux in
    for iy = 0 to w - 1 do
      let kyu = sy + iy in
      let ky = wrap g kyu in
      let wy = lut tbl tlen lf (float_of_int kyu -. uy) in
      let ry = ky mod t and qy = ky / t in
      for ix = 0 to w - 1 do
        let kxu = sx + ix in
        let kx = wrap g kxu in
        let wx = lut tbl tlen lf (float_of_int kxu -. ux) in
        let rx = kx mod t and qx = kx / t in
        let column = (ry * t) + rx in
        let tile = (qy * n_tiles) + qx in
        let weight = wx *. wy in
        acc_parts dice
          ((column * tiles_total) + tile)
          (weight *. vr) (weight *. vi)
      done
    done
  done;
  (* The parallel model still performs a check per column. *)
  add_stats stats ~samples:m
    ~checks:(m * t * t)
    ~evals:(2 * m * w * w)
    ~accums:(m * w * w);
  dice_to_row_major ~t ~g dice

(* Resolve the execution context for a pool-parallel engine: an explicit
   pool wins; an explicit [domains] count gets a throwaway pool of that
   size (the pre-pool API, still used to probe scaling); otherwise the
   process-wide pool. *)
let with_pool ~name ?pool ?domains f =
  match (pool, domains) with
  | Some p, _ -> f p
  | None, Some d when d >= 1 ->
      let p = Runtime.Pool.create ~domains:d () in
      Fun.protect ~finally:(fun () -> Runtime.Pool.shutdown p) (fun () -> f p)
  | None, Some _ -> invalid_arg (name ^ ": domains < 1")
  | None, None -> f (Runtime.Pool.global ())

let grid_2d_parallel ?stats ?pool ?domains ~table ~g ~t ~gx ~gy values =
  let w = Wt.width table in
  Coord.check_tiling ~t ~g ~w;
  let l = Wt.oversampling table in
  Coord.check_packing ~w ~l;
  let m = Array.length gx in
  if Array.length gy <> m || Cvec.length values <> m then
    invalid_arg "Gridding_slice.grid_2d_parallel: coords/values length mismatch";
  let tbl = Wt.data table and lf = float_of_int l in
  let tlen = Array.length tbl in
  let n_tiles = g / t in
  let tiles_total = n_tiles * n_tiles in
  let columns_total = t * t in
  (* One flat dice buffer in column-major dice order (the {!dice_address}
     layout): column [c] owns the contiguous complex range
     [[c * tiles_total, (c+1) * tiles_total)). Whichever domain claims a
     column writes that range and nothing else, so the computation is
     race-free by construction, and the per-column accumulation order
     (sample order) is fixed regardless of how columns are distributed —
     results are bit-identical for every domain count. A single g^2
     allocation replaces the former t^2 per-column vectors, whose
     creation and assembly dominated the pass at realistic tile sizes
     (hundreds of small bigarrays per call). *)
  let dice = Cvec.create (columns_total * tiles_total) in
  let stats_mutex = Mutex.create () in
  let process_columns ~lo ~hi =
    (* Per-chunk private counters, merged once; the shared [stats] record
       is never touched inside the parallel region. *)
    let hits = ref 0 in
    for c = lo to hi - 1 do
      let rx = c mod t and ry = c / t in
      let col_base = c * tiles_total in
      for j = 0 to m - 1 do
        let hx = col_check w t g lf rx (Array.unsafe_get gx j) in
        if hx >= 0 then begin
          let hy = col_check w t g lf ry (Array.unsafe_get gy j) in
          if hy >= 0 then begin
            incr hits;
            let weight =
              weight_at tbl tlen (hit_addr hx)
              *. weight_at tbl tlen (hit_addr hy)
            in
            let tile = (hit_tile hy * n_tiles) + hit_tile hx in
            acc_parts dice (col_base + tile)
              (weight *. get_re values j)
              (weight *. get_im values j)
          end
        end
      done
    done;
    match stats with
    | None -> ()
    | Some _ ->
        Mutex.lock stats_mutex;
        add_stats stats ~samples:0
          ~checks:((hi - lo) * m)
          ~evals:(2 * !hits) ~accums:!hits;
        Mutex.unlock stats_mutex
  in
  with_pool ~name:"Gridding_slice.grid_2d_parallel" ?pool ?domains (fun p ->
      (* Adaptive coarsening: each column scans all m samples, so a chunk
         of c columns carries c*m checks. Small trajectories coalesce into
         a handful of chunks instead of t^2 per-column dispatches. *)
      let chunk = Runtime.Pool.adaptive_chunk p ~items:columns_total ~work_per_item:m in
      Runtime.Pool.parallel_for_ranges ~chunk p ~start:0 ~stop:columns_total
        process_columns);
  add_stats stats ~samples:m ~checks:0 ~evals:0 ~accums:0;
  dice_to_row_major ~t ~g dice
