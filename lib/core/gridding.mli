(** Gridding engine selection and dispatch.

    Gridding (the adjoint NuFFT's interpolation step) spreads each
    non-uniform sample onto the [w^d] oversampled-grid points covered by its
    interpolation window; the forward direction ("regridding") gathers from
    the same points. Four engines implement the same spreading with the
    algorithmic structures the paper compares:

    - {!Serial}: input-driven, one sample at a time (MIRT-class CPU
      baseline and double-precision reference),
    - {!Output_parallel}: naive output-driven parallelism, [M * G^d]
      boundary checks (paper §II-C),
    - {!Binned}: geometric tiling with pre-sorted (and duplicated) bins —
      the Impatient-class optimisation,
    - {!Slice_and_dice}: the paper's contribution — presort-free, [M * t^d]
      two-part boundary checks, stacked-tile output layout.

    All engines enumerate the canonical window of {!Coord} and therefore
    compute the same grid up to floating-point accumulation order (the
    Slice-and-Dice sample-outer schedule is even bit-identical to Serial).

    See {!Gridding_stats} for the work counters every engine reports. *)

type engine =
  | Serial
  | Output_parallel
  | Binned of int  (** tile/bin edge length in grid points *)
  | Slice_and_dice of int  (** virtual tile edge length [t], [w <= t] *)
  | Slice_parallel of int
      (** the column-outer Slice-and-Dice schedule executed on a
          {!Runtime.Pool} of OCaml domains (tile edge [t], [w <= t]) *)

val engine_name : engine -> string
val pp_engine : Format.formatter -> engine -> unit

val default_engines : g:int -> w:int -> engine list
(** The four single-domain engines with sensible parameters for a
    [g]-point-per-side grid and window width [w] (bin/tile sizes 8, per
    the paper). *)

val tile_for : g:int -> w:int -> int
(** Default tile size for a [g]-point grid and width-[w] window: the
    paper's [t = 8] (or [w] when wider) if it divides [g], else [g]
    (a single tile — always valid). *)

val all_schemes : g:int -> w:int -> engine list
(** {!default_engines} plus the pool-parallel scheme — every way this
    library can compute the same grid; differential tests iterate it. *)

val slice_parallel_profitable : pool_size:int -> t:int -> w:int -> m:int -> bool
(** The measured crossover {!grid_2d} applies to the [Slice_parallel]
    engine: [true] iff distributing the [t^2 * m]-check column scan over
    [pool_size] domains is expected to beat the serial engine's
    [w^2 * m] accumulations ([pool_size * w^2 >= 3 * t^2], the 3x being
    the measured check-to-accumulate cost ratio) {e and} each domain's
    share clears the pool's dispatch amortisation floor. When [false]
    the dispatch demotes to the bit-identical serial schedule, so the
    engine is never slower than serial — asserted by the hot-path bench
    gate. Exposed so the bench and tests can predict which path a
    dispatch took. *)

val grid_1d :
  ?stats:Gridding_stats.t ->
  ?pool:Runtime.Pool.t ->
  engine ->
  table:Numerics.Weight_table.t ->
  g:int ->
  coords:float array ->
  Numerics.Cvec.t ->
  Numerics.Cvec.t
(** [grid_1d engine ~table ~g ~coords values] spreads [values.(j)] at
    [coords.(j)] (grid units, [0 <= u < g]) onto a length-[g] grid.
    [pool] is ignored in 1D (columns are too small to distribute);
    [Slice_parallel] falls back to the serial slice schedule. *)

val grid_2d :
  ?stats:Gridding_stats.t ->
  ?pool:Runtime.Pool.t ->
  engine ->
  table:Numerics.Weight_table.t ->
  g:int ->
  gx:float array ->
  gy:float array ->
  Numerics.Cvec.t ->
  Numerics.Cvec.t
(** Spread onto a [g] x [g] row-major grid (index [y*g + x]). The
    [Slice_and_dice] case uses the sample-outer CPU schedule
    ({!Gridding_slice.grid_2d_fast}); [Slice_parallel] runs the
    column-outer schedule on [pool] (default: the process-wide pool). *)

val interp_2d :
  ?stats:Gridding_stats.t ->
  table:Numerics.Weight_table.t ->
  g:int ->
  gx:float array ->
  gy:float array ->
  Numerics.Cvec.t ->
  Numerics.Cvec.t
(** [interp_2d ~table ~g ~gx ~gy grid] — the transpose operation (forward
    NuFFT's "regridding"): gather [f_j = sum_window psi * grid[k]] at each
    sample location. *)
