module Cvec = Numerics.Cvec
module C = Numerics.Complexd

type t2 = {
  gx : float array;
  gy : float array;
  values : Cvec.t;
  g : int;
}

let length s = Array.length s.gx

let omega_to_grid ~g omega =
  let gf = float_of_int g in
  let u = omega *. gf /. (2.0 *. Float.pi) in
  let u = Float.rem u gf in
  let u = if u < 0.0 then u +. gf else u in
  (* Guard the open upper bound against rounding. *)
  if u >= gf then 0.0 else u

let check_lengths name a b values =
  if Array.length a <> Array.length b || Array.length a <> Cvec.length values
  then invalid_arg (name ^ ": coordinate/value length mismatch")

let of_omega_2d ~g ~omega_x ~omega_y ~values =
  check_lengths "Sample.of_omega_2d" omega_x omega_y values;
  { gx = Array.map (omega_to_grid ~g) omega_x;
    gy = Array.map (omega_to_grid ~g) omega_y;
    values;
    g }

let validate s =
  let gf = float_of_int s.g in
  let check u =
    if not (u >= 0.0 && u < gf) then
      invalid_arg
        (Printf.sprintf "Sample: coordinate %g outside [0, %d)" u s.g)
  in
  Array.iter check s.gx;
  Array.iter check s.gy

let make_2d ~g ~gx ~gy ~values =
  check_lengths "Sample.make_2d" gx gy values;
  let s = { gx; gy; values; g } in
  validate s;
  s

let random_2d ?(seed = 0) ~g m =
  let rng = Random.State.make [| seed |] in
  let gf = float_of_int g in
  let coord () =
    let u = Random.State.float rng gf in
    if u >= gf then 0.0 else u
  in
  { gx = Array.init m (fun _ -> coord ());
    gy = Array.init m (fun _ -> coord ());
    values =
      Cvec.init m (fun _ ->
          C.make
            (Random.State.float rng 2.0 -. 1.0)
            (Random.State.float rng 2.0 -. 1.0));
    g }

let with_values s values =
  if Cvec.length values <> length s then
    invalid_arg "Sample.with_values: length mismatch";
  { s with values }
