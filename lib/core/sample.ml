module Cvec = Numerics.Cvec
module C = Numerics.Complexd

type t = {
  coords : float array array;
  values : Cvec.t;
  g : int;
}

type t2 = t

let dims s = Array.length s.coords
let length s = Array.length s.coords.(0)

let coord s d =
  if d < 0 || d >= dims s then
    invalid_arg
      (Printf.sprintf "Sample.coord: axis %d of a %d-dimensional set" d
         (dims s));
  s.coords.(d)

let gx s = s.coords.(0)

let gy s =
  if dims s < 2 then invalid_arg "Sample.gy: 1-dimensional sample set";
  s.coords.(1)

let gz s =
  if dims s < 3 then
    invalid_arg
      (Printf.sprintf "Sample.gz: %d-dimensional sample set" (dims s));
  s.coords.(2)

let omega_to_grid ~g omega =
  let gf = float_of_int g in
  let u = omega *. gf /. (2.0 *. Float.pi) in
  let u = Float.rem u gf in
  let u = if u < 0.0 then u +. gf else u in
  (* Guard the open upper bound against rounding. *)
  if u >= gf then 0.0 else u

let check_lengths name coords values =
  if Array.length coords = 0 then
    invalid_arg (name ^ ": at least one coordinate axis required");
  let m = Array.length coords.(0) in
  if
    Array.exists (fun c -> Array.length c <> m) coords
    || m <> Cvec.length values
  then invalid_arg (name ^ ": coordinate/value length mismatch")

let validate s =
  let gf = float_of_int s.g in
  let check u =
    if not (u >= 0.0 && u < gf) then
      invalid_arg
        (Printf.sprintf "Sample: coordinate %g outside [0, %d)" u s.g)
  in
  Array.iter (fun axis -> Array.iter check axis) s.coords

let make ~g ~coords ~values =
  check_lengths "Sample.make" coords values;
  let s = { coords; values; g } in
  validate s;
  s

let of_omega ~g ~omega ~values =
  check_lengths "Sample.of_omega" omega values;
  { coords = Array.map (Array.map (omega_to_grid ~g)) omega; values; g }

let of_omega_2d ~g ~omega_x ~omega_y ~values =
  check_lengths "Sample.of_omega_2d" [| omega_x; omega_y |] values;
  { coords =
      [| Array.map (omega_to_grid ~g) omega_x;
         Array.map (omega_to_grid ~g) omega_y |];
    values;
    g }

let of_omega_3d ~g ~omega_x ~omega_y ~omega_z ~values =
  check_lengths "Sample.of_omega_3d" [| omega_x; omega_y; omega_z |] values;
  { coords =
      [| Array.map (omega_to_grid ~g) omega_x;
         Array.map (omega_to_grid ~g) omega_y;
         Array.map (omega_to_grid ~g) omega_z |];
    values;
    g }

let make_2d ~g ~gx ~gy ~values =
  check_lengths "Sample.make_2d" [| gx; gy |] values;
  let s = { coords = [| gx; gy |]; values; g } in
  validate s;
  s

let make_3d ~g ~gx ~gy ~gz ~values =
  check_lengths "Sample.make_3d" [| gx; gy; gz |] values;
  let s = { coords = [| gx; gy; gz |]; values; g } in
  validate s;
  s

let random ?(seed = 0) ?(dims = 2) ~g m =
  if dims < 1 then invalid_arg "Sample.random: dims must be >= 1";
  let rng = Random.State.make [| seed |] in
  let gf = float_of_int g in
  let coord () =
    let u = Random.State.float rng gf in
    if u >= gf then 0.0 else u
  in
  { coords = Array.init dims (fun _ -> Array.init m (fun _ -> coord ()));
    values =
      Cvec.init m (fun _ ->
          C.make
            (Random.State.float rng 2.0 -. 1.0)
            (Random.State.float rng 2.0 -. 1.0));
    g }

let random_2d ?seed ~g m = random ?seed ~dims:2 ~g m
let random_3d ?seed ~g m = random ?seed ~dims:3 ~g m

let with_values s values =
  if Cvec.length values <> length s then
    invalid_arg "Sample.with_values: length mismatch";
  { s with values }

let rescale ~g s =
  if g < 1 then invalid_arg "Sample.rescale: g must be >= 1";
  let scale = float_of_int g /. float_of_int s.g in
  let gf = float_of_int g in
  let map u =
    let u = u *. scale in
    if u >= gf then 0.0 else u
  in
  { s with coords = Array.map (Array.map map) s.coords; g }
