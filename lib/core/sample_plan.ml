module Cvec = Numerics.Cvec
module Wt = Numerics.Weight_table

(* A shard of a region partition: the plan's entries whose target grid
   cell lies in the contiguous row band [row_lo, row_hi) — a "row" being
   a run of [g] consecutive flattened cells (a y-row in 2D, a (z,y)-row
   in 3D). Entries are stored in the plan's own (sample, window-point)
   order, so replaying a shard accumulates onto each owned cell in
   exactly the serial order. *)
type shard = {
  row_lo : int;
  row_hi : int;
  e_smp : int array;
  e_idx : int array;
  e_wgt : float array;
}

type partition = {
  requested : int;
  p_rows : int;
  shards : shard array;
}

type t = {
  dims : int;
  m : int;
  g : int;
  w : int;
  points : int;
  idx : int array;
  wgt : float array;
  pmutex : Mutex.t;
  mutable part : partition option;
}

let dims t = t.dims
let length t = t.m
let grid t = t.g
let points_per_sample t = t.points

let rec pow b e = if e = 0 then 1 else b * pow b (e - 1)
let grid_length t = pow t.g t.dims

let memory_words t = (2 * t.m * t.points) + 8

let add_stats = Gridding_serial.add_grid_stats

(* Same-module hot-path primitives; see {!Gridding_serial} for the
   [-opaque] / cross-module-inlining rationale. *)

module A1 = Bigarray.Array1

let[@inline] get_re (v : Cvec.t) k = A1.unsafe_get v (2 * k)
let[@inline] get_im (v : Cvec.t) k = A1.unsafe_get v ((2 * k) + 1)

let[@inline] set_parts (v : Cvec.t) k re im =
  let j = 2 * k in
  A1.unsafe_set v j re;
  A1.unsafe_set v (j + 1) im

let[@inline] acc_parts (v : Cvec.t) k re im =
  let j = 2 * k in
  A1.unsafe_set v j (A1.unsafe_get v j +. re);
  A1.unsafe_set v (j + 1) (A1.unsafe_get v (j + 1) +. im)

let[@inline] window_start w u =
  int_of_float (Float.floor (u +. (float_of_int w /. 2.0))) - w + 1

let[@inline] wrap g k =
  let r = k mod g in
  if r < 0 then r + g else r

let[@inline] lut tbl tlen lf d =
  let a = int_of_float (Float.round (Float.abs d *. lf)) in
  if a >= tlen then 0.0 else Array.unsafe_get tbl a

(* Compilation enumerates each sample's interpolation window in exactly the
   order the serial engine spreads it (y-outer then x, z-outer in 3D) and
   records the flattened grid index and the finished scalar weight of every
   window point. Replay then re-walks the arrays in that order, so the
   accumulation order onto any given grid cell — and therefore the floating
   point result — is bit-identical to the serial and slice engines.

   Stats: compilation charges the select/eval cost (the decomposition: the
   caller-supplied [select_checks] plus one [window_evals] per table lookup
   actually performed); replay charges only the streaming cost
   ([samples_processed] and [grid_accumulates]). Re-running a transform
   from a compiled plan therefore leaves the decomposition counters
   untouched — the property the CG amortization tests pin down. *)

let compile_2d ?stats ?(select_checks = 0) ~table ~g ~gx ~gy () =
  let w = Wt.width table in
  let m = Array.length gx in
  if Array.length gy <> m then
    invalid_arg "Sample_plan.compile_2d: coords length mismatch";
  let tbl = Wt.data table and lf = float_of_int (Wt.oversampling table) in
  let tlen = Array.length tbl in
  let points = w * w in
  let idx = Array.make (m * points) 0 in
  let wgt = Array.make (m * points) 0.0 in
  for j = 0 to m - 1 do
    let uy = Array.unsafe_get gy j and ux = Array.unsafe_get gx j in
    let sy = window_start w uy and sx = window_start w ux in
    let base = j * points in
    for iy = 0 to w - 1 do
      let kyu = sy + iy in
      let ky = wrap g kyu in
      let wy = lut tbl tlen lf (float_of_int kyu -. uy) in
      let row = ky * g in
      let rbase = base + (iy * w) in
      for ix = 0 to w - 1 do
        let kxu = sx + ix in
        let kx = wrap g kxu in
        let wx = lut tbl tlen lf (float_of_int kxu -. ux) in
        Array.unsafe_set idx (rbase + ix) (row + kx);
        Array.unsafe_set wgt (rbase + ix) (wx *. wy)
      done
    done
  done;
  add_stats stats ~samples:0 ~checks:select_checks
    ~evals:((m * w) + (m * w * w))
    ~accums:0;
  { dims = 2; m; g; w; points; idx; wgt; pmutex = Mutex.create (); part = None }

let compile_3d ?stats ?(select_checks = 0) ~table ~g ~gx ~gy ~gz () =
  let w = Wt.width table in
  let m = Array.length gx in
  if Array.length gy <> m || Array.length gz <> m then
    invalid_arg "Sample_plan.compile_3d: coords length mismatch";
  let tbl = Wt.data table and lf = float_of_int (Wt.oversampling table) in
  let tlen = Array.length tbl in
  let points = w * w * w in
  let idx = Array.make (m * points) 0 in
  let wgt = Array.make (m * points) 0.0 in
  for j = 0 to m - 1 do
    let uz = Array.unsafe_get gz j
    and uy = Array.unsafe_get gy j
    and ux = Array.unsafe_get gx j in
    let sz = window_start w uz
    and sy = window_start w uy
    and sx = window_start w ux in
    let base = j * points in
    for iz = 0 to w - 1 do
      let kzu = sz + iz in
      let kz = wrap g kzu in
      let wz = lut tbl tlen lf (float_of_int kzu -. uz) in
      for iy = 0 to w - 1 do
        let kyu = sy + iy in
        let ky = wrap g kyu in
        let wyz = wz *. lut tbl tlen lf (float_of_int kyu -. uy) in
        let plane = ((kz * g) + ky) * g in
        let rbase = base + (((iz * w) + iy) * w) in
        for ix = 0 to w - 1 do
          let kxu = sx + ix in
          let kx = wrap g kxu in
          let wx = lut tbl tlen lf (float_of_int kxu -. ux) in
          Array.unsafe_set idx (rbase + ix) (plane + kx);
          Array.unsafe_set wgt (rbase + ix) (wyz *. wx)
        done
      done
    done
  done;
  add_stats stats ~samples:0 ~checks:select_checks
    ~evals:((m * w) + (m * w * w) + (m * w * w * w))
    ~accums:0;
  { dims = 3; m; g; w; points; idx; wgt; pmutex = Mutex.create (); part = None }

(* [simd] selects the C kernels from {!Simd} when dispatch is active;
   they mirror these loops operation for operation (128-bit (re,im)
   lanes, broadcast real weight, no FMA contraction), so the result is
   the same within the documented 4-ULP contract — bitwise in practice
   on the spread path, whose op order is preserved exactly. *)
let[@inline] use_simd simd = simd && Simd.enabled ()

let replay_spread ~simd t values out =
  if use_simd simd then Simd.spread values t.idx t.wgt out
  else begin
    let p = t.points in
    let idx = t.idx and wgt = t.wgt in
    for j = 0 to t.m - 1 do
      let vr = get_re values j and vi = get_im values j in
      let base = j * p in
      for i = 0 to p - 1 do
        let k = Array.unsafe_get idx (base + i) in
        let weight = Array.unsafe_get wgt (base + i) in
        acc_parts out k (weight *. vr) (weight *. vi)
      done
    done
  end

let spread ?stats ?(simd = false) t values =
  if Cvec.length values <> t.m then
    invalid_arg "Sample_plan.spread: values length mismatch";
  let out = Cvec.create (grid_length t) in
  replay_spread ~simd t values out;
  add_stats stats ~samples:t.m ~checks:0 ~evals:0 ~accums:(t.m * t.points);
  out

let spread_into ?stats ?(simd = false) t values out =
  if Cvec.length values <> t.m then
    invalid_arg "Sample_plan.spread_into: values length mismatch";
  if Cvec.length out <> grid_length t then
    invalid_arg "Sample_plan.spread_into: grid size mismatch";
  Cvec.fill_zero out;
  replay_spread ~simd t values out;
  add_stats stats ~samples:t.m ~checks:0 ~evals:0 ~accums:(t.m * t.points)

let gather_range ~simd t grid out ~lo ~hi =
  if use_simd simd then Simd.gather grid t.idx t.wgt out lo hi
  else begin
    let p = t.points in
    let idx = t.idx and wgt = t.wgt in
    for j = lo to hi - 1 do
      let base = j * p in
      let acc_re = ref 0.0 and acc_im = ref 0.0 in
      for i = 0 to p - 1 do
        let k = Array.unsafe_get idx (base + i) in
        let weight = Array.unsafe_get wgt (base + i) in
        acc_re := !acc_re +. (weight *. get_re grid k);
        acc_im := !acc_im +. (weight *. get_im grid k)
      done;
      set_parts out j !acc_re !acc_im
    done
  end

let gather ?stats ?(simd = false) t grid =
  if Cvec.length grid <> grid_length t then
    invalid_arg "Sample_plan.gather: grid size mismatch";
  let out = Cvec.create t.m in
  gather_range ~simd t grid out ~lo:0 ~hi:t.m;
  add_stats stats ~samples:t.m ~checks:0 ~evals:0 ~accums:0;
  out

(* ------------------------------------------------------------------ *)
(* Region-sharded ownership partition.

   Adjoint replay is a scatter: distinct samples hit overlapping grid
   cells, so sample-range sharding would race. Instead the *grid* is
   sharded: each shard exclusively owns a contiguous band of grid rows
   (row = flattened index / g: a y-row in 2D, a (z,y)-row in 3D), and the
   plan's (sample, window-point) entry stream is re-bucketed once so each
   shard holds exactly the entries landing in its band, still in plan
   order. Every grid cell then has exactly one writer — no atomics, no
   per-domain grid copies to merge — and each cell receives its
   contributions in serial order, so the parallel result is bit-identical
   to serial replay for any shard count.

   Band cuts are chosen by greedy entry-mass balancing over a per-row
   entry histogram (cuFINUFFT-style load-balanced binning): dense
   trajectory regions get narrow bands, empty regions are absorbed into
   wide ones. Each shard is guaranteed at least one row; the shard count
   is clamped to the row count. *)

let build_partition t ~requested =
  let sp = Gridding_stats.grid_span "plan.partition" in
  let g = t.g in
  let rows = pow g (t.dims - 1) in
  let n = max 1 (min requested rows) in
  let total = t.m * t.points in
  let idx = t.idx and wgt = t.wgt in
  let hist = Array.make rows 0 in
  for e = 0 to total - 1 do
    let r = Array.unsafe_get idx e / g in
    Array.unsafe_set hist r (Array.unsafe_get hist r + 1)
  done;
  (* Greedy cuts: shard s owns rows [cuts.(s), cuts.(s+1)). Advance each
     cut until accumulated entry mass reaches the s-th balanced target,
     but never past [rows - remaining_shards] so every later shard keeps
     at least one row. *)
  let cuts = Array.make (n + 1) 0 in
  cuts.(n) <- rows;
  let target = float_of_int total /. float_of_int n in
  let row = ref 0 and acc = ref 0 in
  for s = 0 to n - 2 do
    cuts.(s) <- !row;
    let goal = float_of_int (s + 1) *. target in
    let limit = rows - (n - 1 - s) in
    acc := !acc + hist.(!row);
    incr row;
    while !row < limit && float_of_int !acc < goal do
      acc := !acc + hist.(!row);
      incr row
    done
  done;
  cuts.(n - 1) <- !row;
  let owner = Array.make rows 0 in
  let counts = Array.make n 0 in
  for s = 0 to n - 1 do
    let c = ref 0 in
    for r = cuts.(s) to cuts.(s + 1) - 1 do
      Array.unsafe_set owner r s;
      c := !c + Array.unsafe_get hist r
    done;
    counts.(s) <- !c
  done;
  let shards =
    Array.init n (fun s ->
        { row_lo = cuts.(s);
          row_hi = cuts.(s + 1);
          e_smp = Array.make counts.(s) 0;
          e_idx = Array.make counts.(s) 0;
          e_wgt = Array.make counts.(s) 0.0 })
  in
  (* Bucket the entry stream in plan order, so each shard's entries stay
     sample-monotonic (the bit-identity invariant). *)
  let fill = Array.make n 0 in
  let p = t.points in
  for j = 0 to t.m - 1 do
    let base = j * p in
    for i = 0 to p - 1 do
      let e = base + i in
      let k = Array.unsafe_get idx e in
      let s = Array.unsafe_get owner (k / g) in
      let sh = Array.unsafe_get shards s in
      let f = Array.unsafe_get fill s in
      Array.unsafe_set sh.e_smp f j;
      Array.unsafe_set sh.e_idx f k;
      Array.unsafe_set sh.e_wgt f (Array.unsafe_get wgt e);
      Array.unsafe_set fill s (f + 1)
    done
  done;
  Gridding_stats.end_span sp;
  { requested; p_rows = rows; shards }

(* The partition is built lazily on first parallel spread and cached in
   the plan (single slot, keyed on the requested shard count). All access
   goes through [pmutex]: plans are shared across domains by the plan
   cache, and an unsynchronised mutable read of [part] would race with a
   concurrent build under the OCaml memory model. *)
let partition t ~shards =
  if shards < 1 then invalid_arg "Sample_plan.partition: shards < 1";
  Mutex.lock t.pmutex;
  let p =
    match t.part with
    | Some p when p.requested = shards -> p
    | _ ->
        let p = build_partition t ~requested:shards in
        t.part <- Some p;
        p
  in
  Mutex.unlock t.pmutex;
  p

let partition_requested p = p.requested
let partition_rows p = p.p_rows
let partition_shards p = Array.length p.shards
let shard_rows p s = (p.shards.(s).row_lo, p.shards.(s).row_hi)
let shard_length p s = Array.length p.shards.(s).e_idx

let shard_entry p s e =
  let sh = p.shards.(s) in
  (sh.e_smp.(e), sh.e_idx.(e), sh.e_wgt.(e))

let replay_shard ~simd sh values out =
  if use_simd simd then Simd.spread_shard values sh.e_smp sh.e_idx sh.e_wgt out
  else begin
    let n = Array.length sh.e_idx in
    let e_smp = sh.e_smp and e_idx = sh.e_idx and e_wgt = sh.e_wgt in
    for e = 0 to n - 1 do
      let j = Array.unsafe_get e_smp e in
      let k = Array.unsafe_get e_idx e in
      let weight = Array.unsafe_get e_wgt e in
      acc_parts out k (weight *. get_re values j) (weight *. get_im values j)
    done
  end

let[@inline] pool_is_parallel pool =
  Runtime.Pool.size pool > 1 && not (Runtime.Pool.is_shut_down pool)

let spread_parallel_into ?stats ?pool ?(simd = false) t values out =
  if Cvec.length values <> t.m then
    invalid_arg "Sample_plan.spread_parallel_into: values length mismatch";
  if Cvec.length out <> grid_length t then
    invalid_arg "Sample_plan.spread_parallel_into: grid size mismatch";
  Cvec.fill_zero out;
  (match pool with
  | Some p when pool_is_parallel p ->
      let part = partition t ~shards:(Runtime.Pool.size p) in
      (* Each shard is one coarse work unit (entry-mass balanced at build
         time), so per-shard dispatch is the right granularity. *)
      Runtime.Pool.parallel_for ~chunk:1 p ~start:0
        ~stop:(Array.length part.shards) (fun s ->
          replay_shard ~simd (Array.unsafe_get part.shards s) values out)
  | _ -> replay_spread ~simd t values out);
  add_stats stats ~samples:t.m ~checks:0 ~evals:0 ~accums:(t.m * t.points)

let spread_parallel ?stats ?pool ?simd t values =
  let out = Cvec.create (grid_length t) in
  spread_parallel_into ?stats ?pool ?simd t values out;
  out

let gather_parallel ?stats ?pool ?(simd = false) t grid =
  if Cvec.length grid <> grid_length t then
    invalid_arg "Sample_plan.gather_parallel: grid size mismatch";
  let out = Cvec.create t.m in
  (match pool with
  | Some p when pool_is_parallel p ->
      (* Gather writes one private output slot per sample — sample-range
         sharding is race-free, and per-sample accumulation order is the
         serial order, so any chunking is bit-identical. *)
      let chunk =
        Runtime.Pool.adaptive_chunk p ~items:t.m ~work_per_item:(2 * t.points)
      in
      Runtime.Pool.parallel_for_ranges ~chunk p ~start:0 ~stop:t.m
        (fun ~lo ~hi -> gather_range ~simd t grid out ~lo ~hi)
  | _ -> gather_range ~simd t grid out ~lo:0 ~hi:t.m);
  add_stats stats ~samples:t.m ~checks:0 ~evals:0 ~accums:0;
  out
