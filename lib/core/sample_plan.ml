module Cvec = Numerics.Cvec
module Wt = Numerics.Weight_table

type t = {
  dims : int;
  m : int;
  g : int;
  w : int;
  points : int;
  idx : int array;
  wgt : float array;
}

let dims t = t.dims
let length t = t.m
let grid t = t.g
let points_per_sample t = t.points

let rec pow b e = if e = 0 then 1 else b * pow b (e - 1)
let grid_length t = pow t.g t.dims

let memory_words t = (2 * t.m * t.points) + 8

let add_stats = Gridding_serial.add_grid_stats

(* Same-module hot-path primitives; see {!Gridding_serial} for the
   [-opaque] / cross-module-inlining rationale. *)

module A1 = Bigarray.Array1

let[@inline] get_re (v : Cvec.t) k = A1.unsafe_get v (2 * k)
let[@inline] get_im (v : Cvec.t) k = A1.unsafe_get v ((2 * k) + 1)

let[@inline] set_parts (v : Cvec.t) k re im =
  let j = 2 * k in
  A1.unsafe_set v j re;
  A1.unsafe_set v (j + 1) im

let[@inline] acc_parts (v : Cvec.t) k re im =
  let j = 2 * k in
  A1.unsafe_set v j (A1.unsafe_get v j +. re);
  A1.unsafe_set v (j + 1) (A1.unsafe_get v (j + 1) +. im)

let[@inline] window_start w u =
  int_of_float (Float.floor (u +. (float_of_int w /. 2.0))) - w + 1

let[@inline] wrap g k =
  let r = k mod g in
  if r < 0 then r + g else r

let[@inline] lut tbl tlen lf d =
  let a = int_of_float (Float.round (Float.abs d *. lf)) in
  if a >= tlen then 0.0 else Array.unsafe_get tbl a

(* Compilation enumerates each sample's interpolation window in exactly the
   order the serial engine spreads it (y-outer then x, z-outer in 3D) and
   records the flattened grid index and the finished scalar weight of every
   window point. Replay then re-walks the arrays in that order, so the
   accumulation order onto any given grid cell — and therefore the floating
   point result — is bit-identical to the serial and slice engines.

   Stats: compilation charges the select/eval cost (the decomposition: the
   caller-supplied [select_checks] plus one [window_evals] per table lookup
   actually performed); replay charges only the streaming cost
   ([samples_processed] and [grid_accumulates]). Re-running a transform
   from a compiled plan therefore leaves the decomposition counters
   untouched — the property the CG amortization tests pin down. *)

let compile_2d ?stats ?(select_checks = 0) ~table ~g ~gx ~gy () =
  let w = Wt.width table in
  let m = Array.length gx in
  if Array.length gy <> m then
    invalid_arg "Sample_plan.compile_2d: coords length mismatch";
  let tbl = Wt.data table and lf = float_of_int (Wt.oversampling table) in
  let tlen = Array.length tbl in
  let points = w * w in
  let idx = Array.make (m * points) 0 in
  let wgt = Array.make (m * points) 0.0 in
  for j = 0 to m - 1 do
    let uy = Array.unsafe_get gy j and ux = Array.unsafe_get gx j in
    let sy = window_start w uy and sx = window_start w ux in
    let base = j * points in
    for iy = 0 to w - 1 do
      let kyu = sy + iy in
      let ky = wrap g kyu in
      let wy = lut tbl tlen lf (float_of_int kyu -. uy) in
      let row = ky * g in
      let rbase = base + (iy * w) in
      for ix = 0 to w - 1 do
        let kxu = sx + ix in
        let kx = wrap g kxu in
        let wx = lut tbl tlen lf (float_of_int kxu -. ux) in
        Array.unsafe_set idx (rbase + ix) (row + kx);
        Array.unsafe_set wgt (rbase + ix) (wx *. wy)
      done
    done
  done;
  add_stats stats ~samples:0 ~checks:select_checks
    ~evals:((m * w) + (m * w * w))
    ~accums:0;
  { dims = 2; m; g; w; points; idx; wgt }

let compile_3d ?stats ?(select_checks = 0) ~table ~g ~gx ~gy ~gz () =
  let w = Wt.width table in
  let m = Array.length gx in
  if Array.length gy <> m || Array.length gz <> m then
    invalid_arg "Sample_plan.compile_3d: coords length mismatch";
  let tbl = Wt.data table and lf = float_of_int (Wt.oversampling table) in
  let tlen = Array.length tbl in
  let points = w * w * w in
  let idx = Array.make (m * points) 0 in
  let wgt = Array.make (m * points) 0.0 in
  for j = 0 to m - 1 do
    let uz = Array.unsafe_get gz j
    and uy = Array.unsafe_get gy j
    and ux = Array.unsafe_get gx j in
    let sz = window_start w uz
    and sy = window_start w uy
    and sx = window_start w ux in
    let base = j * points in
    for iz = 0 to w - 1 do
      let kzu = sz + iz in
      let kz = wrap g kzu in
      let wz = lut tbl tlen lf (float_of_int kzu -. uz) in
      for iy = 0 to w - 1 do
        let kyu = sy + iy in
        let ky = wrap g kyu in
        let wyz = wz *. lut tbl tlen lf (float_of_int kyu -. uy) in
        let plane = ((kz * g) + ky) * g in
        let rbase = base + (((iz * w) + iy) * w) in
        for ix = 0 to w - 1 do
          let kxu = sx + ix in
          let kx = wrap g kxu in
          let wx = lut tbl tlen lf (float_of_int kxu -. ux) in
          Array.unsafe_set idx (rbase + ix) (plane + kx);
          Array.unsafe_set wgt (rbase + ix) (wyz *. wx)
        done
      done
    done
  done;
  add_stats stats ~samples:0 ~checks:select_checks
    ~evals:((m * w) + (m * w * w) + (m * w * w * w))
    ~accums:0;
  { dims = 3; m; g; w; points; idx; wgt }

let replay_spread t values out =
  let p = t.points in
  let idx = t.idx and wgt = t.wgt in
  for j = 0 to t.m - 1 do
    let vr = get_re values j and vi = get_im values j in
    let base = j * p in
    for i = 0 to p - 1 do
      let k = Array.unsafe_get idx (base + i) in
      let weight = Array.unsafe_get wgt (base + i) in
      acc_parts out k (weight *. vr) (weight *. vi)
    done
  done

let spread ?stats t values =
  if Cvec.length values <> t.m then
    invalid_arg "Sample_plan.spread: values length mismatch";
  let out = Cvec.create (grid_length t) in
  replay_spread t values out;
  add_stats stats ~samples:t.m ~checks:0 ~evals:0 ~accums:(t.m * t.points);
  out

let spread_into ?stats t values out =
  if Cvec.length values <> t.m then
    invalid_arg "Sample_plan.spread_into: values length mismatch";
  if Cvec.length out <> grid_length t then
    invalid_arg "Sample_plan.spread_into: grid size mismatch";
  Cvec.fill_zero out;
  replay_spread t values out;
  add_stats stats ~samples:t.m ~checks:0 ~evals:0 ~accums:(t.m * t.points)

let gather ?stats t grid =
  if Cvec.length grid <> grid_length t then
    invalid_arg "Sample_plan.gather: grid size mismatch";
  let out = Cvec.create t.m in
  let p = t.points in
  let idx = t.idx and wgt = t.wgt in
  for j = 0 to t.m - 1 do
    let base = j * p in
    let acc_re = ref 0.0 and acc_im = ref 0.0 in
    for i = 0 to p - 1 do
      let k = Array.unsafe_get idx (base + i) in
      let weight = Array.unsafe_get wgt (base + i) in
      acc_re := !acc_re +. (weight *. get_re grid k);
      acc_im := !acc_im +. (weight *. get_im grid k)
    done;
    set_parts out j !acc_re !acc_im
  done;
  add_stats stats ~samples:t.m ~checks:0 ~evals:0 ~accums:0;
  out
