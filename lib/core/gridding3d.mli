(** Serial 3D gridding and interpolation.

    The 3D analogue of {!Gridding_serial}: each sample spreads onto the
    [w^3] grid points of its separable interpolation window, on a cubic
    torus of [g] points per side. This is the functional reference for the
    JIGSAW 3D-Slice engine and for 3D NuFFT pipelines; the paper's
    accelerators process 3D volumes as sequences of 2D slices precisely
    because a 1024^3 grid (~8 GB complex) cannot live on chip. *)

val grid_3d :
  ?stats:Gridding_stats.t ->
  table:Numerics.Weight_table.t ->
  g:int ->
  gx:float array ->
  gy:float array ->
  gz:float array ->
  Numerics.Cvec.t ->
  Numerics.Cvec.t
(** [grid_3d ~table ~g ~gx ~gy ~gz values] spreads onto a [g^3] row-major
    grid (index [(z*g + y)*g + x]). *)

val grid_3d_sliced :
  ?stats:Gridding_stats.t ->
  table:Numerics.Weight_table.t ->
  g:int ->
  gx:float array ->
  gy:float array ->
  gz:float array ->
  Numerics.Cvec.t ->
  Numerics.Cvec.t
(** The same result computed the way the hardware does: one full pass over
    the sample stream per z-slice, accumulating [slice z] from the samples
    whose z-window covers it (paper §IV "Gridding in 2D and 3D"). Exists to
    demonstrate/test the slicing schedule; output equals {!grid_3d} up to
    accumulation order. *)

val grid_3d_parallel :
  ?stats:Gridding_stats.t ->
  ?pool:Runtime.Pool.t ->
  ?domains:int ->
  table:Numerics.Weight_table.t ->
  g:int ->
  gx:float array ->
  gy:float array ->
  gz:float array ->
  Numerics.Cvec.t ->
  Numerics.Cvec.t
(** Multicore 3D-Slice schedule: the [g] z-slices are distributed over a
    {!Runtime.Pool} (explicit [pool], else a throwaway pool of [domains],
    else the process-wide pool). Slice [z] of the output is written only
    while processing slice [z] — the paper's column-private accumulation
    argument lifted to slices, so the computation is race-free and
    bit-identical to {!grid_3d_sliced} for every pool size (each slice
    accumulates in sample order). Statistics are merged from per-domain
    counters and equal those of {!grid_3d_sliced}. *)

val interp_3d :
  ?stats:Gridding_stats.t ->
  table:Numerics.Weight_table.t ->
  g:int ->
  gx:float array ->
  gy:float array ->
  gz:float array ->
  Numerics.Cvec.t ->
  Numerics.Cvec.t
(** Transpose gather: [f_j = sum_window psi^3 * grid[k]]. *)
