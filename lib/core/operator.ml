module Cvec = Numerics.Cvec

type stats = {
  mutable adjoints : int;
  mutable forwards : int;
  mutable type3s : int;
  mutable gridding_s : float;
  mutable fft_s : float;
  mutable deapod_s : float;
  mutable adjoint_s : float;
  mutable forward_s : float;
  mutable type3_s : float;
  mutable cycles : int;
  grid : Gridding_stats.t;
}

let create_stats () =
  { adjoints = 0;
    forwards = 0;
    type3s = 0;
    gridding_s = 0.0;
    fft_s = 0.0;
    deapod_s = 0.0;
    adjoint_s = 0.0;
    forward_s = 0.0;
    type3_s = 0.0;
    cycles = 0;
    grid = Gridding_stats.create () }

let add_timings st (t : Plan.timings) =
  st.gridding_s <- st.gridding_s +. t.Plan.gridding_s;
  st.fft_s <- st.fft_s +. t.Plan.fft_s;
  st.deapod_s <- st.deapod_s +. t.Plan.deapod_s

(* Telemetry unification: every backend (CPU, jigsaw, gpusim) funnels its
   applications through the helpers below, which update the per-operator
   [stats] record and mirror the same deltas into the process-wide
   {!Telemetry} registry. The span names are static strings and the
   backend arg list is only built once telemetry is known enabled, so the
   disabled path costs one atomic read. *)

let c_adjoints = Telemetry.Counter.make "op.adjoints"
let c_forwards = Telemetry.Counter.make "op.forwards"
let c_type3s = Telemetry.Counter.make "op.type3s"
let c_cycles = Telemetry.Counter.make "op.cycles"

let op_span kind name =
  if Telemetry.enabled () then
    Telemetry.span_begin ~cat:"op" ~args:[ ("backend", name) ] kind
  else Telemetry.null_span

let adjoint_span name = op_span "op.adjoint" name
let forward_span name = op_span "op.forward" name

let record_adjoint ?timings ?(cycles = 0) st ~elapsed_s =
  st.adjoints <- st.adjoints + 1;
  (match timings with Some tm -> add_timings st tm | None -> ());
  st.adjoint_s <- st.adjoint_s +. elapsed_s;
  st.cycles <- st.cycles + cycles;
  Telemetry.Counter.incr c_adjoints;
  if cycles > 0 then Telemetry.Counter.add c_cycles cycles

let record_forward ?(cycles = 0) st ~elapsed_s =
  st.forwards <- st.forwards + 1;
  st.forward_s <- st.forward_s +. elapsed_s;
  st.cycles <- st.cycles + cycles;
  Telemetry.Counter.incr c_forwards;
  if cycles > 0 then Telemetry.Counter.add c_cycles cycles

let record_type3 st ~elapsed_s =
  st.type3s <- st.type3s + 1;
  st.type3_s <- st.type3_s +. elapsed_s;
  Telemetry.Counter.incr c_type3s

let pp_stats ppf st =
  Format.fprintf ppf
    "@[<v>adjoints %d (gridding %.4fs, fft %.4fs, deapod %.4fs)@,\
     forwards %d (%.4fs)" st.adjoints st.gridding_s st.fft_s st.deapod_s
    st.forwards st.forward_s;
  if st.type3s > 0 then
    Format.fprintf ppf "@,type3s %d (%.4fs)" st.type3s st.type3_s;
  if st.cycles > 0 then Format.fprintf ppf "@,simulated cycles %d" st.cycles;
  Format.fprintf ppf "@]"

module type NUFFT_OP = sig
  val name : string
  val dims : int
  val n : int
  val g : int
  val plan : Plan.plan option
  val transforms : Transform.t list
  val adjoint : Sample.t -> Cvec.t
  val forward : Cvec.t -> Sample.t
  val type3 : (Cvec.t -> Cvec.t) option
  val stats : unit -> stats
end

type op = (module NUFFT_OP)

type ctx = {
  n : int;
  sigma : float;
  w : int;
  l : int;
  tol : float option;
  family : Numerics.Window.family option;
  kernel : Numerics.Window.t;
  transform : Transform.t;
  targets : float array array option;
  coords : Sample.t;
  pool : Runtime.Pool.t option;
}

type factory = ctx -> op

let context ?tol ?family ?kernel ?w ?(sigma = 2.0) ?l ?pool
    ?(transform = Transform.Type1) ?targets ~n ~coords () =
  if n < 2 then invalid_arg "Operator.context: n must be >= 2";
  if sigma <= 1.0 then invalid_arg "Operator.context: sigma must be > 1";
  let g = int_of_float (Float.round (sigma *. float_of_int n)) in
  if coords.Sample.g <> g then
    invalid_arg
      (Printf.sprintf
         "Operator.context: coords are on grid %d, but sigma * n rounds to \
          %d"
         coords.Sample.g g);
  (match (transform, targets) with
  | (Transform.Type1 | Transform.Type2), Some _ ->
      invalid_arg
        "Operator.context: targets only apply to the type-3 transform"
  | Transform.Type3, Some t ->
      let dims = Sample.dims coords in
      if Array.length t <> dims then
        invalid_arg
          (Printf.sprintf
             "Operator.context: targets have %d axes for a %dD problem"
             (Array.length t) dims);
      let m = if Array.length t = 0 then 0 else Array.length t.(0) in
      if m < 1 then invalid_arg "Operator.context: empty target set";
      Array.iter
        (fun a ->
          if Array.length a <> m then
            invalid_arg "Operator.context: ragged target axes";
          Array.iter
            (fun x ->
              if not (Float.is_finite x) then
                invalid_arg "Operator.context: non-finite target frequency")
            a)
        t
  | _, None -> ());
  (* Same derivation as the plan the factory will build, so [c.w]/[c.l]
     (which the hardware-model backends read directly) always equal the
     CPU plan's geometry. *)
  let tol, kernel, w, l =
    Plan.resolve_geometry ?tol ?family ?kernel ?w ?l ~sigma ()
  in
  { n; sigma; w; l; tol; family; kernel; transform; targets; coords; pool }

let ctx_dims c = Sample.dims c.coords
let ctx_grid c = c.coords.Sample.g

(* Registry. *)

type entry = {
  name : string;
  dims : int list;
  transforms : Transform.t list;
  doc : string;
  factory : factory;
}

let registry : entry list ref = ref []

let register ?(dims = [ 2; 3 ]) ?(transforms = [ Transform.Type1; Transform.Type2 ])
    ?(doc = "") name factory =
  if List.exists (fun e -> e.name = name) !registry then
    invalid_arg (Printf.sprintf "Operator.register: duplicate backend %S" name);
  registry := !registry @ [ { name; dims; transforms; doc; factory } ]

let entries () = !registry
let all () = List.map (fun e -> (e.name, e.factory)) !registry

let names ?dims ?transform () =
  List.filter_map
    (fun e ->
      match dims with
      | Some d when not (List.mem d e.dims) -> None
      | _ -> (
          match transform with
          | Some t when not (List.mem t e.transforms) -> None
          | _ -> Some e.name))
    !registry

let find name = List.find_opt (fun e -> e.name = name) !registry

let create name ctx =
  match find name with
  | None ->
      invalid_arg
        (Printf.sprintf "Operator: unknown backend %S (registered: %s)" name
           (String.concat ", " (names ())))
  | Some e ->
      let d = ctx_dims ctx in
      if not (List.mem d e.dims) then
        invalid_arg
          (Printf.sprintf "Operator: backend %S does not support %dD" name d);
      if not (List.mem ctx.transform e.transforms) then
        invalid_arg
          (Printf.sprintf
             "Operator: backend %S does not support %s (supported: %s)" name
             (Transform.to_string ctx.transform)
             (Transform.list_to_string e.transforms));
      e.factory ctx

(* Generic helpers over a packed operator. *)

let name_of (module O : NUFFT_OP) = O.name
let dims_of (module O : NUFFT_OP) = O.dims

let rec pow b e = if e = 0 then 1 else b * pow b (e - 1)
let image_length (module O : NUFFT_OP) = pow O.n O.dims
let apply_adjoint (module O : NUFFT_OP) s = O.adjoint s
let apply_forward (module O : NUFFT_OP) x = O.forward x

let apply_type3 (module O : NUFFT_OP) values =
  match O.type3 with
  | Some f -> f values
  | None ->
      invalid_arg
        (Printf.sprintf
           "Operator: backend %S was not built for the type-3 transform \
            (supported: %s)"
           O.name
           (Transform.list_to_string O.transforms))

let stats_of (module O : NUFFT_OP) = O.stats ()
let plan_of (module O : NUFFT_OP) = O.plan
let transforms_of (module O : NUFFT_OP) = O.transforms
let type3_of (module O : NUFFT_OP) = O.type3

let normal (module O : NUFFT_OP) x = O.adjoint (O.forward x)

let now () = Unix.gettimeofday ()

let two_pi = 2.0 *. Float.pi

(* Default type-3 targets: the centred integer lattice, row-major with x
   fastest — the target set on which type-3 reduces exactly to type-1, so
   a lattice-targeted type-3 operator is a drop-in (approximate) adjoint. *)
let lattice_targets ~dims ~n =
  let total = pow n dims in
  let h = n / 2 in
  Array.init dims (fun d ->
      let stride = pow n d in
      Array.init total (fun idx -> float_of_int ((idx / stride mod n) - h)))

let of_plan ?name ?(compile = true) ?(transform = Transform.Type1) ?targets
    (plan : Plan.plan) ~coords : op =
  if coords.Sample.g <> plan.Plan.g then
    invalid_arg
      (Printf.sprintf "Operator.of_plan: coords are for grid %d, plan uses %d"
         coords.Sample.g plan.Plan.g);
  let name =
    match name with
    | Some n -> n
    | None -> Gridding.engine_name plan.Plan.engine
  in
  let st = create_stats () in
  let p = plan in
  (* The type-3 leg is prepared eagerly when requested: a plan cache entry
     built for Type3 is ready to replay, and geometry errors (target
     extents forcing an oversized fine grid) surface at build time. *)
  let type3_exec =
    match transform with
    | Transform.Type1 | Transform.Type2 -> None
    | Transform.Type3 ->
        let dims = Sample.dims coords in
        let g = p.Plan.g in
        let sources =
          Array.init dims (fun d ->
              Array.map
                (fun u ->
                  let om = two_pi *. u /. float_of_int g in
                  if om >= Float.pi then om -. two_pi else om)
                coords.Sample.coords.(d))
        in
        let targets =
          match targets with
          | Some t -> t
          | None -> lattice_targets ~dims ~n:p.Plan.n
        in
        let t3 =
          Plan.make_type3 ~kernel:p.Plan.kernel ~w:p.Plan.w ~sigma:p.Plan.sigma
            ~l:p.Plan.l ?pool:p.Plan.pool ~simd:p.Plan.simd ~sources ~targets
            ()
        in
        Some (t3, st)
  in
  (module struct
    let name = name
    let dims = Sample.dims coords
    let n = p.Plan.n
    let g = p.Plan.g
    let plan = Some p

    let transforms =
      match type3_exec with
      | Some _ -> Transform.all
      | None -> [ Transform.Type1; Transform.Type2 ]

    (* With [compile] (the default), forward/adjoint replay the plan's
       compiled sample plan: the engine's decomposition is paid on the
       first application and every subsequent CG iteration streams the
       precomputed indices and weights. *)

    let adjoint s =
      let sp = adjoint_span name in
      let t0 = now () in
      let image, tm =
        if compile then Plan.adjoint_compiled_timed ~stats:st.grid p s
        else Plan.adjoint_timed ~stats:st.grid p s
      in
      record_adjoint ~timings:tm st ~elapsed_s:(now () -. t0);
      Telemetry.span_end sp;
      image

    let forward image =
      let sp = forward_span name in
      let t0 = now () in
      let values =
        if compile then Plan.forward_compiled ~stats:st.grid p ~coords image
        else Plan.forward ~stats:st.grid p ~coords image
      in
      record_forward st ~elapsed_s:(now () -. t0);
      Telemetry.span_end sp;
      Sample.with_values coords values

    let type3 =
      Option.map
        (fun (t3, st) values ->
          let sp = op_span "op.type3" name in
          let t0 = now () in
          let out = Plan.type3_exec ~stats:st.grid t3 values in
          record_type3 st ~elapsed_s:(now () -. t0);
          Telemetry.span_end sp;
          out)
        type3_exec

    let stats () = st
  end : NUFFT_OP)

(* CPU backends: one registry entry per gridding engine. The 3D adjoint
   grids with the (pool-)sliced Gridding3d schedule whatever the 2D engine,
   so in 3D the names differ only in the plan they carry. *)

let cpu_backend ?(simd = false) name engine_of : factory =
 fun c ->
  let engine = engine_of ~g:(ctx_grid c) ~w:c.w in
  let plan =
    match c.tol with
    | Some t ->
        (* Re-deriving from [tol] records the request in the plan; the
           deterministic shared derivation guarantees the result matches
           the context's (kernel, w, l). *)
        Plan.make ~tol:t ?family:c.family ~sigma:c.sigma ~l:c.l ~engine
          ?pool:c.pool ~simd ~n:c.n ()
    | None ->
        Plan.make ~kernel:c.kernel ~w:c.w ~sigma:c.sigma ~l:c.l ~engine
          ?pool:c.pool ~simd ~n:c.n ()
  in
  of_plan ~name ~transform:c.transform ?targets:c.targets plan ~coords:c.coords

let () =
  List.iter
    (fun (name, doc, engine_of) ->
      register ~transforms:Transform.all ~doc name (cpu_backend name engine_of))
    [ ( "serial",
        "input-driven double-precision CPU reference (MIRT-class)",
        fun ~g:_ ~w:_ -> Gridding.Serial );
      ( "output-parallel",
        "naive output-driven model, M*G^d boundary checks",
        fun ~g:_ ~w:_ -> Gridding.Output_parallel );
      ( "binned",
        "Impatient-class presorted geometric bins",
        fun ~g ~w -> Gridding.Binned (Coord.fallback_tile ~g ~w) );
      ( "slice",
        "Slice-and-Dice, sample-outer CPU schedule (bit-identical to serial)",
        fun ~g ~w -> Gridding.Slice_and_dice (Coord.fallback_tile ~g ~w) );
      ( "slice-parallel",
        "Slice-and-Dice column-outer schedule on the domain pool",
        fun ~g ~w -> Gridding.Slice_parallel (Coord.fallback_tile ~g ~w) );
      ( "replay-parallel",
        "compiled-plan replay sharded across domains by grid-region \
         ownership (bit-identical to serial; serial without a pool)",
        fun ~g:_ ~w:_ -> Gridding.Serial ) ];
  (* Same replay pipeline with the plan's SIMD flag set: spread/gather run
     through the runtime-dispatched C kernels (scalar when the host has no
     vector unit or JIGSAW_SIMD=off|scalar). Registered separately so the
     conformance suite exercises the SIMD path against every reference,
     and so plan-cache keys (by backend name) never mix the two. *)
  register ~transforms:Transform.all
    ~doc:
      "compiled-plan replay through the runtime-dispatched SIMD kernels \
       (4-ULP contract vs serial; honours JIGSAW_SIMD)"
    "replay-simd"
    (cpu_backend ~simd:true "replay-simd" (fun ~g:_ ~w:_ -> Gridding.Serial))
