(** First-class NuFFT operators and the backend registry.

    The paper's evaluation (Fig 1, Fig 9) swaps interchangeable gridding
    backends — CPU engines, GPU kernels, the JIGSAW ASIC — under one
    reconstruction pipeline. This module is that seam in software: every
    backend is packaged as a first-class module implementing {!NUFFT_OP}
    (the plan-as-operator abstraction of FINUFFT/cuFINUFFT), and consumers
    ({!Imaging.Recon}, CG, the CLI) are written against the interface
    alone, so they are backend- and dimension-agnostic.

    An operator is bound at creation to a {e context}: problem size [n],
    oversampling, window, and — crucially — the sample {e coordinates}
    (the "setpts" of FINUFFT). [adjoint] maps any sample set on the same
    grid to an image; [forward] evaluates an image's spectrum at the bound
    coordinates and returns them as a sample set.

    The five CPU gridding engines self-register here at library load.
    Hardware-model backends live in their own libraries to keep the
    dependency graph acyclic — call [Jigsaw.Operator_backend.register ()]
    and [Gpusim.Operator_backend.register ()] to add them. *)

(** Cumulative per-operator instrumentation: application counts, stage
    wall-clock (gridding / FFT / de-apodization, summed over adjoints),
    simulated cycles for hardware-model backends (0 for CPU), and the
    engine work counters. *)
type stats = {
  mutable adjoints : int;
  mutable forwards : int;
  mutable type3s : int;  (** type-3 applications *)
  mutable gridding_s : float;
  mutable fft_s : float;
  mutable deapod_s : float;
  mutable adjoint_s : float;  (** total adjoint wall-clock *)
  mutable forward_s : float;  (** total forward wall-clock *)
  mutable type3_s : float;  (** total type-3 wall-clock *)
  mutable cycles : int;  (** simulated hardware cycles (JIGSAW, GPU) *)
  grid : Gridding_stats.t;
}

val create_stats : unit -> stats
val add_timings : stats -> Plan.timings -> unit
val pp_stats : Format.formatter -> stats -> unit

(** {2 Telemetry unification}

    Shared application-recording hooks: all backends (CPU plans here,
    hardware models in [Jigsaw.Operator_backend] / [Gpusim.Operator_backend])
    report through these, which update the per-operator {!stats} record and
    mirror the deltas into the process-wide {!Telemetry} registry
    ([op.adjoints], [op.forwards], [op.cycles]). *)

val adjoint_span : string -> Telemetry.span
(** [adjoint_span backend] opens a [cat:"op"] ["op.adjoint"] span tagged
    with the backend name; {!Telemetry.null_span} when disabled. *)

val forward_span : string -> Telemetry.span

val record_adjoint :
  ?timings:Plan.timings -> ?cycles:int -> stats -> elapsed_s:float -> unit
(** Count one adjoint application: bumps [adjoints], accumulates stage
    [timings] and simulated [cycles] when given, adds [elapsed_s] to
    [adjoint_s], and mirrors to telemetry counters. *)

val record_forward : ?cycles:int -> stats -> elapsed_s:float -> unit

val record_type3 : stats -> elapsed_s:float -> unit
(** Count one type-3 application ([type3s], [type3_s], [op.type3s]). *)

(** One NuFFT backend, bound to a problem geometry and sample
    coordinates. *)
module type NUFFT_OP = sig
  val name : string
  val dims : int  (** 2 or 3 *)

  val n : int  (** image size per dimension *)

  val g : int  (** oversampled grid size *)

  val plan : Plan.plan option
  (** The CPU plan whose compiled replay path {e is} this operator's own
      adjoint/forward ([Some] for every {!of_plan}-built backend), exposed
      so a serving layer can pre-compile the trajectory decomposition
      ({!Plan.compiled}) and reuse the plan's pipeline-stage helpers.
      [None] for hardware-model backends (JIGSAW fixed-point, GPU f32
      simulation), whose numerics a CPU plan must never substitute. *)

  val transforms : Transform.t list
  (** The transform types {e this instance} can apply: always
      [Type1; Type2] (the adjoint/forward pair below), plus [Type3] when
      the operator was built from a type-3 context and so carries a
      prepared type-3 leg. *)

  val adjoint : Sample.t -> Numerics.Cvec.t
  (** Type-1, k-space to image: gridding, FFT, de-apodization. Accepts
      any sample set with matching [g] and dimensionality; returns the
      centred row-major [n^dims] image. *)

  val forward : Numerics.Cvec.t -> Sample.t
  (** Type-2, image to k-space at the {e bound} coordinates: apodization,
      FFT, interpolation. Returns the bound coordinate set carrying the
      evaluated values. *)

  val type3 : (Numerics.Cvec.t -> Numerics.Cvec.t) option
  (** Type-3 leg: strengths at the bound source coordinates to values at
      the bound target frequencies ({!Plan.make_type3} geometry prepared
      at operator build time). [None] unless the operator was created
      from a [Transform.Type3] context — hardware-model backends never
      provide it. *)

  val stats : unit -> stats
  (** Instrumentation accumulated over every application so far. *)
end

type op = (module NUFFT_OP)

(** Everything a factory needs to build an operator: geometry parameters
    plus the coordinates the operator is bound to ([g] is implied by
    [coords.g = round (sigma * n)]). *)
type ctx = {
  n : int;
  sigma : float;
  w : int;  (** resolved window width (derived from [tol] when set) *)
  l : int;  (** resolved table oversampling *)
  tol : float option;  (** requested relative tolerance, if any *)
  family : Numerics.Window.family option;
  kernel : Numerics.Window.t;
      (** resolved kernel — what every backend's weight tables must be
          built from (hardware models included) *)
  transform : Transform.t;
      (** the transform type the consumer intends to apply; the registry
          filters backends on it *)
  targets : float array array option;
      (** type-3 target frequencies (one axis per dimension); [None] with
          [Type3] means the centred integer lattice. Always [None] for
          type-1/2. *)
  coords : Sample.t;
  pool : Runtime.Pool.t option;
}

type factory = ctx -> op

val context :
  ?tol:float ->
  ?family:Numerics.Window.family ->
  ?kernel:Numerics.Window.t ->
  ?w:int ->
  ?sigma:float ->
  ?l:int ->
  ?pool:Runtime.Pool.t ->
  ?transform:Transform.t ->
  ?targets:float array array ->
  n:int ->
  coords:Sample.t ->
  unit ->
  ctx
(** Smart constructor sharing {!Plan.resolve_geometry} with {!Plan.make}:
    same defaults ([sigma = 2.0], [w = Window.default_width ~sigma],
    [l = 512], Kaiser-Bessel/Beatty kernel), same tolerance-driven path
    ([tol] derives kernel + [w] + [l]; mutually exclusive with explicit
    [kernel]/[w]), so [ctx.w]/[ctx.l]/[ctx.kernel] always equal the
    geometry of the plan a CPU factory builds. Checks
    [coords.g = round (sigma * n)].

    [transform] (default {!Transform.Type1}) declares which transform the
    operator will be asked to apply; {!create} rejects backends that do
    not list it — the CPU engines support all three types, the jigsaw and
    gpusim hardware models only type-1/type-2, and the mismatch surfaces
    here as a typed [Invalid_argument] naming the supported set instead
    of failing at apply time. [targets] (type-3 only) gives the target
    frequencies, one axis array per dimension, validated for shape and
    finiteness; omitted, the type-3 leg evaluates on the centred integer
    lattice (on which type-3 reproduces type-1). *)

val ctx_dims : ctx -> int
val ctx_grid : ctx -> int

(** {2 Registry} *)

type entry = {
  name : string;
  dims : int list;  (** dimensionalities the backend supports *)
  transforms : Transform.t list;  (** transform types the backend supports *)
  doc : string;
  factory : factory;
}

val register :
  ?dims:int list ->
  ?transforms:Transform.t list ->
  ?doc:string ->
  string ->
  factory ->
  unit
(** Add a backend under a unique name (default [dims = [2; 3]],
    [transforms = [Type1; Type2]] — hardware models keep the default, the
    CPU engines register with {!Transform.all}). Raises
    [Invalid_argument] on a duplicate name. *)

val all : unit -> (string * factory) list
(** Every registered backend, in registration order. *)

val entries : unit -> entry list

val names : ?dims:int -> ?transform:Transform.t -> unit -> string list
(** Registered names, optionally only those supporting [dims]-dimensional
    problems and/or the given transform type (what the CLI's
    [--list-backends] prints). *)

val find : string -> entry option

val create : string -> ctx -> op
(** Look up a backend by name and build it. Raises [Invalid_argument] for
    an unknown name (the message lists the registered ones), a
    dimensionality the backend does not support, or a [ctx.transform]
    outside the backend's declared {!entry.transforms} (the message names
    the supported set). *)

(** {2 Helpers} *)

val name_of : op -> string
val dims_of : op -> int

val image_length : op -> int
(** [n^dims] — length of the image vector the operator produces. *)

val apply_adjoint : op -> Sample.t -> Numerics.Cvec.t
val apply_forward : op -> Numerics.Cvec.t -> Sample.t

val apply_type3 : op -> Numerics.Cvec.t -> Numerics.Cvec.t
(** Apply the operator's type-3 leg. Raises [Invalid_argument] (naming
    the instance's supported transforms) when the operator was not built
    for type-3. *)

val stats_of : op -> stats

val plan_of : op -> Plan.plan option
(** The operator's underlying CPU plan, if it has one (see
    {!NUFFT_OP.plan}). *)

val transforms_of : op -> Transform.t list
val type3_of : op -> (Numerics.Cvec.t -> Numerics.Cvec.t) option

val normal : op -> Numerics.Cvec.t -> Numerics.Cvec.t
(** [normal op x = adjoint (forward x)] — the Gram/normal map [A^H A]
    iterative reconstruction needs. *)

val lattice_targets : dims:int -> n:int -> float array array
(** The centred integer lattice as a type-3 target set: [n^dims] points,
    row-major with x fastest, axis values in [[-n/2, n/2)] — the default
    targets a [Transform.Type3] context without explicit [targets] binds,
    and the set on which type-3 mathematically reduces to type-1. *)

val of_plan :
  ?name:string ->
  ?compile:bool ->
  ?transform:Transform.t ->
  ?targets:float array array ->
  Plan.plan ->
  coords:Sample.t ->
  op
(** Wrap an existing CPU plan as an operator bound to [coords] (which must
    live on the plan's grid). This is how every CPU registry entry is
    implemented, and the escape hatch for custom plans (window, table
    precision, ...).

    With [compile] (default [true]) forward/adjoint go through the plan's
    compiled sample plan ({!Plan.compiled}): the engine's slice-and-dice
    decomposition is performed once, on the first application, and every
    later application — each iteration of a CG solve — replays the
    precomputed window indices and weights, bit-identically to the serial
    engine. Pass [~compile:false] to run the plan's gridding engine on
    every application (e.g. to benchmark or differential-test the engines
    themselves).

    With [~transform:Type3] the operator additionally prepares a type-3
    leg ({!Plan.make_type3}) whose sources are the bound coordinates read
    back as angular frequencies and whose targets are [targets] (default:
    {!lattice_targets}); preparation is eager, so geometry errors surface
    here rather than at first application. *)
