(** Library entry point: re-exports every public core module and lifts the
    plan API to the top level, so users write [Nufft.make],
    [Nufft.adjoint_2d], [Nufft.Gridding.Slice_and_dice], ...

    This interface pins the re-export set: a module is part of the public
    surface exactly when it is listed here, so internal helpers can be
    added to the library without silently widening the API. *)

module Coord = Coord
module Sample = Sample
module Gridding_stats = Gridding_stats
module Gridding = Gridding
module Gridding_serial = Gridding_serial
module Gridding_output = Gridding_output
module Gridding_binned = Gridding_binned
module Gridding_slice = Gridding_slice
module Gridding3d = Gridding3d
module Minmax = Minmax
module Apodization = Apodization
module Nudft = Nudft
module Transform = Transform
module Tuner = Tuner
module Sample_plan = Sample_plan
module Plan = Plan
module Operator = Operator

include module type of struct
  include Plan
end
