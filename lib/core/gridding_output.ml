module Cvec = Numerics.Cvec
module C = Numerics.Complexd
module Wt = Numerics.Weight_table

let bump stats f = match stats with None -> () | Some s -> f s

(* Is grid point [k] covered by the window of a sample at [u]?  Same
   arithmetic as Coord.iter_window: k is hit iff (k - start) mod g < w. *)
let hit ~w ~g ~k u =
  let start = Coord.window_start ~w u in
  let j =
    let m = (k - start) mod g in
    if m < 0 then m + g else m
  in
  if j < w then Some (float_of_int (start + j) -. u) else None

let grid_1d ?stats ~table ~g ~coords values =
  let w = Wt.width table in
  let m = Array.length coords in
  if Cvec.length values <> m then
    invalid_arg "Gridding_output.grid_1d: coords/values length mismatch";
  let out = Cvec.create g in
  for k = 0 to g - 1 do
    for j = 0 to m - 1 do
      bump stats (fun s ->
          s.Gridding_stats.boundary_checks <-
            s.Gridding_stats.boundary_checks + 1);
      match hit ~w ~g ~k coords.(j) with
      | None -> ()
      | Some dist ->
          bump stats (fun s ->
              s.Gridding_stats.window_evals <-
                s.Gridding_stats.window_evals + 1;
              s.Gridding_stats.grid_accumulates <-
                s.Gridding_stats.grid_accumulates + 1);
          Cvec.accumulate out k (C.scale (Wt.lookup table dist) (Cvec.get values j))
    done
  done;
  out

let grid_2d ?stats ~table ~g ~gx ~gy values =
  let w = Wt.width table in
  let m = Array.length gx in
  if Array.length gy <> m || Cvec.length values <> m then
    invalid_arg "Gridding_output.grid_2d: coords/values length mismatch";
  let out = Cvec.create (g * g) in
  for ky = 0 to g - 1 do
    for kx = 0 to g - 1 do
      let idx = (ky * g) + kx in
      for j = 0 to m - 1 do
        bump stats (fun s ->
            s.Gridding_stats.boundary_checks <-
              s.Gridding_stats.boundary_checks + 1);
        match hit ~w ~g ~k:kx gx.(j) with
        | None -> ()
        | Some dx -> (
            match hit ~w ~g ~k:ky gy.(j) with
            | None -> ()
            | Some dy ->
                let weight = Wt.lookup table dx *. Wt.lookup table dy in
                bump stats (fun s ->
                    s.Gridding_stats.window_evals <-
                      s.Gridding_stats.window_evals + 2;
                    s.Gridding_stats.grid_accumulates <-
                      s.Gridding_stats.grid_accumulates + 1);
                Cvec.accumulate out idx (C.scale weight (Cvec.get values j)))
      done
    done
  done;
  out
