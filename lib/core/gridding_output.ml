module Cvec = Numerics.Cvec
module Wt = Numerics.Weight_table

(* Is grid point [k] covered by the window of a sample at [u]?  Same
   arithmetic as Coord.iter_window: k is hit iff (k - start) mod g < w.
   The check is written out inline in the scan loops as branch + integer
   arithmetic (no option, no tuple, no float box), so the M * G^d scan
   allocates nothing per check.

   As in {!Gridding_serial}, the element accessors and the LUT arithmetic
   are same-module [@inline] helpers over Bigarray externals: the dev
   profile's [-opaque] disables cross-module inlining, so calling into
   Cvec / Coord / Weight_table per element would box a float each. *)

module A1 = Bigarray.Array1

let[@inline] get_re (v : Cvec.t) k = A1.unsafe_get v (2 * k)
let[@inline] get_im (v : Cvec.t) k = A1.unsafe_get v ((2 * k) + 1)

let[@inline] acc_parts (v : Cvec.t) k re im =
  let j = 2 * k in
  A1.unsafe_set v j (A1.unsafe_get v j +. re);
  A1.unsafe_set v (j + 1) (A1.unsafe_get v (j + 1) +. im)

let[@inline] window_start w u =
  int_of_float (Float.floor (u +. (float_of_int w /. 2.0))) - w + 1

let[@inline] lut tbl tlen lf d =
  let a = int_of_float (Float.round (Float.abs d *. lf)) in
  if a >= tlen then 0.0 else Array.unsafe_get tbl a

let grid_1d ?stats ~table ~g ~coords values =
  let w = Wt.width table in
  let m = Array.length coords in
  if Cvec.length values <> m then
    invalid_arg "Gridding_output.grid_1d: coords/values length mismatch";
  let tbl = Wt.data table and lf = float_of_int (Wt.oversampling table) in
  let tlen = Array.length tbl in
  let out = Cvec.create g in
  let hits = ref 0 in
  for k = 0 to g - 1 do
    for j = 0 to m - 1 do
      let u = Array.unsafe_get coords j in
      let start = window_start w u in
      let off =
        let r = (k - start) mod g in
        if r < 0 then r + g else r
      in
      if off < w then begin
        incr hits;
        let dist = float_of_int (start + off) -. u in
        let weight = lut tbl tlen lf dist in
        acc_parts out k (weight *. get_re values j) (weight *. get_im values j)
      end
    done
  done;
  Gridding_serial.add_grid_stats stats ~samples:0 ~checks:(g * m)
    ~evals:!hits ~accums:!hits;
  out

let grid_2d ?stats ~table ~g ~gx ~gy values =
  let w = Wt.width table in
  let m = Array.length gx in
  if Array.length gy <> m || Cvec.length values <> m then
    invalid_arg "Gridding_output.grid_2d: coords/values length mismatch";
  let tbl = Wt.data table and lf = float_of_int (Wt.oversampling table) in
  let tlen = Array.length tbl in
  let out = Cvec.create (g * g) in
  let hits = ref 0 in
  for ky = 0 to g - 1 do
    for kx = 0 to g - 1 do
      let idx = (ky * g) + kx in
      for j = 0 to m - 1 do
        let ux = Array.unsafe_get gx j in
        let sx = window_start w ux in
        let offx =
          let r = (kx - sx) mod g in
          if r < 0 then r + g else r
        in
        if offx < w then begin
          let uy = Array.unsafe_get gy j in
          let sy = window_start w uy in
          let offy =
            let r = (ky - sy) mod g in
            if r < 0 then r + g else r
          in
          if offy < w then begin
            incr hits;
            let dx = float_of_int (sx + offx) -. ux in
            let dy = float_of_int (sy + offy) -. uy in
            let weight = lut tbl tlen lf dx *. lut tbl tlen lf dy in
            acc_parts out idx
              (weight *. get_re values j)
              (weight *. get_im values j)
          end
        end
      done
    done
  done;
  Gridding_serial.add_grid_stats stats ~samples:0 ~checks:(g * g * m)
    ~evals:(2 * !hits) ~accums:!hits;
  out
