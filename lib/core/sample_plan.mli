(** Compiled sample plans: the slice-and-dice decomposition done once.

    A compiled plan is the fixed part of gridding a particular trajectory —
    for every sample, the flattened grid indices of its [w^dims]
    interpolation-window points and the finished scalar weight at each —
    precomputed into two flat arrays. {!spread} and {!gather} then replay
    those arrays with a pure streaming multiply-accumulate loop: no
    boundary checks, no window evaluation, no tile arithmetic.

    Iterative reconstruction (CG, Toeplitz kernel construction) applies the
    same operator on the same coordinates tens of times; compiling once and
    replaying moves the whole decomposition cost out of the iteration loop.
    The replay enumeration order matches the serial engine exactly, so
    replayed transforms are bit-identical to the serial (and slice) engine
    results.

    Stats accounting splits along the same line: compilation charges
    [boundary_checks] (the caller-supplied select cost of the engine whose
    decomposition is being amortised) and [window_evals]; replay charges
    only [samples_processed] and [grid_accumulates]. The decomposition
    counters of a stats record therefore advance exactly once per compiled
    plan no matter how many times it is replayed. *)

type t

val dims : t -> int
val length : t -> int
(** Number of samples the plan was compiled for. *)

val grid : t -> int
(** Oversampled grid size [g] per dimension. *)

val points_per_sample : t -> int
(** [w^dims]: window points recorded per sample. *)

val grid_length : t -> int
(** [g^dims]: flattened length of the grid {!spread} produces. *)

val memory_words : t -> int
(** Approximate footprint of the compiled arrays, in words. *)

val compile_2d :
  ?stats:Gridding_stats.t ->
  ?select_checks:int ->
  table:Numerics.Weight_table.t ->
  g:int ->
  gx:float array ->
  gy:float array ->
  unit ->
  t
(** Compile the decomposition of a 2D trajectory. [select_checks] is the
    number of boundary checks the amortised engine would have performed for
    one gridding pass (e.g. [t^2 * m] for a slice engine with tile [t]);
    it is charged to [stats] here, once. *)

val compile_3d :
  ?stats:Gridding_stats.t ->
  ?select_checks:int ->
  table:Numerics.Weight_table.t ->
  g:int ->
  gx:float array ->
  gy:float array ->
  gz:float array ->
  unit ->
  t

val spread :
  ?stats:Gridding_stats.t ->
  ?simd:bool ->
  t ->
  Numerics.Cvec.t ->
  Numerics.Cvec.t
(** [spread t values] grids [values] (length {!length}) onto a fresh
    [g^dims] grid by replaying the compiled arrays. Bit-identical to
    {!Gridding_serial} on the same inputs.

    [simd] (default [false]) replays through the {!Simd} C kernel when
    SIMD dispatch is active; the kernel preserves the scalar op order, so
    the result stays bit-identical on this path (documented contract:
    4 ULP). The flag is a no-op when [Simd.enabled ()] is false. *)

val spread_into :
  ?stats:Gridding_stats.t ->
  ?simd:bool ->
  t ->
  Numerics.Cvec.t ->
  Numerics.Cvec.t ->
  unit
(** [spread_into t values out] — {!spread} into a caller-provided [g^dims]
    buffer ([out] is zeroed first), so a serving loop can reuse one pooled
    oversampled grid across requests instead of allocating per transform.
    Bitwise the same result as {!spread}. *)

val gather :
  ?stats:Gridding_stats.t ->
  ?simd:bool ->
  t ->
  Numerics.Cvec.t ->
  Numerics.Cvec.t
(** [gather t grid] interpolates the [g^dims] grid at the compiled sample
    locations (the forward-transform regridding step); adjoint of
    {!spread} by construction, since both replay the same weights.
    [simd] as in {!spread} (per-sample accumulation order preserved;
    4-ULP contract). *)

(** {1 Region-sharded parallel replay}

    Adjoint replay is a scatter, so sample-range sharding would race on
    shared grid cells. {!partition} instead shards the {e grid}: the
    [g^(dims-1)] grid rows (a row is [g] consecutive flattened cells — a
    y-row in 2D, a (z,y)-row in 3D) are cut into contiguous bands, one
    per shard, with cuts placed by greedy entry-mass balancing over a
    per-row histogram. Each shard holds exactly the plan entries landing
    in its band, in plan (sample, window-point) order; every grid cell
    has one exclusive writer and receives its contributions in serial
    order, so parallel replay is bit-identical to {!spread} for every
    shard count — no atomics, no privatized grids to merge.

    The partition is built once per (plan, shard count) and cached inside
    the plan under a mutex, so repeated parallel replays (CG iterations,
    service requests on a cached plan) pay the bucketing pass once. *)

type partition
(** A region-ownership decomposition of a plan's entry stream. *)

val partition : t -> shards:int -> partition
(** [partition t ~shards] returns the cached partition for [shards]
    (clamped to the row count), building and caching it on first use.
    Thread-safe: callers on different domains sharing one plan get the
    same partition. Raises [Invalid_argument] if [shards < 1]. *)

val partition_requested : partition -> int
(** The shard count the partition was requested with (pre-clamping). *)

val partition_shards : partition -> int
(** Actual shard count: [min requested rows], at least 1. *)

val partition_rows : partition -> int
(** Total grid rows partitioned: [g^(dims-1)]. *)

val shard_rows : partition -> int -> int * int
(** [shard_rows p s] is shard [s]'s owned row band [(lo, hi)), with
    [hi] exclusive. Bands tile [0, rows) in order. *)

val shard_length : partition -> int -> int
(** Number of plan entries bucketed into shard [s]; shard lengths sum to
    [length t * points_per_sample t]. *)

val shard_entry : partition -> int -> int -> int * int * float
(** [shard_entry p s e] is entry [e] of shard [s] as
    [(sample, flat grid index, weight)] — introspection for the
    coverage/ownership property tests. *)

val spread_parallel :
  ?stats:Gridding_stats.t ->
  ?pool:Runtime.Pool.t ->
  ?simd:bool ->
  t ->
  Numerics.Cvec.t ->
  Numerics.Cvec.t
(** [spread_parallel ?pool t values] — {!spread} with the shards of the
    cached partition replayed across [pool]'s domains. Bit-identical to
    {!spread} for every pool size. Without a pool (or with a pool of
    size 1, or a shut-down pool) replays serially without building a
    partition. [simd] replays each shard's entry stream through the
    {!Simd.spread_shard} kernel (strictly sequential per entry, so the
    single-writer bit-identity argument is untouched). *)

val spread_parallel_into :
  ?stats:Gridding_stats.t ->
  ?pool:Runtime.Pool.t ->
  ?simd:bool ->
  t ->
  Numerics.Cvec.t ->
  Numerics.Cvec.t ->
  unit
(** {!spread_parallel} into a caller-provided buffer (zeroed first), the
    parallel analogue of {!spread_into}. *)

val gather_parallel :
  ?stats:Gridding_stats.t ->
  ?pool:Runtime.Pool.t ->
  ?simd:bool ->
  t ->
  Numerics.Cvec.t ->
  Numerics.Cvec.t
(** [gather_parallel ?pool t grid] — {!gather} with the sample range
    chunked across [pool] ({!Runtime.Pool.adaptive_chunk} granularity).
    Each sample owns its output slot, so this is race-free and
    bit-identical to {!gather} by construction. *)
