(** Compiled sample plans: the slice-and-dice decomposition done once.

    A compiled plan is the fixed part of gridding a particular trajectory —
    for every sample, the flattened grid indices of its [w^dims]
    interpolation-window points and the finished scalar weight at each —
    precomputed into two flat arrays. {!spread} and {!gather} then replay
    those arrays with a pure streaming multiply-accumulate loop: no
    boundary checks, no window evaluation, no tile arithmetic.

    Iterative reconstruction (CG, Toeplitz kernel construction) applies the
    same operator on the same coordinates tens of times; compiling once and
    replaying moves the whole decomposition cost out of the iteration loop.
    The replay enumeration order matches the serial engine exactly, so
    replayed transforms are bit-identical to the serial (and slice) engine
    results.

    Stats accounting splits along the same line: compilation charges
    [boundary_checks] (the caller-supplied select cost of the engine whose
    decomposition is being amortised) and [window_evals]; replay charges
    only [samples_processed] and [grid_accumulates]. The decomposition
    counters of a stats record therefore advance exactly once per compiled
    plan no matter how many times it is replayed. *)

type t

val dims : t -> int
val length : t -> int
(** Number of samples the plan was compiled for. *)

val grid : t -> int
(** Oversampled grid size [g] per dimension. *)

val points_per_sample : t -> int
(** [w^dims]: window points recorded per sample. *)

val grid_length : t -> int
(** [g^dims]: flattened length of the grid {!spread} produces. *)

val memory_words : t -> int
(** Approximate footprint of the compiled arrays, in words. *)

val compile_2d :
  ?stats:Gridding_stats.t ->
  ?select_checks:int ->
  table:Numerics.Weight_table.t ->
  g:int ->
  gx:float array ->
  gy:float array ->
  unit ->
  t
(** Compile the decomposition of a 2D trajectory. [select_checks] is the
    number of boundary checks the amortised engine would have performed for
    one gridding pass (e.g. [t^2 * m] for a slice engine with tile [t]);
    it is charged to [stats] here, once. *)

val compile_3d :
  ?stats:Gridding_stats.t ->
  ?select_checks:int ->
  table:Numerics.Weight_table.t ->
  g:int ->
  gx:float array ->
  gy:float array ->
  gz:float array ->
  unit ->
  t

val spread : ?stats:Gridding_stats.t -> t -> Numerics.Cvec.t -> Numerics.Cvec.t
(** [spread t values] grids [values] (length {!length}) onto a fresh
    [g^dims] grid by replaying the compiled arrays. Bit-identical to
    {!Gridding_serial} on the same inputs. *)

val spread_into :
  ?stats:Gridding_stats.t -> t -> Numerics.Cvec.t -> Numerics.Cvec.t -> unit
(** [spread_into t values out] — {!spread} into a caller-provided [g^dims]
    buffer ([out] is zeroed first), so a serving loop can reuse one pooled
    oversampled grid across requests instead of allocating per transform.
    Bitwise the same result as {!spread}. *)

val gather : ?stats:Gridding_stats.t -> t -> Numerics.Cvec.t -> Numerics.Cvec.t
(** [gather t grid] interpolates the [g^dims] grid at the compiled sample
    locations (the forward-transform regridding step); adjoint of
    {!spread} by construction, since both replay the same weights. *)
