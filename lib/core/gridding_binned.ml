module Cvec = Numerics.Cvec
module Wt = Numerics.Weight_table

(* Same-module hot-path primitives; see {!Gridding_serial} for the
   [-opaque] / cross-module-inlining rationale. *)

module A1 = Bigarray.Array1

let[@inline] get_re (v : Cvec.t) k = A1.unsafe_get v (2 * k)
let[@inline] get_im (v : Cvec.t) k = A1.unsafe_get v ((2 * k) + 1)

let[@inline] acc_parts (v : Cvec.t) k re im =
  let j = 2 * k in
  A1.unsafe_set v j (A1.unsafe_get v j +. re);
  A1.unsafe_set v (j + 1) (A1.unsafe_get v (j + 1) +. im)

let[@inline] window_start w u =
  int_of_float (Float.floor (u +. (float_of_int w /. 2.0))) - w + 1

let[@inline] wrap g k =
  let r = k mod g in
  if r < 0 then r + g else r

let[@inline] lut tbl tlen lf d =
  let a = int_of_float (Float.round (Float.abs d *. lf)) in
  if a >= tlen then 0.0 else Array.unsafe_get tbl a

let dedup_sorted l = List.sort_uniq compare l

(* Wrapped tile indices covered by the window of a 1D coordinate. *)
let tiles_of_coord ~w ~bin ~g u =
  let n_tiles = g / bin in
  let start = Coord.window_start ~w u in
  let first_tile =
    if start >= 0 then start / bin else ((start + 1) / bin) - 1
  in
  let last = start + w - 1 in
  let last_tile = if last >= 0 then last / bin else ((last + 1) / bin) - 1 in
  let rec collect t acc =
    if t > last_tile then List.rev acc
    else collect (t + 1) (Coord.wrap ~g:n_tiles t :: acc)
  in
  dedup_sorted (collect first_tile [])

let bins_of_sample_2d ~w ~bin ~g ux uy =
  let tx = tiles_of_coord ~w ~bin ~g ux and ty = tiles_of_coord ~w ~bin ~g uy in
  List.concat_map (fun y -> List.map (fun x -> (x, y)) tx) ty

let duplication_factor ~w ~bin ~g ~coords =
  let m = Array.length coords in
  if m = 0 then 1.0
  else begin
    let total = ref 0 in
    Array.iter
      (fun u -> total := !total + List.length (tiles_of_coord ~w ~bin ~g u))
      coords;
    float_of_int !total /. float_of_int m
  end

let check_params name ~g ~bin ~w =
  if bin < 1 then invalid_arg (name ^ ": bin must be >= 1");
  if g mod bin <> 0 then invalid_arg (name ^ ": bin must divide g");
  if w > g then invalid_arg (name ^ ": window wider than grid")

(* The presort pass necessarily allocates (the bins themselves are the
   Impatient-class duplication cost the paper measures); the spreading pass
   below is allocation-free per sample: raw re/im accumulates, inline
   window enumeration, counters in locals. *)

let grid_1d ?stats ~table ~g ~bin ~coords values =
  let w = Wt.width table in
  check_params "Gridding_binned.grid_1d" ~g ~bin ~w;
  let m = Array.length coords in
  if Cvec.length values <> m then
    invalid_arg "Gridding_binned.grid_1d: coords/values length mismatch";
  let tbl = Wt.data table and lf = float_of_int (Wt.oversampling table) in
  let tlen = Array.length tbl in
  let n_tiles = g / bin in
  let bins = Array.make n_tiles [] in
  let presort = ref 0 in
  (* Presort pass: duplicate each sample into every bin it touches. *)
  for j = m - 1 downto 0 do
    List.iter
      (fun t ->
        bins.(t) <- j :: bins.(t);
        incr presort)
      (tiles_of_coord ~w ~bin ~g coords.(j))
  done;
  let out = Cvec.create g in
  let processed = ref 0 and hits = ref 0 in
  for t = 0 to n_tiles - 1 do
    List.iter
      (fun j ->
        incr processed;
        let u = Array.unsafe_get coords j in
        let vr = get_re values j and vi = get_im values j in
        let start = window_start w u in
        for i = 0 to w - 1 do
          let ku = start + i in
          let k = wrap g ku in
          if k / bin = t then begin
            incr hits;
            let weight = lut tbl tlen lf (float_of_int ku -. u) in
            acc_parts out k (weight *. vr) (weight *. vi)
          end
        done)
      bins.(t)
  done;
  (* Output-parallel model inside the tile: every tile point checks each
     (duplicated) sample. *)
  Gridding_stats.record stats ~presort:!presort ~samples:!processed
    ~checks:(bin * !processed)
    ~evals:!hits ~accums:!hits ();
  out

let grid_2d ?stats ~table ~g ~bin ~gx ~gy values =
  let w = Wt.width table in
  check_params "Gridding_binned.grid_2d" ~g ~bin ~w;
  let m = Array.length gx in
  if Array.length gy <> m || Cvec.length values <> m then
    invalid_arg "Gridding_binned.grid_2d: coords/values length mismatch";
  let tbl = Wt.data table and lf = float_of_int (Wt.oversampling table) in
  let tlen = Array.length tbl in
  let n_tiles = g / bin in
  let bins = Array.make (n_tiles * n_tiles) [] in
  let presort = ref 0 in
  for j = m - 1 downto 0 do
    List.iter
      (fun (tx, ty) ->
        let b = (ty * n_tiles) + tx in
        bins.(b) <- j :: bins.(b);
        incr presort)
      (bins_of_sample_2d ~w ~bin ~g gx.(j) gy.(j))
  done;
  let out = Cvec.create (g * g) in
  let processed = ref 0 and hits = ref 0 in
  for ty = 0 to n_tiles - 1 do
    for tx = 0 to n_tiles - 1 do
      List.iter
        (fun j ->
          incr processed;
          let vr = get_re values j and vi = get_im values j in
          let uy = Array.unsafe_get gy j and ux = Array.unsafe_get gx j in
          let sy = window_start w uy and sx = window_start w ux in
          for iy = 0 to w - 1 do
            let kyu = sy + iy in
            let ky = wrap g kyu in
            if ky / bin = ty then begin
              let wy = lut tbl tlen lf (float_of_int kyu -. uy) in
              let row = ky * g in
              for ix = 0 to w - 1 do
                let kxu = sx + ix in
                let kx = wrap g kxu in
                if kx / bin = tx then begin
                  incr hits;
                  let wx = lut tbl tlen lf (float_of_int kxu -. ux) in
                  let weight = wx *. wy in
                  acc_parts out (row + kx) (weight *. vr) (weight *. vi)
                end
              done
            end
          done)
        bins.((ty * n_tiles) + tx)
    done
  done;
  Gridding_stats.record stats ~presort:!presort ~samples:!processed
    ~checks:(bin * bin * !processed)
    ~evals:(2 * !hits) ~accums:!hits ();
  out
