module Cvec = Numerics.Cvec
module C = Numerics.Complexd
module Wt = Numerics.Weight_table

let bump stats f = match stats with None -> () | Some s -> f s

let dedup_sorted l = List.sort_uniq compare l

(* Wrapped tile indices covered by the window of a 1D coordinate. *)
let tiles_of_coord ~w ~bin ~g u =
  let n_tiles = g / bin in
  let start = Coord.window_start ~w u in
  let first_tile =
    if start >= 0 then start / bin else ((start + 1) / bin) - 1
  in
  let last = start + w - 1 in
  let last_tile = if last >= 0 then last / bin else ((last + 1) / bin) - 1 in
  let rec collect t acc =
    if t > last_tile then List.rev acc
    else collect (t + 1) (Coord.wrap ~g:n_tiles t :: acc)
  in
  dedup_sorted (collect first_tile [])

let bins_of_sample_2d ~w ~bin ~g ux uy =
  let tx = tiles_of_coord ~w ~bin ~g ux and ty = tiles_of_coord ~w ~bin ~g uy in
  List.concat_map (fun y -> List.map (fun x -> (x, y)) tx) ty

let duplication_factor ~w ~bin ~g ~coords =
  let m = Array.length coords in
  if m = 0 then 1.0
  else begin
    let total = ref 0 in
    Array.iter
      (fun u -> total := !total + List.length (tiles_of_coord ~w ~bin ~g u))
      coords;
    float_of_int !total /. float_of_int m
  end

let check_params name ~g ~bin ~w =
  if bin < 1 then invalid_arg (name ^ ": bin must be >= 1");
  if g mod bin <> 0 then invalid_arg (name ^ ": bin must divide g");
  if w > g then invalid_arg (name ^ ": window wider than grid")

let grid_1d ?stats ~table ~g ~bin ~coords values =
  let w = Wt.width table in
  check_params "Gridding_binned.grid_1d" ~g ~bin ~w;
  let m = Array.length coords in
  if Cvec.length values <> m then
    invalid_arg "Gridding_binned.grid_1d: coords/values length mismatch";
  let n_tiles = g / bin in
  let bins = Array.make n_tiles [] in
  (* Presort pass: duplicate each sample into every bin it touches. *)
  for j = m - 1 downto 0 do
    List.iter
      (fun t ->
        bins.(t) <- j :: bins.(t);
        bump stats (fun s ->
            s.Gridding_stats.presort_ops <- s.Gridding_stats.presort_ops + 1))
      (tiles_of_coord ~w ~bin ~g coords.(j))
  done;
  let out = Cvec.create g in
  for t = 0 to n_tiles - 1 do
    List.iter
      (fun j ->
        bump stats (fun s ->
            s.Gridding_stats.samples_processed <-
              s.Gridding_stats.samples_processed + 1;
            (* Output-parallel model inside the tile: every tile point
               checks this sample. *)
            s.Gridding_stats.boundary_checks <-
              s.Gridding_stats.boundary_checks + bin);
        let u = coords.(j) and v = Cvec.get values j in
        Coord.iter_window ~w ~g u (fun ~k ~dist ->
            if k / bin = t then begin
              bump stats (fun s ->
                  s.Gridding_stats.window_evals <-
                    s.Gridding_stats.window_evals + 1;
                  s.Gridding_stats.grid_accumulates <-
                    s.Gridding_stats.grid_accumulates + 1);
              Cvec.accumulate out k (C.scale (Wt.lookup table dist) v)
            end))
      bins.(t)
  done;
  out

let grid_2d ?stats ~table ~g ~bin ~gx ~gy values =
  let w = Wt.width table in
  check_params "Gridding_binned.grid_2d" ~g ~bin ~w;
  let m = Array.length gx in
  if Array.length gy <> m || Cvec.length values <> m then
    invalid_arg "Gridding_binned.grid_2d: coords/values length mismatch";
  let n_tiles = g / bin in
  let bins = Array.make (n_tiles * n_tiles) [] in
  for j = m - 1 downto 0 do
    List.iter
      (fun (tx, ty) ->
        let b = (ty * n_tiles) + tx in
        bins.(b) <- j :: bins.(b);
        bump stats (fun s ->
            s.Gridding_stats.presort_ops <- s.Gridding_stats.presort_ops + 1))
      (bins_of_sample_2d ~w ~bin ~g gx.(j) gy.(j))
  done;
  let out = Cvec.create (g * g) in
  for ty = 0 to n_tiles - 1 do
    for tx = 0 to n_tiles - 1 do
      List.iter
        (fun j ->
          bump stats (fun s ->
              s.Gridding_stats.samples_processed <-
                s.Gridding_stats.samples_processed + 1;
              s.Gridding_stats.boundary_checks <-
                s.Gridding_stats.boundary_checks + (bin * bin));
          let v = Cvec.get values j in
          Coord.iter_window ~w ~g gy.(j) (fun ~k:ky ~dist:dy ->
              if ky / bin = ty then begin
                let wy = Wt.lookup table dy in
                Coord.iter_window ~w ~g gx.(j) (fun ~k:kx ~dist:dx ->
                    if kx / bin = tx then begin
                      let wx = Wt.lookup table dx in
                      bump stats (fun s ->
                          s.Gridding_stats.window_evals <-
                            s.Gridding_stats.window_evals + 2;
                          s.Gridding_stats.grid_accumulates <-
                            s.Gridding_stats.grid_accumulates + 1);
                      Cvec.accumulate out ((ky * g) + kx)
                        (C.scale (wx *. wy) v)
                    end)
              end))
        bins.((ty * n_tiles) + tx)
    done
  done;
  out
