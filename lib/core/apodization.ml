module Cvec = Numerics.Cvec
module C = Numerics.Complexd

let factors ~kernel ~width ~n ~g =
  let f =
    Array.init n (fun i ->
        let freq = float_of_int (i - (n / 2)) /. float_of_int g in
        Numerics.Window.ft kernel ~width freq)
  in
  Array.iteri
    (fun i v ->
      if Float.abs v < 1e-12 then
        failwith
          (Printf.sprintf
             "Apodization.factors: psi_hat vanishes at index %d (kernel too \
              narrow for this oversampling)"
             i))
    f;
  f

let divide_2d ~factors ~n image =
  if Cvec.length image <> n * n then
    invalid_arg "Apodization: image size mismatch";
  if Array.length factors <> n then
    invalid_arg "Apodization: factors length mismatch";
  Cvec.init (n * n) (fun idx ->
      let ix = idx mod n and iy = idx / n in
      C.scale (1.0 /. (factors.(ix) *. factors.(iy))) (Cvec.get image idx))

let deapodize_2d = divide_2d
let apodize_2d = divide_2d
