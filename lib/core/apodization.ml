module Cvec = Numerics.Cvec
module A1 = Bigarray.Array1

let factors ~kernel ~width ~n ~g =
  let f =
    Array.init n (fun i ->
        let freq = float_of_int (i - (n / 2)) /. float_of_int g in
        Numerics.Window.ft kernel ~width freq)
  in
  Array.iteri
    (fun i v ->
      if Float.abs v < 1e-12 then
        failwith
          (Printf.sprintf
             "Apodization.factors: psi_hat vanishes at index %d (kernel too \
              narrow for this oversampling)"
             i))
    f;
  f

(* The pointwise scale shared by every deapodization call site: one
   contiguous run of [len] complex elements divided by the separable
   factor product [(f.(f_off+i) *. fy) *. fz]. The left-associated
   product is the rounding order of the historical 3D loops; 2D callers
   pass [fz = 1.0], which multiplies exactly, so their results are
   bit-identical to the old [1.0 /. (fx *. fy)] form. Dispatches to the
   {!Simd} kernel when active (same op order, 4-ULP contract). *)
let scale_row_into ~dst ~dst_off ~src ~src_off ~f ~f_off ~len ~fy ~fz =
  if
    len < 0 || dst_off < 0 || src_off < 0 || f_off < 0
    || dst_off + len > Cvec.length dst
    || src_off + len > Cvec.length src
    || f_off + len > Array.length f
  then invalid_arg "Apodization.scale_row_into: range out of bounds";
  if Simd.enabled () then Simd.deapod_row dst dst_off src src_off f f_off len fy fz
  else
    for i = 0 to len - 1 do
      let s = 1.0 /. ((Array.unsafe_get f (f_off + i) *. fy) *. fz) in
      let d = 2 * (dst_off + i) and q = 2 * (src_off + i) in
      A1.unsafe_set dst d (s *. A1.unsafe_get src q);
      A1.unsafe_set dst (d + 1) (s *. A1.unsafe_get src (q + 1))
    done

let divide_2d ~factors ~n image =
  if Cvec.length image <> n * n then
    invalid_arg "Apodization: image size mismatch";
  if Array.length factors <> n then
    invalid_arg "Apodization: factors length mismatch";
  let out = Cvec.create (n * n) in
  for iy = 0 to n - 1 do
    scale_row_into ~dst:out ~dst_off:(iy * n) ~src:image ~src_off:(iy * n)
      ~f:factors ~f_off:0 ~len:n ~fy:factors.(iy) ~fz:1.0
  done;
  out

let deapodize_2d = divide_2d
let apodize_2d = divide_2d
