(** Min-max optimal interpolation (Fessler & Sutton 2003) — the
    interpolator behind MIRT, the paper's CPU baseline.

    Instead of evaluating a fixed window function, the min-max approach
    solves, per sample, for the [w] complex coefficients that best
    reproduce the ideal exponential [e^{2 pi i u x / g}] over the image
    support [x in [-n/2, n/2)] from the exponentials of the window's
    uniform grid points — the least-squares / min-max optimal gridding
    coefficients [c = T^{-1} r] with

    [T_jl = sum_x e^{2 pi i (k_l - k_j) x / g}],
    [r_j  = sum_x e^{2 pi i (u - k_j) x / g}]

    (closed-form Dirichlet sums). 2D uses the separable product of 1D
    coefficient vectors, as MIRT does. Because the coefficients target the
    ideal exponential directly, the adjoint pipeline needs {e no}
    de-apodization step.

    Scaling factors [s(x)] matter enormously (F&S Sec. IV): with uniform
    scaling ([s = 1], the default) min-max is mediocre; with a good smooth
    scaling — we provide the Kaiser-Bessel spectrum, which is also what the
    de-apodization step divides by — it reaches or beats the tabulated
    Kaiser-Bessel interpolator. The fit then approximates
    [s(x) e^{2 pi i u x/g}] by [sum_j c_j s(x) e^{2 pi i k_j x / g}] and
    the adjoint divides the cropped image by [s].

    This is the "exact" (solve-per-sample) variant — slower than table
    lookup but the accuracy reference among [w]-point interpolators; MIRT
    amortises it with precomputed tables. *)

type scaling =
  | Uniform  (** s(x) = 1: closed-form Dirichlet systems *)
  | Kaiser_bessel_scaling
      (** s(x) = psi_hat_KB(x/g) with the Beatty beta for (w, g/n) *)

val coefficients :
  ?scaling:scaling -> n:int -> g:int -> w:int -> float -> Numerics.Complexd.t array
(** [coefficients ~n ~g ~w u] — the [w] coefficients for the canonical
    window points of coordinate [u] (same enumeration as
    {!Coord.iter_window}). Default scaling: [Uniform]. *)

val grid_2d :
  ?scaling:scaling ->
  n:int ->
  g:int ->
  w:int ->
  gx:float array ->
  gy:float array ->
  Numerics.Cvec.t ->
  Numerics.Cvec.t
(** Spread with per-sample min-max coefficients onto a [g x g] grid. *)

val adjoint_2d :
  ?scaling:scaling ->
  n:int ->
  g:int ->
  w:int ->
  gx:float array ->
  gy:float array ->
  Numerics.Cvec.t ->
  Numerics.Cvec.t
(** Full adjoint NuFFT with min-max interpolation: spread, inverse-FFT,
    crop, divide by the scaling factors (a no-op for [Uniform]). Returns
    the [n x n] centred image. *)

val worst_case_error :
  ?scaling:scaling -> n:int -> g:int -> w:int -> float -> float
(** The residual max-error of the coefficient fit for a sample at [u]:
    [max_x |e^{2 pi i u x/g} - sum_j c_j e^{2 pi i k_j x/g}|] — the
    quantity min-max interpolation minimises; decreases with [w] and with
    the oversampling margin [g/n]. *)
