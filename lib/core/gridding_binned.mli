(** Binned (geometrically tiled) gridding — the Impatient-class optimisation
    (paper §II-C, Fig 3a).

    The grid is broken into square tiles of [bin] points per side; a presort
    pass assigns each sample to the bin of every tile its window touches
    (samples near tile edges are duplicated into up to four bins in 2D).
    Tile–bin pairs are then processed with output-driven parallelism inside
    the tile: each of the tile's [bin^d] points checks every sample of the
    bin, so the boundary-check count is [bin^d * sum_of_bin_sizes] — far
    fewer than naive output parallelism but inflated by duplicates, and paid
    for with the presort pass that Slice-and-Dice eliminates. *)

val duplication_factor :
  w:int -> bin:int -> g:int -> coords:float array -> float
(** Average number of bins each 1D coordinate stream sample lands in —
    the presort duplication overhead (1.0 = no duplicates). *)

val grid_1d :
  ?stats:Gridding_stats.t ->
  table:Numerics.Weight_table.t ->
  g:int ->
  bin:int ->
  coords:float array ->
  Numerics.Cvec.t ->
  Numerics.Cvec.t

val grid_2d :
  ?stats:Gridding_stats.t ->
  table:Numerics.Weight_table.t ->
  g:int ->
  bin:int ->
  gx:float array ->
  gy:float array ->
  Numerics.Cvec.t ->
  Numerics.Cvec.t

val bins_of_sample_2d :
  w:int -> bin:int -> g:int -> float -> float -> (int * int) list
(** The distinct (tile_x, tile_y) bins a 2D sample is sorted into; exposed
    for the Fig 3 work-accounting experiment and the GPU-simulator kernel. *)
