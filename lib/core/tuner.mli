(** Backend auto-tuner (cuFINUFFT's "heuristic method selection", done
    empirically): on first sight of a problem-shape key, run short
    interleaved trials of every candidate spreading strategy over the
    request's actual coordinates and cache the winner in a process-wide
    table. Later requests with the same shape reuse the cached choice at
    zero cost.

    The candidate names are registry backend names ({!Operator.names}):
    ["serial"] and ["slice-parallel"] run the direct gridding engines,
    ["slice"] / ["replay-parallel"] / ["replay-simd"] the compiled-replay
    path (serial, region-sharded, SIMD). Parallel candidates are only
    trialled when a pool with at least two domains is supplied; the SIMD
    candidate only when {!Simd.enabled}.

    Controlled by the [JIGSAW_TUNE] environment variable, re-read on
    every call so tests and operators can flip it at runtime:
    ["off"] disables tuning ({!resolve} returns its [~default] untouched
    — bit-identical behaviour to a build without the tuner), ["auto"]
    (or unset) enables it, and any other value forces that backend name
    unconditionally. Telemetry: [tuner.trial] counts timed candidate
    runs, [tuner.hit] cache hits. *)

type mode = Off | Auto | Forced of string

val mode : unit -> mode
(** Parse [JIGSAW_TUNE] (current process environment, every call). *)

val mode_name : unit -> string
(** ["off"], ["auto"], or the forced backend name. *)

(** Cache key: problems that share a key share a winner. [tol_bucket] is
    [round (log10 tol)] (0 when no tolerance was requested), [m_bucket]
    the power-of-two band of the trajectory size ([floor (log2 m)]), and
    [domains] the pool size (0 when serial) — so a 2x change in sample
    count or a different worker count re-tunes, but jitter within a band
    does not. *)
type key = {
  dims : int;
  n : int;
  tol_bucket : int;
  m_bucket : int;
  domains : int;
}

val key_of :
  dims:int -> n:int -> tol:float option -> m:int -> domains:int -> key

type trial = { engine : string; samples_per_sec : float }

type choice = {
  backend : string;  (** winning registry backend name *)
  sps : float;  (** its measured samples/second *)
  trials : trial list;  (** every candidate's measurement, for reporting *)
}

val candidate_names : ?pool:Runtime.Pool.t -> unit -> string list
(** The candidates a trial run with this pool would measure. *)

val choose :
  ?pool:Runtime.Pool.t ->
  ?tol:float ->
  ?family:Numerics.Window.family ->
  n:int ->
  coords:Sample.t ->
  unit ->
  choice
(** Cached winner for the problem shape of [coords] (its [g] must equal
    [round (sigma * n)] for the sigma implied by [g / n]); runs the
    trials under the cache lock on a miss. Ignores [JIGSAW_TUNE]. *)

val resolve :
  ?pool:Runtime.Pool.t ->
  ?tol:float ->
  ?family:Numerics.Window.family ->
  default:string ->
  n:int ->
  coords:Sample.t ->
  unit ->
  string
(** The backend name to use, honouring [JIGSAW_TUNE]: [Off] returns
    [default] without measuring anything, [Forced e] returns [e], [Auto]
    returns [(choose ...).backend]. *)

val cached : unit -> (key * choice) list
(** Snapshot of the process-wide cache (for gauges and bench reports). *)

val size : unit -> int
(** Number of cached keys. *)

val reset : unit -> unit
(** Drop every cached choice (tests). *)
