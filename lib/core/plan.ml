module Cvec = Numerics.Cvec
module C = Numerics.Complexd
module Wt = Numerics.Weight_table

type cached = { caxes : float array array; splan : Sample_plan.t }

let c_cache_hit = Telemetry.Counter.make "sample_plan.cache_hit"
let c_cache_miss = Telemetry.Counter.make "sample_plan.cache_miss"

type plan = {
  n : int;
  sigma : float;
  g : int;
  w : int;
  l : int;
  tol : float option;
  kernel : Numerics.Window.t;
  table : Wt.t;
  deapod : float array;
  engine : Gridding.engine;
  pool : Runtime.Pool.t option;
  simd : bool;
  mutable cache : cached option;
}

module W = Numerics.Window

(* Geometry resolution shared with {!Operator.context} so an operator
   context and the plan it builds always agree on (kernel, w, l). With
   [tol], kernel + width follow the family's width<->accuracy law and the
   LUT oversampling scales so table rounding stays below the request;
   otherwise explicit knobs win, with [w] defaulting to the Beatty-derived
   {!Numerics.Window.default_width} (= 6 at sigma = 2) rather than a
   constant that silently loses accuracy as sigma drops. *)
let resolve_geometry ?tol ?family ?kernel ?w ?l ~sigma () =
  if sigma <= 1.0 then invalid_arg "Plan.make: sigma must be > 1";
  match tol with
  | Some t ->
      if kernel <> None then
        invalid_arg "Plan.make: tol and kernel are mutually exclusive";
      if w <> None then invalid_arg "Plan.make: tol and w are mutually exclusive";
      let kernel, w = W.for_tolerance ?family ~tol:t ~sigma () in
      let l =
        match l with Some l -> l | None -> W.lut_for_tolerance ~tol:t
      in
      (Some t, kernel, w, l)
  | None ->
      let w = match w with Some w -> w | None -> W.default_width ~sigma in
      if w < 2 then invalid_arg "Plan.make: w must be >= 2";
      let kernel =
        match kernel with
        | Some k -> k
        | None -> (
            match family with
            | Some W.ES -> W.default_exp_semicircle ~width:w ~sigma
            | Some W.KB | None -> W.default_kaiser_bessel ~width:w ~sigma)
      in
      (None, kernel, w, Option.value l ~default:512)

let make ?tol ?family ?kernel ?w ?(sigma = 2.0) ?l ?(engine = Gridding.Serial)
    ?(table_precision = Wt.Double) ?pool ?(simd = false) ~n () =
  if n < 2 then invalid_arg "Plan.make: n must be >= 2";
  if sigma <= 1.0 then invalid_arg "Plan.make: sigma must be > 1";
  let tol, kernel, w, l = resolve_geometry ?tol ?family ?kernel ?w ?l ~sigma () in
  if l < 1 then invalid_arg "Plan.make: l must be >= 1";
  let g = int_of_float (Float.round (sigma *. float_of_int n)) in
  if w > g then invalid_arg "Plan.make: window wider than oversampled grid";
  (match engine with
  | Gridding.Slice_and_dice t | Gridding.Slice_parallel t ->
      Coord.check_tiling ~t ~g ~w
  | Gridding.Serial | Gridding.Output_parallel | Gridding.Binned _ -> ());
  let sp = Telemetry.span_begin ~cat:"plan" "plan.make" in
  let sp_table = Telemetry.span_begin ~cat:"plan" "plan.table" in
  let table = Wt.make ~precision:table_precision ~kernel ~width:w ~l () in
  Telemetry.span_end sp_table;
  let sp_deapod = Telemetry.span_begin ~cat:"plan" "plan.deapod" in
  let deapod = Apodization.factors ~kernel ~width:w ~n ~g in
  Telemetry.span_end sp_deapod;
  Telemetry.span_end sp;
  { n; sigma; g; w; l; tol; kernel; table; deapod; engine; pool; simd;
    cache = None }

(* The adjoint evaluates x_n = (1 / psi_hat(n/G)) * B[n mod G] where
   B = unnormalised inverse-convention DFT of the spread grid; see the
   derivation in the module documentation of {!Apodization}. *)

(* The crop/pad stages run once per transform over n^dims points. Along
   the fastest axis the wrap [Coord.wrap ~g (ix - n/2)] splits each image
   row into exactly two contiguous grid segments (g >= n always holds:
   sigma > 1): ix in [0, n/2) maps to [row + g - n/2, row + g) and
   ix in [n/2, n) maps to [row, row + n - n/2). Each segment is one
   {!Apodization.scale_row_into} call — the same arithmetic in the same
   order as the historical per-pixel loops (2D passes [fz = 1.0], an
   exact multiply), now SIMD-dispatchable and still allocation-free. The
   [_into] variants additionally let the pipeline layer reuse pooled
   output buffers. *)

let crop_deapodize_2d_into plan big image =
  let n = plan.n and g = plan.g in
  if Cvec.length big <> g * g then
    invalid_arg "Plan.crop_deapodize_2d: grid size mismatch";
  if Cvec.length image <> n * n then
    invalid_arg "Plan.crop_deapodize_2d: image size mismatch";
  let deapod = plan.deapod in
  let h = n / 2 in
  for iy = 0 to n - 1 do
    let row = Coord.wrap ~g (iy - h) * g in
    let dy = Array.unsafe_get deapod iy in
    Apodization.scale_row_into ~dst:image ~dst_off:(iy * n) ~src:big
      ~src_off:(row + g - h) ~f:deapod ~f_off:0 ~len:h ~fy:dy ~fz:1.0;
    Apodization.scale_row_into ~dst:image
      ~dst_off:((iy * n) + h)
      ~src:big ~src_off:row ~f:deapod ~f_off:h ~len:(n - h) ~fy:dy ~fz:1.0
  done

let crop_deapodize_2d plan big =
  let n = plan.n in
  let image = Cvec.create (n * n) in
  crop_deapodize_2d_into plan big image;
  image

let pad_apodize_2d plan image =
  let n = plan.n and g = plan.g in
  if Cvec.length image <> n * n then
    invalid_arg "Plan: image size mismatch";
  let big = Cvec.create (g * g) in
  let deapod = plan.deapod in
  let h = n / 2 in
  for iy = 0 to n - 1 do
    let row = Coord.wrap ~g (iy - h) * g in
    let dy = Array.unsafe_get deapod iy in
    Apodization.scale_row_into ~dst:big ~dst_off:(row + g - h) ~src:image
      ~src_off:(iy * n) ~f:deapod ~f_off:0 ~len:h ~fy:dy ~fz:1.0;
    Apodization.scale_row_into ~dst:big ~dst_off:row ~src:image
      ~src_off:((iy * n) + h)
      ~f:deapod ~f_off:h ~len:(n - h) ~fy:dy ~fz:1.0
  done;
  big

let crop_deapodize_3d_into plan big volume =
  let n = plan.n and g = plan.g in
  if Cvec.length big <> g * g * g then
    invalid_arg "Plan.crop_deapodize_3d: grid size mismatch";
  if Cvec.length volume <> n * n * n then
    invalid_arg "Plan.crop_deapodize_3d: volume size mismatch";
  let deapod = plan.deapod in
  let h = n / 2 in
  for iz = 0 to n - 1 do
    let pz = Coord.wrap ~g (iz - h) * g in
    let dz = Array.unsafe_get deapod iz in
    for iy = 0 to n - 1 do
      let row = (pz + Coord.wrap ~g (iy - h)) * g in
      let dy = Array.unsafe_get deapod iy in
      let dst = ((iz * n) + iy) * n in
      Apodization.scale_row_into ~dst:volume ~dst_off:dst ~src:big
        ~src_off:(row + g - h) ~f:deapod ~f_off:0 ~len:h ~fy:dy ~fz:dz;
      Apodization.scale_row_into ~dst:volume ~dst_off:(dst + h) ~src:big
        ~src_off:row ~f:deapod ~f_off:h ~len:(n - h) ~fy:dy ~fz:dz
    done
  done

let crop_deapodize_3d plan big =
  let n = plan.n in
  let volume = Cvec.create (n * n * n) in
  crop_deapodize_3d_into plan big volume;
  volume

let pad_apodize_3d plan volume =
  let n = plan.n and g = plan.g in
  if Cvec.length volume <> n * n * n then
    invalid_arg "Plan.forward_3d: volume size mismatch";
  let big = Cvec.create (g * g * g) in
  let deapod = plan.deapod in
  let h = n / 2 in
  for iz = 0 to n - 1 do
    let pz = Coord.wrap ~g (iz - h) * g in
    let dz = Array.unsafe_get deapod iz in
    for iy = 0 to n - 1 do
      let row = (pz + Coord.wrap ~g (iy - h)) * g in
      let dy = Array.unsafe_get deapod iy in
      let src = ((iz * n) + iy) * n in
      Apodization.scale_row_into ~dst:big ~dst_off:(row + g - h) ~src:volume
        ~src_off:src ~f:deapod ~f_off:0 ~len:h ~fy:dy ~fz:dz;
      Apodization.scale_row_into ~dst:big ~dst_off:row ~src:volume
        ~src_off:(src + h) ~f:deapod ~f_off:h ~len:(n - h) ~fy:dy ~fz:dz
    done
  done;
  big

let check_samples plan (s : Sample.t) =
  if s.Sample.g <> plan.g then
    invalid_arg
      (Printf.sprintf "Plan: sample set is for grid %d, plan uses %d"
         s.Sample.g plan.g)

type timings = { gridding_s : float; fft_s : float; deapod_s : float }

let now () = Unix.gettimeofday ()

let adjoint_2d_timed ?stats plan samples =
  check_samples plan samples;
  let t0 = now () in
  let grid =
    Gridding.grid_2d ?stats ?pool:plan.pool plan.engine ~table:plan.table
      ~g:plan.g ~gx:(Sample.gx samples) ~gy:(Sample.gy samples)
      samples.Sample.values
  in
  let t1 = now () in
  Fft.Fftnd.transform_2d ?pool:plan.pool Fft.Dft.Inverse ~nx:plan.g ~ny:plan.g
    grid;
  let t2 = now () in
  let image = crop_deapodize_2d plan grid in
  let t3 = now () in
  (image, { gridding_s = t1 -. t0; fft_s = t2 -. t1; deapod_s = t3 -. t2 })

let adjoint_2d ?stats plan samples = fst (adjoint_2d_timed ?stats plan samples)

let forward_2d ?stats plan ~gx ~gy image =
  let big = pad_apodize_2d plan image in
  Fft.Fftnd.transform_2d ?pool:plan.pool Fft.Dft.Forward ~nx:plan.g ~ny:plan.g
    big;
  Gridding.interp_2d ?stats ~table:plan.table ~g:plan.g ~gx ~gy big

let adjoint_1d ?stats plan ~coords values =
  let grid =
    Gridding.grid_1d ?stats ?pool:plan.pool plan.engine ~table:plan.table
      ~g:plan.g ~coords values
  in
  Fft.Fft1d.transform Fft.Dft.Inverse grid;
  let n = plan.n and g = plan.g in
  Cvec.init n (fun i ->
      let c = i - (n / 2) in
      C.scale (1.0 /. plan.deapod.(i)) (Cvec.get grid (Coord.wrap ~g c)))

let adjoint_3d_timed ?stats plan samples =
  check_samples plan samples;
  let gx = Sample.gx samples
  and gy = Sample.gy samples
  and gz = Sample.gz samples
  and values = samples.Sample.values in
  let t0 = now () in
  let grid =
    match plan.pool with
    | Some pool ->
        Gridding3d.grid_3d_parallel ?stats ~pool ~table:plan.table ~g:plan.g
          ~gx ~gy ~gz values
    | None ->
        Gridding3d.grid_3d ?stats ~table:plan.table ~g:plan.g ~gx ~gy ~gz
          values
  in
  let t1 = now () in
  Fft.Fftnd.transform_3d ?pool:plan.pool Fft.Dft.Inverse ~nx:plan.g ~ny:plan.g
    ~nz:plan.g grid;
  let t2 = now () in
  let volume = crop_deapodize_3d plan grid in
  let t3 = now () in
  (volume, { gridding_s = t1 -. t0; fft_s = t2 -. t1; deapod_s = t3 -. t2 })

let adjoint_3d ?stats plan ~gx ~gy ~gz values =
  fst
    (adjoint_3d_timed ?stats plan
       (Sample.make_3d ~g:plan.g ~gx ~gy ~gz ~values))

let forward_3d ?stats plan ~gx ~gy ~gz volume =
  let g = plan.g in
  let big = pad_apodize_3d plan volume in
  Fft.Fftnd.transform_3d ?pool:plan.pool Fft.Dft.Forward ~nx:g ~ny:g ~nz:g big;
  Gridding3d.interp_3d ?stats ~table:plan.table ~g ~gx ~gy ~gz big

let adjoint_timed ?stats plan samples =
  match Sample.dims samples with
  | 2 -> adjoint_2d_timed ?stats plan samples
  | 3 -> adjoint_3d_timed ?stats plan samples
  | d ->
      invalid_arg
        (Printf.sprintf "Plan.adjoint: unsupported dimensionality %d" d)

let adjoint ?stats plan samples = fst (adjoint_timed ?stats plan samples)

let forward ?stats plan ~coords image =
  check_samples plan coords;
  match Sample.dims coords with
  | 2 ->
      forward_2d ?stats plan ~gx:(Sample.gx coords) ~gy:(Sample.gy coords)
        image
  | 3 ->
      forward_3d ?stats plan ~gx:(Sample.gx coords) ~gy:(Sample.gy coords)
        ~gz:(Sample.gz coords) image
  | d ->
      invalid_arg
        (Printf.sprintf "Plan.forward: unsupported dimensionality %d" d)

let gridding_fraction t =
  let total = t.gridding_s +. t.fft_s +. t.deapod_s in
  if total <= 0.0 then 0.0 else t.gridding_s /. total

(* Compiled sample plans: one (engine x bound coordinates) decomposition,
   replayed by every subsequent transform. The cache key is the physical
   identity of the coordinate arrays — [Sample.with_values] preserves them,
   so the forward/adjoint ping-pong of a CG solve always hits. *)

let rec pow b e = if e = 0 then 1 else b * pow b (e - 1)

(* Boundary-check cost of one gridding pass of [plan.engine], charged once
   at compile time in place of the per-iteration select stage it replaces.
   The binned model counts per original sample (duplication ignored). *)
let select_checks plan ~dims ~m =
  match plan.engine with
  | Gridding.Serial -> 0
  | Gridding.Output_parallel -> pow plan.g dims * m
  | Gridding.Binned b -> pow b dims * m
  | Gridding.Slice_and_dice t | Gridding.Slice_parallel t -> pow t dims * m

let coords_match caxes (coords : float array array) =
  Array.length caxes = Array.length coords
  &&
  let ok = ref true in
  Array.iteri (fun d a -> if not (a == coords.(d)) then ok := false) caxes;
  !ok

let compiled ?stats plan (samples : Sample.t) =
  check_samples plan samples;
  match plan.cache with
  | Some c when coords_match c.caxes samples.Sample.coords ->
      Telemetry.Counter.incr c_cache_hit;
      c.splan
  | _ ->
      Telemetry.Counter.incr c_cache_miss;
      let sp_compile = Telemetry.span_begin ~cat:"plan" "plan.compile" in
      let dims = Sample.dims samples in
      let m = Sample.length samples in
      let select_checks = select_checks plan ~dims ~m in
      let splan =
        match dims with
        | 2 ->
            Sample_plan.compile_2d ?stats ~select_checks ~table:plan.table
              ~g:plan.g ~gx:(Sample.gx samples) ~gy:(Sample.gy samples) ()
        | 3 ->
            Sample_plan.compile_3d ?stats ~select_checks ~table:plan.table
              ~g:plan.g ~gx:(Sample.gx samples) ~gy:(Sample.gy samples)
              ~gz:(Sample.gz samples) ()
        | d ->
            invalid_arg
              (Printf.sprintf "Plan.compiled: unsupported dimensionality %d" d)
      in
      plan.cache <- Some { caxes = samples.Sample.coords; splan };
      Telemetry.span_end sp_compile;
      splan

(* Replay pool resolution: an explicit [?pool] wins; otherwise the plan's
   own pool. Callers that must avoid nested submission (a service request
   already running inside the pool it would replay on) pass no pool and
   build the plan pool-less — parallel replay never falls back to the
   global pool implicitly. *)
let replay_pool ?pool plan =
  match pool with Some _ -> pool | None -> plan.pool

let adjoint_compiled_timed ?stats ?pool ?simd plan samples =
  let rpool = replay_pool ?pool plan in
  let simd = match simd with Some s -> s | None -> plan.simd in
  let t0 = now () in
  let sp = compiled ?stats plan samples in
  let span = Gridding_stats.grid_span "grid.compiled-spread" in
  let grid =
    Sample_plan.spread_parallel ?stats ?pool:rpool ~simd sp
      samples.Sample.values
  in
  Gridding_stats.end_span span;
  let t1 = now () in
  let dims = Sample.dims samples in
  (match dims with
  | 2 ->
      Fft.Fftnd.transform_2d ?pool:plan.pool Fft.Dft.Inverse ~nx:plan.g
        ~ny:plan.g grid
  | _ ->
      Fft.Fftnd.transform_3d ?pool:plan.pool Fft.Dft.Inverse ~nx:plan.g
        ~ny:plan.g ~nz:plan.g grid);
  let t2 = now () in
  let image =
    match dims with
    | 2 -> crop_deapodize_2d plan grid
    | _ -> crop_deapodize_3d plan grid
  in
  let t3 = now () in
  (image, { gridding_s = t1 -. t0; fft_s = t2 -. t1; deapod_s = t3 -. t2 })

let adjoint_compiled ?stats ?pool ?simd plan samples =
  fst (adjoint_compiled_timed ?stats ?pool ?simd plan samples)

let forward_compiled ?stats ?pool ?simd plan ~coords image =
  let rpool = replay_pool ?pool plan in
  let simd = match simd with Some s -> s | None -> plan.simd in
  let sp = compiled ?stats plan coords in
  let big =
    match Sample.dims coords with
    | 2 ->
        let big = pad_apodize_2d plan image in
        Fft.Fftnd.transform_2d ?pool:plan.pool Fft.Dft.Forward ~nx:plan.g
          ~ny:plan.g big;
        big
    | _ ->
        let big = pad_apodize_3d plan image in
        Fft.Fftnd.transform_3d ?pool:plan.pool Fft.Dft.Forward ~nx:plan.g
          ~ny:plan.g ~nz:plan.g big;
        big
  in
  let span = Gridding_stats.grid_span "grid.compiled-gather" in
  let out = Sample_plan.gather_parallel ?stats ?pool:rpool ~simd sp big in
  Gridding_stats.end_span span;
  out

(* {2 Type-3: nonuniform-to-nonuniform}

   f_k = sum_j c_j e^{+i s_k . x_j} by the FINUFFT scale/shift
   decomposition (Barnett et al. 2019, §4). Per dimension:

   - centre both point sets: x0 = (min+max)/2 of the sources, s0 of the
     targets; then s_k.x_j = s_k.x0 + s0.(x_j - x0) + (s_k - s0).(x_j - x0),
     giving a per-source prephase e^{i s0.(x_j - x0)} and a per-target
     postphase e^{i s_k.x0} around the centred problem;
   - rescale the centred sources into the primary box: with half-widths
     X = max|x_j - x0| and S = max|s_k - s0| (degenerate widths guarded
     to 1), the shared fine grid nf = max over dims of the even integer
     >= 2*(sigma*S*X/pi + w/2 + 1) and gamma_d = nf / (2*sigma*S_d) put
     u_j = (x_j - x0)/gamma strictly inside (-pi, pi) with at least w/2+1
     grid points of margin — the kernel support never crosses the +-nf/2
     seam, so spreading on the wrapped [0, nf) torus followed by an
     fftshift equals un-periodised spreading on the centred line;
   - spread the prephased strengths with the plan kernel onto the nf^d
     grid (the existing compiled slice-and-dice replay machinery);
   - evaluate the gridded series at the rescaled target frequencies
     theta_k = 2*pi*gamma*(s_k - s0)/nf (|theta| <= pi/sigma) with the
     existing type-2 pass: an inner plan of base size nf applied at
     omega = -theta (its forward convention is e^{-i omega.n});
   - divide by the kernel's continuous FT at theta_k/2pi cycles per grid
     unit to undo the spreading convolution, and apply the postphase.

   Both stages inherit the plan-level accuracy law, so the end-to-end
   error tracks the requested tolerance (asserted against the direct
   NuDFT oracle by the accuracy sweep). *)

type t3 = {
  t3_dims : int;
  t3_m_in : int;
  t3_m_out : int;
  t3_nf : int;  (* fine grid per dimension (stage-1 spread grid) *)
  t3_w : int;
  t3_tol : float option;
  t3_prephase : Cvec.t;  (* e^{i s0.(x_j - x0)} per source *)
  t3_splan : Sample_plan.t;  (* spread decomposition on the nf grid *)
  t3_inner : plan;  (* inner type-2 plan, n = nf *)
  t3_inner_coords : Sample.t;  (* omega_k = -theta_k in inner grid units *)
  t3_post : Cvec.t;  (* e^{i s_k.x0} / prod_d psi_hat(theta_kd / 2pi) *)
  t3_pool : Runtime.Pool.t option;
  t3_simd : bool;
}

let two_pi = 2.0 *. Float.pi

let check_axes ~what ~dims ~m axes =
  if Array.length axes <> dims then
    invalid_arg (Printf.sprintf "Plan.make_type3: %s dims mismatch" what);
  Array.iter
    (fun a ->
      if Array.length a <> m then
        invalid_arg (Printf.sprintf "Plan.make_type3: ragged %s axes" what);
      Array.iter
        (fun x ->
          if not (Float.is_finite x) then
            invalid_arg
              (Printf.sprintf "Plan.make_type3: non-finite %s coordinate" what))
        a)
    axes

let make_type3 ?tol ?family ?kernel ?w ?(sigma = 2.0) ?l ?pool ?(simd = false)
    ~sources ~targets () =
  let dims = Array.length sources in
  if dims < 2 || dims > 3 then
    invalid_arg "Plan.make_type3: dims must be 2 or 3";
  if Array.length sources.(0) < 1 || Array.length targets = 0
     || Array.length targets.(0) < 1
  then invalid_arg "Plan.make_type3: empty source or target set";
  let m_in = Array.length sources.(0) in
  let m_out = Array.length targets.(0) in
  check_axes ~what:"source" ~dims ~m:m_in sources;
  check_axes ~what:"target" ~dims ~m:m_out targets;
  let tol, kernel, w, l = resolve_geometry ?tol ?family ?kernel ?w ?l ~sigma () in
  if l < 1 then invalid_arg "Plan.make_type3: l must be >= 1";
  let sp_make = Telemetry.span_begin ~cat:"plan" "plan.make_type3" in
  (* Per-dimension centres and half-widths of the two point clouds. *)
  let centre axes d =
    let a = axes.(d) in
    let lo = Array.fold_left Float.min a.(0) a in
    let hi = Array.fold_left Float.max a.(0) a in
    ((lo +. hi) /. 2.0, (hi -. lo) /. 2.0)
  in
  let x0 = Array.make dims 0.0 and xw = Array.make dims 0.0 in
  let s0 = Array.make dims 0.0 and sw = Array.make dims 0.0 in
  for d = 0 to dims - 1 do
    let c, hw = centre sources d in
    x0.(d) <- c;
    xw.(d) <- hw;
    let c, hw = centre targets d in
    s0.(d) <- c;
    sw.(d) <- hw
  done;
  let safe v = if v > 0.0 then v else 1.0 in
  (* Shared fine grid: the largest per-dimension requirement, kept even so
     the fftshift and the +-nf/2 margin argument hold exactly. *)
  let nf = ref 4 in
  for d = 0 to dims - 1 do
    let need =
      2
      * int_of_float
          (Float.ceil
             ((sigma *. safe sw.(d) *. safe xw.(d) /. Float.pi)
             +. (float_of_int w /. 2.0)
             +. 1.0))
    in
    if need > !nf then nf := need
  done;
  let nf = !nf in
  let cells =
    let c = ref 1 in
    for _ = 1 to dims do
      c := !c * 2 * nf
    done;
    !c
  in
  if cells > 1 lsl 26 then
    invalid_arg
      (Printf.sprintf
         "Plan.make_type3: fine grid %d^%d too large for the source/target \
          extents (rescale the problem)"
         nf dims);
  let gamma =
    Array.init dims (fun d -> float_of_int nf /. (2.0 *. sigma *. safe sw.(d)))
  in
  (* Rescaled sources in fine-grid units, wrapped onto [0, nf). *)
  let gcoords =
    Array.init dims (fun d ->
        Array.init m_in (fun j ->
            let u = (sources.(d).(j) -. x0.(d)) /. gamma.(d) in
            Sample.omega_to_grid ~g:nf u))
  in
  let table = Wt.make ~precision:Wt.Double ~kernel ~width:w ~l () in
  let splan =
    match dims with
    | 2 ->
        Sample_plan.compile_2d ~table ~g:nf ~gx:gcoords.(0) ~gy:gcoords.(1) ()
    | _ ->
        Sample_plan.compile_3d ~table ~g:nf ~gx:gcoords.(0) ~gy:gcoords.(1)
          ~gz:gcoords.(2) ()
  in
  let prephase =
    Cvec.init m_in (fun j ->
        let ph = ref 0.0 in
        for d = 0 to dims - 1 do
          ph := !ph +. (s0.(d) *. (sources.(d).(j) -. x0.(d)))
        done;
        C.exp_i !ph)
  in
  (* Inner type-2 plan over the nf-point base grid, same kernel geometry. *)
  let inner = make ~kernel ~w ~sigma ~l ?pool ~simd ~n:nf () in
  let g2 = inner.g in
  let icoords =
    Array.init dims (fun d ->
        Array.init m_out (fun k ->
            let theta =
              two_pi *. gamma.(d) *. (targets.(d).(k) -. s0.(d))
              /. float_of_int nf
            in
            Sample.omega_to_grid ~g:g2 (-.theta)))
  in
  let inner_coords =
    Sample.make ~g:g2 ~coords:icoords ~values:(Cvec.create m_out)
  in
  ignore (compiled inner inner_coords);
  let post =
    Cvec.init m_out (fun k ->
        let ph = ref 0.0 and corr = ref 1.0 in
        for d = 0 to dims - 1 do
          ph := !ph +. (targets.(d).(k) *. x0.(d));
          let f =
            gamma.(d) *. (targets.(d).(k) -. s0.(d)) /. float_of_int nf
          in
          corr := !corr *. W.ft kernel ~width:w f
        done;
        if Float.abs !corr < 1e-300 then
          invalid_arg
            "Plan.make_type3: kernel transform vanishes at a target frequency";
        C.scale (1.0 /. !corr) (C.exp_i !ph))
  in
  Telemetry.span_end sp_make;
  {
    t3_dims = dims;
    t3_m_in = m_in;
    t3_m_out = m_out;
    t3_nf = nf;
    t3_w = w;
    t3_tol = tol;
    t3_prephase = prephase;
    t3_splan = splan;
    t3_inner = inner;
    t3_inner_coords = inner_coords;
    t3_post = post;
    t3_pool = pool;
    t3_simd = simd;
  }

(* fftshift: spread grid index l (torus [0, nf), position l or l - nf) to
   the centred row-major layout the inner forward expects (index i is
   position i - nf/2). nf is even, so the shift is an exact half-turn. *)
let fftshift_to_centred ~dims ~nf grid =
  let h = nf / 2 in
  let sh i = if i < h then i + h else i - h in
  let out = Cvec.create (Cvec.length grid) in
  (match dims with
  | 2 ->
      for iy = 0 to nf - 1 do
        let src_row = sh iy * nf in
        let dst_row = iy * nf in
        for ix = 0 to nf - 1 do
          Cvec.set out (dst_row + ix) (Cvec.get grid (src_row + sh ix))
        done
      done
  | _ ->
      for iz = 0 to nf - 1 do
        for iy = 0 to nf - 1 do
          let src_row = ((sh iz * nf) + sh iy) * nf in
          let dst_row = ((iz * nf) + iy) * nf in
          for ix = 0 to nf - 1 do
            Cvec.set out (dst_row + ix) (Cvec.get grid (src_row + sh ix))
          done
        done
      done);
  out

let type3_exec ?stats t values =
  if Cvec.length values <> t.t3_m_in then
    invalid_arg "Plan.type3_exec: values size mismatch";
  let sp = Telemetry.span_begin ~cat:"plan" "plan.type3" in
  let prephased =
    Cvec.init t.t3_m_in (fun j ->
        C.mul (Cvec.get values j) (Cvec.get t.t3_prephase j))
  in
  let span = Gridding_stats.grid_span "grid.type3-spread" in
  let grid =
    Sample_plan.spread_parallel ?stats ?pool:t.t3_pool ~simd:t.t3_simd
      t.t3_splan prephased
  in
  Gridding_stats.end_span span;
  let centred = fftshift_to_centred ~dims:t.t3_dims ~nf:t.t3_nf grid in
  let b = forward_compiled ?stats t.t3_inner ~coords:t.t3_inner_coords centred in
  for k = 0 to t.t3_m_out - 1 do
    Cvec.set b k (C.mul (Cvec.get b k) (Cvec.get t.t3_post k))
  done;
  Telemetry.span_end sp;
  b

let type3_dims t = t.t3_dims
let type3_source_count t = t.t3_m_in
let type3_target_count t = t.t3_m_out
let type3_fine_grid t = t.t3_nf
let type3_width t = t.t3_w
let type3_tol t = t.t3_tol
