(** Interpolation-window geometry and the Slice-and-Dice coordinate
    decomposition (paper §III, Fig 4).

    Every gridding engine — serial, output-parallel, binned, Slice-and-Dice,
    and the JIGSAW hardware model — enumerates the same canonical window so
    that all engines produce bit-identical gridding geometry (they may still
    differ in accumulation order and arithmetic precision).

    {2 Canonical window}

    For a sample at continuous coordinate [u] (in oversampled-grid units)
    and window width [w], the affected points are the [w] consecutive
    integers [k = kmax - w + 1 .. kmax] with [kmax = floor (u + w/2)]. The
    signed distance [k - u] then lies in [[-w/2, w/2)]. This "exactly w
    points" convention is what lets a stall-free hardware pipeline use a
    fixed trip count irrespective of where the sample falls; points at
    distance ~w/2 receive (near-)zero weight from the window function.

    {2 Slice-and-Dice decomposition}

    Dividing a coordinate by the virtual tile size [t] gives the {e tile
    coordinate} (quotient) and the {e relative coordinate} (remainder). A
    worker owning relative position (column) [p] of every tile is affected
    by a sample iff the window covers some [k with k mod t = p] — at most
    one such [k] exists per window when [w <= t]. The worker then derives
    the accumulation index ("depth in the column") from the tile coordinate,
    decremented when the window wrapped into the neighbouring tile. *)

val window_start : w:int -> float -> int
(** First (unwrapped, possibly negative) affected grid index:
    [floor (u + w/2) - w + 1]. *)

val wrap : g:int -> int -> int
(** Torus wrap of an unwrapped index onto [0 .. g-1]; total for any int. *)

val iter_window : w:int -> g:int -> float -> (k:int -> dist:float -> unit) -> unit
(** [iter_window ~w ~g u f] calls [f ~k ~dist] for each of the [w] affected
    points, where [k] is the wrapped grid index and [dist = k_unwrapped - u].
    Requires [w <= g]. *)

(** Result of the two-part Slice-and-Dice boundary check for one column. *)
type column_hit = {
  k_wrapped : int;    (** wrapped grid index of the affected point *)
  tile : int;         (** wrapped tile coordinate (depth in the column) *)
  dist : float;       (** signed distance [k_unwrapped - u] *)
  wrapped_tile : bool (** the window crossed a tile boundary for this hit *)
}

val decompose : t:int -> float -> int * float
(** [decompose ~t u] is [(tile_coordinate, relative_coordinate)]:
    the quotient and remainder of [u / t]. Requires [u >= 0]. *)

val column_check :
  w:int -> t:int -> g:int -> column:int -> float -> column_hit option
(** [column_check ~w ~t ~g ~column u] performs the Slice-and-Dice boundary
    check of sample [u] against relative position [column] (in [0..t-1]).
    [Some hit] iff the sample's window covers the (unique) point of that
    column; [None] otherwise. Requires [w <= t], [t] divides [g]. *)

(** {2 Int-encoded column check}

    The hot-path variant of {!column_check}: the result is a single
    immediate int, so the Slice-and-Dice select stage performs no
    allocation at all — a miss is the sentinel {!packed_miss} ([-1]); a hit
    packs the wrapped tile coordinate (high bits) together with the
    quantized LUT distance — the weight-table address
    [round (|k - u| * l)] — in the low {!packed_addr_bits} bits. Feed the
    address to {!Numerics.Weight_table.weight_at}; the window function is
    symmetric, so the sign of the distance is not needed. *)

val packed_addr_bits : int
(** Number of low bits holding the quantized distance (20). *)

val packed_miss : int
(** The miss sentinel, [-1]. Every packed hit is [>= 0]. *)

val packed_tile : int -> int
(** Wrapped tile coordinate of a packed hit. *)

val packed_addr : int -> int
(** Quantized LUT distance (weight-table address) of a packed hit. *)

val check_packing : w:int -> l:int -> unit
(** Raises [Invalid_argument] when [w*l/2 + 1] addresses do not fit in
    {!packed_addr_bits} bits. Call once before a packed-check loop. *)

val column_check_packed :
  w:int -> t:int -> g:int -> l:int -> column:int -> float -> int
(** [column_check_packed ~w ~t ~g ~l ~column u] is the same boundary check
    as {!column_check}, int-encoded: {!packed_miss} iff the window misses
    the column. [l] is the weight-table oversampling factor used to
    quantize the distance. Requires [w <= t], [t] divides [g], and
    {!check_packing} [~w ~l]. *)

val affected_columns : w:int -> t:int -> float -> int list
(** The relative positions (columns) hit by the sample's window — [w]
    distinct columns when [w <= t]. Used by the sample-outer CPU
    implementation of Slice-and-Dice; agrees with {!column_check}. *)

val check_tiling : t:int -> g:int -> w:int -> unit
(** Validates [1 <= w <= t], [t >= 1], [t] divides [g]. Raises
    [Invalid_argument] otherwise. This is {e the} Slice-and-Dice tile
    validity rule — {!Plan.make}, {!Gridding.tile_for} and the CLI all
    defer to it rather than re-deriving the conditions. *)

val tiling_ok : t:int -> g:int -> w:int -> bool
(** [true] iff {!check_tiling} accepts the combination. *)

val fallback_tile : g:int -> w:int -> int
(** The default tile size for a [g]-point grid and width-[w] window: the
    paper's [t = 8] (or [w] when the window is wider) whenever that
    satisfies {!check_tiling}, else [g] — a single tile, always valid. *)
