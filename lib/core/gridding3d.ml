module Cvec = Numerics.Cvec
module C = Numerics.Complexd
module Wt = Numerics.Weight_table

let bump stats f = match stats with None -> () | Some s -> f s

let check name ~m ~gy ~gz values =
  if Array.length gy <> m || Array.length gz <> m || Cvec.length values <> m
  then invalid_arg (name ^ ": coords/values length mismatch")

let grid_3d ?stats ~table ~g ~gx ~gy ~gz values =
  let w = Wt.width table in
  let m = Array.length gx in
  check "Gridding3d.grid_3d" ~m ~gy ~gz values;
  let out = Cvec.create (g * g * g) in
  for j = 0 to m - 1 do
    let v = Cvec.get values j in
    bump stats (fun s ->
        s.Gridding_stats.samples_processed <-
          s.Gridding_stats.samples_processed + 1);
    Coord.iter_window ~w ~g gz.(j) (fun ~k:kz ~dist:dz ->
        let wz = Wt.lookup table dz in
        Coord.iter_window ~w ~g gy.(j) (fun ~k:ky ~dist:dy ->
            let wyz = wz *. Wt.lookup table dy in
            Coord.iter_window ~w ~g gx.(j) (fun ~k:kx ~dist:dx ->
                let weight = wyz *. Wt.lookup table dx in
                bump stats (fun s ->
                    s.Gridding_stats.window_evals <-
                      s.Gridding_stats.window_evals + 3;
                    s.Gridding_stats.grid_accumulates <-
                      s.Gridding_stats.grid_accumulates + 1);
                Cvec.accumulate out ((((kz * g) + ky) * g) + kx)
                  (C.scale weight v))))
  done;
  out

(* One pass over the whole (unsorted) stream for slice [z], like the JIGSAW
   3D-Slice schedule: the z select stage admits only samples whose window
   covers slice z. Writes touch slice [z] of [out] exclusively, so distinct
   slices can be processed by distinct domains with no interaction. *)
let spread_slice ?stats ~table ~w ~g ~gx ~gy ~gz ~m values out z =
  for j = 0 to m - 1 do
    bump stats (fun s ->
        s.Gridding_stats.samples_processed <-
          s.Gridding_stats.samples_processed + 1;
        s.Gridding_stats.boundary_checks <-
          s.Gridding_stats.boundary_checks + 1);
    (* Does the sample's z window cover (possibly via wrap) slice z? *)
    let start = Coord.window_start ~w gz.(j) in
    let jj =
      let r = (z - start) mod g in
      if r < 0 then r + g else r
    in
    if jj < w then begin
      let dz = float_of_int (start + jj) -. gz.(j) in
      let wz = Wt.lookup table dz in
      let v = C.scale wz (Cvec.get values j) in
      Coord.iter_window ~w ~g gy.(j) (fun ~k:ky ~dist:dy ->
          let wy = Wt.lookup table dy in
          Coord.iter_window ~w ~g gx.(j) (fun ~k:kx ~dist:dx ->
              let weight = wy *. Wt.lookup table dx in
              bump stats (fun s ->
                  s.Gridding_stats.window_evals <-
                    s.Gridding_stats.window_evals + 3;
                  s.Gridding_stats.grid_accumulates <-
                    s.Gridding_stats.grid_accumulates + 1);
              Cvec.accumulate out ((((z * g) + ky) * g) + kx)
                (C.scale weight v)))
    end
  done

let grid_3d_sliced ?stats ~table ~g ~gx ~gy ~gz values =
  let w = Wt.width table in
  let m = Array.length gx in
  check "Gridding3d.grid_3d_sliced" ~m ~gy ~gz values;
  let out = Cvec.create (g * g * g) in
  for z = 0 to g - 1 do
    spread_slice ?stats ~table ~w ~g ~gx ~gy ~gz ~m values out z
  done;
  out

let grid_3d_parallel ?stats ?pool ?domains ~table ~g ~gx ~gy ~gz values =
  let w = Wt.width table in
  let m = Array.length gx in
  check "Gridding3d.grid_3d_parallel" ~m ~gy ~gz values;
  let out = Cvec.create (g * g * g) in
  let stats_mutex = Mutex.create () in
  let process_slices ~lo ~hi =
    let local =
      match stats with None -> None | Some _ -> Some (Gridding_stats.create ())
    in
    for z = lo to hi - 1 do
      spread_slice ?stats:local ~table ~w ~g ~gx ~gy ~gz ~m values out z
    done;
    match (stats, local) with
    | Some acc, Some l ->
        Mutex.lock stats_mutex;
        Gridding_stats.add acc l;
        Mutex.unlock stats_mutex
    | _ -> ()
  in
  Gridding_slice.with_pool ~name:"Gridding3d.grid_3d_parallel" ?pool ?domains
    (fun p ->
      Runtime.Pool.parallel_for_ranges ~chunk:1 p ~start:0 ~stop:g
        process_slices);
  out

let interp_3d ?stats ~table ~g ~gx ~gy ~gz grid =
  let w = Wt.width table in
  let m = Array.length gx in
  if Array.length gy <> m || Array.length gz <> m then
    invalid_arg "Gridding3d.interp_3d: coords length mismatch";
  if Cvec.length grid <> g * g * g then
    invalid_arg "Gridding3d.interp_3d: grid size mismatch";
  let out = Cvec.create m in
  for j = 0 to m - 1 do
    bump stats (fun s ->
        s.Gridding_stats.samples_processed <-
          s.Gridding_stats.samples_processed + 1);
    let acc = ref C.zero in
    Coord.iter_window ~w ~g gz.(j) (fun ~k:kz ~dist:dz ->
        let wz = Wt.lookup table dz in
        Coord.iter_window ~w ~g gy.(j) (fun ~k:ky ~dist:dy ->
            let wyz = wz *. Wt.lookup table dy in
            Coord.iter_window ~w ~g gx.(j) (fun ~k:kx ~dist:dx ->
                let weight = wyz *. Wt.lookup table dx in
                bump stats (fun s ->
                    s.Gridding_stats.window_evals <-
                      s.Gridding_stats.window_evals + 3);
                acc :=
                  C.add !acc
                    (C.scale weight
                       (Cvec.get grid ((((kz * g) + ky) * g) + kx))))));
    Cvec.set out j !acc
  done;
  out
