module Cvec = Numerics.Cvec
module Wt = Numerics.Weight_table

let add_stats = Gridding_serial.add_grid_stats

let check name ~m ~gy ~gz values =
  if Array.length gy <> m || Array.length gz <> m || Cvec.length values <> m
  then invalid_arg (name ^ ": coords/values length mismatch")

(* Hot loops operate on raw re/im floats with manually enumerated windows;
   stats totals for the input-driven 3D schedule are closed-form in [m] and
   [w] and merged once per call (the slice schedule's data-dependent z-hit
   counts are accumulated in local ints). Accessors and LUT arithmetic are
   same-module [@inline] helpers; see {!Gridding_serial} for the [-opaque]
   rationale. *)

module A1 = Bigarray.Array1

let[@inline] get_re (v : Cvec.t) k = A1.unsafe_get v (2 * k)
let[@inline] get_im (v : Cvec.t) k = A1.unsafe_get v ((2 * k) + 1)

let[@inline] set_parts (v : Cvec.t) k re im =
  let j = 2 * k in
  A1.unsafe_set v j re;
  A1.unsafe_set v (j + 1) im

let[@inline] acc_parts (v : Cvec.t) k re im =
  let j = 2 * k in
  A1.unsafe_set v j (A1.unsafe_get v j +. re);
  A1.unsafe_set v (j + 1) (A1.unsafe_get v (j + 1) +. im)

let[@inline] window_start w u =
  int_of_float (Float.floor (u +. (float_of_int w /. 2.0))) - w + 1

let[@inline] wrap g k =
  let r = k mod g in
  if r < 0 then r + g else r

let[@inline] lut tbl tlen lf d =
  let a = int_of_float (Float.round (Float.abs d *. lf)) in
  if a >= tlen then 0.0 else Array.unsafe_get tbl a

let grid_3d ?stats ~table ~g ~gx ~gy ~gz values =
  let sp = Gridding_stats.grid_span "grid.3d-serial" in
  let w = Wt.width table in
  let m = Array.length gx in
  check "Gridding3d.grid_3d" ~m ~gy ~gz values;
  let tbl = Wt.data table and lf = float_of_int (Wt.oversampling table) in
  let tlen = Array.length tbl in
  let out = Cvec.create (g * g * g) in
  for j = 0 to m - 1 do
    let vr = get_re values j and vi = get_im values j in
    let uz = Array.unsafe_get gz j
    and uy = Array.unsafe_get gy j
    and ux = Array.unsafe_get gx j in
    let sz = window_start w uz
    and sy = window_start w uy
    and sx = window_start w ux in
    for iz = 0 to w - 1 do
      let kzu = sz + iz in
      let kz = wrap g kzu in
      let wz = lut tbl tlen lf (float_of_int kzu -. uz) in
      for iy = 0 to w - 1 do
        let kyu = sy + iy in
        let ky = wrap g kyu in
        let wyz = wz *. lut tbl tlen lf (float_of_int kyu -. uy) in
        let plane = ((kz * g) + ky) * g in
        for ix = 0 to w - 1 do
          let kxu = sx + ix in
          let kx = wrap g kxu in
          let weight = wyz *. lut tbl tlen lf (float_of_int kxu -. ux) in
          acc_parts out (plane + kx) (weight *. vr) (weight *. vi)
        done
      done
    done
  done;
  add_stats stats ~samples:m ~checks:0
    ~evals:(3 * m * w * w * w)
    ~accums:(m * w * w * w);
  Gridding_stats.end_span sp;
  out

(* One pass over the whole (unsorted) stream for slice [z], like the JIGSAW
   3D-Slice schedule: the z select stage admits only samples whose window
   covers slice z. Writes touch slice [z] of [out] exclusively, so distinct
   slices can be processed by distinct domains with no interaction. *)
let spread_slice ?stats ~table ~w ~g ~gx ~gy ~gz ~m values out z =
  let tbl = Wt.data table and lf = float_of_int (Wt.oversampling table) in
  let tlen = Array.length tbl in
  let hits = ref 0 in
  for j = 0 to m - 1 do
    (* Does the sample's z window cover (possibly via wrap) slice z? *)
    let uz = Array.unsafe_get gz j in
    let start = window_start w uz in
    let jj =
      let r = (z - start) mod g in
      if r < 0 then r + g else r
    in
    if jj < w then begin
      let dz = float_of_int (start + jj) -. uz in
      let wz = lut tbl tlen lf dz in
      let vr = wz *. get_re values j and vi = wz *. get_im values j in
      let uy = Array.unsafe_get gy j and ux = Array.unsafe_get gx j in
      let sy = window_start w uy and sx = window_start w ux in
      for iy = 0 to w - 1 do
        let kyu = sy + iy in
        let ky = wrap g kyu in
        let wy = lut tbl tlen lf (float_of_int kyu -. uy) in
        let row = ((z * g) + ky) * g in
        for ix = 0 to w - 1 do
          let kxu = sx + ix in
          let kx = wrap g kxu in
          let weight = wy *. lut tbl tlen lf (float_of_int kxu -. ux) in
          incr hits;
          acc_parts out (row + kx) (weight *. vr) (weight *. vi)
        done
      done
    end
  done;
  add_stats stats ~samples:m ~checks:m ~evals:(3 * !hits) ~accums:!hits

let grid_3d_sliced ?stats ~table ~g ~gx ~gy ~gz values =
  let sp = Gridding_stats.grid_span "grid.3d-sliced" in
  let w = Wt.width table in
  let m = Array.length gx in
  check "Gridding3d.grid_3d_sliced" ~m ~gy ~gz values;
  let out = Cvec.create (g * g * g) in
  for z = 0 to g - 1 do
    spread_slice ?stats ~table ~w ~g ~gx ~gy ~gz ~m values out z
  done;
  Gridding_stats.end_span sp;
  out

let grid_3d_parallel ?stats ?pool ?domains ~table ~g ~gx ~gy ~gz values =
  let sp = Gridding_stats.grid_span "grid.3d-parallel" in
  let w = Wt.width table in
  let m = Array.length gx in
  check "Gridding3d.grid_3d_parallel" ~m ~gy ~gz values;
  let out = Cvec.create (g * g * g) in
  let stats_mutex = Mutex.create () in
  let process_slices ~lo ~hi =
    let local =
      match stats with None -> None | Some _ -> Some (Gridding_stats.create ())
    in
    for z = lo to hi - 1 do
      spread_slice ?stats:local ~table ~w ~g ~gx ~gy ~gz ~m values out z
    done;
    match (stats, local) with
    | Some acc, Some l ->
        Mutex.lock stats_mutex;
        Gridding_stats.add acc l;
        Mutex.unlock stats_mutex
    | _ -> ()
  in
  Gridding_slice.with_pool ~name:"Gridding3d.grid_3d_parallel" ?pool ?domains
    (fun p ->
      (* Each z-slice scans all m samples; coarsen so small problems do
         not pay g per-slice dispatches. *)
      let chunk = Runtime.Pool.adaptive_chunk p ~items:g ~work_per_item:m in
      Runtime.Pool.parallel_for_ranges ~chunk p ~start:0 ~stop:g
        process_slices);
  Gridding_stats.end_span sp;
  out

let interp_3d ?stats ~table ~g ~gx ~gy ~gz grid =
  let sp = Gridding_stats.grid_span "grid.interp-3d" in
  let w = Wt.width table in
  let m = Array.length gx in
  if Array.length gy <> m || Array.length gz <> m then
    invalid_arg "Gridding3d.interp_3d: coords length mismatch";
  if Cvec.length grid <> g * g * g then
    invalid_arg "Gridding3d.interp_3d: grid size mismatch";
  let tbl = Wt.data table and lf = float_of_int (Wt.oversampling table) in
  let tlen = Array.length tbl in
  let out = Cvec.create m in
  for j = 0 to m - 1 do
    let uz = Array.unsafe_get gz j
    and uy = Array.unsafe_get gy j
    and ux = Array.unsafe_get gx j in
    let sz = window_start w uz
    and sy = window_start w uy
    and sx = window_start w ux in
    let acc_re = ref 0.0 and acc_im = ref 0.0 in
    for iz = 0 to w - 1 do
      let kzu = sz + iz in
      let kz = wrap g kzu in
      let wz = lut tbl tlen lf (float_of_int kzu -. uz) in
      for iy = 0 to w - 1 do
        let kyu = sy + iy in
        let ky = wrap g kyu in
        let wyz = wz *. lut tbl tlen lf (float_of_int kyu -. uy) in
        let plane = ((kz * g) + ky) * g in
        for ix = 0 to w - 1 do
          let kxu = sx + ix in
          let kx = wrap g kxu in
          let weight = wyz *. lut tbl tlen lf (float_of_int kxu -. ux) in
          let idx = plane + kx in
          acc_re := !acc_re +. (weight *. get_re grid idx);
          acc_im := !acc_im +. (weight *. get_im grid idx)
        done
      done
    done;
    set_parts out j !acc_re !acc_im
  done;
  add_stats stats ~samples:m ~checks:0 ~evals:(3 * m * w * w * w) ~accums:0;
  Gridding_stats.end_span sp;
  out
