(** Work counters shared by all gridding engines, mirroring the costs the
    paper compares in §II-C and §III: presort work, duplicated sample
    visits, boundary checks, table lookups and grid read-modify-writes. *)

type t = {
  mutable samples_processed : int;
      (** sample visits, including binning duplicates *)
  mutable boundary_checks : int;
      (** point-vs-sample checks performed by the engine's parallel model *)
  mutable window_evals : int;  (** weight-table lookups *)
  mutable grid_accumulates : int;  (** read-modify-write grid updates *)
  mutable presort_ops : int;
      (** per-sample bin-insertion operations before gridding (binning) *)
}

val create : unit -> t
val reset : t -> unit
val add : t -> t -> unit
(** [add acc s] accumulates [s] into [acc]. *)

val total_work : t -> int
(** Sum of all counters — a crude single-number work metric. *)

val pp : Format.formatter -> t -> unit
