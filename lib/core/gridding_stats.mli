(** Work counters shared by all gridding engines, mirroring the costs the
    paper compares in §II-C and §III: presort work, duplicated sample
    visits, boundary checks, table lookups and grid read-modify-writes. *)

type t = {
  mutable samples_processed : int;
      (** sample visits, including binning duplicates *)
  mutable boundary_checks : int;
      (** point-vs-sample checks performed by the engine's parallel model *)
  mutable window_evals : int;  (** weight-table lookups *)
  mutable grid_accumulates : int;  (** read-modify-write grid updates *)
  mutable presort_ops : int;
      (** per-sample bin-insertion operations before gridding (binning) *)
}

val create : unit -> t
val reset : t -> unit
val add : t -> t -> unit
(** [add acc s] accumulates [s] into [acc]. *)

val total_work : t -> int
(** Sum of all counters — a crude single-number work metric. *)

val pp : Format.formatter -> t -> unit

(** {2 Telemetry unification}

    The counter record above stays the engines' public interface; the
    functions below funnel the same per-pass deltas into the process-wide
    {!Telemetry} registry so gridding work shows up next to spans,
    FFT/pool metrics and backend cycle models in one exported view. *)

val record :
  t option ->
  ?presort:int ->
  samples:int ->
  checks:int ->
  evals:int ->
  accums:int ->
  unit ->
  unit
(** Accumulate one pass's totals into [stats] (when given) {e and}, when
    telemetry is enabled, into the global [grid.*] counters. This is the
    single chokepoint every engine reports through. *)

val grid_span : string -> Telemetry.span
(** Shared hook: open a [cat:"grid"] span named after the engine; the 2D
    and 3D dispatchers wrap every engine invocation with it. Returns
    {!Telemetry.null_span} when disabled. *)

val end_span : Telemetry.span -> unit
