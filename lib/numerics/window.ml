type t =
  | Kaiser_bessel of float
  | Gaussian of float
  | Bspline
  | Sinc

let beatty_beta ~width ~sigma =
  if sigma <= 1.0 then invalid_arg "Window.beatty_beta: sigma must be > 1";
  let w = float_of_int width in
  let x = (w /. sigma) *. (w /. sigma) *. (sigma -. 0.5) *. (sigma -. 0.5) in
  let arg = x -. 0.8 in
  if arg <= 0.0 then invalid_arg "Window.beatty_beta: W too small for sigma";
  Float.pi *. sqrt arg

let default_kaiser_bessel ~width ~sigma =
  Kaiser_bessel (beatty_beta ~width ~sigma)

(* sigma such that psi(W/2) = exp(-1/(2*0.33^2)) ~ 1%. *)
let default_gaussian ~width = Gaussian (0.33 *. (float_of_int width /. 2.0))

let sinc x = if x = 0.0 then 1.0 else sin (Float.pi *. x) /. (Float.pi *. x)

(* Cubic B-spline on its natural support [-2, 2]. *)
let bspline3 u =
  let a = Float.abs u in
  if a >= 2.0 then 0.0
  else if a >= 1.0 then
    let d = 2.0 -. a in
    d *. d *. d /. 6.0
  else (4.0 -. (6.0 *. a *. a) +. (3.0 *. a *. a *. a)) /. 6.0

let eval kernel ~width t =
  let half = float_of_int width /. 2.0 in
  if Float.abs t >= half then 0.0
  else
    match kernel with
    | Kaiser_bessel beta ->
        let u = t /. half in
        Bessel.i0 (beta *. sqrt (1.0 -. (u *. u))) /. Bessel.i0 beta
    | Gaussian sigma -> exp (-.(t *. t) /. (2.0 *. sigma *. sigma))
    | Bspline -> bspline3 (4.0 *. t /. float_of_int width)
    | Sinc -> sinc t

let ft_numeric kernel ~width f =
  (* psi is even: FT = 2 * integral_0^{W/2} psi(t) cos(2 pi f t) dt,
     composite Simpson with 2048 panels. *)
  let half = float_of_int width /. 2.0 in
  let n = 2048 in
  let h = half /. float_of_int n in
  let g t = eval kernel ~width t *. cos (2.0 *. Float.pi *. f *. t) in
  let sum = ref (g 0.0 +. g half) in
  for j = 1 to n - 1 do
    let w = if j land 1 = 1 then 4.0 else 2.0 in
    sum := !sum +. (w *. g (float_of_int j *. h))
  done;
  2.0 *. (!sum *. h /. 3.0)

(* sinh(sqrt z)/sqrt z extended continuously through z = 0 to
   sin(sqrt(-z))/sqrt(-z). *)
let sinhc_ext z =
  if Float.abs z < 1e-12 then 1.0 +. (z /. 6.0)
  else if z > 0.0 then
    let s = sqrt z in
    sinh s /. s
  else
    let s = sqrt (-.z) in
    sin s /. s

let ft kernel ~width f =
  let w = float_of_int width in
  match kernel with
  | Kaiser_bessel beta ->
      (* Exact: the kernel is compactly supported so the classical pair
         holds without truncation error. *)
      let piwf = Float.pi *. w *. f in
      w *. sinhc_ext ((beta *. beta) -. (piwf *. piwf)) /. Bessel.i0 beta
  | Bspline ->
      (* psi(t) = b3(4t/W): FT = (W/4) * sinc^4 (W f / 4), exact. *)
      let s = sinc (w *. f /. 4.0) in
      w /. 4.0 *. (s *. s *. s *. s)
  | Gaussian _ | Sinc ->
      (* Truncation breaks the closed forms; quadrature is exact for the
         truncated kernel up to Simpson error. *)
      ft_numeric kernel ~width f

let pp ppf = function
  | Kaiser_bessel beta -> Format.fprintf ppf "kaiser-bessel(beta=%g)" beta
  | Gaussian sigma -> Format.fprintf ppf "gaussian(sigma=%g)" sigma
  | Bspline -> Format.fprintf ppf "bspline3"
  | Sinc -> Format.fprintf ppf "sinc"
