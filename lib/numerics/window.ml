type t =
  | Kaiser_bessel of float
  | Gaussian of float
  | Bspline
  | Sinc
  | Exp_semicircle of float

let beatty_beta ~width ~sigma =
  if sigma <= 1.0 then invalid_arg "Window.beatty_beta: sigma must be > 1";
  let w = float_of_int width in
  let x = (w /. sigma) *. (w /. sigma) *. (sigma -. 0.5) *. (sigma -. 0.5) in
  let arg = x -. 0.8 in
  if arg <= 0.0 then invalid_arg "Window.beatty_beta: W too small for sigma";
  Float.pi *. sqrt arg

let default_kaiser_bessel ~width ~sigma =
  Kaiser_bessel (beatty_beta ~width ~sigma)

(* Barnett, Magland & af Klinteberg (2019): the near-optimal ES shape
   parameter is beta = gamma * pi * W * (1 - 1/(2 sigma)) with gamma
   slightly below 1 to absorb the finite-W truncation. *)
let es_beta ~width ~sigma =
  if sigma <= 1.0 then invalid_arg "Window.es_beta: sigma must be > 1";
  if width < 2 then invalid_arg "Window.es_beta: width must be >= 2";
  0.97 *. Float.pi *. float_of_int width *. (1.0 -. (1.0 /. (2.0 *. sigma)))

let default_exp_semicircle ~width ~sigma =
  Exp_semicircle (es_beta ~width ~sigma)

(* sigma such that psi(W/2) = exp(-1/(2*0.33^2)) ~ 1%. *)
let default_gaussian ~width = Gaussian (0.33 *. (float_of_int width /. 2.0))

let sinc x = if x = 0.0 then 1.0 else sin (Float.pi *. x) /. (Float.pi *. x)

(* Cubic B-spline on its natural support [-2, 2]. *)
let bspline3 u =
  let a = Float.abs u in
  if a >= 2.0 then 0.0
  else if a >= 1.0 then
    let d = 2.0 -. a in
    d *. d *. d /. 6.0
  else (4.0 -. (6.0 *. a *. a) +. (3.0 *. a *. a *. a)) /. 6.0

let eval kernel ~width t =
  let half = float_of_int width /. 2.0 in
  if Float.abs t >= half then 0.0
  else
    match kernel with
    | Kaiser_bessel beta ->
        let u = t /. half in
        Bessel.i0 (beta *. sqrt (1.0 -. (u *. u))) /. Bessel.i0 beta
    | Gaussian sigma -> exp (-.(t *. t) /. (2.0 *. sigma *. sigma))
    | Bspline -> bspline3 (4.0 *. t /. float_of_int width)
    | Sinc -> sinc t
    | Exp_semicircle beta ->
        let u = t /. half in
        exp (beta *. (sqrt (1.0 -. (u *. u)) -. 1.0))

(* Simpson panel count: the default scales with the window width so wide
   kernels keep the same panel density per grid unit (256 panels per unit
   of half-width, floor 2048) rather than losing quadrature digits. *)
let default_panels width = max 2048 (256 * width)

let ft_numeric ?panels kernel ~width f =
  (* psi is even: FT = 2 * integral_0^{W/2} psi(t) cos(2 pi f t) dt,
     composite Simpson. *)
  let half = float_of_int width /. 2.0 in
  let n =
    match panels with
    | None -> default_panels width
    | Some p ->
        if p < 2 then invalid_arg "Window.ft_numeric: panels must be >= 2";
        if p land 1 = 1 then p + 1 else p
  in
  let h = half /. float_of_int n in
  let g t = eval kernel ~width t *. cos (2.0 *. Float.pi *. f *. t) in
  let sum = ref (g 0.0 +. g half) in
  for j = 1 to n - 1 do
    let w = if j land 1 = 1 then 4.0 else 2.0 in
    sum := !sum +. (w *. g (float_of_int j *. h))
  done;
  2.0 *. (!sum *. h /. 3.0)

(* sinh(sqrt z)/sqrt z extended continuously through z = 0 to
   sin(sqrt(-z))/sqrt(-z). *)
let sinhc_ext z =
  if Float.abs z < 1e-12 then 1.0 +. (z /. 6.0)
  else if z > 0.0 then
    let s = sqrt z in
    sinh s /. s
  else
    let s = sqrt (-.z) in
    sin s /. s

let ft kernel ~width f =
  let w = float_of_int width in
  match kernel with
  | Kaiser_bessel beta ->
      (* Exact: the kernel is compactly supported so the classical pair
         holds without truncation error. *)
      let piwf = Float.pi *. w *. f in
      w *. sinhc_ext ((beta *. beta) -. (piwf *. piwf)) /. Bessel.i0 beta
  | Bspline ->
      (* psi(t) = b3(4t/W): FT = (W/4) * sinc^4 (W f / 4), exact. *)
      let s = sinc (w *. f /. 4.0) in
      w /. 4.0 *. (s *. s *. s *. s)
  | Gaussian _ | Sinc | Exp_semicircle _ ->
      (* Truncation (Gaussian, Sinc) or the lack of a closed form (ES)
         rules out an analytic pair; quadrature is exact for the
         truncated kernel up to Simpson error. *)
      ft_numeric kernel ~width f

(* ------------------------------------------------------------------ *)
(* Tolerance-driven geometry.

   The ES aliasing error decays like exp(-pi W sqrt(1 - 1/sigma))
   (Barnett et al., thm 4.2 regime); at sigma = 2 this is the familiar
   "one digit per unit width" law W ~ log10(1/tol) + 1. Kaiser-Bessel at
   the Beatty beta obeys the same exponential rate, so one width law
   serves both families. *)

type family = KB | ES

let family_name = function KB -> "kaiser-bessel" | ES -> "es"

let family_of_string s =
  match String.lowercase_ascii s with
  | "es" | "exp-semicircle" | "exponential-of-semicircle" -> Some ES
  | "kb" | "kaiser-bessel" | "kaiser_bessel" -> Some KB
  | _ -> None

let min_tolerance = 1e-12

let check_tol tol =
  if not (Float.is_finite tol) || tol <= 0.0 || tol >= 1.0 then
    invalid_arg "Window: tol must lie in (0, 1)"

let width_for_tolerance ?(family = ES) ~tol ~sigma () =
  check_tol tol;
  if sigma <= 1.0 then invalid_arg "Window.width_for_tolerance: sigma must be > 1";
  ignore family;
  let tol = Float.max tol min_tolerance in
  let rate = Float.pi *. sqrt (1.0 -. (1.0 /. sigma)) in
  let w = int_of_float (Float.ceil (log (1.0 /. tol) /. rate)) + 1 in
  max 2 (min 16 w)

let for_tolerance ?(family = ES) ~tol ~sigma () =
  let width = width_for_tolerance ~family ~tol ~sigma () in
  let kernel =
    match family with
    | ES -> default_exp_semicircle ~width ~sigma
    | KB -> default_kaiser_bessel ~width ~sigma
  in
  (kernel, width)

(* The nearest-address LUT rounds each |distance| to a multiple of 1/L,
   contributing a weight error ~ |psi'|/(2L) per tap; the table
   oversampling must therefore shrink with the tolerance or the LUT floor
   swamps the kernel's own accuracy. Measured floor ~ 0.36/L (accuracy
   sweep, both families), so targeting L >= 0.5/tol keeps the floor below
   ~0.7 tol; power-of-two for the hardware models' benefit, capped at
   2^18 (the densest table, w = 8 at tol = 1e-6, is then 1M entries /
   8 MiB and the floor ~1.4e-6 — still inside the 10x contract). *)
let lut_for_tolerance ~tol =
  check_tol tol;
  let tol = Float.max tol min_tolerance in
  let rec next_pow2 p target = if p >= target then p else next_pow2 (2 * p) target in
  let target = int_of_float (Float.ceil (0.5 /. tol)) in
  max 512 (min 262144 (next_pow2 1 target))

(* Hold the Beatty-beta argument at its (w = 6, sigma = 2) reference
   value: (w/sigma)(sigma - 0.5) = 4.5. Narrower oversampling then takes
   a wider window to keep the same shape parameter (paper SII-B), instead
   of a constant w = 6 that loses accuracy as sigma drops. *)
let default_width ~sigma =
  if sigma <= 1.0 then invalid_arg "Window.default_width: sigma must be > 1";
  max 2 (int_of_float (Float.ceil (4.5 *. sigma /. (sigma -. 0.5))))

let pp ppf = function
  | Kaiser_bessel beta -> Format.fprintf ppf "kaiser-bessel(beta=%g)" beta
  | Gaussian sigma -> Format.fprintf ppf "gaussian(sigma=%g)" sigma
  | Bspline -> Format.fprintf ppf "bspline3"
  | Sinc -> Format.fprintf ppf "sinc"
  | Exp_semicircle beta -> Format.fprintf ppf "exp-semicircle(beta=%g)" beta

let name = function
  | Kaiser_bessel _ -> "kaiser-bessel"
  | Gaussian _ -> "gaussian"
  | Bspline -> "bspline3"
  | Sinc -> "sinc"
  | Exp_semicircle _ -> "exp-semicircle"
