type t = { re : float; im : float }

let zero = { re = 0.0; im = 0.0 }
let one = { re = 1.0; im = 0.0 }
let i = { re = 0.0; im = 1.0 }
let make re im = { re; im }
let of_float x = { re = x; im = 0.0 }
let add a b = { re = a.re +. b.re; im = a.im +. b.im }
let sub a b = { re = a.re -. b.re; im = a.im -. b.im }
let neg a = { re = -.a.re; im = -.a.im }
let conj a = { re = a.re; im = -.a.im }

let mul a b =
  { re = (a.re *. b.re) -. (a.im *. b.im);
    im = (a.re *. b.im) +. (a.im *. b.re) }

(* (a+bi)(c+di) with t1 = c(a+b), t2 = a(d-c), t3 = b(c+d):
   re = t1 - t3, im = t1 + t2.  Three real multiplications. *)
let mul_knuth a b =
  let t1 = b.re *. (a.re +. a.im) in
  let t2 = a.re *. (b.im -. b.re) in
  let t3 = a.im *. (b.re +. b.im) in
  { re = t1 -. t3; im = t1 +. t2 }

let scale s a = { re = s *. a.re; im = s *. a.im }

let div a b =
  let d = (b.re *. b.re) +. (b.im *. b.im) in
  { re = ((a.re *. b.re) +. (a.im *. b.im)) /. d;
    im = ((a.im *. b.re) -. (a.re *. b.im)) /. d }

let inv a = div one a
let exp_i theta = { re = cos theta; im = sin theta }
let norm2 a = (a.re *. a.re) +. (a.im *. a.im)
let norm a = Float.hypot a.re a.im
let arg a = Float.atan2 a.im a.re

let equal ?(eps = 0.0) a b =
  Float.abs (a.re -. b.re) <= eps && Float.abs (a.im -. b.im) <= eps

let pp ppf a = Format.fprintf ppf "(%g%+gi)" a.re a.im
let to_string a = Format.asprintf "%a" pp a
