type precision =
  | Double
  | Single
  | Fixed16

type t = {
  kernel : Window.t;
  width : int;
  l : int;
  precision : precision;
  table : float array;  (* quantised weights, half window, step 1/L *)
}

let quantize precision x =
  match precision with
  | Double -> x
  | Single -> Float32.round x
  | Fixed16 ->
      Fixed_point.to_float Fixed_point.q15 (Fixed_point.of_float Fixed_point.q15 x)

let make ?(precision = Double) ~kernel ~width ~l () =
  if width < 1 then invalid_arg "Weight_table.make: width < 1";
  if l < 1 then invalid_arg "Weight_table.make: l < 1";
  let entries = (width * l / 2) + 1 in
  let table =
    Array.init entries (fun a ->
        quantize precision
          (Window.eval kernel ~width (float_of_int a /. float_of_int l)))
  in
  { kernel; width; l; precision; table }

let kernel t = t.kernel
let width t = t.width
let data t = t.table
let oversampling t = t.l
let precision t = t.precision
let entries t = Array.length t.table

(* Raw quantised address: [round (|d| * L)]. Always >= 0; may fall past the
   table end when the distance is outside the window. *)
let[@inline] quantize_distance t d =
  int_of_float (Float.round (Float.abs d *. float_of_int t.l))

let address_of_distance t d =
  let a = quantize_distance t d in
  if a >= Array.length t.table then None else Some a

let get t a =
  if a < 0 || a >= Array.length t.table then
    invalid_arg "Weight_table.get: address out of range";
  t.table.(a)

let get_q15 t a = Fixed_point.of_float Fixed_point.q15 (get t a)

(* Hot-path lookups: branch + arithmetic only, no [option] allocation. *)

let[@inline] weight_at t a =
  if a >= Array.length t.table then 0.0 else Array.unsafe_get t.table a

let[@inline] lookup t d = weight_at t (quantize_distance t d)

let lookup_exact t d = Window.eval t.kernel ~width:t.width d

let max_table_error t =
  (* Probe at 8 points between consecutive table addresses. *)
  let probes = 8 * t.width * t.l / 2 in
  let half = float_of_int t.width /. 2.0 in
  let err = ref 0.0 in
  for j = 0 to probes - 1 do
    let d = float_of_int j /. float_of_int probes *. half in
    let e = Float.abs (lookup t d -. lookup_exact t d) in
    if e > !err then err := e
  done;
  !err
