module C = Complexd

type matrix = C.t array array

let identity n =
  Array.init n (fun i -> Array.init n (fun j -> if i = j then C.one else C.zero))

let matvec a x =
  let n = Array.length a in
  Array.init n (fun i ->
      let acc = ref C.zero in
      for j = 0 to Array.length x - 1 do
        acc := C.add !acc (C.mul a.(i).(j) x.(j))
      done;
      !acc)

let transpose_conj a =
  let n = Array.length a in
  let m = if n = 0 then 0 else Array.length a.(0) in
  Array.init m (fun i -> Array.init n (fun j -> C.conj a.(j).(i)))

let solve a b =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    if Array.length b <> n then invalid_arg "Linalg.solve: size mismatch";
    Array.iter
      (fun row ->
        if Array.length row <> n then invalid_arg "Linalg.solve: not square")
      a;
    (* Working copies. *)
    let m = Array.map Array.copy a in
    let x = Array.copy b in
    for col = 0 to n - 1 do
      (* Partial pivot. *)
      let pivot = ref col in
      for r = col + 1 to n - 1 do
        if C.norm m.(r).(col) > C.norm m.(!pivot).(col) then pivot := r
      done;
      if C.norm m.(!pivot).(col) < 1e-300 then
        failwith "Linalg.solve: singular matrix";
      if !pivot <> col then begin
        let tmp = m.(col) in
        m.(col) <- m.(!pivot);
        m.(!pivot) <- tmp;
        let t = x.(col) in
        x.(col) <- x.(!pivot);
        x.(!pivot) <- t
      end;
      let inv_p = C.inv m.(col).(col) in
      for r = col + 1 to n - 1 do
        let factor = C.mul m.(r).(col) inv_p in
        if factor <> C.zero then begin
          for c = col to n - 1 do
            m.(r).(c) <- C.sub m.(r).(c) (C.mul factor m.(col).(c))
          done;
          x.(r) <- C.sub x.(r) (C.mul factor x.(col))
        end
      done
    done;
    (* Back substitution. *)
    for col = n - 1 downto 0 do
      let acc = ref x.(col) in
      for c = col + 1 to n - 1 do
        acc := C.sub !acc (C.mul m.(col).(c) x.(c))
      done;
      x.(col) <- C.mul !acc (C.inv m.(col).(col))
    done;
    x
  end

let solve_regularized ?mu a b =
  let n = Array.length a in
  let max_diag =
    Array.fold_left
      (fun acc i -> Float.max acc (C.norm a.(i).(i)))
      0.0
      (Array.init n (fun i -> i))
  in
  let mu = match mu with Some m -> m | None -> 1e-12 *. Float.max 1.0 max_diag in
  let a' =
    Array.mapi
      (fun i row ->
        Array.mapi
          (fun j v -> if i = j then C.add v (C.of_float mu) else v)
          row)
      a
  in
  solve a' b

let residual_norm a x b =
  let ax = matvec a x in
  let acc = ref 0.0 in
  Array.iteri (fun i v -> acc := !acc +. C.norm2 (C.sub v b.(i))) ax;
  sqrt !acc
