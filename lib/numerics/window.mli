(** Interpolation window (kernel) functions for NuFFT gridding.

    Each kernel is an even function [psi : float -> float] supported on
    [-W/2, W/2] where [W] is the interpolation window width in (oversampled)
    grid units. The continuous Fourier transform [psi_hat] is needed for
    the NuFFT's apodization step; it is analytic (and exact) for
    Kaiser-Bessel and B-spline, and computed by quadrature for Gaussian and
    Sinc, whose truncation to the window support breaks the closed forms.

    The choice of window is application-specific (paper, §II-B); all four
    families mentioned in the paper are implemented. *)

type t =
  | Kaiser_bessel of float  (** shape parameter beta *)
  | Gaussian of float       (** standard deviation sigma, in grid units *)
  | Bspline                 (** cubic B-spline dilated to the window width *)
  | Sinc                    (** truncated sinc *)

val beatty_beta : width:int -> sigma:float -> float
(** Kaiser-Bessel shape parameter from Beatty, Nishimura & Pauly (2005) for
    oversampling factor [sigma] (1 < sigma <= 2) and window width [width]:
    [pi * sqrt ((W/sigma)^2 * (sigma - 0.5)^2 - 0.8)]. This is the setting
    that lets sigma < 2 retain accuracy by widening W (paper §II-B). *)

val default_kaiser_bessel : width:int -> sigma:float -> t
(** Kaiser-Bessel with the Beatty beta. *)

val default_gaussian : width:int -> t
(** Gaussian whose tail at the truncation edge [W/2] is ~1%. *)

val eval : t -> width:int -> float -> float
(** [eval kernel ~width t] is psi(t); zero for [|t| >= width/2]. The peak
    value psi(0) is normalised to 1 for Kaiser-Bessel, Gaussian and Sinc;
    the B-spline uses its conventional partition-of-unity normalisation. *)

val ft : t -> width:int -> float -> float
(** [ft kernel ~width f] is the continuous Fourier transform
    [integral psi(t) e^{-2 pi i f t} dt] (real, since psi is even) at
    frequency [f] in cycles per grid unit. *)

val ft_numeric : t -> width:int -> float -> float
(** Quadrature evaluation of the same transform (composite Simpson, 2048
    panels) — used to cross-check the analytic forms in tests and as the
    implementation for truncated Gaussian and Sinc. *)

val pp : Format.formatter -> t -> unit
