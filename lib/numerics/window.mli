(** Interpolation window (kernel) functions for NuFFT gridding.

    Each kernel is an even function [psi : float -> float] supported on
    [-W/2, W/2] where [W] is the interpolation window width in (oversampled)
    grid units. The continuous Fourier transform [psi_hat] is needed for
    the NuFFT's apodization step; it is analytic (and exact) for
    Kaiser-Bessel and B-spline, and computed by quadrature for Gaussian,
    Sinc and the exponential-of-semicircle kernel, which have no closed
    form once truncated to the window support.

    The choice of window is application-specific (paper, §II-B); all four
    families mentioned in the paper are implemented, plus the
    "exponential of semicircle" (ES) kernel of Barnett, Magland &
    af Klinteberg (FINUFFT), whose width is cheaply derivable from a
    requested accuracy — see {!for_tolerance}. *)

type t =
  | Kaiser_bessel of float  (** shape parameter beta *)
  | Gaussian of float       (** standard deviation sigma, in grid units *)
  | Bspline                 (** cubic B-spline dilated to the window width *)
  | Sinc                    (** truncated sinc *)
  | Exp_semicircle of float
      (** shape parameter beta:
          [psi(t) = exp (beta (sqrt (1 - (2t/W)^2) - 1))] *)

val beatty_beta : width:int -> sigma:float -> float
(** Kaiser-Bessel shape parameter from Beatty, Nishimura & Pauly (2005) for
    oversampling factor [sigma] (1 < sigma <= 2) and window width [width]:
    [pi * sqrt ((W/sigma)^2 * (sigma - 0.5)^2 - 0.8)]. This is the setting
    that lets sigma < 2 retain accuracy by widening W (paper §II-B). *)

val default_kaiser_bessel : width:int -> sigma:float -> t
(** Kaiser-Bessel with the Beatty beta. *)

val es_beta : width:int -> sigma:float -> float
(** Near-optimal ES shape parameter (Barnett et al. 2019):
    [0.97 * pi * W * (1 - 1/(2 sigma))]. Raises for [sigma <= 1] or
    [width < 2]. *)

val default_exp_semicircle : width:int -> sigma:float -> t
(** Exponential of semicircle with the {!es_beta} shape parameter. *)

val default_gaussian : width:int -> t
(** Gaussian whose tail at the truncation edge [W/2] is ~1%. *)

val eval : t -> width:int -> float -> float
(** [eval kernel ~width t] is psi(t); zero for [|t| >= width/2]. The peak
    value psi(0) is normalised to 1 for Kaiser-Bessel, Gaussian, Sinc and
    Exp_semicircle; the B-spline uses its conventional partition-of-unity
    normalisation. *)

val ft : t -> width:int -> float -> float
(** [ft kernel ~width f] is the continuous Fourier transform
    [integral psi(t) e^{-2 pi i f t} dt] (real, since psi is even) at
    frequency [f] in cycles per grid unit. *)

val ft_numeric : ?panels:int -> t -> width:int -> float -> float
(** Quadrature evaluation of the same transform (composite Simpson) —
    used to cross-check the analytic forms in tests and as the
    implementation for truncated Gaussian, Sinc and ES. [panels] defaults
    to [max 2048 (256 * width)] so wide kernels keep their panel density;
    an explicit odd count is rounded up to even (Simpson needs an even
    panel count). Raises for [panels < 2]. *)

(** {2 Tolerance-driven geometry}

    FINUFFT-class libraries take a requested relative tolerance and derive
    the kernel geometry from it. The ES aliasing error decays like
    [exp (-pi W sqrt (1 - 1/sigma))] — at [sigma = 2] roughly one decimal
    digit per unit of width ([W ~ log10(1/tol) + 1]) — and Kaiser-Bessel
    at the Beatty beta matches the same exponential rate, so one width law
    serves both families. The measured contract (observed relative-L2
    error vs the exact NuDFT <= 10x the request) is asserted over the
    full sweep by [test_accuracy.ml]. *)

(** Kernel family selector for {!for_tolerance}. *)
type family = KB | ES

val family_name : family -> string
(** ["kaiser-bessel"] / ["es"]. *)

val family_of_string : string -> family option
(** Accepts ["es"], ["exp-semicircle"], ["kb"], ["kaiser-bessel"], ... *)

val width_for_tolerance :
  ?family:family -> tol:float -> sigma:float -> unit -> int
(** Window width achieving [tol] at oversampling [sigma]:
    [ceil (ln (1/tol) / (pi sqrt (1 - 1/sigma))) + 1], clamped to
    [2, 16]. Default family ES. Raises for [tol] outside (0, 1) or
    [sigma <= 1]; tolerances below 1e-12 saturate. *)

val for_tolerance : ?family:family -> tol:float -> sigma:float -> unit -> t * int
(** [for_tolerance ~family ~tol ~sigma ()] is the kernel (with its shape
    parameter set for the derived width) and the width itself. *)

val lut_for_tolerance : tol:float -> int
(** Weight-table oversampling [L] needed so the nearest-address LUT's
    rounding floor (measured ~0.36/L) stays below [tol]: the next power
    of two >= [0.5 / tol], clamped to [512, 262144]. *)

val default_width : sigma:float -> int
(** Plan default width when the caller fixes only [sigma]: holds the
    Beatty-beta argument at its (w = 6, sigma = 2) reference —
    [ceil (4.5 sigma / (sigma - 0.5))] — so narrower oversampling widens
    the window instead of silently losing accuracy. [sigma = 2] gives the
    historical default 6. *)

val pp : Format.formatter -> t -> unit

val name : t -> string
(** Family name without parameters — stable across widths, used in cache
    keys and bench rows. *)
