let i0 x =
  let h = 0.5 *. Float.abs x in
  let h2 = h *. h in
  let rec loop k term sum =
    if term <= 1e-18 *. sum || k > 1000 then sum
    else begin
      let term = term *. h2 /. (float_of_int k *. float_of_int k) in
      loop (k + 1) term (sum +. term)
    end
  in
  loop 1 1.0 1.0
