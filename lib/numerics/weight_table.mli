(** Precomputed oversampled interpolation weight tables (LUTs).

    The supported non-uniform coordinate granularity is defined by the table
    oversampling factor [L]: there are [W*L] discrete weights across the
    window in each dimension, and distances are rounded to the nearest
    weight (paper §II-B). Because the window is symmetric about its centre,
    only half the weights are stored ([W*L/2 + 1] entries covering distances
    [0 .. W/2] in steps of [1/L]) — exactly the storage trick that lets the
    JIGSAW weight SRAM hold W=8, L=64 in 256 entries (paper §IV).

    Three numeric variants mirror the three evaluated systems:
    double-precision (MIRT baseline), simulated single precision
    (GPU implementations), and 16-bit fixed point (JIGSAW hardware). *)

type precision =
  | Double   (** MIRT-class reference *)
  | Single   (** GPU implementations: every stored weight rounded to f32 *)
  | Fixed16  (** JIGSAW: Q1.15 weights *)

type t

val make : ?precision:precision -> kernel:Window.t -> width:int -> l:int -> unit -> t
(** Build a table for [kernel] of window width [width] with oversampling
    factor [l]. Raises [Invalid_argument] if [width < 1] or [l < 1]. *)

val kernel : t -> Window.t
val width : t -> int
val oversampling : t -> int
val precision : t -> precision

val entries : t -> int
(** Number of stored (half-window) entries, [width*l/2 + 1]. *)

val data : t -> float array
(** The raw (quantised) weight array itself, indexed by table address.
    Hot-loop escape hatch: under the dev profile dune compiles with
    [-opaque], which disables cross-module inlining, so per-lookup calls
    into this module would box their float argument and result. Engines
    hoist [data]/[oversampling] once per gridding call and perform the
    {!lookup} arithmetic ([round (|d| * L)] + bounds check) locally.
    Callers must not mutate the array. *)

val address_of_distance : t -> float -> int option
(** [address_of_distance t d] is the table address for absolute distance
    [d]: [round (|d| * L)], or [None] when the rounded address falls outside
    the window (the sample does not affect the point). This mirrors the
    JIGSAW select unit's table-address generation. *)

val get : t -> int -> float
(** Weight stored at a table address (already quantised to the table's
    precision). Raises [Invalid_argument] if out of range. *)

val get_q15 : t -> int -> int
(** Raw Q1.15 representation of the entry — meaningful for any precision
    (quantised on demand for Double/Single); used to initialise the JIGSAW
    weight SRAMs. *)

val quantize_distance : t -> float -> int
(** [quantize_distance t d] is the raw table address [round (|d| * L)]
    without the range check — always [>= 0], possibly past the table end.
    This is the "quantized LUT distance" the int-encoded column check
    packs; feed it to {!weight_at}. *)

val weight_at : t -> int -> float
(** [weight_at t a] is the weight at raw address [a >= 0], or [0.0] when
    [a] falls past the table end — the allocation-free counterpart of
    {!get} used by the hot loops. *)

val lookup : t -> float -> float
(** [lookup t d] is the tabulated weight for signed distance [d] (0 outside
    the window); equal to [weight_at t (quantize_distance t d)].
    Allocation-free. *)

val lookup_exact : t -> float -> float
(** The kernel evaluated directly (no table quantisation) — the "L = inf"
    reference against which table error is measured. *)

val max_table_error : t -> float
(** Max over a dense probe grid of |lookup - lookup_exact|: the rounding
    error introduced by finite [L] and the storage precision. *)
