(** Small dense complex linear algebra.

    Just enough for the min-max interpolation kernel (Fessler & Sutton
    2003): solving the [J x J] ([J <= 8]) Hermitian systems that yield the
    optimal per-sample interpolation coefficients. Matrices are arrays of
    rows of {!Complexd.t}. Gaussian elimination with partial pivoting —
    entirely adequate at these sizes. *)

type matrix = Complexd.t array array

val identity : int -> matrix
val matvec : matrix -> Complexd.t array -> Complexd.t array
val transpose_conj : matrix -> matrix

val solve : matrix -> Complexd.t array -> Complexd.t array
(** [solve a b] solves [a x = b] (copies its inputs; [a] must be square and
    nonsingular). Raises [Failure] on a (numerically) singular matrix. *)

val solve_regularized : ?mu:float -> matrix -> Complexd.t array -> Complexd.t array
(** [solve (a + mu I) x = b] — the tiny Tikhonov term ([mu] defaults to
    [1e-12] times the largest diagonal magnitude) keeps nearly singular
    min-max systems stable, as MIRT does. *)

val residual_norm : matrix -> Complexd.t array -> Complexd.t array -> float
(** [||a x - b||_2], for tests. *)
