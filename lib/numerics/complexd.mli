(** Double-precision complex arithmetic.

    A small, allocation-conscious complex number module used throughout the
    reproduction. Values are immutable records of two floats. In addition to
    the usual field-wise product, [mul_knuth] implements the 3-multiplication
    complex product used by the JIGSAW weight-lookup and interpolation units
    (Knuth, TAOCP vol. 1); both products agree up to floating-point rounding
    and the tests check that. *)

type t = { re : float; im : float }

val zero : t
val one : t
val i : t

val make : float -> float -> t
(** [make re im] is the complex number [re + i*im]. *)

val of_float : float -> t
(** [of_float x] is [x + 0i]. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val conj : t -> t

val mul : t -> t -> t
(** Field-wise product: 4 multiplications, 2 additions. *)

val mul_knuth : t -> t -> t
(** Knuth's product: 3 real multiplications and 5 additions/subtractions,
    as implemented by the JIGSAW hardware. Algebraically equal to {!mul}. *)

val scale : float -> t -> t
val div : t -> t -> t
val inv : t -> t

val exp_i : float -> t
(** [exp_i theta] is [e^{i theta}] = [cos theta + i sin theta]. *)

val norm2 : t -> float
(** Squared magnitude. *)

val norm : t -> float
(** Magnitude. *)

val arg : t -> float

val equal : ?eps:float -> t -> t -> bool
(** Component-wise comparison with absolute tolerance [eps] (default 0). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
