(** Dense complex vectors stored as interleaved [Bigarray.Array1] float64
    buffers.

    Layout: element [k] occupies indices [2k] (real) and [2k+1] (imaginary)
    of a C-layout float64 bigarray. The data lives outside the OCaml heap in
    one flat malloc'd block — contiguous, cache-friendly, never moved or
    scanned by the GC, and accessible through bounds-check-free primitives
    that compile to direct loads/stores. This is the storage layout the
    paper's gridding kernels stream over; all gridding engines, the FFT and
    the simulators exchange data in this format.

    The [unsafe_*] accessors are the hot-path interface: no bounds check, no
    boxed [Complexd.t], no allocation. The boxed {!get}/{!set} interface
    remains for construction, tests and cold paths. *)

type t = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Interleaved storage; dimension is always [2 * length]. *)

val create : int -> t
(** [create n] is a zeroed vector of [n] complex elements. *)

val length : t -> int
(** Number of complex elements. *)

(** {2 Hot-path primitives (no bounds check, no allocation)} *)

val unsafe_get_re : t -> int -> float
val unsafe_get_im : t -> int -> float

val unsafe_set_parts : t -> int -> float -> float -> unit
(** [unsafe_set_parts v k re im] stores [re + i*im] at element [k]. *)

val unsafe_accumulate_parts : t -> int -> float -> float -> unit
(** [unsafe_accumulate_parts v k re im] adds [re + i*im] to element [k] —
    the fundamental gridding update, as two raw float read-modify-writes. *)

(** {2 Checked scalar access} *)

val get : t -> int -> Complexd.t
val set : t -> int -> Complexd.t -> unit

val get_re : t -> int -> float
val get_im : t -> int -> float
val set_parts : t -> int -> float -> float -> unit

val accumulate_parts : t -> int -> float -> float -> unit
(** Bounds-checked variant of {!unsafe_accumulate_parts}. *)

val accumulate : t -> int -> Complexd.t -> unit
(** [accumulate v k c] adds [c] to element [k] in place. *)

(** {2 Bulk operations} *)

val fill_zero : t -> unit
val copy : t -> t
val blit : t -> t -> unit

val blit_complex :
  src:t -> src_pos:int -> dst:t -> dst_pos:int -> len:int -> unit
(** Copy [len] consecutive complex elements; a raw [memcpy] underneath
    (used by the FFT's contiguous line gather/scatter). *)

val of_complex_array : Complexd.t array -> t
val to_complex_array : t -> Complexd.t array

val init : int -> (int -> Complexd.t) -> t
val map : (Complexd.t -> Complexd.t) -> t -> t
val iteri : (int -> Complexd.t -> unit) -> t -> unit
val fold : ('a -> Complexd.t -> 'a) -> 'a -> t -> 'a

val scale_inplace : float -> t -> unit
val add_inplace : t -> t -> unit
(** [add_inplace dst src] adds [src] into [dst] element-wise. *)

val axpy_inplace : float -> x:t -> t -> unit
(** [axpy_inplace alpha ~x y] is [y <- y + alpha * x] over the raw floats —
    the CG update, allocation-free. *)

val xpay_inplace : float -> x:t -> t -> unit
(** [xpay_inplace alpha ~x y] is [y <- x + alpha * y] (the CG direction
    update). *)

val dot : t -> t -> Complexd.t
(** Hermitian inner product [sum conj(a_k) * b_k]. *)

val norm2 : t -> float
(** Sum of squared magnitudes. *)

val max_abs_diff : t -> t -> float
(** Largest component-wise absolute difference (over both parts). *)

val nrmsd : reference:t -> t -> float
(** Normalised root-mean-square difference, as used for the paper's image
    quality evaluation (Fig 9):
    [sqrt (sum |x_k - r_k|^2 / sum |r_k|^2)]. Raises [Invalid_argument] on
    length mismatch or a zero reference. *)

val pp : Format.formatter -> t -> unit
(** Prints at most the first 8 elements, for debugging. *)
