(** Dense complex vectors stored as interleaved [float array]s.

    Layout: element [k] occupies indices [2k] (real) and [2k+1] (imaginary).
    OCaml float arrays are unboxed, so this layout gives contiguous,
    cache-friendly storage comparable to a C array of structs — the layout
    the paper's gridding kernels operate on. All gridding engines, the FFT,
    and the simulators exchange data in this format. *)

type t = float array
(** Interleaved storage; length is always even. *)

val create : int -> t
(** [create n] is a zeroed vector of [n] complex elements. *)

val length : t -> int
(** Number of complex elements. *)

val get : t -> int -> Complexd.t
val set : t -> int -> Complexd.t -> unit

val get_re : t -> int -> float
val get_im : t -> int -> float
val set_parts : t -> int -> float -> float -> unit

val accumulate : t -> int -> Complexd.t -> unit
(** [accumulate v k c] adds [c] to element [k] in place — the fundamental
    gridding update. *)

val fill_zero : t -> unit
val copy : t -> t
val blit : t -> t -> unit

val of_complex_array : Complexd.t array -> t
val to_complex_array : t -> Complexd.t array

val init : int -> (int -> Complexd.t) -> t
val map : (Complexd.t -> Complexd.t) -> t -> t
val iteri : (int -> Complexd.t -> unit) -> t -> unit
val fold : ('a -> Complexd.t -> 'a) -> 'a -> t -> 'a

val scale_inplace : float -> t -> unit
val add_inplace : t -> t -> unit
(** [add_inplace dst src] adds [src] into [dst] element-wise. *)

val dot : t -> t -> Complexd.t
(** Hermitian inner product [sum conj(a_k) * b_k]. *)

val norm2 : t -> float
(** Sum of squared magnitudes. *)

val max_abs_diff : t -> t -> float
(** Largest component-wise absolute difference (over both parts). *)

val nrmsd : reference:t -> t -> float
(** Normalised root-mean-square difference, as used for the paper's image
    quality evaluation (Fig 9):
    [sqrt (sum |x_k - r_k|^2 / sum |r_k|^2)]. Raises [Invalid_argument] on
    length mismatch or a zero reference. *)

val pp : Format.formatter -> t -> unit
(** Prints at most the first 8 elements, for debugging. *)
