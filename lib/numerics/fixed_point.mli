(** Parametric signed fixed-point arithmetic.

    JIGSAW performs all datapath operations in 32-bit signed fixed point,
    with 16-bit interpolation weights. This module models two's-complement
    Q-format values exactly: a format [fmt] with [total_bits] and
    [frac_bits] represents the value [raw / 2^frac_bits] where [raw] is a
    signed integer of [total_bits] bits. Raw values are carried in native
    [int]s (63 usable bits — ample for any format up to 48 bits), and every
    operation rounds to nearest (ties away from zero) and saturates to the
    format's representable range, like a hardware ALU with saturation
    logic. *)

type fmt = private { total_bits : int; frac_bits : int }

val fmt : total_bits:int -> frac_bits:int -> fmt
(** Create a format. Raises [Invalid_argument] unless
    [0 < total_bits <= 48] and [0 <= frac_bits < total_bits]. *)

val q31 : fmt
(** 32-bit, 1 integer (sign) bit, 31 fractional bits: the JIGSAW pipeline
    format for normalised sample data. *)

val q15 : fmt
(** 16-bit, 15 fractional bits: the JIGSAW interpolation weight format. *)

val pipeline_fmt : fmt
(** 32-bit with 23 fractional bits — the accumulation format used by our
    JIGSAW model: 8 integer bits of headroom so that thousands of
    overlapping kernel contributions do not saturate. *)

val max_raw : fmt -> int
val min_raw : fmt -> int

val epsilon : fmt -> float
(** The value of one least-significant bit, [2^-frac_bits]. *)

val of_float : fmt -> float -> int
(** Quantise a real to raw representation: round to nearest, saturate. *)

val to_float : fmt -> int -> float

val saturate : fmt -> int -> int
(** Clamp an arbitrary integer to the format's raw range. *)

val add : fmt -> int -> int -> int
val sub : fmt -> int -> int -> int
val neg : fmt -> int -> int

val mul : fmt -> int -> int -> int
(** Product of two values of format [fmt]: the exact double-width product is
    rounded back (shift with round-to-nearest) and saturated. *)

val mul_mixed : a_fmt:fmt -> b_fmt:fmt -> out_fmt:fmt -> int -> int -> int
(** Product of values in two different formats, rounded and saturated into
    [out_fmt] — e.g. a Q1.15 weight times a Q8.23 sample. *)

(** Complex fixed-point values and the Knuth 3-multiplication product used
    by the JIGSAW weight-lookup and interpolation units. *)
module Complex : sig
  type t = { re : int; im : int }

  val zero : t
  val of_complexd : fmt -> Complexd.t -> t
  val to_complexd : fmt -> t -> Complexd.t
  val add : fmt -> t -> t -> t
  val sub : fmt -> t -> t -> t

  val mul_knuth : fmt -> t -> t -> t
  (** Same-format Knuth complex product (3 real multiplies, 5 add/subs). *)

  val mul_knuth_mixed : a_fmt:fmt -> b_fmt:fmt -> out_fmt:fmt -> t -> t -> t
  (** Mixed-format Knuth complex product: cross terms are computed at full
      precision and rounded once into [out_fmt], matching a hardware
      implementation that keeps double-width partial products. *)
end

val quantization_error_bound : fmt -> float
(** Half an LSB: the worst-case error of a single [of_float]. *)
