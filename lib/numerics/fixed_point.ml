type fmt = { total_bits : int; frac_bits : int }

let fmt ~total_bits ~frac_bits =
  if total_bits <= 0 || total_bits > 48 then
    invalid_arg "Fixed_point.fmt: total_bits must be in 1..48";
  if frac_bits < 0 || frac_bits >= total_bits then
    invalid_arg "Fixed_point.fmt: frac_bits must be in 0..total_bits-1";
  { total_bits; frac_bits }

let q31 = { total_bits = 32; frac_bits = 31 }
let q15 = { total_bits = 16; frac_bits = 15 }
let pipeline_fmt = { total_bits = 32; frac_bits = 23 }

let max_raw f = (1 lsl (f.total_bits - 1)) - 1
let min_raw f = -(1 lsl (f.total_bits - 1))
let epsilon f = ldexp 1.0 (-f.frac_bits)

let saturate f raw =
  let hi = max_raw f and lo = min_raw f in
  if raw > hi then hi else if raw < lo then lo else raw

let of_float f x =
  let scaled = x *. ldexp 1.0 f.frac_bits in
  if Float.is_nan scaled then 0
  else if scaled >= float_of_int (max_raw f) then max_raw f
  else if scaled <= float_of_int (min_raw f) then min_raw f
  else saturate f (int_of_float (Float.round scaled))

let to_float f raw = float_of_int raw *. epsilon f

let add f a b = saturate f (a + b)
let sub f a b = saturate f (a - b)
let neg f a = saturate f (-a)

(* Shift right by [n] with round-to-nearest, ties away from zero. *)
let round_shift x n =
  if n = 0 then x
  else begin
    let half = 1 lsl (n - 1) in
    if x >= 0 then (x + half) asr n else -((-x + half) asr n)
  end

let mul f a b = saturate f (round_shift (a * b) f.frac_bits)

let mul_mixed ~a_fmt ~b_fmt ~out_fmt a b =
  (* Exact product carries a_fmt.frac + b_fmt.frac fractional bits; shift to
     the output format's fractional position. *)
  let shift = a_fmt.frac_bits + b_fmt.frac_bits - out_fmt.frac_bits in
  let p = a * b in
  let raw = if shift >= 0 then round_shift p shift else p lsl -shift in
  saturate out_fmt raw

module Complex = struct
  type t = { re : int; im : int }

  let zero = { re = 0; im = 0 }

  let of_complexd f (c : Complexd.t) =
    { re = of_float f c.Complexd.re; im = of_float f c.Complexd.im }

  let to_complexd f c = Complexd.make (to_float f c.re) (to_float f c.im)

  let add f a b = { re = add f a.re b.re; im = add f a.im b.im }
  let sub f a b = { re = sub f a.re b.re; im = sub f a.im b.im }

  let mul_knuth f a b =
    let t1 = b.re * (a.re + a.im) in
    let t2 = a.re * (b.im - b.re) in
    let t3 = a.im * (b.re + b.im) in
    { re = saturate f (round_shift (t1 - t3) f.frac_bits);
      im = saturate f (round_shift (t1 + t2) f.frac_bits) }

  let mul_knuth_mixed ~a_fmt ~b_fmt ~out_fmt a b =
    let shift = a_fmt.frac_bits + b_fmt.frac_bits - out_fmt.frac_bits in
    let resize p =
      if shift >= 0 then saturate out_fmt (round_shift p shift)
      else saturate out_fmt (p lsl -shift)
    in
    let t1 = b.re * (a.re + a.im) in
    let t2 = a.re * (b.im - b.re) in
    let t3 = a.im * (b.re + b.im) in
    { re = resize (t1 - t3); im = resize (t1 + t2) }
end

let quantization_error_bound f = 0.5 *. epsilon f
