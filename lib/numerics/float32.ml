let round x = Int32.float_of_bits (Int32.bits_of_float x)

let add a b = round (a +. b)
let sub a b = round (a -. b)
let mul a b = round (a *. b)
let div a b = round (a /. b)

let cadd a b =
  Complexd.make
    (add a.Complexd.re b.Complexd.re)
    (add a.Complexd.im b.Complexd.im)

let csub a b =
  Complexd.make
    (sub a.Complexd.re b.Complexd.re)
    (sub a.Complexd.im b.Complexd.im)

let cmul (a : Complexd.t) (b : Complexd.t) =
  Complexd.make
    (sub (mul a.re b.re) (mul a.im b.im))
    (add (mul a.re b.im) (mul a.im b.re))

let cmul_knuth (a : Complexd.t) (b : Complexd.t) =
  let t1 = mul b.re (add a.re a.im) in
  let t2 = mul a.re (sub b.im b.re) in
  let t3 = mul a.im (add b.re b.im) in
  Complexd.make (sub t1 t3) (add t1 t2)

let cround (c : Complexd.t) = Complexd.make (round c.re) (round c.im)

let cvec_round v =
  let n = Bigarray.Array1.dim v in
  let out = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
  for j = 0 to n - 1 do
    Bigarray.Array1.unsafe_set out j (round (Bigarray.Array1.unsafe_get v j))
  done;
  out
