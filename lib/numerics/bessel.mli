(** Modified Bessel function of the first kind, order zero.

    [i0] underlies the Kaiser-Bessel interpolation window used by MIRT,
    Impatient and JIGSAW. Computed by the absolutely convergent power
    series, accurate to double precision for the argument range that occurs
    in gridding (beta <= ~40 for W <= 8). *)

val i0 : float -> float
(** [i0 x] = sum_{k>=0} ((x/2)^{2k} / (k!)^2). Defined for all finite [x];
    even in [x]. *)
