(** Simulated IEEE-754 single precision.

    OCaml floats are doubles; the paper's GPU implementations use single
    precision "to closely match the prior work". We simulate binary32 by
    rounding the double result of every operation through
    [Int32.bits_of_float], which performs correct round-to-nearest-even
    conversion. Each operation is computed in double and then rounded once;
    for +, -, *, / on normal f32 inputs this equals direct binary32
    arithmetic because the double intermediate holds the exact (or
    sufficiently precise) result before the single rounding. *)

val round : float -> float
(** Round a double to the nearest representable binary32 value. *)

val add : float -> float -> float
val sub : float -> float -> float
val mul : float -> float -> float
val div : float -> float -> float

val cadd : Complexd.t -> Complexd.t -> Complexd.t
val csub : Complexd.t -> Complexd.t -> Complexd.t

val cmul : Complexd.t -> Complexd.t -> Complexd.t
(** Complex product with every intermediate rounded to f32 (4-mult form). *)

val cmul_knuth : Complexd.t -> Complexd.t -> Complexd.t
(** Knuth 3-mult complex product at f32 precision. *)

val cround : Complexd.t -> Complexd.t
val cvec_round : Cvec.t -> Cvec.t
(** Round every component of a complex vector to f32. *)
