type t = float array

let create n = Array.make (2 * n) 0.0

let length v = Array.length v / 2

let get v k = Complexd.make v.(2 * k) v.((2 * k) + 1)

let set v k (c : Complexd.t) =
  v.(2 * k) <- c.Complexd.re;
  v.((2 * k) + 1) <- c.Complexd.im

let get_re v k = v.(2 * k)
let get_im v k = v.((2 * k) + 1)

let set_parts v k re im =
  v.(2 * k) <- re;
  v.((2 * k) + 1) <- im

let accumulate v k (c : Complexd.t) =
  v.(2 * k) <- v.(2 * k) +. c.Complexd.re;
  v.((2 * k) + 1) <- v.((2 * k) + 1) +. c.Complexd.im

let fill_zero v = Array.fill v 0 (Array.length v) 0.0
let copy = Array.copy

let blit src dst =
  if Array.length src <> Array.length dst then
    invalid_arg "Cvec.blit: length mismatch";
  Array.blit src 0 dst 0 (Array.length src)

let of_complex_array a =
  let v = create (Array.length a) in
  Array.iteri (fun k c -> set v k c) a;
  v

let to_complex_array v = Array.init (length v) (get v)

let init n f =
  let v = create n in
  for k = 0 to n - 1 do
    set v k (f k)
  done;
  v

let map f v = init (length v) (fun k -> f (get v k))

let iteri f v =
  for k = 0 to length v - 1 do
    f k (get v k)
  done

let fold f acc v =
  let acc = ref acc in
  for k = 0 to length v - 1 do
    acc := f !acc (get v k)
  done;
  !acc

let scale_inplace s v =
  for j = 0 to Array.length v - 1 do
    v.(j) <- s *. v.(j)
  done

let add_inplace dst src =
  if Array.length dst <> Array.length src then
    invalid_arg "Cvec.add_inplace: length mismatch";
  for j = 0 to Array.length dst - 1 do
    dst.(j) <- dst.(j) +. src.(j)
  done

let dot a b =
  if Array.length a <> Array.length b then
    invalid_arg "Cvec.dot: length mismatch";
  let re = ref 0.0 and im = ref 0.0 in
  for k = 0 to length a - 1 do
    let ar = a.(2 * k) and ai = a.((2 * k) + 1) in
    let br = b.(2 * k) and bi = b.((2 * k) + 1) in
    re := !re +. ((ar *. br) +. (ai *. bi));
    im := !im +. ((ar *. bi) -. (ai *. br))
  done;
  Complexd.make !re !im

let norm2 v =
  let s = ref 0.0 in
  for j = 0 to Array.length v - 1 do
    s := !s +. (v.(j) *. v.(j))
  done;
  !s

let max_abs_diff a b =
  if Array.length a <> Array.length b then
    invalid_arg "Cvec.max_abs_diff: length mismatch";
  let m = ref 0.0 in
  for j = 0 to Array.length a - 1 do
    let d = Float.abs (a.(j) -. b.(j)) in
    if d > !m then m := d
  done;
  !m

let nrmsd ~reference v =
  if Array.length reference <> Array.length v then
    invalid_arg "Cvec.nrmsd: length mismatch";
  let num = ref 0.0 and den = ref 0.0 in
  for j = 0 to Array.length v - 1 do
    let d = v.(j) -. reference.(j) in
    num := !num +. (d *. d);
    den := !den +. (reference.(j) *. reference.(j))
  done;
  if !den = 0.0 then invalid_arg "Cvec.nrmsd: zero reference";
  sqrt (!num /. !den)

let pp ppf v =
  let n = min 8 (length v) in
  Format.fprintf ppf "[|";
  for k = 0 to n - 1 do
    if k > 0 then Format.fprintf ppf "; ";
    Complexd.pp ppf (get v k)
  done;
  if length v > n then Format.fprintf ppf "; ...";
  Format.fprintf ppf "|](%d)" (length v)
