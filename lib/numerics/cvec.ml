module Ba = Bigarray
module A1 = Bigarray.Array1

type t = (float, Ba.float64_elt, Ba.c_layout) A1.t

let create n =
  let v = A1.create Ba.float64 Ba.c_layout (2 * n) in
  A1.fill v 0.0;
  v

let length (v : t) = A1.dim v / 2

(* Raw interleaved-float accessors. The [unsafe_] variants skip the bounds
   check entirely and are the only accessors the per-sample / per-butterfly
   hot loops use; Bigarray float64 loads/stores compile to direct memory
   operations with no boxing. *)

let[@inline] unsafe_get_re (v : t) k = A1.unsafe_get v (2 * k)
let[@inline] unsafe_get_im (v : t) k = A1.unsafe_get v ((2 * k) + 1)

let[@inline] unsafe_set_parts (v : t) k re im =
  A1.unsafe_set v (2 * k) re;
  A1.unsafe_set v ((2 * k) + 1) im

let[@inline] unsafe_accumulate_parts (v : t) k re im =
  let j = 2 * k in
  A1.unsafe_set v j (A1.unsafe_get v j +. re);
  A1.unsafe_set v (j + 1) (A1.unsafe_get v (j + 1) +. im)

let[@inline] get_re (v : t) k = A1.get v (2 * k)
let[@inline] get_im (v : t) k = A1.get v ((2 * k) + 1)

let[@inline] set_parts (v : t) k re im =
  A1.set v (2 * k) re;
  A1.set v ((2 * k) + 1) im

let[@inline] accumulate_parts (v : t) k re im =
  let j = 2 * k in
  A1.set v j (A1.get v j +. re);
  A1.set v (j + 1) (A1.get v (j + 1) +. im)

let get v k = Complexd.make (get_re v k) (get_im v k)

let set v k (c : Complexd.t) = set_parts v k c.Complexd.re c.Complexd.im

let accumulate v k (c : Complexd.t) =
  accumulate_parts v k c.Complexd.re c.Complexd.im

let fill_zero (v : t) = A1.fill v 0.0

let copy (v : t) =
  let c = A1.create Ba.float64 Ba.c_layout (A1.dim v) in
  A1.blit v c;
  c

let blit (src : t) (dst : t) =
  if A1.dim src <> A1.dim dst then invalid_arg "Cvec.blit: length mismatch";
  A1.blit src dst

(* Plain forward float loop rather than [A1.blit] over [A1.sub] views:
   the sub proxies are two minor-heap allocations per call, and this runs
   per grid line inside the FFT passes. Callers pass non-overlapping
   ranges (distinct buffers, or a gather/scatter through a scratch). *)
let blit_complex ~(src : t) ~src_pos ~(dst : t) ~dst_pos ~len =
  if
    src_pos < 0 || dst_pos < 0 || len < 0
    || src_pos + len > length src
    || dst_pos + len > length dst
  then invalid_arg "Cvec.blit_complex: range out of bounds";
  let s0 = 2 * src_pos and d0 = 2 * dst_pos in
  for j = 0 to (2 * len) - 1 do
    A1.unsafe_set dst (d0 + j) (A1.unsafe_get src (s0 + j))
  done

let of_complex_array a =
  let v = create (Array.length a) in
  Array.iteri (fun k c -> set v k c) a;
  v

let to_complex_array v = Array.init (length v) (get v)

let init n f =
  let v = create n in
  for k = 0 to n - 1 do
    set v k (f k)
  done;
  v

let map f v = init (length v) (fun k -> f (get v k))

let iteri f v =
  for k = 0 to length v - 1 do
    f k (get v k)
  done

let fold f acc v =
  let acc = ref acc in
  for k = 0 to length v - 1 do
    acc := f !acc (get v k)
  done;
  !acc

let scale_inplace s (v : t) =
  for j = 0 to A1.dim v - 1 do
    A1.unsafe_set v j (s *. A1.unsafe_get v j)
  done

let add_inplace (dst : t) (src : t) =
  if A1.dim dst <> A1.dim src then
    invalid_arg "Cvec.add_inplace: length mismatch";
  for j = 0 to A1.dim dst - 1 do
    A1.unsafe_set dst j (A1.unsafe_get dst j +. A1.unsafe_get src j)
  done

(* y <- y + alpha * x and the CG update pair, fused so iterative solvers
   never touch per-element boxed complex values. *)
let axpy_inplace alpha ~(x : t) (y : t) =
  if A1.dim x <> A1.dim y then invalid_arg "Cvec.axpy_inplace: length mismatch";
  for j = 0 to A1.dim y - 1 do
    A1.unsafe_set y j (A1.unsafe_get y j +. (alpha *. A1.unsafe_get x j))
  done

let xpay_inplace alpha ~(x : t) (y : t) =
  if A1.dim x <> A1.dim y then invalid_arg "Cvec.xpay_inplace: length mismatch";
  for j = 0 to A1.dim y - 1 do
    A1.unsafe_set y j (A1.unsafe_get x j +. (alpha *. A1.unsafe_get y j))
  done

let dot a b =
  if A1.dim a <> A1.dim b then invalid_arg "Cvec.dot: length mismatch";
  let re = ref 0.0 and im = ref 0.0 in
  for k = 0 to length a - 1 do
    let ar = unsafe_get_re a k and ai = unsafe_get_im a k in
    let br = unsafe_get_re b k and bi = unsafe_get_im b k in
    re := !re +. ((ar *. br) +. (ai *. bi));
    im := !im +. ((ar *. bi) -. (ai *. br))
  done;
  Complexd.make !re !im

let norm2 (v : t) =
  let s = ref 0.0 in
  for j = 0 to A1.dim v - 1 do
    let x = A1.unsafe_get v j in
    s := !s +. (x *. x)
  done;
  !s

let max_abs_diff (a : t) (b : t) =
  if A1.dim a <> A1.dim b then invalid_arg "Cvec.max_abs_diff: length mismatch";
  let m = ref 0.0 in
  for j = 0 to A1.dim a - 1 do
    let d = Float.abs (A1.unsafe_get a j -. A1.unsafe_get b j) in
    if d > !m then m := d
  done;
  !m

let nrmsd ~(reference : t) (v : t) =
  if A1.dim reference <> A1.dim v then
    invalid_arg "Cvec.nrmsd: length mismatch";
  let num = ref 0.0 and den = ref 0.0 in
  for j = 0 to A1.dim v - 1 do
    let d = A1.unsafe_get v j -. A1.unsafe_get reference j in
    num := !num +. (d *. d);
    den := !den +. (A1.unsafe_get reference j *. A1.unsafe_get reference j)
  done;
  if !den = 0.0 then invalid_arg "Cvec.nrmsd: zero reference";
  sqrt (!num /. !den)

let pp ppf v =
  let n = min 8 (length v) in
  Format.fprintf ppf "[|";
  for k = 0 to n - 1 do
    if k > 0 then Format.fprintf ppf "; ";
    Complexd.pp ppf (get v k)
  done;
  if length v > n then Format.fprintf ppf "; ...";
  Format.fprintf ppf "|](%d)" (length v)
