(* See telemetry.mli for the model. Implementation notes:

   - The enabled flag is one Atomic.t bool; every entry point loads it
     once. Disabled paths allocate nothing.
   - Span events are appended to a per-domain growable buffer ("sink")
     reached through Domain.DLS, so recording never contends between
     domains; sinks register themselves in a mutex-guarded global list
     the exporters walk.
   - Counters are atomic ints in a global registry; histograms take a
     per-histogram mutex (observation rates are per-task, not
     per-sample). *)

external now_ns_stub : unit -> int = "jigsaw_telemetry_now_ns" [@@noalloc]

module Clock = struct
  let now_ns = now_ns_stub
end

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* Span recording has its own flag so a long-running process (the serving
   tier) can keep counters and histograms live while the per-domain span
   sinks stay empty — spans accumulate without bound until [reset], which
   is fine for a bounded CLI run and fatal for a server. Both flags must
   be set for a span to record. *)
let spans_flag = Atomic.make true
let span_recording () = Atomic.get spans_flag
let set_span_recording b = Atomic.set spans_flag b

type event = {
  name : string;
  cat : string;
  tid : int;
  ts_ns : int;
  dur_ns : int;
  args : (string * string) list;
  seq : int;
}

(* ------------------------------------------------------------------ *)
(* Per-domain sinks *)

type sink = {
  tid : int;
  mutable events : event array;
  mutable len : int;
  mutable seq : int;
}

let registry_mutex = Mutex.create ()
let sinks : sink list ref = ref []

let sink_key =
  Domain.DLS.new_key (fun () ->
      let s =
        { tid = (Domain.self () :> int); events = [||]; len = 0; seq = 0 }
      in
      Mutex.lock registry_mutex;
      sinks := s :: !sinks;
      Mutex.unlock registry_mutex;
      s)

let push sink ev =
  let cap = Array.length sink.events in
  if sink.len = cap then begin
    let grown = Array.make (max 64 (2 * cap)) ev in
    Array.blit sink.events 0 grown 0 sink.len;
    sink.events <- grown
  end;
  sink.events.(sink.len) <- ev;
  sink.len <- sink.len + 1

let record ~name ~cat ~tid ~ts_ns ~dur_ns ~args =
  let sink = Domain.DLS.get sink_key in
  let ev =
    { name; cat; tid; ts_ns; dur_ns; args; seq = sink.seq }
  in
  sink.seq <- sink.seq + 1;
  push sink ev

(* ------------------------------------------------------------------ *)
(* Spans *)

type span =
  | Null
  | Open of { name : string; cat : string; args : (string * string) list;
              ts_ns : int }

let null_span = Null

let span_begin ?(cat = "misc") ?(args = []) name =
  if not (Atomic.get enabled_flag && Atomic.get spans_flag) then Null
  else Open { name; cat; args; ts_ns = Clock.now_ns () }

let span_end = function
  | Null -> ()
  | Open { name; cat; args; ts_ns } ->
      let dur_ns = Clock.now_ns () - ts_ns in
      record ~name ~cat ~tid:(Domain.self () :> int) ~ts_ns ~dur_ns ~args

let with_span ?cat name f =
  if not (Atomic.get enabled_flag && Atomic.get spans_flag) then f ()
  else begin
    let sp = span_begin ?cat name in
    match f () with
    | v ->
        span_end sp;
        v
    | exception e ->
        span_end sp;
        raise e
  end

let emit_span ?(cat = "misc") ?tid ?(args = []) ~name ~ts_ns ~dur_ns () =
  if Atomic.get enabled_flag && Atomic.get spans_flag then begin
    let tid = match tid with Some t -> t | None -> (Domain.self () :> int) in
    record ~name ~cat ~tid ~ts_ns ~dur_ns ~args
  end

(* ------------------------------------------------------------------ *)
(* Counters *)

module Counter = struct
  type t = { name : string; v : int Atomic.t }

  let table : (string, t) Hashtbl.t = Hashtbl.create 32

  let make name =
    Mutex.lock registry_mutex;
    let c =
      match Hashtbl.find_opt table name with
      | Some c -> c
      | None ->
          let c = { name; v = Atomic.make 0 } in
          Hashtbl.add table name c;
          c
    in
    Mutex.unlock registry_mutex;
    c

  let name c = c.name

  let add c n =
    if n < 0 then invalid_arg "Telemetry.Counter.add: negative increment";
    if Atomic.get enabled_flag && n > 0 then
      ignore (Atomic.fetch_and_add c.v n)

  let incr c = add c 1
  let value c = Atomic.get c.v

  let all () =
    Mutex.lock registry_mutex;
    let l = Hashtbl.fold (fun n c acc -> (n, value c) :: acc) table [] in
    Mutex.unlock registry_mutex;
    List.sort compare l

  let reset () =
    Mutex.lock registry_mutex;
    Hashtbl.iter (fun _ c -> Atomic.set c.v 0) table;
    Mutex.unlock registry_mutex
end

(* ------------------------------------------------------------------ *)
(* Histograms *)

module Histogram = struct
  type t = {
    name : string;
    m : Mutex.t;
    mutable count : int;
    mutable sum : float;
    mutable vmin : float;
    mutable vmax : float;
    buckets : int array;  (* log2 buckets: [0] for v < 1, then exponents *)
  }

  let table : (string, t) Hashtbl.t = Hashtbl.create 16

  let make name =
    Mutex.lock registry_mutex;
    let h =
      match Hashtbl.find_opt table name with
      | Some h -> h
      | None ->
          let h =
            { name; m = Mutex.create (); count = 0; sum = 0.0;
              vmin = infinity; vmax = neg_infinity;
              buckets = Array.make 64 0 }
          in
          Hashtbl.add table name h;
          h
    in
    Mutex.unlock registry_mutex;
    h

  let name h = h.name

  let bucket_of v =
    if not (v >= 1.0) then 0
    else min 63 (1 + int_of_float (Float.log2 v))

  let observe h v =
    if Atomic.get enabled_flag then begin
      Mutex.lock h.m;
      h.count <- h.count + 1;
      h.sum <- h.sum +. v;
      if v < h.vmin then h.vmin <- v;
      if v > h.vmax then h.vmax <- v;
      let b = bucket_of v in
      h.buckets.(b) <- h.buckets.(b) + 1;
      Mutex.unlock h.m
    end

  let count h = h.count
  let sum h = h.sum

  (* Observation counts per log2 bucket, as (inclusive upper bound, count)
     pairs up to the last populated bucket: bucket 0 covers v < 1, bucket
     k covers [2^(k-1), 2^k). Non-cumulative — a Prometheus exporter sums
     them into le-cumulative form. Snapshot under the histogram mutex so
     count/sum/buckets are mutually consistent. *)
  let buckets h =
    Mutex.lock h.m;
    let last = ref (-1) in
    Array.iteri (fun i c -> if c > 0 then last := i) h.buckets;
    let out =
      List.init (!last + 1) (fun i ->
          (Float.pow 2.0 (float_of_int i), h.buckets.(i)))
    in
    Mutex.unlock h.m;
    out
  let mean h = if h.count = 0 then nan else h.sum /. float_of_int h.count
  let min_value h = if h.count = 0 then nan else h.vmin
  let max_value h = if h.count = 0 then nan else h.vmax

  let all () =
    Mutex.lock registry_mutex;
    let l = Hashtbl.fold (fun _ h acc -> h :: acc) table [] in
    Mutex.unlock registry_mutex;
    List.sort (fun a b -> compare a.name b.name) l

  let reset () =
    Mutex.lock registry_mutex;
    Hashtbl.iter
      (fun _ h ->
        Mutex.lock h.m;
        h.count <- 0;
        h.sum <- 0.0;
        h.vmin <- infinity;
        h.vmax <- neg_infinity;
        Array.fill h.buckets 0 (Array.length h.buckets) 0;
        Mutex.unlock h.m)
      table;
    Mutex.unlock registry_mutex
end

(* ------------------------------------------------------------------ *)
(* Probes *)

let probe_table : (string, unit -> float) Hashtbl.t = Hashtbl.create 16

let register_probe name f =
  Mutex.lock registry_mutex;
  Hashtbl.replace probe_table name f;
  Mutex.unlock registry_mutex

let probes () =
  Mutex.lock registry_mutex;
  let l = Hashtbl.fold (fun n f acc -> (n, f) :: acc) probe_table [] in
  Mutex.unlock registry_mutex;
  List.sort compare (List.map (fun (n, f) -> (n, f ())) l)

(* ------------------------------------------------------------------ *)
(* Reset *)

let reset () =
  Mutex.lock registry_mutex;
  List.iter
    (fun s ->
      s.len <- 0;
      s.seq <- 0)
    !sinks;
  Hashtbl.reset probe_table;
  Mutex.unlock registry_mutex;
  Counter.reset ();
  Histogram.reset ()

(* ------------------------------------------------------------------ *)
(* Export *)

let events () =
  Mutex.lock registry_mutex;
  let collected =
    List.concat_map
      (fun s -> Array.to_list (Array.sub s.events 0 s.len))
      !sinks
  in
  Mutex.unlock registry_mutex;
  List.sort
    (fun a b ->
      let c = compare a.ts_ns b.ts_ns in
      if c <> 0 then c
      else
        let c = compare a.tid b.tid in
        if c <> 0 then c else compare a.seq b.seq)
    collected

(* Aggregated span tree. Per tid: sort by (ts asc, dur desc, seq asc) so a
   parent precedes the children it contains, then walk with a stack where
   event e is a child of the top while it lies inside the top's interval.
   Trees from every tid are merged by name path. *)

type node = {
  mutable calls : int;
  mutable total_ns : int;
  mutable child_ns : int;
  children : (string, node) Hashtbl.t;
}

let new_node () =
  { calls = 0; total_ns = 0; child_ns = 0; children = Hashtbl.create 8 }

let build_tree evs =
  let root = new_node () in
  let by_tid : (int, event list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (e : event) ->
      let l = try Hashtbl.find by_tid e.tid with Not_found -> [] in
      Hashtbl.replace by_tid e.tid (e :: l))
    evs;
  Hashtbl.iter
    (fun _ l ->
      let sorted =
        List.sort
          (fun a b ->
            let c = compare a.ts_ns b.ts_ns in
            if c <> 0 then c
            else
              let c = compare b.dur_ns a.dur_ns in
              if c <> 0 then c else compare a.seq b.seq)
          l
      in
      (* Stack of (event, node). *)
      let stack = ref [] in
      List.iter
        (fun e ->
          let rec unwind () =
            match !stack with
            | (p, _) :: rest
              when e.ts_ns >= p.ts_ns + p.dur_ns
                   || e.ts_ns + e.dur_ns > p.ts_ns + p.dur_ns ->
                stack := rest;
                unwind ()
            | _ -> ()
          in
          unwind ();
          let parent =
            match !stack with [] -> root | (_, n) :: _ -> n
          in
          let node =
            match Hashtbl.find_opt parent.children e.name with
            | Some n -> n
            | None ->
                let n = new_node () in
                Hashtbl.add parent.children e.name n;
                n
          in
          node.calls <- node.calls + 1;
          node.total_ns <- node.total_ns + e.dur_ns;
          (match !stack with
          | (_, p) :: _ -> p.child_ns <- p.child_ns + e.dur_ns
          | [] -> ());
          stack := (e, node) :: !stack)
        sorted)
    by_tid;
  root

let ms ns = float_of_int ns /. 1e6

let pp_tree ppf () =
  let root = build_tree (events ()) in
  let rec render indent node =
    let entries =
      Hashtbl.fold (fun name n acc -> (name, n) :: acc) node.children []
      |> List.sort (fun (_, a) (_, b) -> compare b.total_ns a.total_ns)
    in
    List.iter
      (fun (name, n) ->
        let self = n.total_ns - n.child_ns in
        Format.fprintf ppf "%s%-*s %6d x %10.3f ms  (self %.3f ms)@,"
          indent
          (max 1 (32 - String.length indent))
          name n.calls (ms n.total_ns) (ms self);
        render (indent ^ "  ") n)
      entries
  in
  Format.fprintf ppf "@[<v>";
  render "" root;
  Format.fprintf ppf "@]"

let tree_summary () = Format.asprintf "%a" pp_tree ()

let pp_metrics ppf () =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (n, v) -> Format.fprintf ppf "counter   %-40s %d@," n v)
    (Counter.all ());
  List.iter
    (fun h ->
      Format.fprintf ppf
        "histogram %-40s count=%d mean=%.3f min=%.3f max=%.3f@,"
        (Histogram.name h) (Histogram.count h) (Histogram.mean h)
        (Histogram.min_value h) (Histogram.max_value h))
    (Histogram.all ());
  List.iter
    (fun (n, v) -> Format.fprintf ppf "probe     %-40s %.3f@," n v)
    (probes ());
  Format.fprintf ppf "@]"

let metrics_summary () = Format.asprintf "%a" pp_metrics ()

(* Chrome trace_event JSON. Complete ("X") events carry microsecond
   ts/dur rebased to the earliest span so the viewer opens at t=0. *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let chrome_trace ?(counters = true) () =
  let evs = events () in
  let base = match evs with [] -> 0 | e :: _ -> e.ts_ns in
  let us ns = float_of_int ns /. 1e3 in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[\n";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string b ",\n"
  in
  List.iter
    (fun e ->
      sep ();
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":1,\
            \"tid\":%d,\"ts\":%.3f,\"dur\":%.3f"
           (json_escape e.name) (json_escape e.cat) e.tid
           (us (e.ts_ns - base))
           (us e.dur_ns));
      (match e.args with
      | [] -> ()
      | args ->
          Buffer.add_string b ",\"args\":{";
          List.iteri
            (fun i (k, v) ->
              if i > 0 then Buffer.add_char b ',';
              Buffer.add_string b
                (Printf.sprintf "\"%s\":\"%s\"" (json_escape k)
                   (json_escape v)))
            args;
          Buffer.add_char b '}');
      Buffer.add_char b '}')
    evs;
  if counters then begin
    let last =
      List.fold_left (fun acc e -> max acc (e.ts_ns + e.dur_ns)) base evs
    in
    List.iter
      (fun (n, v) ->
        if v > 0 then begin
          sep ();
          Buffer.add_string b
            (Printf.sprintf
               "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\
                \"ts\":%.3f,\"args\":{\"value\":%d}}"
               (json_escape n)
               (us (last - base))
               v)
        end)
      (Counter.all ())
  end;
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

let write_chrome_trace ?counters path =
  let oc = open_out path in
  output_string oc (chrome_trace ?counters ());
  close_out oc
