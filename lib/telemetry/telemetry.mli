(** Unified telemetry: spans, counters, histograms, probes, exporters.

    One process-wide view of where a reconstruction spends its time once
    plans, gridding engines, FFT line batches, the domain pool and the
    hardware-model backends interact — the per-stage accounting the
    paper's evaluation (§4–5) is built on, in the style of the per-phase
    breakdowns production NuFFT stacks expose (cuFINUFFT, FINUFFT).

    {2 Model}

    - {e Spans} are named, timed intervals on the {e monotonic} clock,
      recorded into a per-domain sink (no cross-domain contention on the
      hot path). Nesting is positional: a span opened while another is
      open on the same domain is its child. Synthetic spans with caller
      supplied timestamps model simulated hardware (cycle counts).
    - {e Counters} are process-wide monotonic integers (atomic, shared by
      all domains), registered by name.
    - {e Histograms} aggregate float observations (count/sum/min/max and
      log2 buckets) under a per-histogram mutex.
    - {e Probes} are lazy gauges: a name plus a closure sampled only at
      export time — how the existing [Gridding_stats] / operator stat
      structs publish into the registry without changing their hot paths.

    {2 Cost discipline}

    The whole layer is a near-no-op until {!set_enabled}[ true]:
    {!span_begin} checks one atomic flag and returns {!null_span} without
    allocating; {!with_span} calls its thunk directly; counter adds and
    histogram observations are skipped. Instrumentation call sites are
    expected to keep the disabled path allocation-free (build span names
    and args only after checking {!enabled}). *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val span_recording : unit -> bool

val set_span_recording : bool -> unit
(** Gate span recording independently of {!set_enabled} (default [true]).
    With spans off and telemetry on, counters and histograms keep
    recording while {!span_begin} returns {!null_span} — the configuration
    for a long-running server, whose per-domain span sinks would otherwise
    grow without bound between {!reset}s. *)

val reset : unit -> unit
(** Drop all recorded events, zero every counter, clear histograms and
    probes. Intended for tests and between CLI runs; not thread-safe
    with respect to concurrently recording domains. *)

module Clock : sig
  val now_ns : unit -> int
  (** Monotonic nanoseconds since an arbitrary epoch ([CLOCK_MONOTONIC];
      never decreases, allocation-free). *)
end

(** {2 Spans} *)

type span
(** Token returned by {!span_begin}; must be closed with {!span_end} on
    the same domain. *)

val null_span : span
(** The disabled token: {!span_end} on it is a no-op. *)

val span_begin : ?cat:string -> ?args:(string * string) list -> string -> span
(** Open a span named [name] (category [cat], default ["misc"]) at the
    current monotonic time. Returns {!null_span} without allocating when
    telemetry is disabled. *)

val span_end : span -> unit
(** Close the span and record the event into the current domain's sink. *)

val with_span : ?cat:string -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span; the span is closed on
    exceptions too. When disabled this is exactly [f ()]. *)

val emit_span :
  ?cat:string ->
  ?tid:int ->
  ?args:(string * string) list ->
  name:string ->
  ts_ns:int ->
  dur_ns:int ->
  unit ->
  unit
(** Record a complete span with caller-supplied timestamps — used for
    {e synthetic} spans derived from simulated hardware cycle counts
    ([tid] defaults to the current domain; pick a distinct id to give
    models their own track in the trace viewer). No-op when disabled. *)

(** {2 Counters} *)

module Counter : sig
  type t

  val make : string -> t
  (** Create-or-get the process-wide counter [name] (idempotent). *)

  val name : t -> string

  val add : t -> int -> unit
  (** Monotonic: raises [Invalid_argument] on a negative increment.
      No-op while telemetry is disabled. *)

  val incr : t -> unit
  val value : t -> int

  val all : unit -> (string * int) list
  (** Registered counters sorted by name. *)
end

(** {2 Histograms} *)

module Histogram : sig
  type t

  val make : string -> t
  (** Create-or-get the process-wide histogram [name] (idempotent). *)

  val name : t -> string

  val observe : t -> float -> unit
  (** No-op while telemetry is disabled. *)

  val count : t -> int
  val sum : t -> float
  val mean : t -> float
  val min_value : t -> float
  (** [nan] when empty; likewise {!max_value}. *)

  val max_value : t -> float

  val buckets : t -> (float * int) list
  (** Per-bucket observation counts as [(upper_bound, count)] pairs, one
      per log2 bucket up to the last populated one (bucket with bound
      [2^k] covers [[2^(k-1), 2^k)]; the first covers [v < 1]). Counts
      are {e not} cumulative. Consistent snapshot (taken under the
      histogram's mutex); empty list for an empty histogram. *)

  val all : unit -> t list
end

(** {2 Probes} *)

val register_probe : string -> (unit -> float) -> unit
(** Register a lazy gauge sampled at export time. Re-registering a name
    replaces the previous closure. *)

val probes : unit -> (string * float) list
(** Sample every probe, sorted by name. *)

(** {2 Export} *)

type event = {
  name : string;
  cat : string;
  tid : int;
  ts_ns : int;
  dur_ns : int;
  args : (string * string) list;
  seq : int;  (** per-sink sequence number, breaks timestamp ties *)
}

val events : unit -> event list
(** Every recorded span, merged across domain sinks in the deterministic
    order [(ts_ns, tid, seq)] — independent of sink registration order
    and merge timing. *)

val pp_tree : Format.formatter -> unit -> unit
(** Human-readable aggregated span tree: nesting reconstructed from
    interval containment per domain, merged across domains by span name,
    with call counts, total and self time. *)

val tree_summary : unit -> string

val pp_metrics : Format.formatter -> unit -> unit
(** Counters, histograms and sampled probes, sorted by name. *)

val metrics_summary : unit -> string

val chrome_trace : ?counters:bool -> unit -> string
(** The recorded events as Chrome [trace_event] JSON (loadable in
    [chrome://tracing] and Perfetto): one ["ph":"X"] complete event per
    span with microsecond [ts]/[dur] rebased to the earliest event, plus
    one ["ph":"C"] counter sample per registered counter (unless
    [counters] is [false]). *)

val write_chrome_trace : ?counters:bool -> string -> unit
