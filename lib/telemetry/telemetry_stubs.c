/* Monotonic clock for telemetry spans.
 *
 * Returns nanoseconds since an arbitrary epoch as a tagged OCaml int
 * (63 bits hold ~146 years of nanoseconds), so the call allocates
 * nothing and never goes backwards — wall-clock adjustments (NTP,
 * suspend/resume steps) cannot produce negative span durations. */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value jigsaw_telemetry_now_ns(value unit)
{
  (void)unit;
  struct timespec ts;
#ifdef CLOCK_MONOTONIC
  clock_gettime(CLOCK_MONOTONIC, &ts);
#else
  clock_gettime(CLOCK_REALTIME, &ts);
#endif
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
