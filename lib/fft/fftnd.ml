module Cvec = Numerics.Cvec
module Pool = Runtime.Pool

(* Same-module element accessors; see {!Fft1d} for the [-opaque] /
   cross-module-inlining rationale. *)
module A1 = Bigarray.Array1

let[@inline] get_re (v : Cvec.t) k = A1.unsafe_get v (2 * k)
let[@inline] get_im (v : Cvec.t) k = A1.unsafe_get v ((2 * k) + 1)

let[@inline] set_parts (v : Cvec.t) k re im =
  let j = 2 * k in
  A1.unsafe_set v j re;
  A1.unsafe_set v (j + 1) im

let check_size name n v =
  if Cvec.length v <> n then invalid_arg (name ^ ": size mismatch")

let c_lines = Telemetry.Counter.make "fft.lines"

(* Transform [count] lines of [len] elements with stride [stride] complex
   elements between consecutive points of a line; [line_start k] gives the
   linear index of line k's first element. A scratch buffer gathers each
   strided line so the 1D kernel always works on contiguous data. *)
let transform_line dir ~len ~stride scratch v base =
  if stride = 1 then begin
    Cvec.blit_complex ~src:v ~src_pos:base ~dst:scratch ~dst_pos:0 ~len;
    Fft1d.transform dir scratch;
    Cvec.blit_complex ~src:scratch ~src_pos:0 ~dst:v ~dst_pos:base ~len
  end
  else begin
    for j = 0 to len - 1 do
      let src = base + (j * stride) in
      set_parts scratch j (get_re v src) (get_im v src)
    done;
    Fft1d.transform dir scratch;
    for j = 0 to len - 1 do
      let dst = base + (j * stride) in
      set_parts v dst (get_re scratch j) (get_im scratch j)
    done
  end

(* Distinct lines of one pass touch disjoint index sets, so the pass is
   race-free when lines are distributed over domains; each chunk gets a
   private scratch buffer. Without a pool the pass runs serially with a
   single scratch, exactly as before.

   [scratch] lets a serving loop donate a preallocated line buffer so the
   serial pass allocates nothing; it is used only when its length matches
   [len] exactly ({!Fft1d.transform} transforms the whole buffer) and the
   pass is serial (pooled chunks need private buffers). *)
let line_scratch ?scratch ~len () =
  match scratch with
  | Some s when Cvec.length s = len -> s
  | _ -> Cvec.create len

(* A stride-1 pass whose lines sit back to back ([line_start k = s0 +
   k*len], the layout of every contiguous row pass) and whose length is
   a power of two can skip the scratch blits entirely and run through
   {!Fft1d.transform_batch} — in place, and one C call per batch when
   SIMD dispatch is on. The affinity check is O(count) integer work,
   negligible against the transforms themselves. *)
let batched_base ~len ~count ~stride ~line_start =
  if stride = 1 && len > 1 && count > 0 && Fft1d.is_pow2 len then begin
    let s0 = line_start 0 in
    let ok = ref true in
    for k = 1 to count - 1 do
      if line_start k <> s0 + (k * len) then ok := false
    done;
    if !ok then Some s0 else None
  end
  else None

let transform_lines ?pool ?scratch dir ~len ~count ~stride ~line_start v =
  let sp = Telemetry.span_begin ~cat:"fft" "fft.pass" in
  Telemetry.Counter.add c_lines count;
  let run_range scratch lo hi =
    for k = lo to hi - 1 do
      transform_line dir ~len ~stride scratch v (line_start k)
    done
  in
  (match batched_base ~len ~count ~stride ~line_start with
  | Some s0 -> (
      match pool with
      | Some p when Pool.size p > 1 && count > 1 ->
          Pool.parallel_for_ranges p ~start:0 ~stop:count (fun ~lo ~hi ->
              Fft1d.transform_batch dir v
                ~off:(s0 + (lo * len))
                ~count:(hi - lo) ~len)
      | _ -> Fft1d.transform_batch dir v ~off:s0 ~count ~len)
  | None -> (
      match pool with
      | Some p when Pool.size p > 1 && count > 1 ->
          Pool.parallel_for_ranges p ~start:0 ~stop:count (fun ~lo ~hi ->
              run_range (Cvec.create len) lo hi)
      | _ -> run_range (line_scratch ?scratch ~len ()) 0 count));
  Telemetry.span_end sp

let transform_2d ?pool ?scratch dir ~nx ~ny v =
  check_size "Fftnd.transform_2d" (nx * ny) v;
  let sp = Telemetry.span_begin ~cat:"fft" "fft.2d" in
  transform_lines ?pool ?scratch dir ~len:nx ~count:ny ~stride:1
    ~line_start:(fun y -> y * nx) v;
  transform_lines ?pool ?scratch dir ~len:ny ~count:nx ~stride:nx
    ~line_start:(fun x -> x) v;
  Telemetry.span_end sp

let transform_3d ?pool ?scratch dir ~nx ~ny ~nz v =
  check_size "Fftnd.transform_3d" (nx * ny * nz) v;
  let sp = Telemetry.span_begin ~cat:"fft" "fft.3d" in
  transform_lines ?pool ?scratch dir ~len:nx ~count:(ny * nz) ~stride:1
    ~line_start:(fun k -> k * nx) v;
  transform_lines ?pool ?scratch dir ~len:ny ~count:(nx * nz) ~stride:nx
    ~line_start:(fun k ->
      let x = k mod nx and z = k / nx in
      (z * ny * nx) + x)
    v;
  transform_lines ?pool ?scratch dir ~len:nz ~count:(nx * ny)
    ~stride:(nx * ny) ~line_start:(fun k -> k) v;
  Telemetry.span_end sp

let transformed_2d ?pool dir ~nx ~ny v =
  let c = Cvec.copy v in
  transform_2d ?pool dir ~nx ~ny c;
  c

let fftshift_2d ~nx ~ny v =
  check_size "Fftnd.fftshift_2d" (nx * ny) v;
  let out = Cvec.create (nx * ny) in
  for y = 0 to ny - 1 do
    for x = 0 to nx - 1 do
      let x' = (x + (nx / 2)) mod nx and y' = (y + (ny / 2)) mod ny in
      Cvec.set out ((y' * nx) + x') (Cvec.get v ((y * nx) + x))
    done
  done;
  out

let flop_estimate_2d ~nx ~ny =
  let n = float_of_int (nx * ny) in
  5.0 *. n *. (log n /. log 2.0)
