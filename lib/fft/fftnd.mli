(** Multi-dimensional FFT by the row-column method.

    Arrays are row-major: a 2D array of [ny] rows and [nx] columns stores
    element [(x, y)] at linear index [y*nx + x]; a 3D array of [nz] slices
    stores [(x, y, z)] at [(z*ny + y)*nx + x]. Any per-dimension length is
    supported (see {!Fft1d}). Transforms are unnormalised. *)

val transform_2d :
  ?pool:Runtime.Pool.t ->
  ?scratch:Numerics.Cvec.t ->
  Dft.direction -> nx:int -> ny:int -> Numerics.Cvec.t -> unit
(** In-place 2D FFT: 1D transforms along every row, then every column.
    With [pool], the independent lines of each pass are batched over the
    pool's domains (they write disjoint index sets, so the pass is
    race-free); the result is bit-identical to the serial transform.
    With [scratch], serial passes whose line length equals
    [Cvec.length scratch] gather lines into that caller-owned buffer
    instead of allocating one — the pooled-workspace hook; any other
    length (or a pooled pass) falls back to a fresh buffer. *)

val transform_3d :
  ?pool:Runtime.Pool.t ->
  ?scratch:Numerics.Cvec.t ->
  Dft.direction -> nx:int -> ny:int -> nz:int -> Numerics.Cvec.t -> unit

val transformed_2d :
  ?pool:Runtime.Pool.t ->
  Dft.direction -> nx:int -> ny:int -> Numerics.Cvec.t -> Numerics.Cvec.t

val fftshift_2d : nx:int -> ny:int -> Numerics.Cvec.t -> Numerics.Cvec.t
(** Swap quadrants so that index 0 moves to the centre [(nx/2, ny/2)] —
    the usual display/centred-spectrum reordering. Self-inverse for even
    dimensions. *)

val flop_estimate_2d : nx:int -> ny:int -> float
(** Row-column flop count, [5 nx ny log2 (nx ny)]. *)
