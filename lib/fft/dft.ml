module Cvec = Numerics.Cvec
module Complexd = Numerics.Complexd

type direction = Forward | Inverse

let sign = function Forward -> -1.0 | Inverse -> 1.0

let transform dir v =
  let n = Cvec.length v in
  let s = sign dir in
  Cvec.init n (fun k ->
      let acc = ref Complexd.zero in
      for j = 0 to n - 1 do
        let theta = s *. 2.0 *. Float.pi *. float_of_int (k * j mod n) /. float_of_int n in
        acc := Complexd.add !acc (Complexd.mul (Cvec.get v j) (Complexd.exp_i theta))
      done;
      !acc)

let transform_2d dir ~nx ~ny v =
  if Cvec.length v <> nx * ny then invalid_arg "Dft.transform_2d: size mismatch";
  let s = sign dir in
  Cvec.init (nx * ny) (fun k ->
      let kx = k mod nx and ky = k / nx in
      let acc = ref Complexd.zero in
      for y = 0 to ny - 1 do
        for x = 0 to nx - 1 do
          let phase =
            s *. 2.0 *. Float.pi
            *. ((float_of_int (kx * x) /. float_of_int nx)
               +. (float_of_int (ky * y) /. float_of_int ny))
          in
          acc :=
            Complexd.add !acc
              (Complexd.mul (Cvec.get v ((y * nx) + x)) (Complexd.exp_i phase))
        done
      done;
      !acc)
