(** 1D complex fast Fourier transform.

    Power-of-two lengths use an iterative radix-2 decimation-in-time
    transform with cached twiddle factors and bit-reversal tables; other
    lengths fall back to Bluestein's chirp-z algorithm (two power-of-two
    FFTs), so any positive length is supported — needed because reduced
    oversampling factors sigma < 2 (Beatty gridding) produce non-power-of-two
    oversampled grid sizes.

    Transforms are unnormalised (like FFTW): [transform Inverse
    (transform Forward v)] equals [n * v]. *)

val is_pow2 : int -> bool
val next_pow2 : int -> int
(** Smallest power of two >= the argument (argument must be >= 1). *)

val transform : Dft.direction -> Numerics.Cvec.t -> unit
(** In-place FFT of the whole vector. Any length >= 1. Power-of-two
    lengths dispatch through the {!Simd} butterfly kernel when SIMD is
    active (bit-identical to the OCaml butterflies). *)

val transform_batch :
  Dft.direction -> Numerics.Cvec.t -> off:int -> count:int -> len:int -> unit
(** [transform_batch dir v ~off ~count ~len] — in-place FFT of [count]
    contiguous complex lines of length [len] (a power of two) starting at
    complex offset [off]: line [k] occupies [[off + k*len, off +
    (k+1)*len)). This is the batched entry point {!Fftnd} uses for its
    contiguous row passes; with SIMD active the whole batch is one C
    call. Raises [Invalid_argument] on a non-power-of-two [len] or an
    out-of-bounds range. *)

val transformed : Dft.direction -> Numerics.Cvec.t -> Numerics.Cvec.t
(** Copying variant of {!transform}. *)

val inverse_normalized : Numerics.Cvec.t -> Numerics.Cvec.t
(** Inverse transform scaled by [1/n]: a true inverse of
    [transform Forward]. *)

val flop_estimate : int -> float
(** [5 n log2 n] — the standard complex-FFT flop count, used by the
    end-to-end performance models to estimate what a cuFFT/FFTW-class
    library would take on the evaluation hardware. *)
