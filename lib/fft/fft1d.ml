module Cvec = Numerics.Cvec

(* Same-module element accessors over the Bigarray externals: the dev
   profile compiles with [-opaque] (no cross-module inlining), so calling
   [Cvec.unsafe_get_re] etc. per butterfly would box a float each. These
   compile to loads/stores in every profile. *)
module A1 = Bigarray.Array1

let[@inline] get_re (v : Cvec.t) k = A1.unsafe_get v (2 * k)
let[@inline] get_im (v : Cvec.t) k = A1.unsafe_get v ((2 * k) + 1)

let[@inline] set_parts (v : Cvec.t) k re im =
  let j = 2 * k in
  A1.unsafe_set v j re;
  A1.unsafe_set v (j + 1) im

let is_pow2 n = n > 0 && n land (n - 1) = 0

let next_pow2 n =
  if n < 1 then invalid_arg "Fft1d.next_pow2";
  let rec go m = if m >= n then m else go (m * 2) in
  go 1

(* Caches, keyed by (n, sign). The tables are tiny relative to the data and
   the cache makes repeated transforms of the same size (2D row/column
   passes, iterative reconstruction) allocation-free. A mutex guards the
   hashtables so concurrent line transforms from a domain pool cannot
   corrupt them; the tables themselves are immutable once published.

   The build runs *outside* the lock: under the domain pool the first large
   transform would otherwise serialize every worker behind one twiddle
   build. Workers that miss concurrently each build a candidate table, then
   re-check under the lock and all adopt whichever table was inserted
   first (the tables are deterministic, so the losers' work is identical
   and simply dropped).

   The hit path allocates nothing: int-keyed tables (one twiddle table per
   transform direction instead of an [(n, sign)] tuple key) looked up with
   [Hashtbl.find] under an exception match, so a warm serving loop pays no
   per-line closure, tuple or [Some] box. *)
let cache_mutex = Mutex.create ()
let twiddle_fwd : (int, float array) Hashtbl.t = Hashtbl.create 16
let twiddle_inv : (int, float array) Hashtbl.t = Hashtbl.create 16
let bitrev_cache : (int, int array) Hashtbl.t = Hashtbl.create 16

let cache_adopt cache key candidate =
  Mutex.lock cache_mutex;
  let adopted =
    match Hashtbl.find_opt cache key with
    | Some winner -> winner
    | None ->
        Hashtbl.add cache key candidate;
        candidate
  in
  Mutex.unlock cache_mutex;
  adopted

let build_twiddles n sgn =
  let t = Array.make n 0.0 in
  for j = 0 to (n / 2) - 1 do
    let theta =
      float_of_int sgn *. 2.0 *. Float.pi *. float_of_int j /. float_of_int n
    in
    t.(2 * j) <- cos theta;
    t.((2 * j) + 1) <- sin theta
  done;
  t

let twiddles n sgn =
  let cache = if sgn < 0 then twiddle_fwd else twiddle_inv in
  Mutex.lock cache_mutex;
  match Hashtbl.find cache n with
  | t ->
      Mutex.unlock cache_mutex;
      t
  | exception Not_found ->
      Mutex.unlock cache_mutex;
      cache_adopt cache n (build_twiddles n sgn)

let build_bitrev n =
  let bits =
    let rec go b m = if m = 1 then b else go (b + 1) (m / 2) in
    go 0 n
  in
  Array.init n (fun i ->
      let r = ref 0 and x = ref i in
      for _ = 1 to bits do
        r := (!r lsl 1) lor (!x land 1);
        x := !x lsr 1
      done;
      !r)

let bitrev_table n =
  Mutex.lock cache_mutex;
  match Hashtbl.find bitrev_cache n with
  | t ->
      Mutex.unlock cache_mutex;
      t
  | exception Not_found ->
      Mutex.unlock cache_mutex;
      cache_adopt bitrev_cache n (build_bitrev n)

(* One radix-2 line at complex offset [off] of a larger buffer, with the
   tables passed in (the batched callers look them up once per batch). *)
let radix2_at v rev tw ~off ~n =
  for i = 0 to n - 1 do
    let j = Array.unsafe_get rev i in
    if j > i then begin
      let a = off + i and b = off + j in
      let tr = get_re v a and ti = get_im v a in
      set_parts v a (get_re v b) (get_im v b);
      set_parts v b tr ti
    end
  done;
  let len = ref 2 in
  while !len <= n do
    let half = !len / 2 in
    let step = n / !len in
    let i = ref 0 in
    while !i < n do
      for j = 0 to half - 1 do
        let wi = j * step in
        let wr = Array.unsafe_get tw (2 * wi)
        and wim = Array.unsafe_get tw ((2 * wi) + 1) in
        let a = off + !i + j in
        let b = a + half in
        let br = get_re v b and bi = get_im v b in
        let tr = (wr *. br) -. (wim *. bi) in
        let ti = (wr *. bi) +. (wim *. br) in
        let ar = get_re v a and ai = get_im v a in
        set_parts v a (ar +. tr) (ai +. ti);
        set_parts v b (ar -. tr) (ai -. ti)
      done;
      i := !i + !len
    done;
    len := !len * 2
  done

(* [count] contiguous power-of-two lines starting at complex offset
   [off]. When SIMD dispatch is on the whole batch goes through one C
   call ({!Simd.fft_batch} mirrors the butterfly loop exactly, so the
   result is bit-identical); otherwise each line runs the OCaml
   butterflies in place. *)
let radix2_lines sgn v ~off ~count ~n =
  if n > 1 && count > 0 then begin
    let rev = bitrev_table n in
    let tw = twiddles n sgn in
    if Simd.enabled () then Simd.fft_batch v rev tw off count
    else
      for l = 0 to count - 1 do
        radix2_at v rev tw ~off:(off + (l * n)) ~n
      done
  end

let radix2_inplace sgn v =
  radix2_lines sgn v ~off:0 ~count:1 ~n:(Cvec.length v)

(* Bluestein chirp-z: X_k = c_k * circular-convolution(u, v)_k with
   u_j = x_j c_j,
   c_j = e^{s pi i j^2 / n}, v_j = conj(c_j) wrapped symmetrically into a
   length-m circular buffer, m = next_pow2 (2n - 1). *)
let bluestein sgn v =
  let n = Cvec.length v in
  let m = next_pow2 ((2 * n) - 1) in
  let s = float_of_int sgn in
  (* cos/sin of the chirp angle for index j; j^2 mod 2n keeps the angle
     argument small and accurate. *)
  let chirp_theta j =
    let q = j * j mod (2 * n) in
    s *. Float.pi *. float_of_int q /. float_of_int n
  in
  let u = Cvec.create m and w = Cvec.create m in
  for j = 0 to n - 1 do
    let theta = chirp_theta j in
    let cr = cos theta and ci = sin theta in
    let xr = get_re v j and xi = get_im v j in
    set_parts u j ((xr *. cr) -. (xi *. ci)) ((xr *. ci) +. (xi *. cr));
    set_parts w j cr (-.ci);
    if j > 0 then set_parts w (m - j) cr (-.ci)
  done;
  radix2_inplace (-1) u;
  radix2_inplace (-1) w;
  for j = 0 to m - 1 do
    let ar = get_re u j and ai = get_im u j in
    let br = get_re w j and bi = get_im w j in
    set_parts u j ((ar *. br) -. (ai *. bi)) ((ar *. bi) +. (ai *. br))
  done;
  radix2_inplace 1 u;
  let scale = 1.0 /. float_of_int m in
  for k = 0 to n - 1 do
    let theta = chirp_theta k in
    let cr = cos theta and ci = sin theta in
    let ur = get_re u k *. scale and ui = get_im u k *. scale in
    set_parts v k ((ur *. cr) -. (ui *. ci)) ((ur *. ci) +. (ui *. cr))
  done

let c_transforms = Telemetry.Counter.make "fft.1d_transforms"

let transform dir v =
  let n = Cvec.length v in
  let sgn = int_of_float (Dft.sign dir) in
  Telemetry.Counter.incr c_transforms;
  if n <= 1 then ()
  else if is_pow2 n then radix2_inplace sgn v
  else bluestein sgn v

let transform_batch dir v ~off ~count ~len =
  if len < 1 then invalid_arg "Fft1d.transform_batch: len < 1";
  if not (is_pow2 len) then
    invalid_arg "Fft1d.transform_batch: len must be a power of two";
  if count < 0 || off < 0 || off + (count * len) > Cvec.length v then
    invalid_arg "Fft1d.transform_batch: line range out of bounds";
  Telemetry.Counter.add c_transforms count;
  radix2_lines (int_of_float (Dft.sign dir)) v ~off ~count ~n:len

let transformed dir v =
  let c = Cvec.copy v in
  transform dir c;
  c

let inverse_normalized v =
  let c = transformed Dft.Inverse v in
  Cvec.scale_inplace (1.0 /. float_of_int (Cvec.length v)) c;
  c

let flop_estimate n =
  let nf = float_of_int n in
  5.0 *. nf *. (log nf /. log 2.0)
