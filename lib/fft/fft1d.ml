module Cvec = Numerics.Cvec

let is_pow2 n = n > 0 && n land (n - 1) = 0

let next_pow2 n =
  if n < 1 then invalid_arg "Fft1d.next_pow2";
  let rec go m = if m >= n then m else go (m * 2) in
  go 1

(* Caches, keyed by (n, sign). The tables are tiny relative to the data and
   the cache makes repeated transforms of the same size (2D row/column
   passes, iterative reconstruction) allocation-free. A mutex guards the
   hashtables so concurrent line transforms from a domain pool cannot
   corrupt them; the tables themselves are immutable once published and the
   lock is taken once per transform, not per butterfly. *)
let cache_mutex = Mutex.create ()
let twiddle_cache : (int * int, float array) Hashtbl.t = Hashtbl.create 16
let bitrev_cache : (int, int array) Hashtbl.t = Hashtbl.create 16

let cached cache key build =
  Mutex.lock cache_mutex;
  let t =
    match Hashtbl.find_opt cache key with
    | Some t -> t
    | None ->
        let t = build () in
        Hashtbl.add cache key t;
        t
  in
  Mutex.unlock cache_mutex;
  t

let twiddles n sgn =
  cached twiddle_cache (n, sgn) (fun () ->
      let t = Array.make n 0.0 in
      for j = 0 to (n / 2) - 1 do
        let theta = float_of_int sgn *. 2.0 *. Float.pi *. float_of_int j /. float_of_int n in
        t.(2 * j) <- cos theta;
        t.((2 * j) + 1) <- sin theta
      done;
      t)

let bitrev_table n =
  cached bitrev_cache n (fun () ->
      let bits =
        let rec go b m = if m = 1 then b else go (b + 1) (m / 2) in
        go 0 n
      in
      Array.init n (fun i ->
          let r = ref 0 and x = ref i in
          for _ = 1 to bits do
            r := (!r lsl 1) lor (!x land 1);
            x := !x lsr 1
          done;
          !r))

let radix2_inplace sgn v =
  let n = Cvec.length v in
  let rev = bitrev_table n in
  for i = 0 to n - 1 do
    let j = rev.(i) in
    if j > i then begin
      let tr = v.(2 * i) and ti = v.((2 * i) + 1) in
      v.(2 * i) <- v.(2 * j);
      v.((2 * i) + 1) <- v.((2 * j) + 1);
      v.(2 * j) <- tr;
      v.((2 * j) + 1) <- ti
    end
  done;
  let tw = twiddles n sgn in
  let len = ref 2 in
  while !len <= n do
    let half = !len / 2 in
    let step = n / !len in
    let i = ref 0 in
    while !i < n do
      for j = 0 to half - 1 do
        let wi = j * step in
        let wr = tw.(2 * wi) and wim = tw.((2 * wi) + 1) in
        let a = !i + j and b = !i + j + half in
        let br = v.(2 * b) and bi = v.((2 * b) + 1) in
        let tr = (wr *. br) -. (wim *. bi) in
        let ti = (wr *. bi) +. (wim *. br) in
        let ar = v.(2 * a) and ai = v.((2 * a) + 1) in
        v.(2 * a) <- ar +. tr;
        v.((2 * a) + 1) <- ai +. ti;
        v.(2 * b) <- ar -. tr;
        v.((2 * b) + 1) <- ai -. ti
      done;
      i := !i + !len
    done;
    len := !len * 2
  done

(* Bluestein chirp-z: X_k = c_k * circular-convolution(u, v)_k with
   u_j = x_j c_j,
   c_j = e^{s pi i j^2 / n}, v_j = conj(c_j) wrapped symmetrically into a
   length-m circular buffer, m = next_pow2 (2n - 1). *)
let bluestein sgn v =
  let n = Cvec.length v in
  let m = next_pow2 ((2 * n) - 1) in
  let s = float_of_int sgn in
  let chirp j =
    (* j^2 mod 2n keeps the angle argument small and accurate. *)
    let q = j * j mod (2 * n) in
    let theta = s *. Float.pi *. float_of_int q /. float_of_int n in
    (cos theta, sin theta)
  in
  let u = Cvec.create m and w = Cvec.create m in
  for j = 0 to n - 1 do
    let cr, ci = chirp j in
    let xr = v.(2 * j) and xi = v.((2 * j) + 1) in
    u.(2 * j) <- (xr *. cr) -. (xi *. ci);
    u.((2 * j) + 1) <- (xr *. ci) +. (xi *. cr);
    w.(2 * j) <- cr;
    w.((2 * j) + 1) <- -.ci;
    if j > 0 then begin
      let k = m - j in
      w.(2 * k) <- cr;
      w.((2 * k) + 1) <- -.ci
    end
  done;
  radix2_inplace (-1) u;
  radix2_inplace (-1) w;
  for j = 0 to m - 1 do
    let ar = u.(2 * j) and ai = u.((2 * j) + 1) in
    let br = w.(2 * j) and bi = w.((2 * j) + 1) in
    u.(2 * j) <- (ar *. br) -. (ai *. bi);
    u.((2 * j) + 1) <- (ar *. bi) +. (ai *. br)
  done;
  radix2_inplace 1 u;
  let scale = 1.0 /. float_of_int m in
  for k = 0 to n - 1 do
    let cr, ci = chirp k in
    let ur = u.(2 * k) *. scale and ui = u.((2 * k) + 1) *. scale in
    v.(2 * k) <- (ur *. cr) -. (ui *. ci);
    v.((2 * k) + 1) <- (ur *. ci) +. (ui *. cr)
  done

let transform dir v =
  let n = Cvec.length v in
  let sgn = int_of_float (Dft.sign dir) in
  if n <= 1 then ()
  else if is_pow2 n then radix2_inplace sgn v
  else bluestein sgn v

let transformed dir v =
  let c = Cvec.copy v in
  transform dir c;
  c

let inverse_normalized v =
  let c = transformed Dft.Inverse v in
  Cvec.scale_inplace (1.0 /. float_of_int (Cvec.length v)) c;
  c

let flop_estimate n =
  let nf = float_of_int n in
  5.0 *. nf *. (log nf /. log 2.0)
