(** Naive O(n^2) discrete Fourier transform — the correctness oracle for the
    FFT. Unnormalised, with the engineering sign convention:
    forward uses [e^{-2 pi i k n / N}], inverse uses [e^{+2 pi i k n / N}]. *)

type direction = Forward | Inverse

val sign : direction -> float
(** -1.0 for {!Forward}, +1.0 for {!Inverse}: the sign of the exponent. *)

val transform : direction -> Numerics.Cvec.t -> Numerics.Cvec.t
(** Dense DFT of any length (no power-of-two restriction). *)

val transform_2d :
  direction -> nx:int -> ny:int -> Numerics.Cvec.t -> Numerics.Cvec.t
(** 2D DFT of a row-major [ny] x [nx] array (index [y*nx + x]). *)
