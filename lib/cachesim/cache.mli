(** Set-associative cache model with LRU replacement.

    Used as the L2 of the GPU timing simulator ({!Gpusim}): the paper's
    explanation of why Slice-and-Dice beats binning on GPUs rests on L2 hit
    rates (~98% vs ~80%, §VI-A), so the memory system is simulated rather
    than assumed. Addresses are byte addresses; a cache of [size_bytes]
    with [line_bytes] lines and [ways]-way associativity has
    [size/(line*ways)] sets indexed by the low line-address bits. *)

type config = {
  size_bytes : int;
  line_bytes : int;  (** must be a power of two *)
  ways : int;
}

val titan_xp_l2 : config
(** 3 MiB, 128-byte lines, 24-way — the Pascal-class L2 of the paper's
    evaluation GPU. *)

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type t

val create : config -> t
(** Raises [Invalid_argument] for inconsistent geometry (non-power-of-two
    line size, size not divisible by line*ways, non-positive fields). *)

val access : t -> int -> bool
(** [access t addr] touches the line containing byte [addr]; returns [true]
    on hit. A miss fills the line (evicting LRU if the set is full). *)

val probe : t -> int -> bool
(** Non-mutating lookup: would [addr] hit right now? *)

val stats : t -> stats
val hit_rate : t -> float
(** Hits / accesses, 0 if never accessed. *)

val reset_stats : t -> unit
val flush : t -> unit
(** Invalidate all lines (stats preserved). *)

val sets : t -> int
val config : t -> config
