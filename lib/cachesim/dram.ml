type config = {
  latency_cycles : int;
  bytes_per_cycle : float;
}

let titan_xp = { latency_cycles = 400; bytes_per_cycle = 346.0 }
let ddr4_host = { latency_cycles = 60; bytes_per_cycle = 20.0 }

let epoch_cycles = 256

type t = {
  cfg : config;
  used : (int, int) Hashtbl.t;  (** window index -> bytes booked *)
  mutable last_window : int;
  mutable bytes : int;
}

let create cfg =
  if cfg.latency_cycles < 0 || cfg.bytes_per_cycle <= 0.0 then
    invalid_arg "Dram.create: bad config";
  { cfg; used = Hashtbl.create 64; last_window = 0; bytes = 0 }

let capacity cfg =
  max 1 (int_of_float (cfg.bytes_per_cycle *. float_of_int epoch_cycles))

let request t ~now ~bytes =
  let cap = capacity t.cfg in
  let w = ref (max 0 (now / epoch_cycles)) in
  let booked w = Option.value ~default:0 (Hashtbl.find_opt t.used w) in
  while booked !w + bytes > cap && booked !w > 0 do
    incr w
  done;
  Hashtbl.replace t.used !w (booked !w + bytes);
  if !w > t.last_window then t.last_window <- !w;
  t.bytes <- t.bytes + bytes;
  let transfer =
    int_of_float (Float.ceil (float_of_int bytes /. t.cfg.bytes_per_cycle))
  in
  let start = max now (!w * epoch_cycles) in
  start + transfer + t.cfg.latency_cycles

let busy_until t = (t.last_window + 1) * epoch_cycles
let total_bytes t = t.bytes

let reset t =
  Hashtbl.reset t.used;
  t.last_window <- 0;
  t.bytes <- 0
