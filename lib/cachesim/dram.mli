(** DRAM timing model: fixed access latency plus a shared, epoch-bucketed
    bandwidth pipe.

    Bandwidth is enforced per {!epoch_cycles}-cycle window: each request
    consumes capacity in the earliest window (at or after its arrival) with
    room, so requests arriving in any order within a window share the pipe
    fairly — which is what lets the GPU simulator co-simulate SMs in time
    quanta without serialising one SM's traffic behind another's. A full
    window pushes the request into later windows: that is how miss-heavy
    kernels become bandwidth-bound ("massive memory bandwidth utilization
    problems", paper §I) no matter how much latency the scheduler hides. *)

type config = {
  latency_cycles : int;  (** row access latency *)
  bytes_per_cycle : float;  (** peak sustained bandwidth per core cycle *)
}

val titan_xp : config
(** 547 GB/s at 1.58 GHz core clock (~346 B/cycle), ~400-cycle latency. *)

val ddr4_host : config
(** ~20 GB/s at 1.0 GHz (the JIGSAW DMA stream rate, §IV). *)

val epoch_cycles : int
(** Bandwidth accounting window (256 cycles). *)

type t

val create : config -> t

val request : t -> now:int -> bytes:int -> int
(** [request t ~now ~bytes] books the transfer in the earliest window with
    capacity and returns the completion cycle
    (window start + transfer + latency, never before
    [now + transfer + latency]). *)

val busy_until : t -> int
(** End of the last window with any booked traffic. *)

val total_bytes : t -> int
val reset : t -> unit
