type config = {
  size_bytes : int;
  line_bytes : int;
  ways : int;
}

let titan_xp_l2 = { size_bytes = 3 * 1024 * 1024; line_bytes = 128; ways = 24 }

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type t = {
  cfg : config;
  n_sets : int;
  tags : int array;  (** [set * ways + way]; -1 = invalid *)
  last_use : int array;  (** LRU timestamps, same indexing *)
  mutable clock : int;
  st : stats;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let create cfg =
  if cfg.size_bytes <= 0 || cfg.line_bytes <= 0 || cfg.ways <= 0 then
    invalid_arg "Cache.create: non-positive geometry";
  if not (is_pow2 cfg.line_bytes) then
    invalid_arg "Cache.create: line_bytes must be a power of two";
  if cfg.size_bytes mod (cfg.line_bytes * cfg.ways) <> 0 then
    invalid_arg "Cache.create: size must be a multiple of line*ways";
  let n_sets = cfg.size_bytes / (cfg.line_bytes * cfg.ways) in
  { cfg;
    n_sets;
    tags = Array.make (n_sets * cfg.ways) (-1);
    last_use = Array.make (n_sets * cfg.ways) 0;
    clock = 0;
    st = { hits = 0; misses = 0; evictions = 0 } }

let set_and_tag t addr =
  let line = addr / t.cfg.line_bytes in
  (line mod t.n_sets, line / t.n_sets)

let probe t addr =
  let set, tag = set_and_tag t addr in
  let base = set * t.cfg.ways in
  let rec go w = w < t.cfg.ways && (t.tags.(base + w) = tag || go (w + 1)) in
  go 0

let access t addr =
  t.clock <- t.clock + 1;
  let set, tag = set_and_tag t addr in
  let base = set * t.cfg.ways in
  let hit_way = ref (-1) in
  for w = 0 to t.cfg.ways - 1 do
    if t.tags.(base + w) = tag then hit_way := w
  done;
  if !hit_way >= 0 then begin
    t.last_use.(base + !hit_way) <- t.clock;
    t.st.hits <- t.st.hits + 1;
    true
  end
  else begin
    t.st.misses <- t.st.misses + 1;
    (* Fill: free way if any, else evict LRU. *)
    let victim = ref 0 and oldest = ref max_int in
    (try
       for w = 0 to t.cfg.ways - 1 do
         if t.tags.(base + w) = -1 then begin
           victim := w;
           raise Exit
         end;
         if t.last_use.(base + w) < !oldest then begin
           oldest := t.last_use.(base + w);
           victim := w
         end
       done;
       t.st.evictions <- t.st.evictions + 1
     with Exit -> ());
    t.tags.(base + !victim) <- tag;
    t.last_use.(base + !victim) <- t.clock;
    false
  end

let stats t = t.st

let hit_rate t =
  let total = t.st.hits + t.st.misses in
  if total = 0 then 0.0 else float_of_int t.st.hits /. float_of_int total

let reset_stats t =
  t.st.hits <- 0;
  t.st.misses <- 0;
  t.st.evictions <- 0

let flush t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.last_use 0 (Array.length t.last_use) 0

let sets t = t.n_sets
let config t = t.cfg
