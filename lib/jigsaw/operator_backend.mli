(** {!Nufft.Operator} backends driven by the JIGSAW hardware model.

    [jigsaw-2d] streams samples through the {!Engine2d} fixed-point
    pipeline array (exactly [M + 12] gridding cycles, accumulated into
    the operator's [stats.cycles]), then finishes the adjoint with the
    software FFT and de-apodization of a plan built over the same kernel
    and (hardware-clamped) table oversampling. [jigsaw-3d] does the same
    through the {!Engine3d} z-slice schedule, [(M + 15) * G] cycles.

    The forward direction runs in double precision through the companion
    plan at coordinates {e snapped to the hardware coordinate grid}, so
    forward and adjoint share bit-identical window geometry and their
    adjointness mismatch is bounded by the fixed-point quantization of
    weights (Q1.15) and accumulators (Q9.23) alone — the property the
    operator test suite checks against {!Numerics.Fixed_point} bounds.

    These backends live outside [lib/core] to keep the library graph
    acyclic; nothing is registered until {!register} is called. *)

val register : unit -> unit
(** Idempotently add [jigsaw-2d] (dims 2) and [jigsaw-3d] (dims 3) to the
    {!Nufft.Operator} registry. *)

val hardware_l : int -> int
(** Clamp a requested table oversampling to what the weight SRAM supports:
    the largest power of two <= min(l, 64) (paper Table I). *)

val make_2d : Nufft.Operator.factory
val make_3d : Nufft.Operator.factory
(** The factories behind the registry entries (exposed for direct use). *)
