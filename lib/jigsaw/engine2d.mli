(** The JIGSAW 2D streaming gridding engine (paper §IV, Fig 5).

    A [t x t] grid of identical 32-bit fixed-point pipelines (select ->
    weight lookup -> interpolation -> accumulate) accepts one non-uniform
    sample per cycle, broadcast to all pipelines in parallel; each pipeline
    accumulates into its private column SRAM. The engine is stall-free:
    gridding an [m]-sample stream takes exactly [m + pipeline_depth]
    cycles, irrespective of sampling pattern, window width or grid size —
    the headline property of the paper.

    The model is functional (bit-exact fixed-point datapath) and
    cycle-counting (the schedule is deterministic, so counting is exact). *)

type t

val create : Config.t -> table:Numerics.Weight_table.t -> t
(** Instantiate pipelines and load the weight SRAMs. *)

val config : t -> Config.t

val stream_sample :
  t -> cx:int -> cy:int -> Numerics.Fixed_point.Complex.t -> unit
(** Feed one sample: raw fixed-point coordinates plus its complex value in
    the pipeline format. All [t^2] pipelines process it in parallel (one
    cycle of the streaming schedule). *)

val stream :
  t -> gx:float array -> gy:float array -> Numerics.Cvec.t -> unit
(** Convenience: quantise float grid-unit coordinates and double values to
    the hardware formats and stream them all. *)

val samples_streamed : t -> int

val gridding_cycles : t -> int
(** [samples_streamed + pipeline_depth_2d] — the M+12 of §VI-A. *)

val gridding_time_s : t -> float

val saturation_events : t -> int
(** Accumulator saturations across all pipelines (0 = the fixed-point range
    was never exceeded). *)

val readout : t -> Numerics.Cvec.t
(** Drain the accumulation SRAMs tile by tile into a row-major [n x n]
    double grid (values converted from the pipeline fixed point). *)

val reset : t -> unit
