(* End-to-end NuFFT operators backed by the JIGSAW fixed-point engines:
   the hardware model grids, then the plan's FFT + de-apodization finish
   the adjoint, making the ASIC drivable from any Operator consumer. *)

module Op = Nufft.Operator
module Sample = Nufft.Sample
module Cvec = Numerics.Cvec
module Wt = Numerics.Weight_table

let now () = Unix.gettimeofday ()

(* Synthetic span for the cycle model: the simulated gridding pass is
   replayed on its own trace row (tid 900) with a duration derived from
   the modelled cycle count and the configured clock, so hardware time
   shows up in the same chrome trace as the software wall-clock spans. *)
let model_tid = 900

let emit_cycle_span (cfg : Config.t) ~cycles =
  if Telemetry.enabled () && cycles > 0 then
    Telemetry.emit_span ~cat:"model" ~tid:model_tid
      ~args:[ ("cycles", string_of_int cycles) ]
      ~name:"jigsaw.cycles" ~ts_ns:(Telemetry.Clock.now_ns ())
      ~dur_ns:(int_of_float (float_of_int cycles /. cfg.Config.clock_ghz))
      ()

(* Table I restricts the on-chip table oversampling to a power of two
   <= 64; software callers routinely ask for L = 512. *)
let hardware_l l =
  let l = max 1 (min l 64) in
  let rec pow2 p = if p * 2 > l then p else pow2 (p * 2) in
  pow2 1

(* Shared per-backend plumbing: hardware config, Q1.15 table, and a
   double-precision plan built over the *same* kernel and table
   oversampling, used for the forward direction and the de-apodization
   factors. Sample coordinates are snapped to the hardware coordinate
   grid so forward and adjoint see bit-identical geometry; the remaining
   forward/adjoint asymmetry is pure fixed-point quantization. *)
let setup (c : Op.ctx) =
  let g = Op.ctx_grid c in
  let l = hardware_l c.Op.l in
  let cfg = Config.make ~n:g ~w:c.Op.w ~l () in
  (* The context's resolved kernel (Kaiser-Bessel by default, ES for
     tolerance-driven plans) — both engines' tables and the companion
     double plan must agree on it. *)
  let kernel = c.Op.kernel in
  let table = Wt.make ~precision:Wt.Fixed16 ~kernel ~width:c.Op.w ~l () in
  let plan =
    Nufft.Plan.make ~kernel ~w:c.Op.w ~sigma:c.Op.sigma ~l ?pool:c.Op.pool
      ~n:c.Op.n ()
  in
  let snap u = Config.to_float_coord cfg (Config.of_float_coord cfg u) in
  let coords =
    Sample.make ~g
      ~coords:(Array.map (Array.map snap) c.Op.coords.Sample.coords)
      ~values:c.Op.coords.Sample.values
  in
  (cfg, table, plan, coords)

let check_grid ~g (s : Sample.t) =
  if s.Sample.g <> g then
    invalid_arg
      (Printf.sprintf "jigsaw operator: sample set is for grid %d, not %d"
         s.Sample.g g)

let make_2d (c : Op.ctx) : Op.op =
  let g = Op.ctx_grid c in
  let cfg, table, plan, coords = setup c in
  let engine = Engine2d.create cfg ~table in
  let st = Op.create_stats () in
  (module struct
    let name = "jigsaw-2d"
    let dims = 2
    let n = c.Op.n
    let g = g

    let adjoint s =
      check_grid ~g s;
      let sp = Op.adjoint_span name in
      let t0 = now () in
      Engine2d.reset engine;
      Engine2d.stream engine ~gx:(Sample.gx s) ~gy:(Sample.gy s)
        s.Sample.values;
      let grid = Engine2d.readout engine in
      let cycles = Engine2d.gridding_cycles engine in
      emit_cycle_span cfg ~cycles;
      let t1 = now () in
      Fft.Fftnd.transform_2d ?pool:c.Op.pool Fft.Dft.Inverse ~nx:g ~ny:g grid;
      let t2 = now () in
      let image = Nufft.Plan.crop_deapodize_2d plan grid in
      let t3 = now () in
      Op.record_adjoint ~cycles st ~elapsed_s:(t3 -. t0)
        ~timings:
          { Nufft.Plan.gridding_s = t1 -. t0;
            fft_s = t2 -. t1;
            deapod_s = t3 -. t2 };
      Telemetry.span_end sp;
      image

    let forward image =
      let sp = Op.forward_span name in
      let t0 = now () in
      let values = Nufft.Plan.forward ~stats:st.Op.grid plan ~coords image in
      Op.record_forward st ~elapsed_s:(now () -. t0);
      Telemetry.span_end sp;
      Sample.with_values coords values

    let stats () = st

    (* Hardware models grid on the lattice-coupled path only: type-1
       (adjoint) and type-2 (forward). No type-3 leg. *)
    let transforms = [ Nufft.Transform.Type1; Nufft.Transform.Type2 ]
    let type3 = None

    (* Fixed-point numerics: a CPU plan must never stand in for this
       backend's own transforms. *)
    let plan = None
  end : Op.NUFFT_OP)

let make_3d (c : Op.ctx) : Op.op =
  let g = Op.ctx_grid c in
  let cfg, table, plan, coords = setup c in
  let engine = Engine3d.create cfg ~table ~nz:g in
  let st = Op.create_stats () in
  (module struct
    let name = "jigsaw-3d"
    let dims = 3
    let n = c.Op.n
    let g = g

    let adjoint s =
      check_grid ~g s;
      let sp = Op.adjoint_span name in
      let m = Sample.length s in
      let t0 = now () in
      let slices =
        Engine3d.grid_volume engine ~gx:(Sample.gx s) ~gy:(Sample.gy s)
          ~gz:(Sample.gz s) s.Sample.values
      in
      let big = Cvec.create (g * g * g) in
      Array.iteri
        (fun z slice ->
          let base = z * g * g in
          for i = 0 to (g * g) - 1 do
            Cvec.set big (base + i) (Cvec.get slice i)
          done)
        slices;
      let cycles = Engine3d.unsorted_cycles engine ~m in
      emit_cycle_span cfg ~cycles;
      let t1 = now () in
      Fft.Fftnd.transform_3d ?pool:c.Op.pool Fft.Dft.Inverse ~nx:g ~ny:g ~nz:g
        big;
      let t2 = now () in
      let volume = Nufft.Plan.crop_deapodize_3d plan big in
      let t3 = now () in
      Op.record_adjoint ~cycles st ~elapsed_s:(t3 -. t0)
        ~timings:
          { Nufft.Plan.gridding_s = t1 -. t0;
            fft_s = t2 -. t1;
            deapod_s = t3 -. t2 };
      Telemetry.span_end sp;
      volume

    let forward image =
      let sp = Op.forward_span name in
      let t0 = now () in
      let values = Nufft.Plan.forward ~stats:st.Op.grid plan ~coords image in
      Op.record_forward st ~elapsed_s:(now () -. t0);
      Telemetry.span_end sp;
      Sample.with_values coords values

    let stats () = st

    (* Hardware models grid on the lattice-coupled path only: type-1
       (adjoint) and type-2 (forward). No type-3 leg. *)
    let transforms = [ Nufft.Transform.Type1; Nufft.Transform.Type2 ]
    let type3 = None

    (* Fixed-point numerics: a CPU plan must never stand in for this
       backend's own transforms. *)
    let plan = None
  end : Op.NUFFT_OP)

let registered = ref false

let register () =
  if not !registered then begin
    registered := true;
    (* Default [~transforms] = type-1/type-2 only: the fixed-point engines
       grid onto the lattice-coupled oversampled grid and have no type-3
       scale/shift path — the registry rejects a Type3 context up front. *)
    Op.register ~dims:[ 2 ]
      ~doc:
        "JIGSAW 2D streaming fixed-point engine (M+12 cycles), FFT + \
         de-apodization in software"
      "jigsaw-2d" make_2d;
    Op.register ~dims:[ 3 ]
      ~doc:
        "JIGSAW 3D-Slice engine: one 2D fixed-point pass per z-slice, \
         unsorted schedule"
      "jigsaw-3d" make_3d
  end
