(** Per-pipeline accumulation SRAM (paper §IV).

    Each pipeline owns a private SRAM array holding the partial sums of its
    dice column — one complex 32-bit fixed-point entry per virtual tile.
    Adders are collocated with the SRAM; accumulation saturates like the
    hardware ALU, and saturation events are counted so experiments can
    verify their data stayed inside the numeric range. *)

type t

val create : Config.t -> t
(** A zeroed column of [tiles_total cfg] entries. *)

val accumulate : t -> int -> Numerics.Fixed_point.Complex.t -> unit
(** [accumulate t tile v] adds [v] into entry [tile], saturating at the
    pipeline format's range. *)

val read : t -> int -> Numerics.Fixed_point.Complex.t
val saturation_events : t -> int
val entries : t -> int
val clear : t -> unit
