(** The JIGSAW select stage (paper §IV, Fig 4) — integer-exact.

    For each arriving sample, every pipeline decides with pure integer
    arithmetic whether the sample's interpolation window covers the one
    grid point of its column, and if so computes the accumulation index
    (wrapped tile coordinate) and the weight-table address:

    + truncate the coordinate's upper bits -> relative coordinate; the
      truncated bits are the tile coordinate;
    + window-shift and subtract the pipeline index -> forward distance;
    + compare against the window width -> affected?;
    + relative coordinate < pipeline index -> the window wrapped into the
      neighbouring tile: decrement the tile coordinate (mod grid);
    + distance * L (a shift, since L is a power of two), rounded -> table
      address.

    The arithmetic is bit-faithful to a 32-bit fixed-point datapath and is
    property-tested to agree exactly with the floating-point
    {!Nufft.Coord.column_check} whenever the coordinate is representable. *)

type hit = {
  k_wrapped : int;  (** wrapped grid index of the affected point *)
  tile : int;  (** wrapped tile coordinate — the SRAM depth index *)
  dist_raw : int;  (** signed distance in coordinate fixed point *)
  table_addr : int;  (** weight SRAM address *)
  wrapped : bool;  (** window crossed into the neighbouring tile *)
}

val check : Config.t -> pipeline:int -> int -> hit option
(** [check cfg ~pipeline raw] runs the select stage of 1D pipeline index
    [pipeline] (in [0 .. t-1]) on raw fixed-point coordinate [raw]
    (non-negative, < [n << coord_frac_bits]). *)

val global_tile_address : Config.t -> tile_x:int -> tile_y:int -> int
(** Combine per-dimension tile coordinates into the linear accumulation
    index ("like calculating a total linear index in GPU programming"). *)
