module Fp = Numerics.Fixed_point

type t = {
  fmt : Fp.fmt;
  data : int array;  (* interleaved re/im raw values *)
  mutable saturations : int;
}

let create (cfg : Config.t) =
  { fmt = cfg.Config.pipeline_fmt;
    data = Array.make (2 * Config.tiles_total cfg) 0;
    saturations = 0 }

let entries t = Array.length t.data / 2

let check t idx =
  if idx < 0 || idx >= entries t then
    invalid_arg "Jigsaw.Accum: tile index out of range"

let accumulate t tile (v : Fp.Complex.t) =
  check t tile;
  let add slot x =
    let exact = t.data.(slot) + x in
    let sat = Fp.saturate t.fmt exact in
    if sat <> exact then t.saturations <- t.saturations + 1;
    t.data.(slot) <- sat
  in
  add (2 * tile) v.Fp.Complex.re;
  add ((2 * tile) + 1) v.Fp.Complex.im

let read t tile =
  check t tile;
  { Fp.Complex.re = t.data.(2 * tile); im = t.data.((2 * tile) + 1) }

let saturation_events t = t.saturations

let clear t =
  Array.fill t.data 0 (Array.length t.data) 0;
  t.saturations <- 0
