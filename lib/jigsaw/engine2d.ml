module Fp = Numerics.Fixed_point
module Cvec = Numerics.Cvec

type t = {
  cfg : Config.t;
  weights : Weight_unit.t;
  columns : Accum.t array;  (** indexed by pipeline = ry * t + rx *)
  mutable samples : int;
}

let create cfg ~table =
  { cfg;
    weights = Weight_unit.load cfg table;
    columns = Array.init (Config.pipelines cfg) (fun _ -> Accum.create cfg);
    samples = 0 }

let config e = e.cfg

let stream_sample e ~cx ~cy value =
  let cfg = e.cfg in
  let t = cfg.Config.t in
  (* Broadcast: every pipeline T_{x,y} runs its select stage; affected
     pipelines continue through weight lookup, interpolation (Knuth
     complex multiplies) and accumulation. *)
  for py = 0 to t - 1 do
    match Select_unit.check cfg ~pipeline:py cy with
    | None -> ()
    | Some hy ->
        for px = 0 to t - 1 do
          match Select_unit.check cfg ~pipeline:px cx with
          | None -> ()
          | Some hx ->
              let weight =
                Weight_unit.combine e.weights
                  ~addr_x:hx.Select_unit.table_addr
                  ~addr_y:hy.Select_unit.table_addr
              in
              let contribution =
                Fp.Complex.mul_knuth_mixed ~a_fmt:cfg.Config.weight_fmt
                  ~b_fmt:cfg.Config.pipeline_fmt
                  ~out_fmt:cfg.Config.pipeline_fmt weight value
              in
              let tile =
                Select_unit.global_tile_address cfg
                  ~tile_x:hx.Select_unit.tile ~tile_y:hy.Select_unit.tile
              in
              Accum.accumulate e.columns.((py * t) + px) tile contribution
        done
  done;
  e.samples <- e.samples + 1

let stream e ~gx ~gy values =
  let m = Array.length gx in
  if Array.length gy <> m || Cvec.length values <> m then
    invalid_arg "Engine2d.stream: length mismatch";
  for j = 0 to m - 1 do
    stream_sample e
      ~cx:(Config.of_float_coord e.cfg gx.(j))
      ~cy:(Config.of_float_coord e.cfg gy.(j))
      (Fp.Complex.of_complexd e.cfg.Config.pipeline_fmt (Cvec.get values j))
  done

let samples_streamed e = e.samples

let gridding_cycles e = e.samples + e.cfg.Config.pipeline_depth_2d

let gridding_time_s e =
  float_of_int (gridding_cycles e) /. (e.cfg.Config.clock_ghz *. 1e9)

let saturation_events e =
  Array.fold_left (fun acc c -> acc + Accum.saturation_events c) 0 e.columns

let readout e =
  let cfg = e.cfg in
  let n = cfg.Config.n and t = cfg.Config.t in
  let n_tiles = Config.tiles_per_side cfg in
  let out = Cvec.create (n * n) in
  for py = 0 to t - 1 do
    for px = 0 to t - 1 do
      let column = e.columns.((py * t) + px) in
      for ty = 0 to n_tiles - 1 do
        for tx = 0 to n_tiles - 1 do
          let v = Accum.read column ((ty * n_tiles) + tx) in
          let gx = (tx * t) + px and gy = (ty * t) + py in
          Cvec.set out ((gy * n) + gx)
            (Fp.Complex.to_complexd cfg.Config.pipeline_fmt v)
        done
      done
    done
  done;
  out

let reset e =
  Array.iter Accum.clear e.columns;
  e.samples <- 0
