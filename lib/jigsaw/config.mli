(** JIGSAW system parameters (paper Table I).

    {v
    Target Grid Dimensions (N)           8 - 1024
    Virtual Tile Dimensions (T)          8
    Interpolation Window Dimensions (W)  1 - 8
    Table Oversampling Factor (L)        1 - 64
    Pipeline Bit Width                   32-bit
    Interpolation Weight Bit Width       16-bit
    v}

    [n] here is the {e oversampled target grid} size the accelerator grids
    onto (the paper's N); coordinates arrive as 32-bit fixed point with
    [coord_frac_bits] fractional bits. [l] must be a power of two so the
    select unit can form table addresses by shifting (paper §IV). *)

type t = {
  n : int;  (** target grid points per side, 8..1024, multiple of [t] *)
  t : int;  (** virtual tile dimension; the paper's arrays use 8 *)
  w : int;  (** interpolation window width, 1..8 *)
  l : int;  (** table oversampling factor, power of two, 1..64 *)
  coord_frac_bits : int;  (** fractional bits of input coordinates *)
  pipeline_fmt : Numerics.Fixed_point.fmt;  (** 32-bit accumulate format *)
  weight_fmt : Numerics.Fixed_point.fmt;  (** 16-bit weight format *)
  clock_ghz : float;
  pipeline_depth_2d : int;  (** 12 cycles (paper §VI-A) *)
  pipeline_depth_3d : int;  (** 15 cycles *)
}

val make : ?t:int -> ?w:int -> ?l:int -> ?coord_frac_bits:int -> n:int -> unit -> t
(** Defaults: [t = 8], [w = 6], [l = 32], [coord_frac_bits = 16],
    Q9.23 pipeline (32-bit), Q1.15 weights, 1.0 GHz, depths 12/15.
    Raises [Invalid_argument] when outside Table I's ranges. *)

val pipelines : t -> int
(** [t^2] — 64 for the paper's configuration. *)

val tiles_per_side : t -> int
val tiles_total : t -> int

val weight_sram_entries : t -> int
(** Half-window table entries per dimension, [w*l/2 + 1]; must fit the
    257-entry SRAM budget (256 weights + centre) of §IV. *)

val accum_sram_bytes : t -> int
(** Total accumulation SRAM: [n^2] complex points at 8 bytes — ~8 MiB for
    n = 1024. *)

val to_float_coord : t -> int -> float
val of_float_coord : t -> float -> int
(** Convert between grid-unit float coordinates and the 32-bit fixed-point
    raw representation the hardware receives; [of_float_coord] rounds to
    the coordinate grid and wraps onto the torus [0, n). *)
