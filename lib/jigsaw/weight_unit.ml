module Fp = Numerics.Fixed_point
module Wt = Numerics.Weight_table

type t = { entries : Fp.Complex.t array }

let sram_capacity = 257

let load (cfg : Config.t) table =
  if Wt.width table <> cfg.Config.w then
    invalid_arg "Weight_unit.load: table width mismatch";
  if Wt.oversampling table <> cfg.Config.l then
    invalid_arg "Weight_unit.load: table oversampling mismatch";
  let n = Wt.entries table in
  if n > sram_capacity then
    invalid_arg "Weight_unit.load: table exceeds SRAM capacity";
  { entries =
      Array.init n (fun a -> { Fp.Complex.re = Wt.get_q15 table a; im = 0 }) }

let read t addr =
  if addr < 0 || addr >= Array.length t.entries then
    invalid_arg "Weight_unit.read: address out of range";
  t.entries.(addr)

let q15 = Fp.q15

let combine t ~addr_x ~addr_y =
  Fp.Complex.mul_knuth q15 (read t addr_x) (read t addr_y)

let combine3 t ~addr_x ~addr_y ~addr_z =
  Fp.Complex.mul_knuth q15 (combine t ~addr_x ~addr_y) (read t addr_z)
