module Fp = Numerics.Fixed_point
module Cvec = Numerics.Cvec

type t = {
  cfg : Config.t;
  table : Numerics.Weight_table.t;
  nz : int;
  mutable saturations : int;
}

let create cfg ~table ~nz =
  if nz < 1 then invalid_arg "Engine3d.create: nz must be >= 1";
  (* Validate the table against the configuration once, up front. *)
  ignore (Weight_unit.load cfg table);
  { cfg; table; nz; saturations = 0 }

(* z select check: is slice [z] inside the window of coordinate [uz]?
   Same integer arithmetic as Select_unit, against a single plane and
   with the same periodic wrap: a window point past either z edge lands
   on the aliased slice [k mod nz], exactly like the 2D unit's
   [k_wrapped]. The window is narrower than the grid, so at most one
   alias of [z] falls inside it. *)
let z_hit (cfg : Config.t) ~nz ~z raw =
  let f = cfg.Config.coord_frac_bits in
  let w = cfg.Config.w in
  let c_shift = raw + (w lsl (f - 1)) in
  let kmax = c_shift asr f in
  let start = kmax - w + 1 in
  let k =
    let d = (z - start) mod nz in
    start + (if d < 0 then d + nz else d)
  in
  if k > kmax then None
  else begin
    let dist_raw = (k lsl f) - raw in
    let log2l =
      let rec go b v = if v = 1 then b else go (b + 1) (v / 2) in
      go 0 cfg.Config.l
    in
    Some (((abs dist_raw lsl log2l) + (1 lsl (f - 1))) asr f)
  end

let grid_volume e ~gx ~gy ~gz values =
  let m = Array.length gx in
  if Array.length gy <> m || Array.length gz <> m || Cvec.length values <> m
  then invalid_arg "Engine3d.grid_volume: length mismatch";
  let cfg = e.cfg in
  Array.iter
    (fun z ->
      if z < 0.0 || z >= float_of_int e.nz then
        invalid_arg "Engine3d.grid_volume: z coordinate out of range")
    gz;
  let weights = Weight_unit.load cfg e.table in
  let slices =
    Array.init e.nz (fun z ->
        (* One stall-free 2D pass per slice; only the z-affected samples
           make it past the (3D) select stage. *)
        let engine = Engine2d.create cfg ~table:e.table in
        for j = 0 to m - 1 do
          let craw = Config.of_float_coord cfg gz.(j) in
          match z_hit cfg ~nz:e.nz ~z craw with
          | None -> ()
          | Some addr_z ->
              (* Fold the z weight into the sample value before the 2D
                 stages — equivalent to the 3D weight product of §IV. *)
              let wz = Weight_unit.read weights addr_z in
              let v =
                Fp.Complex.mul_knuth_mixed ~a_fmt:cfg.Config.weight_fmt
                  ~b_fmt:cfg.Config.pipeline_fmt
                  ~out_fmt:cfg.Config.pipeline_fmt wz
                  (Fp.Complex.of_complexd cfg.Config.pipeline_fmt
                     (Cvec.get values j))
              in
              Engine2d.stream_sample engine
                ~cx:(Config.of_float_coord cfg gx.(j))
                ~cy:(Config.of_float_coord cfg gy.(j))
                v
        done;
        let out = Engine2d.readout engine in
        e.saturations <- e.saturations + Engine2d.saturation_events engine;
        out)
  in
  slices

let unsorted_cycles e ~m = (m + e.cfg.Config.pipeline_depth_3d) * e.nz

let z_sorted_cycles e ~m = (m + e.cfg.Config.pipeline_depth_3d) * e.cfg.Config.w

let saturation_events e = e.saturations
