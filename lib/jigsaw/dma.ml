let sample_bytes = 16
let point_bytes = 8

let input_cycles ~m = m

let readout_cycles (cfg : Config.t) = cfg.Config.n * cfg.Config.n / 2

let end_to_end_cycles (cfg : Config.t) ~m =
  input_cycles ~m + cfg.Config.pipeline_depth_2d + readout_cycles cfg

let bandwidth_gb_s (cfg : Config.t) =
  float_of_int sample_bytes *. cfg.Config.clock_ghz

let end_to_end_time_s cfg ~m =
  float_of_int (end_to_end_cycles cfg ~m) /. (cfg.Config.clock_ghz *. 1e9)
