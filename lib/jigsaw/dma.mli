(** Host <-> JIGSAW DMA stream model (paper §IV "System Integration").

    Input data arrives over a 128-bit bus as one non-uniform sample (two
    32-bit fixed-point coordinates + one 32+32-bit complex value) per cycle
    at 1.0 GHz — matching DDR4-class bandwidth (~20 GB/s). After the stream
    completes, the gridded data is read out at two 64-bit target points per
    cycle. The accelerator is fully provisioned, so no gap is needed
    between the host-to-device and device-to-host streams. *)

val sample_bytes : int
(** 16: two fixed-point coordinates + complex value. *)

val point_bytes : int
(** 8: one complex 32-bit fixed-point grid point. *)

val input_cycles : m:int -> int
(** One sample per cycle: [m]. *)

val readout_cycles : Config.t -> int
(** Two points per cycle over the 128-bit bus: [n^2 / 2]. *)

val end_to_end_cycles : Config.t -> m:int -> int
(** Input stream + pipeline drain + readout: the full device-side latency
    of one 2D gridding. *)

val bandwidth_gb_s : Config.t -> float
(** Input bandwidth implied by one 16-byte sample per clock. *)

val end_to_end_time_s : Config.t -> m:int -> float
