type variant = Two_d | Three_d_slice

type measurement = {
  power_mw : float;
  area_mm2 : float;
}

let with_accum_sram = function
  | Two_d -> { power_mw = 216.86; area_mm2 = 12.20 }
  | Three_d_slice -> { power_mw = 104.36; area_mm2 = 12.42 }

let logic_only = function
  | Two_d -> { power_mw = 94.22; area_mm2 = 0.42 }
  | Three_d_slice -> { power_mw = 63.62; area_mm2 = 0.64 }

let sram_contribution v =
  let full = with_accum_sram v and logic = logic_only v in
  { power_mw = full.power_mw -. logic.power_mw;
    area_mm2 = full.area_mm2 -. logic.area_mm2 }

let energy_j ?(variant = Two_d) ~cycles ~clock_ghz () =
  let time_s = float_of_int cycles /. (clock_ghz *. 1e9) in
  (with_accum_sram variant).power_mw *. 1e-3 *. time_s

let variant_name = function
  | Two_d -> "2D"
  | Three_d_slice -> "3D Slice"

let table =
  [ ("2D (8MB SRAM)", with_accum_sram Two_d);
    ("2D (no accum SRAM)", logic_only Two_d);
    ("3D Slice (8MB SRAM)", with_accum_sram Three_d_slice);
    ("3D Slice (no accum SRAM)", logic_only Three_d_slice) ]
