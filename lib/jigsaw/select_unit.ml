type hit = {
  k_wrapped : int;
  tile : int;
  dist_raw : int;
  table_addr : int;
  wrapped : bool;
}

let log2_exact x =
  let rec go b v = if v = 1 then b else go (b + 1) (v / 2) in
  go 0 x

let check (cfg : Config.t) ~pipeline raw =
  let f = cfg.Config.coord_frac_bits in
  let t = cfg.Config.t and w = cfg.Config.w in
  if raw < 0 || raw >= cfg.Config.n lsl f then
    invalid_arg "Select_unit.check: coordinate out of range";
  if pipeline < 0 || pipeline >= t then
    invalid_arg "Select_unit.check: pipeline index out of range";
  (* Window shift: kmax = floor(u + w/2), start = kmax - w + 1. *)
  let c_shift = raw + (w lsl (f - 1)) in
  let kmax = c_shift asr f in
  let start = kmax - w + 1 in
  (* Unique window point congruent to the pipeline index (mod t). *)
  let j =
    let m = (pipeline - start) mod t in
    if m < 0 then m + t else m
  in
  if j >= w then None
  else begin
    let k = start + j in
    let dist_raw = (k lsl f) - raw in
    (* |dist| * l, rounded to the nearest integer: with l a power of two
       the multiply is a left shift of log2 l. *)
    let abs_dist = abs dist_raw in
    let table_addr = ((abs_dist lsl log2_exact cfg.Config.l) + (1 lsl (f - 1))) asr f in
    let n_tiles = cfg.Config.n / t in
    let tile_unwrapped = if k >= 0 then k / t else ((k + 1) / t) - 1 in
    let sample_tile = (raw asr f) / t in
    let tile =
      let m = tile_unwrapped mod n_tiles in
      if m < 0 then m + n_tiles else m
    in
    let k_wrapped =
      let m = k mod cfg.Config.n in
      if m < 0 then m + cfg.Config.n else m
    in
    Some
      { k_wrapped;
        tile;
        dist_raw;
        table_addr;
        wrapped = tile_unwrapped <> sample_tile }
  end

let global_tile_address (cfg : Config.t) ~tile_x ~tile_y =
  (tile_y * Config.tiles_per_side cfg) + tile_x
