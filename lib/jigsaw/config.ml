module Fp = Numerics.Fixed_point

type t = {
  n : int;
  t : int;
  w : int;
  l : int;
  coord_frac_bits : int;
  pipeline_fmt : Fp.fmt;
  weight_fmt : Fp.fmt;
  clock_ghz : float;
  pipeline_depth_2d : int;
  pipeline_depth_3d : int;
}

let is_pow2 x = x > 0 && x land (x - 1) = 0

let make ?(t = 8) ?(w = 6) ?(l = 32) ?(coord_frac_bits = 16) ~n () =
  if n < 8 || n > 1024 then
    invalid_arg "Jigsaw.Config.make: n must be in 8..1024 (Table I)";
  if t < 1 then invalid_arg "Jigsaw.Config.make: t must be >= 1";
  if n mod t <> 0 then invalid_arg "Jigsaw.Config.make: t must divide n";
  if w < 1 || w > 8 then
    invalid_arg "Jigsaw.Config.make: w must be in 1..8 (Table I)";
  if w > t then invalid_arg "Jigsaw.Config.make: w must not exceed t";
  if l < 1 || l > 64 || not (is_pow2 l) then
    invalid_arg "Jigsaw.Config.make: l must be a power of two in 1..64";
  if coord_frac_bits < 1 || coord_frac_bits > 20 then
    invalid_arg "Jigsaw.Config.make: coord_frac_bits must be in 1..20";
  { n;
    t;
    w;
    l;
    coord_frac_bits;
    pipeline_fmt = Fp.fmt ~total_bits:32 ~frac_bits:23;
    weight_fmt = Fp.q15;
    clock_ghz = 1.0;
    pipeline_depth_2d = 12;
    pipeline_depth_3d = 15 }

let pipelines c = c.t * c.t
let tiles_per_side c = c.n / c.t
let tiles_total c = tiles_per_side c * tiles_per_side c
let weight_sram_entries c = (c.w * c.l / 2) + 1
let accum_sram_bytes c = c.n * c.n * 8

let to_float_coord c raw = float_of_int raw /. float_of_int (1 lsl c.coord_frac_bits)

let of_float_coord c u =
  let scaled = u *. float_of_int (1 lsl c.coord_frac_bits) in
  let raw = int_of_float (Float.round scaled) in
  (* The grid is a torus: rounding can push a coordinate just below n to
     exactly n; wrap it (and any other out-of-range real) back. *)
  let span = c.n lsl c.coord_frac_bits in
  let m = raw mod span in
  if m < 0 then m + span else m
