(** Synthesis results (paper Table II) as a power/area/energy model.

    The paper synthesises JIGSAW in an industrial 16 nm node at 1.0 GHz and
    reports, for each variant, figures with and without the ~8 MiB target
    grid accumulation SRAM (which dominates both area and power). We encode
    the published constants and derive energy as power x modelled runtime —
    exactly how the paper's Fig 8 energies are produced. *)

type variant = Two_d | Three_d_slice

type measurement = {
  power_mw : float;
  area_mm2 : float;
}

val with_accum_sram : variant -> measurement
(** 2D: 216.86 mW / 12.20 mm2; 3D Slice: 104.36 mW / 12.42 mm2. *)

val logic_only : variant -> measurement
(** Without accumulation SRAM — 2D: 94.22 mW / 0.42 mm2;
    3D Slice: 63.62 mW / 0.64 mm2. *)

val sram_contribution : variant -> measurement
(** [with_accum_sram - logic_only]: what the 8 MiB grid storage costs. The
    paper notes ~95% of area and >56% of 2D power is this SRAM. *)

val energy_j : ?variant:variant -> cycles:int -> clock_ghz:float -> unit -> float
(** Energy of a run of [cycles] at [clock_ghz] using the full (with-SRAM)
    power. Default variant: [Two_d]. *)

val variant_name : variant -> string

val table : (string * measurement) list
(** The four rows of Table II, labelled. *)
