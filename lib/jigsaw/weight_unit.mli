(** The JIGSAW interpolation-weight lookup stage (paper §IV).

    A dual-ported SRAM stores up to 257 complex weights of 16+16 bits
    (window symmetry halves the storage: W = 8 at L = 64 fits); per sample
    the unit reads one weight per dimension and multiplies them with
    Knuth's 3-multiplication complex product to form the final
    interpolation weight. Real windows (Kaiser-Bessel etc.) simply carry a
    zero imaginary part — the datapath is complex to match the hardware. *)

type t

val sram_capacity : int
(** 257 entries (256 weights + the window centre). *)

val load : Config.t -> Numerics.Weight_table.t -> t
(** Initialise the SRAM from a weight table; the table's width and
    oversampling must match the configuration and fit the SRAM. Entries
    are quantised to Q1.15 regardless of the table's own precision. *)

val read : t -> int -> Numerics.Fixed_point.Complex.t
(** Raw SRAM read. Raises [Invalid_argument] out of range. *)

val combine : t -> addr_x:int -> addr_y:int -> Numerics.Fixed_point.Complex.t
(** Final 2D weight: [sram[addr_x] * sram[addr_y]] (Knuth product, Q1.15
    result). *)

val combine3 :
  t -> addr_x:int -> addr_y:int -> addr_z:int -> Numerics.Fixed_point.Complex.t
(** 3D variant: product of three per-dimension weights. *)
