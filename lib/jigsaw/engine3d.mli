(** JIGSAW 3D Slice: gridding a 3D volume as a sequence of 2D slices
    (paper §IV "Gridding in 2D and 3D", §VI-A).

    On-chip SRAM holds one [n x n] slice (~8 MiB at n = 1024), so an
    [n^3] volume is gridded in [nz] sequential passes: each pass streams
    the whole (unsorted) sample set, the select stage additionally checks
    the z distance, and affected samples contribute with a third weight
    factor. Runtimes (paper formulas):

    - unsorted input: [(m + 15) * nz] cycles;
    - input pre-binned by z-slice: [(m + 15) * wz] cycles, since each
      sample only needs to be streamed to the [wz] slices it affects. *)

type t

val create : Config.t -> table:Numerics.Weight_table.t -> nz:int -> t
(** [nz] slices in the z dimension (coordinates [uz in [0, nz))). *)

val grid_volume :
  t ->
  gx:float array ->
  gy:float array ->
  gz:float array ->
  Numerics.Cvec.t ->
  Numerics.Cvec.t array
(** Functionally grid the whole volume slice by slice; element [z] of the
    result is the [n x n] grid of slice [z]. Each pass re-streams all
    samples (the unsorted schedule). *)

val unsorted_cycles : t -> m:int -> int
(** [(m + pipeline_depth_3d) * nz]. *)

val z_sorted_cycles : t -> m:int -> int
(** [(m + pipeline_depth_3d) * wz] — the z-binned schedule; [wz] is the
    window width (same [w] in every dimension here). *)

val saturation_events : t -> int
