(** SIMT timing simulation.

    A kernel launch is a grid of blocks; each block's warps are produced on
    demand by [warp_of]. Blocks are distributed round-robin over the GPU's
    SMs; each SM keeps at most its resource-limited number of blocks
    resident, issues one warp operation per scan from ready warps
    (loose greedy-then-oldest), and blocks warps on their outstanding
    memory. SMs are co-simulated in bounded time quanta so that L2 and DRAM
    contention interleaves realistically across SMs.

    The model captures, at first order, everything the paper's GPU argument
    relies on: occupancy-limited latency hiding, SIMD-lane divergence,
    coalescing, L2 reuse, atomic conflicts and DRAM bandwidth
    saturation. *)

type kernel = {
  name : string;
  resources : Config.kernel_resources;
  blocks : int;
  warps_per_block : int;
  warp_of : block:int -> warp:int -> Op.warp;
      (** called once per (block, warp in block) *)
}

type result = {
  cycles : int;  (** wall-clock cycles (max over SMs) *)
  time_s : float;
  issue_slots : int;  (** SM issue cycles consumed *)
  active_lane_slots : float;  (** sum over issues of active/warp_size *)
  instructions : int;
  mem_transactions : int;
  l2_hit_rate : float;
  dram_bytes : int;
  occupancy : float;  (** resource-limited occupancy, 0..1 *)
  simd_utilization : float;  (** mean active-lane fraction per issue *)
  issue_utilization : float;  (** issue slots / (cycles * num_sms) *)
  energy_j : float;
}

val run : ?gpu:Config.gpu -> kernel -> result
(** Simulate a launch to completion (default GPU: Titan Xp). *)

val pp_result : Format.formatter -> result -> unit
