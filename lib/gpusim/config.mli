(** GPU hardware and kernel-resource configuration.

    The timing simulator models a Pascal-class GPU (the paper's Titan Xp)
    at the fidelity its argument needs: SIMT warps with divergence, an
    issue-limited SM, occupancy limited by register/thread/block resources,
    a shared L2 (set-associative, simulated) and a bandwidth/latency DRAM
    pipe. Per-kernel resource declarations determine occupancy the same way
    the CUDA occupancy calculator does. *)

type gpu = {
  num_sms : int;
  warp_size : int;
  max_warps_per_sm : int;
  max_threads_per_sm : int;
  max_blocks_per_sm : int;
  registers_per_sm : int;
  clock_ghz : float;
  l2 : Cachesim.Cache.config;
  l2_latency : int;  (** cycles, hit *)
  dram : Cachesim.Dram.config;
  board_power_w : float;  (** sustained board power under load *)
  idle_power_w : float;
}

val titan_xp : gpu

type kernel_resources = {
  threads_per_block : int;
  registers_per_thread : int;
  shared_bytes_per_block : int;
}

val resident_blocks : gpu -> kernel_resources -> int
(** Blocks simultaneously resident on one SM: the min over the register,
    thread, block-slot and shared-memory (96 KiB) limits; at least 0. *)

val occupancy : gpu -> kernel_resources -> float
(** Resident warps / max warps, in [0, 1]. *)
