module Coord = Nufft.Coord
module Slice = Nufft.Gridding_slice
module Binned = Nufft.Gridding_binned

type problem = {
  g : int;
  w : int;
  gx : float array;
  gy : float array;
}

let problem_of_samples ~w (s : Nufft.Sample.t2) =
  { g = s.Nufft.Sample.g; w; gx = (Nufft.Sample.gx s); gy = (Nufft.Sample.gy s) }

(* Synthetic device address map (bytes). *)
let sample_base = 0
let grid_base = 1 lsl 30
let bin_lists_base = 1 lsl 31
let bin_counters_base = (1 lsl 31) + (1 lsl 29)

let sample_bytes = 16 (* kx, ky : f32; value : complex f32 *)
let point_bytes = 8 (* complex f32 grid point *)

(* All 32 lanes read the same 16-byte sample record (a broadcast load). *)
let sample_load j =
  Op.Load
    { addrs =
        Array.init 32 (fun lane ->
            sample_base + (j * sample_bytes) + (lane mod 4 * 4)) }

(* Is wrapped grid point [k] inside the window of a sample at [u]? *)
let point_hit ~w ~g ~k u =
  let start = Coord.window_start ~w u in
  let j =
    let m = (k - start) mod g in
    if m < 0 then m + g else m
  in
  j < w

(* ------------------------------------------------------------------ *)
(* Slice-and-Dice kernel *)

let slice_and_dice ?(t = 8) ?(grid_blocks = 16384) ?(online_weights = false) p =
  Coord.check_tiling ~t ~g:p.g ~w:p.w;
  let m = Array.length p.gx in
  let warps_per_block = t * t / 32 in
  if warps_per_block < 1 then invalid_arg "Kernels.slice_and_dice: t too small";
  let warp_of ~block ~warp =
    let lo = block * m / grid_blocks and hi = (block + 1) * m / grid_blocks in
    Op.concat_gen (fun i ->
        let j = lo + i in
        if j >= hi then None
        else begin
          (* Columns covered by this warp: warp*32 .. warp*32+31. *)
          let hits = ref [] and nhits = ref 0 in
          for lane = 31 downto 0 do
            let column = (warp * 32) + lane in
            let rx = column mod t and ry = column / t in
            match Coord.column_check ~w:p.w ~t ~g:p.g ~column:rx p.gx.(j) with
            | None -> ()
            | Some hx -> (
                match
                  Coord.column_check ~w:p.w ~t ~g:p.g ~column:ry p.gy.(j)
                with
                | None -> ()
                | Some hy ->
                    let n_tiles = p.g / t in
                    let tile = (hy.Coord.tile * n_tiles) + hx.Coord.tile in
                    let addr =
                      Slice.dice_address ~t ~g:p.g ~column ~tile * point_bytes
                    in
                    hits := (grid_base + addr) :: !hits;
                    incr nhits)
          done;
          let ops =
            (* Two-part boundary check in both dimensions: shifts,
               masks, compares — ~12 issue slots on real SASS. *)
            sample_load j
            :: Op.Alu { issue_cycles = 12; active = 32 }
            ::
            (if !nhits = 0 then []
             else begin
               (* Complex atomicAdd = two 4-byte float atomics per lane. *)
               let words =
                 List.concat_map (fun a -> [ a; a + 4 ]) !hits
               in
               let weight_op =
                 if online_weights then
                   (* Ablation: compute the Kaiser-Bessel weights on the
                      SFU instead of reading the LUT — what the paper
                      credits as reason 1 for beating Impatient. *)
                   Op.Alu
                     { issue_cycles = 2 * 40 * ((!nhits + 7) / 8);
                       active = !nhits }
                 else
                   (* LUT lookup from shared memory + weight multiply. *)
                   Op.Alu { issue_cycles = 4; active = !nhits }
               in
               [ weight_op; Op.Atomic { addrs = Array.of_list words } ]
             end)
          in
          Some (Op.of_list ops)
        end)
  in
  { Sim.name =
      (if online_weights then "slice-and-dice-online-weights"
       else "slice-and-dice");
    resources =
      { Config.threads_per_block = t * t;
        registers_per_thread = 40;
        shared_bytes_per_block = 2048 };
    blocks = grid_blocks;
    warps_per_block;
    warp_of }

(* ------------------------------------------------------------------ *)
(* Impatient-style binned kernel *)

(* Bin contents (sample index lists) per tile, plus prefix offsets into the
   device-side bin list array. *)
let build_bins ~bin p =
  let n_tiles = p.g / bin in
  let bins = Array.make (n_tiles * n_tiles) [] in
  let m = Array.length p.gx in
  for j = m - 1 downto 0 do
    List.iter
      (fun (tx, ty) ->
        let b = (ty * n_tiles) + tx in
        bins.(b) <- j :: bins.(b))
      (Binned.bins_of_sample_2d ~w:p.w ~bin ~g:p.g p.gx.(j) p.gy.(j))
  done;
  let offsets = Array.make (Array.length bins + 1) 0 in
  Array.iteri
    (fun i l -> offsets.(i + 1) <- offsets.(i) + List.length l)
    bins;
  (Array.map Array.of_list bins, offsets)

let binned ?(bin = 8) p =
  if p.g mod bin <> 0 then invalid_arg "Kernels.binned: bin must divide g";
  let bins, offsets = build_bins ~bin p in
  let n_tiles = p.g / bin in
  let warps_per_block = bin * bin / 32 in
  if warps_per_block < 1 then invalid_arg "Kernels.binned: bin too small";
  let warp_of ~block ~warp =
    let tx = block mod n_tiles and ty = block / n_tiles in
    let entries = bins.(block) in
    let n = Array.length entries in
    (* Rows of the tile owned by this warp (bin columns x 32/bin rows). *)
    let rows_per_warp = 32 / bin in
    let row0 = warp * rows_per_warp in
    Op.concat_gen (fun i ->
        if i > n then None
        else if i = n then begin
          (* Epilogue: write the warp's tile points back, coalesced. *)
          let addrs =
            Array.init 32 (fun lane ->
                let px = lane mod bin and py = row0 + (lane / bin) in
                let gx = (tx * bin) + px and gy = (ty * bin) + py in
                grid_base + (((gy * p.g) + gx) * point_bytes))
          in
          Some (Op.of_list [ Op.Store { addrs } ])
        end
        else begin
          let j = entries.(i) in
          (* Count this warp's tile points inside the sample's window: the
             SIMD lanes that do useful work (the rest diverge and idle). *)
          let active = ref 0 in
          for py = row0 to row0 + rows_per_warp - 1 do
            let ky = (ty * bin) + py in
            if point_hit ~w:p.w ~g:p.g ~k:ky p.gy.(j) then
              for px = 0 to bin - 1 do
                let kx = (tx * bin) + px in
                if point_hit ~w:p.w ~g:p.g ~k:kx p.gx.(j) then incr active
              done
          done;
          let ops = ref [] in
          (* Amortised bin-list read: one coalesced line per 32 entries. *)
          if i mod 32 = 0 then
            ops :=
              [ Op.Load
                  { addrs =
                      Array.init (min 32 (n - i)) (fun e ->
                          bin_lists_base + ((offsets.(block) + i + e) * 4)) } ];
          ops := !ops @ [ sample_load j; Op.Alu { issue_cycles = 4; active = 32 } ];
          if !active > 0 then begin
            (* On-line Kaiser-Bessel weight evaluation — Impatient computes
               weights during processing rather than from a LUT (paper
               §VI-A reason 1): one sqrt + I0 polynomial chain per
               dimension (~40 SFU-class ops each), on the SFU pipe at
               ~8 lanes/cycle, so cost scales with the active lanes. *)
            let sfu_cost = 2 * 40 * ((!active + 7) / 8) in
            ops :=
              !ops
              @ [ Op.Alu { issue_cycles = sfu_cost; active = !active };
                  Op.Alu { issue_cycles = 2; active = !active } ]
          end;
          Some (Op.of_list !ops)
        end)
  in
  { Sim.name = "impatient-binned";
    resources =
      { Config.threads_per_block = bin * bin;
        registers_per_thread = 64;
        shared_bytes_per_block = 512 };
    blocks = n_tiles * n_tiles;
    warps_per_block;
    warp_of }

let binned_presort ?(bin = 8) p =
  if p.g mod bin <> 0 then
    invalid_arg "Kernels.binned_presort: bin must divide g";
  let m = Array.length p.gx in
  let n_tiles = p.g / bin in
  (* Exact device list positions for every (sample, bin) pair. *)
  let fill = Array.make (n_tiles * n_tiles) 0 in
  let offsets =
    let bins, offsets = build_bins ~bin p in
    ignore bins;
    offsets
  in
  let positions =
    Array.init m (fun j ->
        List.map
          (fun (tx, ty) ->
            let b = (ty * n_tiles) + tx in
            let pos = offsets.(b) + fill.(b) in
            fill.(b) <- fill.(b) + 1;
            (b, pos))
          (Binned.bins_of_sample_2d ~w:p.w ~bin ~g:p.g p.gx.(j) p.gy.(j)))
  in
  let threads_per_block = 256 in
  let blocks = max 1 ((m + threads_per_block - 1) / threads_per_block) in
  let warp_of ~block ~warp =
    let base = (block * threads_per_block) + (warp * 32) in
    if base >= m then Op.of_list []
    else begin
      let lanes = min 32 (m - base) in
      let coord_load =
        Op.Load
          { addrs = Array.init lanes (fun l -> sample_base + ((base + l) * sample_bytes)) }
      in
      (* Up to 4 duplicate rounds (a 2D window touches <= 4 tiles). *)
      let rounds = ref [] in
      for r = 3 downto 0 do
        let counters = ref [] and stores = ref [] in
        for l = lanes - 1 downto 0 do
          match List.nth_opt positions.(base + l) r with
          | None -> ()
          | Some (b, pos) ->
              counters := (bin_counters_base + (b * 4)) :: !counters;
              stores := (bin_lists_base + (pos * 4)) :: !stores
        done;
        if !counters <> [] then
          rounds :=
            Op.Atomic { addrs = Array.of_list !counters }
            :: Op.Store { addrs = Array.of_list !stores }
            :: !rounds
      done;
      Op.of_list
        (coord_load :: Op.Alu { issue_cycles = 4; active = lanes } :: !rounds)
    end
  in
  { Sim.name = "impatient-presort";
    resources =
      { Config.threads_per_block;
        registers_per_thread = 32;
        shared_bytes_per_block = 0 };
    blocks;
    warps_per_block = threads_per_block / 32;
    warp_of }

(* Naive output-driven kernel (paper Sec. II-C): one thread per grid point,
   every thread boundary-checks every sample — M * G^2 checks. Only
   tractable for thumbnail problems; exists to demonstrate in the timing
   model why binning and Slice-and-Dice were invented. *)
let naive_output p =
  let g = p.g in
  let m = Array.length p.gx in
  let threads_per_block = 64 in
  let blocks = max 1 (g * g / threads_per_block) in
  let warp_of ~block ~warp =
    (* The 32 grid points owned by this warp, row-major. *)
    let base = (block * threads_per_block) + (warp * 32) in
    Op.concat_gen (fun i ->
        if i >= m then None
        else begin
          let j = i in
          let active = ref 0 and hits = ref [] in
          for lane = 31 downto 0 do
            let idx = base + lane in
            if idx < g * g then begin
              let kx = idx mod g and ky = idx / g in
              if point_hit ~w:p.w ~g ~k:kx p.gx.(j)
                 && point_hit ~w:p.w ~g ~k:ky p.gy.(j)
              then begin
                incr active;
                hits := (grid_base + (idx * point_bytes)) :: !hits
              end
            end
          done;
          let ops =
            sample_load j :: Op.Alu { issue_cycles = 6; active = 32 }
            ::
            (if !active = 0 then []
             else
               [ Op.Alu { issue_cycles = 4; active = !active };
                 Op.Store { addrs = Array.of_list !hits } ])
          in
          Some (Op.of_list ops)
        end)
  in
  { Sim.name = "naive-output-parallel";
    resources =
      { Config.threads_per_block;
        registers_per_thread = 32;
        shared_bytes_per_block = 0 };
    blocks;
    warps_per_block = threads_per_block / 32;
    warp_of }
