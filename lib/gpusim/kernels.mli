(** GPU gridding kernels, expressed as memory/compute traces over real
    sample data.

    Both kernels derive every address and every divergence mask from the
    actual coordinates of the dataset being simulated (via the same
    {!Nufft.Coord} decomposition the CPU engines use), so cache behaviour
    and SIMD utilisation are data-driven, not assumed.

    - {!slice_and_dice} follows §VI-A: a grid of [128 x 128] blocks of
      [8 x 8] threads; each block strides over its own contiguous chunk of
      the input, broadcasts each sample to all 64 column-threads, performs
      the two-part boundary check, reads the weight LUT (shared memory) and
      issues atomic adds into the dice in global memory.
    - {!binned} models Impatient: a presort pass appending every sample to
      the bin of each tile its window touches (atomic counters), then one
      block per tile processing its bin with output-driven parallelism —
      samples re-read per duplicate bin, interpolation weights computed
      on-line (the paper notes Impatient does not use a LUT), window
      divergence masking most lanes, and a final coalesced tile write-back.

    Kernel resource declarations (registers/thread, shared memory) are set
    to plausible CUDA values that reproduce the occupancies reported in the
    paper (~80% for Slice-and-Dice, ~47% for Impatient). *)

type problem = {
  g : int;  (** oversampled grid points per side *)
  w : int;  (** interpolation window width *)
  gx : float array;  (** sample x coordinates in grid units *)
  gy : float array;
}

val problem_of_samples : w:int -> Nufft.Sample.t2 -> problem

val slice_and_dice :
  ?t:int -> ?grid_blocks:int -> ?online_weights:bool -> problem -> Sim.kernel
(** Defaults: virtual tile [t = 8], [grid_blocks = 16384] (the paper's
    128 x 128). [online_weights] replaces the shared-memory LUT with
    on-the-fly Kaiser-Bessel evaluation — the ablation of the paper's
    "reason 1" for outperforming Impatient. *)

val binned : ?bin:int -> problem -> Sim.kernel
(** The tile-processing main pass; [bin] defaults to 8. *)

val binned_presort : ?bin:int -> problem -> Sim.kernel
(** The bin-assignment pass Impatient needs before gridding; its time is
    part of Impatient's gridding time in the figures. *)

val naive_output : problem -> Sim.kernel
(** Naive output-driven parallelism: every grid point checks every sample
    ([M * G^2] checks, §II-C). Thumbnail problems only. *)
