type gpu = {
  num_sms : int;
  warp_size : int;
  max_warps_per_sm : int;
  max_threads_per_sm : int;
  max_blocks_per_sm : int;
  registers_per_sm : int;
  clock_ghz : float;
  l2 : Cachesim.Cache.config;
  l2_latency : int;
  dram : Cachesim.Dram.config;
  board_power_w : float;
  idle_power_w : float;
}

let titan_xp =
  { num_sms = 30;
    warp_size = 32;
    max_warps_per_sm = 64;
    max_threads_per_sm = 2048;
    max_blocks_per_sm = 32;
    registers_per_sm = 65536;
    clock_ghz = 1.58;
    l2 = Cachesim.Cache.titan_xp_l2;
    l2_latency = 90;
    dram = Cachesim.Dram.titan_xp;
    board_power_w = 250.0;
    idle_power_w = 55.0 }

type kernel_resources = {
  threads_per_block : int;
  registers_per_thread : int;
  shared_bytes_per_block : int;
}

let shared_per_sm = 96 * 1024

let resident_blocks gpu r =
  if r.threads_per_block <= 0 then invalid_arg "Config: threads_per_block";
  let by_regs =
    if r.registers_per_thread <= 0 then gpu.max_blocks_per_sm
    else gpu.registers_per_sm / (r.registers_per_thread * r.threads_per_block)
  in
  let by_threads = gpu.max_threads_per_sm / r.threads_per_block in
  let by_shared =
    if r.shared_bytes_per_block <= 0 then gpu.max_blocks_per_sm
    else shared_per_sm / r.shared_bytes_per_block
  in
  max 0 (min (min by_regs by_threads) (min gpu.max_blocks_per_sm by_shared))

let occupancy gpu r =
  let blocks = resident_blocks gpu r in
  let warps_per_block =
    (r.threads_per_block + gpu.warp_size - 1) / gpu.warp_size
  in
  let warps = min gpu.max_warps_per_sm (blocks * warps_per_block) in
  float_of_int warps /. float_of_int gpu.max_warps_per_sm
