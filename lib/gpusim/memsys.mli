(** Shared GPU memory system: coalescer + L2 + DRAM pipe.

    A warp-wide load/store is coalesced into line-sized transactions; each
    transaction probes the (simulated, shared) L2 and on a miss books the
    DRAM bandwidth pipe. Atomics do not coalesce: the L2's atomic units
    process one operation per distinct 4-byte word, and lanes hitting the
    same word serialise at one L2 round per conflicting lane. *)

type t

val create : Config.gpu -> t

val access :
  t -> now:int -> atomic:bool -> int array -> int * int
(** [access t ~now ~atomic addrs] performs one warp memory operation.
    Returns [(completion_cycle, transactions)]: the cycle at which the data
    for every lane is available, and the number of transactions issued
    (lines for loads/stores, words for atomics) — the operation's issue
    cost on the SM. *)

val l2_hit_rate : t -> float
val dram_bytes : t -> int
val transactions : t -> int
val reset_stats : t -> unit
