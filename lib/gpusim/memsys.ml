type t = {
  cache : Cachesim.Cache.t;
  dram : Cachesim.Dram.t;
  l2_latency : int;
  line : int;
  mutable txns : int;
}

let create (gpu : Config.gpu) =
  { cache = Cachesim.Cache.create gpu.Config.l2;
    dram = Cachesim.Dram.create gpu.Config.dram;
    l2_latency = gpu.Config.l2_latency;
    line = gpu.Config.l2.Cachesim.Cache.line_bytes;
    txns = 0 }

(* Distinct line addresses, preserving first-touch order. *)
let coalesce t addrs =
  let seen = Hashtbl.create 8 in
  let lines = ref [] in
  Array.iter
    (fun a ->
      let l = a / t.line in
      if not (Hashtbl.mem seen l) then begin
        Hashtbl.add seen l ();
        lines := l :: !lines
      end)
    addrs;
  List.rev !lines

let max_word_conflicts addrs =
  let counts = Hashtbl.create 8 in
  Array.iter
    (fun a ->
      let w = a / 4 in
      Hashtbl.replace counts w (1 + Option.value ~default:0 (Hashtbl.find_opt counts w)))
    addrs;
  Hashtbl.fold (fun _ c acc -> max c acc) counts 0

(* Distinct 4-byte word addresses, preserving order: atomics are handled
   per word by the L2's atomic units and do not coalesce like loads. *)
let distinct_words addrs =
  let seen = Hashtbl.create 8 in
  let words = ref [] in
  Array.iter
    (fun a ->
      let w = a / 4 in
      if not (Hashtbl.mem seen w) then begin
        Hashtbl.add seen w ();
        words := w :: !words
      end)
    addrs;
  List.rev !words

let access t ~now ~atomic addrs =
  if Array.length addrs = 0 then (now, 0)
  else if atomic then begin
    (* One L2 atomic operation per distinct word; the line is still
       fetched through the cache on first touch. *)
    let words = distinct_words addrs in
    let completion = ref now in
    List.iter
      (fun wrd ->
        t.txns <- t.txns + 1;
        let byte_addr = wrd * 4 in
        let done_at =
          if Cachesim.Cache.access t.cache byte_addr then now + t.l2_latency
          else Cachesim.Dram.request t.dram ~now ~bytes:t.line
        in
        if done_at > !completion then completion := done_at)
      words;
    let conflicts = max_word_conflicts addrs in
    if conflicts > 1 then
      completion := !completion + ((conflicts - 1) * t.l2_latency);
    (!completion, List.length words)
  end
  else begin
    let lines = coalesce t addrs in
    let completion = ref now in
    List.iter
      (fun l ->
        t.txns <- t.txns + 1;
        let byte_addr = l * t.line in
        let done_at =
          if Cachesim.Cache.access t.cache byte_addr then now + t.l2_latency
          else Cachesim.Dram.request t.dram ~now ~bytes:t.line
        in
        if done_at > !completion then completion := done_at)
      lines;
    (!completion, List.length lines)
  end

let l2_hit_rate t = Cachesim.Cache.hit_rate t.cache
let dram_bytes t = Cachesim.Dram.total_bytes t.dram
let transactions t = t.txns

let reset_stats t =
  Cachesim.Cache.reset_stats t.cache;
  Cachesim.Dram.reset t.dram;
  t.txns <- 0
