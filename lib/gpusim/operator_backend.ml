(* End-to-end NuFFT operators backed by the SIMT timing simulator: the
   numeric result is computed by the matching CPU engine (the GPU kernels
   are memory/compute traces, not value-producing), while Sim.run replays
   the kernel over the actual sample coordinates and the simulated cycle
   count is accumulated into the operator's stats. *)

module Op = Nufft.Operator
module Sample = Nufft.Sample
module Wt = Numerics.Weight_table

let now () = Unix.gettimeofday ()

(* Synthetic span for the cycle model, mirroring the jigsaw backend: the
   simulated kernel time lands on its own trace row (tid 901) with a
   duration derived from the cycle count and the simulated GPU's clock. *)
let model_tid = 901

let emit_cycle_span ~cycles =
  if Telemetry.enabled () && cycles > 0 then
    Telemetry.emit_span ~cat:"model" ~tid:model_tid
      ~args:[ ("cycles", string_of_int cycles) ]
      ~name:"gpusim.cycles" ~ts_ns:(Telemetry.Clock.now_ns ())
      ~dur_ns:
        (int_of_float
           (float_of_int cycles /. Config.titan_xp.Config.clock_ghz))
      ()

(* The paper's launch geometry is 128 x 128 blocks; scale down for small
   problems so a toy adjoint does not replay thousands of empty blocks,
   converging to the paper's constant once m is bench-sized. *)
let slice_blocks ~m = min 16384 (max 1 ((m + 3) / 4))

type flavour = Slice | Binned

let kernels_of flavour ~w (s : Sample.t) =
  let p = Kernels.problem_of_samples ~w s in
  match flavour with
  | Slice ->
      [ Kernels.slice_and_dice ~grid_blocks:(slice_blocks ~m:(Sample.length s)) p ]
  | Binned ->
      (* Impatient's presort pass is part of its gridding time (Fig 6). *)
      [ Kernels.binned_presort p; Kernels.binned p ]

let make flavour op_name (c : Op.ctx) : Op.op =
  let g = Op.ctx_grid c in
  let engine =
    let tile = Nufft.Coord.fallback_tile ~g ~w:c.Op.w in
    match flavour with
    | Slice -> Nufft.Gridding.Slice_and_dice tile
    | Binned -> Nufft.Gridding.Binned tile
  in
  (* Single-precision weight LUT, mirroring the GPU's f32 table; the
     context's resolved kernel so tolerance-driven (ES) contexts carry
     through. *)
  let plan =
    Nufft.Plan.make ~kernel:c.Op.kernel ~w:c.Op.w ~sigma:c.Op.sigma ~l:c.Op.l
      ~engine ~table_precision:Wt.Single ?pool:c.Op.pool ~n:c.Op.n ()
  in
  let coords = c.Op.coords in
  let st = Op.create_stats () in
  (* One timing replay per distinct coordinate set: CG re-applies the
     operator on identical coordinates every iteration. *)
  let last_sim : float array array option ref = ref None in
  let last_cycles = ref 0 in
  let simulate (s : Sample.t) =
    match !last_sim with
    | Some c when c == s.Sample.coords -> !last_cycles
    | _ ->
        let cycles =
          List.fold_left
            (fun acc k -> acc + (Sim.run k).Sim.cycles)
            0
            (kernels_of flavour ~w:c.Op.w s)
        in
        last_sim := Some s.Sample.coords;
        last_cycles := cycles;
        cycles
  in
  (module struct
    let name = op_name
    let dims = 2
    let n = c.Op.n
    let g = g

    let adjoint s =
      let sp = Op.adjoint_span name in
      let t0 = now () in
      let image, tm = Nufft.Plan.adjoint_timed ~stats:st.Op.grid plan s in
      let cycles = simulate s in
      emit_cycle_span ~cycles;
      Op.record_adjoint ~timings:tm ~cycles st ~elapsed_s:(now () -. t0);
      Telemetry.span_end sp;
      image

    let forward image =
      let sp = Op.forward_span name in
      let t0 = now () in
      let values = Nufft.Plan.forward ~stats:st.Op.grid plan ~coords image in
      Op.record_forward st ~elapsed_s:(now () -. t0);
      Telemetry.span_end sp;
      Sample.with_values coords values

    let stats () = st

    (* Hardware models grid on the lattice-coupled path only: type-1
       (adjoint) and type-2 (forward). No type-3 leg. *)
    let transforms = [ Nufft.Transform.Type1; Nufft.Transform.Type2 ]
    let type3 = None

    (* f32-LUT numerics: a CPU double plan must never stand in for this
       backend's own transforms. *)
    let plan = None
  end : Op.NUFFT_OP)

let make_slice c = make Slice "gpusim-slice" c
let make_binned c = make Binned "gpusim-binned" c

let registered = ref false

let register () =
  if not !registered then begin
    registered := true;
    (* Default [~transforms] = type-1/type-2 only: the simulated kernels
       model lattice gridding; no type-3 path. *)
    Op.register ~dims:[ 2 ]
      ~doc:
        "Slice-and-Dice GPU kernel replayed on the Titan Xp timing \
         simulator; numeric result from the CPU slice engine"
      "gpusim-slice" make_slice;
    Op.register ~dims:[ 2 ]
      ~doc:
        "Impatient-style binned GPU kernel (presort + gridding passes) on \
         the timing simulator; numeric result from the CPU binned engine"
      "gpusim-binned" make_binned
  end
