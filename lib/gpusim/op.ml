type t =
  | Alu of { issue_cycles : int; active : int }
  | Load of { addrs : int array }
  | Store of { addrs : int array }
  | Atomic of { addrs : int array }

type warp = unit -> t option

let of_list ops =
  let rest = ref ops in
  fun () ->
    match !rest with
    | [] -> None
    | op :: tl ->
        rest := tl;
        Some op

let concat_gen f =
  let idx = ref 0 in
  let current = ref (f 0) in
  let rec next () =
    match !current with
    | None -> None
    | Some warp -> (
        match warp () with
        | Some op -> Some op
        | None ->
            incr idx;
            current := f !idx;
            next ())
  in
  next

let lanes_of = function
  | Alu { active; _ } -> active
  | Load { addrs } | Store { addrs } | Atomic { addrs } -> Array.length addrs
