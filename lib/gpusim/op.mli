(** Abstract warp-level instruction stream.

    Kernels are expressed as per-warp generators of warp-wide operations;
    the simulator pulls operations on demand so traces are never
    materialised (a full-size gridding run issues tens of millions of
    operations). [active] is the number of enabled SIMD lanes — the
    divergence the paper blames for Impatient's "massive under-utilization
    of SIMD execution lanes" (§II-C). *)

type t =
  | Alu of { issue_cycles : int; active : int }
      (** arithmetic: occupies the issue port for [issue_cycles] *)
  | Load of { addrs : int array }
      (** global-memory read; one byte address per active lane *)
  | Store of { addrs : int array }
  | Atomic of { addrs : int array }
      (** read-modify-write; conflicting same-word lanes serialise *)

type warp = unit -> t option
(** Pull the warp's next operation; [None] = warp retired. *)

val of_list : t list -> warp

val concat_gen : (int -> warp option) -> warp
(** [concat_gen f] chains the warps [f 0, f 1, ...] until [f] returns
    [None] — used to build long per-sample streams lazily. *)

val lanes_of : t -> int
(** Active lanes (for Load/Store/Atomic, the address count). *)
