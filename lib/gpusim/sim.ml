type kernel = {
  name : string;
  resources : Config.kernel_resources;
  blocks : int;
  warps_per_block : int;
  warp_of : block:int -> warp:int -> Op.warp;
}

type result = {
  cycles : int;
  time_s : float;
  issue_slots : int;
  active_lane_slots : float;
  instructions : int;
  mem_transactions : int;
  l2_hit_rate : float;
  dram_bytes : int;
  occupancy : float;
  simd_utilization : float;
  issue_utilization : float;
  energy_j : float;
}

type warp_slot = {
  gen : Op.warp;
  mutable ready_at : int;
  mutable retired : bool;
}

type sm = {
  id : int;
  mutable cycle : int;
  mutable pending : int list;  (** block indices not yet resident *)
  mutable resident : warp_slot array;
  mutable rr : int;  (** round-robin scan start *)
  mutable live : int;  (** non-retired resident warps *)
  mutable done_ : bool;
}

let quantum = 4096

let run ?(gpu = Config.titan_xp) kernel =
  if kernel.blocks < 1 then invalid_arg "Sim.run: kernel needs >= 1 block";
  if kernel.warps_per_block < 1 then
    invalid_arg "Sim.run: kernel needs >= 1 warp per block";
  let mem = Memsys.create gpu in
  let resident_limit =
    let b = max 1 (Config.resident_blocks gpu kernel.resources) in
    b * kernel.warps_per_block
  in
  let issue_slots = ref 0 in
  let active_lane_slots = ref 0.0 in
  let instructions = ref 0 in
  let warp_size = float_of_int gpu.Config.warp_size in
  (* Deal blocks round-robin over SMs. *)
  let sms =
    Array.init gpu.Config.num_sms (fun id ->
        { id;
          cycle = 0;
          pending = [];
          resident = [||];
          rr = 0;
          live = 0;
          done_ = false })
  in
  for b = kernel.blocks - 1 downto 0 do
    let sm = sms.(b mod gpu.Config.num_sms) in
    sm.pending <- b :: sm.pending
  done;
  let activate sm =
    while sm.live < resident_limit && sm.pending <> [] do
      match sm.pending with
      | [] -> ()
      | b :: rest ->
          sm.pending <- rest;
          let fresh =
            Array.init kernel.warps_per_block (fun w ->
                { gen = kernel.warp_of ~block:b ~warp:w;
                  ready_at = sm.cycle;
                  retired = false })
          in
          (* Compact out retired slots as we grow. *)
          let keep =
            Array.of_list
              (List.filter (fun s -> not s.retired) (Array.to_list sm.resident))
          in
          sm.resident <- Array.append keep fresh;
          sm.live <- sm.live + kernel.warps_per_block;
          sm.rr <- 0
    done
  in
  Array.iter activate sms;
  (* One SM scheduling step: issue one op or advance time; returns false
     when the SM has fully drained. *)
  let step sm =
    if sm.live = 0 && sm.pending = [] then false
    else begin
      let n = Array.length sm.resident in
      (* Greedy-then-oldest approximation: scan from the round-robin
         pointer for a ready, unretired warp. *)
      let found = ref (-1) in
      let i = ref 0 in
      while !found < 0 && !i < n do
        let idx = (sm.rr + !i) mod n in
        let s = sm.resident.(idx) in
        if (not s.retired) && s.ready_at <= sm.cycle then found := idx;
        incr i
      done;
      if !found < 0 then begin
        (* All stalled: jump to the earliest wakeup. *)
        let next = ref max_int in
        Array.iter
          (fun s -> if (not s.retired) && s.ready_at < !next then next := s.ready_at)
          sm.resident;
        if !next = max_int then (
          activate sm;
          sm.live > 0 || sm.pending <> [])
        else begin
          sm.cycle <- !next;
          true
        end
      end
      else begin
        let s = sm.resident.(!found) in
        sm.rr <- (!found + 1) mod n;
        (match s.gen () with
        | None ->
            s.retired <- true;
            sm.live <- sm.live - 1;
            activate sm
        | Some op ->
            incr instructions;
            let cost, wake =
              match op with
              | Op.Alu { issue_cycles; active } ->
                  active_lane_slots :=
                    !active_lane_slots +. (float_of_int active /. warp_size);
                  (max 1 issue_cycles, sm.cycle + max 1 issue_cycles)
              | Op.Load { addrs } | Op.Store { addrs } ->
                  let completion, txns =
                    Memsys.access mem ~now:sm.cycle ~atomic:false addrs
                  in
                  active_lane_slots :=
                    !active_lane_slots
                    +. (float_of_int (Array.length addrs) /. warp_size);
                  (max 1 txns, completion)
              | Op.Atomic { addrs } ->
                  let completion, txns =
                    Memsys.access mem ~now:sm.cycle ~atomic:true addrs
                  in
                  active_lane_slots :=
                    !active_lane_slots
                    +. (float_of_int (Array.length addrs) /. warp_size);
                  (max 1 txns, completion)
            in
            issue_slots := !issue_slots + cost;
            sm.cycle <- sm.cycle + cost;
            s.ready_at <- max wake sm.cycle);
        true
      end
    end
  in
  (* Co-simulate SMs in bounded quanta so shared-memory-system contention
     interleaves across SMs rather than serialising per SM. *)
  let quantum_end = ref quantum in
  let unfinished = ref gpu.Config.num_sms in
  while !unfinished > 0 do
    Array.iter
      (fun sm ->
        if not sm.done_ then begin
          let continue_ = ref true in
          while !continue_ && sm.cycle < !quantum_end do
            if not (step sm) then begin
              sm.done_ <- true;
              decr unfinished;
              continue_ := false
            end
          done
        end)
      sms;
    quantum_end := !quantum_end + quantum
  done;
  let cycles = Array.fold_left (fun acc sm -> max acc sm.cycle) 0 sms in
  let time_s = float_of_int cycles /. (gpu.Config.clock_ghz *. 1e9) in
  let issue_utilization =
    if cycles = 0 then 0.0
    else
      float_of_int !issue_slots
      /. (float_of_int cycles *. float_of_int gpu.Config.num_sms)
  in
  let simd_utilization =
    if !instructions = 0 then 0.0
    else !active_lane_slots /. float_of_int !instructions
  in
  let power =
    gpu.Config.idle_power_w
    +. ((gpu.Config.board_power_w -. gpu.Config.idle_power_w)
       *. issue_utilization)
  in
  { cycles;
    time_s;
    issue_slots = !issue_slots;
    active_lane_slots = !active_lane_slots;
    instructions = !instructions;
    mem_transactions = Memsys.transactions mem;
    l2_hit_rate = Memsys.l2_hit_rate mem;
    dram_bytes = Memsys.dram_bytes mem;
    occupancy = Config.occupancy gpu kernel.resources;
    simd_utilization;
    issue_utilization;
    energy_j = power *. time_s }

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>cycles=%d (%.3f ms)@ instructions=%d issue_slots=%d@ \
     l2_hit=%.1f%% dram=%.1f MB txns=%d@ occupancy=%.0f%% simd=%.0f%% \
     issue_util=%.0f%%@ energy=%.3f mJ@]"
    r.cycles (r.time_s *. 1e3) r.instructions r.issue_slots
    (100.0 *. r.l2_hit_rate)
    (float_of_int r.dram_bytes /. 1e6)
    r.mem_transactions (100.0 *. r.occupancy) (100.0 *. r.simd_utilization)
    (100.0 *. r.issue_utilization)
    (r.energy_j *. 1e3)
