(** {!Nufft.Operator} backends replayed on the SIMT timing simulator.

    The GPU kernels of {!Kernels} are cycle-accurate memory/compute
    traces, not value producers, so each operator pairs two things per
    adjoint application:

    - the {e numeric} result, computed by the matching CPU gridding
      engine (Slice-and-Dice or binned) over a single-precision weight
      table — the same arithmetic the GPU would perform in f32;
    - the {e simulated cycle count} from {!Sim.run} over the actual
      sample coordinates, accumulated into [stats.cycles] (for
      [gpusim-binned] this includes Impatient's presort pass, as in the
      paper's figures).

    2D only (the GPU kernels are 2D). The replay is cached per
    coordinate set, so CG iterations over fixed coordinates pay for one
    simulation. Nothing is registered until {!register} is called. *)

val register : unit -> unit
(** Idempotently add [gpusim-slice] and [gpusim-binned] (dims 2) to the
    {!Nufft.Operator} registry. *)

val make_slice : Nufft.Operator.factory
val make_binned : Nufft.Operator.factory
