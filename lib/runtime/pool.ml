(* A task is one parallel_for submission: participants claim [chunk]-sized
   index ranges from [next] until it passes [t_stop]. [unfinished] counts
   participants (workers + caller) that have not yet quiesced on this task;
   it and [failure] are guarded by the pool mutex. *)
type task = {
  ranges : lo:int -> hi:int -> unit;
  t_stop : int;
  chunk : int;
  next : int Atomic.t;
  t_submit : int;
      (* monotonic ns at publish when telemetry is enabled, else 0; lets
         every participant split its involvement into queue-wait vs run
         time without extra synchronisation *)
  mutable unfinished : int;
  mutable failure : exn option;
}

(* Scheduling telemetry: one "pool.submit" span on the caller per
   parallel_for, and per participant a synthetic "pool.wait" span
   (publish -> first claim) followed by a real "pool.run" span, each on
   the participant's own domain track. *)
let c_tasks = Telemetry.Counter.make "pool.tasks"
let c_chunks = Telemetry.Counter.make "pool.chunks"
let h_wait = Telemetry.Histogram.make "pool.wait_us"
let h_run = Telemetry.Histogram.make "pool.run_us"

type t = {
  mutable workers : unit Domain.t array;
  total : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  (* All below guarded by [mutex]. A generation bump publishes [current];
     every worker responds to every generation exactly once, so the caller
     can wait for [unfinished = 0] without tracking which workers ran. *)
  mutable current : task option;
  mutable generation : int;
  mutable stopping : bool;
  mutable shut_down : bool;
}

let size pool = pool.total
let is_shut_down pool = pool.shut_down

let run_task pool task =
  let t_start = if task.t_submit > 0 then Telemetry.Clock.now_ns () else 0 in
  let chunks = ref 0 in
  let failed =
    try
      let continue = ref true in
      while !continue do
        let lo = Atomic.fetch_and_add task.next task.chunk in
        if lo >= task.t_stop then continue := false
        else begin
          incr chunks;
          task.ranges ~lo ~hi:(min task.t_stop (lo + task.chunk))
        end
      done;
      None
    with e ->
      (* Park the counter at the end so no further chunks are claimed;
         in-flight chunks on other participants run to completion. *)
      Atomic.set task.next task.t_stop;
      Some e
  in
  if task.t_submit > 0 then begin
    let t_end = Telemetry.Clock.now_ns () in
    Telemetry.emit_span ~cat:"pool" ~name:"pool.wait" ~ts_ns:task.t_submit
      ~dur_ns:(t_start - task.t_submit) ();
    Telemetry.emit_span ~cat:"pool" ~name:"pool.run" ~ts_ns:t_start
      ~dur_ns:(t_end - t_start) ();
    Telemetry.Histogram.observe h_wait
      (float_of_int (t_start - task.t_submit) /. 1e3);
    Telemetry.Histogram.observe h_run (float_of_int (t_end - t_start) /. 1e3);
    Telemetry.Counter.add c_chunks !chunks
  end;
  Mutex.lock pool.mutex;
  (match failed with
  | Some e when task.failure = None -> task.failure <- Some e
  | _ -> ());
  task.unfinished <- task.unfinished - 1;
  if task.unfinished = 0 then Condition.broadcast pool.work_done;
  Mutex.unlock pool.mutex

let worker pool =
  let gen_seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.mutex;
    while pool.generation = !gen_seen && not pool.stopping do
      Condition.wait pool.work_ready pool.mutex
    done;
    (* A pending generation is served even if a shutdown races in. *)
    if pool.generation <> !gen_seen then begin
      gen_seen := pool.generation;
      let task = Option.get pool.current in
      Mutex.unlock pool.mutex;
      run_task pool task
    end
    else begin
      running := false;
      Mutex.unlock pool.mutex
    end
  done

let create ?domains () =
  let total =
    match domains with
    | Some d when d >= 1 -> d
    | Some _ -> invalid_arg "Pool.create: domains < 1"
    | None -> Domain.recommended_domain_count ()
  in
  let pool =
    { workers = [||];
      total;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      current = None;
      generation = 0;
      stopping = false;
      shut_down = false }
  in
  pool.workers <-
    Array.init (total - 1) (fun _ -> Domain.spawn (fun () -> worker pool));
  pool

(* Several chunks per participant so an expensive index range (a dense
   trajectory region, a Bluestein-length FFT line) cannot serialise the
   tail of the submission. *)
let default_chunk total ~start ~stop = max 1 ((stop - start) / (total * 8))

(* Adaptive work coarsening. The per-chunk cost of a submission (atomic
   claim, cache traffic on the task record, the closure call) is fixed, so
   a chunk must carry enough elementary operations to amortise it; but a
   chunk must also stay small enough that the pool keeps several chunks
   per participant for dynamic load balancing. [min_chunk_work] is the
   amortisation floor in caller-declared work units (one unit ~ one
   boundary check or one multiply-accumulate). *)
let min_chunk_work = 16_384

let adaptive_chunk pool ~items ~work_per_item =
  if work_per_item < 1 then
    invalid_arg "Pool.adaptive_chunk: work_per_item < 1";
  if items <= 0 then 1
  else
    let balance = items / (pool.total * 8) in
    let amortize = (min_chunk_work + work_per_item - 1) / work_per_item in
    max 1 (min items (max balance amortize))

let serial_chunked ranges ~start ~stop ~chunk =
  let lo = ref start in
  while !lo < stop do
    let hi = min stop (!lo + chunk) in
    ranges ~lo:!lo ~hi;
    lo := hi
  done

let parallel_for_ranges ?chunk pool ~start ~stop ranges =
  if stop > start then begin
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | Some _ -> invalid_arg "Pool.parallel_for: chunk < 1"
      | None -> default_chunk pool.total ~start ~stop
    in
    Mutex.lock pool.mutex;
    if pool.shut_down || pool.stopping || Array.length pool.workers = 0 then begin
      Mutex.unlock pool.mutex;
      let sp = Telemetry.span_begin ~cat:"pool" "pool.serial" in
      serial_chunked ranges ~start ~stop ~chunk;
      Telemetry.span_end sp
    end
    else begin
      let sp = Telemetry.span_begin ~cat:"pool" "pool.submit" in
      Telemetry.Counter.incr c_tasks;
      let task =
        { ranges;
          t_stop = stop;
          chunk;
          next = Atomic.make start;
          t_submit =
            (if Telemetry.enabled () then Telemetry.Clock.now_ns () else 0);
          unfinished = Array.length pool.workers + 1;
          failure = None }
      in
      pool.current <- Some task;
      pool.generation <- pool.generation + 1;
      Condition.broadcast pool.work_ready;
      Mutex.unlock pool.mutex;
      run_task pool task;
      Mutex.lock pool.mutex;
      while task.unfinished > 0 do
        Condition.wait pool.work_done pool.mutex
      done;
      pool.current <- None;
      Mutex.unlock pool.mutex;
      Telemetry.span_end sp;
      match task.failure with None -> () | Some e -> raise e
    end
  end

let parallel_for ?chunk pool ~start ~stop body =
  parallel_for_ranges ?chunk pool ~start ~stop (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        body i
      done)

let shutdown pool =
  Mutex.lock pool.mutex;
  if pool.shut_down || pool.stopping then Mutex.unlock pool.mutex
  else begin
    pool.stopping <- true;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.mutex;
    Array.iter Domain.join pool.workers;
    Mutex.lock pool.mutex;
    pool.workers <- [||];
    pool.shut_down <- true;
    Mutex.unlock pool.mutex
  end

(* ------------------------------------------------------------------ *)
(* Process-wide default pool *)

let global_mutex = Mutex.create ()
let global_pool = ref None
let global_domains = ref None

let global () =
  Mutex.lock global_mutex;
  let p =
    match !global_pool with
    | Some p when not p.shut_down -> p
    | _ ->
        let p = create ?domains:!global_domains () in
        global_pool := Some p;
        p
  in
  Mutex.unlock global_mutex;
  p

let global_size () =
  Mutex.lock global_mutex;
  let n =
    match !global_pool with
    | Some p when not p.shut_down -> p.total
    | _ -> (
        match !global_domains with
        | Some d -> d
        | None -> Domain.recommended_domain_count ())
  in
  Mutex.unlock global_mutex;
  n

let set_global_domains d =
  if d < 1 then invalid_arg "Pool.set_global_domains: domains < 1";
  Mutex.lock global_mutex;
  global_domains := Some d;
  let stale =
    match !global_pool with
    | Some p when p.total <> d ->
        global_pool := None;
        Some p
    | _ -> None
  in
  Mutex.unlock global_mutex;
  match stale with Some p -> shutdown p | None -> ()
