(** Reusable domain pool for data-parallel index ranges.

    The Slice-and-Dice decomposition makes gridding embarrassingly
    parallel — one worker per dice column, zero shared writes — and the
    row-column FFT has the same shape (independent lines). Spawning fresh
    domains per call (as the first parallel driver did) costs hundreds of
    microseconds each time, which dominates small problems and is paid on
    every CG iteration. This pool spawns its domains once and reuses them
    across any number of {!parallel_for} submissions until {!shutdown}.

    Execution model: a pool of [size] participants — [size - 1] spawned
    domains plus the caller of {!parallel_for}, which always takes part in
    the work. A submission splits [start, stop) into fixed-size chunks;
    participants claim chunks from a shared atomic counter (dynamic load
    balancing), so an uneven trajectory cannot idle a worker for the whole
    call. The caller returns only after every participant has finished,
    which also establishes the happens-before edge making all worker
    writes visible to the caller.

    The work body must only write to locations private to its index range
    (the pool provides mechanism, not a race detector). Nested submissions
    to the same pool from inside a body are not supported and deadlock.

    Exceptions raised by a body abort further chunk claims and the first
    one (in completion order) is re-raised in the caller after all
    participants have quiesced; the pool remains usable. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns a pool of [domains] total participants
    ([domains - 1] worker domains). Default
    [Domain.recommended_domain_count ()]. Raises [Invalid_argument] if
    [domains < 1]. A pool of 1 spawns nothing and runs submissions
    entirely in the caller. *)

val size : t -> int
(** Total participant count (spawned workers + the calling domain). *)

val parallel_for :
  ?chunk:int -> t -> start:int -> stop:int -> (int -> unit) -> unit
(** [parallel_for pool ~start ~stop body] runs [body i] for every
    [i] in [start, stop), distributed over the pool. [chunk] is the
    number of consecutive indices claimed at a time (default: a value
    giving each participant several chunks for load balancing). Raises
    [Invalid_argument] if [chunk < 1]. Empty ranges return immediately.
    After {!shutdown}, degrades to a serial loop in the caller. *)

val parallel_for_ranges :
  ?chunk:int -> t -> start:int -> stop:int -> (lo:int -> hi:int -> unit) -> unit
(** Like {!parallel_for} but hands each claimed chunk [lo, hi) to the body
    whole, so per-chunk state (scratch buffers, private statistics
    counters) can be allocated once per chunk instead of once per index. *)

val adaptive_chunk : t -> items:int -> work_per_item:int -> int
(** [adaptive_chunk pool ~items ~work_per_item] — the coarsened chunk size
    for a submission of [items] indices, each costing [work_per_item]
    elementary operations (one boundary check, one multiply-accumulate):
    exactly [max 1 (min items (max (items / (8 * size)) (ceil (16384 /
    work_per_item))))]. The first term keeps several chunks per
    participant for load balancing; the second guarantees every chunk
    carries at least ~16k operations so the per-chunk scheduling overhead
    (atomic claim + closure call) is amortised — fine-grained work on a
    large pool coarsens into fewer, bigger chunks rather than drowning in
    dispatch. When [items] is smaller than the amortisation floor the
    whole range becomes one chunk (a degenerate, effectively serial
    submission). Raises [Invalid_argument] if [work_per_item < 1]. *)

val shutdown : t -> unit
(** Joins all worker domains. Idempotent; safe to call on a pool that is
    in use by no one. Subsequent submissions run serially in the caller. *)

val is_shut_down : t -> bool

val global : unit -> t
(** A lazily-created process-wide pool (sized by {!set_global_domains} or
    [Domain.recommended_domain_count ()]), shared by callers that do not
    manage their own pool — e.g. {!Nufft.Gridding.grid_2d} dispatching the
    pool-parallel engine without an explicit pool. Never shut down
    automatically; its sleeping workers die with the process. *)

val global_size : unit -> int
(** The size {!global} has — or would have, were it created now — without
    forcing the pool into existence: the live pool's size, else the
    {!set_global_domains} setting, else [Domain.recommended_domain_count].
    Lets engine dispatch decide whether pool-parallel execution is worth
    it before paying for domain spawns. *)

val set_global_domains : int -> unit
(** Fix the size used for the global pool (the CLI's [--domains]). If the
    global pool already exists at a different size it is shut down and
    recreated on next use. Raises [Invalid_argument] if [domains < 1]. *)
