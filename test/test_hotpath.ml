(* Hot-path guarantees added with the allocation-free engines and compiled
   sample plans: replay is bit-identical to the live engines, the no-stats
   gridding paths allocate O(1) minor words per call (not per sample), the
   int-encoded column check agrees with the option-returning one, and a CG
   solve through an operator pays the slice-and-dice decomposition exactly
   once. *)

module Cvec = Numerics.Cvec
module Wt = Numerics.Weight_table
module Coord = Nufft.Coord
module Sample = Nufft.Sample
module Gridding = Nufft.Gridding
module Plan = Nufft.Plan
module Op = Nufft.Operator

let w = 6
let l = 512

let table () =
  Wt.make
    ~kernel:(Numerics.Window.default_kaiser_bessel ~width:w ~sigma:2.0)
    ~width:w ~l ()

let check_bitwise name a b =
  Alcotest.(check int)
    (name ^ " length") (Cvec.length a) (Cvec.length b);
  for k = 0 to Cvec.length a - 1 do
    if
      Cvec.unsafe_get_re a k <> Cvec.unsafe_get_re b k
      || Cvec.unsafe_get_im a k <> Cvec.unsafe_get_im b k
    then
      Alcotest.failf "%s: differs at %d: (%g,%g) vs (%g,%g)" name k
        (Cvec.unsafe_get_re a k) (Cvec.unsafe_get_im a k)
        (Cvec.unsafe_get_re b k) (Cvec.unsafe_get_im b k)
  done

(* --- compiled replay is bit-identical to the live pipeline ------------- *)

(* The compiled decomposition is engine-independent (one canonical window
   enumeration), so the replayed adjoint must be bitwise the serial-engine
   adjoint whatever engine the plan was created with. *)
let test_replay_bitwise_2d () =
  let n = 16 in
  let g = 2 * n in
  let m = 300 in
  let s = Sample.random_2d ~seed:31 ~g m in
  let reference = Plan.adjoint (Plan.make ~n ()) s in
  List.iter
    (fun (name, engine) ->
      let plan = Plan.make ~engine ~n () in
      check_bitwise
        (Printf.sprintf "2d replay (%s plan) = serial adjoint" name)
        reference
        (Plan.adjoint_compiled plan s))
    [ ("serial", Gridding.Serial);
      ("output-parallel", Gridding.Output_parallel);
      ("binned", Gridding.Binned 8);
      ("slice", Gridding.Slice_and_dice 8);
      ("slice-parallel", Gridding.Slice_parallel 8) ]

let test_replay_bitwise_3d () =
  let n = 8 in
  let g = 2 * n in
  let m = 150 in
  let s = Sample.random_3d ~seed:77 ~g m in
  let plan = Plan.make ~n () in
  check_bitwise "3d replay = adjoint" (Plan.adjoint plan s)
    (Plan.adjoint_compiled plan s)

let test_replay_bitwise_pool () =
  let n = 16 in
  let g = 2 * n in
  let m = 250 in
  let s = Sample.random_2d ~seed:5 ~g m in
  let serial = Plan.adjoint_compiled (Plan.make ~n ()) s in
  let pool = Runtime.Pool.create ~domains:3 () in
  Fun.protect
    ~finally:(fun () -> Runtime.Pool.shutdown pool)
    (fun () ->
      let plan = Plan.make ~engine:(Gridding.Slice_parallel 8) ~pool ~n () in
      check_bitwise "pooled replay = serial replay" serial
        (Plan.adjoint_compiled plan s))

let test_replay_forward_bitwise () =
  let n = 16 in
  let g = 2 * n in
  let m = 300 in
  let s = Sample.random_2d ~seed:13 ~g m in
  let plan = Plan.make ~engine:(Gridding.Slice_and_dice 8) ~n () in
  let image =
    Cvec.init (n * n) (fun k ->
        Numerics.Complexd.make (sin (float_of_int k)) (cos (float_of_int k)))
  in
  check_bitwise "forward replay = forward"
    (Plan.forward plan ~coords:s image)
    (Plan.forward_compiled plan ~coords:s image)

(* --- allocation ceilings ---------------------------------------------- *)

(* O(1) words per call: the bound must hold however large [m] is. A boxed
   hot loop costs O(m * w^d) words (hundreds of thousands here); the
   ceiling only has to absorb the output vector's header and the
   measurement's own boxing. *)
let alloc_ceiling = 512.0

let minor_words_of f =
  ignore (f ());
  (* warm caches (FFT twiddles, ...) *)
  let w0 = Gc.minor_words () in
  ignore (f ());
  Gc.minor_words () -. w0

let test_alloc_grid_1d () =
  let g = 512 and m = 20000 in
  let tbl = table () in
  let coords = Array.init m (fun j -> float_of_int (j mod g) +. 0.37) in
  let values = Cvec.init m (fun _ -> Numerics.Complexd.make 1.0 0.5) in
  let words =
    minor_words_of (fun () ->
        Nufft.Gridding_serial.grid_1d ~table:tbl ~g ~coords values)
  in
  Alcotest.(check bool)
    (Printf.sprintf "grid_1d minor words per call (%g) <= %g" words
       alloc_ceiling)
    true (words <= alloc_ceiling)

let test_alloc_grid_2d () =
  let g = 128 and m = 10000 in
  let tbl = table () in
  let s = Sample.random_2d ~seed:3 ~g m in
  let gx = Sample.gx s and gy = Sample.gy s in
  let values = s.Sample.values in
  List.iter
    (fun (name, f) ->
      let words = minor_words_of f in
      Alcotest.(check bool)
        (Printf.sprintf "%s minor words per call (%g) <= %g" name words
           alloc_ceiling)
        true (words <= alloc_ceiling))
    [ ( "serial grid_2d",
        fun () ->
          Nufft.Gridding_serial.grid_2d ~table:tbl ~g ~gx ~gy values );
      ( "slice grid_2d_fast",
        fun () ->
          Nufft.Gridding_slice.grid_2d_fast ~table:tbl ~g ~t:8 ~gx ~gy values
      );
      ( "slice grid_2d",
        fun () ->
          Nufft.Gridding_slice.grid_2d ~table:tbl ~g ~t:8 ~gx ~gy values ) ]

let test_alloc_fft () =
  let n = 1024 in
  let v =
    Cvec.init n (fun k -> Numerics.Complexd.make (float_of_int k) 0.25)
  in
  let words = minor_words_of (fun () -> Fft.Fft1d.transform Fft.Dft.Forward v) in
  Alcotest.(check bool)
    (Printf.sprintf "fft n=%d minor words per call (%g) <= %g" n words
       alloc_ceiling)
    true (words <= alloc_ceiling)

(* --- packed column check ---------------------------------------------- *)

let prop_packed_column_check =
  QCheck.Test.make ~name:"column_check_packed agrees with column_check"
    ~count:500
    QCheck.(
      quad (int_range 0 7) (int_range 0 63) small_int (float_bound_exclusive 1.0))
    (fun (column, ui, uf_scale, uf) ->
      let g = 64 and t = 8 in
      let u = float_of_int (ui mod g) +. (uf *. float_of_int (1 + (uf_scale mod 1))) in
      let packed = Coord.column_check_packed ~w ~t ~g ~l ~column u in
      match Coord.column_check ~w ~t ~g ~column u with
      | None -> packed = Coord.packed_miss
      | Some hit ->
          packed >= 0
          && Coord.packed_tile packed = hit.Coord.tile
          && Coord.packed_addr packed
             = int_of_float
                 (Float.round (Float.abs hit.Coord.dist *. float_of_int l)))

(* --- decomposition paid exactly once across a CG solve ----------------- *)

let test_cg_decomposition_once () =
  let n = 32 in
  let g = 2 * n in
  let m = 1200 in
  let t = 8 in
  let plan = Plan.make ~engine:(Gridding.Slice_and_dice t) ~n () in
  let coords = Sample.random_2d ~seed:11 ~g m in
  let op = Op.of_plan plan ~coords in
  let image =
    Cvec.init (n * n) (fun k ->
        Numerics.Complexd.of_float (exp (-.float_of_int (k mod n) /. 8.0)))
  in
  let data = Op.apply_forward op image in
  let iterations = 6 in
  let b = Imaging.Cg.normal_equations_rhs_op op data in
  let result =
    Imaging.Cg.solve ~max_iterations:iterations ~tolerance:0.0
      ~apply:(Imaging.Cg.normal_map op) b
  in
  ignore result.Imaging.Cg.solution;
  let st = Op.stats_of op in
  (* The solve really did apply the operator many times... *)
  Alcotest.(check bool) "several adjoints" true (st.Op.adjoints >= iterations);
  Alcotest.(check bool) "several forwards" true (st.Op.forwards >= iterations);
  (* ... yet the slice-and-dice decomposition was charged exactly once:
     the select stage's t^2 checks per sample and the m(w + w^2) window
     evaluations of a single compilation, not once per application. *)
  Alcotest.(check int) "boundary checks = one decomposition" (t * t * m)
    st.Op.grid.Nufft.Gridding_stats.boundary_checks;
  Alcotest.(check int) "window evals = one compilation"
    ((m * w) + (m * w * w))
    st.Op.grid.Nufft.Gridding_stats.window_evals;
  (* Replay is still charged per application. *)
  Alcotest.(check bool) "replay charged per application" true
    (st.Op.grid.Nufft.Gridding_stats.samples_processed
    >= (st.Op.adjoints + st.Op.forwards) * m)

let () =
  Alcotest.run "hotpath"
    [ ( "replay-bitwise",
        [ Alcotest.test_case "2d, all engines" `Quick test_replay_bitwise_2d;
          Alcotest.test_case "3d" `Quick test_replay_bitwise_3d;
          Alcotest.test_case "under a pool" `Quick test_replay_bitwise_pool;
          Alcotest.test_case "forward" `Quick test_replay_forward_bitwise ] );
      ( "allocation",
        [ Alcotest.test_case "grid_1d O(1) words per call" `Quick
            test_alloc_grid_1d;
          Alcotest.test_case "grid_2d O(1) words per call" `Quick
            test_alloc_grid_2d;
          Alcotest.test_case "fft O(1) words per call" `Quick test_alloc_fft ]
      );
      ( "packed-check",
        [ Qutil.to_alcotest prop_packed_column_check ] );
      ( "cg-amortization",
        [ Alcotest.test_case "decomposition once per plan" `Quick
            test_cg_decomposition_once ] ) ]
