(* Validation of the core library: coordinate decomposition, the four
   gridding engines, and the NuFFT pipelines against the exact NuDFT. *)

module C = Numerics.Complexd
module Cvec = Numerics.Cvec
module Wt = Numerics.Weight_table
module Window = Numerics.Window
module Coord = Nufft.Coord
module Sample = Nufft.Sample
module Nudft = Nufft.Nudft
module Gridding = Nufft.Gridding
module Stats = Nufft.Gridding_stats

let check_close ?(eps = 1e-12) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.17g, got %.17g" msg expected actual

let check_vec ?(eps = 1e-9) msg expected actual =
  let d = Cvec.max_abs_diff expected actual in
  if d > eps then Alcotest.failf "%s: max diff %g > %g" msg d eps

let table ?(precision = Wt.Double) ?(w = 6) ?(l = 512) ?(sigma = 2.0) () =
  Wt.make ~precision ~kernel:(Window.default_kaiser_bessel ~width:w ~sigma)
    ~width:w ~l ()

(* ------------------------------------------------------------------ *)
(* Coord *)

let test_window_start () =
  (* w=6, u=10.3: kmax = floor(13.3) = 13, start = 8. *)
  Alcotest.(check int) "u=10.3" 8 (Coord.window_start ~w:6 10.3);
  (* w=6, u=0.0: kmax = 3, start = -2. *)
  Alcotest.(check int) "u=0" (-2) (Coord.window_start ~w:6 0.0);
  (* w=4, u=5.5: kmax = floor(7.5) = 7, start = 4. *)
  Alcotest.(check int) "u=5.5 w=4" 4 (Coord.window_start ~w:4 5.5)

let test_wrap () =
  Alcotest.(check int) "in range" 5 (Coord.wrap ~g:16 5);
  Alcotest.(check int) "negative" 14 (Coord.wrap ~g:16 (-2));
  Alcotest.(check int) "over" 1 (Coord.wrap ~g:16 17);
  Alcotest.(check int) "far negative" 15 (Coord.wrap ~g:16 (-17))

let test_iter_window () =
  let w = 6 and g = 16 in
  let pts = ref [] in
  Coord.iter_window ~w ~g 10.3 (fun ~k ~dist -> pts := (k, dist) :: !pts);
  let pts = List.rev !pts in
  Alcotest.(check int) "count" w (List.length pts);
  List.iter
    (fun (k, dist) ->
      Alcotest.(check bool) "k in range" true (k >= 0 && k < g);
      Alcotest.(check bool)
        (Printf.sprintf "dist %g in [-w/2, w/2)" dist)
        true
        (dist >= -3.0 && dist < 3.0))
    pts;
  (* Unwrapped points are start..start+5 = 8..13 with dists k - 10.3. *)
  let ks = List.map fst pts in
  Alcotest.(check (list int)) "points" [ 8; 9; 10; 11; 12; 13 ] ks;
  check_close "first dist" (-2.3) (List.assoc 8 pts)

let test_iter_window_wraps () =
  let w = 6 and g = 16 in
  let pts = ref [] in
  Coord.iter_window ~w ~g 0.5 (fun ~k ~dist:_ -> pts := k :: !pts);
  (* start = floor(3.5) - 5 = -2: points -2..3 wrap to 14,15,0,1,2,3. *)
  Alcotest.(check (list int)) "wrapped" [ 14; 15; 0; 1; 2; 3 ]
    (List.rev !pts)

let test_decompose () =
  let q, r = Coord.decompose ~t:8 19.25 in
  Alcotest.(check int) "tile" 2 q;
  check_close "relative" 3.25 r;
  Alcotest.check_raises "negative"
    (Invalid_argument "Coord.decompose: negative coordinate") (fun () ->
      ignore (Coord.decompose ~t:8 (-0.1)))

let test_check_tiling () =
  Coord.check_tiling ~t:8 ~g:64 ~w:6;
  Alcotest.check_raises "w > t"
    (Invalid_argument "Coord: window width must not exceed tile size")
    (fun () -> Coord.check_tiling ~t:4 ~g:64 ~w:6);
  Alcotest.check_raises "t !| g"
    (Invalid_argument "Coord: tile size must divide grid size") (fun () ->
      Coord.check_tiling ~t:8 ~g:60 ~w:6)

(* Oracle: a column is hit iff some window point k has k mod t = column;
   compare every field of the decomposition-based check against a direct
   scan of the window. *)
let column_check_oracle ~w ~t ~g ~column u =
  let result = ref None in
  Coord.iter_window ~w ~g:(max g (10 * t)) u (fun ~k:_ ~dist:_ -> ignore ());
  (* scan unwrapped *)
  let start = Coord.window_start ~w u in
  for j = 0 to w - 1 do
    let k = start + j in
    let c = Coord.wrap ~g:t k in
    if c = column then begin
      let n_tiles = g / t in
      let tile_unwrapped =
        if k >= 0 then k / t else ((k + 1) / t) - 1
      in
      result :=
        Some
          ( Coord.wrap ~g k,
            Coord.wrap ~g:n_tiles tile_unwrapped,
            float_of_int k -. u )
    end
  done;
  !result

let prop_column_check =
  QCheck.Test.make ~name:"column_check agrees with window-scan oracle"
    ~count:2000
    QCheck.(
      quad (int_range 1 8) (* w *)
        (int_range 0 7) (* column *)
        (int_range 1 8) (* n_tiles *)
        (float_range 0.0 0.9999))
    (fun (w, column, n_tiles, frac) ->
      let t = 8 in
      let g = t * n_tiles in
      let u = frac *. float_of_int g in
      let got = Coord.column_check ~w ~t ~g ~column u in
      let expected = column_check_oracle ~w ~t ~g ~column u in
      match (got, expected) with
      | None, None -> true
      | Some h, Some (k, tile, dist) ->
          h.Coord.k_wrapped = k && h.Coord.tile = tile
          && Float.abs (h.Coord.dist -. dist) < 1e-9
      | _ -> false)

let test_affected_columns () =
  let cols = Coord.affected_columns ~w:6 ~t:8 10.3 in
  Alcotest.(check int) "count" 6 (List.length cols);
  Alcotest.(check int) "distinct" 6
    (List.length (List.sort_uniq compare cols));
  (* points 8..13 -> columns 0..5 *)
  Alcotest.(check (list int)) "values" [ 0; 1; 2; 3; 4; 5 ] cols

let test_column_check_wrap_flag () =
  (* Sample at u = 16.2 in tile 2 (t=8): window covers 14..19, so point 14
     (column 6) lies in tile 1 — a wrap into the previous tile. *)
  let u = 16.2 and t = 8 and g = 32 and w = 6 in
  (match Coord.column_check ~w ~t ~g ~column:6 u with
  | Some h ->
      Alcotest.(check int) "k" 14 h.Coord.k_wrapped;
      Alcotest.(check int) "tile" 1 h.Coord.tile;
      Alcotest.(check bool) "wrapped" true h.Coord.wrapped_tile
  | None -> Alcotest.fail "expected hit in column 6");
  match Coord.column_check ~w ~t ~g ~column:0 u with
  | Some h ->
      Alcotest.(check int) "k" 16 h.Coord.k_wrapped;
      Alcotest.(check int) "tile" 2 h.Coord.tile;
      Alcotest.(check bool) "not wrapped" false h.Coord.wrapped_tile
  | None -> Alcotest.fail "expected hit in column 0"

(* ------------------------------------------------------------------ *)
(* Engine agreement *)

(* Every scheme, including the pool-parallel one (which runs on the global
   domain pool when dispatched without an explicit pool). *)
let engines g = Gridding.all_schemes ~g ~w:6

let test_engines_agree_1d () =
  let g = 64 and m = 150 in
  let tbl = table () in
  let s = Sample.random_2d ~seed:5 ~g m in
  let reference =
    Gridding.grid_1d Gridding.Serial ~table:tbl ~g ~coords:(Sample.gx s)
      s.Sample.values
  in
  List.iter
    (fun e ->
      let got = Gridding.grid_1d e ~table:tbl ~g ~coords:(Sample.gx s)
          s.Sample.values in
      check_vec ~eps:1e-11
        (Printf.sprintf "1d %s" (Gridding.engine_name e))
        reference got)
    (engines g)

let test_engines_agree_2d () =
  let g = 32 and m = 200 in
  let tbl = table () in
  let s = Sample.random_2d ~seed:9 ~g m in
  let reference =
    Gridding.grid_2d Gridding.Serial ~table:tbl ~g ~gx:(Sample.gx s)
      ~gy:(Sample.gy s) s.Sample.values
  in
  List.iter
    (fun e ->
      let got =
        Gridding.grid_2d e ~table:tbl ~g ~gx:(Sample.gx s) ~gy:(Sample.gy s)
          s.Sample.values
      in
      check_vec ~eps:1e-11
        (Printf.sprintf "2d %s" (Gridding.engine_name e))
        reference got)
    (engines g)

let test_slice_fast_bitwise_equal_serial () =
  let g = 64 and m = 300 in
  let tbl = table () in
  let s = Sample.random_2d ~seed:123 ~g m in
  let serial =
    Gridding.grid_2d Gridding.Serial ~table:tbl ~g ~gx:(Sample.gx s)
      ~gy:(Sample.gy s) s.Sample.values
  in
  let fast =
    Nufft.Gridding_slice.grid_2d_fast ~table:tbl ~g ~t:8 ~gx:(Sample.gx s)
      ~gy:(Sample.gy s) s.Sample.values
  in
  check_vec ~eps:0.0 "bitwise equal" serial fast

let test_slice_faithful_agrees () =
  let g = 32 and m = 100 in
  let tbl = table () in
  let s = Sample.random_2d ~seed:77 ~g m in
  let serial =
    Gridding.grid_2d Gridding.Serial ~table:tbl ~g ~gx:(Sample.gx s)
      ~gy:(Sample.gy s) s.Sample.values
  in
  let faithful =
    Nufft.Gridding_slice.grid_2d ~table:tbl ~g ~t:8 ~gx:(Sample.gx s)
      ~gy:(Sample.gy s) s.Sample.values
  in
  check_vec ~eps:1e-11 "column-outer schedule" serial faithful

let test_slice_parallel_agrees () =
  let g = 32 and m = 150 in
  let tbl = table () in
  let s = Sample.random_2d ~seed:88 ~g m in
  let faithful =
    Nufft.Gridding_slice.grid_2d ~table:tbl ~g ~t:8 ~gx:(Sample.gx s)
      ~gy:(Sample.gy s) s.Sample.values
  in
  List.iter
    (fun domains ->
      let par =
        Nufft.Gridding_slice.grid_2d_parallel ~domains ~table:tbl ~g ~t:8
          ~gx:(Sample.gx s) ~gy:(Sample.gy s) s.Sample.values
      in
      (* Same per-column accumulation order as the column-outer schedule:
         bitwise identical regardless of domain count. *)
      check_vec ~eps:0.0
        (Printf.sprintf "parallel(%d domains) = column-outer" domains)
        faithful par)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  Alcotest.check_raises "domains < 1"
    (Invalid_argument "Gridding_slice.grid_2d_parallel: domains < 1")
    (fun () ->
      ignore
        (Nufft.Gridding_slice.grid_2d_parallel ~domains:0 ~table:tbl ~g ~t:8
           ~gx:(Sample.gx s) ~gy:(Sample.gy s) s.Sample.values))

let test_slice_parallel_pool_reuse () =
  (* One long-lived pool serving several submissions gives the same bits
     as throwaway per-call pools, and an explicit pool overrides the
     throwaway-[domains] path entirely. *)
  let g = 32 and m = 150 in
  let tbl = table () in
  let pool = Runtime.Pool.create ~domains:3 () in
  Fun.protect
    ~finally:(fun () -> Runtime.Pool.shutdown pool)
    (fun () ->
      List.iter
        (fun seed ->
          let s = Sample.random_2d ~seed ~g m in
          let faithful =
            Nufft.Gridding_slice.grid_2d ~table:tbl ~g ~t:8 ~gx:(Sample.gx s)
              ~gy:(Sample.gy s) s.Sample.values
          in
          let pooled =
            Nufft.Gridding_slice.grid_2d_parallel ~pool ~table:tbl ~g ~t:8
              ~gx:(Sample.gx s) ~gy:(Sample.gy s) s.Sample.values
          in
          check_vec ~eps:0.0
            (Printf.sprintf "pooled seed %d" seed)
            faithful pooled)
        [ 10; 11; 12; 13 ])

let test_mass_conservation () =
  (* Sum over the grid of each sample's contributions = value * (sum of
     window weights in x) * (sum in y); check total grid mass against a
     direct evaluation. *)
  let g = 32 and m = 50 in
  let tbl = table () in
  let s = Sample.random_2d ~seed:31 ~g m in
  let grid =
    Gridding.grid_2d Gridding.Serial ~table:tbl ~g ~gx:(Sample.gx s)
      ~gy:(Sample.gy s) s.Sample.values
  in
  let total = Cvec.fold (fun acc c -> C.add acc c) C.zero grid in
  let expected = ref C.zero in
  for j = 0 to m - 1 do
    let sum1d u =
      let acc = ref 0.0 in
      Coord.iter_window ~w:6 ~g u (fun ~k:_ ~dist ->
          acc := !acc +. Wt.lookup tbl dist);
      !acc
    in
    expected :=
      C.add !expected
        (C.scale
           (sum1d (Sample.gx s).(j) *. sum1d (Sample.gy s).(j))
           (Cvec.get s.Sample.values j))
  done;
  check_close ~eps:1e-9 "mass re" (!expected).C.re total.C.re;
  check_close ~eps:1e-9 "mass im" (!expected).C.im total.C.im

let prop_engines_agree =
  QCheck.Test.make ~name:"all engines produce the serial grid" ~count:25
    QCheck.(triple (int_range 0 1000) (int_range 10 120) (int_range 2 6))
    (fun (seed, m, w_half) ->
      let w = 2 * w_half in
      let g = 32 in
      let tbl = table ~w () in
      let s = Sample.random_2d ~seed ~g m in
      let reference =
        Gridding.grid_2d Gridding.Serial ~table:tbl ~g ~gx:(Sample.gx s)
          ~gy:(Sample.gy s) s.Sample.values
      in
      List.for_all
        (fun e ->
          let got =
            Gridding.grid_2d e ~table:tbl ~g ~gx:(Sample.gx s) ~gy:(Sample.gy s)
              s.Sample.values
          in
          Cvec.max_abs_diff reference got < 1e-10)
        (Gridding.all_schemes ~g ~w))

let test_empty_sample_set () =
  (* m = 0 must be handled by every engine (empty acquisition). *)
  let g = 32 in
  let tbl = table () in
  let empty = [||] and no_values = Cvec.create 0 in
  List.iter
    (fun e ->
      let grid =
        Gridding.grid_2d e ~table:tbl ~g ~gx:empty ~gy:empty no_values
      in
      Alcotest.(check (float 0.0))
        (Printf.sprintf "%s zero grid" (Gridding.engine_name e))
        0.0 (Cvec.norm2 grid))
    (Gridding.default_engines ~g ~w:6);
  let back = Gridding.interp_2d ~table:tbl ~g ~gx:empty ~gy:empty
      (Cvec.create (g * g)) in
  Alcotest.(check int) "empty interp" 0 (Cvec.length back)

let test_window_equals_tile () =
  (* w = t = 8: every column is hit by every sample exactly once. *)
  let g = 32 and t = 8 and w = 8 in
  let tbl = table ~w () in
  let s = Sample.random_2d ~seed:14 ~g 60 in
  let serial =
    Gridding.grid_2d Gridding.Serial ~table:tbl ~g ~gx:(Sample.gx s)
      ~gy:(Sample.gy s) s.Sample.values
  in
  let slice =
    Nufft.Gridding_slice.grid_2d ~table:tbl ~g ~t ~gx:(Sample.gx s)
      ~gy:(Sample.gy s) s.Sample.values
  in
  check_vec ~eps:1e-11 "w = t" serial slice;
  (* Every column check must hit. *)
  for column = 0 to t - 1 do
    for j = 0 to 9 do
      match Coord.column_check ~w ~t ~g ~column (Sample.gx s).(j) with
      | Some _ -> ()
      | None -> Alcotest.failf "column %d missed sample %d with w = t" column j
    done
  done

let test_w1_minimal_window () =
  (* w = 1: nearest-neighbour gridding; each sample touches one point.
     (Kaiser-Bessel's Beatty beta is undefined this narrow, so use a
     Gaussian window.) *)
  let g = 16 in
  let tbl =
    Wt.make ~kernel:(Window.default_gaussian ~width:1) ~width:1 ~l:64 ()
  in
  let s = Sample.random_2d ~seed:77 ~g 25 in
  let st = Stats.create () in
  let grid =
    Gridding.grid_2d ~stats:st Gridding.Serial ~table:tbl ~g ~gx:(Sample.gx s)
      ~gy:(Sample.gy s) s.Sample.values
  in
  Alcotest.(check int) "one accumulate per sample" 25 st.Stats.grid_accumulates;
  Alcotest.(check bool) "mass placed" true (Cvec.norm2 grid > 0.0)

(* ------------------------------------------------------------------ *)
(* Stats accounting *)

let test_stats_serial () =
  let g = 32 and m = 40 and w = 6 in
  let tbl = table ~w () in
  let s = Sample.random_2d ~seed:1 ~g m in
  let st = Stats.create () in
  ignore
    (Gridding.grid_2d ~stats:st Gridding.Serial ~table:tbl ~g ~gx:(Sample.gx s)
       ~gy:(Sample.gy s) s.Sample.values);
  Alcotest.(check int) "samples" m st.Stats.samples_processed;
  Alcotest.(check int) "no checks" 0 st.Stats.boundary_checks;
  Alcotest.(check int) "accumulates" (m * w * w) st.Stats.grid_accumulates

let test_stats_output_parallel () =
  let g = 16 and m = 10 and w = 4 in
  let tbl = table ~w () in
  let s = Sample.random_2d ~seed:2 ~g m in
  let st = Stats.create () in
  ignore
    (Gridding.grid_2d ~stats:st Gridding.Output_parallel ~table:tbl ~g
       ~gx:(Sample.gx s) ~gy:(Sample.gy s) s.Sample.values);
  (* One check per (grid point, sample) pair at least (x dim); hits check y
     too but the dominant term M * G^2 must be present. *)
  Alcotest.(check bool) "M*G^2 checks" true
    (st.Stats.boundary_checks >= m * g * g);
  Alcotest.(check int) "accumulates" (m * w * w) st.Stats.grid_accumulates

let test_stats_slice () =
  let g = 32 and m = 25 and w = 6 and t = 8 in
  let tbl = table ~w () in
  let s = Sample.random_2d ~seed:3 ~g m in
  let st = Stats.create () in
  ignore
    (Nufft.Gridding_slice.grid_2d ~stats:st ~table:tbl ~g ~t ~gx:(Sample.gx s)
       ~gy:(Sample.gy s) s.Sample.values);
  Alcotest.(check int) "M*T^2 checks" (m * t * t) st.Stats.boundary_checks;
  Alcotest.(check int) "accumulates" (m * w * w) st.Stats.grid_accumulates;
  Alcotest.(check int) "no presort" 0 st.Stats.presort_ops

let test_stats_slice_parallel () =
  (* The pool-parallel driver accounts exactly like the faithful
     column-outer schedule — M*T^2 boundary checks, M*w^2 accumulations —
     whatever the pool size (per-chunk counters merged at the end). *)
  let g = 32 and m = 25 and w = 6 and t = 8 in
  let tbl = table ~w () in
  let s = Sample.random_2d ~seed:3 ~g m in
  let serial_st = Stats.create () in
  ignore
    (Nufft.Gridding_slice.grid_2d ~stats:serial_st ~table:tbl ~g ~t
       ~gx:(Sample.gx s) ~gy:(Sample.gy s) s.Sample.values);
  List.iter
    (fun domains ->
      let st = Stats.create () in
      ignore
        (Nufft.Gridding_slice.grid_2d_parallel ~stats:st ~domains ~table:tbl
           ~g ~t ~gx:(Sample.gx s) ~gy:(Sample.gy s) s.Sample.values);
      Alcotest.(check int) "M*T^2 checks" (m * t * t) st.Stats.boundary_checks;
      Alcotest.(check int) "samples" m st.Stats.samples_processed;
      Alcotest.(check int) "checks = column-outer" serial_st.Stats.boundary_checks
        st.Stats.boundary_checks;
      Alcotest.(check int) "lookups = column-outer" serial_st.Stats.window_evals
        st.Stats.window_evals;
      Alcotest.(check int) "accums = column-outer"
        serial_st.Stats.grid_accumulates st.Stats.grid_accumulates;
      Alcotest.(check int) "no presort" 0 st.Stats.presort_ops)
    [ 1; 3 ]

let test_stats_binned_duplicates () =
  let g = 32 and m = 60 and w = 6 and bin = 8 in
  let tbl = table ~w () in
  let s = Sample.random_2d ~seed:4 ~g m in
  let st = Stats.create () in
  ignore
    (Gridding.grid_2d ~stats:st (Gridding.Binned bin) ~table:tbl ~g
       ~gx:(Sample.gx s) ~gy:(Sample.gy s) s.Sample.values);
  Alcotest.(check bool) "presort happened" true (st.Stats.presort_ops >= m);
  Alcotest.(check bool) "duplicate visits" true
    (st.Stats.samples_processed > m);
  Alcotest.(check int) "presort = visits" st.Stats.samples_processed
    st.Stats.presort_ops;
  (* Every engine still performs exactly m*w^2 accumulations. *)
  Alcotest.(check int) "accumulates" (m * w * w) st.Stats.grid_accumulates

let test_duplication_factor () =
  let g = 64 and w = 6 and bin = 8 in
  (* With w=6 and bin=8 a 1D window spans >= 1 tile and <= 2. *)
  let coords = Array.init 200 (fun i -> float_of_int (i mod 640) /. 10.0) in
  let f = Nufft.Gridding_binned.duplication_factor ~w ~bin ~g ~coords in
  Alcotest.(check bool) "between 1 and 2" true (f > 1.0 && f < 2.0)

(* ------------------------------------------------------------------ *)
(* Sample *)

let test_omega_to_grid () =
  check_close ~eps:1e-12 "omega=0 -> 0" 0.0 (Sample.omega_to_grid ~g:64 0.0);
  check_close ~eps:1e-9 "omega=pi/2 -> g/4" 16.0
    (Sample.omega_to_grid ~g:64 (Float.pi /. 2.0));
  check_close ~eps:1e-9 "omega=-pi -> g/2" 32.0
    (Sample.omega_to_grid ~g:64 (-.Float.pi));
  let u = Sample.omega_to_grid ~g:64 (2.0 *. Float.pi -. 1e-9) in
  Alcotest.(check bool) "wraps into range" true (u >= 0.0 && u < 64.0)

let test_sample_validation () =
  let values = Cvec.create 2 in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Sample: coordinate 64 outside [0, 64)") (fun () ->
      ignore
        (Sample.make_2d ~g:64 ~gx:[| 0.0; 64.0 |] ~gy:[| 1.0; 2.0 |] ~values));
  let s = Sample.random_2d ~seed:8 ~g:32 500 in
  Sample.validate s;
  Alcotest.(check int) "length" 500 (Sample.length s)

(* ------------------------------------------------------------------ *)
(* NuDFT *)

let test_nudft_adjoint_1d_dc () =
  (* A single sample at omega=0 with value 1 contributes 1 everywhere. *)
  let x = Nudft.adjoint_1d ~n:8 ~omega:[| 0.0 |]
      ~values:(Cvec.of_complex_array [| C.one |]) in
  for i = 0 to 7 do
    check_close "dc re" 1.0 (Cvec.get_re x i);
    check_close "dc im" 0.0 (Cvec.get_im x i)
  done

let test_nudft_adjointness_2d () =
  (* <A x, y> = <x, A^H y> exactly (both are exact sums). *)
  let n = 8 and m = 20 in
  let rng = Random.State.make [| 55 |] in
  let omega_x = Array.init m (fun _ -> Random.State.float rng (2.0 *. Float.pi) -. Float.pi) in
  let omega_y = Array.init m (fun _ -> Random.State.float rng (2.0 *. Float.pi) -. Float.pi) in
  let x = Cvec.init (n * n) (fun _ ->
      C.make (Random.State.float rng 2.0 -. 1.0) (Random.State.float rng 2.0 -. 1.0)) in
  let y = Cvec.init m (fun _ ->
      C.make (Random.State.float rng 2.0 -. 1.0) (Random.State.float rng 2.0 -. 1.0)) in
  let ax = Nudft.forward_2d ~n ~omega_x ~omega_y ~image:x in
  let ahy = Nudft.adjoint_2d ~n ~omega_x ~omega_y ~values:y in
  let lhs = Cvec.dot ax y and rhs = Cvec.dot x ahy in
  check_close ~eps:1e-9 "re" lhs.C.re rhs.C.re;
  check_close ~eps:1e-9 "im" lhs.C.im rhs.C.im

(* ------------------------------------------------------------------ *)
(* NuFFT vs NuDFT *)

let random_omega rng m =
  Array.init m (fun _ -> Random.State.float rng (2.0 *. Float.pi) -. Float.pi)

let nufft_vs_nudft_adjoint_2d ~engine ~n ~m ~seed =
  let plan = Nufft.Plan.make ~n ~engine () in
  let rng = Random.State.make [| seed |] in
  let omega_x = random_omega rng m and omega_y = random_omega rng m in
  let values = Cvec.init m (fun _ ->
      C.make (Random.State.float rng 2.0 -. 1.0) (Random.State.float rng 2.0 -. 1.0)) in
  let samples =
    Sample.of_omega_2d ~g:plan.Nufft.Plan.g ~omega_x ~omega_y ~values
  in
  let fast = Nufft.Plan.adjoint_2d plan samples in
  let exact = Nudft.adjoint_2d ~n ~omega_x ~omega_y ~values in
  Cvec.nrmsd ~reference:exact fast

let test_nufft_adjoint_accuracy () =
  let err = nufft_vs_nudft_adjoint_2d ~engine:Gridding.Serial ~n:16 ~m:100 ~seed:7 in
  Alcotest.(check bool)
    (Printf.sprintf "nrmsd %.2e < 2e-3" err)
    true (err < 2e-3)

let test_nufft_adjoint_accuracy_all_engines () =
  List.iter
    (fun engine ->
      let err = nufft_vs_nudft_adjoint_2d ~engine ~n:16 ~m:80 ~seed:21 in
      Alcotest.(check bool)
        (Printf.sprintf "%s nrmsd %.2e" (Gridding.engine_name engine) err)
        true (err < 2e-3))
    (Gridding.default_engines ~g:32 ~w:6)

let test_nufft_accuracy_improves_with_w () =
  let run w =
    let plan = Nufft.Plan.make ~n:16 ~w () in
    let rng = Random.State.make [| 13 |] in
    let m = 120 in
    let omega_x = random_omega rng m and omega_y = random_omega rng m in
    let values = Cvec.init m (fun _ ->
        C.make (Random.State.float rng 2.0 -. 1.0) (Random.State.float rng 2.0 -. 1.0)) in
    let samples =
      Sample.of_omega_2d ~g:plan.Nufft.Plan.g ~omega_x ~omega_y ~values
    in
    let fast = Nufft.Plan.adjoint_2d plan samples in
    let exact = Nudft.adjoint_2d ~n:16 ~omega_x ~omega_y ~values in
    Cvec.nrmsd ~reference:exact fast
  in
  let e2 = run 2 and e4 = run 4 and e6 = run 6 in
  Alcotest.(check bool)
    (Printf.sprintf "w=2:%.1e > w=4:%.1e > w=6:%.1e" e2 e4 e6)
    true
    (e2 > e4 && e4 > e6 *. 0.999)

let test_nufft_forward_accuracy () =
  let n = 16 and m = 60 in
  let plan = Nufft.Plan.make ~n () in
  let rng = Random.State.make [| 99 |] in
  let omega_x = random_omega rng m and omega_y = random_omega rng m in
  let image = Cvec.init (n * n) (fun _ ->
      C.make (Random.State.float rng 2.0 -. 1.0) (Random.State.float rng 2.0 -. 1.0)) in
  let gx = Array.map (Sample.omega_to_grid ~g:plan.Nufft.Plan.g) omega_x in
  let gy = Array.map (Sample.omega_to_grid ~g:plan.Nufft.Plan.g) omega_y in
  let fast = Nufft.Plan.forward_2d plan ~gx ~gy image in
  let exact = Nudft.forward_2d ~n ~omega_x ~omega_y ~image in
  let err = Cvec.nrmsd ~reference:exact fast in
  Alcotest.(check bool) (Printf.sprintf "nrmsd %.2e" err) true (err < 2e-3)

let test_nufft_adjoint_pair () =
  (* The implemented forward/adjoint are exact transposes of each other:
     <F x, y> = <x, A y> to rounding (same table, same window). *)
  let n = 16 and m = 40 in
  let plan = Nufft.Plan.make ~n () in
  let g = plan.Nufft.Plan.g in
  let rng = Random.State.make [| 17 |] in
  let s = Sample.random_2d ~seed:71 ~g m in
  let x = Cvec.init (n * n) (fun _ ->
      C.make (Random.State.float rng 2.0 -. 1.0) (Random.State.float rng 2.0 -. 1.0)) in
  let y = Cvec.init m (fun _ ->
      C.make (Random.State.float rng 2.0 -. 1.0) (Random.State.float rng 2.0 -. 1.0)) in
  let fx = Nufft.Plan.forward_2d plan ~gx:(Sample.gx s) ~gy:(Sample.gy s) x in
  let ay = Nufft.Plan.adjoint_2d plan (Sample.with_values s y) in
  let lhs = Cvec.dot fx y and rhs = Cvec.dot x ay in
  let scale = C.norm lhs +. C.norm rhs +. 1.0 in
  check_close ~eps:(1e-10 *. scale) "re" lhs.C.re rhs.C.re;
  check_close ~eps:(1e-10 *. scale) "im" lhs.C.im rhs.C.im

let test_nufft_adjoint_1d () =
  let n = 32 and m = 80 in
  let plan = Nufft.Plan.make ~n () in
  let rng = Random.State.make [| 41 |] in
  let omega = random_omega rng m in
  let values = Cvec.init m (fun _ ->
      C.make (Random.State.float rng 2.0 -. 1.0) (Random.State.float rng 2.0 -. 1.0)) in
  let coords = Array.map (Sample.omega_to_grid ~g:plan.Nufft.Plan.g) omega in
  let fast = Nufft.Plan.adjoint_1d plan ~coords values in
  let exact = Nudft.adjoint_1d ~n ~omega ~values in
  let err = Cvec.nrmsd ~reference:exact fast in
  Alcotest.(check bool) (Printf.sprintf "nrmsd %.2e" err) true (err < 2e-3)

let test_nufft_timed () =
  let n = 32 and m = 500 in
  let plan = Nufft.Plan.make ~n () in
  let s = Sample.random_2d ~seed:6 ~g:plan.Nufft.Plan.g m in
  let image, t = Nufft.Plan.adjoint_2d_timed plan s in
  Alcotest.(check int) "image size" (n * n) (Cvec.length image);
  Alcotest.(check bool) "gridding time recorded" true (t.Nufft.Plan.gridding_s >= 0.0);
  let f = Nufft.Plan.gridding_fraction t in
  Alcotest.(check bool) "fraction in [0,1]" true (f >= 0.0 && f <= 1.0)

let test_plan_validation () =
  Alcotest.check_raises "n" (Invalid_argument "Plan.make: n must be >= 2")
    (fun () -> ignore (Nufft.Plan.make ~n:1 ()));
  Alcotest.check_raises "sigma" (Invalid_argument "Plan.make: sigma must be > 1")
    (fun () -> ignore (Nufft.Plan.make ~n:16 ~sigma:0.5 ()));
  Alcotest.check_raises "mismatched grid"
    (Invalid_argument "Plan: sample set is for grid 16, plan uses 32")
    (fun () ->
      let plan = Nufft.Plan.make ~n:16 () in
      let s = Sample.random_2d ~g:16 10 in
      ignore (Nufft.Plan.adjoint_2d plan s))

(* ------------------------------------------------------------------ *)
(* Tolerance-driven plans *)

let test_plan_tol_geometry () =
  (* tol derives kernel family, width and table oversampling: the width
     law w = ceil(ln(1/tol) / (pi sqrt(1 - 1/sigma))) + 1 and the LUT law
     l = next_pow2(0.5 / tol), both clamped (see DESIGN.md section 14). *)
  let p = Nufft.Plan.make ~n:16 ~tol:1e-5 () in
  Alcotest.(check int) "w at 1e-5" 7 p.Nufft.Plan.w;
  Alcotest.(check int) "l at 1e-5" 65536 p.Nufft.Plan.l;
  (match p.Nufft.Plan.tol with
  | Some t -> check_close "tol recorded" 1e-5 t
  | None -> Alcotest.fail "plan did not record the requested tol");
  (match p.Nufft.Plan.kernel with
  | Window.Exp_semicircle _ -> ()
  | k -> Alcotest.failf "expected ES kernel, got %s" (Window.name k));
  let p2 = Nufft.Plan.make ~n:16 ~tol:1e-2 () in
  Alcotest.(check int) "w at 1e-2" 4 p2.Nufft.Plan.w;
  Alcotest.(check int) "l at 1e-2" 512 p2.Nufft.Plan.l;
  (* Both families share the width law (calibrated at the Beatty beta). *)
  let kb, w_kb = Window.for_tolerance ~family:Window.KB ~tol:1e-4 ~sigma:2.0 () in
  Alcotest.(check int) "KB width at 1e-4" 6 w_kb;
  (match kb with
  | Window.Kaiser_bessel _ -> ()
  | k -> Alcotest.failf "expected KB kernel, got %s" (Window.name k));
  let p3 = Nufft.Plan.make ~n:16 ~tol:1e-4 ~family:Window.KB () in
  Alcotest.(check int) "plan KB width" 6 p3.Nufft.Plan.w;
  Alcotest.(check int) "plan KB l" 8192 p3.Nufft.Plan.l

let test_plan_tol_validation () =
  Alcotest.check_raises "tol + w"
    (Invalid_argument "Plan.make: tol and w are mutually exclusive")
    (fun () -> ignore (Nufft.Plan.make ~n:16 ~tol:1e-4 ~w:6 ()));
  Alcotest.check_raises "tol + kernel"
    (Invalid_argument "Plan.make: tol and kernel are mutually exclusive")
    (fun () ->
      ignore
        (Nufft.Plan.make ~n:16 ~tol:1e-4
           ~kernel:(Window.default_kaiser_bessel ~width:6 ~sigma:2.0)
           ()));
  Alcotest.check_raises "w < 2"
    (Invalid_argument "Plan.make: w must be >= 2")
    (fun () -> ignore (Nufft.Plan.make ~n:16 ~w:1 ()))

let test_plan_default_width_tracks_sigma () =
  (* The default width holds the Beatty shape argument at its (w = 6,
     sigma = 2) reference; narrower oversampling must widen the window
     rather than silently degrade accuracy. *)
  Alcotest.(check int) "sigma = 2" 6 (Window.default_width ~sigma:2.0);
  Alcotest.(check int) "sigma = 1.5" 7 (Window.default_width ~sigma:1.5);
  Alcotest.(check int) "sigma = 1.25" 8 (Window.default_width ~sigma:1.25);
  let p = Nufft.Plan.make ~n:16 ~sigma:1.5 () in
  Alcotest.(check int) "plan inherits sigma-derived width" 7 p.Nufft.Plan.w;
  let p2 = Nufft.Plan.make ~n:16 () in
  Alcotest.(check int) "sigma = 2 default unchanged" 6 p2.Nufft.Plan.w

let test_ft_numeric_panels () =
  (* The default composite-Simpson panel count (256 per unit of width,
     floor 2048) must already be converged: a deliberately oversampled
     quadrature at the widest supported window may not move the result.
     (ES and Kaiser-Bessel both decay to ~1e-16 at the truncation edge,
     so the endpoint clamp to zero costs nothing; a kernel with a fat
     edge value, like the 1%-tail Gaussian, would converge only O(h)
     there and is excluded deliberately.) *)
  let w = 16 in
  List.iter
    (fun kernel ->
      List.iter
        (fun x ->
          let dflt = Window.ft_numeric kernel ~width:w x in
          let dense = Window.ft_numeric ~panels:65536 kernel ~width:w x in
          check_close
            ~eps:(1e-10 *. (Float.abs dense +. 1.0))
            (Printf.sprintf "%s x=%g" (Window.name kernel) x)
            dense dflt)
        [ 0.0; 0.05; 0.125; 0.25; 0.45 ])
    [ Window.default_exp_semicircle ~width:w ~sigma:2.0;
      Window.default_kaiser_bessel ~width:w ~sigma:2.0 ]

(* A tolerance-built plan is (a) an exact forward/adjoint transpose pair
   and (b) within the 10x accuracy contract of the request, for random
   trajectories, random tolerances across the supported range, and both
   kernel families. *)
let prop_tol_plan_adjoint_pair =
  QCheck.Test.make
    ~name:"tol-driven plan: exact adjoint pair, meets accuracy contract"
    ~count:6
    QCheck.(
      triple (int_range 0 100_000) (int_range 30 90) (float_range 2.0 6.0))
    (fun (seed, m, neg_log_tol) ->
      let tol = 10.0 ** -.neg_log_tol in
      let family = if seed land 1 = 0 then Window.ES else Window.KB in
      let n = 12 in
      let plan = Nufft.Plan.make ~n ~tol ~family () in
      let g = plan.Nufft.Plan.g in
      let rng = Random.State.make [| seed |] in
      let omega_x = random_omega rng m and omega_y = random_omega rng m in
      let values =
        Cvec.init m (fun _ ->
            C.make
              (Random.State.float rng 2.0 -. 1.0)
              (Random.State.float rng 2.0 -. 1.0))
      in
      let samples = Sample.of_omega_2d ~g ~omega_x ~omega_y ~values in
      let x =
        Cvec.init (n * n) (fun _ ->
            C.make
              (Random.State.float rng 2.0 -. 1.0)
              (Random.State.float rng 2.0 -. 1.0))
      in
      let fx =
        Nufft.Plan.forward_2d plan ~gx:(Sample.gx samples)
          ~gy:(Sample.gy samples) x
      in
      let ay = Nufft.Plan.adjoint_2d plan samples in
      let lhs = Cvec.dot fx values and rhs = Cvec.dot x ay in
      let scale = C.norm lhs +. C.norm rhs +. 1.0 in
      let pair_ok =
        Float.abs (lhs.C.re -. rhs.C.re) <= 1e-10 *. scale
        && Float.abs (lhs.C.im -. rhs.C.im) <= 1e-10 *. scale
      in
      if not pair_ok then
        QCheck.Test.fail_reportf
          "dot-test failed at tol %.2e (%s): <Fx,y>=%g%+gi <x,Ay>=%g%+gi"
          tol (Window.family_name family) lhs.C.re lhs.C.im rhs.C.re rhs.C.im
      else begin
        let exact = Nudft.adjoint_2d ~n ~omega_x ~omega_y ~values in
        let err = Cvec.nrmsd ~reference:exact ay in
        if err > 10.0 *. tol then
          QCheck.Test.fail_reportf
            "accuracy contract breached: tol %.2e (%s, w=%d l=%d) measured %.3e"
            tol (Window.family_name family) plan.Nufft.Plan.w
            plan.Nufft.Plan.l err
        else true
      end)

let test_nufft_non_pow2_sigma () =
  (* sigma = 1.5 gives a non-power-of-two oversampled grid exercising the
     Bluestein FFT inside the pipeline; wider window per Beatty. *)
  let err =
    let n = 16 and m = 60 in
    let plan = Nufft.Plan.make ~n ~sigma:1.5 ~w:7 ~l:1024 () in
    let rng = Random.State.make [| 61 |] in
    let omega_x = random_omega rng m and omega_y = random_omega rng m in
    let values = Cvec.init m (fun _ ->
        C.make (Random.State.float rng 2.0 -. 1.0) (Random.State.float rng 2.0 -. 1.0)) in
    let samples =
      Sample.of_omega_2d ~g:plan.Nufft.Plan.g ~omega_x ~omega_y ~values
    in
    let fast = Nufft.Plan.adjoint_2d plan samples in
    let exact = Nudft.adjoint_2d ~n:16 ~omega_x ~omega_y ~values in
    Cvec.nrmsd ~reference:exact fast
  in
  Alcotest.(check bool) (Printf.sprintf "sigma=1.5 nrmsd %.2e" err) true
    (err < 5e-3)

(* ------------------------------------------------------------------ *)
(* 3D *)

let random_coords rng m bound =
  Array.init m (fun _ -> Random.State.float rng bound)

let test_gridding3d_vs_sliced () =
  let g = 16 and m = 80 in
  let tbl = table ~w:4 () in
  let rng = Random.State.make [| 91 |] in
  let gx = random_coords rng m (float_of_int g)
  and gy = random_coords rng m (float_of_int g)
  and gz = random_coords rng m (float_of_int g) in
  let values = Cvec.init m (fun _ ->
      C.make (Random.State.float rng 2.0 -. 1.0) (Random.State.float rng 2.0 -. 1.0)) in
  let direct = Nufft.Gridding3d.grid_3d ~table:tbl ~g ~gx ~gy ~gz values in
  let sliced = Nufft.Gridding3d.grid_3d_sliced ~table:tbl ~g ~gx ~gy ~gz values in
  check_vec ~eps:1e-11 "direct = sliced schedule" direct sliced

let test_gridding3d_parallel () =
  let g = 12 and m = 60 in
  let tbl = table ~w:4 () in
  let rng = Random.State.make [| 92 |] in
  let gx = random_coords rng m (float_of_int g)
  and gy = random_coords rng m (float_of_int g)
  and gz = random_coords rng m (float_of_int g) in
  let values = Cvec.init m (fun _ ->
      C.make (Random.State.float rng 2.0 -. 1.0) (Random.State.float rng 2.0 -. 1.0)) in
  let direct = Nufft.Gridding3d.grid_3d ~table:tbl ~g ~gx ~gy ~gz values in
  let sliced = Nufft.Gridding3d.grid_3d_sliced ~table:tbl ~g ~gx ~gy ~gz values in
  List.iter
    (fun domains ->
      let par =
        Nufft.Gridding3d.grid_3d_parallel ~domains ~table:tbl ~g ~gx ~gy ~gz
          values
      in
      (* Slices are z-private, each accumulated in sample order: the
         parallel schedule is bitwise the sliced one for any pool size. *)
      check_vec ~eps:0.0
        (Printf.sprintf "parallel(%d) = sliced bitwise" domains)
        sliced par;
      check_vec ~eps:1e-11
        (Printf.sprintf "parallel(%d) = direct" domains)
        direct par)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  (* Stats parity with the serial sliced schedule, merged across chunks. *)
  let sliced_st = Stats.create () in
  ignore
    (Nufft.Gridding3d.grid_3d_sliced ~stats:sliced_st ~table:tbl ~g ~gx ~gy
       ~gz values);
  let par_st = Stats.create () in
  ignore
    (Nufft.Gridding3d.grid_3d_parallel ~stats:par_st ~domains:3 ~table:tbl ~g
       ~gx ~gy ~gz values);
  Alcotest.(check int) "checks" sliced_st.Stats.boundary_checks
    par_st.Stats.boundary_checks;
  Alcotest.(check int) "lookups" sliced_st.Stats.window_evals
    par_st.Stats.window_evals;
  Alcotest.(check int) "accums" sliced_st.Stats.grid_accumulates
    par_st.Stats.grid_accumulates;
  Alcotest.(check int) "samples" sliced_st.Stats.samples_processed
    par_st.Stats.samples_processed

let test_gridding3d_mass () =
  (* One sample in the interior: total grid mass = value * (window sum)^3. *)
  let g = 16 and w = 4 in
  let tbl = table ~w () in
  let u = 8.3 in
  let grid = Nufft.Gridding3d.grid_3d ~table:tbl ~g ~gx:[| u |] ~gy:[| u |]
      ~gz:[| u |] (Cvec.of_complex_array [| C.one |]) in
  let sum1d = ref 0.0 in
  Coord.iter_window ~w ~g u (fun ~k:_ ~dist ->
      sum1d := !sum1d +. Wt.lookup tbl dist);
  let total = Cvec.fold (fun a c -> C.add a c) C.zero grid in
  check_close ~eps:1e-12 "mass" (!sum1d ** 3.0) total.C.re;
  check_close ~eps:1e-12 "imag" 0.0 total.C.im

let test_nufft_3d_vs_nudft () =
  let n = 8 and m = 40 in
  let plan = Nufft.Plan.make ~n ~w:4 ~l:1024 () in
  let g = plan.Nufft.Plan.g in
  let rng = Random.State.make [| 53 |] in
  let omega k = Array.init m (fun i -> ignore k; ignore i;
      Random.State.float rng (2.0 *. Float.pi) -. Float.pi) in
  let ox = omega 0 and oy = omega 1 and oz = omega 2 in
  let values = Cvec.init m (fun _ ->
      C.make (Random.State.float rng 2.0 -. 1.0) (Random.State.float rng 2.0 -. 1.0)) in
  let to_grid = Array.map (Sample.omega_to_grid ~g) in
  let fast = Nufft.Plan.adjoint_3d plan ~gx:(to_grid ox) ~gy:(to_grid oy)
      ~gz:(to_grid oz) values in
  let exact = Nudft.adjoint_3d ~n ~omega_x:ox ~omega_y:oy ~omega_z:oz ~values in
  let err = Cvec.nrmsd ~reference:exact fast in
  Alcotest.(check bool) (Printf.sprintf "3d adjoint nrmsd %.2e" err) true
    (err < 5e-3)

let test_nufft_3d_adjoint_pair () =
  let n = 8 and m = 25 in
  let plan = Nufft.Plan.make ~n ~w:4 () in
  let g = plan.Nufft.Plan.g in
  let rng = Random.State.make [| 59 |] in
  let coords () = Array.init m (fun _ -> Random.State.float rng (float_of_int g)) in
  let gx = coords () and gy = coords () and gz = coords () in
  let x = Cvec.init (n * n * n) (fun _ ->
      C.make (Random.State.float rng 2.0 -. 1.0) (Random.State.float rng 2.0 -. 1.0)) in
  let y = Cvec.init m (fun _ ->
      C.make (Random.State.float rng 2.0 -. 1.0) (Random.State.float rng 2.0 -. 1.0)) in
  let fx = Nufft.Plan.forward_3d plan ~gx ~gy ~gz x in
  let ay = Nufft.Plan.adjoint_3d plan ~gx ~gy ~gz y in
  let lhs = Cvec.dot fx y and rhs = Cvec.dot x ay in
  let scale = C.norm lhs +. C.norm rhs +. 1.0 in
  check_close ~eps:(1e-10 *. scale) "re" lhs.C.re rhs.C.re;
  check_close ~eps:(1e-10 *. scale) "im" lhs.C.im rhs.C.im

(* ------------------------------------------------------------------ *)
(* Min-max interpolation *)

let test_minmax_reproduces_on_grid_sample () =
  (* A sample exactly on a grid point: the optimal coefficients are a
     delta (reproduce the exponential exactly). *)
  let n = 16 and g = 32 and w = 6 in
  let u = 10.0 in
  let c = Nufft.Minmax.coefficients ~n ~g ~w u in
  (* Canonical window of u=10: kmax = 13, start = 8; u itself is index 2. *)
  Array.iteri
    (fun j cj ->
      if j = 2 then begin
        check_close ~eps:1e-8 "unit coeff re" 1.0 cj.C.re;
        check_close ~eps:1e-8 "unit coeff im" 0.0 cj.C.im
      end
      else check_close ~eps:1e-8 (Printf.sprintf "zero coeff %d" j) 0.0
          (C.norm cj))
    c

let test_minmax_worst_case_decreases_with_w () =
  let n = 16 and g = 32 in
  let u = 10.37 in
  let errs =
    List.map (fun w -> Nufft.Minmax.worst_case_error ~n ~g ~w u) [ 2; 4; 6 ]
  in
  (match errs with
  | [ e2; e4; e6 ] ->
      Alcotest.(check bool)
        (Printf.sprintf "monotone %.1e > %.1e > %.1e" e2 e4 e6)
        true
        (e2 > e4 && e4 > e6)
  | _ -> assert false)

let test_minmax_scaled_beats_kb () =
  (* The headline property of MIRT's interpolator: with good scaling
     factors, exact min-max beats the tabulated Kaiser-Bessel window at
     the same w. *)
  let n = 16 and m = 120 and w = 6 in
  let plan = Nufft.Plan.make ~n ~w ~l:2048 () in
  let g = plan.Nufft.Plan.g in
  let rng = Random.State.make [| 31 |] in
  let omega () = random_omega rng m in
  let ox = omega () and oy = omega () in
  let values = Cvec.init m (fun _ ->
      C.make (Random.State.float rng 2.0 -. 1.0) (Random.State.float rng 2.0 -. 1.0)) in
  let exact = Nudft.adjoint_2d ~n ~omega_x:ox ~omega_y:oy ~values in
  let samples = Sample.of_omega_2d ~g ~omega_x:ox ~omega_y:oy ~values in
  let kb_err =
    Cvec.nrmsd ~reference:exact (Nufft.Plan.adjoint_2d plan samples)
  in
  let mm =
    Nufft.Minmax.adjoint_2d ~scaling:Nufft.Minmax.Kaiser_bessel_scaling ~n ~g
      ~w ~gx:(Sample.gx samples) ~gy:(Sample.gy samples) values
  in
  let mm_err = Cvec.nrmsd ~reference:exact mm in
  Alcotest.(check bool)
    (Printf.sprintf "minmax %.2e < kb %.2e" mm_err kb_err)
    true (mm_err < kb_err)

let test_minmax_scaling_helps () =
  let n = 16 and g = 32 and w = 6 in
  let u = 9.43 in
  let uniform = Nufft.Minmax.worst_case_error ~n ~g ~w u in
  let scaled =
    Nufft.Minmax.worst_case_error ~scaling:Nufft.Minmax.Kaiser_bessel_scaling
      ~n ~g ~w u
  in
  Alcotest.(check bool)
    (Printf.sprintf "scaled %.2e < uniform %.2e" scaled uniform)
    true (scaled < uniform)

let test_minmax_validation () =
  Alcotest.check_raises "w" (Invalid_argument "Minmax.coefficients: w < 1")
    (fun () -> ignore (Nufft.Minmax.coefficients ~n:8 ~g:16 ~w:0 1.0));
  Alcotest.check_raises "n > g"
    (Invalid_argument "Minmax.coefficients: n must not exceed g") (fun () ->
      ignore (Nufft.Minmax.coefficients ~n:32 ~g:16 ~w:4 1.0))

(* ------------------------------------------------------------------ *)
(* Apodization *)

let test_apodization_factors () =
  let kernel = Window.default_kaiser_bessel ~width:6 ~sigma:2.0 in
  let f = Nufft.Apodization.factors ~kernel ~width:6 ~n:16 ~g:32 in
  Alcotest.(check int) "length" 16 (Array.length f);
  Array.iter (fun v -> Alcotest.(check bool) "positive" true (v > 0.0)) f;
  (* Symmetric around centre: f.(n/2 - k) = f.(n/2 + k). *)
  check_close ~eps:1e-12 "symmetry" f.(8 - 3) f.(8 + 3)

let test_dice_layout_roundtrip () =
  let t = 8 and g = 32 in
  let n_addr = g * g in
  let seen = Hashtbl.create n_addr in
  for addr = 0 to n_addr - 1 do
    let idx = Nufft.Gridding_slice.grid_index_of_dice ~t ~g addr in
    Alcotest.(check bool) "in range" true (idx >= 0 && idx < g * g);
    if Hashtbl.mem seen idx then Alcotest.failf "duplicate grid index %d" idx;
    Hashtbl.add seen idx ()
  done;
  Alcotest.(check int) "bijection" n_addr (Hashtbl.length seen)

(* [dice_address] and [grid_index_of_dice] are mutually inverse bijections
   between dice layout and the row-major grid, for any tiling (t, g). *)
let prop_dice_inverse =
  QCheck.Test.make ~name:"dice_address inverts grid_index_of_dice" ~count:60
    QCheck.(pair (int_range 1 8) (int_range 1 6))
    (fun (t, n_tiles) ->
      let g = t * n_tiles in
      let tiles_total = n_tiles * n_tiles in
      let ok = ref true in
      for addr = 0 to (g * g) - 1 do
        let idx = Nufft.Gridding_slice.grid_index_of_dice ~t ~g addr in
        if idx < 0 || idx >= g * g then ok := false;
        (* Recover the (column, tile) pair from the grid coordinates and
           re-address it: must come back to [addr]. *)
        let x = idx mod g and y = idx / g in
        let column = ((y mod t) * t) + (x mod t) in
        let tile = (y / t * n_tiles) + (x / t) in
        if
          Nufft.Gridding_slice.dice_address ~t ~g ~column ~tile <> addr
          || column <> addr / tiles_total
          || tile <> addr mod tiles_total
        then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)

(* Spreading and interpolation are exact transposes at the gridding level:
   <spread(v), u> = <v, interp(u)> for any grid u and samples v. *)
let prop_spread_interp_adjoint =
  QCheck.Test.make ~name:"spread and interp are transposes" ~count:40
    QCheck.(pair (int_range 0 10000) (int_range 5 60))
    (fun (seed, m) ->
      let g = 32 in
      let tbl = table () in
      let s = Sample.random_2d ~seed ~g m in
      let rng = Random.State.make [| seed + 1 |] in
      let u = Cvec.init (g * g) (fun _ ->
          C.make (Random.State.float rng 2.0 -. 1.0)
            (Random.State.float rng 2.0 -. 1.0)) in
      let spread =
        Gridding.grid_2d Gridding.Serial ~table:tbl ~g ~gx:(Sample.gx s)
          ~gy:(Sample.gy s) s.Sample.values
      in
      let back =
        Gridding.interp_2d ~table:tbl ~g ~gx:(Sample.gx s) ~gy:(Sample.gy s) u
      in
      let lhs = Cvec.dot spread u and rhs = Cvec.dot s.Sample.values back in
      let scale = C.norm lhs +. C.norm rhs +. 1.0 in
      Float.abs (lhs.C.re -. rhs.C.re) <= 1e-10 *. scale
      && Float.abs (lhs.C.im -. rhs.C.im) <= 1e-10 *. scale)

(* Gridding is linear in the sample values. *)
let prop_gridding_linear =
  QCheck.Test.make ~name:"gridding is linear in values" ~count:40
    QCheck.(pair (int_range 0 10000) (float_range (-3.0) 3.0))
    (fun (seed, alpha) ->
      let g = 32 and m = 40 in
      let tbl = table () in
      let s = Sample.random_2d ~seed ~g m in
      let scaled =
        Cvec.map (fun c -> C.scale alpha c) s.Sample.values
      in
      let base =
        Gridding.grid_2d Gridding.Serial ~table:tbl ~g ~gx:(Sample.gx s)
          ~gy:(Sample.gy s) s.Sample.values
      in
      let got =
        Gridding.grid_2d Gridding.Serial ~table:tbl ~g ~gx:(Sample.gx s)
          ~gy:(Sample.gy s) scaled
      in
      let expected = Cvec.copy base in
      Cvec.scale_inplace alpha expected;
      Cvec.max_abs_diff expected got <= 1e-9)

(* iter_window always yields exactly w wrapped points for any coordinate. *)
let prop_iter_window_total =
  QCheck.Test.make ~name:"iter_window yields w in-range points" ~count:500
    QCheck.(triple (int_range 1 8) (int_range 1 8) (float_range 0.0 0.99999))
    (fun (w, n_tiles, frac) ->
      let g = Float.max (float_of_int w) (float_of_int (8 * n_tiles)) in
      let g = int_of_float g in
      let u = frac *. float_of_int g in
      let count = ref 0 and ok = ref true in
      Coord.iter_window ~w ~g u (fun ~k ~dist ->
          incr count;
          if k < 0 || k >= g then ok := false;
          if Float.abs dist > float_of_int w /. 2.0 +. 1e-9 then ok := false);
      !ok && !count = w)

let qtests =
  Qutil.to_alcotests
    [ prop_column_check; prop_engines_agree; prop_spread_interp_adjoint;
      prop_gridding_linear; prop_iter_window_total; prop_dice_inverse;
      prop_tol_plan_adjoint_pair ]

let () =
  Alcotest.run "nufft"
    [ ("coord",
       [ Alcotest.test_case "window_start" `Quick test_window_start;
         Alcotest.test_case "wrap" `Quick test_wrap;
         Alcotest.test_case "iter_window" `Quick test_iter_window;
         Alcotest.test_case "iter_window wraps" `Quick test_iter_window_wraps;
         Alcotest.test_case "decompose" `Quick test_decompose;
         Alcotest.test_case "check_tiling" `Quick test_check_tiling;
         Alcotest.test_case "affected_columns" `Quick test_affected_columns;
         Alcotest.test_case "column_check wrap flag" `Quick
           test_column_check_wrap_flag ]);
      ("engines",
       [ Alcotest.test_case "agree 1d" `Quick test_engines_agree_1d;
         Alcotest.test_case "agree 2d" `Quick test_engines_agree_2d;
         Alcotest.test_case "slice fast = serial bitwise" `Quick
           test_slice_fast_bitwise_equal_serial;
         Alcotest.test_case "slice faithful schedule" `Quick
           test_slice_faithful_agrees;
         Alcotest.test_case "parallel domains agree" `Quick
           test_slice_parallel_agrees;
         Alcotest.test_case "parallel pool reuse" `Quick
           test_slice_parallel_pool_reuse;
         Alcotest.test_case "mass conservation" `Quick test_mass_conservation;
         Alcotest.test_case "empty sample set" `Quick test_empty_sample_set;
         Alcotest.test_case "window = tile" `Quick test_window_equals_tile;
         Alcotest.test_case "w = 1 nearest neighbour" `Quick
           test_w1_minimal_window ]);
      ("stats",
       [ Alcotest.test_case "serial" `Quick test_stats_serial;
         Alcotest.test_case "output-parallel" `Quick test_stats_output_parallel;
         Alcotest.test_case "slice-and-dice" `Quick test_stats_slice;
         Alcotest.test_case "slice-parallel" `Quick test_stats_slice_parallel;
         Alcotest.test_case "binned duplicates" `Quick
           test_stats_binned_duplicates;
         Alcotest.test_case "duplication factor" `Quick test_duplication_factor ]);
      ("sample",
       [ Alcotest.test_case "omega mapping" `Quick test_omega_to_grid;
         Alcotest.test_case "validation" `Quick test_sample_validation ]);
      ("nudft",
       [ Alcotest.test_case "adjoint dc" `Quick test_nudft_adjoint_1d_dc;
         Alcotest.test_case "adjointness 2d" `Quick test_nudft_adjointness_2d ]);
      ("nufft",
       [ Alcotest.test_case "adjoint accuracy" `Quick test_nufft_adjoint_accuracy;
         Alcotest.test_case "adjoint accuracy (all engines)" `Quick
           test_nufft_adjoint_accuracy_all_engines;
         Alcotest.test_case "accuracy improves with w" `Quick
           test_nufft_accuracy_improves_with_w;
         Alcotest.test_case "forward accuracy" `Quick test_nufft_forward_accuracy;
         Alcotest.test_case "adjoint pair" `Quick test_nufft_adjoint_pair;
         Alcotest.test_case "adjoint 1d" `Quick test_nufft_adjoint_1d;
         Alcotest.test_case "timed decomposition" `Quick test_nufft_timed;
         Alcotest.test_case "plan validation" `Quick test_plan_validation;
         Alcotest.test_case "tol-derived geometry" `Quick test_plan_tol_geometry;
         Alcotest.test_case "tol validation" `Quick test_plan_tol_validation;
         Alcotest.test_case "default width tracks sigma" `Quick
           test_plan_default_width_tracks_sigma;
         Alcotest.test_case "ft_numeric panel convergence" `Quick
           test_ft_numeric_panels;
         Alcotest.test_case "non-pow2 sigma (bluestein)" `Quick
           test_nufft_non_pow2_sigma ]);
      ("gridding3d",
       [ Alcotest.test_case "direct = sliced" `Quick test_gridding3d_vs_sliced;
         Alcotest.test_case "parallel = sliced (all pool sizes)" `Quick
           test_gridding3d_parallel;
         Alcotest.test_case "mass" `Quick test_gridding3d_mass;
         Alcotest.test_case "3d adjoint vs nudft" `Quick test_nufft_3d_vs_nudft;
         Alcotest.test_case "3d adjoint pair" `Quick test_nufft_3d_adjoint_pair ]);
      ("minmax",
       [ Alcotest.test_case "on-grid sample is a delta" `Quick
           test_minmax_reproduces_on_grid_sample;
         Alcotest.test_case "error decreases with w" `Quick
           test_minmax_worst_case_decreases_with_w;
         Alcotest.test_case "scaled beats kaiser-bessel" `Quick
           test_minmax_scaled_beats_kb;
         Alcotest.test_case "scaling helps" `Quick test_minmax_scaling_helps;
         Alcotest.test_case "validation" `Quick test_minmax_validation ]);
      ("apodization",
       [ Alcotest.test_case "factors" `Quick test_apodization_factors;
         Alcotest.test_case "dice layout bijection" `Quick
           test_dice_layout_roundtrip ]);
      ("properties", qtests) ]
