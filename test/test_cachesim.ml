(* Tests for the cache and DRAM models. *)

module Cache = Cachesim.Cache
module Dram = Cachesim.Dram

let small = { Cache.size_bytes = 1024; line_bytes = 64; ways = 2 }
(* 1024 / (64*2) = 8 sets. *)

let test_geometry () =
  let c = Cache.create small in
  Alcotest.(check int) "sets" 8 (Cache.sets c);
  Alcotest.check_raises "bad line"
    (Invalid_argument "Cache.create: line_bytes must be a power of two")
    (fun () -> ignore (Cache.create { small with Cache.line_bytes = 48 }));
  Alcotest.check_raises "bad size"
    (Invalid_argument "Cache.create: size must be a multiple of line*ways")
    (fun () -> ignore (Cache.create { small with Cache.size_bytes = 1000 }))

let test_hit_miss () =
  let c = Cache.create small in
  Alcotest.(check bool) "cold miss" false (Cache.access c 0);
  Alcotest.(check bool) "hit" true (Cache.access c 0);
  Alcotest.(check bool) "same line" true (Cache.access c 63);
  Alcotest.(check bool) "next line misses" false (Cache.access c 64);
  let s = Cache.stats c in
  Alcotest.(check int) "hits" 2 s.Cache.hits;
  Alcotest.(check int) "misses" 2 s.Cache.misses

let test_lru_eviction () =
  let c = Cache.create small in
  (* Three lines mapping to set 0: line addresses 0, 8, 16 (8 sets). *)
  let a = 0 and b = 8 * 64 and d = 16 * 64 in
  ignore (Cache.access c a);
  ignore (Cache.access c b);
  (* Touch a so b is LRU. *)
  ignore (Cache.access c a);
  ignore (Cache.access c d);
  (* b evicted *)
  Alcotest.(check bool) "a survives" true (Cache.probe c a);
  Alcotest.(check bool) "b evicted" false (Cache.probe c b);
  Alcotest.(check bool) "d resident" true (Cache.probe c d);
  Alcotest.(check int) "one eviction" 1 (Cache.stats c).Cache.evictions

let test_hit_rate_and_reset () =
  let c = Cache.create small in
  ignore (Cache.access c 0);
  ignore (Cache.access c 0);
  ignore (Cache.access c 0);
  ignore (Cache.access c 0);
  Alcotest.(check (float 1e-9)) "rate" 0.75 (Cache.hit_rate c);
  Cache.reset_stats c;
  Alcotest.(check (float 1e-9)) "reset" 0.0 (Cache.hit_rate c);
  Alcotest.(check bool) "contents survive" true (Cache.probe c 0);
  Cache.flush c;
  Alcotest.(check bool) "flushed" false (Cache.probe c 0)

let test_working_set () =
  (* A working set equal to capacity gets 100% hits after warmup; double
     the capacity with LRU streaming gets ~0%. *)
  let c = Cache.create small in
  let lines = 1024 / 64 in
  for _pass = 1 to 2 do
    for l = 0 to lines - 1 do
      ignore (Cache.access c (l * 64))
    done
  done;
  let s = Cache.stats c in
  Alcotest.(check int) "hits = second pass" lines s.Cache.hits;
  let c2 = Cache.create small in
  for _pass = 1 to 3 do
    for l = 0 to (2 * lines) - 1 do
      ignore (Cache.access c2 (l * 64))
    done
  done;
  Alcotest.(check int) "thrash: zero hits" 0 (Cache.stats c2).Cache.hits

let prop_stats_consistent =
  QCheck.Test.make ~name:"hits + misses = accesses" ~count:100
    QCheck.(pair (int_range 1 500) (int_range 0 10000))
    (fun (n, seed) ->
      let c = Cache.create small in
      let rng = Random.State.make [| seed |] in
      for _ = 1 to n do
        ignore (Cache.access c (Random.State.int rng 65536))
      done;
      let s = Cache.stats c in
      s.Cache.hits + s.Cache.misses = n)

let test_dram_latency () =
  let d = Dram.create { Dram.latency_cycles = 100; bytes_per_cycle = 16.0 } in
  (* 64 bytes = 4 transfer cycles + 100 latency. *)
  Alcotest.(check int) "first" 104 (Dram.request d ~now:0 ~bytes:64);
  (* A second request in the same bandwidth window shares the pipe. *)
  Alcotest.(check int) "same window" 104 (Dram.request d ~now:0 ~bytes:64);
  Alcotest.(check int) "bytes" 128 (Dram.total_bytes d)

let test_dram_window_overflow () =
  let d = Dram.create { Dram.latency_cycles = 100; bytes_per_cycle = 16.0 } in
  (* Window capacity = 16 * 256 = 4096 bytes; fill it, then overflow. *)
  ignore (Dram.request d ~now:0 ~bytes:4096);
  Alcotest.(check int) "pushed to next window"
    (Cachesim.Dram.epoch_cycles + 4 + 100)
    (Dram.request d ~now:0 ~bytes:64);
  Alcotest.(check bool) "busy until covers window 1" true
    (Dram.busy_until d >= 2 * Cachesim.Dram.epoch_cycles)

let test_dram_idle_gap () =
  let d = Dram.create { Dram.latency_cycles = 10; bytes_per_cycle = 8.0 } in
  ignore (Dram.request d ~now:0 ~bytes:8);
  (* Pipe free at 1; a request at now=100 starts immediately. *)
  Alcotest.(check int) "no stale queueing" 111 (Dram.request d ~now:100 ~bytes:8)

let test_dram_bandwidth_saturation () =
  let d = Dram.create Dram.titan_xp in
  let completion = ref 0 in
  for _ = 1 to 1000 do
    completion := max !completion (Dram.request d ~now:0 ~bytes:128)
  done;
  (* 128000 bytes exceed one 256-cycle window (~88.6 kB at 346 B/cycle):
     the tail spills into the next window. *)
  Alcotest.(check bool)
    (Printf.sprintf "bandwidth-bound (%d)" !completion)
    true
    (!completion >= Cachesim.Dram.epoch_cycles + 400);
  Alcotest.(check int) "accounted" 128000 (Dram.total_bytes d)

let qtests = Qutil.to_alcotests [ prop_stats_consistent ]

let () =
  Alcotest.run "cachesim"
    [ ("cache",
       [ Alcotest.test_case "geometry" `Quick test_geometry;
         Alcotest.test_case "hit/miss" `Quick test_hit_miss;
         Alcotest.test_case "lru eviction" `Quick test_lru_eviction;
         Alcotest.test_case "hit rate & reset" `Quick test_hit_rate_and_reset;
         Alcotest.test_case "working set" `Quick test_working_set ]);
      ("dram",
       [ Alcotest.test_case "latency" `Quick test_dram_latency;
         Alcotest.test_case "idle gap" `Quick test_dram_idle_gap;
         Alcotest.test_case "window overflow" `Quick test_dram_window_overflow;
         Alcotest.test_case "bandwidth saturation" `Quick
           test_dram_bandwidth_saturation ]);
      ("properties", qtests) ]
