(* Tests for the imaging substrate and the end-to-end reconstruction
   pipeline (Cartesian consistency, radial phantom roundtrip, PGM). *)

module Cvec = Numerics.Cvec
module C = Numerics.Complexd
module Phantom = Imaging.Phantom
module Metrics = Imaging.Metrics

let check_close ?(eps = 1e-12) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.17g, got %.17g" msg expected actual

let rok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "recon error: %s" (Imaging.Recon.error_message e)

let test_phantom_basic () =
  let n = 64 in
  let img = Phantom.make ~n () in
  Alcotest.(check int) "size" (n * n) (Cvec.length img);
  let lo, hi = Phantom.intensity_bounds img in
  Alcotest.(check bool) "background zero" true (lo >= -1e-12);
  Alcotest.(check bool) "peak positive" true (hi > 0.9 && hi <= 2.0);
  (* Phantom is purely real. *)
  let imag_mass = ref 0.0 in
  Cvec.iteri (fun _ c -> imag_mass := !imag_mass +. Float.abs c.C.im) img;
  check_close "real" 0.0 !imag_mass;
  (* Centre pixel is inside the head (non-zero), corner is background. *)
  Alcotest.(check bool) "centre inside" true
    (Cvec.get_re img ((n / 2 * n) + (n / 2)) > 0.0);
  check_close "corner background" 0.0 (Cvec.get_re img 0)

let test_phantom_known_regions () =
  (* Probe canonical anatomy: skull rim (1.0 - 0.8 inside the second
     ellipse), brain matter, the top "ventricle" ellipse, and a point
     inside the right dark ellipse. *)
  let n = 128 in
  let img = Phantom.make ~n () in
  let at x y =
    let ix = int_of_float ((x +. 1.0) /. 2.0 *. float_of_int n) in
    let iy = int_of_float ((1.0 -. y) /. 2.0 *. float_of_int n) in
    Cvec.get_re img ((iy * n) + ix)
  in
  check_close ~eps:1e-9 "brain matter" 0.2 (at 0.0 (-0.3));
  check_close ~eps:1e-9 "top ellipse" 0.3 (at 0.0 0.35);
  (* Centre of the right dark ellipse (x0 = 0.22, intensity -0.2). *)
  check_close ~eps:1e-9 "right ventricle" 0.0 (at 0.22 0.0);
  (* Between the outer skull ellipses: intensity 1.0. *)
  check_close ~eps:1e-9 "skull rim" 1.0 (at 0.0 0.9)

let test_phantom_original_variant () =
  let m = Phantom.make ~modified:true ~n:32 () in
  let o = Phantom.make ~modified:false ~n:32 () in
  let _, hi_m = Phantom.intensity_bounds m in
  let _, hi_o = Phantom.intensity_bounds o in
  Alcotest.(check bool) "different intensity scales" true (hi_o > hi_m)

let test_metrics () =
  let r = Cvec.of_complex_array [| C.make 1.0 0.0; C.make 0.0 2.0 |] in
  check_close "nrmsd identical" 0.0 (Metrics.nrmsd ~reference:r (Cvec.copy r));
  Alcotest.(check bool) "psnr identical" true
    (Float.is_integer (Metrics.psnr ~reference:r (Cvec.copy r))
     = Float.is_integer Float.infinity);
  let v = Cvec.of_complex_array [| C.make 1.1 0.0; C.make 0.0 2.0 |] in
  check_close ~eps:1e-12 "nrmsd" (0.1 /. sqrt 5.0) (Metrics.nrmsd ~reference:r v);
  check_close ~eps:1e-12 "percent" (10.0 /. sqrt 5.0)
    (Metrics.nrmsd_percent ~reference:r v);
  check_close ~eps:1e-12 "max err" 0.1 (Metrics.max_abs_error ~reference:r v);
  Alcotest.(check bool) "psnr finite" true
    (Float.is_finite (Metrics.psnr ~reference:r v))

let test_pgm_roundtrip_bytes () =
  let n = 4 in
  let values = Array.init (n * n) float_of_int in
  let path = Filename.temp_file "jigsaw_test" ".pgm" in
  Imaging.Pgm.write ~path ~n values;
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "header" true (String.length content > 10);
  Alcotest.(check string) "magic" "P5" (String.sub content 0 2);
  (* 16 pixel bytes after the header; min -> 0, max -> 255. *)
  let pixels = String.sub content (String.length content - 16) 16 in
  Alcotest.(check int) "min byte" 0 (Char.code pixels.[0]);
  Alcotest.(check int) "max byte" 255 (Char.code pixels.[15])

let test_cartesian_consistency () =
  (* Acquire the phantom on a full Cartesian grid and reconstruct: the
     result must match the original almost exactly (NuFFT == DFT here). *)
  let n = 32 in
  let plan = Nufft.Plan.make ~n () in
  let img = Phantom.make ~n () in
  let traj = Trajectory.Cartesian.make ~n in
  let recon, err = rok (Imaging.Recon.roundtrip plan traj img) in
  Alcotest.(check int) "size" (n * n) (Cvec.length recon);
  Alcotest.(check bool) (Printf.sprintf "nrmsd %.2e" err) true (err < 5e-3)

let test_radial_roundtrip () =
  (* Fully sampled radial + ramp density compensation: direct gridding
     reconstruction (no iterations) of a hard-edged phantom is Gibbs- and
     DCF-limited; the scaled NRMSD shrinks with resolution (0.31 at n=32,
     0.22 at n=64). *)
  let n = 64 in
  let plan = Nufft.Plan.make ~n () in
  let img = Phantom.make ~n () in
  let traj =
    Trajectory.Radial.make
      ~spokes:(Trajectory.Radial.fully_sampled_spokes ~n)
      ~readout:(2 * n) ()
  in
  let density = Trajectory.Radial.density_weights traj in
  let recon, _abs_err = rok (Imaging.Recon.roundtrip ~density plan traj img) in
  (* Ramp compensation leaves an arbitrary global gain; judge structure
     with the scale-optimal NRMSD. *)
  let err = Metrics.nrmsd_scaled ~reference:img recon in
  Alcotest.(check bool) (Printf.sprintf "scaled nrmsd %.3f" err) true
    (err < 0.25)

let test_undersampling_degrades () =
  let n = 32 in
  let plan = Nufft.Plan.make ~n () in
  let img = Phantom.make ~n () in
  let run spokes =
    let traj = Trajectory.Radial.make ~spokes ~readout:(2 * n) () in
    let density = Trajectory.Radial.density_weights traj in
    let recon, _ = rok (Imaging.Recon.roundtrip ~density plan traj img) in
    Metrics.nrmsd_scaled ~reference:img recon
  in
  let full = run (Trajectory.Radial.fully_sampled_spokes ~n) in
  let under = run 8 in
  Alcotest.(check bool)
    (Printf.sprintf "full %.3f < undersampled %.3f" full under)
    true (full < under)

(* ------------------------------------------------------------------ *)
(* Toeplitz normal operator and CG iterative reconstruction *)

let small_problem () =
  let n = 16 and m = 300 in
  let rng = Random.State.make [| 101 |] in
  let omega () = Array.init m (fun _ ->
      Random.State.float rng (2.0 *. Float.pi) -. Float.pi) in
  (n, omega (), omega ())

let test_toeplitz_matches_normal_operator () =
  let n, omega_x, omega_y = small_problem () in
  let plan = Nufft.Plan.make ~n () in
  let g = plan.Nufft.Plan.g in
  let gx = Array.map (Nufft.Sample.omega_to_grid ~g) omega_x in
  let gy = Array.map (Nufft.Sample.omega_to_grid ~g) omega_y in
  let t = Imaging.Toeplitz.make ~n ~omega_x ~omega_y () in
  let rng = Random.State.make [| 7 |] in
  let x = Cvec.init (n * n) (fun _ ->
      C.make (Random.State.float rng 2.0 -. 1.0) (Random.State.float rng 2.0 -. 1.0)) in
  let via_toeplitz = Imaging.Toeplitz.apply t x in
  (* Explicit A^H (A x) with the NuFFT pair. *)
  let ax = Nufft.Plan.forward_2d plan ~gx ~gy x in
  let s = Nufft.Sample.make_2d ~g ~gx ~gy ~values:ax in
  let via_pair = Nufft.Plan.adjoint_2d plan s in
  let err = Cvec.nrmsd ~reference:via_pair via_toeplitz in
  Alcotest.(check bool) (Printf.sprintf "toeplitz = A^H A (nrmsd %.2e)" err)
    true (err < 5e-3)

let test_toeplitz_hermitian () =
  let n, omega_x, omega_y = small_problem () in
  let t = Imaging.Toeplitz.make ~n ~omega_x ~omega_y () in
  let rng = Random.State.make [| 8 |] in
  let vec () = Cvec.init (n * n) (fun _ ->
      C.make (Random.State.float rng 2.0 -. 1.0) (Random.State.float rng 2.0 -. 1.0)) in
  let x = vec () and y = vec () in
  let lhs = Cvec.dot (Imaging.Toeplitz.apply t x) y in
  let rhs = Cvec.dot x (Imaging.Toeplitz.apply t y) in
  let scale = C.norm lhs +. C.norm rhs +. 1.0 in
  check_close ~eps:(1e-8 *. scale) "re" lhs.C.re rhs.C.re;
  check_close ~eps:(1e-8 *. scale) "im" lhs.C.im rhs.C.im

let test_toeplitz_psd () =
  let n, omega_x, omega_y = small_problem () in
  let t = Imaging.Toeplitz.make ~n ~omega_x ~omega_y () in
  let rng = Random.State.make [| 9 |] in
  for _ = 1 to 5 do
    let x = Cvec.init (n * n) (fun _ ->
        C.make (Random.State.float rng 2.0 -. 1.0) (Random.State.float rng 2.0 -. 1.0)) in
    let q = (Cvec.dot x (Imaging.Toeplitz.apply t x)).C.re in
    Alcotest.(check bool) (Printf.sprintf "<x,Tx> = %g >= 0" q) true
      (q >= -1e-6)
  done

let test_cg_diagonal () =
  (* T = 2I: CG solves in one iteration. *)
  let b = Cvec.init 8 (fun k -> C.make (float_of_int k) 1.0) in
  let r = Imaging.Cg.solve ~apply:(fun v ->
      let c = Cvec.copy v in
      Cvec.scale_inplace 2.0 c;
      c) b in
  Alcotest.(check bool) "converged" true r.Imaging.Cg.converged;
  Alcotest.(check bool) "few iterations" true (r.Imaging.Cg.iterations <= 2);
  let expected = Cvec.map (fun c -> C.scale 0.5 c) b in
  check_close ~eps:1e-12 "solution" 0.0
    (Cvec.max_abs_diff expected r.Imaging.Cg.solution)

let test_cg_residual_decreases () =
  (* Tikhonov-regularised normal equations (T + lambda I) x = b — the
     realistic iterative-recon system, and well-conditioned enough that
     the residual 2-norm falls decisively (plain CG residuals need not be
     monotone on ill-conditioned operators). *)
  let n, omega_x, omega_y = small_problem () in
  let t = Imaging.Toeplitz.make ~n ~omega_x ~omega_y () in
  let lambda = 50.0 in
  let apply x =
    let tx = Imaging.Toeplitz.apply t x in
    Cvec.iteri
      (fun k c -> Cvec.set tx k (C.add (Cvec.get tx k) (C.scale lambda c)))
      x;
    tx
  in
  let rng = Random.State.make [| 10 |] in
  let b = Cvec.init (n * n) (fun _ ->
      C.make (Random.State.float rng 2.0 -. 1.0) (Random.State.float rng 2.0 -. 1.0)) in
  let r = Imaging.Cg.solve ~max_iterations:30 ~apply b in
  let h = r.Imaging.Cg.residual_norms in
  Alcotest.(check bool) "history recorded" true (List.length h >= 2);
  let first = List.hd h and last = List.nth h (List.length h - 1) in
  Alcotest.(check bool)
    (Printf.sprintf "residual fell %g -> %g" first last)
    true (last < 0.1 *. first)

let test_iterative_beats_direct () =
  (* CG on the normal equations improves on one-shot density-compensated
     gridding reconstruction — the reason iterative recon exists. *)
  let n = 32 in
  let plan = Nufft.Plan.make ~n () in
  let img = Phantom.make ~n () in
  let traj = Trajectory.Radial.make
      ~spokes:(Trajectory.Radial.fully_sampled_spokes ~n) ~readout:(2 * n) () in
  let samples = Imaging.Recon.acquire plan traj img in
  let density = Trajectory.Radial.density_weights traj in
  let direct = rok (Imaging.Recon.reconstruct ~density plan samples) in
  let direct_err = Metrics.nrmsd_scaled ~reference:img direct in
  let t = Imaging.Toeplitz.make ~n ~omega_x:traj.Trajectory.Traj.omega_x
      ~omega_y:traj.Trajectory.Traj.omega_y () in
  let b = Imaging.Cg.normal_equations_rhs ~plan samples in
  let r = Imaging.Cg.solve ~max_iterations:15 ~tolerance:1e-8
      ~apply:(Imaging.Toeplitz.apply t) b in
  let cg_err = Metrics.nrmsd_scaled ~reference:img r.Imaging.Cg.solution in
  Alcotest.(check bool)
    (Printf.sprintf "cg %.4f < direct %.4f" cg_err direct_err)
    true (cg_err < direct_err)

(* ------------------------------------------------------------------ *)
(* Pipe-Menon density compensation *)

let test_pipe_menon_flattens () =
  let n = 32 in
  let plan = Nufft.Plan.make ~n () in
  let g = plan.Nufft.Plan.g in
  let traj = Trajectory.Radial.make ~spokes:24 ~readout:64 () in
  let gx = Array.map (Nufft.Sample.omega_to_grid ~g) traj.Trajectory.Traj.omega_x in
  let gy = Array.map (Nufft.Sample.omega_to_grid ~g) traj.Trajectory.Traj.omega_y in
  let table = plan.Nufft.Plan.table in
  let uniform = Array.make (Array.length gx) 1.0 in
  let before = Imaging.Density.flatness ~table ~g ~gx ~gy uniform in
  let w = Imaging.Density.pipe_menon ~iterations:10 ~table ~g ~gx ~gy () in
  let after = Imaging.Density.flatness ~table ~g ~gx ~gy w in
  Alcotest.(check bool)
    (Printf.sprintf "flatness %.3f -> %.3f" before after)
    true
    (after < 0.3 *. before);
  Array.iter (fun x -> Alcotest.(check bool) "positive" true (x > 0.0)) w

let test_pipe_menon_recon_quality () =
  (* Pipe-Menon weights should reconstruct at least as well as the
     analytic ramp on radial data. *)
  let n = 32 in
  let plan = Nufft.Plan.make ~n () in
  let g = plan.Nufft.Plan.g in
  let img = Phantom.make ~n () in
  let traj = Trajectory.Radial.make
      ~spokes:(Trajectory.Radial.fully_sampled_spokes ~n) ~readout:(2 * n) () in
  let samples = Imaging.Recon.acquire plan traj img in
  let run density =
    let r = rok (Imaging.Recon.reconstruct ~density plan samples) in
    Metrics.nrmsd_scaled ~reference:img r
  in
  let ramp = run (Trajectory.Radial.density_weights traj) in
  let pm = run (Imaging.Density.pipe_menon ~iterations:12
                  ~table:plan.Nufft.Plan.table ~g
                  ~gx:(Nufft.Sample.gx samples) ~gy:(Nufft.Sample.gy samples) ()) in
  Alcotest.(check bool)
    (Printf.sprintf "pipe-menon %.4f <= 1.2 * ramp %.4f" pm ramp)
    true (pm <= 1.2 *. ramp)

let () =
  Alcotest.run "imaging"
    [ ("phantom",
       [ Alcotest.test_case "basic" `Quick test_phantom_basic;
         Alcotest.test_case "known regions" `Quick test_phantom_known_regions;
         Alcotest.test_case "original variant" `Quick
           test_phantom_original_variant ]);
      ("metrics", [ Alcotest.test_case "all" `Quick test_metrics ]);
      ("pgm", [ Alcotest.test_case "write" `Quick test_pgm_roundtrip_bytes ]);
      ("recon",
       [ Alcotest.test_case "cartesian consistency" `Quick
           test_cartesian_consistency;
         Alcotest.test_case "radial phantom roundtrip" `Quick
           test_radial_roundtrip;
         Alcotest.test_case "undersampling degrades" `Quick
           test_undersampling_degrades ]);
      ("density",
       [ Alcotest.test_case "pipe-menon flattens" `Quick
           test_pipe_menon_flattens;
         Alcotest.test_case "recon quality" `Quick
           test_pipe_menon_recon_quality ]);
      ("toeplitz",
       [ Alcotest.test_case "matches A^H A" `Quick
           test_toeplitz_matches_normal_operator;
         Alcotest.test_case "hermitian" `Quick test_toeplitz_hermitian;
         Alcotest.test_case "positive semidefinite" `Quick test_toeplitz_psd ]);
      ("cg",
       [ Alcotest.test_case "diagonal system" `Quick test_cg_diagonal;
         Alcotest.test_case "residual decreases" `Quick
           test_cg_residual_decreases;
         Alcotest.test_case "iterative beats direct" `Quick
           test_iterative_beats_direct ]) ]
