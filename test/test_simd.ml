(* Differential suite for the SIMD kernel layer.

   Contract under test: every C kernel (scalar, and whichever vector ISA
   the host exposes) agrees with its OCaml twin within 4 ULP per element
   — the kernels preserve the scalar operation order, so in practice the
   results are bitwise equal, and the ULP budget is headroom, not
   licence. Both the forced-scalar leg and the auto-detected leg run in
   this one binary via [Simd.with_impl]; on a host without a vector ISA
   the implementation list collapses to scalar C alone.

   Levels exercised: raw kernel edge cases (empty streams), Sample_plan
   spread/gather replay on random plans, region-sharded parallel replay
   across pool sizes, Fft1d batched butterfly lines at random offsets and
   counts, Apodization row scaling (including in-place aliasing), and a
   full compiled adjoint in 2D and 3D. *)

module C = Numerics.Complexd
module Cvec = Numerics.Cvec
module Sample = Nufft.Sample
module Sample_plan = Nufft.Sample_plan
module Plan = Nufft.Plan
module Apodization = Nufft.Apodization
module Pool = Runtime.Pool

(* Forced scalar C plus whatever startup detection found; deduplicated so
   a scalar-only host does not run the same leg twice. *)
let impls = List.sort_uniq compare [ Simd.Scalar; Simd.available ]

let ulp_budget = 4L

(* Map the IEEE bit pattern onto a monotonic integer line so that the
   difference counts representable doubles between the two values,
   across the zero crossing included. *)
let ordered_bits x =
  let b = Int64.bits_of_float x in
  if Int64.compare b 0L >= 0 then b else Int64.sub Int64.min_int b

let ulp_diff a b =
  if a = b then 0L
  else Int64.abs (Int64.sub (ordered_bits a) (ordered_bits b))

let check_float_ulp name k part reference actual =
  if Int64.compare (ulp_diff reference actual) ulp_budget > 0 then
    Alcotest.failf "%s: %s[%d] differs by > %Ld ULP: %.17g vs %.17g" name part
      k ulp_budget reference actual

let check_cvec_ulp name reference actual =
  if Cvec.length reference <> Cvec.length actual then
    Alcotest.failf "%s: length %d vs %d" name (Cvec.length reference)
      (Cvec.length actual);
  for k = 0 to Cvec.length reference - 1 do
    check_float_ulp name k "re"
      (Cvec.unsafe_get_re reference k)
      (Cvec.unsafe_get_re actual k);
    check_float_ulp name k "im"
      (Cvec.unsafe_get_im reference k)
      (Cvec.unsafe_get_im actual k)
  done

let rand_cvec rng n =
  Cvec.init n (fun _ ->
      C.make
        (Random.State.float rng 2.0 -. 1.0)
        (Random.State.float rng 2.0 -. 1.0))

(* ------------------------------------------------------------------ *)
(* Raw kernel edge cases: empty streams and zero-length rows must be
   no-ops under every implementation (the C side guards the p = len/m
   divisions). *)

let test_empty_streams () =
  List.iter
    (fun impl ->
      Simd.with_impl impl (fun () ->
          if Simd.enabled () then begin
            let nm = Simd.impl_name impl in
            let out = Cvec.create 4 in
            Simd.spread (Cvec.create 0) [||] [||] out;
            Simd.spread_shard (Cvec.create 0) [||] [||] [||] out;
            Simd.deapod_row out 0 out 0 [||] 0 0 1.0 1.0;
            check_cvec_ulp (nm ^ " empty spread/shard/deapod")
              (Cvec.create 4) out;
            let acc = Cvec.create 0 in
            Simd.gather (Cvec.create 4) [||] [||] acc 0 0
          end))
    impls

(* ------------------------------------------------------------------ *)
(* Sample_plan replay: spread and gather on random plans (random window
   width, dimensionality, sample count including zero) against the OCaml
   replay loops. *)

let prop_spread_gather =
  QCheck.Test.make
    ~name:"spread/gather replay: every impl within 4 ULP of the OCaml loop"
    ~count:40
    QCheck.(
      quad (int_range 0 10_000) (* seed *)
        (int_range 0 80) (* m *)
        (int_range 2 3) (* dims *)
        (int_range 2 6) (* w *))
    (fun (seed, m, dims, w) ->
      let n = if dims = 2 then 12 else 5 in
      let g = 2 * n in
      let plan = Plan.make ~w ~n () in
      let s = Sample.random ~seed ~dims ~g m in
      let sp = Plan.compiled plan s in
      let values = s.Sample.values in
      let reference = Sample_plan.spread sp values in
      let grid =
        Cvec.init (Sample_plan.grid_length sp) (fun k ->
            C.make (cos (0.01 *. float_of_int k)) (sin (0.03 *. float_of_int k)))
      in
      let gather_ref = Sample_plan.gather sp grid in
      List.iter
        (fun impl ->
          let nm = Simd.impl_name impl in
          Simd.with_impl impl (fun () ->
              check_cvec_ulp
                (Printf.sprintf "spread %s m=%d dims=%d w=%d" nm m dims w)
                reference
                (Sample_plan.spread ~simd:true sp values);
              check_cvec_ulp
                (Printf.sprintf "gather %s m=%d dims=%d w=%d" nm m dims w)
                gather_ref
                (Sample_plan.gather ~simd:true sp grid)))
        impls;
      true)

(* ------------------------------------------------------------------ *)
(* Region-sharded replay: the shard kernel streams entries strictly one
   at a time, so every pool size must stay within the ULP budget of the
   serial OCaml spread (in practice: bitwise). *)

let pool_sizes = [ 1; 2; 3; 4; 7 ]

let test_shard_replay () =
  let plan = Plan.make ~n:16 () in
  let s = Sample.random ~seed:77 ~dims:2 ~g:32 300 in
  let sp = Plan.compiled plan s in
  let reference = Sample_plan.spread sp s.Sample.values in
  List.iter
    (fun impl ->
      Simd.with_impl impl (fun () ->
          List.iter
            (fun d ->
              let pool = Pool.create ~domains:d () in
              Fun.protect
                ~finally:(fun () -> Pool.shutdown pool)
                (fun () ->
                  check_cvec_ulp
                    (Printf.sprintf "shard replay %s pool=%d"
                       (Simd.impl_name impl) d)
                    reference
                    (Sample_plan.spread_parallel ~pool ~simd:true sp
                       s.Sample.values)))
            pool_sizes))
    impls

(* ------------------------------------------------------------------ *)
(* Batched butterfly lines: random power-of-two lengths (including 1 and
   2), random line counts, random leading offset, both directions; the
   untouched prefix and tail are part of the comparison, so an
   out-of-range vector store fails the test. *)

let prop_fft_batch =
  QCheck.Test.make
    ~name:"fft_batch lines: every impl within 4 ULP of the OCaml butterflies"
    ~count:60
    QCheck.(
      quad (int_range 0 10_000) (* seed *)
        (int_range 0 7) (* log2 len *)
        (int_range 1 5) (* count *)
        (pair (int_range 0 9) bool) (* leading offset, direction *))
    (fun (seed, logn, count, (off, fwd)) ->
      let len = 1 lsl logn in
      let dir = if fwd then Fft.Dft.Forward else Fft.Dft.Inverse in
      let rng = Random.State.make [| seed |] in
      let base = rand_cvec rng (off + (count * len) + 3) in
      let run impl =
        let v = Cvec.copy base in
        Simd.with_impl impl (fun () ->
            Fft.Fft1d.transform_batch dir v ~off ~count ~len);
        v
      in
      let reference = run Simd.Off in
      List.iter
        (fun impl ->
          check_cvec_ulp
            (Printf.sprintf "fft_batch %s len=%d count=%d off=%d"
               (Simd.impl_name impl) len count off)
            reference (run impl))
        impls;
      true)

(* ------------------------------------------------------------------ *)
(* Deapodization row scaling: random lengths (including 0 and 1) and
   offsets, 2D (fz = 1.0) and 3D factor shapes, against the OCaml loop;
   a separate case checks the in-place aliasing pattern used by
   [Apodization.divide_2d]. *)

let prop_deapod_row =
  QCheck.Test.make
    ~name:"deapod row: every impl within 4 ULP of the OCaml loop" ~count:100
    QCheck.(pair (int_range 0 10_000) (int_range 0 50))
    (fun (seed, len) ->
      let rng = Random.State.make [| seed |] in
      let doff = Random.State.int rng 4
      and soff = Random.State.int rng 4
      and foff = Random.State.int rng 4 in
      let fy = 0.5 +. Random.State.float rng 1.5 in
      let fz =
        if Random.State.bool rng then 1.0
        else 0.5 +. Random.State.float rng 1.5
      in
      let f =
        Array.init (foff + len) (fun _ ->
            0.5 +. Random.State.float rng 1.5)
      in
      let src = rand_cvec rng (soff + len) in
      let dst0 = rand_cvec rng (doff + len + 2) in
      let run impl =
        let dst = Cvec.copy dst0 in
        Simd.with_impl impl (fun () ->
            Apodization.scale_row_into ~dst ~dst_off:doff ~src ~src_off:soff
              ~f ~f_off:foff ~len ~fy ~fz);
        dst
      in
      let reference = run Simd.Off in
      List.iter
        (fun impl ->
          check_cvec_ulp
            (Printf.sprintf "deapod %s len=%d doff=%d soff=%d foff=%d"
               (Simd.impl_name impl) len doff soff foff)
            reference (run impl))
        impls;
      true)

let test_deapod_in_place () =
  let rng = Random.State.make [| 4242 |] in
  let len = 33 in
  let f = Array.init len (fun _ -> 0.5 +. Random.State.float rng 1.5) in
  let base = rand_cvec rng len in
  let run impl =
    let v = Cvec.copy base in
    Simd.with_impl impl (fun () ->
        Apodization.scale_row_into ~dst:v ~dst_off:0 ~src:v ~src_off:0 ~f
          ~f_off:0 ~len ~fy:1.25 ~fz:1.0);
    v
  in
  let reference = run Simd.Off in
  List.iter
    (fun impl ->
      check_cvec_ulp
        ("in-place deapod " ^ Simd.impl_name impl)
        reference (run impl))
    impls

(* ------------------------------------------------------------------ *)
(* End to end: a full compiled adjoint (spread + FFT passes + crop with
   deapodization) with every stage dispatched through the kernels, vs
   the same plan with dispatch off. *)

let test_adjoint_end_to_end () =
  List.iter
    (fun dims ->
      let n = if dims = 2 then 16 else 6 in
      let g = 2 * n in
      let plan = Plan.make ~n () in
      let s = Sample.random ~seed:(50 + dims) ~dims ~g 200 in
      let reference =
        Simd.with_impl Simd.Off (fun () -> Plan.adjoint_compiled plan s)
      in
      List.iter
        (fun impl ->
          Simd.with_impl impl (fun () ->
              check_cvec_ulp
                (Printf.sprintf "%dd adjoint %s" dims (Simd.impl_name impl))
                reference
                (Plan.adjoint_compiled ~simd:true plan s)))
        impls)
    [ 2; 3 ]

let () =
  let quick f = List.map (fun (name, g) -> (name, `Quick, g)) f in
  Alcotest.run "simd"
    [ ("kernels", quick [ ("empty streams", test_empty_streams) ]);
      ( "replay",
        Qutil.to_alcotests [ prop_spread_gather ]
        @ quick [ ("sharded replay across pools", test_shard_replay) ] );
      ("fft", Qutil.to_alcotests [ prop_fft_batch ]);
      ( "deapod",
        Qutil.to_alcotests [ prop_deapod_row ]
        @ quick [ ("in-place row", test_deapod_in_place) ] );
      ( "end-to-end",
        quick [ ("compiled adjoint 2d/3d", test_adjoint_end_to_end) ] )
    ]
