(* Metamorphic conformance suite: algebraic identities every NuFFT
   backend must satisfy, checked property-based over random coordinate
   sets for every registry entry in 2D and 3D.

   - linearity      A(a x + b y) = a A x + b A y (forward and adjoint)
   - adjointness    <A x, y> = <x, A^H y> (Hermitian inner product)
   - phase ramp     evaluating at coordinates shifted by a constant
                    delta equals evaluating the image modulated by the
                    conjugate phase ramp: with the forward convention
                    s(u) = sum_c x_c e^{-2 pi i u.c / g} (centred pixel
                    index c), s(u + delta) = forward(x .* ramp) where
                    ramp_c = e^{-2 pi i delta c_x / g}.

   The CPU and gpusim backends compute in floating point, where the
   identities hold to accumulation order (linearity, adjointness) or to
   the window's approximation error (phase ramp — both sides approximate
   the same trigonometric polynomial through different coordinate sets).
   The jigsaw backends quantize sample values and weights to Q1.15 on
   the adjoint path, which is *not* exactly linear, so their tolerance
   is the quantization step scaled by the per-sample fan-out w^dims
   (same derivation as test_operator.fixed_tol). The shift delta is kept
   dyadic (0.5) so the hardware coordinate snapping commutes with it. *)

module Op = Nufft.Operator
module Sample = Nufft.Sample
module Cvec = Numerics.Cvec
module C = Numerics.Complexd
module Fp = Numerics.Fixed_point

let () =
  Jigsaw.Operator_backend.register ();
  Gpusim.Operator_backend.register ()

let is_jigsaw name = String.length name >= 6 && String.sub name 0 6 = "jigsaw"

let rec pow b e = if e = 0 then 1 else b * pow b (e - 1)

let fixed_tol ~dims ~w = 8.0 *. Fp.quantization_error_bound Fp.q15
                         *. float_of_int (pow w dims)

let random_cvec ~seed ?(scale = 0.5) len =
  let rng = Random.State.make [| seed |] in
  Cvec.init len (fun _ ->
      C.make
        (scale *. (Random.State.float rng 2.0 -. 1.0))
        (scale *. (Random.State.float rng 2.0 -. 1.0)))

(* || a - b || / max(||a||, ||b||); 0 when both are ~0. *)
let rel_err a b =
  let n = Cvec.length a in
  assert (Cvec.length b = n);
  let d2 = ref 0.0 and a2 = ref 0.0 and b2 = ref 0.0 in
  for i = 0 to n - 1 do
    let da = Cvec.get a i and db = Cvec.get b i in
    let d = C.sub da db in
    d2 := !d2 +. (C.norm d ** 2.0);
    a2 := !a2 +. (C.norm da ** 2.0);
    b2 := !b2 +. (C.norm db ** 2.0)
  done;
  let denom = Float.max (sqrt !a2) (sqrt !b2) in
  if denom <= 1e-300 then 0.0 else sqrt !d2 /. denom

let geometry = function 2 -> (12, 72) | _ -> (8, 48)

(* Plan-geometry modes the whole suite runs under: the default explicit
   geometry (Kaiser-Bessel, w = 6, l = 512) and a tolerance-driven ES
   plan (tol = 1e-4 derives w = 6, l = 8192 — the same width, so the
   fixed-point tolerance derivation applies unchanged). Every registered
   backend must satisfy the identities under both. *)
type mode = Default | Es_tol

let mode_name = function Default -> "" | Es_tol -> " [es tol=1e-4]"
let all_modes = [ Default; Es_tol ]

let mk_op mode name ~n coords =
  match mode with
  | Default -> Op.create name (Op.context ~n ~coords ())
  | Es_tol ->
      Op.create name
        (Op.context ~tol:1e-4 ~family:Numerics.Window.ES ~n ~coords ())

let lincomb a x b y =
  let len = Cvec.length x in
  Cvec.init len (fun i ->
      C.add (C.scale a (Cvec.get x i)) (C.scale b (Cvec.get y i)))

(* ------------------------------------------------------------------ *)
(* Linearity. The forward path is pure floating point for every backend
   (jigsaw interpolates through its software plan), so it must be linear
   to rounding; the adjoint tolerance widens to the quantization bound
   for the fixed-point engines. *)

let prop_linearity mode name dims =
  let n, m = geometry dims in
  let g = 2 * n in
  QCheck.Test.make
    ~name:(Printf.sprintf "linearity: %s %dD%s" name dims (mode_name mode))
    ~count:5
    QCheck.(
      triple (int_range 0 100_000)
        (float_range (-1.0) 1.0)
        (float_range (-1.0) 1.0))
    (fun (seed, a, b) ->
      let coords = Sample.random ~seed ~dims ~g m in
      let op = mk_op mode name ~n coords in
      let len = Op.image_length op in
      (* forward *)
      let x = random_cvec ~seed:(seed + 1) len
      and y = random_cvec ~seed:(seed + 2) len in
      let lhs_f =
        (Op.apply_forward op (lincomb a x b y)).Sample.values
      in
      let fx = (Op.apply_forward op x).Sample.values in
      let fy = (Op.apply_forward op y).Sample.values in
      let e_fwd = rel_err lhs_f (lincomb a fx b fy) in
      (* adjoint *)
      let u = random_cvec ~seed:(seed + 3) m
      and v = random_cvec ~seed:(seed + 4) m in
      let adj vals = Op.apply_adjoint op (Sample.with_values coords vals) in
      let lhs_a = adj (lincomb a u b v) in
      let e_adj = rel_err lhs_a (lincomb a (adj u) b (adj v)) in
      let tol_adj = if is_jigsaw name then fixed_tol ~dims ~w:6 else 1e-9 in
      if e_fwd >= 1e-9 then
        QCheck.Test.fail_reportf "forward nonlinear: err %.3e" e_fwd
      else if e_adj >= tol_adj then
        QCheck.Test.fail_reportf "adjoint nonlinear: err %.3e tol %.3e"
          e_adj tol_adj
      else true)

(* ------------------------------------------------------------------ *)
(* Adjoint dot-test. *)

let prop_adjointness mode name dims =
  let n, m = geometry dims in
  let g = 2 * n in
  QCheck.Test.make
    ~name:(Printf.sprintf "adjointness: %s %dD%s" name dims (mode_name mode))
    ~count:5
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let coords = Sample.random ~seed ~dims ~g m in
      let op = mk_op mode name ~n coords in
      let x = random_cvec ~seed:(seed + 5) (Op.image_length op) in
      let y = Sample.with_values coords (random_cvec ~seed:(seed + 6) m) in
      let ax = Op.apply_forward op x in
      let aty = Op.apply_adjoint op y in
      let lhs = Cvec.dot ax.Sample.values y.Sample.values in
      let rhs = Cvec.dot x aty in
      let err =
        C.norm (C.sub lhs rhs) /. Float.max (C.norm lhs) (C.norm rhs)
      in
      let tol = if is_jigsaw name then fixed_tol ~dims ~w:6 else 1e-10 in
      if err >= tol then
        QCheck.Test.fail_reportf "dot-test err %.3e tol %.3e" err tol
      else true)

(* ------------------------------------------------------------------ *)
(* Phase-ramp shift equivalence. Both sides approximate the same
   trigonometric polynomial through the NuFFT at different coordinate
   sets, so the tolerance is the window approximation error, not machine
   epsilon; the jigsaw backends interpolate from a coarser hardware
   table (L <= 64), which widens it further. *)

let shift_coords ~g ~delta (s : Sample.t) =
  let coords =
    Array.mapi
      (fun axis c ->
        if axis = 0 then
          Array.map
            (fun u ->
              let u' = u +. delta in
              if u' >= float_of_int g then u' -. float_of_int g else u')
            c
        else Array.copy c)
      s.Sample.coords
  in
  Sample.make ~g ~coords ~values:s.Sample.values

let ramp_image ~dims ~n ~g ~delta x =
  let len = Cvec.length x in
  Cvec.init len (fun idx ->
      let ix = idx mod n in
      ignore dims;
      let cx = float_of_int (ix - (n / 2)) in
      let theta = -2.0 *. Float.pi *. delta *. cx /. float_of_int g in
      C.mul (Cvec.get x idx) (C.exp_i theta))

let prop_phase_ramp mode name dims =
  let n, m = geometry dims in
  let g = 2 * n in
  let delta = 0.5 in
  QCheck.Test.make
    ~name:(Printf.sprintf "phase-ramp shift: %s %dD%s" name dims
             (mode_name mode))
    ~count:5
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let coords = Sample.random ~seed ~dims ~g m in
      let op = mk_op mode name ~n coords in
      let op_shifted = mk_op mode name ~n (shift_coords ~g ~delta coords) in
      let x = random_cvec ~seed:(seed + 7) (Op.image_length op) in
      let lhs = (Op.apply_forward op_shifted x).Sample.values in
      let rhs =
        (Op.apply_forward op (ramp_image ~dims ~n ~g ~delta x)).Sample.values
      in
      let err = rel_err lhs rhs in
      let tol = if is_jigsaw name then 1e-2 else 1e-4 in
      if err >= tol then
        QCheck.Test.fail_reportf "phase-ramp err %.3e tol %.3e" err tol
      else true)

(* ------------------------------------------------------------------ *)
(* Type-3 metamorphic properties. The scale/shift decomposition
   ([Plan.make_type3]) is pure floating point, so it must be linear to
   rounding; its adjoint is reached through the swapped plan
   (A^H y = conj(B conj(y)) where B swaps sources and targets, since
   A_{kj} = e^{i s_k . x_j} is symmetric in the two point sets); and on
   integer lattice targets it must agree with the type-1 adjoint of the
   same samples (same sum, two different factorizations). The qcheck
   box property drives random source/target boxes — widths, centres and
   aspect ratios — against the O(M_in M_out) NuDFT oracle under the
   10x accuracy contract. *)

module Plan = Nufft.Plan
module Nudft = Nufft.Nudft
module Transform = Nufft.Transform

let t3_sizes = function 2 -> (60, 40) | _ -> (36, 24)

let random_axes rng ~dims ~scale ~centre m =
  Array.init dims (fun _ ->
      Array.init m (fun _ ->
          centre +. ((Random.State.float rng 2.0 -. 1.0) *. scale)))

let conj_cvec v =
  Cvec.init (Cvec.length v) (fun i -> C.conj (Cvec.get v i))

let prop_t3_linearity dims =
  let m_in, m_out = t3_sizes dims in
  QCheck.Test.make
    ~name:(Printf.sprintf "type-3 linearity: %dD" dims)
    ~count:5
    QCheck.(
      triple (int_range 0 100_000)
        (float_range (-1.0) 1.0)
        (float_range (-1.0) 1.0))
    (fun (seed, a, b) ->
      let rng = Random.State.make [| seed; dims; 0x7e |] in
      let sources = random_axes rng ~dims ~scale:3.0 ~centre:0.0 m_in in
      let targets = random_axes rng ~dims ~scale:10.0 ~centre:0.0 m_out in
      let t3 =
        Plan.make_type3 ~tol:1e-6 ~family:Numerics.Window.ES ~sources
          ~targets ()
      in
      let x = random_cvec ~seed:(seed + 1) m_in
      and y = random_cvec ~seed:(seed + 2) m_in in
      let lhs = Plan.type3_exec t3 (lincomb a x b y) in
      let rhs =
        lincomb a (Plan.type3_exec t3 x) b (Plan.type3_exec t3 y)
      in
      let err = rel_err lhs rhs in
      if err >= 1e-9 then
        QCheck.Test.fail_reportf "type-3 nonlinear: err %.3e" err
      else true)

let prop_t3_adjointness dims =
  let m_in, m_out = t3_sizes dims in
  QCheck.Test.make
    ~name:(Printf.sprintf "type-3 adjointness: %dD" dims)
    ~count:5
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Random.State.make [| seed; dims; 0x7f |] in
      let sources = random_axes rng ~dims ~scale:3.0 ~centre:0.0 m_in in
      let targets = random_axes rng ~dims ~scale:10.0 ~centre:0.0 m_out in
      let tol = 1e-6 in
      let fwd =
        Plan.make_type3 ~tol ~family:Numerics.Window.ES ~sources ~targets ()
      and swapped =
        Plan.make_type3 ~tol ~family:Numerics.Window.ES ~sources:targets
          ~targets:sources ()
      in
      let x = random_cvec ~seed:(seed + 3) m_in
      and y = random_cvec ~seed:(seed + 4) m_out in
      let ax = Plan.type3_exec fwd x in
      let aty = conj_cvec (Plan.type3_exec swapped (conj_cvec y)) in
      let lhs = Cvec.dot ax y and rhs = Cvec.dot x aty in
      let err =
        C.norm (C.sub lhs rhs) /. Float.max (C.norm lhs) (C.norm rhs)
      in
      (* both sides go through a NUFFT approximation, so the identity
         holds to the accuracy contract, not machine precision *)
      if err >= 100.0 *. tol then
        QCheck.Test.fail_reportf "type-3 dot-test err %.3e" err
      else true)

let prop_t3_lattice_equals_type1 dims =
  let n = if dims = 2 then 12 else 8 in
  let m = if dims = 2 then 72 else 48 in
  QCheck.Test.make
    ~name:(Printf.sprintf "type-3 on lattice targets = type-1 adjoint: %dD"
             dims)
    ~count:5
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Random.State.make [| seed; dims; 0x80 |] in
      let omega =
        random_axes rng ~dims ~scale:(Float.pi -. 1e-6) ~centre:0.0 m
      in
      let tol = 1e-6 in
      let plan = Plan.make ~tol ~family:Numerics.Window.ES ~n () in
      let values = random_cvec ~seed:(seed + 5) m in
      let samples =
        if dims = 2 then
          Sample.of_omega_2d ~g:plan.Plan.g ~omega_x:omega.(0)
            ~omega_y:omega.(1) ~values
        else
          Sample.of_omega_3d ~g:plan.Plan.g ~omega_x:omega.(0)
            ~omega_y:omega.(1) ~omega_z:omega.(2) ~values
      in
      let type1 = Plan.adjoint plan samples in
      let t3 =
        Plan.make_type3 ~tol ~family:Numerics.Window.ES ~sources:omega
          ~targets:(Op.lattice_targets ~dims ~n) ()
      in
      let type3 = Plan.type3_exec t3 values in
      let err = rel_err type1 type3 in
      if err >= 100.0 *. tol then
        QCheck.Test.fail_reportf "lattice disagreement: err %.3e" err
      else true)

let prop_t3_random_box dims =
  let m_in, m_out = t3_sizes dims in
  let tol = 1e-4 in
  QCheck.Test.make
    ~name:(Printf.sprintf "type-3 random box vs NuDFT: %dD" dims)
    ~count:8
    QCheck.(
      pair (int_range 0 100_000)
        (pair
           (pair (float_range 0.5 4.0) (float_range (-5.0) 5.0))
           (pair (float_range 2.0 16.0) (float_range (-20.0) 20.0))))
    (fun (seed, ((xscale, x0), (sscale, s0))) ->
      let rng = Random.State.make [| seed; dims; 0x81 |] in
      let sources = random_axes rng ~dims ~scale:xscale ~centre:x0 m_in in
      let targets = random_axes rng ~dims ~scale:sscale ~centre:s0 m_out in
      let values = random_cvec ~seed:(seed + 6) m_in in
      let t3 =
        Plan.make_type3 ~tol ~family:Numerics.Window.ES ~sources ~targets ()
      in
      let fast = Plan.type3_exec t3 values in
      let exact = Nudft.type3 ~sources ~targets ~values in
      let err = Cvec.nrmsd ~reference:exact fast in
      if err >= 10.0 *. tol then
        QCheck.Test.fail_reportf
          "box (xscale %.2f x0 %.2f sscale %.2f s0 %.2f): err %.3e beyond \
           10x contract"
          xscale x0 sscale s0 err
      else true)

(* Registry filtering: hardware-model backends declare type-1/2 only, so
   they are invisible to a type-3 listing and refuse a type-3 context;
   a type-1-built CPU operator refuses apply_type3. *)
let test_t3_registry_filtering () =
  let t3_2d = Op.names ~dims:2 ~transform:Transform.Type3 () in
  Alcotest.(check bool) "serial serves type-3" true (List.mem "serial" t3_2d);
  List.iter
    (fun nm ->
      Alcotest.(check bool) (nm ^ " hidden from type-3 listing") false
        (List.mem nm t3_2d))
    [ "jigsaw-2d"; "gpusim-slice"; "gpusim-binned" ];
  let coords = Sample.random ~seed:3 ~dims:2 ~g:24 32 in
  let ctx3 = Op.context ~transform:Transform.Type3 ~n:12 ~coords () in
  (match Op.create "jigsaw-2d" ctx3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "jigsaw-2d accepted a type-3 context");
  let op1 = Op.create "serial" (Op.context ~n:12 ~coords ()) in
  match Op.apply_type3 op1 (random_cvec ~seed:4 32) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "type-1 operator accepted apply_type3"

let t3_props =
  List.concat_map
    (fun dims ->
      [ prop_t3_linearity dims;
        prop_t3_adjointness dims;
        prop_t3_lattice_equals_type1 dims;
        prop_t3_random_box dims ])
    [ 2; 3 ]

(* ------------------------------------------------------------------ *)

let all_props =
  List.concat_map
    (fun mode ->
      List.concat_map
        (fun dims ->
          List.concat_map
            (fun name ->
              [ prop_linearity mode name dims;
                prop_adjointness mode name dims;
                prop_phase_ramp mode name dims ])
            (Op.names ~dims ()))
        [ 2; 3 ])
    all_modes

let () =
  Alcotest.run "conformance"
    [ ("metamorphic", Qutil.to_alcotests all_props);
      ( "type3",
        Qutil.to_alcotests t3_props
        @ [ Alcotest.test_case "registry filters by transform" `Quick
              test_t3_registry_filtering ] ) ]
