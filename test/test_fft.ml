(* Tests for the FFT substrate: radix-2, Bluestein, 2D/3D, against the naive
   DFT oracle. *)

module C = Numerics.Complexd
module Cvec = Numerics.Cvec

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.17g, got %.17g" msg expected actual

let check_vec ?(eps = 1e-9) msg expected actual =
  if Cvec.length expected <> Cvec.length actual then
    Alcotest.failf "%s: length %d vs %d" msg (Cvec.length expected)
      (Cvec.length actual);
  let d = Cvec.max_abs_diff expected actual in
  if d > eps then Alcotest.failf "%s: max diff %g > %g" msg d eps

let rand_vec rng n =
  Cvec.init n (fun _ ->
      C.make (Random.State.float rng 2.0 -. 1.0) (Random.State.float rng 2.0 -. 1.0))

let test_pow2_helpers () =
  Alcotest.(check bool) "1" true (Fft.Fft1d.is_pow2 1);
  Alcotest.(check bool) "1024" true (Fft.Fft1d.is_pow2 1024);
  Alcotest.(check bool) "12" false (Fft.Fft1d.is_pow2 12);
  Alcotest.(check bool) "0" false (Fft.Fft1d.is_pow2 0);
  Alcotest.(check int) "next 5" 8 (Fft.Fft1d.next_pow2 5);
  Alcotest.(check int) "next 8" 8 (Fft.Fft1d.next_pow2 8);
  Alcotest.(check int) "next 1" 1 (Fft.Fft1d.next_pow2 1)

let test_fft_impulse () =
  (* FFT of a delta is all ones. *)
  let v = Cvec.create 8 in
  Cvec.set v 0 C.one;
  let f = Fft.Fft1d.transformed Fft.Dft.Forward v in
  for k = 0 to 7 do
    check_close ~eps:1e-12 "re" 1.0 (Cvec.get_re f k);
    check_close ~eps:1e-12 "im" 0.0 (Cvec.get_im f k)
  done

let test_fft_single_tone () =
  (* x_j = e^{2 pi i 3 j / 16} has forward FFT = 16 * delta_{k=3}?  With the
     e^{-} forward convention the energy lands on bin 3. *)
  let n = 16 in
  let v = Cvec.init n (fun j ->
      C.exp_i (2.0 *. Float.pi *. 3.0 *. float_of_int j /. float_of_int n)) in
  let f = Fft.Fft1d.transformed Fft.Dft.Forward v in
  for k = 0 to n - 1 do
    let expected = if k = 3 then float_of_int n else 0.0 in
    check_close ~eps:1e-10 (Printf.sprintf "bin %d" k) expected (C.norm (Cvec.get f k))
  done

let test_fft_matches_dft_pow2 () =
  let rng = Random.State.make [| 42 |] in
  List.iter
    (fun n ->
      let v = rand_vec rng n in
      let fft = Fft.Fft1d.transformed Fft.Dft.Forward v in
      let dft = Fft.Dft.transform Fft.Dft.Forward v in
      check_vec ~eps:1e-8 (Printf.sprintf "n=%d fwd" n) dft fft;
      let ifft = Fft.Fft1d.transformed Fft.Dft.Inverse v in
      let idft = Fft.Dft.transform Fft.Dft.Inverse v in
      check_vec ~eps:1e-8 (Printf.sprintf "n=%d inv" n) idft ifft)
    [ 1; 2; 4; 8; 32; 128; 512 ]

let test_fft_matches_dft_bluestein () =
  let rng = Random.State.make [| 7 |] in
  List.iter
    (fun n ->
      let v = rand_vec rng n in
      let fft = Fft.Fft1d.transformed Fft.Dft.Forward v in
      let dft = Fft.Dft.transform Fft.Dft.Forward v in
      check_vec ~eps:1e-7 (Printf.sprintf "n=%d bluestein" n) dft fft)
    [ 3; 5; 6; 7; 12; 15; 48; 96; 100; 384 ]

let test_fft_roundtrip () =
  let rng = Random.State.make [| 11 |] in
  List.iter
    (fun n ->
      let v = rand_vec rng n in
      let f = Fft.Fft1d.transformed Fft.Dft.Forward v in
      let back = Fft.Fft1d.inverse_normalized f in
      check_vec ~eps:1e-9 (Printf.sprintf "n=%d roundtrip" n) v back)
    [ 8; 12; 64; 192 ]

let test_fft_linearity () =
  let rng = Random.State.make [| 3 |] in
  let n = 64 in
  let a = rand_vec rng n and b = rand_vec rng n in
  let sum = Cvec.copy a in
  Cvec.add_inplace sum b;
  let f_sum = Fft.Fft1d.transformed Fft.Dft.Forward sum in
  let fa = Fft.Fft1d.transformed Fft.Dft.Forward a in
  let fb = Fft.Fft1d.transformed Fft.Dft.Forward b in
  Cvec.add_inplace fa fb;
  check_vec ~eps:1e-9 "F(a+b) = F(a)+F(b)" fa f_sum

let test_parseval () =
  let rng = Random.State.make [| 19 |] in
  let n = 256 in
  let v = rand_vec rng n in
  let f = Fft.Fft1d.transformed Fft.Dft.Forward v in
  check_close ~eps:1e-6 "parseval"
    (float_of_int n *. Cvec.norm2 v)
    (Cvec.norm2 f)

let test_fft2d_matches_dft () =
  let rng = Random.State.make [| 23 |] in
  List.iter
    (fun (nx, ny) ->
      let v = rand_vec rng (nx * ny) in
      let fft = Fft.Fftnd.transformed_2d Fft.Dft.Forward ~nx ~ny v in
      let dft = Fft.Dft.transform_2d Fft.Dft.Forward ~nx ~ny v in
      check_vec ~eps:1e-7 (Printf.sprintf "%dx%d" nx ny) dft fft)
    [ (4, 4); (8, 4); (4, 8); (16, 16); (6, 10) ]

let test_fft2d_roundtrip () =
  let rng = Random.State.make [| 29 |] in
  let nx = 32 and ny = 16 in
  let v = rand_vec rng (nx * ny) in
  let f = Fft.Fftnd.transformed_2d Fft.Dft.Forward ~nx ~ny v in
  Fft.Fftnd.transform_2d Fft.Dft.Inverse ~nx ~ny f;
  Cvec.scale_inplace (1.0 /. float_of_int (nx * ny)) f;
  check_vec ~eps:1e-9 "2d roundtrip" v f

let test_fft3d_roundtrip () =
  let rng = Random.State.make [| 31 |] in
  let nx = 8 and ny = 4 and nz = 6 in
  let v = rand_vec rng (nx * ny * nz) in
  let f = Cvec.copy v in
  Fft.Fftnd.transform_3d Fft.Dft.Forward ~nx ~ny ~nz f;
  Fft.Fftnd.transform_3d Fft.Dft.Inverse ~nx ~ny ~nz f;
  Cvec.scale_inplace (1.0 /. float_of_int (nx * ny * nz)) f;
  check_vec ~eps:1e-9 "3d roundtrip" v f

let test_fft3d_separable () =
  (* A rank-1 (separable) input transforms to the product of 1D FFTs. *)
  let nx = 4 and ny = 8 and nz = 2 in
  let rng = Random.State.make [| 37 |] in
  let fx = rand_vec rng nx and fy = rand_vec rng ny and fz = rand_vec rng nz in
  let v = Cvec.create (nx * ny * nz) in
  for z = 0 to nz - 1 do
    for y = 0 to ny - 1 do
      for x = 0 to nx - 1 do
        let p = C.mul (Cvec.get fx x) (C.mul (Cvec.get fy y) (Cvec.get fz z)) in
        Cvec.set v (((z * ny) + y) * nx + x) p
      done
    done
  done;
  Fft.Fftnd.transform_3d Fft.Dft.Forward ~nx ~ny ~nz v;
  let gx = Fft.Fft1d.transformed Fft.Dft.Forward fx in
  let gy = Fft.Fft1d.transformed Fft.Dft.Forward fy in
  let gz = Fft.Fft1d.transformed Fft.Dft.Forward fz in
  for z = 0 to nz - 1 do
    for y = 0 to ny - 1 do
      for x = 0 to nx - 1 do
        let expected =
          C.mul (Cvec.get gx x) (C.mul (Cvec.get gy y) (Cvec.get gz z))
        in
        let got = Cvec.get v (((z * ny) + y) * nx + x) in
        check_close ~eps:1e-8 "sep re" expected.re got.re;
        check_close ~eps:1e-8 "sep im" expected.im got.im
      done
    done
  done

let test_bluestein_primes () =
  let rng = Random.State.make [| 997 |] in
  List.iter
    (fun n ->
      let v = rand_vec rng n in
      let fft = Fft.Fft1d.transformed Fft.Dft.Forward v in
      let dft = Fft.Dft.transform Fft.Dft.Forward v in
      check_vec ~eps:1e-6 (Printf.sprintf "prime n=%d" n) dft fft)
    [ 17; 97; 251; 509 ]

let test_cache_interleaving () =
  (* Exercise the twiddle/bitrev caches across interleaved sizes. *)
  let rng = Random.State.make [| 13 |] in
  let check n =
    let v = rand_vec rng n in
    let fft = Fft.Fft1d.transformed Fft.Dft.Forward v in
    let dft = Fft.Dft.transform Fft.Dft.Forward v in
    check_vec ~eps:1e-8 (Printf.sprintf "interleaved n=%d" n) dft fft
  in
  List.iter check [ 8; 64; 8; 16; 64; 8 ]

let test_fftshift () =
  let nx = 4 and ny = 4 in
  let v = Cvec.init (nx * ny) (fun k -> C.of_float (float_of_int k)) in
  let s = Fft.Fftnd.fftshift_2d ~nx ~ny v in
  (* (0,0) moves to (2,2) = index 10. *)
  check_close ~eps:0.0 "origin to centre" 0.0 (Cvec.get_re s 10);
  let ss = Fft.Fftnd.fftshift_2d ~nx ~ny s in
  check_vec ~eps:0.0 "self inverse (even dims)" v ss

let test_size_mismatch () =
  Alcotest.check_raises "2d size"
    (Invalid_argument "Fftnd.transform_2d: size mismatch") (fun () ->
      Fft.Fftnd.transform_2d Fft.Dft.Forward ~nx:4 ~ny:4 (Cvec.create 8))

let prop_fft_dft_agree =
  QCheck.Test.make ~name:"fft = dft on random sizes" ~count:60
    QCheck.(pair (int_range 1 80) (int_range 0 10000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let v = rand_vec rng n in
      let fft = Fft.Fft1d.transformed Fft.Dft.Forward v in
      let dft = Fft.Dft.transform Fft.Dft.Forward v in
      Cvec.max_abs_diff fft dft <= 1e-7 *. float_of_int (max 1 n))

let prop_roundtrip =
  QCheck.Test.make ~name:"inverse_normalized . forward = id" ~count:60
    QCheck.(pair (int_range 1 128) (int_range 0 10000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let v = rand_vec rng n in
      let back = Fft.Fft1d.inverse_normalized
          (Fft.Fft1d.transformed Fft.Dft.Forward v) in
      Cvec.max_abs_diff v back <= 1e-8)

let qtests = Qutil.to_alcotests [ prop_fft_dft_agree; prop_roundtrip ]

let () =
  Alcotest.run "fft"
    [ ("helpers", [ Alcotest.test_case "pow2" `Quick test_pow2_helpers ]);
      ("fft1d",
       [ Alcotest.test_case "impulse" `Quick test_fft_impulse;
         Alcotest.test_case "single tone" `Quick test_fft_single_tone;
         Alcotest.test_case "matches dft (pow2)" `Quick test_fft_matches_dft_pow2;
         Alcotest.test_case "matches dft (bluestein)" `Quick
           test_fft_matches_dft_bluestein;
         Alcotest.test_case "bluestein primes" `Quick test_bluestein_primes;
         Alcotest.test_case "cache interleaving" `Quick test_cache_interleaving;
         Alcotest.test_case "roundtrip" `Quick test_fft_roundtrip;
         Alcotest.test_case "linearity" `Quick test_fft_linearity;
         Alcotest.test_case "parseval" `Quick test_parseval ]);
      ("fftnd",
       [ Alcotest.test_case "2d matches dft" `Quick test_fft2d_matches_dft;
         Alcotest.test_case "2d roundtrip" `Quick test_fft2d_roundtrip;
         Alcotest.test_case "3d roundtrip" `Quick test_fft3d_roundtrip;
         Alcotest.test_case "3d separable" `Quick test_fft3d_separable;
         Alcotest.test_case "fftshift" `Quick test_fftshift;
         Alcotest.test_case "size mismatch" `Quick test_size_mismatch ]);
      ("properties", qtests) ]
