(* Tests for the JIGSAW hardware model: Table I validation, select-unit
   bit-exactness against the floating-point decomposition, functional
   equivalence of the fixed-point engine with the double-precision
   reference, the cycle/DMA models and the Table II constants. *)

module Cvec = Numerics.Cvec
module C = Numerics.Complexd
module Fp = Numerics.Fixed_point
module Wt = Numerics.Weight_table
module Window = Numerics.Window
module Coord = Nufft.Coord
module Config = Jigsaw.Config

let cfg ?(n = 32) ?(w = 6) ?(l = 32) () = Config.make ~n ~w ~l ()

let table ?(w = 6) ?(l = 32) ?(precision = Wt.Fixed16) () =
  Wt.make ~precision
    ~kernel:(Window.default_kaiser_bessel ~width:w ~sigma:2.0)
    ~width:w ~l ()

(* ------------------------------------------------------------------ *)
(* Config / Table I *)

let test_config_ranges () =
  Alcotest.check_raises "n too big"
    (Invalid_argument "Jigsaw.Config.make: n must be in 8..1024 (Table I)")
    (fun () -> ignore (Config.make ~n:2048 ()));
  Alcotest.check_raises "w range"
    (Invalid_argument "Jigsaw.Config.make: w must be in 1..8 (Table I)")
    (fun () -> ignore (Config.make ~n:64 ~w:9 ()));
  Alcotest.check_raises "l pow2"
    (Invalid_argument "Jigsaw.Config.make: l must be a power of two in 1..64")
    (fun () -> ignore (Config.make ~n:64 ~l:48 ()));
  Alcotest.check_raises "t divides n"
    (Invalid_argument "Jigsaw.Config.make: t must divide n") (fun () ->
      ignore (Config.make ~n:60 ()))

let test_config_derived () =
  let c = Config.make ~n:1024 ~w:8 ~l:64 () in
  Alcotest.(check int) "pipelines" 64 (Config.pipelines c);
  Alcotest.(check int) "tiles/side" 128 (Config.tiles_per_side c);
  Alcotest.(check int) "tiles" 16384 (Config.tiles_total c);
  (* W=8, L=64: 257 entries, exactly the weight SRAM budget. *)
  Alcotest.(check int) "weight sram" 257 (Config.weight_sram_entries c);
  Alcotest.(check bool) "fits sram" true
    (Config.weight_sram_entries c <= Jigsaw.Weight_unit.sram_capacity);
  (* 1024^2 x 8 B = 8 MiB of accumulation SRAM, as in Table II. *)
  Alcotest.(check int) "accum sram" (8 * 1024 * 1024) (Config.accum_sram_bytes c)

let test_coord_conversion () =
  let c = cfg () in
  let u = 13.625 in
  let raw = Config.of_float_coord c u in
  Alcotest.(check (float 1e-12)) "roundtrip" u (Config.to_float_coord c raw)

(* ------------------------------------------------------------------ *)
(* Select unit vs floating-point oracle *)

let prop_select_matches_coord =
  QCheck.Test.make
    ~name:"select unit = Coord.column_check (bit-exact on the coord grid)"
    ~count:3000
    QCheck.(
      quad (int_range 1 8) (* w *) (int_range 0 7) (* pipeline *)
        (int_range 1 8) (* n_tiles *) (int_range 0 ((1 lsl 24) - 1)))
    (fun (w, pipeline, n_tiles, raw_seed) ->
      let n = 8 * n_tiles in
      let c = Config.make ~n ~w ~l:32 () in
      let f = 16 in
      let raw = raw_seed mod (n lsl f) in
      let u = float_of_int raw /. float_of_int (1 lsl f) in
      let hw = Jigsaw.Select_unit.check c ~pipeline raw in
      let sw = Coord.column_check ~w ~t:8 ~g:n ~column:pipeline u in
      match (hw, sw) with
      | None, None -> true
      | Some h, Some s ->
          h.Jigsaw.Select_unit.k_wrapped = s.Coord.k_wrapped
          && h.Jigsaw.Select_unit.tile = s.Coord.tile
          && h.Jigsaw.Select_unit.wrapped = s.Coord.wrapped_tile
          && Float.abs
               ((float_of_int h.Jigsaw.Select_unit.dist_raw
                /. float_of_int (1 lsl f))
               -. s.Coord.dist)
             < 1e-9
      | _ -> false)

let prop_select_table_addr =
  QCheck.Test.make ~name:"select unit table address = LUT addressing"
    ~count:2000
    QCheck.(pair (int_range 0 7) (int_range 0 ((1 lsl 22) - 1)))
    (fun (pipeline, raw_seed) ->
      let c = cfg () in
      let tbl = table () in
      let raw = raw_seed mod (32 lsl 16) in
      match Jigsaw.Select_unit.check c ~pipeline raw with
      | None -> true
      | Some h ->
          let dist =
            float_of_int h.Jigsaw.Select_unit.dist_raw /. float_of_int (1 lsl 16)
          in
          (match Wt.address_of_distance tbl dist with
          | Some a -> a = h.Jigsaw.Select_unit.table_addr
          | None ->
              (* The hardware's one-sided window can land exactly on the
                 last table entry. *)
              h.Jigsaw.Select_unit.table_addr = Wt.entries tbl - 1))

let test_select_validation () =
  let c = cfg () in
  Alcotest.check_raises "coordinate range"
    (Invalid_argument "Select_unit.check: coordinate out of range") (fun () ->
      ignore (Jigsaw.Select_unit.check c ~pipeline:0 (-1)));
  Alcotest.check_raises "pipeline range"
    (Invalid_argument "Select_unit.check: pipeline index out of range")
    (fun () -> ignore (Jigsaw.Select_unit.check c ~pipeline:8 0))

(* ------------------------------------------------------------------ *)
(* Weight unit *)

let test_weight_unit () =
  let c = cfg () in
  let tbl = table () in
  let wu = Jigsaw.Weight_unit.load c tbl in
  (* Entry 0 is the window centre: weight 1.0 -> q15 saturates at 32767. *)
  let w0 = Jigsaw.Weight_unit.read wu 0 in
  Alcotest.(check int) "centre weight" (Fp.max_raw Fp.q15) w0.Fp.Complex.re;
  Alcotest.(check int) "real kernel" 0 w0.Fp.Complex.im;
  (* combine(0,0) ~ 1.0 * 1.0 within q15 rounding. *)
  let c00 = Jigsaw.Weight_unit.combine wu ~addr_x:0 ~addr_y:0 in
  let v = Fp.to_float Fp.q15 c00.Fp.Complex.re in
  Alcotest.(check bool) (Printf.sprintf "w00 %.5f ~ 1" v) true
    (Float.abs (v -. 1.0) < 3e-4);
  (* Monotone along the half-window (Kaiser-Bessel decreases). *)
  let prev = ref max_int in
  for a = 0 to Wt.entries tbl - 1 do
    let e = (Jigsaw.Weight_unit.read wu a).Fp.Complex.re in
    Alcotest.(check bool) "monotone" true (e <= !prev);
    prev := e
  done

let test_weight_unit_mismatch () =
  let c = cfg () in
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Weight_unit.load: table width mismatch") (fun () ->
      ignore (Jigsaw.Weight_unit.load c (table ~w:4 ())))

(* ------------------------------------------------------------------ *)
(* Accumulator *)

let test_accum () =
  let c = cfg () in
  let a = Jigsaw.Accum.create c in
  Alcotest.(check int) "entries" (Config.tiles_total c) (Jigsaw.Accum.entries a);
  Jigsaw.Accum.accumulate a 3 { Fp.Complex.re = 100; im = -50 };
  Jigsaw.Accum.accumulate a 3 { Fp.Complex.re = 20; im = 5 };
  let v = Jigsaw.Accum.read a 3 in
  Alcotest.(check int) "re" 120 v.Fp.Complex.re;
  Alcotest.(check int) "im" (-45) v.Fp.Complex.im;
  Alcotest.(check int) "no saturation" 0 (Jigsaw.Accum.saturation_events a);
  (* Force saturation. *)
  let big = Fp.max_raw c.Config.pipeline_fmt in
  Jigsaw.Accum.accumulate a 0 { Fp.Complex.re = big; im = 0 };
  Jigsaw.Accum.accumulate a 0 { Fp.Complex.re = big; im = 0 };
  Alcotest.(check int) "saturated" 1 (Jigsaw.Accum.saturation_events a);
  Alcotest.(check int) "clamped" big (Jigsaw.Accum.read a 0).Fp.Complex.re

(* ------------------------------------------------------------------ *)
(* Engine 2D: functional equivalence and cycle model *)

(* Random samples with coordinates quantised to the hardware's fixed-point
   coordinate grid, so the CPU reference and the engine see identical
   inputs (otherwise LUT-address rounding can flip at boundaries and the
   comparison measures coordinate quantisation rather than the datapath). *)
let random_samples ~g ~m ~seed =
  let s = Nufft.Sample.random_2d ~seed ~g m in
  let q u = Float.round (u *. 65536.0) /. 65536.0 in
  Nufft.Sample.make_2d ~g ~gx:(Array.map q (Nufft.Sample.gx s))
    ~gy:(Array.map q (Nufft.Sample.gy s)) ~values:s.Nufft.Sample.values

let test_engine_matches_reference () =
  let g = 32 and m = 300 in
  let c = cfg ~n:g () in
  let tbl = table () in
  let s = random_samples ~g ~m ~seed:42 in
  let e = Jigsaw.Engine2d.create c ~table:tbl in
  Jigsaw.Engine2d.stream e ~gx:(Nufft.Sample.gx s) ~gy:(Nufft.Sample.gy s)
    s.Nufft.Sample.values;
  Alcotest.(check int) "samples" m (Jigsaw.Engine2d.samples_streamed e);
  Alcotest.(check int) "no saturation" 0 (Jigsaw.Engine2d.saturation_events e);
  let hw = Jigsaw.Engine2d.readout e in
  (* Double-precision reference over the same (double) table. *)
  let reference =
    Nufft.Gridding_serial.grid_2d
      ~table:(Wt.make ~kernel:(Wt.kernel tbl) ~width:6 ~l:32 ())
      ~g ~gx:(Nufft.Sample.gx s) ~gy:(Nufft.Sample.gy s) s.Nufft.Sample.values
  in
  let err = Cvec.nrmsd ~reference hw in
  Alcotest.(check bool) (Printf.sprintf "nrmsd %.2e < 1e-3" err) true
    (err < 1e-3)

let test_engine_exactness_vs_fixed_reference () =
  (* Against a CPU gridding that uses the same Fixed16 table, the only
     differences are coordinate quantisation and fixed-point products:
     still well under 1e-3 NRMSD. *)
  let g = 32 and m = 200 in
  let c = cfg ~n:g () in
  let tbl = table () in
  let s = random_samples ~g ~m ~seed:7 in
  let e = Jigsaw.Engine2d.create c ~table:tbl in
  Jigsaw.Engine2d.stream e ~gx:(Nufft.Sample.gx s) ~gy:(Nufft.Sample.gy s)
    s.Nufft.Sample.values;
  let hw = Jigsaw.Engine2d.readout e in
  let reference =
    Nufft.Gridding_serial.grid_2d ~table:tbl ~g ~gx:(Nufft.Sample.gx s)
      ~gy:(Nufft.Sample.gy s) s.Nufft.Sample.values
  in
  let err = Cvec.nrmsd ~reference hw in
  Alcotest.(check bool) (Printf.sprintf "nrmsd %.2e" err) true (err < 1e-3)

let test_engine_cycle_model () =
  let c = cfg () in
  let e = Jigsaw.Engine2d.create c ~table:(table ()) in
  let s = random_samples ~g:32 ~m:100 ~seed:1 in
  Jigsaw.Engine2d.stream e ~gx:(Nufft.Sample.gx s) ~gy:(Nufft.Sample.gy s)
    s.Nufft.Sample.values;
  (* The headline property: M + 12 cycles, irrespective of pattern. *)
  Alcotest.(check int) "M+12" 112 (Jigsaw.Engine2d.gridding_cycles e);
  Alcotest.(check (float 1e-15)) "112 ns at 1 GHz" 112e-9
    (Jigsaw.Engine2d.gridding_time_s e)

let test_engine_pattern_independence () =
  (* Same M, radically different orderings: identical cycle count and
     identical grids (order cannot matter: integer adds commute only up to
     saturation, which we verify is absent). *)
  let g = 32 and m = 256 in
  let c = cfg ~n:g () in
  let tbl = table () in
  let s = random_samples ~g ~m ~seed:3 in
  let run gx gy values =
    let e = Jigsaw.Engine2d.create c ~table:tbl in
    Jigsaw.Engine2d.stream e ~gx ~gy values;
    (Jigsaw.Engine2d.gridding_cycles e, Jigsaw.Engine2d.readout e,
     Jigsaw.Engine2d.saturation_events e)
  in
  let cy1, grid1, sat1 = run (Nufft.Sample.gx s) (Nufft.Sample.gy s) s.Nufft.Sample.values in
  (* Reverse the stream order. *)
  let rev a = Array.init (Array.length a) (fun i -> a.(Array.length a - 1 - i)) in
  let values_rev =
    Cvec.init m (fun j -> Cvec.get s.Nufft.Sample.values (m - 1 - j))
  in
  let cy2, grid2, sat2 = run (rev (Nufft.Sample.gx s)) (rev (Nufft.Sample.gy s)) values_rev in
  Alcotest.(check int) "same cycles" cy1 cy2;
  Alcotest.(check int) "no saturation 1" 0 sat1;
  Alcotest.(check int) "no saturation 2" 0 sat2;
  Alcotest.(check (float 0.0)) "identical grids" 0.0
    (Cvec.max_abs_diff grid1 grid2)

let test_engine_reset () =
  let c = cfg () in
  let e = Jigsaw.Engine2d.create c ~table:(table ()) in
  let s = random_samples ~g:32 ~m:10 ~seed:9 in
  Jigsaw.Engine2d.stream e ~gx:(Nufft.Sample.gx s) ~gy:(Nufft.Sample.gy s)
    s.Nufft.Sample.values;
  Jigsaw.Engine2d.reset e;
  Alcotest.(check int) "samples cleared" 0 (Jigsaw.Engine2d.samples_streamed e);
  let grid = Jigsaw.Engine2d.readout e in
  Alcotest.(check (float 0.0)) "grid cleared" 0.0 (Cvec.norm2 grid)

let test_engine_full_scale_config () =
  (* The paper's maximum configuration: N = 1024, W = 8, L = 64 — the
     exact point that fills the weight SRAM and the 8 MiB accumulation
     SRAM. Smoke-stream a few hundred samples. *)
  let cfg' = Config.make ~n:1024 ~w:8 ~l:64 () in
  let tbl = table ~w:8 ~l:64 () in
  let e = Jigsaw.Engine2d.create cfg' ~table:tbl in
  let s = random_samples ~g:1024 ~m:300 ~seed:2026 in
  Jigsaw.Engine2d.stream e ~gx:(Nufft.Sample.gx s) ~gy:(Nufft.Sample.gy s)
    s.Nufft.Sample.values;
  Alcotest.(check int) "cycles" 312 (Jigsaw.Engine2d.gridding_cycles e);
  Alcotest.(check int) "no saturation" 0 (Jigsaw.Engine2d.saturation_events e);
  let grid = Jigsaw.Engine2d.readout e in
  Alcotest.(check int) "readout size" (1024 * 1024) (Cvec.length grid);
  Alcotest.(check bool) "nonzero mass" true (Cvec.norm2 grid > 0.0)

let test_engine_deterministic () =
  let c = cfg () in
  let tbl = table () in
  let run () =
    let e = Jigsaw.Engine2d.create c ~table:tbl in
    let s = random_samples ~g:32 ~m:64 ~seed:15 in
    Jigsaw.Engine2d.stream e ~gx:(Nufft.Sample.gx s) ~gy:(Nufft.Sample.gy s)
      s.Nufft.Sample.values;
    Jigsaw.Engine2d.readout e
  in
  Alcotest.(check (float 0.0)) "bitwise identical runs" 0.0
    (Cvec.max_abs_diff (run ()) (run ()))

let test_dma_monotonic () =
  let c = Config.make ~n:256 () in
  let t1 = Jigsaw.Dma.end_to_end_cycles c ~m:1000 in
  let t2 = Jigsaw.Dma.end_to_end_cycles c ~m:2000 in
  Alcotest.(check int) "exactly +1000 cycles" (t1 + 1000) t2;
  Alcotest.(check bool) "time positive" true
    (Jigsaw.Dma.end_to_end_time_s c ~m:1000 > 0.0)

(* ------------------------------------------------------------------ *)
(* Engine 3D *)

let test_engine3d_slices () =
  let g = 16 and m = 60 and nz = 8 in
  let c = Config.make ~n:g ~w:4 ~l:32 () in
  let tbl = table ~w:4 () in
  let e3 = Jigsaw.Engine3d.create c ~table:tbl ~nz in
  let rng = Random.State.make [| 5 |] in
  let gx = Array.init m (fun _ -> Random.State.float rng (float_of_int g)) in
  let gy = Array.init m (fun _ -> Random.State.float rng (float_of_int g)) in
  let gz = Array.init m (fun _ -> Random.State.float rng (float_of_int nz)) in
  let values =
    Cvec.init m (fun _ ->
        C.make (Random.State.float rng 0.2) (Random.State.float rng 0.2))
  in
  let slices = Jigsaw.Engine3d.grid_volume e3 ~gx ~gy ~gz values in
  Alcotest.(check int) "nz slices" nz (Array.length slices);
  Array.iter
    (fun s -> Alcotest.(check int) "slice size" (g * g) (Cvec.length s))
    slices;
  (* Total mass: every sample contributes its x-sum * y-sum * z-sum. *)
  let total =
    Array.fold_left
      (fun acc s -> C.add acc (Cvec.fold (fun a v -> C.add a v) C.zero s))
      C.zero slices
  in
  Alcotest.(check bool) "mass nonzero" true (C.norm total > 0.0);
  Alcotest.(check int) "cycles unsorted" ((m + 15) * nz)
    (Jigsaw.Engine3d.unsorted_cycles e3 ~m);
  Alcotest.(check int) "cycles z-sorted" ((m + 15) * 4)
    (Jigsaw.Engine3d.z_sorted_cycles e3 ~m);
  Alcotest.(check int) "no saturation" 0 (Jigsaw.Engine3d.saturation_events e3)

let test_engine3d_z_locality () =
  (* A sample at z = 2.0 (w = 4): the canonical window covers slices 1..4
     (kmax = floor(2+2) = 4, start = 1), but the slice at distance exactly
     w/2 = 2 receives the window's edge weight, which is 0 — so only
     slices 1..3 carry mass. *)
  let g = 16 and nz = 8 in
  let c = Config.make ~n:g ~w:4 ~l:32 () in
  let e3 = Jigsaw.Engine3d.create c ~table:(table ~w:4 ()) ~nz in
  let slices =
    Jigsaw.Engine3d.grid_volume e3 ~gx:[| 8.0 |] ~gy:[| 8.0 |] ~gz:[| 2.0 |]
      (Cvec.of_complex_array [| C.make 0.5 0.0 |])
  in
  Array.iteri
    (fun z s ->
      let mass = Cvec.norm2 s in
      if z >= 1 && z <= 3 then
        Alcotest.(check bool) (Printf.sprintf "slice %d touched" z) true
          (mass > 0.0)
      else
        Alcotest.(check bool) (Printf.sprintf "slice %d empty" z) true
          (mass = 0.0))
    slices

(* ------------------------------------------------------------------ *)
(* DMA and synthesis models *)

let test_dma_model () =
  let c = Config.make ~n:1024 () in
  Alcotest.(check int) "input" 50000 (Jigsaw.Dma.input_cycles ~m:50000);
  Alcotest.(check int) "readout" (1024 * 1024 / 2) (Jigsaw.Dma.readout_cycles c);
  Alcotest.(check int) "end to end"
    (50000 + 12 + (1024 * 1024 / 2))
    (Jigsaw.Dma.end_to_end_cycles c ~m:50000);
  Alcotest.(check (float 1e-9)) "bandwidth 16 GB/s" 16.0
    (Jigsaw.Dma.bandwidth_gb_s c)

let test_synthesis_table () =
  let m2d = Jigsaw.Synthesis.with_accum_sram Jigsaw.Synthesis.Two_d in
  Alcotest.(check (float 1e-9)) "2d power" 216.86 m2d.Jigsaw.Synthesis.power_mw;
  Alcotest.(check (float 1e-9)) "2d area" 12.20 m2d.Jigsaw.Synthesis.area_mm2;
  let sram = Jigsaw.Synthesis.sram_contribution Jigsaw.Synthesis.Two_d in
  (* ~95% of area and >56% of power is the accumulation SRAM (paper VI-B). *)
  Alcotest.(check bool) "sram area share" true
    (sram.Jigsaw.Synthesis.area_mm2 /. m2d.Jigsaw.Synthesis.area_mm2 > 0.95);
  Alcotest.(check bool) "sram power share" true
    (sram.Jigsaw.Synthesis.power_mw /. m2d.Jigsaw.Synthesis.power_mw > 0.56);
  Alcotest.(check int) "four rows" 4 (List.length Jigsaw.Synthesis.table)

let test_synthesis_energy () =
  (* 1 M cycles at 1 GHz = 1 ms at 216.86 mW = 216.86 uJ. *)
  let e =
    Jigsaw.Synthesis.energy_j ~cycles:1_000_000 ~clock_ghz:1.0 ()
  in
  Alcotest.(check (float 1e-12)) "energy" 216.86e-6 e

let qtests =
  Qutil.to_alcotests
    [ prop_select_matches_coord; prop_select_table_addr ]

let () =
  Alcotest.run "jigsaw"
    [ ("config",
       [ Alcotest.test_case "table I ranges" `Quick test_config_ranges;
         Alcotest.test_case "derived sizes" `Quick test_config_derived;
         Alcotest.test_case "coordinate conversion" `Quick test_coord_conversion ]);
      ("select",
       [ Alcotest.test_case "validation" `Quick test_select_validation ]);
      ("weight",
       [ Alcotest.test_case "sram" `Quick test_weight_unit;
         Alcotest.test_case "mismatch" `Quick test_weight_unit_mismatch ]);
      ("accum", [ Alcotest.test_case "accumulate/saturate" `Quick test_accum ]);
      ("engine2d",
       [ Alcotest.test_case "matches double reference" `Quick
           test_engine_matches_reference;
         Alcotest.test_case "matches fixed-table reference" `Quick
           test_engine_exactness_vs_fixed_reference;
         Alcotest.test_case "M+12 cycle model" `Quick test_engine_cycle_model;
         Alcotest.test_case "pattern independence" `Quick
           test_engine_pattern_independence;
         Alcotest.test_case "reset" `Quick test_engine_reset;
         Alcotest.test_case "full-scale config (N=1024,W=8,L=64)" `Quick
           test_engine_full_scale_config;
         Alcotest.test_case "deterministic" `Quick test_engine_deterministic ]);
      ("engine3d",
       [ Alcotest.test_case "slices" `Quick test_engine3d_slices;
         Alcotest.test_case "z locality" `Quick test_engine3d_z_locality ]);
      ("dma",
       [ Alcotest.test_case "stream model" `Quick test_dma_model;
         Alcotest.test_case "monotonic" `Quick test_dma_monotonic ]);
      ("synthesis",
       [ Alcotest.test_case "table II" `Quick test_synthesis_table;
         Alcotest.test_case "energy" `Quick test_synthesis_energy ]);
      ("properties", qtests) ]
