(* Fault-injection and lifecycle battery for the serving tier: shedding
   under a full admission queue, deterministic graceful drain on a
   latch, mid-request disconnects, slow-loris timeouts, malformed and
   oversized frames — all answered with typed errors, no exception
   escaping a worker or connection thread, and no arena or plan-cache
   leakage (asserted through Workspace/Plan_cache counters). *)

module P = Serving.Protocol
module S = Serving.Server
module C = Serving.Client
module Prom = Serving.Prometheus

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let wait_until ?(timeout = 10.0) ?(what = "condition") pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () >= deadline then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Thread.delay 0.01;
      go ()
    end
  in
  go ()

let with_server ?config ?handler f =
  let t = S.create ?config ?handler () in
  S.start t;
  Fun.protect ~finally:(fun () -> ignore (S.stop ~timeout_s:20.0 t)) (fun () -> f t)

let quick_config =
  { S.default_config with queue_capacity = 8; workers = 1;
    read_timeout_s = 5.0 }

(* ------------------------------------------------------------------ *)
(* Latch: a handler the test releases explicitly, making queue depth and
   drain timing deterministic. *)

type latch = {
  lm : Mutex.t;
  lc : Condition.t;
  mutable open_ : bool;
  mutable entered : int;
}

let latch () =
  { lm = Mutex.create (); lc = Condition.create (); open_ = false; entered = 0 }

let latch_entered l =
  Mutex.lock l.lm;
  let n = l.entered in
  Mutex.unlock l.lm;
  n

let latch_open l =
  Mutex.lock l.lm;
  l.open_ <- true;
  Condition.broadcast l.lc;
  Mutex.unlock l.lm

let dummy_response =
  { P.iterations = 0; elapsed_s = 0.0; image_n = 2; image_dims = 2;
    image = [| 0.0; 0.0 |] }

let latch_handler l _req =
  Mutex.lock l.lm;
  l.entered <- l.entered + 1;
  while not l.open_ do
    Condition.wait l.lc l.lm
  done;
  Mutex.unlock l.lm;
  Ok dummy_response

let tiny_recon ?(tenant = "t") ?(m = 4) () =
  { P.tenant; backend = ""; transform = Nufft.Transform.Type1;
    n = 8; dims = 2; method_ = P.Adjoint; tol = None;
    family = None;
    omega =
      [| Array.init m (fun j -> -3.0 +. (0.37 *. float_of_int j));
         Array.init m (fun j -> 3.0 -. (0.53 *. float_of_int j)) |];
    values = Array.init (2 * m) (fun j -> float_of_int (j + 1));
    density = None }

let call_recon port req =
  let c = C.connect ~port () in
  Fun.protect ~finally:(fun () -> C.close c) (fun () ->
      C.call c (P.Recon req))

(* ------------------------------------------------------------------ *)
(* Admission control: full queue sheds with a typed error, and the
   connection survives the shed (typed errors are not protocol errors) *)

let test_shedding () =
  let l = latch () in
  let config = { quick_config with queue_capacity = 2; workers = 1 } in
  with_server ~config ~handler:(latch_handler l) (fun t ->
      (* the latch must open even on an assertion failure, or [S.stop]
         would wait forever on the latched worker domain *)
      Fun.protect ~finally:(fun () -> latch_open l) @@ fun () ->
      let port = S.port t in
      let results = Array.make 3 None in
      let send i =
        Thread.create
          (fun () -> results.(i) <- Some (call_recon port (tiny_recon ())))
          ()
      in
      (* first request occupies the single worker before the next two go
         out, so exactly two sit in the queue — without the ordering, all
         three could enqueue before the worker wakes and the third would
         be shed early *)
      let first = send 0 in
      wait_until ~what:"worker latched" (fun () -> latch_entered l = 1);
      let rest = [ send 1; send 2 ] in
      let senders = first :: rest in
      wait_until ~what:"queue full" (fun () ->
          (S.stats t).S.s_queue_depth = 2);
      (* the fourth request is shed immediately, and the same connection
         still answers a ping afterwards — shedding is not a framing
         error *)
      let c = C.connect ~port () in
      (match C.call c (P.Recon (tiny_recon ())) with
      | Ok (P.Err (P.Shed, _)) -> ()
      | r ->
          Alcotest.failf "expected Shed, got %s"
            (match r with
            | Ok _ -> "another response"
            | Error e -> C.call_error_message e));
      (match C.ping c with
      | Ok () -> ()
      | Error e ->
          Alcotest.failf "connection dead after shed: %s"
            (C.call_error_message e));
      C.close c;
      latch_open l;
      List.iter Thread.join senders;
      Array.iter
        (fun r ->
          match r with
          | Some (Ok (P.Recon_ok _)) -> ()
          | _ -> Alcotest.fail "latched request did not complete")
        results;
      let s = S.stats t in
      checki "exactly one shed" 1 s.S.s_shed;
      checkb "all latched answered" true (s.S.s_responses >= 4))

(* ------------------------------------------------------------------ *)
(* Graceful drain: in-flight requests complete, new connections get the
   typed draining error, the listener closes *)

let test_graceful_drain () =
  let l = latch () in
  let config = { quick_config with queue_capacity = 8; workers = 1 } in
  with_server ~config ~handler:(latch_handler l) (fun t ->
      Fun.protect ~finally:(fun () -> latch_open l) @@ fun () ->
      let port = S.port t in
      let results = Array.make 3 None in
      let senders =
        Array.init 3 (fun i ->
            Thread.create
              (fun () -> results.(i) <- Some (call_recon port (tiny_recon ())))
              ())
      in
      wait_until ~what:"worker latched" (fun () -> latch_entered l = 1);
      wait_until ~what:"two queued" (fun () ->
          (S.stats t).S.s_queue_depth = 2);
      S.drain t;
      checkb "not yet drained (in-flight work)" false (S.drained t);
      (* a connection arriving during the drain is answered with the
         typed Draining status, not a hangup *)
      let c = C.connect ~port () in
      (match C.recv_response c with
      | Ok (P.Err (P.Draining, _)) -> ()
      | r ->
          Alcotest.failf "expected Draining, got %s"
            (match r with
            | Ok _ -> "another response"
            | Error e -> C.call_error_message e));
      C.close c;
      (* release: every in-flight request completes and is answered *)
      latch_open l;
      Array.iter Thread.join senders;
      Array.iter
        (fun r ->
          match r with
          | Some (Ok (P.Recon_ok _)) -> ()
          | _ -> Alcotest.fail "in-flight request lost during drain")
        results;
      checkb "drain completes" true (S.await_drained ~timeout_s:10.0 t);
      checkb "drained" true (S.drained t);
      (* the listener is closed once stopped: connects are refused *)
      wait_until ~what:"listener closed" (fun () ->
          match C.connect ~port () with
          | c ->
              (* accept backlog may still absorb one; a closed listener
                 surfaces as ECONNREFUSED or an immediate EOF *)
              let dead =
                match C.recv_response c with
                | Error C.Closed -> true
                | Ok (P.Err (P.Draining, _)) -> false
                | _ -> false
              in
              C.close c;
              dead
          | exception Unix.Unix_error (ECONNREFUSED, _, _) -> true);
      let s = S.stats t in
      checkb "draining rejections counted" true (s.S.s_draining_rejected >= 1);
      checki "nothing left queued" 0 s.S.s_queue_depth;
      checki "nothing executing" 0 s.S.s_executing)

(* ------------------------------------------------------------------ *)
(* Worker isolation: a handler exception becomes a typed internal error *)

let test_handler_exception_is_typed () =
  with_server ~config:quick_config
    ~handler:(fun _ -> failwith "boom")
    (fun t ->
      match call_recon (S.port t) (tiny_recon ()) with
      | Ok (P.Err (P.Internal_error, msg)) ->
          checkb "carries the exception text" true
            (String.length msg > 0)
      | _ -> Alcotest.fail "expected a typed Internal_error")

(* ------------------------------------------------------------------ *)
(* Fault injection on the wire *)

let test_malformed_frame () =
  with_server ~config:quick_config (fun t ->
      let c = C.connect ~port:(S.port t) () in
      (match C.send_raw c "XXXXXXXXXXXXXXXX" with
      | Ok () -> ()
      | Error e -> Alcotest.failf "send: %s" (C.call_error_message e));
      (match C.recv_response c with
      | Ok (P.Err (P.Bad_request, _)) -> ()
      | _ -> Alcotest.fail "expected typed Bad_request for garbage");
      (* after a framing error the server hangs up *)
      (match C.recv_response c with
      | Error C.Closed -> ()
      | _ -> Alcotest.fail "connection must close after a framing error");
      C.close c;
      wait_until ~what:"conn unregistered" (fun () ->
          (S.stats t).S.s_active_connections = 0);
      checkb "protocol error counted" true
        ((S.stats t).S.s_protocol_errors >= 1);
      (* the server is unharmed: a fresh connection works *)
      let c2 = C.connect ~port:(S.port t) () in
      (match C.ping c2 with
      | Ok () -> ()
      | Error e -> Alcotest.failf "ping: %s" (C.call_error_message e));
      C.close c2)

let test_oversized_frame () =
  let config =
    { quick_config with limits = { P.default_limits with max_payload = 4096 } }
  in
  with_server ~config (fun t ->
      let c = C.connect ~port:(S.port t) () in
      let b = Buffer.create 16 in
      Buffer.add_string b P.magic;
      Buffer.add_char b '\x02';
      Buffer.add_char b '\x00';
      Buffer.add_int32_be b 16_777_216l;
      (match C.send_raw c (Buffer.contents b) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "send: %s" (C.call_error_message e));
      (match C.recv_response c with
      | Ok (P.Err (P.Too_large, _)) -> ()
      | _ -> Alcotest.fail "expected typed Too_large");
      C.close c)

let test_mid_request_disconnect () =
  with_server ~config:quick_config (fun t ->
      let req = P.encode_request (P.Recon (tiny_recon ())) in
      let c = C.connect ~port:(S.port t) () in
      (* half a frame, then vanish *)
      (match C.send_raw c (String.sub req 0 (String.length req / 2)) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "send: %s" (C.call_error_message e));
      C.close c;
      wait_until ~what:"disconnect counted" (fun () ->
          (S.stats t).S.s_disconnects >= 1);
      wait_until ~what:"connection reaped" (fun () ->
          (S.stats t).S.s_active_connections = 0);
      (* no state poisoned: next client is served *)
      let c2 = C.connect ~port:(S.port t) () in
      (match C.ping c2 with
      | Ok () -> ()
      | Error e -> Alcotest.failf "ping: %s" (C.call_error_message e));
      C.close c2)

let test_slow_loris () =
  let config = { quick_config with read_timeout_s = 0.3 } in
  with_server ~config (fun t ->
      let req = P.encode_request (P.Recon (tiny_recon ())) in
      let c = C.connect ~port:(S.port t) () in
      (match C.send_raw c (String.sub req 0 7) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "send: %s" (C.call_error_message e));
      (* ...and stall. The read timeout fires with a partial frame
         buffered: typed Timeout, then hangup. *)
      (match C.recv_response c with
      | Ok (P.Err (P.Timeout, _)) -> ()
      | r ->
          Alcotest.failf "expected Timeout, got %s"
            (match r with
            | Ok _ -> "another response"
            | Error e -> C.call_error_message e));
      (match C.recv_response c with
      | Error C.Closed -> ()
      | _ -> Alcotest.fail "connection must close after loris timeout");
      C.close c;
      checkb "timeout counted" true ((S.stats t).S.s_timeouts >= 1))

(* ------------------------------------------------------------------ *)
(* End-to-end reconstruction through the default tenant handler, plus
   resource-stability assertions: plan-cache reuse within quota, arenas
   all returned, across a GC. *)

let test_end_to_end_recon () =
  let config =
    { quick_config with
      workers = 2;
      tenants = { Serving.Tenants.default_config with cache_entries = 4 } }
  in
  with_server ~config (fun t ->
      let port = S.port t in
      let req = tiny_recon ~tenant:"alice" ~m:32 () in
      let expect_image r =
        match r with
        | Ok (P.Recon_ok resp) ->
            checki "image length" (2 * 8 * 8) (Array.length resp.P.image);
            checki "iterations" 0 resp.P.iterations;
            checkb "finite image" true
              (Array.for_all Float.is_finite resp.P.image);
            resp.P.image
        | Ok (P.Err (st, msg)) ->
            Alcotest.failf "recon failed: %s: %s" (P.status_name st) msg
        | Ok _ -> Alcotest.fail "unexpected response"
        | Error e -> Alcotest.failf "call: %s" (C.call_error_message e)
      in
      let img1 = expect_image (call_recon port req) in
      let img2 = expect_image (call_recon port req) in
      checkb "identical requests give bitwise-identical images" true
        (Array.for_all2
           (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)
           img1 img2);
      (* the second request rode the tenant's plan cache *)
      let stats = Serving.Tenants.cache_stats (S.tenants t) in
      (match List.assoc_opt "alice" stats with
      | Some cs ->
          checkb "cache hit on repeat" true (cs.Pipeline.Plan_cache.hits >= 1);
          checkb "entries within quota" true
            (cs.Pipeline.Plan_cache.entries <= 4)
      | None -> Alcotest.fail "tenant cache missing");
      (* CG path, and its iteration cap *)
      (match call_recon port { req with method_ = P.Cg 4 } with
      | Ok (P.Recon_ok resp) -> checkb "cg iterated" true (resp.P.iterations >= 1)
      | _ -> Alcotest.fail "cg recon failed");
      (match call_recon port { req with method_ = P.Cg 1_000_000 } with
      | Ok (P.Err (P.Bad_request, _)) -> ()
      | _ -> Alcotest.fail "iteration cap must be a typed Bad_request");
      (* semantic validation is typed, connection survives *)
      (match call_recon port { req with dims = 3 } with
      | Ok (P.Err (P.Bad_request, _)) -> ()
      | _ -> Alcotest.fail "axis mismatch must be a typed Bad_request");
      (* type-2 forward projections are not served over the wire (the
         response frame carries one value per sample, not an image) *)
      (match
         call_recon port { req with transform = Nufft.Transform.Type2 }
       with
      | Ok (P.Err (P.Bad_request, _)) -> ()
      | _ -> Alcotest.fail "wire type-2 must be a typed Bad_request");
      (* type-3 reconstructs on the default lattice targets *)
      (match
         call_recon port { req with transform = Nufft.Transform.Type3 }
       with
      | Ok (P.Recon_ok resp) ->
          checki "type-3 image length" (Array.length img1)
            (Array.length resp.P.image)
      | _ -> Alcotest.fail "wire type-3 recon failed");
      (* every arena came back, and stays back across a GC *)
      Gc.full_major ();
      let ws = Pipeline.Workspace.stats (Serving.Tenants.workspace (S.tenants t)) in
      checki "no arena checked out" 0 ws.Pipeline.Workspace.in_use;
      checkb "arenas were exercised" true (ws.Pipeline.Workspace.checkouts >= 3))

let test_tenant_quota () =
  let config =
    { quick_config with
      tenants = { Serving.Tenants.default_config with max_tenants = 1 } }
  in
  with_server ~config (fun t ->
      let port = S.port t in
      (match call_recon port (tiny_recon ~tenant:"only" ()) with
      | Ok (P.Recon_ok _) -> ()
      | _ -> Alcotest.fail "first tenant must be admitted");
      match call_recon port (tiny_recon ~tenant:"second" ()) with
      | Ok (P.Err (P.Quota, _)) -> ()
      | _ -> Alcotest.fail "tenant past the quota must get typed Quota")

(* ------------------------------------------------------------------ *)
(* Metrics: the exposition parses, is structurally valid, and counters
   are monotonic across scrapes; HTTP interop serves the same document *)

let scrape_binary port =
  let c = C.connect ~port () in
  Fun.protect ~finally:(fun () -> C.close c) (fun () ->
      match C.metrics c with
      | Ok body -> body
      | Error e -> Alcotest.failf "metrics: %s" (C.call_error_message e))

let test_metrics_exposition () =
  Telemetry.reset ();
  Telemetry.set_enabled true;
  Fun.protect ~finally:(fun () -> Telemetry.set_enabled false) (fun () ->
      with_server ~config:quick_config (fun t ->
          let port = S.port t in
          ignore (call_recon port (tiny_recon ()));
          let body1 = scrape_binary port in
          let samples1, _types =
            match Prom.validate body1 with
            | Ok v -> v
            | Error msg -> Alcotest.failf "invalid exposition: %s" msg
          in
          let v1 =
            match Prom.find samples1 "srv_requests_total" with
            | Some v -> v
            | None -> Alcotest.fail "srv_requests_total missing"
          in
          checkb "request histogram exported" true
            (Prom.find samples1 "srv_request_us_count" <> None);
          checkb "queue gauge exported" true
            (Prom.find samples1 "srv_queue_depth" <> None);
          ignore (call_recon port (tiny_recon ()));
          let body2 = scrape_binary port in
          let samples2, _ =
            match Prom.validate body2 with
            | Ok v -> v
            | Error msg -> Alcotest.failf "invalid exposition: %s" msg
          in
          (match Prom.find samples2 "srv_requests_total" with
          | Some v2 -> checkb "counter is monotonic" true (v2 > v1)
          | None -> Alcotest.fail "srv_requests_total vanished")))

let http_get port path =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (ADDR_INET (Unix.inet_addr_loopback, port));
      let req = Printf.sprintf "GET %s HTTP/1.1\r\nHost: x\r\n\r\n" path in
      let b = Bytes.of_string req in
      ignore (Unix.write fd b 0 (Bytes.length b));
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec read_all () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            read_all ()
        | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> ()
      in
      read_all ();
      Buffer.contents buf)

let test_http_metrics () =
  Telemetry.reset ();
  Telemetry.set_enabled true;
  Fun.protect ~finally:(fun () -> Telemetry.set_enabled false) (fun () ->
      with_server ~config:quick_config (fun t ->
          let port = S.port t in
          ignore (call_recon port (tiny_recon ()));
          let doc = http_get port "/metrics" in
          checkb "200" true
            (String.length doc > 12 && String.sub doc 0 12 = "HTTP/1.1 200");
          (match String.index_opt doc '\r' with
          | None -> Alcotest.fail "no status line"
          | Some _ -> ());
          let body =
            let rec find i =
              if i + 4 > String.length doc then Alcotest.fail "no header end"
              else if String.sub doc i 4 = "\r\n\r\n" then
                String.sub doc (i + 4) (String.length doc - i - 4)
              else find (i + 1)
            in
            find 0
          in
          (match Prom.validate body with
          | Ok (samples, _) ->
              checkb "http scrape has requests counter" true
                (Prom.find samples "srv_requests_total" <> None)
          | Error msg -> Alcotest.failf "invalid http exposition: %s" msg);
          let hz = http_get port "/healthz" in
          checkb "healthz ok" true
            (String.length hz > 12 && String.sub hz 0 12 = "HTTP/1.1 200");
          let nf = http_get port "/nope" in
          checkb "404 for unknown path" true
            (String.length nf > 12 && String.sub nf 0 12 = "HTTP/1.1 404")))

let () =
  Alcotest.run "server"
    [ ( "admission",
        [ Alcotest.test_case "full queue sheds typed" `Quick test_shedding;
          Alcotest.test_case "handler exception is typed" `Quick
            test_handler_exception_is_typed ] );
      ( "drain",
        [ Alcotest.test_case "graceful drain" `Quick test_graceful_drain ] );
      ( "faults",
        [ Alcotest.test_case "malformed frame" `Quick test_malformed_frame;
          Alcotest.test_case "oversized frame" `Quick test_oversized_frame;
          Alcotest.test_case "mid-request disconnect" `Quick
            test_mid_request_disconnect;
          Alcotest.test_case "slow loris" `Quick test_slow_loris ] );
      ( "recon",
        [ Alcotest.test_case "end-to-end with cache and arenas" `Quick
            test_end_to_end_recon;
          Alcotest.test_case "tenant quota" `Quick test_tenant_quota ] );
      ( "metrics",
        [ Alcotest.test_case "exposition and monotonicity" `Quick
            test_metrics_exposition;
          Alcotest.test_case "http interop" `Quick test_http_metrics ] ) ]
