(* Shared qcheck plumbing for every property-based test in this
   directory: the generator randomness comes from the QCHECK_SEED
   environment variable (one process-wide seed, a fresh
   [Random.State] per test so suites stay order-independent), and the
   seed is printed on stderr when a property fails, so any failure is
   reproducible with

     QCHECK_SEED=<seed> dune runtest *)

let seed =
  lazy
    (match Sys.getenv_opt "QCHECK_SEED" with
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some i -> i
        | None ->
            failwith ("qutil: QCHECK_SEED must be an integer, got " ^ s))
    | None ->
        Random.self_init ();
        Random.int 1_000_000_000)

let to_alcotest test =
  let s = Lazy.force seed in
  let name, speed, run =
    QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| s |]) test
  in
  let run args =
    try run args
    with e ->
      Printf.eprintf "\n[qcheck] failing seed: QCHECK_SEED=%d\n%!" s;
      raise e
  in
  (name, speed, run)

let to_alcotests tests = List.map to_alcotest tests
