(* The acceptance sweep for the tolerance-driven plan path: for both
   kernel families (ES and Kaiser-Bessel), both dimensionalities, and
   every trajectory shape, every requested tolerance in 1e-2 .. 1e-6
   must yield a measured relative-L2 error against the exact NuDFT
   within the 10x contract. The sweep is 60 NuDFT-referenced cells, so
   it is computed once and shared by the assertions below. *)

module Acc = Imaging.Accuracy
module Window = Numerics.Window

let rows = lazy (Acc.sweep ~seed:7 ())

let by (p : Acc.row -> bool) = List.filter p (Lazy.force rows)

let test_sweep_holds_contract () =
  let rows = Lazy.force rows in
  Alcotest.(check int) "full grid: 2 families x 5 tols x 2 dims x 3 trajs"
    60 (List.length rows);
  match Acc.failures rows with
  | [] -> ()
  | bad ->
      let buf = Buffer.create 256 in
      List.iter
        (fun r -> Buffer.add_string buf (Format.asprintf "%a@." Acc.pp_row r))
        bad;
      Alcotest.failf "%d/60 cells breach the %gx contract:\n%s"
        (List.length bad) Acc.contract_slack (Buffer.contents buf)

let test_every_cell_present () =
  (* No silent truncation: each (family, tol, dims, traj) combination
     appears exactly once. *)
  List.iter
    (fun family ->
      List.iter
        (fun tol ->
          List.iter
            (fun dims ->
              List.iter
                (fun traj ->
                  let n =
                    List.length
                      (by (fun r ->
                           r.Acc.family = family
                           && r.Acc.tol = tol && r.Acc.dims = dims
                           && r.Acc.traj = traj))
                  in
                  if n <> 1 then
                    Alcotest.failf "%s tol %.0e %dD %s: %d rows"
                      (Window.family_name family)
                      tol dims (Acc.traj_name traj) n)
                Acc.all_trajs)
            [ 2; 3 ])
        Acc.default_tols)
    [ Window.ES; Window.KB ]

let test_accuracy_improves_with_tol () =
  (* Tightening the request by four decades must actually buy accuracy:
     for every (family, dims, traj) column, the measured error at 1e-6
     beats the one at 1e-2. *)
  List.iter
    (fun family ->
      List.iter
        (fun dims ->
          List.iter
            (fun traj ->
              let cell tol =
                match
                  by (fun r ->
                      r.Acc.family = family && r.Acc.tol = tol
                      && r.Acc.dims = dims && r.Acc.traj = traj)
                with
                | [ r ] -> Acc.worst r
                | _ -> Alcotest.fail "missing sweep cell"
              in
              let loose = cell 1e-2 and tight = cell 1e-6 in
              if not (tight < loose) then
                Alcotest.failf "%s %dD %s: err(1e-6)=%.3e >= err(1e-2)=%.3e"
                  (Window.family_name family)
                  dims (Acc.traj_name traj) tight loose)
            Acc.all_trajs)
        [ 2; 3 ])
    [ Window.ES; Window.KB ]

let test_derived_geometry_monotone () =
  (* Tighter requests never narrow the window or coarsen the table. *)
  List.iter
    (fun family ->
      let cells =
        by (fun r ->
            r.Acc.family = family && r.Acc.dims = 2 && r.Acc.traj = Acc.Radial)
      in
      let sorted =
        List.sort (fun a b -> compare b.Acc.tol a.Acc.tol) cells
      in
      ignore
        (List.fold_left
           (fun (pw, pl) r ->
             if r.Acc.width < pw || r.Acc.l < pl then
               Alcotest.failf "%s tol %.0e: w=%d l=%d shrank below (%d, %d)"
                 (Window.family_name family)
                 r.Acc.tol r.Acc.width r.Acc.l pw pl;
             (r.Acc.width, r.Acc.l))
           (0, 0) sorted))
    [ Window.ES; Window.KB ]

let test_traj_names_roundtrip () =
  List.iter
    (fun t ->
      match Acc.traj_of_string (Acc.traj_name t) with
      | Some t' when t' = t -> ()
      | _ -> Alcotest.failf "%s does not roundtrip" (Acc.traj_name t))
    Acc.all_trajs;
  Alcotest.(check bool) "unknown name rejected" true
    (Acc.traj_of_string "cartesian" = None)

let test_row_ok_slack () =
  match Lazy.force rows with
  | r :: _ ->
      Alcotest.(check bool) "zero slack always fails" false
        (Acc.row_ok ~slack:0.0 r);
      Alcotest.(check bool) "contract slack passes" true (Acc.row_ok r)
  | [] -> Alcotest.fail "empty sweep"

let test_backend_rel_l2_err () =
  Jigsaw.Operator_backend.register ();
  Gpusim.Operator_backend.register ();
  (* Tolerance-driven context: the bench accuracy column must honour the
     contract for a plan-backed backend. *)
  let e = Acc.backend_rel_l2_err ~tol:1e-4 "serial" in
  Alcotest.(check bool) (Printf.sprintf "serial @1e-4: %.2e" e) true (e <= 1e-3);
  (* Default geometry (w = 6, l = 512): the documented LUT floor. *)
  let e_dflt = Acc.backend_rel_l2_err "serial" in
  Alcotest.(check bool)
    (Printf.sprintf "serial default: %.2e" e_dflt)
    true
    (e_dflt < 5e-3);
  (* The fixed-point hardware model is less accurate but bounded. *)
  let e_hw = Acc.backend_rel_l2_err "jigsaw-2d" in
  Alcotest.(check bool)
    (Printf.sprintf "jigsaw-2d: %.2e" e_hw)
    true
    (e_hw > e_dflt && e_hw < 5e-2)

(* ------------------------------------------------------------------ *)
(* Type-3 acceptance sweep: the scale/shift decomposition must honour
   the same 10x contract at every tolerance, both families, 2D and 3D,
   against the direct NuDFT type-3 oracle. *)

let t3_rows = lazy (Acc.sweep_type3 ~seed:7 ())

let test_type3_contract () =
  let rows = Lazy.force t3_rows in
  Alcotest.(check int) "type-3 grid: 2 families x 5 tols x 2 dims" 20
    (List.length rows);
  match Acc.failures rows with
  | [] -> ()
  | bad ->
      let buf = Buffer.create 256 in
      List.iter
        (fun r -> Buffer.add_string buf (Format.asprintf "%a@." Acc.pp_row r))
        bad;
      Alcotest.failf "%d/20 type-3 cells breach the %gx contract:\n%s"
        (List.length bad) Acc.contract_slack (Buffer.contents buf)

let test_type3_improves_with_tol () =
  List.iter
    (fun family ->
      List.iter
        (fun dims ->
          let cell tol =
            match
              List.filter
                (fun r ->
                  r.Acc.family = family && r.Acc.tol = tol
                  && r.Acc.dims = dims)
                (Lazy.force t3_rows)
            with
            | [ r ] -> Acc.worst r
            | _ -> Alcotest.fail "missing type-3 sweep cell"
          in
          let loose = cell 1e-2 and tight = cell 1e-6 in
          if not (tight < loose) then
            Alcotest.failf "type-3 %s %dD: err(1e-6)=%.3e >= err(1e-2)=%.3e"
              (Window.family_name family) dims tight loose)
        [ 2; 3 ])
    [ Window.ES; Window.KB ]

let () =
  Alcotest.run "accuracy"
    [ ("sweep",
       [ Alcotest.test_case "10x contract holds on the full grid" `Slow
           test_sweep_holds_contract;
         Alcotest.test_case "every cell present exactly once" `Slow
           test_every_cell_present;
         Alcotest.test_case "tighter tol buys accuracy" `Slow
           test_accuracy_improves_with_tol;
         Alcotest.test_case "derived geometry monotone in tol" `Slow
           test_derived_geometry_monotone ]);
      ("type3",
       [ Alcotest.test_case "10x contract holds on the type-3 grid" `Slow
           test_type3_contract;
         Alcotest.test_case "tighter tol buys type-3 accuracy" `Slow
           test_type3_improves_with_tol ]);
      ("api",
       [ Alcotest.test_case "trajectory names roundtrip" `Quick
           test_traj_names_roundtrip;
         Alcotest.test_case "row_ok slack" `Slow test_row_ok_slack;
         Alcotest.test_case "per-backend rel_l2_err" `Quick
           test_backend_rel_l2_err ]) ]
