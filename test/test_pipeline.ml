(* Pipeline-layer tests: the plan cache (LRU eviction order, byte-budget
   eviction, fingerprint-collision safety, concurrent single-build), the
   workspace arenas (slot reuse, bitwise-identical results through reused
   buffers for every registered backend, O(1) steady-state minor-word
   allocation), and the reconstruction service (typed errors for every
   malformed request, warm requests performing zero plan builds, batch
   requests overlapping across the domain pool). *)

module Cvec = Numerics.Cvec
module C = Numerics.Complexd
module Op = Nufft.Operator
module Sample = Nufft.Sample
module Pool = Runtime.Pool
module Cache = Pipeline.Plan_cache
module Ws = Pipeline.Workspace
module Svc = Pipeline.Recon_service

let () =
  Jigsaw.Operator_backend.register ();
  Gpusim.Operator_backend.register ()

(* A backend that blocks inside its adjoint until two applications are
   in flight (or a deadline passes) — the overlap probe for the batch
   scheduler. Registered here, excluded from the all-backends sweeps. *)
let latch_name = "pipeline-latch"
let latch_entered = Atomic.make 0
let latch_peak = Atomic.make 0
let latch_inflight = Atomic.make 0

let () =
  Op.register ~dims:[ 2 ] ~doc:"test-only latch backend" latch_name
    (fun ctx ->
      let module M = struct
        let name = latch_name
        let dims = 2
        let n = ctx.Op.n
        let g = Op.ctx_grid ctx
        let plan = None
        let st = Op.create_stats ()

        let adjoint (_ : Sample.t) =
          let c = 1 + Atomic.fetch_and_add latch_inflight 1 in
          let rec bump () =
            let p = Atomic.get latch_peak in
            if c > p && not (Atomic.compare_and_set latch_peak p c) then
              bump ()
          in
          bump ();
          Atomic.incr latch_entered;
          let deadline = Unix.gettimeofday () +. 5.0 in
          while
            Atomic.get latch_peak < 2 && Unix.gettimeofday () < deadline
          do
            Domain.cpu_relax ()
          done;
          ignore (Atomic.fetch_and_add latch_inflight (-1));
          Cvec.create (n * n)

        let forward (_ : Cvec.t) : Sample.t = failwith "latch: forward unused"
        let transforms = [ Nufft.Transform.Type1 ]
        let type3 = None
        let stats () = st
      end in
      (module M : Op.NUFFT_OP))

(* ------------------------------------------------------------------ *)
(* Helpers *)

let radial ~n =
  let traj = Trajectory.Radial.make ~spokes:(max 4 (n / 4)) ~readout:(2 * n) () in
  (traj, Imaging.Recon.coords_of_traj ~g:(2 * n) traj)

let values_for coords =
  let m = Sample.length coords in
  Cvec.init m (fun k ->
      C.make
        (0.1 *. float_of_int ((k mod 17) - 8))
        (0.05 *. float_of_int ((k mod 5) - 2)))

let ctx_for n coords = Op.context ~n ~coords ()

let lookup cache n coords =
  ignore (Cache.operator cache ~backend:"serial" ~ctx:(ctx_for n coords))

let sok = function
  | Ok (v : Svc.response) -> v
  | Error e -> Alcotest.failf "service error: %s" (Svc.error_message e)

let check_bitwise name a b =
  Alcotest.(check int) (name ^ " length") (Cvec.length a) (Cvec.length b);
  for k = 0 to Cvec.length a - 1 do
    if
      Cvec.unsafe_get_re a k <> Cvec.unsafe_get_re b k
      || Cvec.unsafe_get_im a k <> Cvec.unsafe_get_im b k
    then
      Alcotest.failf "%s: differs at %d: (%g,%g) vs (%g,%g)" name k
        (Cvec.unsafe_get_re a k) (Cvec.unsafe_get_im a k)
        (Cvec.unsafe_get_re b k) (Cvec.unsafe_get_im b k)
  done

let with_telemetry f =
  Telemetry.reset ();
  Telemetry.set_enabled true;
  Fun.protect ~finally:(fun () -> Telemetry.set_enabled false) f

(* ------------------------------------------------------------------ *)
(* Plan cache *)

let test_lru_eviction_order () =
  let cache = Cache.create ~max_entries:2 () in
  let _, c16 = radial ~n:16
  and _, c20 = radial ~n:20
  and _, c24 = radial ~n:24 in
  lookup cache 16 c16;
  (* miss *)
  lookup cache 20 c20;
  (* miss *)
  lookup cache 16 c16;
  (* hit: n=20 becomes least-recently-used *)
  lookup cache 24 c24;
  (* miss: evicts n=20, not n=16 *)
  let s = Cache.stats cache in
  Alcotest.(check int) "evictions after overflow" 1 s.Cache.evictions;
  Alcotest.(check int) "entries at capacity" 2 s.Cache.entries;
  Alcotest.(check int) "hits so far" 1 s.Cache.hits;
  Alcotest.(check int) "misses so far" 3 s.Cache.misses;
  lookup cache 16 c16;
  (* the recently-used entry survived: hit *)
  lookup cache 20 c20;
  (* the LRU entry was evicted: miss again *)
  let s = Cache.stats cache in
  Alcotest.(check int) "n=16 survived the eviction" 2 s.Cache.hits;
  Alcotest.(check int) "n=20 was the victim" 4 s.Cache.misses

let test_byte_budget () =
  let _, c16 = radial ~n:16 and _, c24 = radial ~n:24 in
  (* Size one resident n=24 entry with a throwaway cache. *)
  let probe = Cache.create () in
  lookup probe 24 c24;
  let b24 = (Cache.stats probe).Cache.bytes in
  Alcotest.(check bool) "entry footprint is accounted" true (b24 > 0);
  (* Budget fits the big entry plus change, but not both entries. *)
  let cache = Cache.create ~max_bytes:(b24 + (b24 / 4)) () in
  lookup cache 24 c24;
  lookup cache 16 c16;
  let s = Cache.stats cache in
  Alcotest.(check int) "byte budget evicted the older entry" 1
    s.Cache.evictions;
  Alcotest.(check int) "one resident entry" 1 s.Cache.entries;
  Alcotest.(check bool) "resident bytes within budget" true
    (s.Cache.bytes <= b24 + (b24 / 4));
  (* The small recent entry is the survivor. *)
  lookup cache 16 c16;
  let s = Cache.stats cache in
  Alcotest.(check int) "survivor is the recent entry" 1 s.Cache.hits

let test_fingerprint_collision () =
  (* A constant fingerprint makes every trajectory collide; the
     structural comparison must still keep distinct entries. *)
  let cache = Cache.create ~fingerprint:(fun _ -> 42) () in
  let _, a = radial ~n:16 in
  let b = Sample.random_2d ~seed:9 ~g:32 64 in
  let op_a, _ = Cache.operator cache ~backend:"serial" ~ctx:(ctx_for 16 a) in
  let op_b, _ = Cache.operator cache ~backend:"serial" ~ctx:(ctx_for 16 b) in
  Alcotest.(check bool) "colliding trajectories get distinct operators" true
    (op_a != op_b);
  let s = Cache.stats cache in
  Alcotest.(check int) "two entries despite equal fingerprints" 2
    s.Cache.entries;
  Alcotest.(check int) "both lookups were misses" 2 s.Cache.misses;
  let op_a', _ = Cache.operator cache ~backend:"serial" ~ctx:(ctx_for 16 a) in
  Alcotest.(check bool) "re-lookup hits the right entry" true (op_a' == op_a);
  Alcotest.(check int) "hit recorded" 1 (Cache.stats cache).Cache.hits

let test_concurrent_single_build () =
  with_telemetry @@ fun () ->
  let c_miss = Telemetry.Counter.make "sample_plan.cache_miss" in
  let before = Telemetry.Counter.value c_miss in
  let _, coords = radial ~n:32 in
  let ctx = ctx_for 32 coords in
  let cache = Cache.create () in
  let pool = Pool.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      Pool.parallel_for ~chunk:1 pool ~start:0 ~stop:8 (fun _ ->
          ignore (Cache.operator cache ~backend:"serial" ~ctx)));
  let s = Cache.stats cache in
  Alcotest.(check int) "eight concurrent lookups, one build" 1 s.Cache.misses;
  Alcotest.(check int) "the other seven were hits" 7 s.Cache.hits;
  Alcotest.(check int) "decomposition compiled exactly once" 1
    (Telemetry.Counter.value c_miss - before)

let test_toeplitz_create_fn () =
  let n = 12 in
  let traj = Trajectory.Radial.make ~spokes:6 ~readout:(2 * n) () in
  let coords = Imaging.Recon.coords_of_traj ~g:(2 * n) traj in
  let cache = Cache.create () in
  let make () =
    Imaging.Toeplitz.make_op ~create:(Cache.create_fn cache) ~n ~coords ()
  in
  let t1 = make () in
  let t2 = make () in
  let s = Cache.stats cache in
  Alcotest.(check int) "setup adjoint operator built once" 1 s.Cache.misses;
  Alcotest.(check int) "second setup hit the cache" 1 s.Cache.hits;
  check_bitwise "kernel spectrum identical across cached setups"
    (Imaging.Toeplitz.kernel_spectrum t1)
    (Imaging.Toeplitz.kernel_spectrum t2)

(* ------------------------------------------------------------------ *)
(* Workspace *)

let test_workspace_reuse () =
  let ws = Ws.create () in
  let a1 = Ws.checkout ws ~grid:64 ~line:8 ~image:16 ~samples:10 in
  Alcotest.(check int) "grid view length" 64 (Cvec.length a1.Ws.grid);
  Alcotest.(check int) "line view length" 8 (Cvec.length a1.Ws.line);
  Alcotest.(check int) "image view length" 16 (Cvec.length a1.Ws.image);
  Alcotest.(check int) "vals view length" 10 (Cvec.length a1.Ws.vals);
  Alcotest.(check int) "cg buffer length" 16
    (Cvec.length a1.Ws.cg.Imaging.Cg.bx);
  Ws.checkin ws a1;
  (* Smaller request: the retained slot serves it without growing. *)
  let a2 = Ws.checkout ws ~grid:32 ~line:8 ~image:16 ~samples:4 in
  Alcotest.(check int) "smaller grid view" 32 (Cvec.length a2.Ws.grid);
  Alcotest.(check bool) "slot was reused" true (a1.Ws.slot == a2.Ws.slot);
  Ws.checkin ws a2;
  let s = Ws.stats ws in
  Alcotest.(check int) "checkouts" 2 s.Ws.checkouts;
  Alcotest.(check int) "reuses" 1 s.Ws.reuses;
  Alcotest.(check int) "grows only on first checkout" 7 s.Ws.grows;
  Alcotest.(check int) "slot retained" 1 s.Ws.retained;
  (* Concurrent checkouts get private slots. *)
  let b1 = Ws.checkout ws ~grid:8 ~line:4 ~image:4 ~samples:2 in
  let b2 = Ws.checkout ws ~grid:8 ~line:4 ~image:4 ~samples:2 in
  Alcotest.(check bool) "concurrent checkouts are distinct slots" true
    (b1.Ws.slot != b2.Ws.slot);
  Ws.checkin ws b1;
  Ws.checkin ws b2

(* Every registered 2D backend, through the service twice (fresh arena,
   then reused arena), against a fresh-buffer reference reconstruction:
   all three images must be bitwise identical. *)
let test_arena_bitwise_all_backends () =
  let n = 16 in
  let traj, coords = radial ~n in
  let density = Trajectory.Radial.density_weights traj in
  let values = values_for coords in
  let svc = Svc.create () in
  List.iter
    (fun backend ->
      let req =
        { Svc.backend;
          transform = Nufft.Transform.Type1;
          n;
          coords;
          values;
          density = Some density;
          method_ = Svc.Adjoint;
          tol = None;
          family = None }
      in
      let r1 = sok (Svc.submit svc req) in
      let r2 = sok (Svc.submit svc req) in
      let op = Op.create backend (ctx_for n coords) in
      let reference =
        match
          Imaging.Recon.reconstruct_op ~density op
            (Sample.with_values coords values)
        with
        | Ok image -> image
        | Error e ->
            Alcotest.failf "%s reference: %s" backend
              (Imaging.Recon.error_message e)
      in
      check_bitwise (backend ^ ": arena = fresh buffers") reference
        r1.Svc.image;
      check_bitwise (backend ^ ": reused arena = first arena") r1.Svc.image
        r2.Svc.image)
    (List.filter
       (fun b -> b <> latch_name)
       (Op.names ~dims:2 ()))

let test_steady_state_allocation () =
  Telemetry.set_enabled false;
  let n = 32 in
  let _, coords = radial ~n in
  let values = values_for coords in
  let svc = Svc.create () in
  let req =
    { Svc.backend = "serial";
      transform = Nufft.Transform.Type1;
      n;
      coords;
      values;
      density = None;
      method_ = Svc.Adjoint;
      tol = None;
      family = None }
  in
  (* Warm up: plan built, arena grown, FFT twiddles cached. *)
  ignore (sok (Svc.submit svc req));
  ignore (sok (Svc.submit svc req));
  let rounds = 5 in
  let w0 = Gc.minor_words () in
  for _ = 1 to rounds do
    ignore (sok (Svc.submit svc req))
  done;
  let per = (Gc.minor_words () -. w0) /. float_of_int rounds in
  (* O(1): independent of the sample count (m = 512 here) and the grid
     (64^2); per-sample or per-pixel allocation would be >= 10^4 words. *)
  Alcotest.(check bool)
    (Printf.sprintf "steady-state minor words per request (%g) <= 2000" per)
    true (per <= 2000.0)

(* ------------------------------------------------------------------ *)
(* Reconstruction service *)

let test_warm_request_zero_plan_builds () =
  with_telemetry @@ fun () ->
  let c_miss = Telemetry.Counter.make "sample_plan.cache_miss" in
  let n = 24 in
  let traj = Trajectory.Radial.make ~spokes:8 ~readout:(2 * n) () in
  (* Two structurally-equal but physically-distinct coordinate sets: the
     warm request must rebind onto the canonical arrays, not recompile. *)
  let coords1 = Imaging.Recon.coords_of_traj ~g:(2 * n) traj in
  let coords2 = Imaging.Recon.coords_of_traj ~g:(2 * n) traj in
  Alcotest.(check bool) "coordinate arrays are distinct" true
    (coords1.Sample.coords.(0) != coords2.Sample.coords.(0));
  let values = values_for coords1 in
  let svc = Svc.create () in
  let req coords =
    { Svc.backend = "slice";
      transform = Nufft.Transform.Type1;
      n;
      coords;
      values;
      density = None;
      method_ = Svc.Adjoint;
      tol = None;
      family = None }
  in
  let before = Telemetry.Counter.value c_miss in
  let r1 = sok (Svc.submit svc (req coords1)) in
  Alcotest.(check int) "cold request compiles the decomposition once" 1
    (Telemetry.Counter.value c_miss - before);
  let after_cold = Telemetry.Counter.value c_miss in
  let r2 = sok (Svc.submit svc (req coords2)) in
  Alcotest.(check int) "warm request performs zero plan builds" 0
    (Telemetry.Counter.value c_miss - after_cold);
  let s = Cache.stats (Svc.cache svc) in
  Alcotest.(check int) "warm request hit the operator cache" 1 s.Cache.hits;
  check_bitwise "warm image = cold image" r1.Svc.image r2.Svc.image

let test_typed_errors () =
  let n = 16 in
  let _, coords = radial ~n in
  let m = Sample.length coords in
  let values = values_for coords in
  let svc = Svc.create () in
  let base =
    { Svc.backend = "serial";
      transform = Nufft.Transform.Type1;
      n;
      coords;
      values;
      density = None;
      method_ = Svc.Adjoint;
      tol = None;
      family = None }
  in
  let expect name pred req =
    match Svc.submit svc req with
    | Ok _ -> Alcotest.failf "%s: expected a typed error" name
    | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "%s -> %s" name (Svc.error_message e))
          true (pred e)
  in
  let invalid = function Svc.Invalid_request _ -> true | _ -> false in
  expect "unknown backend" invalid { base with Svc.backend = "no-such" };
  expect "n too small" invalid { base with Svc.n = 1 };
  expect "grid/coords mismatch" invalid { base with Svc.n = 20 };
  expect "3D-only backend on 2D coords" invalid
    { base with Svc.backend = "jigsaw-3d" };
  expect "values length mismatch" invalid
    { base with Svc.values = Cvec.create (m - 1) };
  expect "cg iterations < 1" invalid { base with Svc.method_ = Svc.Cg 0 };
  expect "empty sample set"
    (function
      | Svc.Recon_error Imaging.Recon.Empty_sample_set -> true | _ -> false)
    { base with
      Svc.coords = Sample.random_2d ~g:32 0;
      values = Cvec.create 0 };
  expect "density length mismatch"
    (function
      | Svc.Recon_error
          (Imaging.Recon.Density_length_mismatch { expected; got }) ->
          expected = m && got = 3
      | _ -> false)
    { base with Svc.density = Some (Array.make 3 1.0) };
  (* Batch: per-request failure, in request order, no escaped exception. *)
  match
    Svc.submit_batch svc [ base; { base with Svc.backend = "no-such" }; base ]
  with
  | [ Ok _; Error (Svc.Invalid_request _); Ok _ ] -> ()
  | results ->
      Alcotest.failf "batch results misordered (%d results)"
        (List.length results)

let test_cg_through_service () =
  let n = 16 in
  let traj, coords = radial ~n in
  let density = Trajectory.Radial.density_weights traj in
  let phantom = Imaging.Phantom.make ~n () in
  let svc = Svc.create () in
  let op, _ =
    match Svc.operator svc ~backend:"serial" ~n ~coords with
    | Ok p -> p
    | Error e -> Alcotest.failf "operator: %s" (Svc.error_message e)
  in
  let samples = Imaging.Recon.acquire_op op phantom in
  let req =
    { Svc.backend = "serial";
      transform = Nufft.Transform.Type1;
      n;
      coords;
      values = samples.Sample.values;
      density = Some density;
      method_ = Svc.Cg 8;
      tol = None;
      family = None }
  in
  let resp = sok (Svc.submit svc req) in
  Alcotest.(check bool) "cg ran at least one iteration" true
    (resp.Svc.iterations >= 1);
  (* Pooled CG buffers must match the fresh-buffer solver bitwise. *)
  let rhs = Imaging.Cg.normal_equations_rhs_op ~weights:density op samples in
  let reference =
    Imaging.Cg.solve ~max_iterations:8
      ~apply:(Imaging.Cg.normal_map ~weights:density op)
      rhs
  in
  check_bitwise "service CG = direct CG" reference.Imaging.Cg.solution
    resp.Svc.image

let test_type3_and_type2_through_service () =
  let n = 16 in
  let traj, coords = radial ~n in
  let density = Trajectory.Radial.density_weights traj in
  let values = values_for coords in
  let m = Sample.length coords in
  let svc = Svc.create () in
  let base =
    { Svc.backend = "serial";
      transform = Nufft.Transform.Type1;
      n;
      coords;
      values;
      density = Some density;
      method_ = Svc.Adjoint;
      tol = Some 1e-5;
      family = None }
  in
  (* Type-3 on the default lattice targets reproduces the type-1 adjoint
     reconstruction to the plan tolerance (same sum, two different
     factorizations). *)
  let r1 = sok (Svc.submit svc base) in
  let r3 =
    sok (Svc.submit svc { base with Svc.transform = Nufft.Transform.Type3 })
  in
  Alcotest.(check int) "type-3 image length" (Cvec.length r1.Svc.image)
    (Cvec.length r3.Svc.image);
  let err = Cvec.nrmsd ~reference:r1.Svc.image r3.Svc.image in
  Alcotest.(check bool)
    (Printf.sprintf "type-3 = type-1 on the lattice (nrmsd %.2e)" err)
    true (err < 1e-3);
  (* Type-3 + CG is a typed error, not an escape. *)
  (match
     Svc.submit svc
       { base with
         Svc.transform = Nufft.Transform.Type3;
         method_ = Svc.Cg 4 }
   with
  | Error (Svc.Invalid_request _) -> ()
  | _ -> Alcotest.fail "type-3 cg accepted");
  (* Type-2 forward projection: image in, m k-space samples out. *)
  let image =
    Cvec.init (n * n) (fun k ->
        C.make
          (0.02 *. float_of_int ((k mod 23) - 11))
          (0.01 *. float_of_int ((k mod 7) - 3)))
  in
  let r2 =
    sok
      (Svc.submit svc
         { base with
           Svc.transform = Nufft.Transform.Type2;
           values = image;
           density = None })
  in
  Alcotest.(check int) "type-2 returns one value per sample" m
    (Cvec.length r2.Svc.image);
  Alcotest.(check int) "type-2 performs no iterations" 0 r2.Svc.iterations;
  (* Type-2 with an image-length mismatch is a typed error. *)
  match
    Svc.submit svc
      { base with
        Svc.transform = Nufft.Transform.Type2;
        values;
        density = None }
  with
  | Error (Svc.Invalid_request _) -> ()
  | _ -> Alcotest.fail "type-2 with k-space-length values accepted"

let test_batch_overlap () =
  Atomic.set latch_entered 0;
  Atomic.set latch_peak 0;
  Atomic.set latch_inflight 0;
  let n = 16 in
  let _, coords = radial ~n in
  let values = values_for coords in
  let pool = Pool.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let svc = Svc.create ~pool () in
      let req =
        { Svc.backend = latch_name;
          transform = Nufft.Transform.Type1;
          n;
          coords;
          values;
          density = None;
          method_ = Svc.Adjoint;
          tol = None;
          family = None }
      in
      let t0 = Unix.gettimeofday () in
      let results = Svc.submit_batch svc [ req; req ] in
      let dt = Unix.gettimeofday () -. t0 in
      List.iter
        (fun r ->
          match r with
          | Ok _ -> ()
          | Error e ->
              Alcotest.failf "latch request failed: %s" (Svc.error_message e))
        results;
      Alcotest.(check int) "both requests reached the backend" 2
        (Atomic.get latch_entered);
      Alcotest.(check int) "requests were in flight concurrently" 2
        (Atomic.get latch_peak);
      Alcotest.(check bool)
        (Printf.sprintf "overlap released the latch promptly (%.1fs)" dt)
        true (dt < 4.0))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "pipeline"
    [ ( "plan_cache",
        [ Alcotest.test_case "lru eviction order" `Quick
            test_lru_eviction_order;
          Alcotest.test_case "byte budget" `Quick test_byte_budget;
          Alcotest.test_case "fingerprint collision" `Quick
            test_fingerprint_collision;
          Alcotest.test_case "concurrent single build" `Quick
            test_concurrent_single_build;
          Alcotest.test_case "toeplitz create hook" `Quick
            test_toeplitz_create_fn ] );
      ( "workspace",
        [ Alcotest.test_case "slot reuse" `Quick test_workspace_reuse;
          Alcotest.test_case "bitwise through arenas, all backends" `Quick
            test_arena_bitwise_all_backends;
          Alcotest.test_case "steady-state allocation" `Quick
            test_steady_state_allocation ] );
      ( "recon_service",
        [ Alcotest.test_case "warm request zero plan builds" `Quick
            test_warm_request_zero_plan_builds;
          Alcotest.test_case "typed errors" `Quick test_typed_errors;
          Alcotest.test_case "cg through the service" `Quick
            test_cg_through_service;
          Alcotest.test_case "type-3 and type-2 requests" `Quick
            test_type3_and_type2_through_service;
          Alcotest.test_case "batch overlap across the pool" `Quick
            test_batch_overlap ] ) ]
