(* Tests for the k-space trajectory generators. *)

module Traj = Trajectory.Traj
module Radial = Trajectory.Radial
module Spiral = Trajectory.Spiral

let check_close ?(eps = 1e-12) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.17g, got %.17g" msg expected actual

let test_wrap_frequency () =
  check_close "identity" 1.0 (Traj.wrap_frequency 1.0);
  check_close "-pi stays" (-.Float.pi) (Traj.wrap_frequency (-.Float.pi));
  check_close "pi wraps to -pi" (-.Float.pi) (Traj.wrap_frequency Float.pi);
  check_close ~eps:1e-12 "2pi+0.5" 0.5 (Traj.wrap_frequency ((2.0 *. Float.pi) +. 0.5))

let test_make_validates () =
  Alcotest.check_raises "length" (Invalid_argument "Traj.make: length mismatch")
    (fun () -> ignore (Traj.make ~omega_x:[| 0.0 |] ~omega_y:[||]))

let test_radial_structure () =
  let spokes = 8 and readout = 32 in
  let t = Radial.make ~spokes ~readout () in
  Alcotest.(check int) "count" (spokes * readout) (Traj.length t);
  Alcotest.(check bool) "bounds" true (Traj.bounds_ok t);
  (* Spoke 0 is horizontal: all omega_y = 0. *)
  for i = 0 to readout - 1 do
    check_close ~eps:1e-12 "horizontal spoke" 0.0 t.Traj.omega_y.(i)
  done;
  (* Readout spans [-pi, pi): first sample at -pi. *)
  check_close ~eps:1e-12 "start" (-.Float.pi) t.Traj.omega_x.(0);
  Alcotest.(check bool) "end < pi" true
    (t.Traj.omega_x.(readout - 1) < Float.pi)

let test_radial_golden () =
  let t = Radial.make ~scheme:Radial.Golden_angle ~spokes:16 ~readout:8 () in
  Alcotest.(check int) "count" 128 (Traj.length t);
  Alcotest.(check bool) "bounds" true (Traj.bounds_ok t)

let test_radial_validation () =
  Alcotest.check_raises "spokes"
    (Invalid_argument "Radial.make: spokes must be >= 1") (fun () ->
      ignore (Radial.make ~spokes:0 ~readout:8 ()));
  Alcotest.check_raises "r_max"
    (Invalid_argument "Radial.make: r_max must be in (0, pi]") (fun () ->
      ignore (Radial.make ~r_max:4.0 ~spokes:4 ~readout:8 ()))

let test_radial_density () =
  let t = Radial.make ~spokes:8 ~readout:64 () in
  let w = Radial.density_weights t in
  Alcotest.(check int) "length" (Traj.length t) (Array.length w);
  Array.iter (fun x -> Alcotest.(check bool) "positive" true (x > 0.0)) w;
  let sum = Array.fold_left ( +. ) 0.0 w in
  check_close ~eps:1e-6 "normalised" (float_of_int (Traj.length t)) sum;
  (* Edge samples weigh more than centre samples. *)
  Alcotest.(check bool) "ramp" true (w.(0) > w.(32))

let test_fully_sampled_spokes () =
  Alcotest.(check int) "n=64" 101 (Radial.fully_sampled_spokes ~n:64);
  Alcotest.(check int) "n=256" 403 (Radial.fully_sampled_spokes ~n:256)

let test_spiral_structure () =
  let t = Spiral.make ~samples_per_interleave:256 ~interleaves:4 () in
  Alcotest.(check int) "count" 1024 (Traj.length t);
  Alcotest.(check bool) "bounds" true (Traj.bounds_ok t);
  (* Radius grows monotonically along one interleave. *)
  let grow = ref true in
  for j = 1 to 255 do
    if Traj.radius t j < Traj.radius t (j - 1) -. 1e-9 then grow := false
  done;
  Alcotest.(check bool) "monotone radius" true !grow;
  check_close ~eps:1e-12 "starts at centre" 0.0 (Traj.radius t 0)

let test_rosette () =
  let t = Trajectory.Rosette.make ~samples:512 () in
  Alcotest.(check int) "count" 512 (Traj.length t);
  Alcotest.(check bool) "bounds" true (Traj.bounds_ok t);
  (* Re-crosses the centre: some non-initial sample has tiny radius. *)
  let crossings = ref 0 in
  for j = 1 to 511 do
    if Traj.radius t j < 0.1 then incr crossings
  done;
  Alcotest.(check bool) "centre recrossings" true (!crossings > 2)

let test_random_traj () =
  let t = Trajectory.Random_traj.make ~seed:3 ~samples:1000 () in
  Alcotest.(check bool) "bounds" true (Traj.bounds_ok t);
  let t2 = Trajectory.Random_traj.make ~seed:3 ~samples:1000 () in
  check_close "deterministic" t.Traj.omega_x.(500) t2.Traj.omega_x.(500)

let test_shuffle_preserves_set () =
  let t = Radial.make ~spokes:4 ~readout:16 () in
  let s = Trajectory.Random_traj.shuffle ~seed:1 t in
  Alcotest.(check int) "count" (Traj.length t) (Traj.length s);
  let key a b = List.sort compare (Array.to_list (Array.map2 (fun x y -> (x, y)) a b)) in
  Alcotest.(check bool) "same multiset" true
    (key t.Traj.omega_x t.Traj.omega_y = key s.Traj.omega_x s.Traj.omega_y);
  Alcotest.(check bool) "actually permuted" true
    (t.Traj.omega_x <> s.Traj.omega_x)

let test_cartesian () =
  let n = 8 in
  let t = Trajectory.Cartesian.make ~n in
  Alcotest.(check int) "count" (n * n) (Traj.length t);
  Alcotest.(check bool) "bounds" true (Traj.bounds_ok t);
  (* Centre sample (k = 0) is present. *)
  let has_dc = ref false in
  for j = 0 to Traj.length t - 1 do
    if Traj.radius t j < 1e-12 then has_dc := true
  done;
  Alcotest.(check bool) "dc present" true !has_dc

let test_datasets () =
  let all = Trajectory.Dataset.all in
  Alcotest.(check int) "five datasets" 5 (List.length all);
  List.iter
    (fun d ->
      let t = d.Trajectory.Dataset.trajectory () in
      Alcotest.(check int)
        (d.Trajectory.Dataset.name ^ " sample count")
        d.Trajectory.Dataset.m (Traj.length t);
      Alcotest.(check bool)
        (d.Trajectory.Dataset.name ^ " bounds")
        true (Traj.bounds_ok t))
    all;
  (* Recovered dimensions from the paper. *)
  Alcotest.(check (list int)) "dims" [ 64; 64; 256; 320; 512 ]
    (List.map (fun d -> d.Trajectory.Dataset.n) all)

let test_dataset_small_variant () =
  let d = Trajectory.Dataset.by_name "Image 3" in
  let s = Trajectory.Dataset.small_variant d in
  Alcotest.(check bool) "smaller" true (s.Trajectory.Dataset.m < d.Trajectory.Dataset.m);
  let t = s.Trajectory.Dataset.trajectory () in
  Alcotest.(check int) "count" s.Trajectory.Dataset.m (Traj.length t)

let prop_wrap_in_range =
  QCheck.Test.make ~name:"wrap_frequency lands in [-pi, pi)" ~count:1000
    QCheck.(float_range (-100.0) 100.0)
    (fun w ->
      let x = Traj.wrap_frequency w in
      x >= -.Float.pi && x < Float.pi)

let qtests = Qutil.to_alcotests [ prop_wrap_in_range ]

let () =
  Alcotest.run "trajectory"
    [ ("traj",
       [ Alcotest.test_case "wrap" `Quick test_wrap_frequency;
         Alcotest.test_case "validation" `Quick test_make_validates ]);
      ("radial",
       [ Alcotest.test_case "structure" `Quick test_radial_structure;
         Alcotest.test_case "golden angle" `Quick test_radial_golden;
         Alcotest.test_case "validation" `Quick test_radial_validation;
         Alcotest.test_case "density weights" `Quick test_radial_density;
         Alcotest.test_case "nyquist spokes" `Quick test_fully_sampled_spokes ]);
      ("spiral", [ Alcotest.test_case "structure" `Quick test_spiral_structure ]);
      ("rosette", [ Alcotest.test_case "structure" `Quick test_rosette ]);
      ("random",
       [ Alcotest.test_case "uniform" `Quick test_random_traj;
         Alcotest.test_case "shuffle" `Quick test_shuffle_preserves_set ]);
      ("cartesian", [ Alcotest.test_case "grid" `Quick test_cartesian ]);
      ("dataset",
       [ Alcotest.test_case "five images" `Quick test_datasets;
         Alcotest.test_case "small variant" `Quick test_dataset_small_variant ]);
      ("properties", qtests) ]
