(* Region-sharded parallel replay: determinism & race suite.

   The contract under test is strong: for EVERY pool size, parallel
   compiled replay must be bitwise identical to serial replay — the
   partition gives each grid cell exactly one writer and preserves the
   serial accumulation order per cell, so not even the last floating
   point bit may move. The suite checks that contract at the three
   levels the engine is wired through (Sample_plan, Plan, Operator
   registry), property-checks the partition invariants on random
   geometries, and stress-tests concurrent reconstructions sharing one
   plan-cache entry. *)

module Cvec = Numerics.Cvec
module Sample = Nufft.Sample
module Sample_plan = Nufft.Sample_plan
module Plan = Nufft.Plan
module Gridding = Nufft.Gridding
module Op = Nufft.Operator
module Pool = Runtime.Pool

let pool_sizes = [ 1; 2; 3; 4; 7 ]

let with_pool domains f =
  let pool = Pool.create ~domains () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let check_bitwise name a b =
  Alcotest.(check int) (name ^ " length") (Cvec.length a) (Cvec.length b);
  for k = 0 to Cvec.length a - 1 do
    if
      Cvec.unsafe_get_re a k <> Cvec.unsafe_get_re b k
      || Cvec.unsafe_get_im a k <> Cvec.unsafe_get_im b k
    then
      Alcotest.failf "%s: differs at %d: (%g,%g) vs (%g,%g)" name k
        (Cvec.unsafe_get_re a k) (Cvec.unsafe_get_im a k)
        (Cvec.unsafe_get_re b k) (Cvec.unsafe_get_im b k)
  done

(* One plan + compiled decomposition per dimensionality, shared by the
   bit-identity tests below. *)
let compiled_case ~dims =
  let n = if dims = 2 then 16 else 6 in
  let g = 2 * n in
  let m = if dims = 2 then 300 else 200 in
  let plan = Plan.make ~n () in
  let s = Sample.random ~seed:(100 + dims) ~dims ~g m in
  let sp = Plan.compiled plan s in
  (plan, s, sp)

(* ------------------------------------------------------------------ *)
(* Sample_plan level: spread / gather against the serial replay. *)

let test_spread_bitwise ~dims () =
  let _, s, sp = compiled_case ~dims in
  let reference = Sample_plan.spread sp s.Sample.values in
  List.iter
    (fun d ->
      with_pool d (fun pool ->
          check_bitwise
            (Printf.sprintf "%dd spread, pool %d" dims d)
            reference
            (Sample_plan.spread_parallel ~pool sp s.Sample.values);
          (* _into variant through the same pool *)
          let out = Cvec.create (Sample_plan.grid_length sp) in
          Sample_plan.spread_parallel_into ~pool sp s.Sample.values out;
          check_bitwise
            (Printf.sprintf "%dd spread_into, pool %d" dims d)
            reference out))
    pool_sizes

let test_gather_bitwise ~dims () =
  let _, s, sp = compiled_case ~dims in
  let glen = Sample_plan.grid_length sp in
  let grid = Cvec.init glen (fun k ->
      Numerics.Complexd.make
        (cos (0.01 *. float_of_int k))
        (sin (0.03 *. float_of_int k)))
  in
  ignore s;
  let reference = Sample_plan.gather sp grid in
  List.iter
    (fun d ->
      with_pool d (fun pool ->
          check_bitwise
            (Printf.sprintf "%dd gather, pool %d" dims d)
            reference
            (Sample_plan.gather_parallel ~pool sp grid)))
    pool_sizes

(* ------------------------------------------------------------------ *)
(* Plan level: full adjoint / forward pipelines with a replay pool. *)

let test_adjoint_compiled_bitwise ~dims () =
  let plan, s, _ = compiled_case ~dims in
  let reference = Plan.adjoint_compiled plan s in
  let image = reference in
  List.iter
    (fun d ->
      with_pool d (fun pool ->
          check_bitwise
            (Printf.sprintf "%dd adjoint_compiled, pool %d" dims d)
            reference
            (Plan.adjoint_compiled ~pool plan s);
          check_bitwise
            (Printf.sprintf "%dd forward_compiled, pool %d" dims d)
            (Plan.forward_compiled plan ~coords:s image)
            (Plan.forward_compiled ~pool plan ~coords:s image)))
    pool_sizes

(* A plan built with its own pool replays in parallel without a per-call
   pool argument — same bits as the pool-less plan. *)
let test_plan_pool_default () =
  let n = 16 in
  let g = 2 * n in
  let s = Sample.random_2d ~seed:11 ~g 250 in
  let serial_plan = Plan.make ~n () in
  let reference = Plan.adjoint_compiled serial_plan s in
  with_pool 3 (fun pool ->
      let pooled_plan = Plan.make ~pool ~n () in
      check_bitwise "plan-pool adjoint_compiled" reference
        (Plan.adjoint_compiled pooled_plan s))

(* ------------------------------------------------------------------ *)
(* Operator registry: the replay-parallel backend against serial. *)

let test_backend_bitwise () =
  let n = 16 in
  let g = 2 * n in
  let coords = Sample.random_2d ~seed:21 ~g 300 in
  let serial_op =
    Op.create "serial" (Op.context ~n ~coords ())
  in
  let reference = Op.apply_adjoint serial_op coords in
  let fwd_ref = Op.apply_forward serial_op reference in
  List.iter
    (fun d ->
      with_pool d (fun pool ->
          let op =
            Op.create "replay-parallel" (Op.context ~pool ~n ~coords ())
          in
          check_bitwise
            (Printf.sprintf "replay-parallel adjoint, pool %d" d)
            reference
            (Op.apply_adjoint op coords);
          check_bitwise
            (Printf.sprintf "replay-parallel forward, pool %d" d)
            fwd_ref.Sample.values
            (Op.apply_forward op reference).Sample.values))
    pool_sizes

(* ------------------------------------------------------------------ *)
(* Partition invariants. *)

(* Exhaustive audit of one partition: bands tile the rows, every plan
   entry appears exactly once in the shard owning its row, shard entry
   streams are sample-monotonic (serial order), and per-sample entry
   counts are exactly points_per_sample. *)
let audit_partition sp part =
  let g = Sample_plan.grid sp in
  let m = Sample_plan.length sp in
  let points = Sample_plan.points_per_sample sp in
  let rows = Sample_plan.partition_rows part in
  let shards = Sample_plan.partition_shards part in
  if shards < 1 then Alcotest.failf "no shards";
  (* bands tile [0, rows) in order *)
  let expect_lo = ref 0 in
  for s = 0 to shards - 1 do
    let lo, hi = Sample_plan.shard_rows part s in
    if lo <> !expect_lo then
      Alcotest.failf "shard %d starts at row %d, expected %d" s lo !expect_lo;
    if hi <= lo then Alcotest.failf "shard %d empty band [%d,%d)" s lo hi;
    expect_lo := hi
  done;
  if !expect_lo <> rows then
    Alcotest.failf "bands cover %d of %d rows" !expect_lo rows;
  (* every entry exactly once, in the owning shard, sample-monotonic *)
  let per_sample = Array.make m 0 in
  let total = ref 0 in
  for s = 0 to shards - 1 do
    let lo, hi = Sample_plan.shard_rows part s in
    let len = Sample_plan.shard_length part s in
    let last_sample = ref (-1) in
    for e = 0 to len - 1 do
      let smp, k, _w = Sample_plan.shard_entry part s e in
      let r = k / g in
      if r < lo || r >= hi then
        Alcotest.failf "shard %d entry %d: row %d outside band [%d,%d)" s e r
          lo hi;
      if smp < !last_sample then
        Alcotest.failf "shard %d entry %d: sample order %d after %d" s e smp
          !last_sample;
      last_sample := smp;
      per_sample.(smp) <- per_sample.(smp) + 1;
      incr total
    done
  done;
  if !total <> m * points then
    Alcotest.failf "partition holds %d entries, plan has %d" !total
      (m * points);
  Array.iteri
    (fun j c ->
      if c <> points then
        Alcotest.failf "sample %d owned %d times, expected %d" j c points)
    per_sample

let prop_partition_covers =
  QCheck.Test.make
    ~name:"region partition covers every sample entry exactly once" ~count:60
    QCheck.(
      quad (int_range 0 10_000) (* seed *)
        (int_range 1 120) (* m *)
        (int_range 2 3) (* dims *)
        (int_range 1 40) (* requested shards *))
    (fun (seed, m, dims, shards) ->
      let n = if dims = 2 then 12 else 5 in
      let g = 2 * n in
      let plan = Plan.make ~w:4 ~n () in
      let s = Sample.random ~seed ~dims ~g m in
      let sp = Plan.compiled plan s in
      let part = Sample_plan.partition sp ~shards in
      audit_partition sp part;
      (* the clamp: never more shards than rows, never fewer than 1 *)
      Sample_plan.partition_shards part
      = max 1 (min shards (Sample_plan.partition_rows part))
      && Sample_plan.partition_requested part = shards)

let test_partition_cached () =
  let _, _, sp = compiled_case ~dims:2 in
  let p3 = Sample_plan.partition sp ~shards:3 in
  if not (Sample_plan.partition sp ~shards:3 == p3) then
    Alcotest.failf "same shard count must return the cached partition";
  let p5 = Sample_plan.partition sp ~shards:5 in
  if Sample_plan.partition_shards p5 <> 5 then
    Alcotest.failf "re-requesting with a new shard count must rebuild";
  if not (Sample_plan.partition sp ~shards:5 == p5) then
    Alcotest.failf "rebuilt partition must be cached in turn"

(* ------------------------------------------------------------------ *)
(* Determinism stress: N concurrent compiled-replay reconstructions
   through submit_batch, all warm hits on ONE shared plan-cache entry
   (same physical coordinate arrays), repeated; every image must be
   bitwise identical to the serial single-shot reference. This is the
   test that catches read/write races on shared plan state (the compiled
   decomposition, the cached partition) that single-shot tests miss. *)

let test_determinism_stress () =
  let module Svc = Pipeline.Recon_service in
  let n = 16 in
  let g = 2 * n in
  let coords = Sample.random_2d ~seed:33 ~g 400 in
  let values =
    Cvec.init 400 (fun j ->
        Numerics.Complexd.make
          (sin (0.2 *. float_of_int j))
          (cos (0.7 *. float_of_int j)))
  in
  let req =
    { Svc.backend = "replay-parallel";
      transform = Nufft.Transform.Type1;
      n;
      coords;
      values;
      density = None;
      method_ = Svc.Adjoint;
      tol = None;
      family = None }
  in
  let image = function
    | Ok r -> r.Svc.image
    | Error e -> Alcotest.failf "stress request failed: %s" (Svc.error_message e)
  in
  (* pool-less reference service *)
  let ref_svc = Svc.create () in
  let reference = image (Svc.submit ref_svc req) in
  with_pool 4 (fun pool ->
      let svc = Svc.create ~pool () in
      (* direct submit exercises the parallel fast path (replay on the
         service pool from the caller's thread) *)
      check_bitwise "direct submit, pool 4" reference
        (image (Svc.submit svc req));
      for round = 1 to 3 do
        let out = Svc.submit_batch svc (List.init 8 (fun _ -> req)) in
        List.iteri
          (fun i r ->
            check_bitwise
              (Printf.sprintf "stress round %d request %d" round i)
              reference (image r))
          out
      done)

let () =
  let bit2 f = List.map (fun (name, g) -> (name, `Quick, g)) f in
  Alcotest.run "parallel_replay"
    [ ( "spread",
        bit2
          [ ("2d bitwise across pool sizes", test_spread_bitwise ~dims:2);
            ("3d bitwise across pool sizes", test_spread_bitwise ~dims:3) ] );
      ( "gather",
        bit2
          [ ("2d bitwise across pool sizes", test_gather_bitwise ~dims:2);
            ("3d bitwise across pool sizes", test_gather_bitwise ~dims:3) ] );
      ( "plan",
        bit2
          [ ( "2d adjoint/forward compiled across pool sizes",
              test_adjoint_compiled_bitwise ~dims:2 );
            ( "3d adjoint/forward compiled across pool sizes",
              test_adjoint_compiled_bitwise ~dims:3 );
            ("plan-owned pool replay", test_plan_pool_default) ] );
      ("operator", bit2 [ ("replay-parallel backend", test_backend_bitwise) ]);
      ( "partition",
        Qutil.to_alcotests [ prop_partition_covers ]
        @ bit2 [ ("partition cache", test_partition_cached) ] );
      ("stress", bit2 [ ("shared-plan determinism", test_determinism_stress) ])
    ]
