(* Auto-tuner unit tests: JIGSAW_TUNE parsing (re-read on every call),
   the Off mode's bit-identical passthrough (no trials, no cache
   writes), forced engines, the Auto path's self-consistency (the cached
   winner is the argmax of its own trials; a second sight of the key is
   a cache hit, not a re-trial), and the shape-key bucketing (jitter
   within a power-of-two sample band shares a key; crossing the band or
   changing n re-tunes). [Unix.putenv] mutates this process's
   environment, so every mode change is scoped with a restore. *)

module Tuner = Nufft.Tuner
module Sample = Nufft.Sample

let with_env v f =
  let old = Option.value (Sys.getenv_opt "JIGSAW_TUNE") ~default:"auto" in
  Unix.putenv "JIGSAW_TUNE" v;
  Fun.protect ~finally:(fun () -> Unix.putenv "JIGSAW_TUNE" old) f

let coords_for ?(seed = 5) ~g m = Sample.random_2d ~seed ~g m

let test_mode_parsing () =
  Alcotest.(check bool) "default is auto" true (Tuner.mode () = Tuner.Auto);
  with_env "auto" (fun () ->
      Alcotest.(check bool) "auto" true (Tuner.mode () = Tuner.Auto));
  List.iter
    (fun v ->
      with_env v (fun () ->
          Alcotest.(check bool) (v ^ " disables") true
            (Tuner.mode () = Tuner.Off)))
    [ "off"; "0"; "false" ];
  with_env "slice" (fun () ->
      Alcotest.(check bool) "forced engine" true
        (Tuner.mode () = Tuner.Forced "slice");
      Alcotest.(check string) "forced mode_name" "slice" (Tuner.mode_name ()));
  with_env "off" (fun () ->
      Alcotest.(check string) "off mode_name" "off" (Tuner.mode_name ()))

let test_off_is_passthrough () =
  with_env "off" (fun () ->
      Tuner.reset ();
      let coords = coords_for ~g:32 300 in
      let got =
        Tuner.resolve ~default:"serial" ~n:16 ~coords ()
      in
      Alcotest.(check string) "off returns the default untouched" "serial"
        got;
      Alcotest.(check int) "off never populates the cache" 0 (Tuner.size ()))

let test_forced_engine () =
  with_env "replay-simd" (fun () ->
      Tuner.reset ();
      let coords = coords_for ~g:32 300 in
      let got = Tuner.resolve ~default:"serial" ~n:16 ~coords () in
      Alcotest.(check string) "forced name wins over default" "replay-simd"
        got;
      Alcotest.(check int) "forced never populates the cache" 0
        (Tuner.size ()))

let test_auto_argmax_and_hit () =
  with_env "auto" (fun () ->
      Tuner.reset ();
      Telemetry.reset ();
      Telemetry.set_enabled true;
      Fun.protect
        ~finally:(fun () -> Telemetry.set_enabled false)
        (fun () ->
          let c_trial = Telemetry.Counter.make "tuner.trial"
          and c_hit = Telemetry.Counter.make "tuner.hit" in
          let coords = coords_for ~g:32 300 in
          let c = Tuner.choose ~n:16 ~coords () in
          Alcotest.(check bool) "trials were measured" true
            (Telemetry.Counter.value c_trial > 0);
          Alcotest.(check bool) "at least the two serial candidates" true
            (List.length c.Tuner.trials >= 2);
          let best =
            List.fold_left
              (fun acc (t : Tuner.trial) ->
                if t.Tuner.samples_per_sec > acc.Tuner.samples_per_sec then t
                else acc)
              (List.hd c.Tuner.trials) c.Tuner.trials
          in
          Alcotest.(check string) "winner is the argmax of its own trials"
            best.Tuner.engine c.Tuner.backend;
          Alcotest.(check bool) "winner throughput is positive" true
            (c.Tuner.sps > 0.0);
          Alcotest.(check int) "one cached key" 1 (Tuner.size ());
          let trials_before = Telemetry.Counter.value c_trial in
          let c2 = Tuner.choose ~n:16 ~coords () in
          Alcotest.(check string) "same key returns the cached winner"
            c.Tuner.backend c2.Tuner.backend;
          Alcotest.(check int) "no re-trial on a hit" trials_before
            (Telemetry.Counter.value c_trial);
          Alcotest.(check bool) "hit counter ticked" true
            (Telemetry.Counter.value c_hit > 0);
          let resolved = Tuner.resolve ~default:"serial" ~n:16 ~coords () in
          Alcotest.(check string) "resolve returns the cached winner"
            c.Tuner.backend resolved))

let test_key_bucketing () =
  (* Direct key algebra. *)
  let k = Tuner.key_of ~dims:2 ~n:16 ~tol:None ~m:1024 ~domains:0 in
  Alcotest.(check int) "no tol -> bucket 0" 0 k.Tuner.tol_bucket;
  Alcotest.(check int) "m=1024 -> band 10" 10 k.Tuner.m_bucket;
  let k4 = Tuner.key_of ~dims:2 ~n:16 ~tol:(Some 1e-4) ~m:1024 ~domains:0 in
  Alcotest.(check int) "tol 1e-4 -> bucket -4" (-4) k4.Tuner.tol_bucket;
  Alcotest.(check bool) "same band, same key" true
    (Tuner.key_of ~dims:2 ~n:16 ~tol:None ~m:700 ~domains:0
    = Tuner.key_of ~dims:2 ~n:16 ~tol:None ~m:1000 ~domains:0);
  Alcotest.(check bool) "crossing the band re-keys" false
    (Tuner.key_of ~dims:2 ~n:16 ~tol:None ~m:300 ~domains:0
    = Tuner.key_of ~dims:2 ~n:16 ~tol:None ~m:700 ~domains:0);
  (* And through the cache: jitter within the band shares the entry. *)
  with_env "auto" (fun () ->
      Tuner.reset ();
      ignore (Tuner.choose ~n:16 ~coords:(coords_for ~g:32 700) ());
      ignore (Tuner.choose ~n:16 ~coords:(coords_for ~seed:6 ~g:32 1000) ());
      Alcotest.(check int) "one key for one band" 1 (Tuner.size ());
      ignore (Tuner.choose ~n:16 ~coords:(coords_for ~g:32 300) ());
      Alcotest.(check int) "new band, new key" 2 (Tuner.size ()))

let test_candidates_without_pool () =
  let names = Tuner.candidate_names () in
  Alcotest.(check bool) "serial always a candidate" true
    (List.mem "serial" names);
  Alcotest.(check bool) "compiled replay always a candidate" true
    (List.mem "slice" names);
  List.iter
    (fun nm ->
      Alcotest.(check bool) (nm ^ " needs a pool") false (List.mem nm names))
    [ "slice-parallel"; "replay-parallel" ];
  Alcotest.(check bool) "simd candidate tracks the dispatcher" true
    (List.mem "replay-simd" names = Simd.enabled ())

let () =
  Alcotest.run "tuner"
    [ ("mode",
       [ Alcotest.test_case "JIGSAW_TUNE parsing" `Quick test_mode_parsing;
         Alcotest.test_case "off is passthrough" `Quick
           test_off_is_passthrough;
         Alcotest.test_case "forced engine" `Quick test_forced_engine ]);
      ("auto",
       [ Alcotest.test_case "argmax winner, cached on repeat" `Quick
           test_auto_argmax_and_hit;
         Alcotest.test_case "shape-key bucketing" `Quick test_key_bucketing;
         Alcotest.test_case "candidate set without a pool" `Quick
           test_candidates_without_pool ]) ]
