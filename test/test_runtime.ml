(* Tests for the domain-pool runtime: work conservation, chunk tiling,
   exception propagation, reuse, shutdown semantics and the global pool. *)

module Pool = Runtime.Pool

let with_pool domains f =
  let p = Pool.create ~domains () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

(* Every index in [start, stop) must be visited exactly once, whatever the
   pool size or chunking. Distinct indices are distinct array cells, so
   concurrent bodies never write the same location. *)
let check_conservation ~domains ?chunk ~start ~stop () =
  with_pool domains (fun p ->
      let n = stop - start in
      let visits = Array.make (max n 1) 0 in
      Pool.parallel_for ?chunk p ~start ~stop (fun i ->
          if i < start || i >= stop then
            Alcotest.failf "index %d outside [%d, %d)" i start stop;
          visits.(i - start) <- visits.(i - start) + 1);
      Array.iteri
        (fun off c ->
          if off < n && c <> 1 then
            Alcotest.failf
              "index %d visited %d times (domains=%d chunk=%s)" (start + off)
              c domains
              (match chunk with Some c -> string_of_int c | None -> "auto"))
        visits)

let test_work_conservation () =
  List.iter
    (fun domains ->
      check_conservation ~domains ~start:0 ~stop:1000 ();
      check_conservation ~domains ~chunk:1 ~start:0 ~stop:97 ();
      check_conservation ~domains ~chunk:1000 ~start:0 ~stop:64 ();
      check_conservation ~domains ~chunk:7 ~start:(-13) ~stop:29 ();
      check_conservation ~domains ~start:5 ~stop:6 ();
      check_conservation ~domains ~start:3 ~stop:3 () (* empty *);
      check_conservation ~domains ~start:3 ~stop:2 () (* backwards = empty *))
    [ 1; 2; 4; 8 ]

let test_ranges_tile_exactly () =
  List.iter
    (fun domains ->
      with_pool domains (fun p ->
          let mutex = Mutex.create () in
          let seen = ref [] in
          Pool.parallel_for_ranges ~chunk:6 p ~start:2 ~stop:51
            (fun ~lo ~hi ->
              Mutex.protect mutex (fun () -> seen := (lo, hi) :: !seen));
          let ranges =
            List.sort (fun (a, _) (b, _) -> compare a b) !seen
          in
          (* The sorted chunks must tile [2, 51) with no gap or overlap,
             and none may exceed the requested chunk size. *)
          let last =
            List.fold_left
              (fun expect (lo, hi) ->
                Alcotest.(check int) "contiguous lo" expect lo;
                if hi - lo > 6 || hi <= lo then
                  Alcotest.failf "bad chunk [%d, %d)" lo hi;
                hi)
              2 ranges
          in
          Alcotest.(check int) "covers stop" 51 last))
    [ 1; 3; 8 ]

let test_exception_propagation () =
  List.iter
    (fun domains ->
      with_pool domains (fun p ->
          (match
             Pool.parallel_for ~chunk:1 p ~start:0 ~stop:100 (fun i ->
                 if i = 17 then failwith "body 17")
           with
          | () -> Alcotest.fail "expected the body's exception"
          | exception Failure _ -> ());
          (* The pool must have quiesced and remain usable. *)
          check_conservation ~domains ~start:0 ~stop:50 ();
          (* Several failing bodies: exactly one propagates. *)
          match
            Pool.parallel_for ~chunk:1 p ~start:0 ~stop:100 (fun i ->
                if i mod 3 = 0 then failwith "multi")
          with
          | () -> Alcotest.fail "expected an exception"
          | exception Failure m -> Alcotest.(check string) "first" "multi" m))
    [ 1; 2; 4 ]

let test_reuse_across_submissions () =
  with_pool 4 (fun p ->
      let n = 200 in
      let acc = Array.make n 0 in
      for _ = 1 to 100 do
        Pool.parallel_for p ~start:0 ~stop:n (fun i -> acc.(i) <- acc.(i) + i)
      done;
      Array.iteri
        (fun i v -> Alcotest.(check int) (Printf.sprintf "acc %d" i) (100 * i) v)
        acc)

let test_shutdown () =
  let p = Pool.create ~domains:4 () in
  Alcotest.(check int) "size" 4 (Pool.size p);
  Alcotest.(check bool) "live" false (Pool.is_shut_down p);
  Pool.shutdown p;
  Alcotest.(check bool) "down" true (Pool.is_shut_down p);
  Pool.shutdown p (* idempotent *);
  Pool.shutdown p;
  (* Post-shutdown submissions degrade to a serial loop, same results. *)
  let visits = Array.make 64 0 in
  Pool.parallel_for p ~start:0 ~stop:64 (fun i -> visits.(i) <- visits.(i) + 1);
  Array.iteri (fun i c -> Alcotest.(check int) (string_of_int i) 1 c) visits

let test_size_one_runs_in_caller () =
  (* A pool of 1 spawns no domains: bodies run on the calling domain. *)
  with_pool 1 (fun p ->
      let self = (Domain.self () :> int) in
      Pool.parallel_for p ~start:0 ~stop:16 (fun _ ->
          Alcotest.(check int) "same domain" self ((Domain.self () :> int))))

let test_invalid_args () =
  Alcotest.check_raises "domains 0"
    (Invalid_argument "Pool.create: domains < 1") (fun () ->
      ignore (Pool.create ~domains:0 ()));
  Alcotest.check_raises "negative domains"
    (Invalid_argument "Pool.create: domains < 1") (fun () ->
      ignore (Pool.create ~domains:(-3) ()));
  with_pool 2 (fun p ->
      Alcotest.check_raises "chunk 0"
        (Invalid_argument "Pool.parallel_for: chunk < 1") (fun () ->
          Pool.parallel_for ~chunk:0 p ~start:0 ~stop:10 ignore));
  Alcotest.check_raises "global 0"
    (Invalid_argument "Pool.set_global_domains: domains < 1") (fun () ->
      Pool.set_global_domains 0)

(* Adaptive work coarsening: the documented formula is
   max 1 (min items (max (items / (8 * size)) (ceil (16384 / work)))).
   The boundary cases are what the schedulers rely on: tiny item counts
   (fewer items than domains) coalesce into one chunk instead of one
   dispatch per item, cheap per-item work is amortised up to the 16k-op
   floor, and expensive per-item work falls back to the load-balance
   term. *)
let test_adaptive_chunk_boundaries () =
  with_pool 4 (fun p ->
      (* items below the amortisation floor: the whole range is one chunk *)
      Alcotest.(check int) "3 items, cheap work (< domains)" 3
        (Pool.adaptive_chunk p ~items:3 ~work_per_item:1);
      Alcotest.(check int) "1 item" 1
        (Pool.adaptive_chunk p ~items:1 ~work_per_item:1);
      (* cheap work: the 16384-op floor dominates the balance term *)
      Alcotest.(check int) "cheap work amortises to the floor" 16384
        (Pool.adaptive_chunk p ~items:100_000 ~work_per_item:1);
      Alcotest.(check int) "ceil division of the floor" 5462
        (Pool.adaptive_chunk p ~items:100_000 ~work_per_item:3);
      (* expensive work: the balance term (items / 32) dominates *)
      Alcotest.(check int) "expensive work load-balances" 3125
        (Pool.adaptive_chunk p ~items:100_000 ~work_per_item:100_000);
      (* chunk at least 1 even when both terms round to 0 *)
      Alcotest.(check int) "both terms zero" 1
        (Pool.adaptive_chunk p ~items:10 ~work_per_item:100_000);
      (* degenerate ranges *)
      Alcotest.(check int) "zero items" 1
        (Pool.adaptive_chunk p ~items:0 ~work_per_item:7);
      Alcotest.check_raises "work_per_item 0"
        (Invalid_argument "Pool.adaptive_chunk: work_per_item < 1") (fun () ->
          ignore (Pool.adaptive_chunk p ~items:10 ~work_per_item:0)));
  (* single-domain pool: chunk still valid, submission runs serially in
     the caller (no workers to balance across) *)
  with_pool 1 (fun p ->
      Alcotest.(check int) "pool of 1, cheap work" 16384
        (Pool.adaptive_chunk p ~items:100_000 ~work_per_item:1);
      let c = Pool.adaptive_chunk p ~items:50 ~work_per_item:9 in
      Alcotest.(check int) "pool of 1, small range is one chunk" 50 c)

(* Work conservation under adaptive chunks, including item counts smaller
   than the domain count and counts not divisible by the chunk. *)
let test_adaptive_chunk_conservation () =
  List.iter
    (fun domains ->
      List.iter
        (fun (items, work) ->
          with_pool domains (fun p ->
              let chunk = Pool.adaptive_chunk p ~items ~work_per_item:work in
              if chunk < 1 || chunk > max items 1 then
                Alcotest.failf "chunk %d outside [1, %d]" chunk items);
          check_conservation ~domains
            ~chunk:
              (let p = Pool.create ~domains () in
               Fun.protect
                 ~finally:(fun () -> Pool.shutdown p)
                 (fun () -> Pool.adaptive_chunk p ~items ~work_per_item:work))
            ~start:0 ~stop:items ())
        [ (1, 1); (2, 40_000); (3, 1); (97, 171); (1000, 64); (4096, 5) ])
    [ 1; 2; 3; 4; 7 ]

let test_global_pool () =
  Pool.set_global_domains 3;
  let p = Pool.global () in
  Alcotest.(check int) "sized as configured" 3 (Pool.size p);
  Alcotest.(check bool) "same instance" true (p == Pool.global ());
  (* Resizing replaces the pool on next use. *)
  Pool.set_global_domains 2;
  let q = Pool.global () in
  Alcotest.(check int) "resized" 2 (Pool.size q);
  Alcotest.(check bool) "stale pool retired" true (Pool.is_shut_down p);
  let visits = Array.make 40 0 in
  Pool.parallel_for q ~start:0 ~stop:40 (fun i -> visits.(i) <- visits.(i) + 1);
  Array.iteri (fun i c -> Alcotest.(check int) (string_of_int i) 1 c) visits;
  (* Leave a small global pool behind for any later test. *)
  Pool.set_global_domains 1

let () =
  Alcotest.run "runtime"
    [ ("pool",
       [ Alcotest.test_case "work conservation" `Quick test_work_conservation;
         Alcotest.test_case "chunk tiling" `Quick test_ranges_tile_exactly;
         Alcotest.test_case "exception propagation" `Quick
           test_exception_propagation;
         Alcotest.test_case "reuse across submissions" `Quick
           test_reuse_across_submissions;
         Alcotest.test_case "shutdown idempotent + serial fallback" `Quick
           test_shutdown;
         Alcotest.test_case "pool of one stays in caller" `Quick
           test_size_one_runs_in_caller;
         Alcotest.test_case "invalid arguments" `Quick test_invalid_args;
         Alcotest.test_case "adaptive chunk boundaries" `Quick
           test_adaptive_chunk_boundaries;
         Alcotest.test_case "adaptive chunk work conservation" `Quick
           test_adaptive_chunk_conservation;
         Alcotest.test_case "global pool sizing" `Quick test_global_pool ]) ]
