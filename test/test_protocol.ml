(* Wire-protocol battery for the serving tier: encode/decode round-trips
   under arbitrary fragmentation (torn reads at every byte boundary),
   oversized and malformed input rejected with typed errors, and no
   partial-state leakage across keep-alive requests on one decoder. *)

module P = Serving.Protocol

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Generators *)

let gen_name =
  QCheck.Gen.(
    let* n = int_range 0 12 in
    string_size ~gen:(char_range 'a' 'z') (return n))

let gen_float = QCheck.Gen.float

let gen_omega_axis m =
  QCheck.Gen.(
    array_repeat m (float_range (-.Float.pi) (Float.pi -. 1e-9)))

let gen_recon_request =
  QCheck.Gen.(
    let* tenant = gen_name in
    let* backend = gen_name in
    let* n = int_range 2 64 in
    let* dims = int_range 1 3 in
    let* m = int_range 1 24 in
    let* method_ =
      oneof [ return P.Adjoint; map (fun k -> P.Cg k) (int_range 1 50) ]
    in
    let* tol = opt (float_range 1e-12 1e-1) in
    let* family =
      oneofl
        [ None; Some Numerics.Window.KB; Some Numerics.Window.ES ]
    in
    let* transform =
      oneofl
        Nufft.Transform.[ Type1; Type2; Type3 ]
    in
    let* omega = array_repeat dims (gen_omega_axis m) in
    let* values = array_size (return (2 * m)) gen_float in
    let* density = opt (array_size (return m) gen_float) in
    return
      { P.tenant; backend; transform; n; dims; method_; tol; family; omega;
        values; density })

let gen_request =
  QCheck.Gen.(
    frequency
      [ (1, return P.Ping);
        (1, return P.Metrics);
        (1, return P.Stats);
        (5, map (fun r -> P.Recon r) gen_recon_request) ])

let arb_request = QCheck.make gen_request

let decode_all bytes ~chunks =
  (* Feed [bytes] split at the given cut points; collect every frame. *)
  let dec = P.Decoder.create () in
  let frames = ref [] in
  let feed_piece s =
    P.Decoder.feed_string dec s;
    let rec pull () =
      match P.Decoder.next dec with
      | Ok (Some f) ->
          frames := f :: !frames;
          pull ()
      | Ok None -> ()
      | Error e -> Alcotest.failf "decoder error: %s" (P.error_message e)
    in
    pull ()
  in
  List.iter feed_piece chunks;
  ignore bytes;
  (List.rev !frames, P.Decoder.pending_bytes dec)

let split_at_points s points =
  let points = List.sort_uniq compare (0 :: String.length s :: points) in
  let rec pairs = function
    | a :: (b :: _ as rest) -> String.sub s a (b - a) :: pairs rest
    | _ -> []
  in
  pairs points

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_roundtrip =
  QCheck.Test.make ~name:"request round-trips bit-exactly" ~count:200
    arb_request (fun req ->
      let bytes = P.encode_request req in
      let frames, pending = decode_all bytes ~chunks:[ bytes ] in
      match frames with
      | [ f ] -> (
          match P.decode_request f with
          | Ok req' -> pending = 0 && P.request_equal req req'
          | Error e -> QCheck.Test.fail_report (P.error_message e))
      | l -> QCheck.Test.fail_reportf "%d frames from one request" (List.length l))

let prop_fragmentation =
  (* A stream of several requests, torn at random byte positions, decodes
     to exactly the original sequence with an empty buffer at the end. *)
  QCheck.Test.make ~name:"arbitrary fragmentation preserves the stream"
    ~count:100
    QCheck.(
      make
        Gen.(
          let* reqs = list_size (int_range 1 5) gen_request in
          let bytes = String.concat "" (List.map P.encode_request reqs) in
          let* cuts =
            list_size (int_range 0 20) (int_range 0 (String.length bytes))
          in
          return (reqs, bytes, cuts)))
    (fun (reqs, bytes, cuts) ->
      let frames, pending = decode_all bytes ~chunks:(split_at_points bytes cuts) in
      pending = 0
      && List.length frames = List.length reqs
      && List.for_all2
           (fun req f ->
             match P.decode_request f with
             | Ok req' -> P.request_equal req req'
             | Error _ -> false)
           reqs frames)

let prop_response_roundtrip =
  QCheck.Test.make ~name:"response round-trips bit-exactly" ~count:200
    QCheck.(
      make
        Gen.(
          frequency
            [ (1, return P.Pong);
              (2, map (fun s -> P.Text s) (string_size (int_range 0 64)));
              ( 2,
                let* st =
                  oneofl
                    [ P.Bad_request; P.Too_large; P.Shed; P.Draining;
                      P.Timeout; P.Quota; P.Internal_error ]
                in
                let* msg = string_size (int_range 0 40) in
                return (P.Err (st, msg)) );
              ( 3,
                let* iterations = int_range 0 100 in
                let* elapsed_s = gen_float in
                let* image_n = int_range 2 32 in
                let* image =
                  array_size (int_range 0 64) gen_float
                in
                return
                  (P.Recon_ok
                     { P.iterations; elapsed_s; image_n; image_dims = 2;
                       image }) ) ]))
    (fun resp ->
      let bytes = P.encode_response resp in
      let dec = P.Decoder.create () in
      P.Decoder.feed_string dec bytes;
      match P.Decoder.next dec with
      | Ok (Some f) -> (
          match (P.decode_response f, resp) with
          | Ok P.Pong, P.Pong -> true
          | Ok (P.Text a), P.Text b -> a = b
          | Ok (P.Err (sa, ma)), P.Err (sb, mb) -> sa = sb && ma = mb
          | Ok (P.Recon_ok a), P.Recon_ok b ->
              a.P.iterations = b.P.iterations
              && Int64.bits_of_float a.P.elapsed_s
                 = Int64.bits_of_float b.P.elapsed_s
              && a.P.image_n = b.P.image_n
              && a.P.image_dims = b.P.image_dims
              && Array.length a.P.image = Array.length b.P.image
              && Array.for_all2
                   (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
                   a.P.image b.P.image
          | _ -> false)
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Deterministic torn-read coverage: every byte boundary *)

let test_every_byte_boundary () =
  let req =
    P.Recon
      { P.tenant = "t"; backend = ""; transform = Nufft.Transform.Type1;
        n = 8; dims = 2; method_ = P.Adjoint;
        tol = Some 1e-6; family = Some Numerics.Window.ES;
        omega = [| [| 0.5; -1.0 |]; [| 1.5; -2.0 |] |];
        values = [| 1.0; 2.0; 3.0; 4.0 |]; density = None }
  in
  let bytes = P.encode_request req in
  let dec = P.Decoder.create () in
  (* one byte at a time; no frame may appear before the last byte *)
  for i = 0 to String.length bytes - 1 do
    (match P.Decoder.next dec with
    | Ok None -> ()
    | Ok (Some _) -> Alcotest.fail "frame completed early"
    | Error e -> Alcotest.failf "decoder error: %s" (P.error_message e));
    P.Decoder.feed dec bytes i 1
  done;
  (match P.Decoder.next dec with
  | Ok (Some f) -> (
      match P.decode_request f with
      | Ok req' -> checkb "byte-at-a-time round-trip" true (P.request_equal req req')
      | Error e -> Alcotest.failf "decode: %s" (P.error_message e))
  | _ -> Alcotest.fail "no frame after all bytes");
  check Alcotest.int "empty buffer" 0 (P.Decoder.pending_bytes dec)

(* ------------------------------------------------------------------ *)
(* Typed rejection *)

let expect_error name got =
  match got with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: expected a typed error" name

let test_bad_magic () =
  let dec = P.Decoder.create () in
  P.Decoder.feed_string dec "NOPE\x01\x00\x00\x00\x00\x00";
  (match P.Decoder.next dec with
  | Error P.Bad_magic -> ()
  | _ -> Alcotest.fail "expected Bad_magic");
  (* poisoned: same error forever, feeding more changes nothing *)
  P.Decoder.feed_string dec (P.encode_request P.Ping);
  match P.Decoder.next dec with
  | Error P.Bad_magic -> ()
  | _ -> Alcotest.fail "decoder must stay poisoned"

let test_bad_kind () =
  let dec = P.Decoder.create () in
  P.Decoder.feed_string dec (P.encode_frame ~kind:0x7f "");
  match P.Decoder.next dec with
  | Error (P.Bad_kind 0x7f) -> ()
  | _ -> Alcotest.fail "expected Bad_kind 0x7f"

let test_oversized_header () =
  let limits = { P.default_limits with max_payload = 1024 } in
  let dec = P.Decoder.create ~limits () in
  (* header declares 1 MiB: rejected from the header alone, before any
     payload is buffered *)
  let b = Buffer.create 16 in
  Buffer.add_string b P.magic;
  Buffer.add_char b '\x02';
  Buffer.add_char b '\x00';
  Buffer.add_int32_be b 1_048_576l;
  P.Decoder.feed_string dec (Buffer.contents b);
  (match P.Decoder.next dec with
  | Error (P.Oversized { declared = 1_048_576; limit = 1024 }) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (P.error_message e)
  | Ok _ -> Alcotest.fail "oversized frame accepted");
  check Alcotest.string "maps to Too_large" "too-large"
    (P.status_name (P.status_of_error (P.Oversized { declared = 0; limit = 0 })))

let test_oversized_strings_and_counts () =
  (* a tenant name longer than max_string is rejected by the payload
     decoder with a typed Malformed *)
  let long = String.make 300 'a' in
  let req =
    { P.tenant = long; backend = ""; transform = Nufft.Transform.Type1;
      n = 8; dims = 1; method_ = P.Adjoint;
      tol = None; family = None; omega = [| [| 0.0 |] |];
      values = [| 1.0; 0.0 |]; density = None }
  in
  let bytes = P.encode_request (P.Recon req) in
  let dec = P.Decoder.create () in
  P.Decoder.feed_string dec bytes;
  (match P.Decoder.next dec with
  | Ok (Some f) -> expect_error "long tenant" (P.decode_request f)
  | _ -> Alcotest.fail "frame expected");
  (* a declared sample count past max_samples is rejected before its
     arrays are materialised *)
  let limits = { P.default_limits with max_samples = 4 } in
  let req8 = { req with tenant = "t"; omega = [| Array.make 8 0.0 |];
               values = Array.make 16 0.0 } in
  let bytes = P.encode_request (P.Recon req8) in
  let dec = P.Decoder.create () in
  P.Decoder.feed_string dec bytes;
  match P.Decoder.next dec with
  | Ok (Some f) -> expect_error "m over limit" (P.decode_request ~limits f)
  | _ -> Alcotest.fail "frame expected"

let test_unknown_transform_code () =
  (* The transform type rides one wire byte (after the family byte);
     locate it by diffing two otherwise-identical requests, then verify
     an out-of-range code is rejected with a typed Malformed rather than
     silently defaulting. *)
  let payload_of transform =
    let bytes =
      P.encode_request
        (P.Recon
           { P.tenant = "t"; backend = ""; transform; n = 8; dims = 1;
             method_ = P.Adjoint; tol = None; family = None;
             omega = [| [| 0.25 |] |]; values = [| 1.0; 0.0 |];
             density = None })
    in
    String.sub bytes P.header_len (String.length bytes - P.header_len)
  in
  let p1 = payload_of Nufft.Transform.Type1 in
  let p3 = payload_of Nufft.Transform.Type3 in
  check Alcotest.int "same payload length" (String.length p1)
    (String.length p3);
  let diffs = ref [] in
  String.iteri (fun i c -> if c <> p3.[i] then diffs := i :: !diffs) p1;
  match !diffs with
  | [ i ] ->
      let mutated = Bytes.of_string p1 in
      Bytes.set mutated i '\xee';
      expect_error "unknown transform code"
        (P.decode_request { P.kind = 0x02; payload = Bytes.to_string mutated });
      (* the legitimate codes still decode *)
      List.iter
        (fun t ->
          match
            P.decode_request { P.kind = 0x02; payload = payload_of t }
          with
          | Ok (P.Recon r) ->
              checkb "transform code round-trips" true (r.P.transform = t)
          | _ -> Alcotest.fail "valid transform rejected")
        Nufft.Transform.[ Type1; Type2; Type3 ]
  | l ->
      Alcotest.failf "transform must occupy exactly one wire byte (%d differ)"
        (List.length l)

let test_truncated_and_trailing () =
  let req =
    { P.tenant = "t"; backend = ""; transform = Nufft.Transform.Type1;
      n = 8; dims = 1; method_ = P.Cg 3;
      tol = None; family = None; omega = [| [| 1.0; 2.0 |] |];
      values = [| 1.0; 0.0; 2.0; 0.0 |]; density = None }
  in
  let bytes = P.encode_request (P.Recon req) in
  let payload = String.sub bytes P.header_len (String.length bytes - P.header_len) in
  (* truncate the payload but declare the shorter length honestly: the
     frame parses, the payload decoder reports a typed Malformed *)
  let cut = String.sub payload 0 (String.length payload - 3) in
  expect_error "truncated payload"
    (P.decode_request { P.kind = 0x02; payload = cut });
  (* trailing garbage after a complete payload is equally typed *)
  expect_error "trailing bytes"
    (P.decode_request { P.kind = 0x02; payload = payload ^ "xyz" })

let test_keepalive_no_state_leakage () =
  (* A half-fed second request must not perturb the first, and a decoder
     never hands back bytes from a previous frame: run three distinct
     requests through one decoder with a deliberately split middle
     request. *)
  let reqs =
    [ P.Ping;
      P.Recon
        { P.tenant = "a"; backend = "serial"; transform = Nufft.Transform.Type1;
          n = 16; dims = 2;
          method_ = P.Adjoint; tol = None; family = None;
          omega = [| [| 0.1; 0.2; 0.3 |]; [| -0.1; -0.2; -0.3 |] |];
          values = [| 1.; 0.; 2.; 0.; 3.; 0. |]; density = Some [| 1.; 1.; 1. |] };
      P.Metrics ]
  in
  let encoded = List.map P.encode_request reqs in
  let dec = P.Decoder.create () in
  let decoded = ref [] in
  let pull () =
    let rec go () =
      match P.Decoder.next dec with
      | Ok (Some f) ->
          (match P.decode_request f with
          | Ok r -> decoded := r :: !decoded
          | Error e -> Alcotest.failf "decode: %s" (P.error_message e));
          go ()
      | Ok None -> ()
      | Error e -> Alcotest.failf "decoder: %s" (P.error_message e)
    in
    go ()
  in
  (match encoded with
  | [ a; b; c ] ->
      P.Decoder.feed_string dec a;
      pull ();
      check Alcotest.int "first frame decoded alone" 1 (List.length !decoded);
      check Alcotest.int "no residue" 0 (P.Decoder.pending_bytes dec);
      (* split the second request across two feeds, interleaved with pulls *)
      let half = String.length b / 2 in
      P.Decoder.feed_string dec (String.sub b 0 half);
      pull ();
      check Alcotest.int "half a frame yields nothing" 1 (List.length !decoded);
      P.Decoder.feed_string dec (String.sub b half (String.length b - half));
      P.Decoder.feed_string dec c;
      pull ()
  | _ -> assert false);
  check Alcotest.int "all frames decoded" 3 (List.length !decoded);
  check Alcotest.int "empty at end" 0 (P.Decoder.pending_bytes dec);
  List.iter2
    (fun want got ->
      checkb "keep-alive round-trip" true (P.request_equal want got))
    reqs (List.rev !decoded)

let test_http_sniff () =
  checkb "GET" true (P.looks_like_http "GET /metrics HTTP/1.1\r\n");
  checkb "jgs1 frame" false (P.looks_like_http (P.encode_request P.Ping));
  checkb "short" false (P.looks_like_http "GE")

let () =
  Alcotest.run "protocol"
    [ ( "roundtrip",
        Qutil.to_alcotests
          [ prop_roundtrip; prop_fragmentation; prop_response_roundtrip ] );
      ( "torn-reads",
        [ Alcotest.test_case "every byte boundary" `Quick
            test_every_byte_boundary ] );
      ( "rejection",
        [ Alcotest.test_case "bad magic poisons" `Quick test_bad_magic;
          Alcotest.test_case "bad kind" `Quick test_bad_kind;
          Alcotest.test_case "oversized header" `Quick test_oversized_header;
          Alcotest.test_case "oversized strings/counts" `Quick
            test_oversized_strings_and_counts;
          Alcotest.test_case "truncated and trailing" `Quick
            test_truncated_and_trailing;
          Alcotest.test_case "unknown transform code" `Quick
            test_unknown_transform_code ] );
      ( "keep-alive",
        [ Alcotest.test_case "no state leakage" `Quick
            test_keepalive_no_state_leakage;
          Alcotest.test_case "http sniff" `Quick test_http_sniff ] ) ]
