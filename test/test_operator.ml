(* Operator-layer tests: registry contents, the adjointness property
   <forward x, y> = <x, adjoint y> through the interface for every
   registered backend in 2D and 3D, differential roundtrip agreement
   between CPU backends, the 3D reconstruction path, centralised tile
   validation, and the per-operator instrumentation. *)

module Op = Nufft.Operator
module Sample = Nufft.Sample
module Cvec = Numerics.Cvec
module C = Numerics.Complexd
module Fp = Numerics.Fixed_point
module Phantom = Imaging.Phantom

let () =
  Jigsaw.Operator_backend.register ();
  Gpusim.Operator_backend.register ()

let rok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "recon error: %s" (Imaging.Recon.error_message e)

(* ------------------------------------------------------------------ *)
(* Registry. *)

let required_2d =
  [ "serial"; "output-parallel"; "binned"; "slice"; "slice-parallel";
    "jigsaw-2d"; "gpusim-slice"; "gpusim-binned" ]

let cpu_backends =
  [ "serial"; "output-parallel"; "binned"; "slice"; "slice-parallel" ]

let test_registry_names () =
  let names2 = Op.names ~dims:2 () in
  List.iter
    (fun n -> Alcotest.(check bool) (n ^ " registered 2D") true
        (List.mem n names2))
    required_2d;
  let names3 = Op.names ~dims:3 () in
  List.iter
    (fun n -> Alcotest.(check bool) (n ^ " registered 3D") true
        (List.mem n names3))
    (cpu_backends @ [ "jigsaw-3d" ]);
  Alcotest.(check bool) "jigsaw-3d is 3D-only" false
    (List.mem "jigsaw-3d" names2);
  Alcotest.(check bool) "gpusim-slice is 2D-only" false
    (List.mem "gpusim-slice" names3);
  Alcotest.(check bool) "all () covers names ()" true
    (List.map fst (Op.all ()) = Op.names ())

let test_registry_errors () =
  Alcotest.check_raises "duplicate name rejected"
    (Invalid_argument "Operator.register: duplicate backend \"serial\"")
    (fun () -> Op.register "serial" (fun _ -> assert false));
  let ctx =
    Op.context ~n:16 ~coords:(Sample.random_2d ~g:32 8) ()
  in
  (match Op.create "no-such-backend" ctx with
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "unknown backend lists registry" true
        (String.length msg > 0
        && String.sub msg 0 25 = "Operator: unknown backend")
  | _ -> Alcotest.fail "unknown backend accepted");
  match Op.create "jigsaw-3d" ctx with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "3D-only backend accepted a 2D context"

(* ------------------------------------------------------------------ *)
(* Adjointness: <A x, y> = <x, A^H y> with the Hermitian inner product,
   for a random image x and random sample values y on the bound
   coordinates. The CPU and gpusim backends use one weight table for both
   directions, so the identity holds to double-precision accumulation
   order; the JIGSAW backends grid in Q1.15 fixed point against a
   double-precision forward, so the mismatch is bounded by the table /
   datapath quantization step. *)

let random_cvec ~seed len =
  let rng = Random.State.make [| seed |] in
  Cvec.init len (fun _ ->
      C.make
        (Random.State.float rng 1.0 -. 0.5)
        (Random.State.float rng 1.0 -. 0.5))

let adjointness_error op coords =
  let x = random_cvec ~seed:11 (Op.image_length op) in
  let y = Sample.with_values coords (random_cvec ~seed:13 (Sample.length coords)) in
  let ax = Op.apply_forward op x in
  let aty = Op.apply_adjoint op y in
  let lhs = Cvec.dot ax.Sample.values y.Sample.values in
  let rhs = Cvec.dot x aty in
  C.norm (C.sub lhs rhs) /. Float.max (C.norm lhs) (C.norm rhs)

(* Fixed-point tolerance, derived: the engine quantizes each of the M
   sample values and each of the w^dims table weights to Q1.15, so the
   relative inner-product error scales with the quantization step times
   the per-sample fan-out. The factor 8 absorbs accumulation rounding. *)
let fixed_tol ~dims ~w =
  let q = Fp.quantization_error_bound Fp.q15 in
  let rec pow b e = if e = 0 then 1 else b * pow b (e - 1) in
  8.0 *. q *. float_of_int (pow w dims)

let adjointness_case ~dims ~n ~m name =
  let g = 2 * n in
  let coords = Sample.random ~seed:(41 + dims) ~dims ~g m in
  let ctx = Op.context ~n ~coords () in
  let op = Op.create name ctx in
  let err = adjointness_error op coords in
  let tol =
    if String.length name >= 6 && String.sub name 0 6 = "jigsaw" then
      fixed_tol ~dims ~w:6
    else 1e-10
  in
  Alcotest.(check bool)
    (Printf.sprintf "%s %dD adjointness err=%.2e tol=%.2e" name dims err tol)
    true (err < tol)

let test_adjointness_2d () =
  List.iter (adjointness_case ~dims:2 ~n:16 ~m:128) (Op.names ~dims:2 ())

let test_adjointness_3d () =
  List.iter (adjointness_case ~dims:3 ~n:8 ~m:96) (Op.names ~dims:3 ())

(* ------------------------------------------------------------------ *)
(* Differential: Recon.roundtrip through any two CPU operators agrees to
   accumulation-order tolerance (slice is bit-identical to serial; the
   parallel / binned schedules only reorder the same additions). *)

let test_roundtrip_differential () =
  let n = 32 in
  let g = 2 * n in
  let image = Phantom.make ~n () in
  let traj = Trajectory.Radial.make ~spokes:16 ~readout:32 () in
  let density = Trajectory.Radial.density_weights traj in
  let coords = Imaging.Recon.coords_of_traj ~g traj in
  let run name =
    let op = Op.create name (Op.context ~n ~coords ()) in
    fst (rok (Imaging.Recon.roundtrip_op ~density op image))
  in
  let reference = run "serial" in
  List.iter
    (fun name ->
      let recon = run name in
      let worst = ref 0.0 in
      for i = 0 to Cvec.length recon - 1 do
        let d = C.norm (C.sub (Cvec.get recon i) (Cvec.get reference i)) in
        if d > !worst then worst := d
      done;
      Alcotest.(check bool)
        (Printf.sprintf "%s matches serial (max |diff| = %.2e)" name !worst)
        true (!worst < 1e-10))
    (List.filter (fun b -> b <> "serial") cpu_backends)

(* ------------------------------------------------------------------ *)
(* 3D reconstruction path through Imaging.Recon via the operator
   interface: acquire a smooth volume at random 3D locations, adjoint it
   back, and check the result has the right shape and is finite and
   non-trivially correlated with the input. *)

let test_recon_3d () =
  let n = 8 in
  let g = 2 * n in
  let image =
    Cvec.init (n * n * n) (fun idx ->
        let ix = idx mod n and iy = idx / n mod n and iz = idx / (n * n) in
        let d2 c = (float_of_int c -. (float_of_int n /. 2.0)) ** 2.0 in
        C.of_float (exp (-.(d2 ix +. d2 iy +. d2 iz) /. 8.0)))
  in
  let coords = Sample.random ~seed:3 ~dims:3 ~g 600 in
  let op = Op.create "slice" (Op.context ~n ~coords ()) in
  let samples = Imaging.Recon.acquire_op op image in
  Alcotest.(check int) "acquired sample count" 600 (Sample.length samples);
  let recon = rok (Imaging.Recon.reconstruct_op op samples) in
  Alcotest.(check int) "volume length" (n * n * n) (Cvec.length recon);
  for i = 0 to Cvec.length recon - 1 do
    let v = Cvec.get recon i in
    if not (Float.is_finite v.C.re && Float.is_finite v.C.im) then
      Alcotest.fail "non-finite voxel in 3D reconstruction"
  done;
  let corr = (Cvec.dot image recon).C.re in
  Alcotest.(check bool) "reconstruction correlates with input" true
    (corr > 0.0)

let test_roundtrip_3d_nrmsd () =
  let n = 8 in
  let g = 2 * n in
  let image =
    Cvec.init (n * n * n) (fun idx ->
        let ix = idx mod n and iy = idx / n mod n and iz = idx / (n * n) in
        let d2 c = (float_of_int c -. (float_of_int n /. 2.0)) ** 2.0 in
        C.of_float (exp (-.(d2 ix +. d2 iy +. d2 iz) /. 8.0)))
  in
  let coords = Sample.random ~seed:5 ~dims:3 ~g 2000 in
  let op = Op.create "serial" (Op.context ~n ~coords ()) in
  let _, err = rok (Imaging.Recon.roundtrip_op op image) in
  Alcotest.(check bool)
    (Printf.sprintf "3D roundtrip NRMSD %.3f bounded" err)
    true (Float.is_finite err && err < 2.0)

(* ------------------------------------------------------------------ *)
(* Tile validation is centralised in Coord: Plan.make and the engine
   fallbacks reject / repair the same way. *)

let test_tile_validation () =
  Alcotest.check_raises "Plan.make rejects w > t"
    (Invalid_argument "Coord: window width must not exceed tile size")
    (fun () ->
      ignore (Nufft.Plan.make ~engine:(Nufft.Gridding.Slice_and_dice 4) ~n:16 ()));
  Alcotest.check_raises "Plan.make rejects t not dividing g"
    (Invalid_argument "Coord: tile size must divide grid size")
    (fun () ->
      ignore (Nufft.Plan.make ~engine:(Nufft.Gridding.Slice_parallel 7) ~n:16 ()));
  Alcotest.(check bool) "tiling_ok accepts 8 | 32" true
    (Nufft.Coord.tiling_ok ~t:8 ~g:32 ~w:6);
  Alcotest.(check bool) "tiling_ok rejects 7 | 32" false
    (Nufft.Coord.tiling_ok ~t:7 ~g:32 ~w:6);
  Alcotest.(check int) "fallback_tile picks max w 8 when it divides" 8
    (Nufft.Coord.fallback_tile ~g:32 ~w:6);
  Alcotest.(check int) "fallback_tile degrades to one tile" 30
    (Nufft.Coord.fallback_tile ~g:30 ~w:6);
  Alcotest.(check int) "Gridding.tile_for delegates to Coord"
    (Nufft.Coord.fallback_tile ~g:40 ~w:6)
    (Nufft.Gridding.tile_for ~g:40 ~w:6)

(* ------------------------------------------------------------------ *)
(* Instrumentation: counters tick, and the jigsaw-2d cycle model is the
   paper's M + 12 per streamed adjoint. *)

let test_stats () =
  let n = 16 in
  let m = 128 in
  let coords = Sample.random_2d ~seed:9 ~g:(2 * n) m in
  let ctx = Op.context ~n ~coords () in
  let op = Op.create "jigsaw-2d" ctx in
  ignore (Op.apply_adjoint op coords);
  ignore (Op.apply_adjoint op coords);
  ignore (Op.apply_forward op (random_cvec ~seed:1 (n * n)));
  let st = Op.stats_of op in
  Alcotest.(check int) "adjoints counted" 2 st.Op.adjoints;
  Alcotest.(check int) "forwards counted" 1 st.Op.forwards;
  Alcotest.(check int) "cycles = 2 * (M + 12)" (2 * (m + 12)) st.Op.cycles;
  Alcotest.(check bool) "adjoint wall-clock recorded" true
    (st.Op.adjoint_s > 0.0);
  let cpu = Op.create "serial" ctx in
  ignore (Op.apply_adjoint cpu coords);
  let cst = Op.stats_of cpu in
  Alcotest.(check int) "CPU backends report no cycles" 0 cst.Op.cycles;
  Alcotest.(check bool) "stage timings recorded" true
    (cst.Op.gridding_s > 0.0 && cst.Op.adjoint_s >= cst.Op.gridding_s)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "operator"
    [ ( "registry",
        [ Alcotest.test_case "names and dims" `Quick test_registry_names;
          Alcotest.test_case "errors" `Quick test_registry_errors ] );
      ( "adjointness",
        [ Alcotest.test_case "2d all backends" `Quick test_adjointness_2d;
          Alcotest.test_case "3d all backends" `Quick test_adjointness_3d ] );
      ( "differential",
        [ Alcotest.test_case "cpu roundtrip agreement" `Quick
            test_roundtrip_differential ] );
      ( "recon-3d",
        [ Alcotest.test_case "acquire + reconstruct" `Quick test_recon_3d;
          Alcotest.test_case "roundtrip nrmsd" `Quick test_roundtrip_3d_nrmsd ]
      );
      ( "validation",
        [ Alcotest.test_case "tile rules centralised" `Quick
            test_tile_validation ] );
      ( "stats",
        [ Alcotest.test_case "counters and cycles" `Quick test_stats ] ) ]
