(* Unit and property tests for the numerics substrate. *)

module C = Numerics.Complexd
module Cvec = Numerics.Cvec
module F32 = Numerics.Float32
module Fp = Numerics.Fixed_point
module Bessel = Numerics.Bessel
module Window = Numerics.Window
module Wt = Numerics.Weight_table

let check_close ?(eps = 1e-12) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.17g, got %.17g (diff %g)" msg expected actual
      (Float.abs (expected -. actual))

let check_complex ?(eps = 1e-12) msg (expected : C.t) (actual : C.t) =
  check_close ~eps (msg ^ ".re") expected.re actual.re;
  check_close ~eps (msg ^ ".im") expected.im actual.im

(* ------------------------------------------------------------------ *)
(* Complexd *)

let test_complex_basic () =
  let a = C.make 1.0 2.0 and b = C.make 3.0 (-4.0) in
  check_complex "add" (C.make 4.0 (-2.0)) (C.add a b);
  check_complex "sub" (C.make (-2.0) 6.0) (C.sub a b);
  check_complex "mul" (C.make 11.0 2.0) (C.mul a b);
  check_complex "conj" (C.make 1.0 (-2.0)) (C.conj a);
  check_complex "neg" (C.make (-1.0) (-2.0)) (C.neg a);
  check_close "norm2" 5.0 (C.norm2 a);
  check_close "norm" (sqrt 5.0) (C.norm a)

let test_complex_div () =
  let a = C.make 2.5 (-1.5) and b = C.make 0.5 3.0 in
  let q = C.div a b in
  check_complex ~eps:1e-14 "div*b" a (C.mul q b);
  check_complex ~eps:1e-14 "inv" C.one (C.mul b (C.inv b))

let test_complex_exp_i () =
  check_complex "exp_i 0" C.one (C.exp_i 0.0);
  check_complex ~eps:1e-15 "exp_i pi/2" C.i (C.exp_i (Float.pi /. 2.0));
  let t = 0.7734 in
  check_close "unit norm" 1.0 (C.norm (C.exp_i t))

let prop_knuth_equals_mul =
  QCheck.Test.make ~name:"mul_knuth = mul (up to rounding)" ~count:1000
    QCheck.(quad (float_range (-100.) 100.) (float_range (-100.) 100.)
              (float_range (-100.) 100.) (float_range (-100.) 100.))
    (fun (ar, ai, br, bi) ->
      let a = C.make ar ai and b = C.make br bi in
      let m = C.mul a b and k = C.mul_knuth a b in
      let scale = 1.0 +. C.norm a *. C.norm b in
      Float.abs (m.re -. k.re) <= 1e-10 *. scale
      && Float.abs (m.im -. k.im) <= 1e-10 *. scale)

(* ------------------------------------------------------------------ *)
(* Cvec *)

let test_cvec_roundtrip () =
  let v = Cvec.create 4 in
  Alcotest.(check int) "length" 4 (Cvec.length v);
  Cvec.set v 2 (C.make 3.5 (-1.25));
  check_complex "get/set" (C.make 3.5 (-1.25)) (Cvec.get v 2);
  check_complex "untouched" C.zero (Cvec.get v 0);
  Cvec.accumulate v 2 (C.make 0.5 0.25);
  check_complex "accumulate" (C.make 4.0 (-1.0)) (Cvec.get v 2)

let test_cvec_dot () =
  let a = Cvec.of_complex_array [| C.make 1.0 1.0; C.make 2.0 0.0 |] in
  let b = Cvec.of_complex_array [| C.make 0.0 1.0; C.make 1.0 1.0 |] in
  (* conj(1+i)(i) + conj(2)(1+i) = (1-i)i + 2+2i = i+1 + 2+2i = 3+3i *)
  check_complex "dot" (C.make 3.0 3.0) (Cvec.dot a b)

let test_cvec_nrmsd () =
  let r = Cvec.of_complex_array [| C.make 3.0 0.0; C.make 0.0 4.0 |] in
  let v = Cvec.of_complex_array [| C.make 3.0 0.0; C.make 0.0 4.0 |] in
  check_close "identical" 0.0 (Cvec.nrmsd ~reference:r v);
  let w = Cvec.of_complex_array [| C.make 3.0 0.5; C.make 0.0 4.0 |] in
  check_close "perturbed" (0.5 /. 5.0) (Cvec.nrmsd ~reference:r w);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Cvec.nrmsd: length mismatch") (fun () ->
      ignore (Cvec.nrmsd ~reference:r (Cvec.create 3)))

let test_cvec_ops () =
  let v = Cvec.init 3 (fun k -> C.make (float_of_int k) 1.0) in
  check_close "norm2" (0.0 +. 1.0 +. 1.0 +. 1.0 +. 4.0 +. 1.0) (Cvec.norm2 v);
  let w = Cvec.copy v in
  Cvec.scale_inplace 2.0 w;
  check_complex "scale" (C.make 4.0 2.0) (Cvec.get w 2);
  Cvec.add_inplace w v;
  check_complex "add_inplace" (C.make 6.0 3.0) (Cvec.get w 2);
  check_close "max_abs_diff" 2.0 (Cvec.max_abs_diff v w |> fun d ->
    if d >= 2.0 then 2.0 else d) ;
  let sum = Cvec.fold (fun acc c -> C.add acc c) C.zero v in
  check_complex "fold" (C.make 3.0 3.0) sum

(* ------------------------------------------------------------------ *)
(* Float32 *)

let test_f32_round () =
  check_close ~eps:0.0 "exact small int" 5.0 (F32.round 5.0);
  let r = F32.round 0.1 in
  check_close ~eps:1e-7 "0.1f" 0.1 r;
  Alcotest.(check bool) "0.1 inexact in f32" true (r <> 0.1);
  check_close ~eps:0.0 "idempotent" r (F32.round r)

let test_f32_ops () =
  (* 16777216 + 1 is not representable in f32. *)
  check_close ~eps:0.0 "ulp cliff" 16777216.0 (F32.add 16777216.0 1.0);
  check_close ~eps:0.0 "mul" (F32.round (0.1 *. 0.2)) (F32.mul 0.1 0.2)

let prop_f32_cmul_close =
  QCheck.Test.make ~name:"f32 cmul ~ double cmul" ~count:500
    QCheck.(quad (float_range (-1.) 1.) (float_range (-1.) 1.)
              (float_range (-1.) 1.) (float_range (-1.) 1.))
    (fun (ar, ai, br, bi) ->
      let a = C.make ar ai and b = C.make br bi in
      let exact = C.mul a b and f32 = F32.cmul a b in
      C.norm (C.sub exact f32) <= 1e-6)

(* ------------------------------------------------------------------ *)
(* Fixed point *)

let test_fp_fmt_validation () =
  Alcotest.check_raises "total too big"
    (Invalid_argument "Fixed_point.fmt: total_bits must be in 1..48")
    (fun () -> ignore (Fp.fmt ~total_bits:64 ~frac_bits:10));
  Alcotest.check_raises "frac >= total"
    (Invalid_argument "Fixed_point.fmt: frac_bits must be in 0..total_bits-1")
    (fun () -> ignore (Fp.fmt ~total_bits:8 ~frac_bits:8))

let test_fp_roundtrip () =
  let f = Fp.q15 in
  check_close ~eps:(Fp.epsilon f /. 2.0) "0.5" 0.5 (Fp.to_float f (Fp.of_float f 0.5));
  check_close ~eps:0.0 "exact" 0.25 (Fp.to_float f (Fp.of_float f 0.25));
  check_close ~eps:0.0 "-1 exact" (-1.0) (Fp.to_float f (Fp.of_float f (-1.0)))

let test_fp_saturation () =
  let f = Fp.q15 in
  Alcotest.(check int) "pos sat" (Fp.max_raw f) (Fp.of_float f 2.0);
  Alcotest.(check int) "neg sat" (Fp.min_raw f) (Fp.of_float f (-2.0));
  Alcotest.(check int) "add sat" (Fp.max_raw f)
    (Fp.add f (Fp.max_raw f) (Fp.max_raw f));
  Alcotest.(check int) "nan -> 0" 0 (Fp.of_float f Float.nan)

let test_fp_mul () =
  let f = Fp.fmt ~total_bits:16 ~frac_bits:8 in
  (* 1.5 * 2.0 = 3.0, exactly representable. *)
  let a = Fp.of_float f 1.5 and b = Fp.of_float f 2.0 in
  check_close ~eps:0.0 "1.5*2" 3.0 (Fp.to_float f (Fp.mul f a b))

let test_fp_mixed_mul () =
  let w = Fp.q15 and p = Fp.pipeline_fmt in
  let a = Fp.of_float w 0.5 and b = Fp.of_float p 3.0 in
  check_close ~eps:(Fp.epsilon p) "0.5*3" 1.5
    (Fp.to_float p (Fp.mul_mixed ~a_fmt:w ~b_fmt:p ~out_fmt:p a b))

let prop_fp_quantization_bound =
  QCheck.Test.make ~name:"of_float error <= half lsb" ~count:1000
    QCheck.(float_range (-0.999) 0.999)
    (fun x ->
      let f = Fp.q15 in
      let e = Float.abs (Fp.to_float f (Fp.of_float f x) -. x) in
      e <= Fp.quantization_error_bound f +. 1e-15)

let prop_fp_complex_knuth =
  QCheck.Test.make ~name:"fixed complex knuth ~ double" ~count:500
    QCheck.(quad (float_range (-0.9) 0.9) (float_range (-0.9) 0.9)
              (float_range (-0.9) 0.9) (float_range (-0.9) 0.9))
    (fun (ar, ai, br, bi) ->
      let f = Fp.fmt ~total_bits:32 ~frac_bits:24 in
      let a = C.make ar ai and b = C.make br bi in
      let fa = Fp.Complex.of_complexd f a and fb = Fp.Complex.of_complexd f b in
      let got = Fp.Complex.to_complexd f (Fp.Complex.mul_knuth f fa fb) in
      C.norm (C.sub (C.mul a b) got) <= 32.0 *. Fp.epsilon f)

(* ------------------------------------------------------------------ *)
(* Bessel *)

let test_bessel_known () =
  check_close ~eps:1e-14 "I0(0)" 1.0 (Bessel.i0 0.0);
  check_close ~eps:1e-12 "I0(1)" 1.2660658777520084 (Bessel.i0 1.0);
  check_close ~eps:1e-10 "I0(5)" 27.239871823604442 (Bessel.i0 5.0);
  check_close ~eps:1e-3 "I0(10)" 2815.716628466254 (Bessel.i0 10.0);
  check_close ~eps:0.0 "even" (Bessel.i0 3.2) (Bessel.i0 (-3.2))

(* ------------------------------------------------------------------ *)
(* Window *)

let all_kernels width =
  [ Window.default_kaiser_bessel ~width ~sigma:2.0;
    Window.default_gaussian ~width;
    Window.Bspline;
    Window.Sinc ]

let test_window_support () =
  List.iter
    (fun k ->
      let w = 6 in
      check_close ~eps:0.0 "outside" 0.0 (Window.eval k ~width:w 3.0);
      check_close ~eps:0.0 "outside neg" 0.0 (Window.eval k ~width:w (-3.1));
      Alcotest.(check bool) "inside positive" true
        (Window.eval k ~width:w 0.5 > 0.0))
    (all_kernels 6)

let test_window_peak () =
  let w = 6 in
  check_close "kb peak" 1.0
    (Window.eval (Window.default_kaiser_bessel ~width:w ~sigma:2.0) ~width:w 0.0);
  check_close "gauss peak" 1.0
    (Window.eval (Window.default_gaussian ~width:w) ~width:w 0.0);
  check_close "sinc peak" 1.0 (Window.eval Window.Sinc ~width:w 0.0)

let test_beatty_beta () =
  (* W=6, sigma=2: beta = pi sqrt(9 * 2.25 - 0.8) = pi sqrt(19.45) *)
  check_close ~eps:1e-12 "beta(6,2)"
    (Float.pi *. sqrt (((6.0 /. 2.0) ** 2.0 *. 1.5 *. 1.5) -. 0.8))
    (Window.beatty_beta ~width:6 ~sigma:2.0);
  Alcotest.check_raises "sigma <= 1"
    (Invalid_argument "Window.beatty_beta: sigma must be > 1") (fun () ->
      ignore (Window.beatty_beta ~width:6 ~sigma:1.0))

let test_window_ft_dc () =
  (* At f = 0 the transform equals the kernel's integral; compare analytic
     KB to quadrature. *)
  let w = 6 in
  let kb = Window.default_kaiser_bessel ~width:w ~sigma:2.0 in
  check_close ~eps:1e-6 "kb ft(0)" (Window.ft_numeric kb ~width:w 0.0)
    (Window.ft kb ~width:w 0.0)

let test_window_ft_matches_numeric () =
  let w = 6 in
  let kb = Window.default_kaiser_bessel ~width:w ~sigma:2.0 in
  List.iter
    (fun f ->
      check_close ~eps:1e-6
        (Printf.sprintf "kb ft(%g)" f)
        (Window.ft_numeric kb ~width:w f)
        (Window.ft kb ~width:w f))
    [ 0.01; 0.05; 0.1; 0.2; 0.25 ];
  List.iter
    (fun f ->
      check_close ~eps:1e-6
        (Printf.sprintf "bspline ft(%g)" f)
        (Window.ft_numeric Window.Bspline ~width:w f)
        (Window.ft Window.Bspline ~width:w f))
    [ 0.0; 0.05; 0.125; 0.3 ]

let prop_window_even =
  QCheck.Test.make ~name:"windows are even functions" ~count:400
    QCheck.(pair (float_range 0.0 2.99) (int_range 0 3))
    (fun (t, ki) ->
      let k = List.nth (all_kernels 6) ki in
      Window.eval k ~width:6 t = Window.eval k ~width:6 (-.t))

let prop_window_monotone_kb =
  QCheck.Test.make ~name:"kaiser-bessel decreases away from centre" ~count:200
    QCheck.(pair (float_range 0.0 2.8) (float_range 0.0 0.19))
    (fun (t, dt) ->
      let k = Window.default_kaiser_bessel ~width:6 ~sigma:2.0 in
      Window.eval k ~width:6 t >= Window.eval k ~width:6 (t +. dt) -. 1e-12)

(* ------------------------------------------------------------------ *)
(* Weight table *)

let test_table_entries () =
  let t = Wt.make ~kernel:(Window.default_kaiser_bessel ~width:8 ~sigma:2.0)
      ~width:8 ~l:64 () in
  (* W=8, L=64 fits the JIGSAW SRAM budget of 256+1 half-window entries. *)
  Alcotest.(check int) "entries" 257 (Wt.entries t);
  Alcotest.(check int) "width" 8 (Wt.width t);
  Alcotest.(check int) "L" 64 (Wt.oversampling t)

let test_table_addressing () =
  let t = Wt.make ~kernel:(Window.default_kaiser_bessel ~width:6 ~sigma:2.0)
      ~width:6 ~l:32 () in
  Alcotest.(check (option int)) "d=0" (Some 0) (Wt.address_of_distance t 0.0);
  Alcotest.(check (option int)) "d=1/32" (Some 1)
    (Wt.address_of_distance t (1.0 /. 32.0));
  Alcotest.(check (option int)) "rounds" (Some 2)
    (Wt.address_of_distance t (1.6 /. 32.0));
  Alcotest.(check (option int)) "at edge" (Some 96)
    (Wt.address_of_distance t 3.0);
  Alcotest.(check (option int)) "outside" None
    (Wt.address_of_distance t 3.4);
  Alcotest.(check (option int)) "negative distance" (Some 32)
    (Wt.address_of_distance t (-1.0))

let test_table_lookup_symmetric () =
  let t = Wt.make ~kernel:(Window.default_kaiser_bessel ~width:6 ~sigma:2.0)
      ~width:6 ~l:32 () in
  check_close ~eps:0.0 "symmetry" (Wt.lookup t 1.23) (Wt.lookup t (-1.23));
  check_close ~eps:0.0 "centre weight is peak" 1.0 (Wt.lookup t 0.0)

let test_table_error_shrinks_with_l () =
  let mk l = Wt.make ~kernel:(Window.default_kaiser_bessel ~width:6 ~sigma:2.0)
      ~width:6 ~l () in
  let e8 = Wt.max_table_error (mk 8)
  and e32 = Wt.max_table_error (mk 32)
  and e128 = Wt.max_table_error (mk 128) in
  Alcotest.(check bool) "monotone in L" true (e8 > e32 && e32 > e128);
  Alcotest.(check bool) "reasonable magnitude" true (e128 < 0.02)

let test_table_precisions () =
  let kernel = Window.default_kaiser_bessel ~width:6 ~sigma:2.0 in
  let d = Wt.make ~kernel ~width:6 ~l:32 () in
  let s = Wt.make ~precision:Wt.Single ~kernel ~width:6 ~l:32 () in
  let x = Wt.make ~precision:Wt.Fixed16 ~kernel ~width:6 ~l:32 () in
  for a = 0 to Wt.entries d - 1 do
    check_close ~eps:1e-7 "single close to double" (Wt.get d a) (Wt.get s a);
    check_close ~eps:(1.0 /. 32768.0) "q15 close to double" (Wt.get d a)
      (Wt.get x a);
    (* Fixed16 entries round-trip exactly through q15. *)
    check_close ~eps:0.0 "q15 exact storage"
      (Fp.to_float Fp.q15 (Wt.get_q15 x a))
      (Wt.get x a)
  done

let test_table_validation () =
  Alcotest.check_raises "width" (Invalid_argument "Weight_table.make: width < 1")
    (fun () ->
      ignore (Wt.make ~kernel:Window.Sinc ~width:0 ~l:8 ()));
  Alcotest.check_raises "l" (Invalid_argument "Weight_table.make: l < 1")
    (fun () -> ignore (Wt.make ~kernel:Window.Sinc ~width:4 ~l:0 ()))

(* ------------------------------------------------------------------ *)
(* Linalg *)

let random_system rng n =
  let cell () =
    C.make (Random.State.float rng 2.0 -. 1.0) (Random.State.float rng 2.0 -. 1.0)
  in
  let a = Array.init n (fun _ -> Array.init n (fun _ -> cell ())) in
  (* Diagonal dominance guarantees nonsingularity. *)
  for i = 0 to n - 1 do
    a.(i).(i) <- C.add a.(i).(i) (C.of_float (4.0 *. float_of_int n))
  done;
  let b = Array.init n (fun _ -> cell ()) in
  (a, b)

let test_linalg_identity () =
  let i3 = Numerics.Linalg.identity 3 in
  let b = [| C.make 1.0 2.0; C.make (-3.0) 0.5; C.i |] in
  let x = Numerics.Linalg.solve i3 b in
  Array.iteri (fun k v -> check_complex "identity solve" b.(k) v) x;
  let y = Numerics.Linalg.matvec i3 b in
  Array.iteri (fun k v -> check_complex "identity matvec" b.(k) v) y

let test_linalg_solve_random () =
  let rng = Random.State.make [| 77 |] in
  List.iter
    (fun n ->
      let a, b = random_system rng n in
      let x = Numerics.Linalg.solve a b in
      let r = Numerics.Linalg.residual_norm a x b in
      Alcotest.(check bool) (Printf.sprintf "n=%d residual %g" n r) true
        (r < 1e-10))
    [ 1; 2; 4; 6; 8 ]

let test_linalg_singular () =
  let a = [| [| C.one; C.one |]; [| C.one; C.one |] |] in
  Alcotest.check_raises "singular" (Failure "Linalg.solve: singular matrix")
    (fun () -> ignore (Numerics.Linalg.solve a [| C.one; C.one |]))

let test_linalg_transpose_conj () =
  let a = [| [| C.make 1.0 2.0; C.make 3.0 4.0 |];
             [| C.make 5.0 6.0; C.make 7.0 8.0 |] |] in
  let ah = Numerics.Linalg.transpose_conj a in
  check_complex "a^H(0,1)" (C.make 5.0 (-6.0)) ah.(0).(1);
  check_complex "a^H(1,0)" (C.make 3.0 (-4.0)) ah.(1).(0)

let prop_window_ft_even =
  QCheck.Test.make ~name:"window FT is even in frequency" ~count:200
    QCheck.(pair (float_range 0.0 0.45) (int_range 0 1))
    (fun (f, ki) ->
      let k =
        if ki = 0 then Window.default_kaiser_bessel ~width:6 ~sigma:2.0
        else Window.Bspline
      in
      Float.abs (Window.ft k ~width:6 f -. Window.ft k ~width:6 (-.f)) < 1e-12)

let prop_bessel_monotone =
  QCheck.Test.make ~name:"I0 grows monotonically on [0, 40]" ~count:300
    QCheck.(pair (float_range 0.0 39.0) (float_range 0.001 1.0))
    (fun (x, dx) -> Bessel.i0 (x +. dx) > Bessel.i0 x)

let prop_q15_weights_in_range =
  QCheck.Test.make ~name:"q15 table entries stay in [-1, 1)" ~count:100
    QCheck.(pair (int_range 1 8) (int_range 0 6))
    (fun (w, lexp) ->
      let l = 1 lsl lexp in
      let t =
        Wt.make ~precision:Wt.Fixed16
          ~kernel:(Window.default_gaussian ~width:w) ~width:w ~l ()
      in
      let ok = ref true in
      for a = 0 to Wt.entries t - 1 do
        let raw = Wt.get_q15 t a in
        if raw < Fp.min_raw Fp.q15 || raw > Fp.max_raw Fp.q15 then ok := false
      done;
      !ok)

let prop_linalg_solve =
  QCheck.Test.make ~name:"solve yields small residual" ~count:200
    QCheck.(pair (int_range 1 8) (int_range 0 100000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let a, b = random_system rng n in
      let x = Numerics.Linalg.solve a b in
      Numerics.Linalg.residual_norm a x b < 1e-9)

(* ------------------------------------------------------------------ *)

let qtests = Qutil.to_alcotests
    [ prop_knuth_equals_mul; prop_f32_cmul_close; prop_fp_quantization_bound;
      prop_fp_complex_knuth; prop_window_even; prop_window_monotone_kb;
      prop_window_ft_even; prop_bessel_monotone; prop_q15_weights_in_range;
      prop_linalg_solve ]

let () =
  Alcotest.run "numerics"
    [ ("complexd",
       [ Alcotest.test_case "basic ops" `Quick test_complex_basic;
         Alcotest.test_case "division" `Quick test_complex_div;
         Alcotest.test_case "exp_i" `Quick test_complex_exp_i ]);
      ("cvec",
       [ Alcotest.test_case "get/set/accumulate" `Quick test_cvec_roundtrip;
         Alcotest.test_case "dot" `Quick test_cvec_dot;
         Alcotest.test_case "nrmsd" `Quick test_cvec_nrmsd;
         Alcotest.test_case "fold/scale/add" `Quick test_cvec_ops ]);
      ("float32",
       [ Alcotest.test_case "round" `Quick test_f32_round;
         Alcotest.test_case "arithmetic" `Quick test_f32_ops ]);
      ("fixed_point",
       [ Alcotest.test_case "format validation" `Quick test_fp_fmt_validation;
         Alcotest.test_case "roundtrip" `Quick test_fp_roundtrip;
         Alcotest.test_case "saturation" `Quick test_fp_saturation;
         Alcotest.test_case "multiply" `Quick test_fp_mul;
         Alcotest.test_case "mixed multiply" `Quick test_fp_mixed_mul ]);
      ("bessel", [ Alcotest.test_case "known values" `Quick test_bessel_known ]);
      ("window",
       [ Alcotest.test_case "support" `Quick test_window_support;
         Alcotest.test_case "peak" `Quick test_window_peak;
         Alcotest.test_case "beatty beta" `Quick test_beatty_beta;
         Alcotest.test_case "ft at dc" `Quick test_window_ft_dc;
         Alcotest.test_case "ft analytic = numeric" `Quick
           test_window_ft_matches_numeric ]);
      ("weight_table",
       [ Alcotest.test_case "entry count" `Quick test_table_entries;
         Alcotest.test_case "addressing" `Quick test_table_addressing;
         Alcotest.test_case "symmetric lookup" `Quick test_table_lookup_symmetric;
         Alcotest.test_case "error vs L" `Quick test_table_error_shrinks_with_l;
         Alcotest.test_case "precision variants" `Quick test_table_precisions;
         Alcotest.test_case "validation" `Quick test_table_validation ]);
      ("linalg",
       [ Alcotest.test_case "identity" `Quick test_linalg_identity;
         Alcotest.test_case "random systems" `Quick test_linalg_solve_random;
         Alcotest.test_case "singular detection" `Quick test_linalg_singular;
         Alcotest.test_case "conjugate transpose" `Quick
           test_linalg_transpose_conj ]);
      ("properties", qtests) ]
