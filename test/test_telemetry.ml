(* Telemetry unit tests: the disabled near-no-op contract, span
   nesting/ordering, deterministic cross-domain event merging, counter
   monotonicity, histograms, synthetic spans, and the chrome-trace JSON
   exporter (parsed with a small self-contained JSON reader and checked
   for well-formed ph/ts/dur and proper per-track nesting). The last
   group drives a real pooled CG reconstruction through the operator
   registry and asserts the trace covers plan build, gridding, FFT, pool
   scheduling and CG iterations. *)

module T = Telemetry
module Op = Nufft.Operator
module Sample = Nufft.Sample
module Cvec = Numerics.Cvec

let with_telemetry f =
  T.reset ();
  T.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      T.set_enabled false;
      T.reset ())
    f

(* ------------------------------------------------------------------ *)
(* Disabled path. *)

let test_disabled () =
  T.reset ();
  T.set_enabled false;
  Alcotest.(check bool) "span_begin returns the shared null token" true
    (T.span_begin "x" == T.null_span);
  T.span_end (T.span_begin ~cat:"t" "x");
  T.emit_span ~name:"y" ~ts_ns:0 ~dur_ns:10 ();
  let c = T.Counter.make "test.disabled" in
  T.Counter.add c 5;
  let h = T.Histogram.make "test.disabled_h" in
  T.Histogram.observe h 1.0;
  Alcotest.(check int) "no events recorded" 0 (List.length (T.events ()));
  Alcotest.(check int) "counter untouched" 0 (T.Counter.value c);
  Alcotest.(check int) "histogram untouched" 0 (T.Histogram.count h);
  Alcotest.(check int) "with_span calls the thunk directly" 7
    (T.with_span "z" (fun () -> 7))

(* ------------------------------------------------------------------ *)
(* Span nesting and event ordering. *)

let find name evs = List.filter (fun (e : T.event) -> e.T.name = name) evs

let the name evs =
  match find name evs with
  | [ e ] -> e
  | l ->
      Alcotest.failf "expected exactly one %S event, got %d" name
        (List.length l)

let contains (parent : T.event) (child : T.event) =
  child.T.ts_ns >= parent.T.ts_ns
  && child.T.ts_ns + child.T.dur_ns <= parent.T.ts_ns + parent.T.dur_ns

let has_substring hay needle =
  let len = String.length hay and nl = String.length needle in
  let rec scan i =
    i + nl <= len && (String.sub hay i nl = needle || scan (i + 1))
  in
  scan 0

let test_nesting () =
  with_telemetry @@ fun () ->
  let a = T.span_begin ~cat:"t" "outer" in
  let b = T.span_begin ~cat:"t" "middle" in
  ignore (T.with_span ~cat:"t" "inner" (fun () -> 1 + 1));
  T.span_end b;
  T.span_end a;
  let evs = T.events () in
  Alcotest.(check int) "three events" 3 (List.length evs);
  let outer = the "outer" evs
  and middle = the "middle" evs
  and inner = the "inner" evs in
  Alcotest.(check bool) "middle inside outer" true (contains outer middle);
  Alcotest.(check bool) "inner inside middle" true (contains middle inner);
  (* events () is sorted by start time: inner opened last *)
  Alcotest.(check (list string)) "sorted by start time"
    [ "outer"; "middle"; "inner" ]
    (List.map (fun (e : T.event) -> e.T.name) evs);
  let tree = T.tree_summary () in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " in tree summary") true
        (has_substring tree n))
    [ "outer"; "middle"; "inner" ]

let test_exception_safety () =
  with_telemetry @@ fun () ->
  (try T.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check int) "span closed on exception" 1
    (List.length (find "boom" (T.events ())))

let test_emit_span () =
  with_telemetry @@ fun () ->
  T.emit_span ~cat:"model" ~tid:900
    ~args:[ ("cycles", "1234") ]
    ~name:"synthetic" ~ts_ns:5000 ~dur_ns:250 ();
  let e = the "synthetic" (T.events ()) in
  Alcotest.(check int) "verbatim ts" 5000 e.T.ts_ns;
  Alcotest.(check int) "verbatim dur" 250 e.T.dur_ns;
  Alcotest.(check int) "custom tid" 900 e.T.tid;
  Alcotest.(check (list (pair string string)))
    "args kept"
    [ ("cycles", "1234") ]
    e.T.args

(* ------------------------------------------------------------------ *)
(* Counters. *)

let test_counter_monotonic () =
  with_telemetry @@ fun () ->
  let c = T.Counter.make "test.mono" in
  Alcotest.(check bool) "make is idempotent" true
    (c == T.Counter.make "test.mono");
  T.Counter.add c 3;
  T.Counter.incr c;
  Alcotest.(check int) "accumulates" 4 (T.Counter.value c);
  Alcotest.check_raises "negative increment rejected"
    (Invalid_argument "Telemetry.Counter.add: negative increment") (fun () ->
      T.Counter.add c (-1));
  Alcotest.(check int) "value unchanged after rejection" 4 (T.Counter.value c);
  Alcotest.(check bool) "listed in all ()" true
    (List.mem ("test.mono", 4) (T.Counter.all ()))

let test_counter_domains () =
  with_telemetry @@ fun () ->
  let c = T.Counter.make "test.domains" in
  let domains =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 1000 do
              T.Counter.incr c
            done))
  in
  Array.iter Domain.join domains;
  Alcotest.(check int) "atomic across domains" 4000 (T.Counter.value c)

let test_histogram () =
  with_telemetry @@ fun () ->
  let h = T.Histogram.make "test.h" in
  List.iter (T.Histogram.observe h) [ 1.0; 2.0; 3.0; 10.0 ];
  Alcotest.(check int) "count" 4 (T.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 16.0 (T.Histogram.sum h);
  Alcotest.(check (float 1e-9)) "mean" 4.0 (T.Histogram.mean h);
  Alcotest.(check (float 1e-9)) "min" 1.0 (T.Histogram.min_value h);
  Alcotest.(check (float 1e-9)) "max" 10.0 (T.Histogram.max_value h)

(* ------------------------------------------------------------------ *)
(* Deterministic merge of per-domain sinks. *)

let test_merge_determinism () =
  with_telemetry @@ fun () ->
  let domains =
    Array.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to 25 do
              let sp = T.span_begin ~cat:"t" (Printf.sprintf "d%d.%d" d i) in
              T.span_end sp
            done))
  in
  Array.iter Domain.join domains;
  let a = T.events () and b = T.events () in
  Alcotest.(check int) "all events merged" 100 (List.length a);
  Alcotest.(check bool) "merge is deterministic" true (a = b);
  let keys =
    List.map (fun (e : T.event) -> (e.T.ts_ns, e.T.tid, e.T.seq)) a
  in
  Alcotest.(check bool) "sorted by (ts, tid, seq)" true
    (List.sort compare keys = keys);
  (* per-sink sequence numbers stay increasing in merged order *)
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (e : T.event) ->
      (match Hashtbl.find_opt tbl e.T.tid with
      | Some prev when prev >= e.T.seq ->
          Alcotest.failf "tid %d seq regressed: %d then %d" e.T.tid prev
            e.T.seq
      | _ -> ());
      Hashtbl.replace tbl e.T.tid e.T.seq)
    a

(* ------------------------------------------------------------------ *)
(* A minimal JSON reader — just enough to validate the exporter without
   adding a dependency. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Parse of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then s.[!pos] else '\255' in
    let advance () = incr pos in
    let fail msg = raise (Parse (Printf.sprintf "%s at %d" msg !pos)) in
    let rec skip_ws () =
      match peek () with
      | ' ' | '\t' | '\n' | '\r' ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      if peek () = c then advance ()
      else fail (Printf.sprintf "expected %c" c)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (match peek () with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | 'r' -> Buffer.add_char b '\r'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
                (* code points are irrelevant here; skip the 4 digits *)
                for _ = 1 to 4 do
                  advance ()
                done;
                Buffer.add_char b '?'
            | c -> fail (Printf.sprintf "bad escape %c" c));
            advance ();
            go ()
        | '\255' -> fail "unterminated string"
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
      in
      go ();
      Buffer.contents b
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | '{' ->
          advance ();
          skip_ws ();
          if peek () = '}' then begin
            advance ();
            Obj []
          end
          else
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | ',' ->
                  advance ();
                  members ((k, v) :: acc)
              | '}' ->
                  advance ();
                  Obj (List.rev ((k, v) :: acc))
              | _ -> fail "expected , or }"
            in
            members []
      | '[' ->
          advance ();
          skip_ws ();
          if peek () = ']' then begin
            advance ();
            Arr []
          end
          else
            let rec elements acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | ',' ->
                  advance ();
                  elements (v :: acc)
              | ']' ->
                  advance ();
                  Arr (List.rev (v :: acc))
              | _ -> fail "expected , or ]"
            in
            elements []
      | '"' -> Str (parse_string ())
      | 't' ->
          pos := !pos + 4;
          Bool true
      | 'f' ->
          pos := !pos + 5;
          Bool false
      | 'n' ->
          pos := !pos + 4;
          Null
      | _ ->
          let start = !pos in
          let is_num c =
            (c >= '0' && c <= '9')
            || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
          in
          while is_num (peek ()) do
            advance ()
          done;
          if !pos = start then fail "expected value";
          Num (float_of_string (String.sub s start (!pos - start)))
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member k = function Obj l -> List.assoc_opt k l | _ -> None
  let str = function Str s -> Some s | _ -> None
  let num = function Num f -> Some f | _ -> None
end

let get_str j k =
  match Option.bind (Json.member k j) Json.str with
  | Some s -> s
  | None -> Alcotest.failf "missing string field %S" k

let get_num j k =
  match Option.bind (Json.member k j) Json.num with
  | Some f -> f
  | None -> Alcotest.failf "missing numeric field %S" k

(* Validate exporter output: every traceEvent is a ph:"X" complete event
   with non-negative microsecond ts/dur (rebased so the first span is at
   ts 0) or a ph:"C" counter sample, and the "X" intervals on each track
   are properly nested (any two either disjoint or contained). *)
let check_chrome_trace json =
  let root = Json.parse json in
  let evs =
    match Json.member "traceEvents" root with
    | Some (Json.Arr l) -> l
    | _ -> Alcotest.fail "traceEvents missing or not an array"
  in
  Alcotest.(check bool) "has events" true (evs <> []);
  let spans = ref [] in
  List.iter
    (fun e ->
      ignore (get_str e "name");
      match get_str e "ph" with
      | "X" ->
          let ts = get_num e "ts" and dur = get_num e "dur" in
          let tid = int_of_float (get_num e "tid") in
          Alcotest.(check bool) "ts >= 0" true (ts >= 0.0);
          Alcotest.(check bool) "dur >= 0" true (dur >= 0.0);
          spans := (tid, ts, dur) :: !spans
      | "C" -> ignore (get_num e "ts")
      | ph -> Alcotest.failf "unexpected phase %S" ph)
    evs;
  Alcotest.(check bool) "some complete spans" true (!spans <> []);
  Alcotest.(check bool) "rebased to t=0" true
    (List.exists (fun (_, ts, _) -> ts = 0.0) !spans);
  let by_tid = Hashtbl.create 8 in
  List.iter
    (fun (tid, ts, dur) ->
      let l = try Hashtbl.find by_tid tid with Not_found -> [] in
      Hashtbl.replace by_tid tid ((ts, ts +. dur) :: l))
    !spans;
  Hashtbl.iter
    (fun tid l ->
      let arr = Array.of_list l in
      Array.iteri
        (fun i (s1, e1) ->
          Array.iteri
            (fun j (s2, e2) ->
              if i < j then
                (* ns -> us conversion leaves sub-nanosecond float noise
                   on the boundaries of touching spans *)
                let eps = 1e-3 in
                let disjoint = e1 <= s2 +. eps || e2 <= s1 +. eps in
                let contained =
                  (s1 <= s2 +. eps && e2 <= e1 +. eps)
                  || (s2 <= s1 +. eps && e1 <= e2 +. eps)
                in
                if not (disjoint || contained) then
                  Alcotest.failf
                    "tid %d: overlapping spans [%f,%f] and [%f,%f]" tid s1
                    e1 s2 e2)
            arr)
        arr)
    by_tid

let test_chrome_trace_simple () =
  with_telemetry @@ fun () ->
  let a = T.span_begin ~cat:"t" ~args:[ ("k", "v\"with\\quote") ] "a" in
  let b = T.span_begin ~cat:"t" "b" in
  T.span_end b;
  T.span_end a;
  T.emit_span ~cat:"model" ~tid:900 ~name:"cycles" ~ts_ns:(T.Clock.now_ns ())
    ~dur_ns:1000 ();
  let c = T.Counter.make "test.trace_counter" in
  T.Counter.add c 17;
  check_chrome_trace (T.chrome_trace ())

(* ------------------------------------------------------------------ *)
(* End-to-end coverage: a pooled CG reconstruction must leave spans from
   every stage of the pipeline in one trace. *)

let test_cg_trace_coverage () =
  with_telemetry @@ fun () ->
  let n = 16 in
  let g = 2 * n in
  let pool = Runtime.Pool.create ~domains:2 () in
  Fun.protect ~finally:(fun () -> Runtime.Pool.shutdown pool) @@ fun () ->
  let traj = Trajectory.Radial.make ~spokes:8 ~readout:g () in
  let density = Trajectory.Radial.density_weights traj in
  let coords = Imaging.Recon.coords_of_traj ~g traj in
  let op = Op.create "slice-parallel" (Op.context ~pool ~n ~coords ()) in
  let phantom = Imaging.Phantom.make ~n () in
  let samples = Imaging.Recon.acquire_op op phantom in
  let rhs = Imaging.Cg.normal_equations_rhs_op ~weights:density op samples in
  let res =
    Imaging.Cg.solve ~max_iterations:3
      ~apply:(Imaging.Cg.normal_map ~weights:density op)
      rhs
  in
  Alcotest.(check bool) "cg ran" true (res.Imaging.Cg.iterations > 0);
  let evs = T.events () in
  let cats =
    List.sort_uniq compare (List.map (fun (e : T.event) -> e.T.cat) evs)
  in
  List.iter
    (fun c ->
      Alcotest.(check bool) (Printf.sprintf "cat %S covered" c) true
        (List.mem c cats))
    [ "plan"; "grid"; "fft"; "pool"; "cg"; "op" ];
  Alcotest.(check int) "cg.iterations counted" res.Imaging.Cg.iterations
    (T.Counter.value (T.Counter.make "cg.iterations"));
  Alcotest.(check bool) "sample plan cache hit on re-application" true
    (T.Counter.value (T.Counter.make "sample_plan.cache_hit") > 0);
  Alcotest.(check bool) "pool tasks scheduled" true
    (T.Counter.value (T.Counter.make "pool.tasks") > 0);
  (* and the exported trace of that run must be valid chrome JSON *)
  check_chrome_trace (T.chrome_trace ())

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "telemetry"
    [ ( "core",
        [ Alcotest.test_case "disabled is a no-op" `Quick test_disabled;
          Alcotest.test_case "span nesting and order" `Quick test_nesting;
          Alcotest.test_case "exception safety" `Quick test_exception_safety;
          Alcotest.test_case "synthetic spans" `Quick test_emit_span ] );
      ( "metrics",
        [ Alcotest.test_case "counter monotonicity" `Quick
            test_counter_monotonic;
          Alcotest.test_case "counter cross-domain" `Quick
            test_counter_domains;
          Alcotest.test_case "histogram" `Quick test_histogram ] );
      ( "merge",
        [ Alcotest.test_case "deterministic across sinks" `Quick
            test_merge_determinism ] );
      ( "export",
        [ Alcotest.test_case "chrome trace well-formed" `Quick
            test_chrome_trace_simple;
          Alcotest.test_case "cg run covers the pipeline" `Quick
            test_cg_trace_coverage ] ) ]
