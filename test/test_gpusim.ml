(* Tests for the GPU SIMT timing simulator and the gridding kernels. *)

module Config = Gpusim.Config
module Op = Gpusim.Op
module Sim = Gpusim.Sim
module Kernels = Gpusim.Kernels

let gpu = Config.titan_xp

let test_occupancy_model () =
  (* Full occupancy with tiny blocks and few registers. *)
  let light =
    { Config.threads_per_block = 256;
      registers_per_thread = 32;
      shared_bytes_per_block = 0 }
  in
  Alcotest.(check (float 1e-9)) "light" 1.0 (Config.occupancy gpu light);
  (* Register-heavy 64-thread blocks: 65536/(64*64) = 16 blocks = 32 warps
     of 64 -> 50%, the Impatient-class occupancy. *)
  let heavy =
    { Config.threads_per_block = 64;
      registers_per_thread = 64;
      shared_bytes_per_block = 512 }
  in
  Alcotest.(check (float 1e-9)) "heavy" 0.5 (Config.occupancy gpu heavy);
  (* The Slice-and-Dice resource point: 40 regs -> 25 blocks -> 50/64. *)
  let slice =
    { Config.threads_per_block = 64;
      registers_per_thread = 40;
      shared_bytes_per_block = 2048 }
  in
  let occ = Config.occupancy gpu slice in
  Alcotest.(check bool) (Printf.sprintf "slice occ %.2f ~ 0.8" occ) true
    (occ > 0.7 && occ <= 0.85)

let test_op_generators () =
  let w = Op.of_list [ Op.Alu { issue_cycles = 1; active = 32 } ] in
  Alcotest.(check bool) "first" true (w () <> None);
  Alcotest.(check bool) "exhausted" true (w () = None);
  let gen =
    Op.concat_gen (fun i ->
        if i >= 3 then None
        else Some (Op.of_list [ Op.Alu { issue_cycles = 1; active = i + 1 } ]))
  in
  let count = ref 0 in
  let rec drain () =
    match gen () with
    | Some _ ->
        incr count;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "three ops chained" 3 !count

(* A trivial kernel: [blocks] blocks of one warp, each issuing [n] ALU
   ops. *)
let alu_kernel ~blocks ~n =
  { Sim.name = "alu";
    resources =
      { Config.threads_per_block = 32;
        registers_per_thread = 32;
        shared_bytes_per_block = 0 };
    blocks;
    warps_per_block = 1;
    warp_of =
      (fun ~block:_ ~warp:_ ->
        let i = ref 0 in
        fun () ->
          if !i >= n then None
          else begin
            incr i;
            Some (Op.Alu { issue_cycles = 1; active = 32 })
          end) }

let test_sim_alu_only () =
  let r = Sim.run ~gpu (alu_kernel ~blocks:30 ~n:1000) in
  (* One block per SM, no memory: cycles = ops per SM (plus epsilon). *)
  Alcotest.(check int) "instructions" 30000 r.Sim.instructions;
  Alcotest.(check bool)
    (Printf.sprintf "cycles %d ~ 1000" r.Sim.cycles)
    true
    (r.Sim.cycles >= 1000 && r.Sim.cycles < 1100);
  Alcotest.(check (float 1e-9)) "simd" 1.0 r.Sim.simd_utilization;
  Alcotest.(check bool) "energy positive" true (r.Sim.energy_j > 0.0)

let test_sim_latency_hiding () =
  (* A single warp blocked on DRAM round trips is latency-bound; many
     warps on one SM overlap their misses. Compare 1 block vs 32 blocks
     (all on the same amount of work per warp). *)
  let mem_kernel ~blocks =
    { Sim.name = "mem";
      resources =
        { Config.threads_per_block = 32;
          registers_per_thread = 32;
          shared_bytes_per_block = 0 };
      blocks;
      warps_per_block = 1;
      warp_of =
        (fun ~block ~warp:_ ->
          let i = ref 0 in
          fun () ->
            if !i >= 50 then None
            else begin
              incr i;
              (* Distinct lines per block & iteration: all cold misses. *)
              let addr = (((block * 64) + !i) * 4096) + 7 in
              Some (Op.Load { addrs = [| addr |] })
            end) }
  in
  let one = Sim.run ~gpu (mem_kernel ~blocks:1) in
  let many = Sim.run ~gpu (mem_kernel ~blocks:30) in
  (* 30x the work in far less than 30x the time of the serial chain. *)
  Alcotest.(check bool)
    (Printf.sprintf "hiding: %d vs %d" one.Sim.cycles many.Sim.cycles)
    true
    (many.Sim.cycles < 3 * one.Sim.cycles)

let test_sim_l2_reuse () =
  (* Two warps touching the same line: second access hits. *)
  let k =
    { Sim.name = "reuse";
      resources =
        { Config.threads_per_block = 32;
          registers_per_thread = 32;
          shared_bytes_per_block = 0 };
      blocks = 1;
      warps_per_block = 2;
      warp_of =
        (fun ~block:_ ~warp:_ ->
          Op.of_list [ Op.Load { addrs = [| 4096 |] } ]) }
  in
  let r = Sim.run ~gpu k in
  Alcotest.(check (float 1e-9)) "50% hit rate" 0.5 r.Sim.l2_hit_rate;
  Alcotest.(check int) "two transactions" 2 r.Sim.mem_transactions

let test_sim_divergence_stats () =
  let k =
    { (alu_kernel ~blocks:1 ~n:1) with
      Sim.warp_of =
        (fun ~block:_ ~warp:_ ->
          Op.of_list [ Op.Alu { issue_cycles = 1; active = 8 } ]) }
  in
  let r = Sim.run ~gpu k in
  Alcotest.(check (float 1e-9)) "simd 25%" 0.25 r.Sim.simd_utilization

let test_atomic_conflicts () =
  (* 32 lanes atomically updating the same word serialise. *)
  let conflict =
    { (alu_kernel ~blocks:1 ~n:1) with
      Sim.warp_of =
        (fun ~block:_ ~warp:_ ->
          Op.of_list [ Op.Atomic { addrs = Array.make 32 4096 } ]) }
  in
  let spread =
    { (alu_kernel ~blocks:1 ~n:1) with
      Sim.warp_of =
        (fun ~block:_ ~warp:_ ->
          Op.of_list
            [ Op.Atomic { addrs = Array.init 32 (fun l -> 4096 + (8 * l)) } ]) }
  in
  let rc = Sim.run ~gpu conflict and rs = Sim.run ~gpu spread in
  Alcotest.(check bool)
    (Printf.sprintf "conflicts slower: %d > %d" rc.Sim.cycles rs.Sim.cycles)
    true (rc.Sim.cycles > rs.Sim.cycles)

(* ------------------------------------------------------------------ *)
(* Gridding kernels on a real dataset *)

let problem () =
  let traj = Trajectory.Radial.make ~spokes:32 ~readout:128 () in
  let g = 128 in
  let values = Numerics.Cvec.create (Trajectory.Traj.length traj) in
  let s =
    Nufft.Sample.of_omega_2d ~g ~omega_x:traj.Trajectory.Traj.omega_x
      ~omega_y:traj.Trajectory.Traj.omega_y ~values
  in
  Kernels.problem_of_samples ~w:6 s

let test_kernel_slice_runs () =
  let p = problem () in
  let r = Sim.run ~gpu (Kernels.slice_and_dice ~grid_blocks:1024 p) in
  Alcotest.(check bool) "cycles > 0" true (r.Sim.cycles > 0);
  Alcotest.(check bool) "instructions > samples" true
    (r.Sim.instructions > Array.length p.Kernels.gx);
  Alcotest.(check bool)
    (Printf.sprintf "l2 %.2f high" r.Sim.l2_hit_rate)
    true
    (r.Sim.l2_hit_rate > 0.8)

let test_kernel_binned_runs () =
  let p = problem () in
  let r = Sim.run ~gpu (Kernels.binned p) in
  Alcotest.(check bool) "cycles > 0" true (r.Sim.cycles > 0);
  Alcotest.(check (float 1e-9)) "occupancy 50%" 0.5 r.Sim.occupancy

let test_slice_faster_than_binned () =
  let p = problem () in
  let slice = Sim.run ~gpu (Kernels.slice_and_dice p) in
  let binned = Sim.run ~gpu (Kernels.binned p) in
  let presort = Sim.run ~gpu (Kernels.binned_presort p) in
  let binned_total = binned.Sim.time_s +. presort.Sim.time_s in
  Alcotest.(check bool)
    (Printf.sprintf "slice %.3e s < binned %.3e s" slice.Sim.time_s
       binned_total)
    true
    (slice.Sim.time_s < binned_total)

let test_sim_deterministic () =
  let p = problem () in
  let r1 = Sim.run ~gpu (Kernels.slice_and_dice ~grid_blocks:512 p) in
  let r2 = Sim.run ~gpu (Kernels.slice_and_dice ~grid_blocks:512 p) in
  Alcotest.(check int) "same cycles" r1.Sim.cycles r2.Sim.cycles;
  Alcotest.(check int) "same instructions" r1.Sim.instructions r2.Sim.instructions;
  Alcotest.(check int) "same transactions" r1.Sim.mem_transactions
    r2.Sim.mem_transactions

let test_presort_kernel () =
  let p = problem () in
  let r = Sim.run ~gpu (Kernels.binned_presort p) in
  Alcotest.(check bool) "ran" true (r.Sim.instructions > 0);
  Alcotest.(check (float 1e-9)) "full occupancy" 1.0 r.Sim.occupancy

let test_naive_kernel_slower () =
  let p = problem () in
  let naive = Sim.run ~gpu (Kernels.naive_output p) in
  let slice = Sim.run ~gpu (Kernels.slice_and_dice ~grid_blocks:1024 p) in
  Alcotest.(check bool)
    (Printf.sprintf "naive %d ≫ slice %d cycles" naive.Sim.cycles
       slice.Sim.cycles)
    true
    (naive.Sim.time_s > 3.0 *. slice.Sim.time_s)

let test_online_weights_slower () =
  let p = problem () in
  let lut = Sim.run ~gpu (Kernels.slice_and_dice ~grid_blocks:1024 p) in
  let online =
    Sim.run ~gpu
      (Kernels.slice_and_dice ~grid_blocks:1024 ~online_weights:true p)
  in
  Alcotest.(check bool) "online slower" true
    (online.Sim.time_s > lut.Sim.time_s)

let test_kernel_validation () =
  let p = problem () in
  Alcotest.check_raises "bad bin"
    (Invalid_argument "Kernels.binned: bin must divide g") (fun () ->
      ignore (Kernels.binned ~bin:7 p))

let () =
  Alcotest.run "gpusim"
    [ ("config", [ Alcotest.test_case "occupancy" `Quick test_occupancy_model ]);
      ("op", [ Alcotest.test_case "generators" `Quick test_op_generators ]);
      ("sim",
       [ Alcotest.test_case "alu only" `Quick test_sim_alu_only;
         Alcotest.test_case "latency hiding" `Quick test_sim_latency_hiding;
         Alcotest.test_case "l2 reuse" `Quick test_sim_l2_reuse;
         Alcotest.test_case "divergence stats" `Quick test_sim_divergence_stats;
         Alcotest.test_case "atomic conflicts" `Quick test_atomic_conflicts ]);
      ("kernels",
       [ Alcotest.test_case "slice-and-dice runs" `Quick test_kernel_slice_runs;
         Alcotest.test_case "binned runs" `Quick test_kernel_binned_runs;
         Alcotest.test_case "slice beats binned" `Quick
           test_slice_faster_than_binned;
         Alcotest.test_case "deterministic" `Quick test_sim_deterministic;
         Alcotest.test_case "presort kernel" `Quick test_presort_kernel;
         Alcotest.test_case "naive kernel slower" `Quick
           test_naive_kernel_slower;
         Alcotest.test_case "online weights slower" `Quick
           test_online_weights_slower;
         Alcotest.test_case "validation" `Quick test_kernel_validation ]) ]
