(* Backend comparison: every gridding engine plus both hardware models on
   the same acquisition.

   Demonstrates the central claim of the paper in one place: all engines
   compute the same grid (functional agreement), with radically different
   algorithmic work (instrumentation counters) and hardware cost (GPU
   timing simulation, JIGSAW cycle model).

   Run with:  dune exec examples/backend_comparison.exe *)

module Cvec = Numerics.Cvec
module Stats = Nufft.Gridding_stats

let () =
  let g = 256 and w = 6 in
  let table =
    Numerics.Weight_table.make
      ~kernel:(Numerics.Window.default_kaiser_bessel ~width:w ~sigma:2.0)
      ~width:w ~l:512 ()
  in
  let traj = Trajectory.Spiral.make ~interleaves:16 ~samples_per_interleave:2048 () in
  let m = Trajectory.Traj.length traj in
  let rng = Random.State.make [| 21 |] in
  let values =
    Cvec.init m (fun _ ->
        Numerics.Complexd.make
          (0.2 *. (Random.State.float rng 2.0 -. 1.0))
          (0.2 *. (Random.State.float rng 2.0 -. 1.0)))
  in
  let s =
    Nufft.Sample.of_omega_2d ~g ~omega_x:traj.Trajectory.Traj.omega_x
      ~omega_y:traj.Trajectory.Traj.omega_y ~values
  in
  Printf.printf "Spiral acquisition: %d samples onto a %dx%d grid (w=%d)\n\n"
    m g g w;

  (* 1. Functional agreement + work accounting across CPU engines. *)
  let reference = ref None in
  Printf.printf "%-22s %10s %14s %12s %12s %10s\n" "engine" "time(ms)"
    "checks" "visits" "presort" "max-dev";
  List.iter
    (fun engine ->
      let st = Stats.create () in
      (* Counters from an instrumented run; timing from a clean one. *)
      let grid =
        Nufft.Gridding.grid_2d ~stats:st engine ~table ~g ~gx:(Nufft.Sample.gx s)
          ~gy:(Nufft.Sample.gy s) s.Nufft.Sample.values
      in
      let t0 = Unix.gettimeofday () in
      ignore
        (Nufft.Gridding.grid_2d engine ~table ~g ~gx:(Nufft.Sample.gx s)
           ~gy:(Nufft.Sample.gy s) s.Nufft.Sample.values);
      let dt = Unix.gettimeofday () -. t0 in
      let dev =
        match !reference with
        | None ->
            reference := Some grid;
            0.0
        | Some r -> Cvec.max_abs_diff r grid
      in
      Printf.printf "%-22s %10.2f %14d %12d %12d %10.2g\n"
        (Nufft.Gridding.engine_name engine)
        (1e3 *. dt) st.Stats.boundary_checks st.Stats.samples_processed
        st.Stats.presort_ops dev)
    [ Nufft.Gridding.Serial;
      Nufft.Gridding.Binned 8;
      Nufft.Gridding.Slice_and_dice 8 ];
  (* Naive output-parallel is O(M * G^2) = 2.2e9 checks here — exactly why
     the paper rejects it; run it on a thumbnail instead. *)
  Printf.printf
    "%-22s %10s %14s (skipped at this size: M*G^2 = %.1e checks)\n\n"
    "output-parallel" "-" "-"
    (float_of_int m *. float_of_int (g * g));

  (* 2. The hardware models. *)
  let p = Gpusim.Kernels.problem_of_samples ~w s in
  let slice = Gpusim.Sim.run (Gpusim.Kernels.slice_and_dice p) in
  let binned = Gpusim.Sim.run (Gpusim.Kernels.binned p) in
  let presort = Gpusim.Sim.run (Gpusim.Kernels.binned_presort p) in
  Printf.printf "Simulated Titan Xp:\n";
  Printf.printf
    "  impatient-binned  %8.3f ms (incl. %.3f ms presort)  L2 %4.1f%%  occ \
     %.0f%%\n"
    (1e3 *. (binned.Gpusim.Sim.time_s +. presort.Gpusim.Sim.time_s))
    (1e3 *. presort.Gpusim.Sim.time_s)
    (100.0 *. binned.Gpusim.Sim.l2_hit_rate)
    (100.0 *. binned.Gpusim.Sim.occupancy);
  Printf.printf
    "  slice-and-dice    %8.3f ms                          L2 %4.1f%%  occ \
     %.0f%%\n"
    (1e3 *. slice.Gpusim.Sim.time_s)
    (100.0 *. slice.Gpusim.Sim.l2_hit_rate)
    (100.0 *. slice.Gpusim.Sim.occupancy);

  (* 3. JIGSAW: functional fixed-point model + exact cycle count. *)
  let cfg = Jigsaw.Config.make ~n:g ~w ~l:32 () in
  let jt =
    Numerics.Weight_table.make ~precision:Numerics.Weight_table.Fixed16
      ~kernel:(Numerics.Window.default_kaiser_bessel ~width:w ~sigma:2.0)
      ~width:w ~l:32 ()
  in
  let engine = Jigsaw.Engine2d.create cfg ~table:jt in
  Jigsaw.Engine2d.stream engine ~gx:(Nufft.Sample.gx s) ~gy:(Nufft.Sample.gy s)
    s.Nufft.Sample.values;
  let hw_grid = Jigsaw.Engine2d.readout engine in
  let ref_grid = Option.get !reference in
  Printf.printf
    "  JIGSAW ASIC       %8.3f ms (%d cycles = M+12, deterministic)  NRMSD \
     vs double %.2e, saturations %d\n"
    (1e3 *. Jigsaw.Engine2d.gridding_time_s engine)
    (Jigsaw.Engine2d.gridding_cycles engine)
    (Cvec.nrmsd ~reference:ref_grid hw_grid)
    (Jigsaw.Engine2d.saturation_events engine);
  Printf.printf
    "  JIGSAW energy     %8.2f uJ (vs %.1f mJ simulated GPU slice-and-dice)\n"
    (1e6
    *. Jigsaw.Synthesis.energy_j
         ~cycles:(Jigsaw.Engine2d.gridding_cycles engine)
         ~clock_ghz:1.0 ())
    (1e3 *. slice.Gpusim.Sim.energy_j)
