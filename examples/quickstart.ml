(* Quickstart: the five-minute tour of the library.

   1. Build a NuFFT plan.
   2. Generate a radial MRI trajectory and synthetic k-space data.
   3. Run the adjoint NuFFT (gridding -> FFT -> deapodization).
   4. Check the result against the exact (slow) NuDFT.
   5. Swap the gridding engine for Slice-and-Dice and observe identical
      output.

   Run with:  dune exec examples/quickstart.exe *)

module Cvec = Numerics.Cvec
module C = Numerics.Complexd

let () =
  (* A 32 x 32 image keeps the exact NuDFT reference fast. *)
  let n = 32 in
  let plan = Nufft.Plan.make ~n () in
  Printf.printf "Plan: n=%d sigma=%.1f -> oversampled grid g=%d, window w=%d, \
                 table L=%d\n"
    plan.Nufft.Plan.n plan.Nufft.Plan.sigma plan.Nufft.Plan.g
    plan.Nufft.Plan.w plan.Nufft.Plan.l;

  (* An undersampled radial acquisition: 24 spokes of 64 readout points. *)
  let traj = Trajectory.Radial.make ~spokes:24 ~readout:64 () in
  let m = Trajectory.Traj.length traj in
  let rng = Random.State.make [| 7 |] in
  let values =
    Cvec.init m (fun _ ->
        C.make
          (Random.State.float rng 2.0 -. 1.0)
          (Random.State.float rng 2.0 -. 1.0))
  in
  let samples =
    Nufft.Sample.of_omega_2d ~g:plan.Nufft.Plan.g
      ~omega_x:traj.Trajectory.Traj.omega_x
      ~omega_y:traj.Trajectory.Traj.omega_y ~values
  in
  Printf.printf "Trajectory: %d radial samples\n" m;

  (* Adjoint NuFFT: k-space -> image. *)
  let image, timings = Nufft.Plan.adjoint_2d_timed plan samples in
  Printf.printf "Adjoint NuFFT: gridding %.3f ms, FFT %.3f ms, deapod %.3f \
                 ms (gridding share %.1f%%)\n"
    (1e3 *. timings.Nufft.Plan.gridding_s)
    (1e3 *. timings.Nufft.Plan.fft_s)
    (1e3 *. timings.Nufft.Plan.deapod_s)
    (100.0 *. Nufft.Plan.gridding_fraction timings);

  (* Validate against the exact NuDFT. *)
  let exact =
    Nufft.Nudft.adjoint_2d ~n ~omega_x:traj.Trajectory.Traj.omega_x
      ~omega_y:traj.Trajectory.Traj.omega_y ~values
  in
  Printf.printf "NRMSD vs exact NuDFT: %.2e (fast approximation error)\n"
    (Cvec.nrmsd ~reference:exact image);

  (* The paper's contribution: the Slice-and-Dice engine computes the same
     grid without any presorting — bit-identical here. *)
  let plan_sd =
    Nufft.Plan.make ~n ~engine:(Nufft.Gridding.Slice_and_dice 8) ()
  in
  let image_sd = Nufft.Plan.adjoint_2d plan_sd samples in
  Printf.printf "Slice-and-Dice engine max deviation from serial: %g\n"
    (Cvec.max_abs_diff image image_sd);
  print_endline "Done."
