(* Iterative (model-based) MRI reconstruction — the emerging workload the
   paper's introduction says makes NuFFT throughput critical ("millions of
   NuFFTs are taken iteratively to reconstruct a single volume").

   Solves the regularised normal equations (A^H A + lambda I) x = A^H y
   with conjugate gradients, applying the Gram operator through its
   Toeplitz embedding (two 2N-point FFTs per iteration, no gridding after
   setup — the structure of the Impatient framework the paper compares
   against). Compares against one-shot density-compensated gridding
   reconstruction at two undersampling levels.

   Run with:  dune exec examples/iterative_recon.exe *)

module Cvec = Numerics.Cvec
module C = Numerics.Complexd

let n = 64

let ok = function
  | Ok v -> v
  | Error e -> failwith (Imaging.Recon.error_message e)

let () =
  let plan = Nufft.Plan.make ~n () in
  let phantom = Imaging.Phantom.make ~n () in
  let full = Trajectory.Radial.fully_sampled_spokes ~n in
  (* Toeplitz setup adjoints route through a plan cache: rebuilding the
     operator for the same trajectory (e.g. a regularisation sweep) pays
     the plan build and trajectory decomposition only once. *)
  let cache = Pipeline.Plan_cache.create () in
  List.iter
    (fun (tag, spokes) ->
      let traj = Trajectory.Radial.make ~spokes ~readout:(2 * n) () in
      let samples = Imaging.Recon.acquire plan traj phantom in
      (* Direct: density-compensated adjoint. *)
      let density = Trajectory.Radial.density_weights traj in
      let direct = ok (Imaging.Recon.reconstruct ~density plan samples) in
      let direct_err = Imaging.Metrics.nrmsd_scaled ~reference:phantom direct in
      (* Iterative: CG on the Toeplitz normal operator. *)
      let coords = Imaging.Recon.coords_of_traj ~g:(2 * n) traj in
      let t0 = Unix.gettimeofday () in
      let top =
        Imaging.Toeplitz.make_op
          ~create:(Pipeline.Plan_cache.create_fn cache)
          ~n ~coords ()
      in
      let setup = Unix.gettimeofday () -. t0 in
      let b = Imaging.Cg.normal_equations_rhs ~plan samples in
      let lambda = 1e-3 *. sqrt (Cvec.norm2 b) in
      let apply x =
        let tx = Imaging.Toeplitz.apply top x in
        Cvec.iteri
          (fun k c -> Cvec.set tx k (C.add (Cvec.get tx k) (C.scale lambda c)))
          x;
        tx
      in
      let t1 = Unix.gettimeofday () in
      let r = Imaging.Cg.solve ~max_iterations:25 ~tolerance:1e-6 ~apply b in
      let solve = Unix.gettimeofday () -. t1 in
      let cg_err =
        Imaging.Metrics.nrmsd_scaled ~reference:phantom r.Imaging.Cg.solution
      in
      let path = Printf.sprintf "iter_recon_%s.pgm" tag in
      Imaging.Pgm.write_magnitude ~path ~n r.Imaging.Cg.solution;
      Printf.printf
        "%-6s %3d spokes: direct NRMSD %.4f | CG(%2d iters%s) NRMSD %.4f \
         [setup %.2fs, solve %.2fs] -> %s\n"
        tag spokes direct_err r.Imaging.Cg.iterations
        (if r.Imaging.Cg.converged then ", converged" else "")
        cg_err setup solve path)
    [ ("full", full); ("third", full / 3) ];
  let cs = Pipeline.Plan_cache.stats cache in
  Printf.printf "Toeplitz setup plan cache: %d hits / %d misses\n"
    cs.Pipeline.Plan_cache.hits cs.Pipeline.Plan_cache.misses;
  Printf.printf
    "CG wins where it matters — under undersampling, where no one-shot \
     density compensation can undo the point-spread function; at full \
     sampling both reconstructions are Gibbs-limited. Each CG iteration \
     costs one Gram-operator application (two 2N FFTs here; a forward + \
     adjoint NuFFT without the Toeplitz trick).\n"
