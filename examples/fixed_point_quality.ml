(* Fixed-point quality exploration (the Fig 9 axis, as an example).

   Sweeps the JIGSAW table oversampling factor L and compares fixed-point
   reconstruction quality against the double-precision reference, showing
   the trade the hardware makes: 16-bit weights + nearest-weight rounding
   vs table size. Also demonstrates the saturation counter: feeding
   unnormalised data overflows the 32-bit accumulators and the model
   reports it rather than silently wrapping.

   Run with:  dune exec examples/fixed_point_quality.exe *)

module Cvec = Numerics.Cvec
module C = Numerics.Complexd
module Wt = Numerics.Weight_table

let () =
  let g = 128 and w = 6 in
  let kernel = Numerics.Window.default_kaiser_bessel ~width:w ~sigma:2.0 in
  let s = Nufft.Sample.random_2d ~seed:11 ~g 5000 in
  (* Normalised values, like a well-behaved host driver. *)
  let values = Cvec.map (fun c -> C.scale 0.05 c) s.Nufft.Sample.values in
  let reference =
    Nufft.Gridding_serial.grid_2d
      ~table:(Wt.make ~kernel ~width:w ~l:1024 ())
      ~g ~gx:(Nufft.Sample.gx s) ~gy:(Nufft.Sample.gy s) values
  in
  Printf.printf "Gridding %d samples onto %dx%d; reference: double, L=1024\n\n"
    (Nufft.Sample.length s) g g;
  Printf.printf "%-6s %18s %14s\n" "L" "grid NRMSD" "saturations";
  List.iter
    (fun l ->
      let cfg = Jigsaw.Config.make ~n:g ~w ~l () in
      let table = Wt.make ~precision:Wt.Fixed16 ~kernel ~width:w ~l () in
      let engine = Jigsaw.Engine2d.create cfg ~table in
      Jigsaw.Engine2d.stream engine ~gx:(Nufft.Sample.gx s)
        ~gy:(Nufft.Sample.gy s) values;
      Printf.printf "%-6d %18.3e %14d\n" l
        (Cvec.nrmsd ~reference (Jigsaw.Engine2d.readout engine))
        (Jigsaw.Engine2d.saturation_events engine))
    [ 1; 2; 4; 8; 16; 32; 64 ];
  Printf.printf
    "\nError shrinks roughly linearly in 1/L until the Q1.15 weight \
     quantisation floor.\n\n";
  (* Saturation demo: grossly unnormalised inputs overflow the 32-bit accumulators. *)
  let cfg = Jigsaw.Config.make ~n:g ~w ~l:32 () in
  let table = Wt.make ~precision:Wt.Fixed16 ~kernel ~width:w ~l:32 () in
  let engine = Jigsaw.Engine2d.create cfg ~table in
  let loud = Cvec.map (fun c -> C.scale 2000.0 c) values in
  Jigsaw.Engine2d.stream engine ~gx:(Nufft.Sample.gx s) ~gy:(Nufft.Sample.gy s)
    loud;
  Printf.printf
    "Unnormalised input (2000x): %d accumulator saturation events — the \
     model surfaces overflow instead of wrapping.\n"
    (Jigsaw.Engine2d.saturation_events engine)
