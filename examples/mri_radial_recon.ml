(* End-to-end MRI reconstruction demo — the workload the paper's
   introduction motivates.

   Simulates a radial MRI acquisition of the Shepp-Logan phantom with the
   forward NuFFT, then reconstructs with density-compensated adjoint NuFFT
   (gridding reconstruction) at three undersampling levels, writing PGM
   images you can open with any viewer.

   Run with:  dune exec examples/mri_radial_recon.exe *)

let n = 128

let () =
  let plan = Nufft.Plan.make ~n () in
  let phantom = Imaging.Phantom.make ~n () in
  Imaging.Pgm.write_magnitude ~path:"recon_phantom.pgm" ~n phantom;
  Printf.printf "Phantom %dx%d written to recon_phantom.pgm\n" n n;
  let full_spokes = Trajectory.Radial.fully_sampled_spokes ~n in
  List.iter
    (fun (tag, spokes) ->
      let traj = Trajectory.Radial.make ~spokes ~readout:(2 * n) () in
      let density = Trajectory.Radial.density_weights traj in
      let t0 = Unix.gettimeofday () in
      let recon, _ = Imaging.Recon.roundtrip ~density plan traj phantom in
      let dt = Unix.gettimeofday () -. t0 in
      let err = Imaging.Metrics.nrmsd_scaled ~reference:phantom recon in
      let psnr = Imaging.Metrics.psnr ~reference:phantom recon in
      let path = Printf.sprintf "recon_radial_%s.pgm" tag in
      Imaging.Pgm.write_magnitude ~path ~n recon;
      Printf.printf
        "%-16s %4d spokes, %6d samples: scaled NRMSD %.3f, PSNR %5.1f dB, \
         %.2f s -> %s\n"
        tag spokes
        (Trajectory.Traj.length traj)
        err psnr dt path)
    [ ("full", full_spokes);
      ("half", full_spokes / 2);
      ("eighth", full_spokes / 8) ];
  Printf.printf
    "Expect: quality degrades gracefully with undersampling (streak \
     artifacts), the hallmark of radial imaging.\n"
