(* End-to-end MRI reconstruction demo — the workload the paper's
   introduction motivates.

   Simulates a radial MRI acquisition of the Shepp-Logan phantom with the
   forward NuFFT, then reconstructs with density-compensated adjoint NuFFT
   (gridding reconstruction) at three undersampling levels, writing PGM
   images you can open with any viewer.

   The three reconstructions are served as one batch through the pipeline
   layer: each trajectory's plan is built once for the acquisition and
   replayed from the cache for the reconstruction, and the requests share
   the service's workspace arenas.

   Run with:  dune exec examples/mri_radial_recon.exe *)

module Svc = Pipeline.Recon_service

let n = 128

let ok = function
  | Ok v -> v
  | Error e -> failwith (Svc.error_message e)

let () =
  let svc = Svc.create () in
  let phantom = Imaging.Phantom.make ~n () in
  Imaging.Pgm.write_magnitude ~path:"recon_phantom.pgm" ~n phantom;
  Printf.printf "Phantom %dx%d written to recon_phantom.pgm\n" n n;
  let full_spokes = Trajectory.Radial.fully_sampled_spokes ~n in
  let levels =
    [ ("full", full_spokes);
      ("half", full_spokes / 2);
      ("eighth", full_spokes / 8) ]
  in
  let prepared =
    List.map
      (fun (tag, spokes) ->
        let traj = Trajectory.Radial.make ~spokes ~readout:(2 * n) () in
        let density = Trajectory.Radial.density_weights traj in
        let coords = Imaging.Recon.coords_of_traj ~g:(2 * n) traj in
        (* Acquire through the service's cached operator, so the
           reconstruction request below is a warm hit on the same entry. *)
        let op, _ = ok (Svc.operator svc ~backend:"serial" ~n ~coords) in
        let samples = Imaging.Recon.acquire_op op phantom in
        ( (tag, spokes, Trajectory.Traj.length traj),
          { Svc.backend = "serial";
            transform = Nufft.Transform.Type1;
            n;
            coords;
            values = samples.Nufft.Sample.values;
            density = Some density;
            method_ = Svc.Adjoint;
            tol = None;
            family = None } ))
      levels
  in
  let results = Svc.submit_batch svc (List.map snd prepared) in
  List.iter2
    (fun ((tag, spokes, m), _) result ->
      let resp = ok result in
      let recon = resp.Svc.image in
      let err = Imaging.Metrics.nrmsd_scaled ~reference:phantom recon in
      let psnr = Imaging.Metrics.psnr ~reference:phantom recon in
      let path = Printf.sprintf "recon_radial_%s.pgm" tag in
      Imaging.Pgm.write_magnitude ~path ~n recon;
      Printf.printf
        "%-16s %4d spokes, %6d samples: scaled NRMSD %.3f, PSNR %5.1f dB, \
         %.2f s -> %s\n"
        tag spokes m err psnr resp.Svc.elapsed_s path)
    prepared results;
  let cs = Pipeline.Plan_cache.stats (Svc.cache svc) in
  Printf.printf
    "plan cache: %d hits / %d misses — each trajectory's plan was built for \
     the acquisition and replayed for the reconstruction.\n"
    cs.Pipeline.Plan_cache.hits cs.Pipeline.Plan_cache.misses;
  Printf.printf
    "Expect: quality degrades gracefully with undersampling (streak \
     artifacts), the hallmark of radial imaging.\n"
