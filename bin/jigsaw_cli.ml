(* jigsaw_cli: command-line driver for the Jigsaw / Slice-and-Dice
   reproduction.

   Subcommands:
     grid    generate a trajectory, grid it with a chosen backend, report
             timing/stats and optionally validate against the serial
             reference
     recon   reconstruct the Shepp-Logan phantom from a simulated
             acquisition and write a PGM image
     accuracy  adjoint-NuFFT error vs the exact NuDFT (tabulated KB and
             exact min-max interpolation)
     info    print the hardware models' parameters (Table I / Table II)   *)

module Cvec = Numerics.Cvec
module C = Numerics.Complexd

(* ------------------------------------------------------------------ *)
(* Shared helpers *)

let make_trajectory kind m n =
  match kind with
  | "radial" ->
      let readout = 2 * n in
      let spokes = max 1 (m / readout) in
      Trajectory.Radial.make ~spokes ~readout ()
  | "spiral" ->
      Trajectory.Spiral.make ~samples_per_interleave:m
        ~turns:(float_of_int n /. 8.0) ()
  | "rosette" -> Trajectory.Rosette.make ~samples:m ()
  | "random" -> Trajectory.Random_traj.make ~samples:m ()
  | "cartesian" -> Trajectory.Cartesian.make ~n
  | other -> failwith (Printf.sprintf "unknown trajectory %S" other)

let samples_of_traj ~g ~seed traj =
  let m = Trajectory.Traj.length traj in
  let rng = Random.State.make [| seed |] in
  let values =
    Cvec.init m (fun _ ->
        C.make
          (0.2 *. (Random.State.float rng 2.0 -. 1.0))
          (0.2 *. (Random.State.float rng 2.0 -. 1.0)))
  in
  Nufft.Sample.of_omega_2d ~g ~omega_x:traj.Trajectory.Traj.omega_x
    ~omega_y:traj.Trajectory.Traj.omega_y ~values

let parse_engine ~w s =
  match String.lowercase_ascii s with
  | "serial" -> `Cpu Nufft.Gridding.Serial
  | "output" -> `Cpu Nufft.Gridding.Output_parallel
  | "binned" -> `Cpu (Nufft.Gridding.Binned 8)
  | "slice" -> `Cpu (Nufft.Gridding.Slice_and_dice (max 8 w))
  | "parallel" -> `Cpu (Nufft.Gridding.Slice_parallel (max 8 w))
  | "jigsaw" -> `Jigsaw
  | "gpu-slice" -> `Gpu `Slice
  | "gpu-binned" -> `Gpu `Binned
  | other -> failwith (Printf.sprintf "unknown backend %S" other)

(* The slice engines need the tile to divide the oversampled grid; for odd
   image sizes fall back to the always-valid tiling of Gridding.tile_for. *)
let retile ~g ~w = function
  | Nufft.Gridding.Slice_and_dice t when g mod t <> 0 ->
      Nufft.Gridding.Slice_and_dice (Nufft.Gridding.tile_for ~g ~w)
  | Nufft.Gridding.Slice_parallel t when g mod t <> 0 ->
      Nufft.Gridding.Slice_parallel (Nufft.Gridding.tile_for ~g ~w)
  | e -> e

(* --domains D sizes the process-wide pool: D maps to the paper's T^d
   workers in the sense that the t^2 dice columns (or g z-slices in 3D)
   are distributed over D domains. *)
let apply_domains = function
  | None -> ()
  | Some d when d >= 1 -> Runtime.Pool.set_global_domains d
  | Some _ ->
      prerr_endline "jigsaw_cli: --domains must be >= 1";
      exit 1

(* ------------------------------------------------------------------ *)
(* grid subcommand *)

let run_grid n traj_kind m backend w l seed validate domains =
  apply_domains domains;
  let g = 2 * n in
  let traj = make_trajectory traj_kind m n in
  let s = samples_of_traj ~g ~seed traj in
  let m = Nufft.Sample.length s in
  Printf.printf "gridding %d %s samples onto %dx%d (w=%d, l=%d)\n" m traj_kind
    g g w l;
  let kernel = Numerics.Window.default_kaiser_bessel ~width:w ~sigma:2.0 in
  let table = Numerics.Weight_table.make ~kernel ~width:w ~l () in
  let reference () =
    Nufft.Gridding_serial.grid_2d ~table ~g ~gx:s.Nufft.Sample.gx
      ~gy:s.Nufft.Sample.gy s.Nufft.Sample.values
  in
  (match parse_engine ~w backend with
  | `Cpu engine ->
      let engine = retile ~g ~w engine in
      let stats = Nufft.Gridding_stats.create () in
      let t0 = Unix.gettimeofday () in
      let grid =
        Nufft.Gridding.grid_2d ~stats engine ~table ~g ~gx:s.Nufft.Sample.gx
          ~gy:s.Nufft.Sample.gy s.Nufft.Sample.values
      in
      let dt = Unix.gettimeofday () -. t0 in
      (match engine with
      | Nufft.Gridding.Slice_parallel _ ->
          Printf.printf "%s: %.3f ms (CPU, instrumented, %d domains)\n"
            (Nufft.Gridding.engine_name engine)
            (1e3 *. dt)
            (Runtime.Pool.size (Runtime.Pool.global ()))
      | _ ->
          Printf.printf "%s: %.3f ms (CPU, instrumented)\n"
            (Nufft.Gridding.engine_name engine)
            (1e3 *. dt));
      Format.printf "stats: %a@." Nufft.Gridding_stats.pp stats;
      if validate then
        Printf.printf "max deviation vs serial reference: %g\n"
          (Cvec.max_abs_diff (reference ()) grid)
  | `Jigsaw ->
      let l = min l 64 in
      let cfg = Jigsaw.Config.make ~n:g ~w ~l () in
      let jt =
        Numerics.Weight_table.make ~precision:Numerics.Weight_table.Fixed16
          ~kernel ~width:w ~l ()
      in
      let e = Jigsaw.Engine2d.create cfg ~table:jt in
      Jigsaw.Engine2d.stream e ~gx:s.Nufft.Sample.gx ~gy:s.Nufft.Sample.gy
        s.Nufft.Sample.values;
      Printf.printf
        "jigsaw: %d cycles (M+12) = %.3f ms at 1 GHz; %.2f uJ; saturations %d\n"
        (Jigsaw.Engine2d.gridding_cycles e)
        (1e3 *. Jigsaw.Engine2d.gridding_time_s e)
        (1e6
        *. Jigsaw.Synthesis.energy_j
             ~cycles:(Jigsaw.Engine2d.gridding_cycles e)
             ~clock_ghz:1.0 ())
        (Jigsaw.Engine2d.saturation_events e);
      if validate then
        Printf.printf "NRMSD vs serial double reference: %.3e\n"
          (Cvec.nrmsd ~reference:(reference ()) (Jigsaw.Engine2d.readout e))
  | `Gpu which ->
      let p = Gpusim.Kernels.problem_of_samples ~w s in
      let result =
        match which with
        | `Slice -> Gpusim.Sim.run (Gpusim.Kernels.slice_and_dice p)
        | `Binned -> Gpusim.Sim.run (Gpusim.Kernels.binned p)
      in
      Format.printf "simulated Titan Xp (%s):@.%a@."
        (match which with `Slice -> "slice-and-dice" | `Binned -> "binned")
        Gpusim.Sim.pp_result result);
  `Ok ()

(* ------------------------------------------------------------------ *)
(* recon subcommand *)

let run_recon n spokes output domains =
  apply_domains domains;
  let plan =
    match domains with
    | None -> Nufft.Plan.make ~n ()
    | Some _ ->
        (* Pool-backed plan: parallel FFT passes, and the pool-parallel
           gridding engine when the tiling divides the oversampled grid. *)
        let pool = Runtime.Pool.global () in
        let g = 2 * n in
        let engine =
          if g mod 8 = 0 then Nufft.Gridding.Slice_parallel 8
          else Nufft.Gridding.Serial
        in
        Nufft.Plan.make ~pool ~engine ~n ()
  in
  let phantom = Imaging.Phantom.make ~n () in
  let spokes =
    match spokes with
    | Some s -> s
    | None -> Trajectory.Radial.fully_sampled_spokes ~n
  in
  let traj = Trajectory.Radial.make ~spokes ~readout:(2 * n) () in
  let density = Trajectory.Radial.density_weights traj in
  let recon, _ = Imaging.Recon.roundtrip ~density plan traj phantom in
  let err = Imaging.Metrics.nrmsd_scaled ~reference:phantom recon in
  Imaging.Pgm.write_magnitude ~path:output ~n recon;
  Printf.printf
    "reconstructed %dx%d phantom from %d spokes (%d samples): scaled NRMSD \
     %.3f -> %s\n"
    n n spokes (Trajectory.Traj.length traj) err output;
  `Ok ()

(* ------------------------------------------------------------------ *)
(* accuracy subcommand *)

let run_accuracy n m w sigma l seed =
  if n > 48 then
    failwith "accuracy: n must be <= 48 (the exact NuDFT reference is O(M n^2))";
  let rng = Random.State.make [| seed |] in
  let omega () =
    Array.init m (fun _ -> Random.State.float rng (2.0 *. Float.pi) -. Float.pi)
  in
  let ox = omega () and oy = omega () in
  let values =
    Cvec.init m (fun _ ->
        C.make
          (Random.State.float rng 2.0 -. 1.0)
          (Random.State.float rng 2.0 -. 1.0))
  in
  let exact = Nufft.Nudft.adjoint_2d ~n ~omega_x:ox ~omega_y:oy ~values in
  let plan = Nufft.Plan.make ~n ~w ~sigma ~l () in
  let g = plan.Nufft.Plan.g in
  let samples = Nufft.Sample.of_omega_2d ~g ~omega_x:ox ~omega_y:oy ~values in
  let fast = Nufft.Plan.adjoint_2d plan samples in
  Printf.printf
    "adjoint NuFFT vs exact NuDFT (n=%d, m=%d, w=%d, sigma=%g, L=%d, g=%d):\n"
    n m w sigma l g;
  Printf.printf "  kaiser-bessel table:  NRMSD %.3e\n"
    (Cvec.nrmsd ~reference:exact fast);
  let mm =
    Nufft.Minmax.adjoint_2d ~scaling:Nufft.Minmax.Kaiser_bessel_scaling ~n ~g
      ~w ~gx:samples.Nufft.Sample.gx ~gy:samples.Nufft.Sample.gy values
  in
  Printf.printf "  exact min-max:        NRMSD %.3e\n"
    (Cvec.nrmsd ~reference:exact mm);
  `Ok ()

(* ------------------------------------------------------------------ *)
(* info subcommand *)

let run_info () =
  print_endline "JIGSAW model parameters (paper Tables I & II)";
  print_endline "  Table I ranges: N 8-1024, T 8, W 1-8, L 1-64 (pow2),";
  print_endline "                  32-bit fixed-point pipeline, 16-bit weights";
  List.iter
    (fun (name, m) ->
      Printf.printf "  %-28s %8.2f mW %8.2f mm2\n" name
        m.Jigsaw.Synthesis.power_mw m.Jigsaw.Synthesis.area_mm2)
    Jigsaw.Synthesis.table;
  let gpu = Gpusim.Config.titan_xp in
  Printf.printf
    "  GPU model: %d SMs @ %.2f GHz, L2 %d KiB, DRAM %.0f B/cycle\n"
    gpu.Gpusim.Config.num_sms gpu.Gpusim.Config.clock_ghz
    (gpu.Gpusim.Config.l2.Cachesim.Cache.size_bytes / 1024)
    gpu.Gpusim.Config.dram.Cachesim.Dram.bytes_per_cycle;
  `Ok ()

(* ------------------------------------------------------------------ *)
(* Cmdliner plumbing *)

open Cmdliner

let n_arg =
  Arg.(value & opt int 128 & info [ "n" ] ~docv:"N" ~doc:"Image size per side.")

let traj_arg =
  Arg.(
    value
    & opt string "radial"
    & info [ "t"; "trajectory" ] ~docv:"KIND"
        ~doc:"Trajectory: radial, spiral, rosette, random, cartesian.")

let m_arg =
  Arg.(
    value & opt int 50000
    & info [ "m"; "samples" ] ~docv:"M" ~doc:"Approximate sample count.")

let backend_arg =
  Arg.(
    value
    & opt string "slice"
    & info [ "b"; "backend" ] ~docv:"BACKEND"
        ~doc:
          "Gridding backend: serial, output, binned, slice, jigsaw, \
           gpu-slice, gpu-binned.")

let w_arg = Arg.(value & opt int 6 & info [ "w" ] ~docv:"W" ~doc:"Window width.")

let l_arg =
  Arg.(
    value & opt int 512
    & info [ "l" ] ~docv:"L" ~doc:"Table oversampling factor.")

let seed_arg =
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc:"Value RNG seed.")

let validate_arg =
  Arg.(
    value & flag
    & info [ "validate" ] ~doc:"Compare against the serial double reference.")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"D"
        ~doc:
          "Size of the domain pool used by the parallel backend and \
           pool-backed plans — the paper's \\$(i,T^d) workers multiplexed \
           onto D OCaml domains (default: the runtime's recommended count).")

let grid_cmd =
  let doc = "grid a non-uniform acquisition with a chosen backend" in
  Cmd.v (Cmd.info "grid" ~doc)
    Term.(
      ret
        (const run_grid $ n_arg $ traj_arg $ m_arg $ backend_arg $ w_arg
       $ l_arg $ seed_arg $ validate_arg $ domains_arg))

let recon_cmd =
  let doc = "reconstruct the Shepp-Logan phantom from radial k-space" in
  let spokes =
    Arg.(
      value
      & opt (some int) None
      & info [ "spokes" ] ~docv:"S" ~doc:"Spoke count (default: Nyquist).")
  in
  let output =
    Arg.(
      value & opt string "recon.pgm"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output PGM path.")
  in
  Cmd.v (Cmd.info "recon" ~doc)
    Term.(ret (const run_recon $ n_arg $ spokes $ output $ domains_arg))

let info_cmd =
  let doc = "print hardware-model parameters" in
  Cmd.v (Cmd.info "info" ~doc) Term.(ret (const run_info $ const ()))

let accuracy_cmd =
  let doc = "measure adjoint-NuFFT accuracy against the exact NuDFT" in
  let n =
    Arg.(value & opt int 24 & info [ "n" ] ~docv:"N" ~doc:"Image size (<= 48).")
  in
  let m =
    Arg.(value & opt int 300 & info [ "m" ] ~docv:"M" ~doc:"Sample count.")
  in
  let sigma =
    Arg.(
      value & opt float 2.0
      & info [ "sigma" ] ~docv:"S" ~doc:"Oversampling factor.")
  in
  Cmd.v (Cmd.info "accuracy" ~doc)
    Term.(ret (const run_accuracy $ n $ m $ w_arg $ sigma $ l_arg $ seed_arg))

let main_cmd =
  let doc = "Slice-and-Dice / JIGSAW NuFFT acceleration reproduction" in
  Cmd.group (Cmd.info "jigsaw_cli" ~doc)
    [ grid_cmd; recon_cmd; accuracy_cmd; info_cmd ]

let () = exit (Cmd.eval main_cmd)
